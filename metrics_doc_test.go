package webmlgo

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"

	"webmlgo/internal/fault"
	"webmlgo/internal/fixture"
)

// metricNamesInSource scans the non-test Go sources for webml_* family
// literals, expanding every NewHistogramVec family into its derived
// _quantile and _errors_total companions — the code-side inventory.
func metricNamesInSource(t *testing.T) map[string]bool {
	t.Helper()
	nameRe := regexp.MustCompile(`"(webml_[a-z_]+)"`)
	// Histogram families gain derived _quantile/_errors_total companions
	// at exposition time; vecs are built via NewHistogramVec or (for the
	// controller's action vec) by stamping Name on an embedded vec.
	vecRe := regexp.MustCompile(`(?:NewHistogramVec\(|\.Name = )"(webml_[a-z_]+)"`)
	names := map[string]bool{}
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range nameRe.FindAllSubmatch(src, -1) {
			names[string(m[1])] = true
		}
		for _, m := range vecRe.FindAllSubmatch(src, -1) {
			names[string(m[1])+"_quantile"] = true
			names[string(m[1])+"_errors_total"] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return names
}

func sortedDiff(a, b map[string]bool) []string {
	var out []string
	for n := range a {
		if !b[n] {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// TestMetricsDocMatchesCode diffs docs/METRICS.md against the code's
// metric inventory in both directions: every family the code can emit
// must be documented, and every documented family must still exist in
// the code.
func TestMetricsDocMatchesCode(t *testing.T) {
	code := metricNamesInSource(t)
	if len(code) < 50 {
		t.Fatalf("source scan found only %d families — scan broken?", len(code))
	}
	doc, err := os.ReadFile("docs/METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	docNames := map[string]bool{}
	for _, m := range regexp.MustCompile("`(webml_[a-z_]+)`").FindAllSubmatch(doc, -1) {
		docNames[string(m[1])] = true
	}
	if miss := sortedDiff(code, docNames); len(miss) > 0 {
		t.Errorf("families in code but missing from docs/METRICS.md:\n  %s", strings.Join(miss, "\n  "))
	}
	if stale := sortedDiff(docNames, code); len(stale) > 0 {
		t.Errorf("families documented in docs/METRICS.md but absent from code:\n  %s", strings.Join(stale, "\n  "))
	}
}

// TestMetricsExpositionDocumented drives an everything-enabled stack
// and checks that every family actually exposed at /metrics (web tier
// and container tier) is documented — the live-scrape complement of
// the source diff.
func TestMetricsExpositionDocumented(t *testing.T) {
	doc, err := os.ReadFile("docs/METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	docNames := map[string]bool{}
	for _, m := range regexp.MustCompile("`(webml_[a-z_]+)`").FindAllSubmatch(doc, -1) {
		docNames[string(m[1])] = true
	}

	app, err := New(fixture.Figure1Model(),
		WithBeanCache(256),
		WithFragmentCache(256, time.Minute),
		WithPageCache(256, time.Minute),
		WithEdgeCache(256, time.Minute),
		WithElasticFleet(1, 2, 8),
		WithAdmission(8, 16),
		WithRetries(2),
		WithDegradedServing(time.Minute),
		WithFaults(fault.Schedule{Seed: 1}),
		WithObservability(64, time.Hour),
		WithQueryAnalysis(16, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if err := fixture.Seed(app.DB); err != nil {
		t.Fatal(err)
	}
	if rr, body := request(t, app.Handler(), "/page/volumePage?volume=1", ""); rr.Code != 200 {
		t.Fatalf("page = %d %s", rr.Code, body)
	}
	if rr, body := request(t, app.Controller, "/page/volumePage?volume=2", ""); rr.Code != 200 {
		t.Fatalf("controller page = %d %s", rr.Code, body)
	}

	typeRe := regexp.MustCompile(`(?m)^# TYPE (webml_[a-z_]+) `)
	check := func(src, body string) {
		t.Helper()
		for _, m := range typeRe.FindAllStringSubmatch(body, -1) {
			if !docNames[m[1]] {
				t.Errorf("%s exposes undocumented family %s", src, m[1])
			}
		}
	}
	rr, body := request(t, app.MetricsHandler(), "/metrics", "")
	if rr.Code != 200 {
		t.Fatalf("/metrics = %d", rr.Code)
	}
	check("web tier", body)

	ctr, _, err := DeployContainer(fixture.Figure1Model(), app.DB, 4, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctr.Close()
	rr2, ctrBody := request(t, ctr.MetricsRegistry(), "/metrics", "")
	if rr2.Code != 200 {
		t.Fatalf("container /metrics = %d", rr2.Code)
	}
	check("container tier", ctrBody)
}
