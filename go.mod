module webmlgo

go 1.22
