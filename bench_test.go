package webmlgo

// Benchmark harness: one benchmark (or benchmark pair) per figure /
// experiment of the paper. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results.
//
//	go test -bench=. -benchmem .

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"webmlgo/internal/baseline"
	"webmlgo/internal/codegen"
	"webmlgo/internal/descriptor"
	"webmlgo/internal/dom"
	"webmlgo/internal/ejb"
	"webmlgo/internal/fixture"
	"webmlgo/internal/mvc"
	"webmlgo/internal/rdb"
	"webmlgo/internal/workload"
)

func benchApp(b *testing.B, opts ...Option) *App {
	b.Helper()
	app, err := New(fixture.Figure1Model(), opts...)
	if err != nil {
		b.Fatal(err)
	}
	if err := fixture.Seed(app.DB); err != nil {
		b.Fatal(err)
	}
	return app
}

func doGet(h http.Handler, path string) int {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr.Code
}

// --- E1 (Figures 1–2): the ACM DL volume page end to end. ---

func BenchmarkE1Figure1VolumePage(b *testing.B) {
	app := benchApp(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := doGet(app.Handler(), "/page/volumePage?volume=1"); code != 200 {
			b.Fatalf("status %d", code)
		}
	}
}

// --- E2 (Sections 2–3, Figures 3–4): template-based vs MVC. ---

func BenchmarkE2TemplateBasedPage(b *testing.B) {
	model := fixture.Figure1Model()
	g, err := codegen.New(model)
	if err != nil {
		b.Fatal(err)
	}
	art, err := g.Generate()
	if err != nil {
		b.Fatal(err)
	}
	db := rdb.Open()
	for _, stmt := range art.DDL {
		if _, err := db.Exec(stmt); err != nil {
			b.Fatal(err)
		}
	}
	if err := fixture.Seed(db); err != nil {
		b.Fatal(err)
	}
	app := baseline.Build(model, art, db)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := doGet(app, "/tpl/volumePage?volume=1"); code != 200 {
			b.Fatalf("status %d", code)
		}
	}
}

func BenchmarkE2MVCPage(b *testing.B) {
	app := benchApp(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := doGet(app.Handler(), "/page/volumePage?volume=1"); code != 200 {
			b.Fatalf("status %d", code)
		}
	}
}

// --- E3 (Figure 5): dedicated unit services vs one generic service
// driven by a descriptor. The dedicated variant is what a per-unit code
// generator (or programmer) would emit: the query text, parameter list
// and bean layout baked into code. ---

func e3Setup(b *testing.B) (*rdb.DB, *descriptor.Unit) {
	b.Helper()
	app := benchApp(b)
	return app.DB, app.Repo().Unit("volumeData")
}

func BenchmarkE3DedicatedUnitService(b *testing.B) {
	db, _ := e3Setup(b)
	// Hand-specialized service for the volumeData unit.
	dedicated := func(volume mvc.Value) (*mvc.UnitBean, error) {
		rows, err := db.Query("SELECT t.oid, t.title, t.year FROM volume t WHERE t.oid = ?", volume)
		if err != nil {
			return nil, err
		}
		bean := &mvc.UnitBean{UnitID: "volumeData", Kind: "data", Fields: []string{"oid", "Title", "Year"}}
		for _, r := range rows.Data {
			bean.Nodes = append(bean.Nodes, mvc.Node{Values: mvc.Row{
				"oid": r[0], "Title": r[1], "Year": r[2],
			}})
		}
		return bean, nil
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dedicated(int64(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3GenericUnitService(b *testing.B) {
	db, d := e3Setup(b)
	business := mvc.NewLocalBusiness(db)
	inputs := map[string]mvc.Value{"volume": int64(1)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := business.ComputeUnit(context.Background(), d, inputs); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4 (Figure 6): in-container vs application-server business tier. ---

func BenchmarkE4InContainerBusiness(b *testing.B) {
	app := benchApp(b)
	d := app.Repo().Unit("volumeData")
	inputs := map[string]mvc.Value{"volume": int64(1)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := app.Business.ComputeUnit(context.Background(), d, inputs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4AppServerBusiness(b *testing.B) {
	app := benchApp(b)
	ctr := ejb.NewContainer(mvc.NewLocalBusiness(app.DB), 16)
	addr, err := ctr.Serve("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ctr.Close()
	remote, err := ejb.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer remote.Close()
	d := app.Repo().Unit("volumeData")
	inputs := map[string]mvc.Value{"volume": int64(1)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := remote.ComputeUnit(context.Background(), d, inputs); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5 (Figure 7, Section 5): compile-time vs runtime styling. ---

func BenchmarkE5CompiledStylePage(b *testing.B) {
	app := benchApp(b, WithCompiledStyle(B2CStyle()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := doGet(app.Handler(), "/page/volumePage?volume=1"); code != 200 {
			b.Fatalf("status %d", code)
		}
	}
}

func BenchmarkE5RuntimeStylePage(b *testing.B) {
	app := benchApp(b, WithRuntimeStyle(MultiDevice(B2CStyle())))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := doGet(app.Handler(), "/page/volumePage?volume=1"); code != 200 {
			b.Fatalf("status %d", code)
		}
	}
}

// BenchmarkE5RuleApplication measures the rule engine alone: one
// skeleton transformed into a final template.
func BenchmarkE5RuleApplication(b *testing.B) {
	model := fixture.Figure1Model()
	g, err := codegen.New(model)
	if err != nil {
		b.Fatal(err)
	}
	skeleton, err := dom.Parse(g.Skeleton(model.PageByID("volumePage")))
	if err != nil {
		b.Fatal(err)
	}
	rs := B2CStyle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rs.Apply(skeleton); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6 (Section 6): cache level comparison on a cache-friendly page. ---

func BenchmarkE6NoCache(b *testing.B) {
	app := benchApp(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doGet(app.Handler(), "/page/volumePage?volume=1")
	}
}

func BenchmarkE6FragmentCacheOnly(b *testing.B) {
	app := benchApp(b, WithFragmentCache(4096, time.Minute))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doGet(app.Handler(), "/page/volumePage?volume=1")
	}
}

func BenchmarkE6TwoLevelCache(b *testing.B) {
	app := benchApp(b, WithBeanCache(4096), WithFragmentCache(4096, time.Minute))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doGet(app.Handler(), "/page/volumePage?volume=1")
	}
}

// BenchmarkE6TwoLevelCacheWithWrites mixes 1 write per 64 reads, so
// model-driven invalidation costs are included.
func BenchmarkE6TwoLevelCacheWithWrites(b *testing.B) {
	app := benchApp(b, WithBeanCache(4096), WithFragmentCache(4096, time.Minute))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%64 == 63 {
			doGet(app.Handler(), fmt.Sprintf("/op/createVolume?title=V%d&year=2003", i))
			continue
		}
		doGet(app.Handler(), "/page/volumePage?volume=1")
	}
}

// BenchmarkE6TwoLevelCacheParallel drives the two-level-cache page from
// many goroutines at once (heavy-traffic shape): throughput is bounded
// by cache-core contention, not by the database.
func BenchmarkE6TwoLevelCacheParallel(b *testing.B) {
	app := benchApp(b, WithBeanCache(4096), WithFragmentCache(4096, time.Minute))
	h := app.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			doGet(h, "/page/volumePage?volume=1")
		}
	})
}

// BenchmarkE6TwoLevelCacheParallelWithWrites adds 1 write per 64
// requests per goroutine, so invalidation and recomputation storms are
// part of the measured path.
func BenchmarkE6TwoLevelCacheParallelWithWrites(b *testing.B) {
	app := benchApp(b, WithBeanCache(4096), WithFragmentCache(4096, time.Minute))
	h := app.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			if i%64 == 0 {
				doGet(h, fmt.Sprintf("/op/createVolume?title=V%d&year=2003", i))
				continue
			}
			doGet(h, "/page/volumePage?volume=1")
		}
	})
}

// BenchmarkE6ParallelPageCompute measures the page service alone: the
// level-parallel scheduler computing one page's units concurrently,
// from many requesting goroutines.
func BenchmarkE6ParallelPageCompute(b *testing.B) {
	app := benchApp(b, WithBeanCache(4096), WithPageWorkers(4))
	params := map[string]mvc.Value{"volume": int64(1)}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := app.Controller.Pages.ComputePage(context.Background(), "volumePage", params, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E7 (Section 8): full Acer-Euro-scale generation. ---

func BenchmarkE7AcerEuroGeneration(b *testing.B) {
	model, err := workload.Generate(workload.AcerEuro())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := codegen.New(model)
		if err != nil {
			b.Fatal(err)
		}
		art, err := g.Generate()
		if err != nil {
			b.Fatal(err)
		}
		if art.Stats.Pages != 556 {
			b.Fatal("wrong shape")
		}
	}
}

func BenchmarkE7AcerEuroValidation(b *testing.B) {
	model, err := workload.Generate(workload.AcerEuro())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := model.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7AcerEuroRequestMix serves the synthetic browse mix against
// the small-spec generated application (the full 556-page app works too,
// but the small spec keeps the benchmark turnaround reasonable; the
// request path cost is per page, not per application size).
func BenchmarkE7GeneratedAppRequestMix(b *testing.B) {
	model, err := workload.Generate(workload.Small())
	if err != nil {
		b.Fatal(err)
	}
	app, err := New(model, WithBeanCache(8192))
	if err != nil {
		b.Fatal(err)
	}
	if err := workload.Populate(app.DB, 50, 7); err != nil {
		b.Fatal(err)
	}
	reqs := workload.Requests(model, 256, 50, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doGet(app.Handler(), reqs[i%len(reqs)].Path)
	}
}

// BenchmarkE4AppServerWholePage is the "Page EJBs" deployment: the whole
// page computes server-side in one round trip (vs one RPC per unit when
// only unit services are remote).
func BenchmarkE4AppServerWholePage(b *testing.B) {
	app := benchApp(b)
	lb := mvc.NewLocalBusiness(app.DB)
	ctr := ejb.NewContainer(lb, 16)
	ctr.DeployPages(&mvc.PageService{Repo: app.Repo(), Business: lb})
	addr, err := ctr.Serve("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ctr.Close()
	remote, err := ejb.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer remote.Close()
	pages := remote.Pages()
	params := map[string]mvc.Value{"volume": int64(1)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pages.ComputePage(context.Background(), "volumePage", params, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4AppServerPerUnitPage computes the same page with one remote
// call per unit (remote unit services, local page service).
func BenchmarkE4AppServerPerUnitPage(b *testing.B) {
	app := benchApp(b)
	ctr := ejb.NewContainer(mvc.NewLocalBusiness(app.DB), 16)
	addr, err := ctr.Serve("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ctr.Close()
	remote, err := ejb.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer remote.Close()
	pages := &mvc.PageService{Repo: app.Repo(), Business: remote}
	params := map[string]mvc.Value{"volume": int64(1)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pages.ComputePage(context.Background(), "volumePage", params, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6WholePageCache is the first-generation comparator: fastest
// on anonymous repeats, but stale after writes (see TestWithPageCache).
func BenchmarkE6WholePageCache(b *testing.B) {
	app := benchApp(b, WithPageCache(4096, time.Minute))
	h := app.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doGet(h, "/page/volumePage?volume=1")
	}
}

// --- E6c: the ESI surrogate edge tier (internal/edge). ---

// BenchmarkE6cEdgeAssembled serves the hot page assembled from edge-
// cached fragments: no unit computation, no template walk — literal
// copies plus fragment lookups, while staying exactly coherent (unlike
// the whole-page cache).
func BenchmarkE6cEdgeAssembled(b *testing.B) {
	app := benchApp(b, WithEdgeCache(8192, time.Minute))
	b.Cleanup(app.Edge.Close)
	h := app.Handler()
	doGet(h, "/page/volumePage?volume=1") // warm container + fragments
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doGet(h, "/page/volumePage?volume=1")
	}
}

// BenchmarkE6cEdgeAssembledWithWrites runs the full three-level stack
// (edge + bean cache) with 1 write per 64 reads: every write purges the
// dependent fragments at both levels, so refill cost is measured too.
func BenchmarkE6cEdgeAssembledWithWrites(b *testing.B) {
	app := benchApp(b, WithEdgeCache(8192, time.Minute), WithBeanCache(4096))
	b.Cleanup(app.Edge.Close)
	h := app.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%64 == 63 {
			doGet(h, fmt.Sprintf("/op/createVolume?title=V%d&year=2003", i))
			continue
		}
		doGet(h, "/page/volumePage?volume=1")
	}
}

// BenchmarkE6cEdgeAssembledParallel hammers the assembled page from
// many goroutines (the heavy-traffic shape of the ROADMAP north star).
func BenchmarkE6cEdgeAssembledParallel(b *testing.B) {
	app := benchApp(b, WithEdgeCache(8192, time.Minute))
	b.Cleanup(app.Edge.Close)
	h := app.Handler()
	doGet(h, "/page/volumePage?volume=1")
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			doGet(h, "/page/volumePage?volume=1")
		}
	})
}
