package webmlgo

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"webmlgo/internal/cache"
	"webmlgo/internal/fixture"
	"webmlgo/internal/mvc"
)

// TestResilienceUnderFlappingContainer is the end-to-end acceptance run
// of the fault-tolerant business tier (a compact, -race-friendly version
// of experiment E7b): three containers serve one web tier while one of
// them flaps — killed and restarted on the same address in a loop — and
// the request stream must stay essentially clean, absorbed by circuit
// breaking, failover, and retries.
func TestResilienceUnderFlappingContainer(t *testing.T) {
	backend, err := New(fixture.Figure1Model())
	if err != nil {
		t.Fatal(err)
	}
	if err := fixture.Seed(backend.DB); err != nil {
		t.Fatal(err)
	}
	db := backend.DB

	addrs := make([]string, 3)
	flapper, addr0, err := DeployContainer(fixture.Figure1Model(), db, 8, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs[0] = addr0
	for i := 1; i < 3; i++ {
		ctr, addr, err := DeployContainer(fixture.Figure1Model(), db, 8, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ctr.Close()
		addrs[i] = addr
	}

	app, err := New(fixture.Figure1Model(),
		WithAppServer(addrs...),
		WithBeanCache(1024),
		WithRetries(3),
		WithRequestTimeout(2*time.Second),
		WithDegradedServing(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer app.Remote.Close()
	h := app.Handler()

	// Flap container 0: close it, wait, restart on the same address.
	stop := make(chan struct{})
	var flapWg sync.WaitGroup
	flapWg.Add(1)
	go func() {
		defer flapWg.Done()
		ctr := flapper
		for {
			select {
			case <-stop:
				if ctr != nil {
					ctr.Close()
				}
				return
			default:
			}
			time.Sleep(30 * time.Millisecond)
			if ctr != nil {
				ctr.Close()
				ctr = nil
			}
			time.Sleep(30 * time.Millisecond)
			if nc, _, err := DeployContainer(fixture.Figure1Model(), db, 8, addrs[0]); err == nil {
				ctr = nc
			}
		}
	}()

	var total, failures int
	var lastCreated string
	deadline := time.Now().Add(1500 * time.Millisecond)
	for i := 0; time.Now().Before(deadline); i++ {
		var path string
		switch {
		case i%25 == 24:
			path = fmt.Sprintf("/op/createVolume?title=Flap%d&year=2004", i)
		case i%2 == 0:
			path = "/page/volumePage?volume=1"
		default:
			path = "/page/volumesPage"
		}
		rr, _ := request(t, h, path, "")
		total++
		if rr.Code >= 500 {
			failures++
		} else if strings.HasPrefix(path, "/op/") {
			lastCreated = fmt.Sprintf("Flap%d", i)
		}
	}
	close(stop)
	flapWg.Wait()

	if total < 50 {
		t.Fatalf("driver starved: only %d requests issued", total)
	}
	rate := float64(total-failures) / float64(total)
	if rate < 0.99 {
		t.Fatalf("success rate %.4f (%d/%d requests) under a flapping container, want >= 0.99",
			rate, total-failures, total)
	}
	// Writes that reported success are durable and visible through the
	// uncached volume index — availability never came from serving
	// written-over data.
	if lastCreated != "" {
		_, body := request(t, h, "/page/volumesPage", "")
		if !strings.Contains(body, lastCreated) {
			t.Fatalf("successful write %s not visible after the storm", lastCreated)
		}
	}
}

// TestHealthzAndDegradedServingUnderFullOutage: with every container
// down, cached unit reads within the staleness bound still answer
// (counted as degraded hits), and /healthz flips to 503 once all
// breakers are open.
func TestHealthzAndDegradedServingUnderFullOutage(t *testing.T) {
	backend, err := New(fixture.Figure1Model())
	if err != nil {
		t.Fatal(err)
	}
	if err := fixture.Seed(backend.DB); err != nil {
		t.Fatal(err)
	}
	ctr, addr, err := DeployContainer(fixture.Figure1Model(), backend.DB, 8, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	app, err := New(fixture.Figure1Model(),
		WithAppServer(addr),
		WithBeanCache(1024),
		WithRetries(3),
		WithDegradedServing(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer app.Remote.Close()

	// Healthy: the probe reports OK.
	rr, body := request(t, app.HealthHandler(), "/healthz", "")
	if rr.Code != 200 || !strings.Contains(body, `"ok":true`) {
		t.Fatalf("healthy probe = %d %s", rr.Code, body)
	}

	// Warm the bean cache through a real page, then age the volumeData
	// bean past its TTL so only degraded mode can serve it.
	if rr, body := request(t, app.Handler(), "/page/volumePage?volume=1", ""); rr.Code != 200 {
		t.Fatalf("warmup failed: %d %s", rr.Code, body)
	}
	d := app.Artifacts.Repo.Unit("volumeData")
	key := cache.Key("volumeData", map[string]string{"volume": mvc.FormatParam(int64(1))})
	v, ok := app.BeanCache.Get(key)
	if !ok {
		t.Fatal("warmup did not cache volumeData")
	}
	app.BeanCache.Put(key, v, d.Reads, time.Millisecond)
	time.Sleep(5 * time.Millisecond)

	// Total outage.
	ctr.Close()

	bean, err := app.Business.ComputeUnit(context.Background(), d, map[string]mvc.Value{"volume": int64(1)})
	if err != nil {
		t.Fatalf("degraded serving failed during outage: %v", err)
	}
	if bean.Nodes[0].Values["Title"] != "TODS Volume 27" {
		t.Fatalf("degraded bean = %+v", bean)
	}
	health := app.Health()
	if health.DegradedHits == 0 {
		t.Fatal("degraded hit not surfaced in health")
	}
	// The three retry attempts were three breaker failures: the single
	// endpoint's circuit is open, so the probe flips to 503.
	rr2, body2 := request(t, app.HealthHandler(), "/healthz", "")
	if rr2.Code != 503 || !strings.Contains(body2, `"ok":false`) {
		t.Fatalf("outage probe = %d %s", rr2.Code, body2)
	}
	if !strings.Contains(body2, `"degradedHits"`) {
		t.Fatalf("probe lacks degraded counter: %s", body2)
	}
}
