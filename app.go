// Package webmlgo is a model-driven generator and runtime for
// data-intensive Web applications, reproducing the architecture of
// WebRatio as described in Ceri & Fraternali et al., "Architectural
// Issues and Solutions in the Development of Data-Intensive Web
// Applications" (CIDR 2003).
//
// An application is specified by an Entity-Relationship data model plus
// a WebML hypertext model. New compiles the specification — relational
// DDL, XML unit/page descriptors, controller configuration, template
// skeletons — and assembles the MVC 2 runtime: an http.Handler whose
// Controller dispatches page and operation actions to one generic page
// service and one generic unit service per unit kind.
//
// A minimal application:
//
//	model := webmlgo.NewBuilder("hello", schema) // ... build pages ...
//	app, err := webmlgo.New(model.MustBuild(),
//	    webmlgo.WithBeanCache(4096),
//	    webmlgo.WithCompiledStyle(webmlgo.B2CStyle()))
//	http.ListenAndServe(":8080", app.Handler())
package webmlgo

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"webmlgo/internal/admit"
	"webmlgo/internal/cache"
	"webmlgo/internal/codegen"
	"webmlgo/internal/descriptor"
	"webmlgo/internal/edge"
	"webmlgo/internal/ejb"
	"webmlgo/internal/fault"
	"webmlgo/internal/mvc"
	"webmlgo/internal/obs"
	"webmlgo/internal/rdb"
	"webmlgo/internal/render"
	"webmlgo/internal/style"
	"webmlgo/internal/webml"
)

// App is a fully assembled application: generated artifacts plus the
// running MVC stack.
type App struct {
	Model     *webml.Model
	Artifacts *codegen.Artifacts
	DB        *rdb.DB

	Controller *mvc.Controller
	Renderer   *render.Engine
	Business   mvc.Business

	// BeanCache / FragmentCache / PageCache / Edge are non-nil when the
	// corresponding options were set.
	BeanCache     *cache.BeanCache
	FragmentCache *cache.FragmentCache
	PageCache     *cache.PageCache
	Edge          *edge.Surrogate

	// Remote is the application-server client when WithAppServer or
	// WithElasticFleet is set.
	Remote *ejb.RemoteBusiness
	// Admission is the web tier's admission limiter when WithAdmission
	// is set: every controller action acquires a slot (or is shed) here.
	Admission *admit.Limiter
	// Fleet is the elastic container supervisor when WithElasticFleet is
	// set; Members is the membership it publishes scale events through.
	Fleet   *ejb.Supervisor
	Members *ejb.FleetMembership
	// Resilient is the retry decorator when WithRetries is set.
	Resilient *mvc.ResilientBusiness
	// Faults is the chaos injector when WithFaults is set.
	Faults *fault.Injector
	// Obs is the request tracer when WithObservability is set.
	Obs *obs.Tracer

	regOnce  sync.Once
	registry *obs.Registry
}

type config struct {
	db            *rdb.DB
	beanCache     int
	withBeanCache bool
	fragCache     int
	fragTTL       time.Duration
	withFragCache bool
	compiled      *style.RuleSet
	bySiteView    map[string]*style.RuleSet
	runtime       *style.RuntimeStyler
	appServer     []string
	latency       time.Duration
	remotePages   bool
	wire          string
	ejbConns      int
	noUnitBatch   bool
	skipDDL       bool
	withPageCache bool
	pageCache     int
	pageTTL       time.Duration
	pageWorkers   int
	withEdge      bool
	edgeCache     int
	edgeTTL       time.Duration

	faults         *fault.Schedule
	retries        int
	requestTimeout time.Duration
	maxStale       time.Duration

	withObs   bool
	traceCap  int
	slowTrace time.Duration

	withAnalysis bool
	analyzeCap   int
	analyzeMin   time.Duration

	withAdmission  bool
	maxConcurrency int
	admitQueue     int

	withFleet     bool
	fleetMin      int
	fleetMax      int
	fleetCapacity int
}

// Option configures New.
type Option func(*config)

// WithDatabase runs the application over an existing database (the
// schema must already match the model's DDL). Without it, New opens a
// fresh in-memory database and applies the generated DDL.
func WithDatabase(db *rdb.DB) Option {
	return func(c *config) { c.db = db; c.skipDDL = true }
}

// WithBeanCache enables the business-tier bean cache with the given
// capacity (<=0 selects the default).
func WithBeanCache(capacity int) Option {
	return func(c *config) { c.withBeanCache = true; c.beanCache = capacity }
}

// WithFragmentCache enables ESI-style template-fragment caching.
func WithFragmentCache(capacity int, ttl time.Duration) Option {
	return func(c *config) { c.withFragCache = true; c.fragCache = capacity; c.fragTTL = ttl }
}

// WithPageCache puts a first-generation whole-page cache in front of the
// application (anonymous GETs only). Section 6 explains why this is
// inadequate for personalized applications — the option exists as the
// E6 comparison point and for purely anonymous read-only deployments.
func WithPageCache(capacity int, ttl time.Duration) Option {
	return func(c *config) { c.withPageCache = true; c.pageCache = capacity; c.pageTTL = ttl }
}

// WithEdgeCache puts the ESI surrogate edge tier in front of the
// application: pages are served assembled from independently cached
// fragments, each under its descriptor's cache policy, with
// stale-while-revalidate refresh and model-driven purge (operations
// push their written dependency tags to the edge). Unlike WithPageCache
// it stays exact — a write purges precisely the dependent fragments —
// and it supersedes WithPageCache in Handler when both are set.
func WithEdgeCache(capacity int, ttl time.Duration) Option {
	return func(c *config) { c.withEdge = true; c.edgeCache = capacity; c.edgeTTL = ttl }
}

// WithPageWorkers bounds the page service's worker pool: units of the
// same topological level compute concurrently on up to n goroutines
// (<=1 selects sequential computation, the default).
func WithPageWorkers(n int) Option {
	return func(c *config) { c.pageWorkers = n }
}

// WithCompiledStyle applies a presentation rule set to every template at
// generation time (the efficient mode of Section 5).
func WithCompiledStyle(rs *style.RuleSet) Option {
	return func(c *config) { c.compiled = rs }
}

// WithRuntimeStyle applies presentation rules per request, dispatching
// on the User-Agent (the multi-device mode of Section 5). It overrides
// WithCompiledStyle.
func WithRuntimeStyle(s *style.RuntimeStyler) Option {
	return func(c *config) { c.runtime = s }
}

// WithSiteViewStyles compiles a different rule set per site view (keyed
// by site view ID), with def for unlisted site views — the Acer-Euro
// arrangement of one style sheet per site-view group.
func WithSiteViewStyles(bySiteView map[string]*style.RuleSet, def *style.RuleSet) Option {
	return func(c *config) { c.bySiteView = bySiteView; c.compiled = def }
}

// WithAppServer routes the business tier through remote containers at
// the given addresses (Figure 6) instead of in-process services.
func WithAppServer(addrs ...string) Option {
	return func(c *config) { c.appServer = addrs }
}

// WithSimulatedLatency injects an artificial delay per remote business
// call (only meaningful with WithAppServer).
func WithSimulatedLatency(d time.Duration) Option {
	return func(c *config) { c.latency = d }
}

// WithRemotePages computes whole pages in the application server (one
// round trip per page via the container's deployed page service) instead
// of one remote call per unit. Requires WithAppServer.
func WithRemotePages() Option {
	return func(c *config) { c.remotePages = true }
}

// WithWireProtocol selects the EJB wire protocol: ejb.WireAuto (default
// — negotiate wire v2, fall back to gob against old containers),
// ejb.WireFramed (require v2) or ejb.WireGob (force the legacy
// exchange). Only meaningful with WithAppServer.
func WithWireProtocol(mode string) Option {
	return func(c *config) { c.wire = mode }
}

// WithEJBConns bounds the persistent multiplexed wire-v2 connections per
// container endpoint (<=0 selects 3). Only meaningful with
// WithAppServer.
func WithEJBConns(n int) Option {
	return func(c *config) { c.ejbConns = n }
}

// WithoutUnitBatch disables level-batched unit invocation while keeping
// the framed transport — the scheduler falls back to one multiplexed
// call per unit (the middle variant of the E10 comparison).
func WithoutUnitBatch() Option {
	return func(c *config) { c.noUnitBatch = true }
}

// WithRequestTimeout gives every request a deadline budget: the
// controller derives a context that expires after d, and every tier
// below — page workers, bean cache, gob client and container — observes
// it. Requests past their budget answer 504 (or a degraded stale bean
// when WithDegradedServing is also set).
func WithRequestTimeout(d time.Duration) Option {
	return func(c *config) { c.requestTimeout = d }
}

// WithRetries retries failed idempotent unit reads up to n total
// attempts with jittered exponential backoff (operations are never
// retried). n <= 1 disables.
func WithRetries(n int) Option {
	return func(c *config) { c.retries = n }
}

// WithDegradedServing lets the bean cache serve TTL-expired beans no
// older than maxStale when the business tier fails — availability over
// freshness, bounded. Invalidated beans are removed outright, so
// degraded mode never serves data an operation has written over.
// Requires WithBeanCache.
func WithDegradedServing(maxStale time.Duration) Option {
	return func(c *config) { c.maxStale = maxStale }
}

// WithFaults injects deterministic chaos (latency spikes, error bursts,
// panics) into the business tier under the seeded schedule — the
// fault-injection harness behind `webratio serve -chaos`. Faults fire
// below the retry and cache decorators, exactly where a flapping
// container would.
func WithFaults(sched fault.Schedule) Option {
	return func(c *config) { s := sched; c.faults = &s }
}

// WithAdmission gates every controller action behind an admission
// limiter: at most maxConcurrency actions run at once, up to maxQueue
// more wait (briefly — a CoDel-style sojourn target sheds the queue
// before it stands), and excess load answers 503 with a drain-rate
// Retry-After instead of queueing toward collapse. Operations outrank
// interactive reads, which outrank crawler/bulk traffic; under a
// standing queue, bulk is shed on sight and a full queue displaces its
// newest lowest-class waiter for a higher-class arrival. maxQueue <= 0
// selects 4x maxConcurrency.
func WithAdmission(maxConcurrency, maxQueue int) Option {
	return func(c *config) {
		c.withAdmission = true
		c.maxConcurrency = maxConcurrency
		c.admitQueue = maxQueue
	}
}

// WithElasticFleet self-hosts an elastic application-server fleet:
// between min and max container clones (each with the given instance
// capacity; <=0 selects 8) are spawned in-process over the app's
// database, published through a FleetMembership the client stub
// subscribes to, and supervised — queue-depth, utilization and
// windowed-p99 signals scale the fleet up, sustained idleness drains
// and retires clones without failing an in-flight call. Mutually
// exclusive with WithAppServer (which targets an external, fixed
// fleet).
func WithElasticFleet(min, max, capacity int) Option {
	return func(c *config) {
		c.withFleet = true
		c.fleetMin = min
		c.fleetMax = max
		c.fleetCapacity = capacity
	}
}

// New validates the model, generates all artifacts, and assembles the
// runtime.
func New(model *webml.Model, opts ...Option) (*App, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	gen, err := codegen.New(model)
	if err != nil {
		return nil, err
	}
	art, err := gen.Generate()
	if err != nil {
		return nil, err
	}
	app := &App{Model: model, Artifacts: art}

	app.DB = cfg.db
	if app.DB == nil {
		app.DB = rdb.Open()
	}
	if !cfg.skipDDL {
		for _, stmt := range art.DDL {
			if _, err := app.DB.Exec(stmt); err != nil {
				return nil, fmt.Errorf("webmlgo: applying DDL: %w", err)
			}
		}
	}

	if cfg.faults != nil {
		app.Faults = fault.New(*cfg.faults)
	}

	// Business tier: local, application-server, or self-hosted elastic
	// fleet — optionally cached.
	switch {
	case cfg.withFleet:
		if len(cfg.appServer) > 0 {
			return nil, fmt.Errorf("webmlgo: WithElasticFleet and WithAppServer are mutually exclusive")
		}
		capacity := cfg.fleetCapacity
		if capacity <= 0 {
			capacity = 8
		}
		app.Members = ejb.NewFleetMembership()
		remote, err := ejb.DialMembership(app.Members)
		if err != nil {
			return nil, err
		}
		remote.Latency = cfg.latency
		remote.Wire = cfg.wire
		remote.ConnsPerEndpoint = cfg.ejbConns
		remote.DisableBatch = cfg.noUnitBatch
		app.Remote = remote
		app.Business = remote
		spawn := func() (*ejb.Clone, error) {
			var business mvc.Business = mvc.NewLocalBusiness(app.DB)
			if app.Faults != nil {
				// Self-hosted fleet: faults fire inside the clone, where
				// a flapping container actually lives, so injected
				// latency occupies a container slot.
				business = fault.WrapBusiness(business, app.Faults)
			}
			ctr := ejb.NewContainer(business, capacity)
			ctr.DeployPages(&mvc.PageService{Repo: art.Repo, Business: business})
			addr, err := ctr.Serve("127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			return &ejb.Clone{Addr: addr, Ctr: ctr}, nil
		}
		app.Fleet = ejb.NewSupervisor(spawn, app.Members, cfg.fleetMin, cfg.fleetMax)
		app.Fleet.ClientInFlight = remote.InFlight
		if err := app.Fleet.Start(); err != nil {
			return nil, err
		}
	case len(cfg.appServer) > 0:
		remote, err := ejb.Dial(cfg.appServer...)
		if err != nil {
			return nil, err
		}
		remote.Latency = cfg.latency
		remote.Wire = cfg.wire
		remote.ConnsPerEndpoint = cfg.ejbConns
		remote.DisableBatch = cfg.noUnitBatch
		app.Remote = remote
		app.Business = remote
	default:
		app.Business = mvc.NewLocalBusiness(app.DB)
	}
	// Resilience decorators stack below the caches: injected faults hit
	// where a flapping container would, retries absorb what they can,
	// and the bean cache's degraded mode covers the rest.
	if app.Faults != nil && !cfg.withFleet {
		app.Business = fault.WrapBusiness(app.Business, app.Faults)
	}
	if cfg.retries > 1 {
		seed := int64(1)
		if cfg.faults != nil && cfg.faults.Seed != 0 {
			seed = cfg.faults.Seed
		}
		app.Resilient = mvc.NewResilientBusiness(app.Business, seed)
		app.Resilient.MaxAttempts = cfg.retries
		app.Business = app.Resilient
	}
	if cfg.withBeanCache {
		app.BeanCache = cache.NewBeanCache(cfg.beanCache)
		cached := mvc.NewCachedBusiness(app.Business, app.BeanCache)
		cached.MaxStaleness = cfg.maxStale
		app.Business = cached
	}
	if cfg.withEdge {
		// In-process write-event bus: every successful operation pushes
		// its written tags to the edge, after the bean cache (inner
		// decorator) has already invalidated its own level.
		app.Business = &mvc.NotifyingBusiness{Inner: app.Business, OnWrite: func(tags []string) {
			if app.Edge != nil {
				app.Edge.Invalidate(tags...)
			}
		}}
	}

	// Presentation.
	switch {
	case cfg.runtime != nil:
		// Runtime styling: skeletons stay raw, rules apply per request.
	case cfg.bySiteView != nil:
		if _, err := style.CompileBySiteView(art.Repo, cfg.bySiteView, cfg.compiled); err != nil {
			return nil, err
		}
	case cfg.compiled != nil:
		if _, err := style.CompileTemplates(art.Repo, cfg.compiled); err != nil {
			return nil, err
		}
	}
	app.Renderer = render.NewEngine(art.Repo)
	if cfg.runtime != nil {
		app.Renderer.Styler = cfg.runtime
	}
	if cfg.withFragCache {
		app.FragmentCache = cache.NewFragmentCache(cfg.fragCache, cfg.fragTTL)
		app.Renderer.Fragments = app.FragmentCache
	}

	app.Controller = mvc.NewController(art.Repo, app.Business, app.Renderer)
	app.Controller.RequestTimeout = cfg.requestTimeout
	if cfg.withAdmission {
		app.Admission = admit.NewLimiter(cfg.maxConcurrency, cfg.admitQueue)
		app.Controller.Admission = app.Admission
	}
	if cfg.pageWorkers > 0 {
		app.Controller.SetPageWorkers(cfg.pageWorkers)
	}
	if cfg.remotePages {
		if app.Remote == nil {
			return nil, fmt.Errorf("webmlgo: WithRemotePages requires WithAppServer")
		}
		app.Controller.Pages = app.Remote.Pages()
	}
	if cfg.withPageCache {
		app.PageCache = cache.NewPageCache(cfg.pageCache, cfg.pageTTL)
		app.PageCache.BypassCookie = "WSESSION"
	}
	if cfg.withEdge {
		app.Controller.EdgeFragments = true
		app.Edge = edge.New(app.Controller, cfg.edgeCache, cfg.edgeTTL)
		app.Edge.BypassCookie = "WSESSION"
		app.Edge.VaryUserAgent = cfg.runtime != nil
	}
	// A hand-tuned query injected via OverrideQuery (Section 6) must not
	// leave the replaced SQL's compiled plan in the engine's cache.
	art.Repo.OnQueryOverride = func(_, oldQuery, _ string) {
		app.DB.InvalidatePlan(oldQuery)
	}
	app.wireObservability(&cfg)
	return app, nil
}

// Handler returns the application's HTTP entry point: the edge surrogate
// when WithEdgeCache was set, else the whole-page cache when
// WithPageCache was set, else the Controller directly.
func (a *App) Handler() http.Handler {
	if a.Edge != nil {
		return a.Edge
	}
	if a.PageCache != nil {
		return a.PageCache.Wrap(a.Controller)
	}
	return a.Controller
}

// LocalBusiness returns the in-process business tier, or nil when the
// app runs against an application server. Use it to register plug-in
// unit services and custom components.
func (a *App) LocalBusiness() *mvc.LocalBusiness {
	b := a.Business
	for {
		switch t := b.(type) {
		case *mvc.LocalBusiness:
			return t
		case *mvc.CachedBusiness:
			b = t.Inner
		case *mvc.NotifyingBusiness:
			b = t.Inner
		case *mvc.ResilientBusiness:
			b = t.Inner
		case *fault.Business:
			b = t.Inner
		default:
			return nil
		}
	}
}

// DeployContainer deploys this application's business tier — unit,
// operation AND page services — into an application-server container
// listening on addr and returns the bound address: the server half of
// Figure 6. A separate App created with WithAppServer(addr) then acts as
// the web tier; add WithRemotePages to compute whole pages in one round
// trip.
func DeployContainer(model *webml.Model, db *rdb.DB, capacity int, addr string) (*ejb.Container, string, error) {
	gen, err := codegen.New(model)
	if err != nil {
		return nil, "", err
	}
	art, err := gen.Generate()
	if err != nil {
		return nil, "", err
	}
	business := mvc.NewLocalBusiness(db)
	ctr := ejb.NewContainer(business, capacity)
	ctr.DeployPages(&mvc.PageService{Repo: art.Repo, Business: business})
	bound, err := ctr.Serve(addr)
	if err != nil {
		return nil, "", err
	}
	return ctr, bound, nil
}

// Repo exposes the generated descriptor repository (for query overrides
// and inspection).
func (a *App) Repo() *descriptor.Repository { return a.Artifacts.Repo }

// Close shuts down the app's owned resources: the elastic fleet (every
// clone drains and closes), the remote client, and the edge surrogate's
// refresh workers. Apps without those options need no Close.
func (a *App) Close() {
	if a.Fleet != nil {
		a.Fleet.Stop()
	}
	if a.Remote != nil {
		a.Remote.Close()
	}
	if a.Edge != nil {
		a.Edge.Close()
	}
}
