package webmlgo

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"webmlgo/internal/admit"
	"webmlgo/internal/ejb"
)

// Health is the web tier's /healthz snapshot: circuit-breaker state per
// container endpoint, admission-control pressure, fleet size,
// resilience counters, and cache degradation — the operator's view of
// whether the tier split is currently absorbing failures or surfacing
// them.
type Health struct {
	OK bool `json:"ok"`
	// Endpoints is the client-side view of each container address
	// (empty without WithAppServer or WithElasticFleet).
	Endpoints []ejb.EndpointHealth `json:"endpoints,omitempty"`
	// Admission is the limiter snapshot (WithAdmission): active slots,
	// queue depth, standing-queue flag, per-class shed counters.
	Admission *admit.Stats `json:"admission,omitempty"`
	// Fleet is the supervisor snapshot (WithElasticFleet): current
	// size, draining clones, and recent scale events.
	Fleet *ejb.FleetStats `json:"fleet,omitempty"`
	// Retries counts unit-read retry attempts (WithRetries).
	Retries int64 `json:"retries,omitempty"`
	// DegradedHits counts stale beans served while the business tier
	// was failing (WithDegradedServing).
	DegradedHits int64 `json:"degradedHits,omitempty"`
	// Faults reports injected chaos counts when -chaos is active.
	Faults interface{} `json:"faults,omitempty"`
	// Recorder is the slow-query flight recorder snapshot
	// (WithQueryAnalysis): capture threshold and how many queries the
	// ring has seen.
	Recorder *RecorderHealth `json:"recorder,omitempty"`
}

// RecorderHealth summarizes the slow-query flight recorder.
type RecorderHealth struct {
	Threshold string `json:"threshold"`
	Captured  uint64 `json:"captured"`
}

// Health snapshots the application's resilience state. OK is false only
// when every container endpoint's breaker is open — the web tier can
// still answer from cache (degraded), but new business work will fail.
// Admission pressure (even a standing queue) does not flip OK: a
// shedding tier is degraded by policy, not down.
func (a *App) Health() Health {
	h := Health{OK: true}
	if a.Remote != nil {
		h.Endpoints = a.Remote.Health()
		allOpen := len(h.Endpoints) > 0
		for _, ep := range h.Endpoints {
			if ep.State != ejb.BreakerOpen {
				allOpen = false
			}
		}
		h.OK = !allOpen
	}
	if a.Admission != nil {
		s := a.Admission.Stats()
		h.Admission = &s
	}
	if a.Fleet != nil {
		s := a.Fleet.Stats()
		h.Fleet = &s
	}
	if a.Resilient != nil {
		h.Retries = a.Resilient.Retries.Load()
	}
	if a.BeanCache != nil {
		h.DegradedHits = a.BeanCache.Stats().DegradedHits
	}
	if a.Faults != nil {
		h.Faults = a.Faults.Counts()
	}
	if enabled, threshold := a.DB.RecorderEnabled(); enabled {
		h.Recorder = &RecorderHealth{
			Threshold: threshold.String(),
			Captured:  a.DB.Stats().QueriesRecorded,
		}
	}
	return h
}

// retryAfter is the back-off the web tier advertises on a 503: the
// larger of the soonest breaker recovery (failing containers) and the
// admission queue's drain estimate (overload) — whichever condition
// clears later governs when a retry can actually succeed.
func (a *App) retryAfter() time.Duration {
	retry := time.Second
	if a.Remote != nil {
		if d := a.Remote.RetryAfter(); d > retry {
			retry = d
		}
	}
	if a.Admission != nil {
		if d := a.Admission.RetryAfter(); d > retry {
			retry = d
		}
	}
	return retry
}

// HealthHandler returns the /healthz endpoint: Health as JSON, 200
// while at least one path to the business tier works, 503 once every
// breaker is open. The 503 carries a Retry-After header covering both
// the soonest breaker cooldown and the admission queue's measured
// drain time, so load balancers back off for exactly as long as
// requests would keep failing or shedding.
func (a *App) HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h := a.Health()
		w.Header().Set("Content-Type", "application/json")
		if !h.OK {
			w.Header().Set("Retry-After", strconv.Itoa(int(a.retryAfter()/time.Second)))
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(h) //nolint:errcheck // best-effort probe response
	})
}
