package webmlgo

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"webmlgo/internal/ejb"
)

// Health is the web tier's /healthz snapshot: circuit-breaker state per
// container endpoint, resilience counters, and cache degradation — the
// operator's view of whether the tier split is currently absorbing
// failures or surfacing them.
type Health struct {
	OK bool `json:"ok"`
	// Endpoints is the client-side view of each container address
	// (empty without WithAppServer).
	Endpoints []ejb.EndpointHealth `json:"endpoints,omitempty"`
	// Retries counts unit-read retry attempts (WithRetries).
	Retries int64 `json:"retries,omitempty"`
	// DegradedHits counts stale beans served while the business tier
	// was failing (WithDegradedServing).
	DegradedHits int64 `json:"degradedHits,omitempty"`
	// Faults reports injected chaos counts when -chaos is active.
	Faults interface{} `json:"faults,omitempty"`
}

// Health snapshots the application's resilience state. OK is false only
// when every container endpoint's breaker is open — the web tier can
// still answer from cache (degraded), but new business work will fail.
func (a *App) Health() Health {
	h := Health{OK: true}
	if a.Remote != nil {
		h.Endpoints = a.Remote.Health()
		allOpen := len(h.Endpoints) > 0
		for _, ep := range h.Endpoints {
			if ep.State != ejb.BreakerOpen {
				allOpen = false
			}
		}
		h.OK = !allOpen
	}
	if a.Resilient != nil {
		h.Retries = a.Resilient.Retries.Load()
	}
	if a.BeanCache != nil {
		h.DegradedHits = a.BeanCache.Stats().DegradedHits
	}
	if a.Faults != nil {
		h.Faults = a.Faults.Counts()
	}
	return h
}

// HealthHandler returns the /healthz endpoint: Health as JSON, 200
// while at least one path to the business tier works, 503 once every
// breaker is open. The 503 carries a Retry-After header derived from
// the soonest breaker cooldown, so load balancers back off for exactly
// as long as the client stub will keep failing fast.
func (a *App) HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h := a.Health()
		w.Header().Set("Content-Type", "application/json")
		if !h.OK {
			retry := time.Second
			if a.Remote != nil {
				retry = a.Remote.RetryAfter()
			}
			w.Header().Set("Retry-After", strconv.Itoa(int(retry/time.Second)))
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(h) //nolint:errcheck // best-effort probe response
	})
}
