package webmlgo

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"webmlgo/internal/descriptor"
	"webmlgo/internal/fixture"
	"webmlgo/internal/mvc"
	"webmlgo/internal/rdb"
	"webmlgo/internal/render"
	"webmlgo/internal/webml"
)

func newApp(t *testing.T, opts ...Option) *App {
	t.Helper()
	app, err := New(fixture.Figure1Model(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := fixture.Seed(app.DB); err != nil {
		t.Fatal(err)
	}
	return app
}

func request(t *testing.T, h http.Handler, path, userAgent string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if userAgent != "" {
		req.Header.Set("User-Agent", userAgent)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr, rr.Body.String()
}

func TestNewAssemblesWorkingApp(t *testing.T) {
	app := newApp(t)
	rr, body := request(t, app.Handler(), "/page/volumePage?volume=1", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rr.Code, body)
	}
	if !strings.Contains(body, "TODS Volume 27") {
		t.Fatalf("content missing:\n%s", body)
	}
}

func TestNewRejectsInvalidModel(t *testing.T) {
	// A model with no site views fails validation inside New.
	m := &Model{Name: "bad", Data: fixture.ACMSchema()}
	if _, err := New(m); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestWithCompiledStyle(t *testing.T) {
	app := newApp(t, WithCompiledStyle(B2CStyle()))
	_, body := request(t, app.Handler(), "/page/volumePage?volume=1", "")
	if !strings.Contains(body, "unit-box") || !strings.Contains(body, "site-header") {
		t.Fatalf("compiled style missing:\n%s", body)
	}
	if !strings.Contains(body, "b2c style sheet") {
		t.Fatal("CSS missing")
	}
}

func TestWithRuntimeStyleAdaptsToDevice(t *testing.T) {
	app := newApp(t, WithRuntimeStyle(MultiDevice(B2CStyle())))
	_, desktop := request(t, app.Handler(), "/page/volumePage?volume=1", "Mozilla/5.0 (X11; Linux)")
	_, mobile := request(t, app.Handler(), "/page/volumePage?volume=1", "Mozilla/5.0 (iPhone; Mobile)")
	if !strings.Contains(desktop, "unit-box") {
		t.Fatalf("desktop style missing:\n%s", desktop)
	}
	if !strings.Contains(mobile, "m-unit") {
		t.Fatalf("mobile style missing:\n%s", mobile)
	}
	if strings.Contains(mobile, "unit-box") {
		t.Fatal("desktop rules leaked into mobile")
	}
}

func TestWithCachesEndToEnd(t *testing.T) {
	app := newApp(t, WithBeanCache(1024), WithFragmentCache(1024, time.Minute))
	request(t, app.Handler(), "/page/volumePage?volume=1", "")
	request(t, app.Handler(), "/page/volumePage?volume=1", "")
	if app.BeanCache.Stats().Hits == 0 {
		t.Fatalf("bean cache unused: %+v", app.BeanCache.Stats())
	}
	if app.FragmentCache.Stats().Hits == 0 {
		t.Fatalf("fragment cache unused: %+v", app.FragmentCache.Stats())
	}
}

func TestWithAppServer(t *testing.T) {
	// Deploy the business tier in a container, then assemble the web
	// tier against it (Figure 6, both halves).
	backendDB := rdb.Open()
	seedApp, err := New(fixture.Figure1Model()) // generates DDL into its own db
	if err != nil {
		t.Fatal(err)
	}
	for _, stmt := range seedApp.Artifacts.DDL {
		if _, err := backendDB.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	if err := fixture.Seed(backendDB); err != nil {
		t.Fatal(err)
	}
	ctr, addr, err := DeployContainer(fixture.Figure1Model(), backendDB, 8, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctr.Close()

	app, err := New(fixture.Figure1Model(), WithAppServer(addr))
	if err != nil {
		t.Fatal(err)
	}
	defer app.Remote.Close()
	rr, body := request(t, app.Handler(), "/page/volumePage?volume=1", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rr.Code, body)
	}
	if !strings.Contains(body, "TODS Volume 27") {
		t.Fatalf("remote content missing:\n%s", body)
	}
	if ctr.Metrics().Served == 0 {
		t.Fatal("container unused")
	}
	if app.LocalBusiness() != nil {
		t.Fatal("remote app claims a local business tier")
	}
}

func TestLocalBusinessAccessors(t *testing.T) {
	app := newApp(t)
	if app.LocalBusiness() == nil {
		t.Fatal("plain app lacks local business")
	}
	cached := newApp(t, WithBeanCache(16))
	if cached.LocalBusiness() == nil {
		t.Fatal("cached app lacks local business")
	}
}

func TestQueryOverrideThroughFacade(t *testing.T) {
	app := newApp(t)
	if err := app.Repo().OverrideQuery("volumeData",
		"SELECT t.oid, t.title, t.year FROM volume t WHERE t.oid = ? -- tuned"); err != nil {
		t.Fatal(err)
	}
	rr, body := request(t, app.Handler(), "/page/volumePage?volume=1", "")
	if rr.Code != http.StatusOK || !strings.Contains(body, "TODS Volume 27") {
		t.Fatalf("tuned query broken: %d\n%s", rr.Code, body)
	}
}

func TestWithDatabaseReuse(t *testing.T) {
	first := newApp(t)
	// Second app over the same data, skipping DDL.
	second, err := New(fixture.Figure1Model(), WithDatabase(first.DB))
	if err != nil {
		t.Fatal(err)
	}
	_, body := request(t, second.Handler(), "/page/volumesPage", "")
	if !strings.Contains(body, "TODS Volume 27") {
		t.Fatal("shared database not visible")
	}
}

func TestPluginEndToEnd(t *testing.T) {
	// A plug-in unit: declared in the design environment, given a
	// runtime service and a rendition tag (Section 7's plug-in units).
	if err := RegisterPlugin(PluginSpec{Kind: "clock", Description: "server time"}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { webml.UnregisterPlugin("clock") })

	b := NewBuilder("plugged", fixture.ACMSchema())
	pb := b.SiteView("sv", "SV").Page("home", "Home")
	pb.Index("volIdx", "Volume", "Title")
	pb.Plugin("clock1", "clock", map[string]string{"zone": "UTC"})
	model, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	app, err := New(model)
	if err != nil {
		t.Fatal(err)
	}
	app.LocalBusiness().RegisterUnitService("clock", mvc.UnitServiceFunc(
		func(_ context.Context, _ *rdb.DB, d *descriptor.Unit, _ map[string]mvc.Value) (*mvc.UnitBean, error) {
			zone, _ := d.Prop("zone")
			return &mvc.UnitBean{UnitID: d.ID, Kind: d.Kind,
				Props: map[string]string{"zone": zone}}, nil
		}))
	app.Renderer.RegisterTag("clock", func(_ *render.Context, bean *mvc.UnitBean) string {
		return `<div class="clock">` + bean.Props["zone"] + `</div>`
	})
	rr, body := request(t, app.Handler(), "/page/home", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rr.Code, body)
	}
	if !strings.Contains(body, `<div class="clock">UTC</div>`) {
		t.Fatalf("plug-in rendition missing:\n%s", body)
	}
}

// TestWithRemotePages drives the "Page EJBs" deployment of Figure 6: the
// whole page computation happens in the application server, one round
// trip per page.
func TestWithRemotePages(t *testing.T) {
	backend, err := New(fixture.Figure1Model())
	if err != nil {
		t.Fatal(err)
	}
	if err := fixture.Seed(backend.DB); err != nil {
		t.Fatal(err)
	}
	ctr, addr, err := DeployContainer(fixture.Figure1Model(), backend.DB, 8, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctr.Close()

	web, err := New(fixture.Figure1Model(), WithAppServer(addr), WithRemotePages())
	if err != nil {
		t.Fatal(err)
	}
	defer web.Remote.Close()
	served0 := ctr.Metrics().Served
	rr, body := request(t, web.Handler(), "/page/volumePage?volume=1", "")
	if rr.Code != http.StatusOK || !strings.Contains(body, "TODS Volume 27") {
		t.Fatalf("remote page broken: %d\n%s", rr.Code, body)
	}
	// One container invocation for the whole 3-unit page.
	if got := ctr.Metrics().Served - served0; got != 1 {
		t.Fatalf("container served %d calls for one page, want 1", got)
	}
	// Without WithAppServer the option is rejected.
	if _, err := New(fixture.Figure1Model(), WithRemotePages()); err == nil {
		t.Fatal("WithRemotePages without WithAppServer accepted")
	}
}

// TestWithPageCache: the first-generation whole-page cache serves
// anonymous repeats without touching the application — and demonstrates
// the staleness the paper's Section 6 calls inadequate.
func TestWithPageCache(t *testing.T) {
	app := newApp(t, WithPageCache(256, time.Minute))
	h := app.Handler()
	_, first := request(t, h, "/page/volumesPage", "")
	rr2, second := request(t, h, "/page/volumesPage", "")
	if rr2.Header().Get("X-Cache") != "HIT" || first != second {
		t.Fatal("whole-page cache not serving")
	}
	// Write through an operation: the whole-page cache keeps serving the
	// stale page (no model-driven invalidation at this level).
	request(t, h, "/op/createVolume?title=Brand+New&year=2005", "")
	_, third := request(t, h, "/page/volumesPage", "")
	if strings.Contains(third, "Brand New") {
		t.Fatal("expected the stale page from the whole-page cache")
	}
	// The authenticated path bypasses the cache (session cookie present).
	rrA, _ := request(t, h, "/page/volumesPage", "")
	cookies := rrA.Result().Cookies()
	if len(cookies) == 0 {
		t.Skip("no session cookie on cached response (stripped), bypass covered in cache tests")
	}
}

func TestWithSiteViewStyles(t *testing.T) {
	app := newApp(t, WithSiteViewStyles(map[string]*StyleRuleSet{
		"public": B2CStyle(),
		"admin":  IntranetStyle(),
	}, nil))
	_, pub := request(t, app.Handler(), "/page/volumesPage", "")
	if !strings.Contains(pub, `data-style="b2c"`) {
		t.Fatalf("public site view not b2c-styled:\n%s", pub)
	}
	// Admin pages carry the intranet style (check the stored template:
	// the page itself needs auth).
	tpl, _ := app.Repo().Template("managePage")
	if !strings.Contains(tpl, `data-style="intranet"`) {
		t.Fatalf("admin template not intranet-styled:\n%s", tpl)
	}
}

// TestOperationChainWithExplicitForwarding drives a create -> connect
// operation chain where the OK link of the first operation maps its
// outputs onto the second operation's inputs (Section 3's "operations...
// activated from the application pages" composed via OK links).
func TestOperationChainWithExplicitForwarding(t *testing.T) {
	schema := &Schema{
		Entities: []*Entity{
			{Name: "Product", Attributes: []Attribute{{Name: "Name", Type: String, Required: true}}},
			{Name: "Family", Attributes: []Attribute{{Name: "Name", Type: String, Required: true}}},
		},
		Relationships: []*Relationship{
			{Name: "FamilyToProduct", From: "Family", To: "Product",
				FromRole: "FamilyToProduct", ToRole: "ProductToFamily",
				FromCard: Many, ToCard: One},
		},
	}
	b := NewBuilder("chain", schema)
	sv := b.SiteView("sv", "SV")
	manage := sv.Page("manage", "Manage")
	form := manage.Entry("form",
		Field{Name: "name", Type: String, Required: true},
		Field{Name: "family", Type: Int, Required: true})
	create := b.Operation("createProduct", CreateUnit, "Product")
	create.Set = map[string]string{"Name": "name"}
	b.Link(form.ID, create.ID, P("name", "name"), P("family", "family"))
	attach := b.Connect("attach", "FamilyToProduct")
	// Explicit forwarding: the created OID becomes "to", the request's
	// family parameter becomes "from".
	b.OK(create.ID, attach.ID, P("oid", "to"), P("family", "from"))
	b.KO(create.ID, manage.Ref())
	b.OK(attach.ID, manage.Ref())

	app, err := New(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.DB.Exec(`INSERT INTO family (name) VALUES ('Notebooks')`); err != nil {
		t.Fatal(err)
	}
	rr, _ := request(t, app.Handler(), "/op/createProduct?name=TM100&family=1", "")
	if rr.Code != http.StatusFound {
		t.Fatalf("status = %d: %s", rr.Code, rr.Body.String())
	}
	loc := rr.Header().Get("Location")
	if !strings.HasPrefix(loc, "/page/manage") || strings.Contains(loc, "_error") {
		t.Fatalf("redirect = %q", loc)
	}
	m, err := app.DB.QueryRow(`SELECT fk_familytoproduct FROM product WHERE name = 'TM100'`)
	if err != nil || m == nil {
		t.Fatalf("product missing: %v %v", m, err)
	}
	if m["fk_familytoproduct"] != int64(1) {
		t.Fatalf("chain did not connect: %v", m)
	}
	// A failing second hop follows the chain's KO handling.
	rr2, _ := request(t, app.Handler(), "/op/createProduct?name=TM200&family=99", "")
	loc2 := rr2.Header().Get("Location")
	if !strings.Contains(loc2, "_error=") {
		t.Fatalf("expected KO redirect, got %q", loc2)
	}
}

// TestConcurrentMixedLoad hammers the full stack (two-level cache on)
// with parallel readers and writers; every response must be coherent
// (200/302/304, never 5xx) and the final state consistent.
func TestConcurrentMixedLoad(t *testing.T) {
	app := newApp(t, WithBeanCache(4096), WithFragmentCache(4096, time.Minute))
	h := app.Handler()
	var wg sync.WaitGroup
	errs := make(chan string, 256)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				var path string
				switch i % 4 {
				case 0:
					path = "/page/volumesPage"
				case 1:
					path = "/page/volumePage?volume=1"
				case 2:
					path = "/page/searchResults?kw=web"
				default:
					path = fmt.Sprintf("/op/createVolume?title=G%dI%d&year=2000", g, i)
				}
				req := httptest.NewRequest(http.MethodGet, path, nil)
				rr := httptest.NewRecorder()
				h.ServeHTTP(rr, req)
				if rr.Code >= 500 {
					errs <- fmt.Sprintf("%s -> %d: %s", path, rr.Code, rr.Body.String())
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	// 8 goroutines x 10 creates each + 2 seeded volumes.
	n, err := app.DB.RowCount("volume")
	if err != nil || n != 82 {
		t.Fatalf("volumes = %d err = %v", n, err)
	}
	// A final read reflects every write (no stale caches).
	_, body := request(t, app.Handler(), "/page/volumesPage", "")
	if !strings.Contains(body, "G7I39") {
		t.Fatal("final state not visible")
	}
}
