package webmlgo

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"webmlgo/internal/ejb"
	"webmlgo/internal/fixture"
)

// obsStack assembles the full three-tier stack with observability on:
// an edge surrogate in front of a web tier whose business calls go to a
// remote container over the gob protocol.
func obsStack(t *testing.T) (*App, *ejb.Container) {
	t.Helper()
	backend, err := New(fixture.Figure1Model())
	if err != nil {
		t.Fatal(err)
	}
	if err := fixture.Seed(backend.DB); err != nil {
		t.Fatal(err)
	}
	ctr, addr, err := DeployContainer(fixture.Figure1Model(), backend.DB, 8, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctr.Close() })

	app, err := New(fixture.Figure1Model(),
		WithAppServer(addr),
		WithBeanCache(1024),
		WithEdgeCache(1024, time.Minute),
		WithObservability(64, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { app.Remote.Close(); app.Edge.Close() })
	return app, ctr
}

// TestStitchedTraceAcrossTiers: one request through edge + controller +
// remote container yields a single trace whose spans cover the edge
// assembly, the controller dispatch, the remote EJB calls, and the
// container-side invoke spans shipped back over the gob wire — all
// linked to one root covering the full wall time.
func TestStitchedTraceAcrossTiers(t *testing.T) {
	app, _ := obsStack(t)

	if rr, body := request(t, app.Handler(), "/page/volumePage?volume=1", ""); rr.Code != 200 {
		t.Fatalf("page = %d %s", rr.Code, body)
	}

	rr, body := request(t, app.TracesHandler(), "/debug/traces", "")
	if rr.Code != 200 {
		t.Fatalf("/debug/traces = %d %s", rr.Code, body)
	}
	var out struct {
		Started int64 `json:"started"`
		Traces  []struct {
			ID    string  `json:"id"`
			Name  string  `json:"name"`
			DurMS float64 `json:"dur_ms"`
			Spans []struct {
				ID      uint64            `json:"id"`
				Parent  uint64            `json:"parent"`
				Name    string            `json:"name"`
				Labels  map[string]string `json:"labels"`
				StartUS int64             `json:"start_us"`
				DurUS   int64             `json:"dur_us"`
			} `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.Started < 1 || len(out.Traces) < 1 {
		t.Fatalf("no traces captured: started=%d traces=%d", out.Started, len(out.Traces))
	}

	// Find the edge-rooted page trace. Every tier must have contributed
	// spans, including the container-side ones stitched in from the gob
	// response.
	tr := out.Traces[0]
	for _, cand := range out.Traces {
		if strings.HasPrefix(cand.Name, "edge:") {
			tr = cand
			break
		}
	}
	if !strings.HasPrefix(tr.Name, "edge:") {
		t.Fatalf("no edge-rooted trace among %d traces (first name %q)", len(out.Traces), out.Traces[0].Name)
	}
	names := map[string]int{}
	ids := map[uint64]bool{}
	for _, sp := range tr.Spans {
		names[sp.Name]++
		if ids[sp.ID] {
			t.Fatalf("duplicate span ID %d (client/container collision)", sp.ID)
		}
		ids[sp.ID] = true
	}
	for _, want := range []string{"request", "edge.resolve", "controller", "ejb.call", "container.invoke"} {
		if names[want] == 0 {
			t.Fatalf("trace lacks %q span; got %v", want, names)
		}
	}

	// Stitched spans link into the tree: every non-root parent is a span
	// of this same trace.
	var rootDurUS int64
	for _, sp := range tr.Spans {
		if sp.Parent == 0 {
			if sp.Name == "request" && sp.DurUS > rootDurUS {
				rootDurUS = sp.DurUS
			}
			continue
		}
		if !ids[sp.Parent] {
			t.Fatalf("span %q has dangling parent %d", sp.Name, sp.Parent)
		}
	}

	// Coverage: the root span accounts for >= 95% of the trace's wall
	// time (the acceptance bar for "the trace explains the request").
	if float64(rootDurUS) < 0.95*tr.DurMS*1000 {
		t.Fatalf("root span covers %dus of %.0fus", rootDurUS, tr.DurMS*1000)
	}

	// Container-side spans carry the request kind from the wire.
	for _, sp := range tr.Spans {
		if sp.Name == "container.invoke" && sp.Labels["kind"] == "" {
			t.Fatalf("container span lacks kind label: %+v", sp)
		}
	}
}

// TestMetricsExpositionBothTiers: /metrics on the web tier exposes
// per-action, per-page, per-unit and per-endpoint latency quantiles
// plus cache and edge counters; the container tier exposes its own
// invoke histograms — the same model-derived label vocabulary on both
// sides of the gob wire.
func TestMetricsExpositionBothTiers(t *testing.T) {
	app, ctr := obsStack(t)

	// Drive one request through the edge and one directly against the
	// controller (the whole-page path that feeds the page histogram).
	if rr, body := request(t, app.Handler(), "/page/volumePage?volume=1", ""); rr.Code != 200 {
		t.Fatalf("edge page = %d %s", rr.Code, body)
	}
	if rr, body := request(t, app.Controller, "/page/volumePage?volume=2", ""); rr.Code != 200 {
		t.Fatalf("controller page = %d %s", rr.Code, body)
	}

	rr, body := request(t, app.MetricsHandler(), "/metrics", "")
	if rr.Code != 200 {
		t.Fatalf("/metrics = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE webml_action_seconds histogram",
		`webml_action_seconds_bucket{action="page/volumePage",le="+Inf"}`,
		`webml_action_seconds_quantile{action="page/volumePage",q="0.95"}`,
		`webml_page_compute_seconds_quantile{page="volumePage",q="0.99"}`,
		`webml_unit_compute_seconds_quantile{q="0.5",unit="volumeData"}`,
		"webml_ejb_call_seconds_bucket",
		`webml_cache_hits_total{cache="bean"}`,
		`webml_edge_resolutions_total{disposition="miss"}`,
		"webml_breaker_open{",
		"webml_traces_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("web-tier /metrics lacks %q\n%s", want, body)
		}
	}

	// Quantiles are ordered: p50 <= p95 <= p99 for the page action.
	var p50, p95, p99 float64
	n := 0
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, `webml_action_seconds_quantile{action="page/volumePage"`) {
			continue
		}
		parts := strings.Fields(line)
		var v float64
		if _, err := fmt.Sscan(parts[len(parts)-1], &v); err != nil {
			t.Fatalf("bad quantile line %q: %v", line, err)
		}
		switch {
		case strings.Contains(line, `q="0.5"`):
			p50 = v
		case strings.Contains(line, `q="0.95"`):
			p95 = v
		case strings.Contains(line, `q="0.99"`):
			p99 = v
		}
		n++
	}
	if n != 3 {
		t.Fatalf("want 3 page-action quantile lines, got %d", n)
	}
	if p50 <= 0 || p50 > p95 || p95 > p99 {
		t.Fatalf("quantiles out of order: p50=%g p95=%g p99=%g", p50, p95, p99)
	}

	// Container tier: its own registry exposes the invoke histogram
	// keyed by request kind plus capacity gauges.
	rr2, ctrBody := request(t, ctr.MetricsRegistry(), "/metrics", "")
	if rr2.Code != 200 {
		t.Fatalf("container /metrics = %d", rr2.Code)
	}
	for _, want := range []string{
		"webml_container_capacity 8",
		"webml_container_served_total",
		`webml_container_invoke_seconds_bucket{kind="unit"`,
		`webml_container_invoke_seconds_quantile{kind="unit",q="0.95"}`,
	} {
		if !strings.Contains(ctrBody, want) {
			t.Fatalf("container /metrics lacks %q\n%s", want, ctrBody)
		}
	}
}

// TestTracesHandlerDisabled: without WithObservability the traces
// endpoint answers 404 rather than an empty ring.
func TestTracesHandlerDisabled(t *testing.T) {
	app := newApp(t)
	rr, _ := request(t, app.TracesHandler(), "/debug/traces", "")
	if rr.Code != 404 {
		t.Fatalf("disabled /debug/traces = %d", rr.Code)
	}
	if rr, body := request(t, app.Handler(), "/page/volumePage?volume=1", ""); rr.Code != 200 {
		t.Fatalf("page = %d %s", rr.Code, body)
	}
	rr2, body := request(t, app.MetricsHandler(), "/metrics", "")
	if rr2.Code != 200 || !strings.Contains(body, "webml_action_seconds") {
		t.Fatalf("metrics without observability = %d\n%s", rr2.Code, body)
	}
}
