package webmlgo

// Integration tests of the ESI surrogate edge tier (Section 6's
// last-generation web cache as a real HTTP tier in front of the MVC
// stack): byte equivalence with in-process rendering, model-driven
// purge exactness, and coherence under concurrent read/write traffic.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// edgePages are the anonymous fixture pages the equivalence tests cover:
// data + nested relationship index + entry, plain index, and a scroller
// with query parameters.
var edgePages = []string{
	"/page/volumesPage",
	"/page/volumePage?volume=1",
	"/page/paperPage?paper=1",
	"/page/searchResults?kw=Query",
	"/page/volumePage?volume=1&_error=boom",
}

// TestEdgeAssemblyByteIdentical: for every covered page, the
// edge-assembled response equals the Controller's inline rendering byte
// for byte (and therefore carries the identical content-addressed ETag).
func TestEdgeAssemblyByteIdentical(t *testing.T) {
	edgeApp := newApp(t, WithEdgeCache(1024, time.Minute), WithBeanCache(4096))
	defer edgeApp.Edge.Close()
	plainApp := newApp(t)

	for _, path := range edgePages {
		for _, pass := range []string{"miss", "hit"} {
			rr, assembled := request(t, edgeApp.Handler(), path, "")
			if rr.Code != http.StatusOK {
				t.Fatalf("%s [%s]: edge status %d", path, pass, rr.Code)
			}
			inlineRR, inline := request(t, plainApp.Handler(), path, "")
			if inlineRR.Code != http.StatusOK {
				t.Fatalf("%s: inline status %d", path, inlineRR.Code)
			}
			if assembled != inline {
				t.Fatalf("%s [%s]: edge-assembled page differs from inline rendering\nedge:   %q\ninline: %q",
					path, pass, assembled, inline)
			}
			if et, it := rr.Header().Get("ETag"), inlineRR.Header().Get("ETag"); et != it {
				t.Fatalf("%s [%s]: ETag %q != inline ETag %q", path, pass, et, it)
			}
		}
	}
}

// TestEdgeAssemblyByteIdenticalRuntimeStyle repeats the equivalence
// check with per-request presentation rules: each device variant must
// assemble to exactly its own inline rendering.
func TestEdgeAssemblyByteIdenticalRuntimeStyle(t *testing.T) {
	edgeApp := newApp(t, WithEdgeCache(1024, time.Minute), WithRuntimeStyle(MultiDevice(B2CStyle())))
	defer edgeApp.Edge.Close()
	plainApp := newApp(t, WithRuntimeStyle(MultiDevice(B2CStyle())))

	for _, ua := range []string{"Mozilla/5.0 (X11; Linux)", "Mozilla/5.0 (iPhone; Mobile)"} {
		for _, path := range []string{"/page/volumePage?volume=1", "/page/volumesPage"} {
			_, assembled := request(t, edgeApp.Handler(), path, ua)
			_, inline := request(t, plainApp.Handler(), path, ua)
			if assembled != inline {
				t.Fatalf("%s (%s): edge-assembled page differs from inline rendering", path, ua)
			}
		}
	}
	// The mobile variant must actually differ from desktop (the styler
	// dispatched), or the Vary coverage above proves nothing.
	_, desktop := request(t, edgeApp.Handler(), "/page/volumePage?volume=1", "Mozilla/5.0 (X11; Linux)")
	_, mobile := request(t, edgeApp.Handler(), "/page/volumePage?volume=1", "Mozilla/5.0 (iPhone; Mobile)")
	if desktop == mobile {
		t.Fatal("desktop and mobile renderings are identical; styler not engaged")
	}
}

// TestEdgeWritePurgesExactlyDependents: an operation's write event
// purges the fragments reading the written entity and nothing else.
func TestEdgeWritePurgesExactlyDependents(t *testing.T) {
	app := newApp(t, WithEdgeCache(1024, time.Minute), WithBeanCache(4096))
	defer app.Edge.Close()
	h := app.Handler()

	_, before := request(t, h, "/page/volumesPage", "")
	request(t, h, "/page/paperPage?paper=1", "")
	paperHits := app.Edge.Stats().Hits

	rr, body := request(t, h, "/op/createVolume?title=Edge+Purge+Proof&year=2099", "")
	if rr.Code != http.StatusFound {
		t.Fatalf("operation status %d: %s", rr.Code, body)
	}

	_, after := request(t, h, "/page/volumesPage", "")
	if after == before {
		t.Fatal("volumesPage unchanged after createVolume: stale fragment served")
	}
	if !strings.Contains(after, "Edge Purge Proof") {
		t.Fatalf("new volume missing from purged page:\n%s", after)
	}

	// paperPage depends on entity:paper / entity:keyword only — its
	// fragments must have survived the volume write.
	rr, _ = request(t, h, "/page/paperPage?paper=1", "")
	if rr.Header().Get("X-Cache") != "HIT" {
		t.Fatalf("paperPage X-Cache = %q after unrelated write, want HIT", rr.Header().Get("X-Cache"))
	}
	if app.Edge.Stats().Hits <= paperHits {
		t.Fatal("paperPage did not hit the edge cache after an unrelated write")
	}
}

// TestEdgeHTTPInvalidateEndpoint covers the out-of-process purge
// channel end to end against a real application.
func TestEdgeHTTPInvalidateEndpoint(t *testing.T) {
	app := newApp(t, WithEdgeCache(1024, time.Minute))
	defer app.Edge.Close()
	h := app.Handler()

	request(t, h, "/page/volumesPage", "")
	req := httptest.NewRequest(http.MethodPost, "/edge/invalidate", strings.NewReader("tags=entity:volume"))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), "purged 1") {
		t.Fatalf("invalidate endpoint: %d %q", rr.Code, rr.Body.String())
	}
	// The page container (data-independent) survives, but the purged
	// fragment must miss and refetch on the next request.
	misses := app.Edge.Stats().Misses
	request(t, h, "/page/volumesPage", "")
	if app.Edge.Stats().Misses != misses+1 {
		t.Fatal("fragment served from cache after HTTP purge")
	}
}

// TestEdgeCoherenceUnderConcurrentWrites is the stale-while-revalidate
// hammer: with a tiny TTL (so stale serving and background refresh are
// constantly exercised) and readers hammering the page, every write must
// be visible to the first read that starts after its response — no
// fragment older than its purge is ever served. Run with -race.
func TestEdgeCoherenceUnderConcurrentWrites(t *testing.T) {
	app := newApp(t, WithEdgeCache(1024, 20*time.Millisecond), WithBeanCache(4096))
	defer app.Edge.Close()
	h := app.Handler()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rr, _ := request(t, h, "/page/volumesPage", "")
				if rr.Code != http.StatusOK {
					t.Errorf("reader status %d", rr.Code)
					return
				}
			}
		}()
	}

	for k := 0; k < 25; k++ {
		title := fmt.Sprintf("HammerVol%03d", k)
		rr, body := request(t, h, "/op/createVolume?title="+title+"&year=2100", "")
		if rr.Code != http.StatusFound {
			t.Fatalf("write %d status %d: %s", k, rr.Code, body)
		}
		// The write's purge has run (the bus fires before the operation
		// response is written): the very next read must see it.
		_, page := request(t, h, "/page/volumesPage", "")
		if !strings.Contains(page, title) {
			t.Fatalf("read after write %d misses %s: stale fragment outlived its purge", k, title)
		}
	}
	close(stop)
	wg.Wait()
}

// TestEdgeSessionTrafficBypasses: cookie-carrying requests never touch
// the edge cache, and edge fetches mint no server-side sessions.
func TestEdgeSessionTrafficBypasses(t *testing.T) {
	app := newApp(t, WithEdgeCache(1024, time.Minute))
	defer app.Edge.Close()
	h := app.Handler()

	request(t, h, "/page/volumePage?volume=1", "")
	if n := app.Controller.Sessions.Len(); n != 0 {
		t.Fatalf("edge-served anonymous request minted %d sessions", n)
	}

	req := httptest.NewRequest(http.MethodGet, "/page/volumePage?volume=1", nil)
	req.AddCookie(&http.Cookie{Name: "WSESSION", Value: "s1"})
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Header().Get("X-Cache") != "" {
		t.Fatalf("session-bound request went through the edge cache (X-Cache %q)", rr.Header().Get("X-Cache"))
	}
	if n := app.Controller.Sessions.Len(); n != 1 {
		t.Fatalf("cookie-carrying request should resolve a session (got %d)", n)
	}
}

// TestPageCacheHeaders covers the Vary/Cache-Control satellite: runtime
// styling must announce Vary: User-Agent, anonymous pages revalidate
// via ETag, and session-bound pages are uncacheable.
func TestPageCacheHeaders(t *testing.T) {
	styled := newApp(t, WithRuntimeStyle(MultiDevice(B2CStyle())))
	rr, _ := request(t, styled.Handler(), "/page/volumePage?volume=1", "Mozilla/5.0 (X11; Linux)")
	if v := rr.Header().Get("Vary"); v != "User-Agent" {
		t.Fatalf("runtime-styled page Vary = %q, want User-Agent", v)
	}
	if cc := rr.Header().Get("Cache-Control"); cc != "public, max-age=0, must-revalidate" {
		t.Fatalf("anonymous page Cache-Control = %q", cc)
	}

	plain := newApp(t)
	rr, _ = request(t, plain.Handler(), "/page/volumePage?volume=1", "")
	if v := rr.Header().Get("Vary"); v != "" {
		t.Fatalf("compile-time-styled page Vary = %q, want none", v)
	}

	// A logged-in session makes the same page private.
	login := httptest.NewRequest(http.MethodPost, "/login?user=alice", nil)
	lw := httptest.NewRecorder()
	plain.Handler().ServeHTTP(lw, login)
	var sessionCookie *http.Cookie
	for _, c := range lw.Result().Cookies() {
		if c.Name == "WSESSION" {
			sessionCookie = c
		}
	}
	if sessionCookie == nil {
		t.Fatal("login set no session cookie")
	}
	req := httptest.NewRequest(http.MethodGet, "/page/volumePage?volume=1", nil)
	req.AddCookie(sessionCookie)
	rr = httptest.NewRecorder()
	plain.Handler().ServeHTTP(rr, req)
	if cc := rr.Header().Get("Cache-Control"); cc != "private, no-store" {
		t.Fatalf("logged-in page Cache-Control = %q, want private, no-store", cc)
	}
}

// TestFragmentEndpointHeaders: fragment responses carry the surrogate
// policy derived from the unit descriptor and are browser-uncacheable.
func TestFragmentEndpointHeaders(t *testing.T) {
	app := newApp(t, WithEdgeCache(1024, time.Minute))
	defer app.Edge.Close()
	app.Repo().Unit("volumeData").Cache.TTLSeconds = 120

	req := httptest.NewRequest(http.MethodGet, "/fragment/volumePage/volumeData?volume=1", nil)
	req.Header.Set("Surrogate-Capability", `webmlgo="ESI/1.0"`)
	rr := httptest.NewRecorder()
	app.Controller.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("fragment status %d: %s", rr.Code, rr.Body.String())
	}
	if sc := rr.Header().Get("Surrogate-Control"); sc != "max-age=120" {
		t.Fatalf("Surrogate-Control = %q, want max-age=120 from the descriptor TTL", sc)
	}
	if deps := rr.Header().Get("X-Webml-Deps"); !strings.Contains(deps, "entity:volume") {
		t.Fatalf("X-Webml-Deps = %q, want entity:volume", deps)
	}
	if cc := rr.Header().Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("fragment Cache-Control = %q, want no-store (surrogate-internal)", cc)
	}
	if !strings.Contains(rr.Body.String(), "TODS Volume 27") {
		t.Fatalf("fragment body missing unit content:\n%s", rr.Body.String())
	}

	// Protected pages never decompose into shared fragments.
	req = httptest.NewRequest(http.MethodGet, "/fragment/managePage/manageIndex", nil)
	rr = httptest.NewRecorder()
	app.Controller.ServeHTTP(rr, req)
	if rr.Code != http.StatusUnauthorized {
		t.Fatalf("protected fragment status %d, want 401", rr.Code)
	}

	// Without the edge option the endpoints do not exist.
	plain := newApp(t)
	req = httptest.NewRequest(http.MethodGet, "/fragment/volumePage/volumeData?volume=1", nil)
	rr = httptest.NewRecorder()
	plain.Controller.ServeHTTP(rr, req)
	if rr.Code != http.StatusNotFound {
		t.Fatalf("fragment endpoint without edge: status %d, want 404", rr.Code)
	}
}

// TestCacheMetricsSnapshot covers the observability satellite: every
// enabled cache level is visible from the facade.
func TestCacheMetricsSnapshot(t *testing.T) {
	app := newApp(t,
		WithEdgeCache(1024, time.Minute),
		WithBeanCache(4096),
		WithFragmentCache(4096, time.Minute))
	defer app.Edge.Close()
	h := app.Handler()
	request(t, h, "/page/volumePage?volume=1", "")
	request(t, h, "/page/volumePage?volume=1", "")

	cm := app.CacheMetrics()
	if cm.Bean == nil || cm.Fragment == nil || cm.Edge == nil {
		t.Fatalf("enabled cache levels missing from snapshot: %+v", cm)
	}
	if cm.Page != nil {
		t.Fatal("page cache stats present without WithPageCache")
	}
	if cm.Edge.Puts == 0 {
		t.Fatal("edge tier recorded no puts")
	}
	if cm.Edge.Hits == 0 {
		t.Fatal("edge tier recorded no hits on the repeat request")
	}
	if cm.Bean.Puts == 0 {
		t.Fatal("bean cache recorded no puts")
	}

	plain := newApp(t)
	if cm := plain.CacheMetrics(); cm.Bean != nil || cm.Edge != nil || cm.Fragment != nil || cm.Page != nil {
		t.Fatalf("cache-less app reports stats: %+v", cm)
	}
}
