package mvc

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"webmlgo/internal/descriptor"
	"webmlgo/internal/obs"
)

// UnitCall is one unit computation inside a level batch: the resolved
// descriptor plus its already-bound inputs.
type UnitCall struct {
	D      *descriptor.Unit
	Inputs map[string]Value
}

// UnitResult is the outcome of one batched unit computation.
type UnitResult struct {
	Bean *UnitBean
	Err  error
}

// BatchComputer is the optional batch interface of the business tier:
// the page scheduler submits all unit computations of one topological
// level in a single call, so a remote business tier can turn N round
// trips per level into one batch frame (wire protocol v2).
//
// SupportsUnitBatch must report whether batching actually reaches a
// batching transport below — decorators delegate the answer to their
// inner business. When it reports false the scheduler keeps its
// per-unit concurrent path, which is the right shape for in-process
// computation (no round trips to save).
type BatchComputer interface {
	Business
	SupportsUnitBatch() bool
	ComputeUnits(ctx context.Context, calls []UnitCall) []UnitResult
}

// SupportsUnitBatch reports whether b both implements BatchComputer and
// affirms batch support — the question every decorator forwards down
// its chain.
func SupportsUnitBatch(b Business) bool {
	bc, ok := b.(BatchComputer)
	return ok && bc.SupportsUnitBatch()
}

// ComputeUnitsOf runs a level batch against b: through its own
// ComputeUnits when it batches, otherwise as guarded per-item calls
// (panics contained to the failing item, matching the page worker's
// containment). Decorators use it to pass a batch one layer down
// without caring whether that layer batches.
func ComputeUnitsOf(ctx context.Context, b Business, calls []UnitCall) []UnitResult {
	if bc, ok := b.(BatchComputer); ok && bc.SupportsUnitBatch() {
		return bc.ComputeUnits(ctx, calls)
	}
	out := make([]UnitResult, len(calls))
	for i, c := range calls {
		out[i].Bean, out[i].Err = computeOneGuarded(ctx, b, c)
	}
	return out
}

// computeOneGuarded is one contained unit call: a panicking service
// surfaces as that unit's error, in the same shape the page worker's
// recover produces.
func computeOneGuarded(ctx context.Context, b Business, c UnitCall) (bean *UnitBean, err error) {
	defer func() {
		if r := recover(); r != nil {
			bean, err = nil, fmt.Errorf("mvc: unit %s panicked: %v", c.D.ID, r)
		}
	}()
	return b.ComputeUnit(ctx, c.D, c.Inputs)
}

// ---- decorator pass-through ----

// SupportsUnitBatch implements BatchComputer by delegation.
func (nb *NotifyingBusiness) SupportsUnitBatch() bool { return SupportsUnitBatch(nb.Inner) }

// ComputeUnits implements BatchComputer by pure delegation — unit reads
// never write, so there is nothing to notify.
func (nb *NotifyingBusiness) ComputeUnits(ctx context.Context, calls []UnitCall) []UnitResult {
	return ComputeUnitsOf(ctx, nb.Inner, calls)
}

// SupportsUnitBatch implements BatchComputer by delegation.
func (rb *ResilientBusiness) SupportsUnitBatch() bool { return SupportsUnitBatch(rb.Inner) }

// ComputeUnits implements BatchComputer with per-item retry: each round
// re-submits only the items that failed retryably (reads are
// idempotent; context errors mean the budget is gone and nothing is
// retried), so one flapping unit does not recompute its whole level.
func (rb *ResilientBusiness) ComputeUnits(ctx context.Context, calls []UnitCall) []UnitResult {
	attempts := rb.MaxAttempts
	if attempts == 0 {
		attempts = 3
	}
	out := make([]UnitResult, len(calls))
	pending := make([]int, len(calls))
	for i := range pending {
		pending[i] = i
	}
	cur := calls
	for attempt := 0; attempt < attempts && len(pending) > 0; attempt++ {
		if attempt > 0 {
			rb.Retries.Add(int64(len(pending)))
			if err := rb.sleep(ctx, attempt); err != nil {
				break
			}
		}
		res := ComputeUnitsOf(ctx, rb.Inner, cur)
		var nextIdx []int
		var next []UnitCall
		for j, r := range res {
			idx := pending[j]
			out[idx] = r
			if r.Err != nil && !errors.Is(r.Err, context.DeadlineExceeded) &&
				!errors.Is(r.Err, context.Canceled) && ctx.Err() == nil {
				nextIdx = append(nextIdx, idx)
				next = append(next, cur[j])
			}
		}
		pending, cur = nextIdx, next
		if ctx.Err() != nil {
			break
		}
	}
	return out
}

// SupportsUnitBatch implements BatchComputer by delegation.
func (cb *CachedBusiness) SupportsUnitBatch() bool { return SupportsUnitBatch(cb.Inner) }

// ComputeUnits implements BatchComputer over the bean cache: hits are
// answered locally, misses led by another request are joined, and only
// the remaining leader misses (plus uncached units) travel down as one
// smaller batch — each with the same snapshot/PutIfFresh freshness
// protocol as the single-call path.
func (cb *CachedBusiness) ComputeUnits(ctx context.Context, calls []UnitCall) []UnitResult {
	out := make([]UnitResult, len(calls))
	// leader describes one inner-batch slot: the call index it resolves,
	// and — for cached units — the flight this request leads plus the
	// pre-compute invalidation version snapshot.
	type leader struct {
		idx int
		key string
		f   *flight
		ver uint64
		d   *descriptor.Unit
	}
	type joiner struct {
		idx  int
		key  string
		unit string
		f    *flight
	}
	var inner []UnitCall
	var leaders []leader
	var joins []joiner
	for i, c := range calls {
		if c.D.Cache == nil || !c.D.Cache.Enabled {
			inner = append(inner, c)
			leaders = append(leaders, leader{idx: i})
			continue
		}
		key := beanKey(c.D.ID, c.Inputs)
		gsp := obs.Leaf(ctx, "cache.get").Label("unit", c.D.ID)
		if v, ok := cb.Cache.Get(key); ok {
			gsp.Label("outcome", "hit").End()
			out[i] = UnitResult{Bean: v.(*UnitBean)}
			continue
		}
		gsp.Label("outcome", "miss").End()
		f, lead := cb.flights.join(key, c.D.Reads)
		if !lead {
			joins = append(joins, joiner{idx: i, key: key, unit: c.D.ID, f: f})
			continue
		}
		inner = append(inner, c)
		leaders = append(leaders, leader{idx: i, key: key, f: f, ver: cb.Cache.Version(c.D.Reads), d: c.D})
	}
	if len(inner) > 0 {
		res := ComputeUnitsOf(ctx, cb.Inner, inner)
		for j, li := range leaders {
			bean, err := res[j].Bean, res[j].Err
			if li.f == nil {
				// Uncached pass-through: no flight, no cache store.
				out[li.idx] = res[j]
				continue
			}
			current := cb.flights.finish(li.key, li.f, bean, err)
			if err != nil {
				out[li.idx].Bean, out[li.idx].Err = cb.degraded(li.key, err)
				continue
			}
			if current {
				ttl := time.Duration(0)
				if li.d.Cache.TTLSeconds > 0 {
					ttl = time.Duration(li.d.Cache.TTLSeconds) * time.Second
				}
				psp := obs.Leaf(ctx, "cache.put").Label("unit", li.d.ID)
				stored := cb.Cache.PutIfFresh(li.key, bean, li.d.Reads, ttl, li.ver)
				psp.Label("stored", strconv.FormatBool(stored)).End()
			}
			out[li.idx] = UnitResult{Bean: bean}
		}
	}
	// Joined flights resolve after the inner batch: a same-batch leader
	// (same key twice in one level) has finished by now, and flights led
	// by other requests were already computing concurrently.
	for _, jn := range joins {
		wsp := obs.Leaf(ctx, "cache.wait").Label("unit", jn.unit)
		select {
		case <-jn.f.done:
			wsp.End()
		case <-ctx.Done():
			wsp.EndErr(ctx.Err())
			out[jn.idx].Bean, out[jn.idx].Err = cb.degraded(jn.key, ctx.Err())
			continue
		}
		if jn.f.err != nil {
			out[jn.idx].Bean, out[jn.idx].Err = cb.degraded(jn.key, jn.f.err)
			continue
		}
		out[jn.idx] = UnitResult{Bean: jn.f.bean}
	}
	return out
}
