//go:build !race

package mvc

const raceEnabled = false
