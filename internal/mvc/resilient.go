package mvc

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"webmlgo/internal/descriptor"
)

// ResilientBusiness decorates a Business with bounded retries for
// idempotent unit reads: a transient business-tier failure (flapping
// container, dropped connection, injected fault) is absorbed by backing
// off and trying again instead of surfacing as an error page. Backoff
// is exponential with full jitter so a burst of failing requests does
// not re-converge on the recovering container in lockstep.
//
// Operations are never retried: the tier boundary cannot tell a lost
// response from a lost request, and re-running a write risks executing
// it twice. ExecuteOperation passes straight through.
type ResilientBusiness struct {
	Inner Business
	// MaxAttempts bounds total tries per unit read (<=1 disables
	// retries; 0 selects the default of 3).
	MaxAttempts int
	// BaseBackoff is the first retry's maximum sleep (default 2ms);
	// each subsequent attempt doubles it, capped at MaxBackoff
	// (default 50ms). The actual sleep is uniform in [0, cap) — full
	// jitter.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// Retries counts retry attempts actually performed (for metrics).
	Retries atomic.Int64

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewResilientBusiness wraps inner with the default retry policy,
// seeding the jitter source deterministically for reproducible tests.
func NewResilientBusiness(inner Business, seed int64) *ResilientBusiness {
	return &ResilientBusiness{Inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// ComputeUnit implements Business with retry: failed attempts back off
// and re-run against the inner business until one succeeds, the attempt
// budget runs out, or the request context expires (context errors are
// never retried — the budget is gone, more attempts cannot help).
func (rb *ResilientBusiness) ComputeUnit(ctx context.Context, d *descriptor.Unit, inputs map[string]Value) (*UnitBean, error) {
	attempts := rb.MaxAttempts
	if attempts == 0 {
		attempts = 3
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			rb.Retries.Add(1)
			if err := rb.sleep(ctx, attempt); err != nil {
				return nil, lastErr
			}
		}
		bean, err := rb.Inner.ComputeUnit(ctx, d, inputs)
		if err == nil {
			return bean, nil
		}
		lastErr = err
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) || ctx.Err() != nil {
			return nil, lastErr
		}
	}
	return nil, lastErr
}

// ExecuteOperation implements Business by pure delegation — writes are
// not idempotent, so they get exactly one attempt.
func (rb *ResilientBusiness) ExecuteOperation(ctx context.Context, d *descriptor.Unit, inputs map[string]Value) (*OpResult, error) {
	return rb.Inner.ExecuteOperation(ctx, d, inputs)
}

// sleep backs off before attempt n (1-based) with full jitter, waking
// early if the request context expires.
func (rb *ResilientBusiness) sleep(ctx context.Context, attempt int) error {
	base := rb.BaseBackoff
	if base <= 0 {
		base = 2 * time.Millisecond
	}
	max := rb.MaxBackoff
	if max <= 0 {
		max = 50 * time.Millisecond
	}
	cap := base << (attempt - 1)
	if cap > max {
		cap = max
	}
	rb.rngMu.Lock()
	var d time.Duration
	if rb.rng != nil {
		d = time.Duration(rb.rng.Int63n(int64(cap) + 1))
	} else {
		d = cap / 2
	}
	rb.rngMu.Unlock()
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
