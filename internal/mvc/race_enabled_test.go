//go:build race

package mvc

// raceEnabled reports whether the race detector is instrumenting this
// build; allocation-count assertions are unreliable under it.
const raceEnabled = true
