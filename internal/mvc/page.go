package mvc

import (
	"fmt"

	"webmlgo/internal/descriptor"
)

// PageService is the single generic page service of Figure 5 applied to
// pages: where a conventional implementation needs one page service
// class per page (556 for Acer-Euro), this one service interprets the
// page descriptor, which "describes the topology of the page units and
// links, which is needed for computing units in the proper order and
// with the correct input parameters" (Section 4).
type PageService struct {
	Repo     *descriptor.Repository
	Business Business
}

// PageState is the set of unit beans computed for one request — the
// Model's state objects handed to the View.
type PageState struct {
	PageID string
	Beans  map[string]*UnitBean
	// Order lists unit IDs in page display order.
	Order []string
}

// ComputePage exposes the single computePage() function of the paper's
// page service: it topologically orders the page's units along the
// transport-link edges, propagates parameters, and invokes the unit
// services.
//
// request carries the typed HTTP parameters; formState (may be nil)
// carries sticky entry-unit values and validation errors keyed by entry
// unit ID.
func (ps *PageService) ComputePage(pageID string, request map[string]Value, formState map[string]*FormState) (*PageState, error) {
	pd := ps.Repo.Page(pageID)
	if pd == nil {
		return nil, fmt.Errorf("mvc: no page descriptor %q", pageID)
	}
	order, err := topoOrder(pd)
	if err != nil {
		return nil, err
	}
	state := &PageState{PageID: pageID, Beans: make(map[string]*UnitBean, len(pd.Units))}
	for _, ur := range pd.Units {
		state.Order = append(state.Order, ur.ID)
	}

	// Edges into each unit.
	incoming := map[string][]descriptor.Edge{}
	for _, e := range pd.Edges {
		incoming[e.To] = append(incoming[e.To], e)
	}

	for _, unitID := range order {
		ud := ps.Repo.Unit(unitID)
		if ud == nil {
			return nil, fmt.Errorf("mvc: page %q references missing unit descriptor %q", pageID, unitID)
		}
		inputs := make(map[string]Value)
		// Request parameters bind by input name.
		for _, p := range ud.Inputs {
			if v, ok := request[p.Name]; ok {
				inputs[p.Name] = v
			}
		}
		// Intra-page edges override: "parameters are passed from one
		// query to another one" (Section 4).
		for _, e := range incoming[unitID] {
			src := state.Beans[e.From]
			if src == nil || src.Missing || len(src.Nodes) == 0 {
				continue
			}
			current := src.Nodes[0].Values
			for _, pm := range e.Params {
				if v, ok := current[pm.Source]; ok {
					inputs[pm.Target] = v
				}
			}
		}
		// Sticky form state for entry units.
		if fs := formState[unitID]; fs != nil {
			for k, v := range fs.Values {
				inputs[k] = v
			}
		}
		bean, err := ps.Business.ComputeUnit(ud, inputs)
		if err != nil {
			return nil, err
		}
		if fs := formState[unitID]; fs != nil && len(fs.Errors) > 0 {
			bean.Errors = fs.Errors
		}
		state.Beans[unitID] = bean
	}
	return state, nil
}

// FormState carries an entry unit's sticky values and validation errors
// across the KO redirect.
type FormState struct {
	Values map[string]Value
	Errors map[string]string
}

// topoOrder returns the page's unit IDs in an order where every edge
// source precedes its target; units not involved in edges keep their
// display order. The model validator guarantees acyclicity; a cycle in a
// hand-edited descriptor is reported as an error.
func topoOrder(pd *descriptor.Page) ([]string, error) {
	indeg := make(map[string]int, len(pd.Units))
	adj := make(map[string][]string)
	pos := make(map[string]int, len(pd.Units))
	for i, u := range pd.Units {
		indeg[u.ID] = 0
		pos[u.ID] = i
	}
	for _, e := range pd.Edges {
		if _, ok := indeg[e.From]; !ok {
			return nil, fmt.Errorf("mvc: page %q edge from unknown unit %q", pd.ID, e.From)
		}
		if _, ok := indeg[e.To]; !ok {
			return nil, fmt.Errorf("mvc: page %q edge to unknown unit %q", pd.ID, e.To)
		}
		adj[e.From] = append(adj[e.From], e.To)
		indeg[e.To]++
	}
	// Kahn's algorithm with stable tie-breaking on display order.
	var ready []string
	for _, u := range pd.Units {
		if indeg[u.ID] == 0 {
			ready = append(ready, u.ID)
		}
	}
	var order []string
	for len(ready) > 0 {
		// Pick the ready unit earliest in display order.
		best := 0
		for i := 1; i < len(ready); i++ {
			if pos[ready[i]] < pos[ready[best]] {
				best = i
			}
		}
		id := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		order = append(order, id)
		for _, next := range adj[id] {
			indeg[next]--
			if indeg[next] == 0 {
				ready = append(ready, next)
			}
		}
	}
	if len(order) != len(pd.Units) {
		return nil, fmt.Errorf("mvc: page %q has a cycle in its unit topology", pd.ID)
	}
	return order, nil
}
