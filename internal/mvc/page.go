package mvc

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"webmlgo/internal/descriptor"
	"webmlgo/internal/obs"
)

// PageService is the single generic page service of Figure 5 applied to
// pages: where a conventional implementation needs one page service
// class per page (556 for Acer-Euro), this one service interprets the
// page descriptor, which "describes the topology of the page units and
// links, which is needed for computing units in the proper order and
// with the correct input parameters" (Section 4).
type PageService struct {
	Repo     *descriptor.Repository
	Business Business
	// Workers bounds the per-request worker pool: units of the same
	// topological level compute concurrently on up to Workers goroutines.
	// <=1 selects sequential computation (the default).
	Workers int
	// PageLat / UnitLat, when set, record per-page and per-unit compute
	// latency into the shared histogram families — the model-derived
	// series behind the /metrics p50/p95/p99. Nil skips recording.
	PageLat *obs.HistogramVec
	UnitLat *obs.HistogramVec
}

// PageState is the set of unit beans computed for one request — the
// Model's state objects handed to the View.
type PageState struct {
	PageID string
	Beans  map[string]*UnitBean
	// Order lists unit IDs in page display order.
	Order []string
}

// ComputePage exposes the single computePage() function of the paper's
// page service: it computes the page's units level by level along the
// transport-link edges — every unit whose inputs are already resolved
// may run concurrently with its level peers — propagating parameters
// and invoking the unit services.
//
// request carries the typed HTTP parameters; formState (may be nil)
// carries sticky entry-unit values and validation errors keyed by entry
// unit ID. ctx carries the request deadline: levels stop scheduling new
// units once it is done, and the business tier below observes it.
func (ps *PageService) ComputePage(ctx context.Context, pageID string, request map[string]Value, formState map[string]*FormState) (*PageState, error) {
	start := time.Now()
	ctx, sp := obs.StartSpan(ctx, "page.compute")
	sp.Label("page", pageID)
	state, err := ps.computePage(ctx, pageID, request, formState)
	if ps.PageLat != nil {
		ps.PageLat.ObserveErr(pageID, time.Since(start), err != nil)
	}
	sp.EndErr(err)
	return state, err
}

func (ps *PageService) computePage(ctx context.Context, pageID string, request map[string]Value, formState map[string]*FormState) (*PageState, error) {
	pd := ps.Repo.Page(pageID)
	if pd == nil {
		return nil, fmt.Errorf("mvc: no page descriptor %q", pageID)
	}
	sched, err := ps.Repo.Schedule(pageID)
	if err != nil {
		return nil, err
	}
	state := &PageState{
		PageID: pageID,
		Beans:  make(map[string]*UnitBean, len(pd.Units)),
		Order:  make([]string, len(pd.Units)),
	}
	for i, ur := range pd.Units {
		state.Order[i] = ur.ID
	}

	for li, level := range sched.Levels {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lctx, lsp := obs.StartSpan(ctx, "page.level")
		lsp.Label("level", strconv.Itoa(li)).Label("units", strconv.Itoa(len(level)))
		if len(level) > 1 && SupportsUnitBatch(ps.Business) {
			// The business tier batches (a wire-v2 remote stub at the
			// bottom of the chain): submit the whole level in one call
			// instead of one per unit — one round trip per level.
			lsp.Label("batch", "1")
			if err := ps.computeLevelBatch(lctx, pd, sched, level, request, formState, state); err != nil {
				lsp.EndErr(err)
				return nil, err
			}
			lsp.End()
			continue
		}
		if ps.Workers > 1 && len(level) > 1 {
			if err := ps.computeLevel(lctx, pd, sched, level, request, formState, state); err != nil {
				lsp.EndErr(err)
				return nil, err
			}
			lsp.End()
			continue
		}
		for _, unitID := range level {
			bean, err := ps.computeOne(lctx, pd, sched, unitID, request, formState, state)
			if err != nil {
				lsp.EndErr(err)
				return nil, err
			}
			state.Beans[unitID] = bean
		}
		lsp.End()
	}
	return state, nil
}

// computeLevel runs one topological level's units concurrently on a
// bounded worker pool. Beans merge deterministically (each unit writes
// its own slot, merged in level order after the barrier); on failure the
// error of the earliest unit in level order is returned, and units not
// yet started are skipped.
func (ps *PageService) computeLevel(ctx context.Context, pd *descriptor.Page, sched *descriptor.Schedule, level []string, request map[string]Value, formState map[string]*FormState, state *PageState) error {
	workers := ps.Workers
	if workers > len(level) {
		workers = len(level)
	}
	beans := make([]*UnitBean, len(level))
	errs := make([]error, len(level))
	var failed atomic.Bool
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, unitID := range level {
		if failed.Load() || ctx.Err() != nil {
			break // first-error / deadline cancellation: stop scheduling
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, unitID string) {
			defer func() {
				<-sem
				wg.Done()
			}()
			bean, err := ps.computeOne(ctx, pd, sched, unitID, request, formState, state)
			if err != nil {
				errs[i] = err
				failed.Store(true)
				return
			}
			beans[i] = bean
		}(i, unitID)
	}
	wg.Wait()
	for i := range level {
		if errs[i] != nil {
			return errs[i]
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	for i, unitID := range level {
		if beans[i] != nil {
			state.Beans[unitID] = beans[i]
		}
	}
	return nil
}

// computeLevelBatch runs one topological level through the business
// tier's batch interface: inputs are resolved for every unit up front
// (they only read beans of strictly earlier levels), the whole level
// travels as one ComputeUnits call, and results merge with computeLevel's
// exact semantics — deterministic bean merge, first error in level order
// wins, sticky form-state errors cloned copy-on-write per request. Each
// unit still gets its own "unit" span and UnitLat observation (the batch
// wall time: units of a batched level finish together from the
// scheduler's point of view).
func (ps *PageService) computeLevelBatch(ctx context.Context, pd *descriptor.Page, sched *descriptor.Schedule, level []string, request map[string]Value, formState map[string]*FormState, state *PageState) error {
	calls := make([]UnitCall, len(level))
	for i, unitID := range level {
		ud, inputs, err := ps.resolveInputs(pd, sched, unitID, request, formState, state)
		if err != nil {
			return err
		}
		calls[i] = UnitCall{D: ud, Inputs: inputs}
	}
	spans := make([]*obs.SpanHandle, len(level))
	for i, unitID := range level {
		spans[i] = obs.Leaf(ctx, "unit").Label("unit", unitID).Label("entity", calls[i].D.Entity)
	}
	start := time.Now()
	res := ps.batchGuarded(ctx, calls)
	elapsed := time.Since(start)
	beans := make([]*UnitBean, len(level))
	var firstErr error
	for i, unitID := range level {
		err := res[i].Err
		if ps.UnitLat != nil {
			ps.UnitLat.ObserveErr(unitID, elapsed, err != nil)
		}
		spans[i].EndErr(err)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		bean := res[i].Bean
		if fs := formState[unitID]; fs != nil && len(fs.Errors) > 0 && bean != nil {
			// Copy-on-write: the bean may come from the shared cache, and
			// validation errors belong to this request only.
			clone := *bean
			clone.Errors = fs.Errors
			bean = &clone
		}
		beans[i] = bean
	}
	if firstErr != nil {
		return firstErr
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	for i, unitID := range level {
		if beans[i] != nil {
			state.Beans[unitID] = beans[i]
		}
	}
	return nil
}

// batchGuarded contains a panicking batch implementation the same way
// the per-unit paths contain panicking unit services: every item of the
// level gets the panic as its error, and a short result set is padded so
// callers can index safely.
func (ps *PageService) batchGuarded(ctx context.Context, calls []UnitCall) (res []UnitResult) {
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("mvc: batch panicked: %v", r)
			res = make([]UnitResult, len(calls))
			for i := range res {
				res[i] = UnitResult{Err: err}
			}
		}
	}()
	res = ps.Business.(BatchComputer).ComputeUnits(ctx, calls)
	for len(res) < len(calls) {
		res = append(res, UnitResult{Err: fmt.Errorf("mvc: batch returned %d results for %d calls", len(res), len(calls))})
	}
	return res
}

// resolveInputs binds one unit's inputs — request parameters by name,
// intra-page transport edges ("parameters are passed from one query to
// another one", Section 4), then sticky form state for entry units — and
// returns its descriptor. It only reads beans of strictly earlier levels
// from state.
func (ps *PageService) resolveInputs(pd *descriptor.Page, sched *descriptor.Schedule, unitID string, request map[string]Value, formState map[string]*FormState, state *PageState) (*descriptor.Unit, map[string]Value, error) {
	ud := ps.Repo.Unit(unitID)
	if ud == nil {
		return nil, nil, fmt.Errorf("mvc: page %q references missing unit descriptor %q", pd.ID, unitID)
	}
	inputs := make(map[string]Value)
	for _, p := range ud.Inputs {
		if v, ok := request[p.Name]; ok {
			inputs[p.Name] = v
		}
	}
	for _, e := range sched.Incoming[unitID] {
		src := state.Beans[e.From]
		if src == nil || src.Missing || len(src.Nodes) == 0 {
			continue
		}
		current := src.Nodes[0].Values
		for _, pm := range e.Params {
			if v, ok := current[pm.Source]; ok {
				inputs[pm.Target] = v
			}
		}
	}
	if fs := formState[unitID]; fs != nil {
		for k, v := range fs.Values {
			inputs[k] = v
		}
	}
	return ud, inputs, nil
}

// computeOne resolves one unit's inputs (request parameters, intra-page
// edges, sticky form state) and invokes its service. It only reads beans
// of strictly earlier levels from state, so level peers may run it
// concurrently. A panicking unit service (user-supplied custom
// components run arbitrary code) is contained here and surfaces as the
// unit's error instead of killing the process — on the worker pool an
// uncaught panic in a goroutine would otherwise be unrecoverable.
func (ps *PageService) computeOne(ctx context.Context, pd *descriptor.Page, sched *descriptor.Schedule, unitID string, request map[string]Value, formState map[string]*FormState, state *PageState) (bean *UnitBean, err error) {
	start := time.Now()
	sp := obs.Leaf(ctx, "unit").Label("unit", unitID)
	// Registered before the recover defer (LIFO): the panic handler sets
	// err first, then this defer records the outcome.
	defer func() {
		if ps.UnitLat != nil {
			ps.UnitLat.ObserveErr(unitID, time.Since(start), err != nil)
		}
		sp.EndErr(err)
	}()
	defer func() {
		if r := recover(); r != nil {
			bean, err = nil, fmt.Errorf("mvc: unit %s panicked: %v", unitID, r)
		}
	}()
	ud, inputs, err := ps.resolveInputs(pd, sched, unitID, request, formState, state)
	if err != nil {
		return nil, err
	}
	sp.Label("entity", ud.Entity)
	bean, err = ps.Business.ComputeUnit(ctx, ud, inputs)
	if err != nil {
		return nil, err
	}
	if fs := formState[unitID]; fs != nil && len(fs.Errors) > 0 {
		// Copy-on-write: the bean may come from the shared cache, and
		// validation errors belong to this request only.
		clone := *bean
		clone.Errors = fs.Errors
		bean = &clone
	}
	return bean, nil
}

// FormState carries an entry unit's sticky values and validation errors
// across the KO redirect.
type FormState struct {
	Values map[string]Value
	Errors map[string]string
}

// topoOrder returns the page's unit IDs in an order where every edge
// source precedes its target; units not involved in edges keep their
// display order. It delegates to the descriptor-level schedule.
func topoOrder(pd *descriptor.Page) ([]string, error) {
	s, err := descriptor.ComputeSchedule(pd)
	if err != nil {
		return nil, err
	}
	return s.Order, nil
}
