package mvc

import (
	"context"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webmlgo/internal/cache"
	"webmlgo/internal/descriptor"
)

// latencyFanApp builds the fan page over a business with per-unit latency
// (the data-tier round trip of Figure 6): 1 root, 8 middle units, 1 sink.
func latencyFanApp(delay time.Duration, workers int) *PageService {
	repo := descriptor.NewRepository()
	fanPage(repo, 8)
	return &PageService{Repo: repo, Business: &countingBusiness{delay: delay}, Workers: workers}
}

// BenchmarkE6PageComputeLatencySequential is the seed computation shape:
// ten units with a 200µs data-tier round trip each, one after another.
func BenchmarkE6PageComputeLatencySequential(b *testing.B) {
	ps := latencyFanApp(200*time.Microsecond, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ps.ComputePage(context.Background(), "fan", nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6PageComputeLatencyParallel runs the same page on the
// level-parallel scheduler: the eight independent mid units overlap their
// round trips on 4 workers, so the page takes ~4 round-trip times instead
// of ~10 — a speedup available even on a single hardware thread, because
// the time is spent waiting on the data tier, not computing.
func BenchmarkE6PageComputeLatencyParallel(b *testing.B) {
	ps := latencyFanApp(200*time.Microsecond, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ps.ComputePage(context.Background(), "fan", nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// naiveCached reproduces the seed's cache decorator: get / compute / put
// with no coalescing, so K concurrent misses of one key all hit the
// database. It is the comparator for the singleflight benchmark.
type naiveCached struct {
	inner Business
	c     *cache.BeanCache
}

func (n *naiveCached) ComputeUnit(ctx context.Context, d *descriptor.Unit, inputs map[string]Value) (*UnitBean, error) {
	key := beanKey(d.ID, inputs)
	if v, ok := n.c.Get(key); ok {
		return v.(*UnitBean), nil
	}
	bean, err := n.inner.ComputeUnit(context.Background(), d, inputs)
	if err != nil {
		return nil, err
	}
	n.c.Put(key, bean, d.Reads, 0)
	return bean, nil
}

func (n *naiveCached) ExecuteOperation(ctx context.Context, d *descriptor.Unit, inputs map[string]Value) (*OpResult, error) {
	res, err := n.inner.ExecuteOperation(context.Background(), d, inputs)
	if err == nil && res.OK && len(d.Writes) > 0 {
		n.c.Invalidate(d.Writes...)
	}
	return res, err
}

// cpuBusiness burns real CPU per unit computation (a query the database
// must evaluate), so duplicated recomputations cost measurable work.
type cpuBusiness struct {
	computes atomic.Int64
	spin     int
}

func (c *cpuBusiness) ComputeUnit(ctx context.Context, d *descriptor.Unit, inputs map[string]Value) (*UnitBean, error) {
	c.computes.Add(1)
	x := uint32(1)
	for i := 0; i < c.spin; i++ {
		x = x*1664525 + 1013904223
	}
	return &UnitBean{UnitID: d.ID, Kind: d.Kind, Nodes: []Node{{Values: Row{"x": int64(x)}}}}, nil
}

func (c *cpuBusiness) ExecuteOperation(ctx context.Context, d *descriptor.Unit, inputs map[string]Value) (*OpResult, error) {
	return &OpResult{OK: true}, nil
}

// benchMissStorm measures one recomputation storm per iteration: a write
// invalidates the bean, then 8 concurrent readers request it — Section
// 6's "modification of the database content" path under heavy traffic.
// Without coalescing every reader recomputes; with it exactly one does.
func benchMissStorm(b *testing.B, business Business, inner *cpuBusiness) {
	d := cachedUnit()
	op := writeOp()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := business.ExecuteOperation(context.Background(), op, nil); err != nil {
			b.Fatal(err)
		}
		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if _, err := business.ComputeUnit(context.Background(), d, nil); err != nil {
					b.Error(err)
				}
			}()
		}
		close(start)
		wg.Wait()
	}
	b.ReportMetric(float64(inner.computes.Load())/float64(b.N), "recomputes/storm")
}

// BenchmarkE6MissStormSingleflight: coalesced misses — one database
// recomputation per invalidation regardless of how many readers miss.
func BenchmarkE6MissStormSingleflight(b *testing.B) {
	inner := &cpuBusiness{spin: 50000}
	benchMissStorm(b, NewCachedBusiness(inner, cache.NewBeanCache(64)), inner)
}

// BenchmarkE6MissStormNaive: the seed decorator — every reader that
// misses recomputes.
func BenchmarkE6MissStormNaive(b *testing.B) {
	inner := &cpuBusiness{spin: 50000}
	benchMissStorm(b, &naiveCached{inner: inner, c: cache.NewBeanCache(64)}, inner)
}

// seedBeanKey is the key builder the pooled implementation replaced: an
// intermediate map of formatted strings, a fresh names slice, and a
// strings.Builder — kept as the allocation comparator.
func seedBeanKey(unitID string, inputs map[string]Value) string {
	strs := make(map[string]string, len(inputs))
	for k, v := range inputs {
		strs[k] = FormatParam(v)
	}
	names := make([]string, 0, len(strs))
	for n := range strs {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString(unitID)
	for _, n := range names {
		sb.WriteByte('|')
		sb.WriteString(n)
		sb.WriteByte('=')
		sb.WriteString(strs[n])
	}
	return sb.String()
}

func BenchmarkBeanKeySeed(b *testing.B) {
	inputs := map[string]Value{"oid": int64(7), "parent": int64(3), "q": "keyword"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		seedBeanKey("issuesPapers", inputs)
	}
}
