package mvc

import "sync"

// flight is one in-progress unit computation shared by every request that
// asked for the same cache key while it ran.
type flight struct {
	done chan struct{}
	bean *UnitBean
	err  error
	deps []string
}

// flightGroup coalesces concurrent cache misses of the same key so that
// exactly one computation hits the database, in the spirit of Section 6's
// bean cache "making [beans] reusable by multiple requests" — here even
// by requests that overlap in time. Unlike a plain singleflight it is
// invalidation-aware: operations forget the in-flight computations whose
// read dependencies they write, so a request arriving after the write
// starts a fresh computation instead of joining a flight that may return
// pre-write data. The zero value is ready to use.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flight
	// byDep indexes live flights by read-dependency tag for forget().
	byDep map[string]map[string]*flight
}

// join returns the flight for key, creating it when absent; leader
// reports whether the caller created it (and must therefore compute the
// value and call finish).
func (g *flightGroup) join(key string, deps []string) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.calls[key]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{}), deps: deps}
	if g.calls == nil {
		g.calls = make(map[string]*flight)
		g.byDep = make(map[string]map[string]*flight)
	}
	g.calls[key] = f
	for _, d := range deps {
		set, ok := g.byDep[d]
		if !ok {
			set = make(map[string]*flight)
			g.byDep[d] = set
		}
		set[key] = f
	}
	return f, true
}

// finish publishes the leader's result to every waiter and retires the
// flight. It reports whether the flight was still current — false means a
// forget() intervened (an operation wrote one of the read dependencies
// while the computation ran), so the result must not be cached.
func (g *flightGroup) finish(key string, f *flight, bean *UnitBean, err error) bool {
	g.mu.Lock()
	current := g.calls[key] == f
	if current {
		g.removeLocked(key, f)
	}
	g.mu.Unlock()
	f.bean = bean
	f.err = err
	close(f.done)
	return current
}

// forget retires every in-flight computation reading any of the given
// dependency tags. Waiters already joined still receive the leader's
// result (their requests overlapped the write, so pre-write data is a
// linearizable answer), but later requests start a fresh computation.
func (g *flightGroup) forget(deps ...string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, d := range deps {
		for key, f := range g.byDep[d] {
			if g.calls[key] == f {
				g.removeLocked(key, f)
			}
		}
	}
}

// removeLocked unlinks a flight from the call table and dep index.
func (g *flightGroup) removeLocked(key string, f *flight) {
	delete(g.calls, key)
	for _, d := range f.deps {
		if set, ok := g.byDep[d]; ok {
			delete(set, key)
			if len(set) == 0 {
				delete(g.byDep, d)
			}
		}
	}
}
