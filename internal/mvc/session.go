package mvc

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"sync"
	"time"
)

// Session holds per-user state objects that "persist between consecutive
// requests" (Section 2) — the authenticated user, sticky form state, and
// application attributes.
type Session struct {
	ID      string
	mu      sync.Mutex
	values  map[string]interface{}
	touched time.Time
}

// Get returns a session attribute.
func (s *Session) Get(key string) (interface{}, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.values[key]
	return v, ok
}

// Set stores a session attribute.
func (s *Session) Set(key string, v interface{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.values[key] = v
}

// Delete removes a session attribute.
func (s *Session) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.values, key)
}

// User returns the authenticated principal, or "".
func (s *Session) User() string {
	v, ok := s.Get(sessionUserKey)
	if !ok {
		return ""
	}
	u, _ := v.(string)
	return u
}

const (
	sessionCookie  = "WSESSION"
	sessionUserKey = "user"
)

// SessionManager issues and resolves cookie-bound sessions.
type SessionManager struct {
	mu       sync.Mutex
	sessions map[string]*Session
	ttl      time.Duration
	now      func() time.Time
}

// NewSessionManager returns a manager expiring idle sessions after ttl
// (<=0 selects 30 minutes).
func NewSessionManager(ttl time.Duration) *SessionManager {
	if ttl <= 0 {
		ttl = 30 * time.Minute
	}
	return &SessionManager{sessions: make(map[string]*Session), ttl: ttl, now: time.Now}
}

// Resolve returns the request's session, creating one (and setting the
// cookie) if needed.
func (m *SessionManager) Resolve(w http.ResponseWriter, r *http.Request) *Session {
	if c, err := r.Cookie(sessionCookie); err == nil {
		m.mu.Lock()
		s, ok := m.sessions[c.Value]
		if ok && m.now().Sub(s.touched) <= m.ttl {
			s.touched = m.now()
			m.mu.Unlock()
			return s
		}
		delete(m.sessions, c.Value)
		m.mu.Unlock()
	}
	s := &Session{ID: newSessionID(), values: make(map[string]interface{}), touched: m.now()}
	m.mu.Lock()
	m.sessions[s.ID] = s
	m.mu.Unlock()
	if w != nil {
		http.SetCookie(w, &http.Cookie{Name: sessionCookie, Value: s.ID, Path: "/", HttpOnly: true})
	}
	return s
}

// Detached returns a session that is not registered in the manager and
// sets no cookie — used for surrogate (edge-tier) fetches, which serve
// shared anonymous content and must not mint per-fetch server-side
// sessions.
func (m *SessionManager) Detached() *Session {
	return &Session{values: make(map[string]interface{}), touched: m.now()}
}

// Len returns the number of live sessions.
func (m *SessionManager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Sweep drops idle sessions and returns how many were removed.
func (m *SessionManager) Sweep() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	cutoff := m.now().Add(-m.ttl)
	for id, s := range m.sessions {
		if s.touched.Before(cutoff) {
			delete(m.sessions, id)
			n++
		}
	}
	return n
}

func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand read failures are unrecoverable environment errors.
		panic("mvc: cannot generate session id: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}
