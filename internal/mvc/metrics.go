package mvc

import (
	"sort"
	"sync"
	"time"
)

// ActionStats aggregates the Controller's activity for one action — the
// operational visibility a centralized Controller makes trivial compared
// to scattered page templates.
type ActionStats struct {
	Action string
	Count  int64
	Errors int64 // responses with status >= 400
	Total  time.Duration
}

// Mean returns the average service time of the action.
func (s ActionStats) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

type metrics struct {
	mu      sync.Mutex
	actions map[string]*ActionStats
}

func (m *metrics) record(action string, d time.Duration, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.actions == nil {
		m.actions = make(map[string]*ActionStats)
	}
	s, ok := m.actions[action]
	if !ok {
		s = &ActionStats{Action: action}
		m.actions[action] = s
	}
	s.Count++
	s.Total += d
	if failed {
		s.Errors++
	}
}

func (m *metrics) snapshot() []ActionStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]ActionStats, 0, len(m.actions))
	for _, s := range m.actions {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Action < out[j].Action })
	return out
}

// Metrics returns per-action statistics collected since startup.
func (c *Controller) Metrics() []ActionStats { return c.metrics.snapshot() }
