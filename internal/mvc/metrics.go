package mvc

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ActionStats aggregates the Controller's activity for one action — the
// operational visibility a centralized Controller makes trivial compared
// to scattered page templates.
type ActionStats struct {
	Action string
	Count  int64
	Errors int64 // responses with status >= 400
	Total  time.Duration
}

// Mean returns the average service time of the action.
func (s ActionStats) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// actionCounters is the live per-action accumulator. Counters are
// atomics so the per-request hot path never takes a lock once the action
// row exists (the set of actions is small and stabilizes immediately).
type actionCounters struct {
	count  atomic.Int64
	errors atomic.Int64
	total  atomic.Int64 // nanoseconds
}

type metrics struct {
	actions sync.Map // action string -> *actionCounters
}

func (m *metrics) record(action string, d time.Duration, failed bool) {
	v, ok := m.actions.Load(action)
	if !ok {
		v, _ = m.actions.LoadOrStore(action, &actionCounters{})
	}
	c := v.(*actionCounters)
	c.count.Add(1)
	c.total.Add(int64(d))
	if failed {
		c.errors.Add(1)
	}
}

func (m *metrics) snapshot() []ActionStats {
	out := make([]ActionStats, 0, 16)
	m.actions.Range(func(k, v interface{}) bool {
		c := v.(*actionCounters)
		out = append(out, ActionStats{
			Action: k.(string),
			Count:  c.count.Load(),
			Errors: c.errors.Load(),
			Total:  time.Duration(c.total.Load()),
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Action < out[j].Action })
	return out
}

// Metrics returns per-action statistics collected since startup.
func (c *Controller) Metrics() []ActionStats { return c.metrics.snapshot() }
