package mvc

import (
	"time"

	"webmlgo/internal/obs"
)

// ActionStats aggregates the Controller's activity for one action — the
// operational visibility a centralized Controller makes trivial compared
// to scattered page templates. Statistics are derived from a per-action
// latency histogram, so beyond the classical count/total the snapshot
// carries the distribution: min, max and the p50/p95/p99 quantiles.
type ActionStats struct {
	Action string
	Count  int64
	Errors int64 // responses with status >= 400
	Total  time.Duration
	Min    time.Duration
	Max    time.Duration
	P50    time.Duration
	P95    time.Duration
	P99    time.Duration
}

// Mean returns the average service time of the action.
func (s ActionStats) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// ErrorRate returns the fraction of requests that answered status >= 400.
func (s ActionStats) ErrorRate() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Errors) / float64(s.Count)
}

// metrics is the live per-action accumulator: one lock-free histogram
// per action, shared with the /metrics exposition.
type metrics struct {
	vec obs.HistogramVec
}

func (m *metrics) record(action string, d time.Duration, failed bool) {
	m.vec.ObserveErr(action, d, failed)
}

func (m *metrics) snapshot() []ActionStats {
	out := make([]ActionStats, 0, 16)
	for _, s := range m.vec.Snapshot() {
		out = append(out, ActionStats{
			Action: s.LabelValue,
			Count:  int64(s.Hist.Count),
			Errors: int64(s.Hist.Errs),
			Total:  s.Hist.Sum,
			Min:    s.Hist.Min,
			Max:    s.Hist.Max,
			P50:    s.Hist.Quantile(0.5),
			P95:    s.Hist.Quantile(0.95),
			P99:    s.Hist.Quantile(0.99),
		})
	}
	return out
}

// Metrics returns per-action statistics collected since startup, sorted
// by action name.
func (c *Controller) Metrics() []ActionStats { return c.metrics.snapshot() }

// ActionHistograms exposes the per-action latency histograms backing
// Metrics() — app wiring registers this with the /metrics registry. The
// family metadata is stamped here (not on the hot path, which never
// reads it).
func (c *Controller) ActionHistograms() *obs.HistogramVec {
	v := &c.metrics.vec
	v.Name = "webml_action_seconds"
	v.Help = "Controller action service time by mapped action."
	v.Label = "action"
	return v
}
