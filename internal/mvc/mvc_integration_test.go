package mvc_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"webmlgo/internal/cache"
	"webmlgo/internal/codegen"
	"webmlgo/internal/descriptor"
	"webmlgo/internal/fixture"
	"webmlgo/internal/mvc"
	"webmlgo/internal/rdb"
	"webmlgo/internal/render"
)

// buildApp assembles the full fixture application: model -> generated
// artifacts -> seeded database -> controller with the real renderer.
func buildApp(t *testing.T, withBeanCache, withFragmentCache bool) (*mvc.Controller, *rdb.DB, *cache.BeanCache) {
	t.Helper()
	g, err := codegen.New(fixture.Figure1Model())
	if err != nil {
		t.Fatal(err)
	}
	art, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	db := rdb.Open()
	for _, stmt := range art.DDL {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatalf("DDL: %v", err)
		}
	}
	if err := fixture.Seed(db); err != nil {
		t.Fatal(err)
	}
	var business mvc.Business = mvc.NewLocalBusiness(db)
	var beans *cache.BeanCache
	if withBeanCache {
		beans = cache.NewBeanCache(0)
		business = mvc.NewCachedBusiness(business, beans)
	}
	eng := render.NewEngine(art.Repo)
	if withFragmentCache {
		eng.Fragments = cache.NewFragmentCache(0, 0)
	}
	return mvc.NewController(art.Repo, business, eng), db, beans
}

// get performs a request against the controller, following at most one
// redirect, and returns the final response and body.
func get(t *testing.T, ctl *mvc.Controller, path string, cookies []*http.Cookie) (*httptest.ResponseRecorder, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for _, c := range cookies {
		req.AddCookie(c)
	}
	rr := httptest.NewRecorder()
	ctl.ServeHTTP(rr, req)
	return rr, rr.Body.String()
}

func TestHomePageRendersVolumeIndex(t *testing.T) {
	ctl, _, _ := buildApp(t, false, false)
	rr, body := get(t, ctl, "/page/volumesPage", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rr.Code, body)
	}
	if !strings.Contains(body, "TODS Volume 27") || !strings.Contains(body, "TODS Volume 26") {
		t.Fatalf("volumes missing:\n%s", body)
	}
	// The index entries must anchor to the volume page with the oid.
	if !strings.Contains(body, `href="/page/volumePage?volume=1"`) {
		t.Fatalf("anchor missing:\n%s", body)
	}
	// Ordering: year DESC puts volume 27 (2002) first.
	if strings.Index(body, "TODS Volume 27") > strings.Index(body, "TODS Volume 26") {
		t.Fatal("ORDER BY not respected")
	}
}

// TestVolumePageReproducesFigure1 is experiment E1: the ACM DL volume
// page with data unit, hierarchical Issues&Papers index, and entry unit.
func TestVolumePageReproducesFigure1(t *testing.T) {
	ctl, _, _ := buildApp(t, false, false)
	rr, body := get(t, ctl, "/page/volumePage?volume=1", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rr.Code, body)
	}
	// Data unit: the volume's attributes.
	if !strings.Contains(body, "TODS Volume 27") || !strings.Contains(body, "2002") {
		t.Fatalf("volume data missing:\n%s", body)
	}
	// Hierarchical index: issues of volume 1 at level 0, their papers
	// nested at level 1 (computed through the transport link that carries
	// the volume OID from the data unit).
	for _, want := range []string{
		`class="webml-level-0"`, `class="webml-level-1"`,
		"Design Principles for Data-Intensive Web Sites",
		"Caching Dynamic Web Content",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("missing %q:\n%s", want, body)
		}
	}
	// Volume 2's paper must NOT appear (relationship scoping).
	if strings.Contains(body, "Views and Updates") {
		t.Fatal("paper of another volume leaked into the index")
	}
	// Papers anchor to the paper page.
	if !strings.Contains(body, `href="/page/paperPage?paper=`) {
		t.Fatalf("paper anchors missing:\n%s", body)
	}
	// Entry unit: keyword form targeting the search page with the mapped
	// parameter name.
	if !strings.Contains(body, `action="/page/searchResults"`) || !strings.Contains(body, `name="kw"`) {
		t.Fatalf("entry form missing:\n%s", body)
	}
}

func TestVolumePageWithoutParamRendersEmpty(t *testing.T) {
	ctl, _, _ := buildApp(t, false, false)
	rr, body := get(t, ctl, "/page/volumePage", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if !strings.Contains(body, "no content") {
		t.Fatalf("missing-input unit should render empty:\n%s", body)
	}
}

func TestScrollerSearchAndWindowing(t *testing.T) {
	ctl, db, _ := buildApp(t, false, false)
	// Add enough papers for two windows.
	for i := 0; i < 15; i++ {
		if _, err := db.Exec(`INSERT INTO paper (title, abstract, pages, fk_issuetopaper) VALUES (?, ?, ?, ?)`,
			"Web Paper "+string(rune('A'+i)), "x", 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	rr, body := get(t, ctl, "/page/searchResults?kw=web", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	// LIKE %web% matches the 15 new + 2 seeded with "Web"/"web" in title.
	if !strings.Contains(body, "of 17") {
		t.Fatalf("total missing:\n%s", body)
	}
	if !strings.Contains(body, ">next</a>") {
		t.Fatalf("next window anchor missing:\n%s", body)
	}
	// Second window.
	rr, body = get(t, ctl, "/page/searchResults?kw=web&offset=10", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if !strings.Contains(body, "11-17 of 17") {
		t.Fatalf("second window info wrong:\n%s", body)
	}
	if !strings.Contains(body, ">prev</a>") {
		t.Fatalf("prev anchor missing:\n%s", body)
	}
}

func TestOperationCreateRedirectsAndPersists(t *testing.T) {
	ctl, db, _ := buildApp(t, false, false)
	rr, _ := get(t, ctl, "/op/createVolume?title=New+Volume&year=2003", nil)
	if rr.Code != http.StatusFound {
		t.Fatalf("status = %d", rr.Code)
	}
	loc := rr.Header().Get("Location")
	if !strings.HasPrefix(loc, "/page/managePage") {
		t.Fatalf("redirect = %q", loc)
	}
	// The created OID is forwarded (pass-through forwarding).
	u, _ := url.Parse(loc)
	if u.Query().Get("oid") != "3" {
		t.Fatalf("oid not forwarded: %q", loc)
	}
	m, err := db.QueryRow(`SELECT title, year FROM volume WHERE oid = 3`)
	if err != nil || m == nil {
		t.Fatalf("row missing: %v %v", m, err)
	}
	if m["title"] != "New Volume" || m["year"] != int64(2003) {
		t.Fatalf("row = %v", m)
	}
}

func TestOperationValidationFailureFollowsKO(t *testing.T) {
	ctl, db, _ := buildApp(t, false, false)
	// volForm requires title; year must be an integer.
	rr, _ := get(t, ctl, "/op/createVolume?year=notanumber", nil)
	if rr.Code != http.StatusFound {
		t.Fatalf("status = %d", rr.Code)
	}
	loc := rr.Header().Get("Location")
	if !strings.Contains(loc, "_error=validation+failed") {
		t.Fatalf("redirect = %q", loc)
	}
	n, _ := db.RowCount("volume")
	if n != 2 {
		t.Fatalf("validation failure still wrote: %d volumes", n)
	}
	// The KO page redisplays the sticky value and the field errors; the
	// form state lives in the session, so reuse the cookie.
	cookies := rr.Result().Cookies()
	login(t, ctl, cookies)
	rr2, body := get(t, ctl, loc, cookies)
	if rr2.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rr2.Code, body)
	}
	if !strings.Contains(body, "validation failed") {
		t.Fatalf("error banner missing:\n%s", body)
	}
	if !strings.Contains(body, `value="notanumber"`) {
		t.Fatalf("sticky value missing:\n%s", body)
	}
	if !strings.Contains(body, "must be an integer") || !strings.Contains(body, "required") {
		t.Fatalf("field errors missing:\n%s", body)
	}
}

func login(t *testing.T, ctl *mvc.Controller, cookies []*http.Cookie) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/login?user=admin", nil)
	for _, c := range cookies {
		req.AddCookie(c)
	}
	rr := httptest.NewRecorder()
	ctl.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("login status = %d", rr.Code)
	}
}

func TestProtectedSiteViewRequiresLogin(t *testing.T) {
	ctl, _, _ := buildApp(t, false, false)
	rr, _ := get(t, ctl, "/page/managePage", nil)
	if rr.Code != http.StatusUnauthorized {
		t.Fatalf("status = %d", rr.Code)
	}
	cookies := rr.Result().Cookies()
	if len(cookies) == 0 {
		t.Fatal("no session cookie issued")
	}
	login(t, ctl, cookies)
	rr2, body := get(t, ctl, "/page/managePage", cookies)
	if rr2.Code != http.StatusOK {
		t.Fatalf("status after login = %d: %s", rr2.Code, body)
	}
	if !strings.Contains(body, "TODS Volume 27") {
		t.Fatalf("manage page content missing:\n%s", body)
	}
	// Logout revokes access.
	req := httptest.NewRequest(http.MethodPost, "/logout", nil)
	for _, c := range cookies {
		req.AddCookie(c)
	}
	rr3 := httptest.NewRecorder()
	ctl.ServeHTTP(rr3, req)
	rr4, _ := get(t, ctl, "/page/managePage", cookies)
	if rr4.Code != http.StatusUnauthorized {
		t.Fatalf("status after logout = %d", rr4.Code)
	}
}

func TestDeleteOperationAndKOOnMissingObject(t *testing.T) {
	ctl, db, _ := buildApp(t, false, false)
	rr, _ := get(t, ctl, "/op/deleteVolume?oid=2", nil)
	if rr.Code != http.StatusFound {
		t.Fatalf("status = %d", rr.Code)
	}
	n, _ := db.RowCount("volume")
	if n != 1 {
		t.Fatalf("volumes = %d", n)
	}
	// Deleting a ghost object follows the KO link with an error.
	rr2, _ := get(t, ctl, "/op/deleteVolume?oid=99", nil)
	loc := rr2.Header().Get("Location")
	if !strings.Contains(loc, "_error=") {
		t.Fatalf("KO redirect = %q", loc)
	}
}

func TestConnectOperation(t *testing.T) {
	ctl, db, _ := buildApp(t, false, false)
	rr, _ := get(t, ctl, "/op/tagPaper?from=2&to=2", nil)
	if rr.Code != http.StatusFound {
		t.Fatalf("status = %d", rr.Code)
	}
	rows, err := db.Query(`SELECT COUNT(*) FROM rel_paperkeyword WHERE from_oid = 2 AND to_oid = 2`)
	if err != nil || rows.Data[0][0] != int64(1) {
		t.Fatalf("bridge row missing: %v %v", rows, err)
	}
}

func TestUnknownActionIs404(t *testing.T) {
	ctl, _, _ := buildApp(t, false, false)
	rr, _ := get(t, ctl, "/page/ghost", nil)
	if rr.Code != http.StatusNotFound {
		t.Fatalf("status = %d", rr.Code)
	}
	rr2, _ := get(t, ctl, "/nothing", nil)
	if rr2.Code != http.StatusNotFound {
		t.Fatalf("status = %d", rr2.Code)
	}
}

// TestBeanCacheServesRepeatsAndInvalidates is experiment E6's
// correctness half: repeated page computations hit the bean cache, and a
// write operation invalidates exactly the dependent beans.
func TestBeanCacheServesRepeatsAndInvalidates(t *testing.T) {
	ctl, _, beans := buildApp(t, true, false)
	get(t, ctl, "/page/volumePage?volume=1", nil)
	s0 := beans.Stats()
	if s0.Puts == 0 {
		t.Fatalf("no beans cached: %+v", s0)
	}
	get(t, ctl, "/page/volumePage?volume=1", nil)
	s1 := beans.Stats()
	if s1.Hits <= s0.Hits {
		t.Fatalf("second request missed the bean cache: %+v -> %+v", s0, s1)
	}
	// Different parameters are a different key.
	get(t, ctl, "/page/volumePage?volume=2", nil)

	// createVolume writes entity:volume -> volumeData beans must drop
	// (volumeData reads entity:volume); issuesPapers also reads
	// entity:issue + rel deps, and its cached beans read entity:volume?
	// No: issuesPapers reads entity:issue, rel:volumetoissue,
	// rel:issuetopaper, entity:paper. So creating a volume must NOT drop
	// it, but deleting a volume (writes rel:volumetoissue) must.
	before := beans.Len()
	get(t, ctl, "/op/createVolume?title=T&year=1", nil)
	afterCreate := beans.Len()
	if afterCreate >= before {
		t.Fatalf("create invalidated nothing: %d -> %d", before, afterCreate)
	}
	// Repopulate and check delete invalidates the hierarchical index too.
	get(t, ctl, "/page/volumePage?volume=1", nil)
	get(t, ctl, "/op/deleteVolume?oid=3", nil)
	if _, ok := beans.Get(cacheKeyForVolumeIndex()); ok {
		t.Fatal("issuesPapers bean survived a volume deletion")
	}
}

// cacheKeyForVolumeIndex rebuilds the bean-cache key the engine uses for
// the issuesPapers unit scoped to volume 1.
func cacheKeyForVolumeIndex() string {
	return cache.Key("issuesPapers", map[string]string{"parent": "1"})
}

// TestStaleReadNeverServed: after any write through an operation, a
// freshly computed page must reflect the write even with caching on.
func TestStaleReadNeverServed(t *testing.T) {
	ctl, _, _ := buildApp(t, true, true)
	_, body := get(t, ctl, "/page/volumesPage", nil)
	if strings.Contains(body, "Fresh Volume") {
		t.Fatal("phantom volume")
	}
	get(t, ctl, "/op/createVolume?title=Fresh+Volume&year=2004", nil)
	_, body = get(t, ctl, "/page/volumesPage", nil)
	if !strings.Contains(body, "Fresh Volume") {
		t.Fatalf("stale page served after write:\n%s", body)
	}
}

// TestCustomComponentOverride exercises Section 6's second override
// mechanism: the descriptor's Service attribute routes the unit to a
// user-supplied business component that fully replaces the generic one.
func TestCustomComponentOverride(t *testing.T) {
	g, err := codegen.New(fixture.Figure1Model())
	if err != nil {
		t.Fatal(err)
	}
	art, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	db := rdb.Open()
	for _, stmt := range art.DDL {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	if err := fixture.Seed(db); err != nil {
		t.Fatal(err)
	}
	if err := art.Repo.OverrideService("volumeData", "tuned.VolumeData"); err != nil {
		t.Fatal(err)
	}
	lb := mvc.NewLocalBusiness(db)
	called := false
	lb.RegisterCustomComponent("tuned.VolumeData", mvc.UnitServiceFunc(
		func(_ context.Context, _ *rdb.DB, d *descriptor.Unit, _ map[string]mvc.Value) (*mvc.UnitBean, error) {
			called = true
			return &mvc.UnitBean{
				UnitID: d.ID, Kind: d.Kind, Fields: []string{"Title"},
				Nodes: []mvc.Node{{Values: mvc.Row{"Title": "optimized!"}}},
			}, nil
		}))
	ctl := mvc.NewController(art.Repo, lb, render.NewEngine(art.Repo))
	rr, body := get(t, ctl, "/page/volumePage?volume=1", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rr.Code, body)
	}
	if !called {
		t.Fatal("custom component not invoked")
	}
	if !strings.Contains(body, "optimized!") {
		t.Fatalf("custom bean not rendered:\n%s", body)
	}
	// Unknown custom component is a hard error.
	if err := art.Repo.OverrideService("paperData", "ghost.Component"); err != nil {
		t.Fatal(err)
	}
	rr2, _ := get(t, ctl, "/page/paperPage?paper=1", nil)
	if rr2.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d", rr2.Code)
	}
}

// TestFragmentCacheSparesMarkupOnly verifies the Section 6 observation:
// with only the fragment cache (no bean cache), repeated requests still
// reach the database, but render from cached fragments.
func TestFragmentCacheSparesMarkupOnly(t *testing.T) {
	g, err := codegen.New(fixture.Figure1Model())
	if err != nil {
		t.Fatal(err)
	}
	art, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	db := rdb.Open()
	for _, stmt := range art.DDL {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	if err := fixture.Seed(db); err != nil {
		t.Fatal(err)
	}
	eng := render.NewEngine(art.Repo)
	frags := cache.NewFragmentCache(0, 0)
	eng.Fragments = frags
	ctl := mvc.NewController(art.Repo, mvc.NewLocalBusiness(db), eng)

	_, first := get(t, ctl, "/page/volumePage?volume=1", nil)
	s0 := frags.Stats()
	if s0.Puts == 0 {
		t.Fatalf("no fragments cached: %+v", s0)
	}
	_, second := get(t, ctl, "/page/volumePage?volume=1", nil)
	s1 := frags.Stats()
	if s1.Hits <= s0.Hits {
		t.Fatalf("second render missed the fragment cache: %+v -> %+v", s0, s1)
	}
	if first != second {
		t.Fatal("cached fragments changed the output")
	}
	// A write changes the bean content, so the fragment key changes and
	// the stale fragment is never served.
	if _, err := db.Exec(`UPDATE volume SET title = 'Renamed' WHERE oid = 1`); err != nil {
		t.Fatal(err)
	}
	_, third := get(t, ctl, "/page/volumePage?volume=1", nil)
	if !strings.Contains(third, "Renamed") {
		t.Fatal("stale fragment served after data change")
	}
}

// TestMultichoiceFanOut: a multichoice selection submits one parameter
// with multiple values; the connect operation applies once per value.
func TestMultichoiceFanOut(t *testing.T) {
	ctl, db, _ := buildApp(t, false, false)
	// Tag papers 1, 2 and 4 with keyword 2 in a single request.
	rr, _ := get(t, ctl, "/op/tagPaper?from=1&from=2&from=4&to=2", nil)
	if rr.Code != http.StatusFound {
		t.Fatalf("status = %d", rr.Code)
	}
	rows, err := db.Query(`SELECT COUNT(*) FROM rel_paperkeyword WHERE to_oid = 2`)
	if err != nil {
		t.Fatal(err)
	}
	// 1 seeded (paper 3) + 3 new.
	if rows.Data[0][0] != int64(4) {
		t.Fatalf("bridge rows = %v", rows.Data[0][0])
	}
}

// TestMultichoiceFanOutStopsOnFailure: a failing element follows KO and
// aborts the remainder of the fan-out.
func TestMultichoiceFanOutStopsOnFailure(t *testing.T) {
	ctl, db, _ := buildApp(t, false, false)
	// Paper 99 violates the bridge FK; 1 succeeds first, 4 never runs.
	rr, _ := get(t, ctl, "/op/tagPaper?from=1&from=99&from=4&to=2", nil)
	if rr.Code != http.StatusFound {
		t.Fatalf("status = %d", rr.Code)
	}
	loc := rr.Header().Get("Location")
	if !strings.Contains(loc, "_error=") {
		t.Fatalf("KO redirect expected, got %q", loc)
	}
	rows, err := db.Query(`SELECT COUNT(*) FROM rel_paperkeyword WHERE from_oid = 4 AND to_oid = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0] != int64(0) {
		t.Fatal("fan-out continued past a failure")
	}
}

// TestPanickingCustomComponentBecomes500: a faulty user-supplied
// component must not take the Controller down.
func TestPanickingCustomComponentBecomes500(t *testing.T) {
	g, err := codegen.New(fixture.Figure1Model())
	if err != nil {
		t.Fatal(err)
	}
	art, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	db := rdb.Open()
	for _, stmt := range art.DDL {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	if err := fixture.Seed(db); err != nil {
		t.Fatal(err)
	}
	if err := art.Repo.OverrideService("volumeData", "buggy"); err != nil {
		t.Fatal(err)
	}
	lb := mvc.NewLocalBusiness(db)
	lb.RegisterCustomComponent("buggy", mvc.UnitServiceFunc(
		func(_ context.Context, _ *rdb.DB, _ *descriptor.Unit, _ map[string]mvc.Value) (*mvc.UnitBean, error) {
			panic("component bug")
		}))
	ctl := mvc.NewController(art.Repo, lb, render.NewEngine(art.Repo))
	rr, body := get(t, ctl, "/page/volumePage?volume=1", nil)
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d: %s", rr.Code, body)
	}
	if !strings.Contains(body, "component bug") {
		t.Fatalf("panic cause hidden:\n%s", body)
	}
	// The controller survives: other pages still serve.
	rr2, _ := get(t, ctl, "/page/volumesPage", nil)
	if rr2.Code != http.StatusOK {
		t.Fatalf("controller did not survive: %d", rr2.Code)
	}
}

// TestConditionalGET: unchanged pages revalidate with 304.
func TestConditionalGET(t *testing.T) {
	ctl, db, _ := buildApp(t, false, false)
	rr, _ := get(t, ctl, "/page/volumesPage", nil)
	etag := rr.Header().Get("ETag")
	if etag == "" {
		t.Fatal("no ETag issued")
	}
	req := httptest.NewRequest(http.MethodGet, "/page/volumesPage", nil)
	req.Header.Set("If-None-Match", etag)
	rr2 := httptest.NewRecorder()
	ctl.ServeHTTP(rr2, req)
	if rr2.Code != http.StatusNotModified {
		t.Fatalf("status = %d", rr2.Code)
	}
	if rr2.Body.Len() != 0 {
		t.Fatal("304 carried a body")
	}
	// Content change -> new ETag -> full response.
	if _, err := db.Exec(`UPDATE volume SET title = 'Renamed' WHERE oid = 1`); err != nil {
		t.Fatal(err)
	}
	rr3 := httptest.NewRecorder()
	ctl.ServeHTTP(rr3, req)
	if rr3.Code != http.StatusOK {
		t.Fatalf("status after change = %d", rr3.Code)
	}
	if rr3.Header().Get("ETag") == etag {
		t.Fatal("ETag did not change with content")
	}
}
