package mvc

import (
	"context"
	"fmt"
	"slices"
	"strconv"
	"sync"
	"time"

	"webmlgo/internal/cache"
	"webmlgo/internal/descriptor"
	"webmlgo/internal/obs"
	"webmlgo/internal/rdb"
)

// Business is the business tier of Figure 4: it computes unit content
// and executes operations. The local implementation runs inside the
// "servlet container"; internal/ejb provides a remote implementation
// living in the application server (Figure 6), and CachedBusiness wraps
// either with the Section 6 bean cache.
//
// Every call carries the request context: the controller derives a
// per-request deadline and each tier below (worker pool, bean cache,
// gob client) observes it, so a hung container can never wedge a
// servlet worker past the request budget.
type Business interface {
	// ComputeUnit produces the unit bean for a descriptor and inputs.
	ComputeUnit(ctx context.Context, d *descriptor.Unit, inputs map[string]Value) (*UnitBean, error)
	// ExecuteOperation runs an operation and reports OK/KO.
	ExecuteOperation(ctx context.Context, d *descriptor.Unit, inputs map[string]Value) (*OpResult, error)
}

// LocalBusiness executes services in-process against the database.
type LocalBusiness struct {
	DB *rdb.DB
	// Units maps unit kind -> generic service.
	Units map[string]UnitService
	// Operations maps operation kind -> generic service.
	Operations map[string]OperationService
	// Custom maps component names (descriptor Service attribute) to
	// user-supplied services that override the generic ones (Section 6:
	// "this component can be completely overridden by a user-supplied
	// one, which may implement any required optimization policy").
	Custom map[string]UnitService
	// CustomOps is the operation counterpart of Custom.
	CustomOps map[string]OperationService
}

// NewLocalBusiness wires the core generic services over db.
func NewLocalBusiness(db *rdb.DB) *LocalBusiness {
	return &LocalBusiness{
		DB:         db,
		Units:      CoreUnitServices(),
		Operations: CoreOperationServices(),
		Custom:     map[string]UnitService{},
		CustomOps:  map[string]OperationService{},
	}
}

// RegisterUnitService installs (or replaces) the generic service for a
// unit kind — how plug-in units attach their runtime component.
func (b *LocalBusiness) RegisterUnitService(kind string, s UnitService) {
	b.Units[kind] = s
}

// RegisterOperationService installs the generic service for an operation
// kind.
func (b *LocalBusiness) RegisterOperationService(kind string, s OperationService) {
	b.Operations[kind] = s
}

// RegisterCustomComponent installs a named user-supplied unit service
// referenced by descriptor Service attributes.
func (b *LocalBusiness) RegisterCustomComponent(name string, s UnitService) {
	b.Custom[name] = s
}

// RegisterCustomOperation installs a named user-supplied operation
// service.
func (b *LocalBusiness) RegisterCustomOperation(name string, s OperationService) {
	b.CustomOps[name] = s
}

// ComputeUnit implements Business. Unit services run against the
// in-process database and do not block, so the context is only checked
// at entry: a request past its deadline stops before touching the DB.
func (b *LocalBusiness) ComputeUnit(ctx context.Context, d *descriptor.Unit, inputs map[string]Value) (*UnitBean, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if d.Service != "" {
		if s, ok := b.Custom[d.Service]; ok {
			return s.Compute(ctx, b.DB, d, inputs)
		}
		return nil, fmt.Errorf("mvc: unit %s names unknown custom component %q", d.ID, d.Service)
	}
	s, ok := b.Units[d.Kind]
	if !ok {
		return nil, fmt.Errorf("mvc: no generic service for unit kind %q", d.Kind)
	}
	return s.Compute(ctx, b.DB, d, inputs)
}

// ExecuteOperation implements Business.
func (b *LocalBusiness) ExecuteOperation(ctx context.Context, d *descriptor.Unit, inputs map[string]Value) (*OpResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if d.Service != "" {
		if s, ok := b.CustomOps[d.Service]; ok {
			return s.Execute(ctx, b.DB, d, inputs)
		}
		return nil, fmt.Errorf("mvc: operation %s names unknown custom component %q", d.ID, d.Service)
	}
	s, ok := b.Operations[d.Kind]
	if !ok {
		return nil, fmt.Errorf("mvc: no generic service for operation kind %q", d.Kind)
	}
	return s.Execute(ctx, b.DB, d, inputs)
}

// CachedBusiness decorates a Business with the bean cache: unit beans of
// cache-tagged descriptors are reused across requests, and operations
// automatically invalidate the beans whose Reads intersect their Writes.
// Concurrent misses of the same key are coalesced so exactly one
// computation hits the database.
type CachedBusiness struct {
	Inner Business
	Cache *cache.BeanCache

	// MaxStaleness bounds degraded-mode serving: when the inner business
	// fails (container down, deadline expired), a TTL-expired bean no
	// older than this may still be served instead of an error page —
	// Section 6's cache acting as the last line of defence, mirroring the
	// edge tier's stale-while-revalidate at the bean level. Invalidation
	// removes beans outright, so degraded mode can only serve data aged
	// past its TTL, never data written over by an operation. Zero
	// disables degraded serving.
	MaxStaleness time.Duration

	flights flightGroup
}

// NewCachedBusiness wraps inner with the bean cache.
func NewCachedBusiness(inner Business, c *cache.BeanCache) *CachedBusiness {
	return &CachedBusiness{Inner: inner, Cache: c}
}

// ComputeUnit implements Business with bean caching and singleflight
// coalescing: of K requests missing the same key concurrently, one (the
// leader) computes against the database and the other K-1 wait for its
// result. The invalidation version of the unit's read dependencies is
// snapshotted before computing; PutIfFresh refuses the bean if an
// operation invalidated any of them in the meantime, so a stale bean is
// never cached.
func (cb *CachedBusiness) ComputeUnit(ctx context.Context, d *descriptor.Unit, inputs map[string]Value) (*UnitBean, error) {
	if d.Cache == nil || !d.Cache.Enabled {
		return cb.Inner.ComputeUnit(ctx, d, inputs)
	}
	key := beanKey(d.ID, inputs)
	gsp := obs.Leaf(ctx, "cache.get").Label("unit", d.ID)
	if v, ok := cb.Cache.Get(key); ok {
		gsp.Label("outcome", "hit").End()
		return v.(*UnitBean), nil
	}
	gsp.Label("outcome", "miss").End()
	f, leader := cb.flights.join(key, d.Reads)
	if !leader {
		wsp := obs.Leaf(ctx, "cache.wait").Label("unit", d.ID)
		select {
		case <-f.done:
			wsp.End()
		case <-ctx.Done():
			// Don't wait past this request's budget for someone else's
			// leader; a stale bean within bound still beats an error.
			wsp.EndErr(ctx.Err())
			return cb.degraded(key, ctx.Err())
		}
		if f.err != nil {
			return cb.degraded(key, f.err)
		}
		return f.bean, nil
	}
	v := cb.Cache.Version(d.Reads)
	bean, err := cb.Inner.ComputeUnit(ctx, d, inputs)
	current := cb.flights.finish(key, f, bean, err)
	if err != nil {
		return cb.degraded(key, err)
	}
	if current {
		ttl := time.Duration(0)
		if d.Cache.TTLSeconds > 0 {
			ttl = time.Duration(d.Cache.TTLSeconds) * time.Second
		}
		psp := obs.Leaf(ctx, "cache.put").Label("unit", d.ID)
		stored := cb.Cache.PutIfFresh(key, bean, d.Reads, ttl, v)
		psp.Label("stored", strconv.FormatBool(stored)).End()
	}
	return bean, nil
}

// degraded is the fallback path of a failed cached computation: if
// degraded serving is enabled and a bean no older than MaxStaleness is
// still retained (TTL-expired beans are kept, invalidated ones are not),
// serve it and swallow the failure; otherwise surface the original error.
func (cb *CachedBusiness) degraded(key string, err error) (*UnitBean, error) {
	if cb.MaxStaleness > 0 {
		if v, _, ok := cb.Cache.GetStale(key, cb.MaxStaleness); ok {
			return v.(*UnitBean), nil
		}
	}
	return nil, err
}

// ExecuteOperation implements Business, invalidating dependent beans on
// success — "the implementation of operations automatically invalidates
// the affected cached objects" (Section 6). In-flight computations
// reading the written tags are forgotten first, so requests arriving
// after the write never join a pre-write flight; PutIfFresh's version
// check then keeps any still-finishing leader from caching its result.
// Operations are never retried and never degrade: a write either
// happened or its error surfaces.
func (cb *CachedBusiness) ExecuteOperation(ctx context.Context, d *descriptor.Unit, inputs map[string]Value) (*OpResult, error) {
	res, err := cb.Inner.ExecuteOperation(ctx, d, inputs)
	if err != nil {
		return nil, err
	}
	if res.OK && len(d.Writes) > 0 {
		cb.flights.forget(d.Writes...)
		cb.Cache.Invalidate(d.Writes...)
	}
	return res, nil
}

// NotifyingBusiness decorates a Business with a write-event bus: after
// every successful operation it publishes the operation's written
// dependency tags. The edge tier subscribes to extend Section 6's
// model-driven invalidation beyond the bean cache — one write event
// purges the dependency closure at every cache level.
type NotifyingBusiness struct {
	Inner Business
	// OnWrite receives the Writes tags of each successful operation.
	OnWrite func(tags []string)
}

// ComputeUnit implements Business by delegation.
func (nb *NotifyingBusiness) ComputeUnit(ctx context.Context, d *descriptor.Unit, inputs map[string]Value) (*UnitBean, error) {
	return nb.Inner.ComputeUnit(ctx, d, inputs)
}

// ExecuteOperation implements Business, publishing the written tags on
// success. The inner business (CachedBusiness) has already invalidated
// its own level when the event fires, so subscribers refilling from the
// origin observe post-write state.
func (nb *NotifyingBusiness) ExecuteOperation(ctx context.Context, d *descriptor.Unit, inputs map[string]Value) (*OpResult, error) {
	res, err := nb.Inner.ExecuteOperation(ctx, d, inputs)
	if err != nil {
		return nil, err
	}
	if res.OK && len(d.Writes) > 0 && nb.OnWrite != nil {
		nb.OnWrite(d.Writes)
	}
	return res, nil
}

// beanKeyBuilder assembles bean cache keys without the intermediate
// map[string]string and per-value strings of the naive implementation;
// instances are pooled. The output matches cache.Key byte for byte.
type beanKeyBuilder struct {
	names []string
	buf   []byte
}

var beanKeyPool = sync.Pool{New: func() interface{} { return new(beanKeyBuilder) }}

// beanKey builds the cache key from the unit ID and typed inputs.
func beanKey(unitID string, inputs map[string]Value) string {
	if len(inputs) == 0 {
		return unitID
	}
	kb := beanKeyPool.Get().(*beanKeyBuilder)
	kb.names = kb.names[:0]
	for n := range inputs {
		kb.names = append(kb.names, n)
	}
	slices.Sort(kb.names)
	kb.buf = append(kb.buf[:0], unitID...)
	for _, n := range kb.names {
		kb.buf = append(kb.buf, '|')
		kb.buf = append(kb.buf, n...)
		kb.buf = append(kb.buf, '=')
		kb.buf = rdb.AppendValue(kb.buf, inputs[n])
	}
	key := string(kb.buf)
	beanKeyPool.Put(kb)
	return key
}
