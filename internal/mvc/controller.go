package mvc

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"webmlgo/internal/admit"
	"webmlgo/internal/descriptor"
	"webmlgo/internal/obs"
)

// Renderer is the View of Figure 4: it turns a computed page state into
// markup. internal/render implements it with custom-tag templates.
type Renderer interface {
	RenderPage(pd *descriptor.Page, state *PageState, ctx *RequestContext) ([]byte, error)
}

// ContainerRenderer is the View's edge mode (Section 6's ESI surrogate
// architecture): render a page as a container whose unit slots are
// <esi:include> placeholders, leaving all unit computation to the
// per-fragment endpoints. internal/render implements it.
type ContainerRenderer interface {
	RenderContainer(pd *descriptor.Page, ctx *RequestContext) ([]byte, error)
}

// FragmentRenderer renders exactly the markup RenderPage would inline
// for one unit — the response body of the edge tier's fragment
// endpoints. internal/render implements it.
type FragmentRenderer interface {
	RenderUnitFragment(pd *descriptor.Page, state *PageState, ctx *RequestContext, unitID string) ([]byte, error)
}

// RequestContext carries per-request information to the View.
type RequestContext struct {
	// Params are the request parameters (typed).
	Params map[string]Value
	// Session is the user's session.
	Session *Session
	// UserAgent is the declared client, used for multi-device
	// presentation dispatch (Section 5).
	UserAgent string
	// Error carries an operation failure message to display.
	Error string
}

// PageComputer produces the state objects of one page. The in-process
// implementation is PageService; internal/ejb provides a remote one (the
// "Page EJBs" of Figure 6, one round trip per page).
type PageComputer interface {
	ComputePage(ctx context.Context, pageID string, request map[string]Value, formState map[string]*FormState) (*PageState, error)
}

// Controller is the single servlet of the MVC 2 architecture (Figure 3):
// it intercepts every request, maps it to a page or operation action
// through the configuration file, invokes the business tier, and
// dispatches the View or the next action.
type Controller struct {
	Repo     *descriptor.Repository
	Business Business
	Pages    PageComputer
	Sessions *SessionManager
	Renderer Renderer
	// MaxChain bounds operation chain length (OK links targeting further
	// operations). 0 selects the default of 8.
	MaxChain int
	// EdgeFragments enables the edge-tier protocol: fragment/<page>/<unit>
	// endpoints answer with Surrogate-Control policies, and page actions
	// from an ESI-capable surrogate get container output instead of a
	// full inline render.
	EdgeFragments bool
	// RequestTimeout is the per-request deadline budget handed to the
	// business tier: page and operation actions derive a context that
	// expires after this much time, and every tier below (worker pool,
	// bean cache, gob client) observes it. A request past its budget
	// answers 504 (or a degraded stale bean, if enabled). 0 disables the
	// deadline — only client disconnect cancels.
	RequestTimeout time.Duration
	// Obs, when set, traces requests: a trace ID is allocated per
	// request (or joined, when the edge tier already started one) and
	// every tier below contributes spans. Nil disables tracing; the
	// latency histograms stay on either way.
	Obs *obs.Tracer
	// Admission, when set, gates every action behind the admission
	// limiter: a request acquires a concurrency slot (possibly queueing)
	// before any tier below runs, and holds it until the response is
	// written. Shed requests answer 503 with a drain-rate Retry-After
	// and an X-Webml-Shed marker so the edge can substitute a stale
	// fragment instead of surfacing the error.
	Admission *admit.Limiter
	// ClassifyRequest maps a request to its admission priority; nil
	// selects admit.Classify (operations > interactive > crawler).
	ClassifyRequest func(*http.Request) admit.Priority

	metrics metrics
}

// statusRecorder captures the response status for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// NewController wires a controller over a repository, business tier and
// renderer.
func NewController(repo *descriptor.Repository, business Business, renderer Renderer) *Controller {
	return &Controller{
		Repo:     repo,
		Business: business,
		Pages:    &PageService{Repo: repo, Business: business},
		Sessions: NewSessionManager(0),
		Renderer: renderer,
	}
}

// SetPageWorkers bounds the page service's per-request worker pool (<=1
// keeps sequential computation). It only applies to the in-process page
// service; a remote page service computes on the application server.
func (c *Controller) SetPageWorkers(n int) {
	if ps, ok := c.Pages.(*PageService); ok {
		ps.Workers = n
	}
}

// ServeHTTP implements http.Handler. Routes:
//
//	GET  /page/<id>   page actions
//	GET  /op/<id>     operation actions (also POST)
//	POST /login       sets the session principal (parameter "user")
//	POST /logout      clears it
func (c *Controller) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimPrefix(r.URL.Path, "/")
	if strings.HasPrefix(path, "fragment/") {
		start := time.Now()
		release, pri, ok := c.admitRequest(w, r)
		if !ok {
			c.metrics.record(path, time.Since(start), true)
			return
		}
		admitted := time.Now()
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		r, finish := c.traceRequest(r, path)
		if c.Admission != nil {
			// Retro-recorded: the wait happened before the trace existed.
			obs.RecordSpan(r.Context(), "admission.wait", start, admitted, "class", pri.String())
		}
		c.safeFragment(sr, r, path)
		release()
		finish(sr.status)
		c.metrics.record(path, time.Since(start), sr.status >= 400)
		return
	}
	session := c.resolveSession(w, r)
	switch {
	case strings.HasPrefix(path, "page/") || strings.HasPrefix(path, "op/"):
		start := time.Now()
		release, pri, ok := c.admitRequest(w, r)
		if !ok {
			c.metrics.record(path, time.Since(start), true)
			return
		}
		admitted := time.Now()
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		r, finish := c.traceRequest(r, path)
		if c.Admission != nil {
			// Retro-recorded: the wait happened before the trace existed.
			obs.RecordSpan(r.Context(), "admission.wait", start, admitted, "class", pri.String())
		}
		c.safeDispatch(sr, r, session, path)
		release()
		finish(sr.status)
		c.metrics.record(path, time.Since(start), sr.status >= 400)
	case path == "login":
		user := r.FormValue("user")
		if user == "" {
			http.Error(w, "missing user", http.StatusBadRequest)
			return
		}
		session.Set(sessionUserKey, user)
		if back := r.FormValue("back"); back != "" && strings.HasPrefix(back, "/") {
			http.Redirect(w, r, back, http.StatusFound)
			return
		}
		fmt.Fprintln(w, "ok")
	case path == "logout":
		session.Delete(sessionUserKey)
		fmt.Fprintln(w, "ok")
	default:
		http.NotFound(w, r)
	}
}

// admitRequest passes one request through the admission limiter. A
// shed answers 503 immediately: Retry-After derived from the measured
// drain rate, X-Webml-Shed so upstream caches know the error is a load
// decision (and may serve stale), and the shed class for debugging.
// The returned release frees the concurrency slot and must be called
// once the action has written its response.
func (c *Controller) admitRequest(w http.ResponseWriter, r *http.Request) (func(), admit.Priority, bool) {
	if c.Admission == nil {
		return func() {}, 0, true
	}
	classify := c.ClassifyRequest
	if classify == nil {
		classify = admit.Classify
	}
	pri := classify(r)
	acqStart := time.Now()
	release, err := c.Admission.Acquire(r.Context(), pri)
	if err == nil {
		return release, pri, true
	}
	// A shed on a request an upstream tier already traced (the edge
	// surrogate) leaves its mark in that trace; controller-rooted traces
	// don't exist yet at admission time, by design — admission runs
	// before any per-request allocation.
	obs.RecordSpan(r.Context(), "admission.shed", acqStart, time.Now(), "class", pri.String())
	if admit.IsShed(err) {
		h := w.Header()
		h.Set("Retry-After", strconv.Itoa(int(c.Admission.RetryAfter()/time.Second)))
		h.Set("X-Webml-Shed", "1")
		h.Set("X-Webml-Shed-Class", pri.String())
		http.Error(w, "overloaded: "+err.Error(), http.StatusServiceUnavailable)
	} else {
		// Not a load decision: the client went away while queued.
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	}
	return nil, pri, false
}

// traceRequest attaches tracing to one request: if an upstream tier (the
// edge surrogate, in-process) already started a trace, the controller
// joins it with a child span; otherwise, with a tracer configured, it
// becomes the trace root. The returned finish must be called with the
// final status once the action completes. Untraced requests pay one
// context lookup and get no-ops.
func (c *Controller) traceRequest(r *http.Request, action string) (*http.Request, func(status int)) {
	ctx := r.Context()
	if t, _ := obs.FromContext(ctx); t != nil {
		ctx, sp := obs.StartSpan(ctx, "controller")
		sp.Label("action", action)
		return r.WithContext(ctx), func(int) { sp.End() }
	}
	if c.Obs == nil {
		return r, func(int) {}
	}
	ctx, t := c.Obs.Start(ctx, action)
	if t == nil { // sampled out
		return r, func(int) {}
	}
	return r.WithContext(ctx), func(status int) { c.Obs.Finish(t, status) }
}

// resolveSession returns the request's session. A surrogate fetch (the
// edge advertises Surrogate-Capability) without a session cookie gets a
// detached session: the edge serves shared anonymous content, so minting
// a registered session (and a Set-Cookie) per internal fetch would leak
// server-side state and poison the shared cache with cookies.
func (c *Controller) resolveSession(w http.ResponseWriter, r *http.Request) *Session {
	if c.EdgeFragments && isSurrogate(r) {
		if _, err := r.Cookie(sessionCookie); err != nil {
			return c.Sessions.Detached()
		}
	}
	return c.Sessions.Resolve(w, r)
}

// isSurrogate reports whether the request comes from an ESI-capable
// surrogate (the edge tier).
func isSurrogate(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Surrogate-Capability"), "ESI/1.0")
}

// safeDispatch shields the Controller from panics in user-supplied
// custom components and plug-in services: the failing request becomes a
// 500, the server survives.
func (c *Controller) safeDispatch(w http.ResponseWriter, r *http.Request, session *Session, action string) {
	defer func() {
		if rec := recover(); rec != nil {
			http.Error(w, fmt.Sprintf("internal error in action %s: %v", action, rec),
				http.StatusInternalServerError)
		}
	}()
	c.dispatch(w, r, session, action)
}

// requestContext derives the per-request deadline context — the budget
// every tier below (page workers, bean cache, gob client) observes.
func (c *Controller) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if c.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), c.RequestTimeout)
	}
	return r.Context(), func() {}
}

// errStatus maps a business-tier failure to an HTTP status: a request
// past its deadline budget is a 504 (the tier boundary timed out, not
// the application logic), anything else stays a 500.
func errStatus(err error) int {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// dispatch runs one action (and any operation chain it starts).
func (c *Controller) dispatch(w http.ResponseWriter, r *http.Request, session *Session, action string) {
	ctx, cancel := c.requestContext(r)
	defer cancel()
	params := requestParams(r)

	// Multi-valued parameters (a multichoice selection) fan an operation
	// out over every selected object: the operation executes once per
	// value, then control continues as if a single invocation succeeded.
	if strings.HasPrefix(action, "op/") {
		if name, values := multiParam(r); name != "" && len(values) > 1 {
			m := c.Repo.Config().Mapping(action)
			opID := strings.TrimPrefix(action, "op/")
			d := c.Repo.Unit(opID)
			if m != nil && d != nil {
				for _, v := range values[:len(values)-1] {
					fan := make(map[string]Value, len(params))
					for k, pv := range params {
						fan[k] = pv
					}
					fan[name] = ConvertParam(v)
					if res, err := c.Business.ExecuteOperation(ctx, d, fan); err != nil {
						http.Error(w, err.Error(), errStatus(err))
						return
					} else if !res.OK {
						c.redirect(w, r, m.KO, m.KOParams, res.Outputs, fan, res.Err)
						return
					}
				}
				// The last value proceeds through the normal path (and
				// any OK chain).
				params[name] = ConvertParam(values[len(values)-1])
			}
		}
	}
	maxChain := c.MaxChain
	if maxChain <= 0 {
		maxChain = 8
	}
	for hop := 0; ; hop++ {
		m := c.Repo.Config().Mapping(action)
		if m == nil {
			http.NotFound(w, r)
			return
		}
		switch m.Type {
		case "page":
			c.pageAction(ctx, w, r, session, m, params)
			return
		case "operation":
			next, nextParams, done := c.operationAction(ctx, w, r, session, m, params)
			if done {
				return
			}
			if hop >= maxChain {
				http.Error(w, "operation chain too long", http.StatusLoopDetected)
				return
			}
			action, params = next, nextParams
		default:
			http.Error(w, "bad mapping type", http.StatusInternalServerError)
			return
		}
	}
}

// pageAction is the page action of Figure 4: extract the input from the
// HTTP request, call the page service, then invoke the View.
func (c *Controller) pageAction(ctx context.Context, w http.ResponseWriter, r *http.Request, session *Session, m *descriptor.Mapping, params map[string]Value) {
	pd := c.Repo.Page(m.Page)
	if pd == nil {
		http.Error(w, "missing page descriptor", http.StatusInternalServerError)
		return
	}
	if pd.Protected && session.User() == "" {
		w.Header().Set("WWW-Authenticate", "Session")
		http.Error(w, "authentication required", http.StatusUnauthorized)
		return
	}
	formState := takeFormState(session, pd)
	vctx := &RequestContext{
		Params:    params,
		Session:   session,
		UserAgent: r.UserAgent(),
		Error:     stringParam(params, "_error"),
	}

	// Cache metadata. Runtime styling dispatches on the User-Agent, so
	// any cache between here and the browser must key on it; content tied
	// to a principal or to one-shot form state must not be stored at all.
	h := w.Header()
	if c.variesByUserAgent() {
		h.Add("Vary", "User-Agent")
	}
	personalized := pd.Protected || session.User() != "" || len(formState) > 0
	if personalized {
		h.Set("Cache-Control", "private, no-store")
	} else {
		// Anonymous pages revalidate against the content-addressed ETag.
		h.Set("Cache-Control", "public, max-age=0, must-revalidate")
	}

	// Edge mode: an ESI-capable surrogate asking for a shareable page
	// gets the container — placeholders only, no unit computation here.
	// Personalized requests fall through to a full inline render, which
	// the surrogate relays without caching (no-store above).
	if c.EdgeFragments && !personalized && isSurrogate(r) {
		if cr, ok := c.Renderer.(ContainerRenderer); ok {
			out, err := cr.RenderContainer(pd, vctx)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			h.Set("Surrogate-Control", `content="ESI/1.0"`)
			h.Set("Content-Type", "text/html; charset=utf-8")
			w.Write(out) //nolint:errcheck // client disconnects are not actionable
			return
		}
	}

	state, err := c.Pages.ComputePage(ctx, m.Page, params, formState)
	if err != nil {
		http.Error(w, err.Error(), errStatus(err))
		return
	}
	out, err := c.Renderer.RenderPage(pd, state, vctx)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// Content-addressed ETag: clients and intermediaries revalidate
	// cheaply; unchanged pages cost one hash instead of a transfer.
	etag := fmt.Sprintf(`"%x"`, bodyHash(out))
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(out) //nolint:errcheck // client disconnects are not actionable
}

func bodyHash(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b) //nolint:errcheck // hash writes cannot fail
	return h.Sum64()
}

// variesByUserAgent reports whether the View dispatches on User-Agent
// (runtime presentation rules), in which case responses carry Vary.
func (c *Controller) variesByUserAgent() bool {
	v, ok := c.Renderer.(interface{ VariesByUserAgent() bool })
	return ok && v.VariesByUserAgent()
}

// safeFragment is safeDispatch for fragment endpoints.
func (c *Controller) safeFragment(w http.ResponseWriter, r *http.Request, path string) {
	defer func() {
		if rec := recover(); rec != nil {
			http.Error(w, fmt.Sprintf("internal error in %s: %v", path, rec),
				http.StatusInternalServerError)
		}
	}()
	c.fragmentAction(w, r, path)
}

// fragmentAction answers one edge-tier fragment request:
//
//	GET /fragment/<page>/<unit>?<page params>
//
// renders exactly the markup RenderPage would inline for that unit of
// that page, with the surrogate cache policy derived from the unit's
// descriptor (Surrogate-Control max-age from the conceptual cache TTL,
// X-Webml-Deps from the unit's read dependency tags) — the per-fragment
// "different policies" of Section 6's ESI architecture, driven entirely
// by the model.
func (c *Controller) fragmentAction(w http.ResponseWriter, r *http.Request, path string) {
	if !c.EdgeFragments {
		http.NotFound(w, r)
		return
	}
	pageID, unitID, ok := strings.Cut(strings.TrimPrefix(path, "fragment/"), "/")
	if !ok || pageID == "" || unitID == "" {
		http.NotFound(w, r)
		return
	}
	pd := c.Repo.Page(pageID)
	if pd == nil {
		http.NotFound(w, r)
		return
	}
	if pd.Protected {
		// Protected pages never decompose into shared fragments.
		http.Error(w, "authentication required", http.StatusUnauthorized)
		return
	}
	fr, ok := c.Renderer.(FragmentRenderer)
	if !ok {
		http.Error(w, "renderer lacks fragment support", http.StatusNotImplemented)
		return
	}
	ctx, cancel := c.requestContext(r)
	defer cancel()
	params := requestParams(r)
	state, err := c.Pages.ComputePage(ctx, pageID, params, nil)
	if err != nil {
		http.Error(w, err.Error(), errStatus(err))
		return
	}
	vctx := &RequestContext{Params: params, Session: c.Sessions.Detached(), UserAgent: r.UserAgent()}
	out, err := fr.RenderUnitFragment(pd, state, vctx, unitID)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	h := w.Header()
	if d := c.Repo.Unit(unitID); d != nil {
		if d.Cache != nil && d.Cache.Enabled && d.Cache.TTLSeconds > 0 {
			h.Set("Surrogate-Control", fmt.Sprintf("max-age=%d", d.Cache.TTLSeconds))
		}
		// Always present (possibly empty): the header marks the response
		// surrogate-cacheable and carries the tags whose writes purge it.
		h.Set("X-Webml-Deps", strings.Join(d.Reads, " "))
	}
	if c.variesByUserAgent() {
		h.Add("Vary", "User-Agent")
	}
	// Fragments are surrogate-internal: browsers and shared HTTP caches
	// must never store partial page markup.
	h.Set("Cache-Control", "no-store")
	h.Set("Content-Type", "text/html; charset=utf-8")
	w.Write(out) //nolint:errcheck // client disconnects are not actionable
}

// FragmentURL builds the edge fragment URL of one unit: the fragment
// endpoint carrying the page's request parameters in sorted order
// (stable surrogate cache keys). Internal parameters (leading
// underscore, e.g. _error) stay at the container level.
func FragmentURL(pageID, unitID string, params map[string]Value) string {
	out := make(map[string]string, len(params))
	for k, v := range params {
		if !strings.HasPrefix(k, "_") {
			out[k] = FormatParam(v)
		}
	}
	return ActionURL("fragment/"+pageID+"/"+unitID, out)
}

// operationAction executes one operation and resolves the next action.
// It returns (nextAction, nextParams, false) to continue a chain, or
// handles the response itself and returns done=true.
func (c *Controller) operationAction(ctx context.Context, w http.ResponseWriter, r *http.Request, session *Session, m *descriptor.Mapping, params map[string]Value) (string, map[string]Value, bool) {
	opID := strings.TrimPrefix(m.Action, "op/")
	d := c.Repo.Unit(opID)
	if d == nil {
		http.Error(w, "missing operation descriptor", http.StatusInternalServerError)
		return "", nil, true
	}

	// Validation service: check the inputs against the feeding entry
	// unit's field specifications before touching the database.
	if m.Validate != "" {
		if entry := c.Repo.Unit(m.Validate); entry != nil {
			if errs := ValidateFields(entry.Fields, params); len(errs) > 0 {
				storeFormState(session, m.Validate, params, errs)
				c.redirect(w, r, m.KO, m.KOParams, nil, params, "validation failed")
				return "", nil, true
			}
		}
	}

	res, err := c.Business.ExecuteOperation(ctx, d, params)
	if err != nil {
		http.Error(w, err.Error(), errStatus(err))
		return "", nil, true
	}
	if !res.OK {
		c.redirect(w, r, m.KO, m.KOParams, res.Outputs, params, res.Err)
		return "", nil, true
	}
	next := m.OK
	nextParams := forward(m.OKParams, res.Outputs, params)
	if strings.HasPrefix(next, "op/") {
		// Chained operation: continue in-process.
		return next, nextParams, false
	}
	c.redirect(w, r, next, m.OKParams, res.Outputs, params, "")
	return "", nil, true
}

// redirect sends the browser to the target action with forwarded
// parameters (HTTP 302, the classical MVC 2 post-redirect-get).
func (c *Controller) redirect(w http.ResponseWriter, r *http.Request, action string, fwd []descriptor.ForwardParam, outputs map[string]Value, params map[string]Value, errMsg string) {
	if action == "" {
		http.Error(w, "operation has no continuation: "+errMsg, http.StatusInternalServerError)
		return
	}
	q := url.Values{}
	for k, v := range forward(fwd, outputs, params) {
		if !strings.HasPrefix(k, "_") {
			q.Set(k, FormatParam(v))
		}
	}
	if errMsg != "" {
		q.Set("_error", errMsg)
	}
	target := "/" + action
	if enc := q.Encode(); enc != "" {
		target += "?" + enc
	}
	http.Redirect(w, r, target, http.StatusFound)
}

// forward materializes link-parameter forwarding: each ForwardParam's
// source is looked up in the operation outputs first, then in the
// original request parameters. With no explicit forwarding rules, the
// outputs and request parameters pass through (so a created OID reaches
// the next page).
func forward(fwd []descriptor.ForwardParam, outputs map[string]Value, params map[string]Value) map[string]Value {
	out := make(map[string]Value)
	if len(fwd) == 0 {
		for k, v := range params {
			out[k] = v
		}
		for k, v := range outputs {
			out[k] = v
		}
		return out
	}
	for _, f := range fwd {
		if v, ok := outputs[f.Source]; ok {
			out[f.Target] = v
			continue
		}
		if v, ok := params[f.Source]; ok {
			out[f.Target] = v
		}
	}
	return out
}

// ValidateFields applies the validation service's rules: required fields
// must be present and non-empty, and typed fields must parse.
func ValidateFields(fields []descriptor.FieldSpec, params map[string]Value) map[string]string {
	errs := map[string]string{}
	for _, f := range fields {
		raw, present := params[f.Name]
		s := ""
		if present {
			s = FormatParam(raw)
		}
		if s == "" {
			if f.Required {
				errs[f.Name] = "required"
			}
			continue
		}
		switch strings.ToUpper(f.Type) {
		case "INTEGER":
			if _, err := strconv.ParseInt(s, 10, 64); err != nil {
				errs[f.Name] = "must be an integer"
			}
		case "REAL":
			if _, err := strconv.ParseFloat(s, 64); err != nil {
				errs[f.Name] = "must be a number"
			}
		case "BOOLEAN":
			if s != "true" && s != "false" {
				errs[f.Name] = "must be true or false"
			}
		}
	}
	return errs
}

// Form state round-trips entry values and errors across KO redirects.

func formStateKey(entryID string) string { return "form:" + entryID }

func storeFormState(session *Session, entryID string, params map[string]Value, errs map[string]string) {
	fs := &FormState{Values: map[string]Value{}, Errors: errs}
	for k, v := range params {
		if !strings.HasPrefix(k, "_") {
			fs.Values[k] = v
		}
	}
	session.Set(formStateKey(entryID), fs)
}

// takeFormState collects (and clears) the sticky form state of every
// entry unit on the page.
func takeFormState(session *Session, pd *descriptor.Page) map[string]*FormState {
	out := map[string]*FormState{}
	for _, u := range pd.Units {
		if v, ok := session.Get(formStateKey(u.ID)); ok {
			if fs, ok := v.(*FormState); ok {
				out[u.ID] = fs
			}
			session.Delete(formStateKey(u.ID))
		}
	}
	return out
}

// multiParam returns the first request parameter carrying multiple
// values, if any.
func multiParam(r *http.Request) (string, []string) {
	_ = r.ParseForm() //nolint:errcheck // malformed bodies yield empty form
	for k, vs := range r.Form {
		if len(vs) > 1 {
			return k, vs
		}
	}
	return "", nil
}

// requestParams converts the URL query and POST form into typed values.
func requestParams(r *http.Request) map[string]Value {
	_ = r.ParseForm() //nolint:errcheck // malformed bodies yield empty form
	out := make(map[string]Value, len(r.Form))
	for k, vs := range r.Form {
		if len(vs) > 0 {
			out[k] = ConvertParam(vs[0])
		}
	}
	return out
}

func stringParam(params map[string]Value, name string) string {
	if v, ok := params[name]; ok {
		return FormatParam(v)
	}
	return ""
}

// ActionURL builds the URL of an action with sorted query parameters
// (stable for tests and cache keys).
func ActionURL(action string, params map[string]string) string {
	if len(params) == 0 {
		return "/" + action
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	q := url.Values{}
	for _, k := range keys {
		q.Set(k, params[k])
	}
	return "/" + action + "?" + q.Encode()
}
