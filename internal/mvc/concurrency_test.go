package mvc

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webmlgo/internal/cache"
	"webmlgo/internal/descriptor"
)

// gatedBusiness counts ComputeUnit invocations and can hold them on a
// gate so tests control when an in-flight computation finishes.
type gatedBusiness struct {
	computes atomic.Int64
	ops      atomic.Int64
	// gate, when non-nil, blocks ComputeUnit until closed.
	gate chan struct{}
	// entered signals each ComputeUnit entry when non-nil.
	entered chan struct{}
	// result built per call so tests can tell recomputations apart.
	mu      sync.Mutex
	payload string
}

func (g *gatedBusiness) setPayload(s string) {
	g.mu.Lock()
	g.payload = s
	g.mu.Unlock()
}

func (g *gatedBusiness) ComputeUnit(ctx context.Context, d *descriptor.Unit, inputs map[string]Value) (*UnitBean, error) {
	g.computes.Add(1)
	// Capture the payload at entry: the computation reads its database
	// snapshot when the query runs, not when the result is returned.
	g.mu.Lock()
	p := g.payload
	g.mu.Unlock()
	if g.entered != nil {
		g.entered <- struct{}{}
	}
	if g.gate != nil {
		<-g.gate
	}
	return &UnitBean{UnitID: d.ID, Kind: d.Kind, Nodes: []Node{{Values: Row{"v": p}}}}, nil
}

func (g *gatedBusiness) ExecuteOperation(ctx context.Context, d *descriptor.Unit, inputs map[string]Value) (*OpResult, error) {
	g.ops.Add(1)
	return &OpResult{OK: true}, nil
}

func cachedUnit() *descriptor.Unit {
	return &descriptor.Unit{
		ID:    "u1",
		Kind:  "data",
		Reads: []string{"entity:volume"},
		Cache: &descriptor.CachePolicy{Enabled: true},
	}
}

func writeOp() *descriptor.Unit {
	return &descriptor.Unit{
		ID:     "op1",
		Kind:   "create",
		Writes: []string{"entity:volume"},
	}
}

// TestSingleflightCoalescesMisses is the acceptance test of the issue: K
// concurrent misses of the same key must cause exactly one database
// recomputation.
func TestSingleflightCoalescesMisses(t *testing.T) {
	inner := &gatedBusiness{gate: make(chan struct{}), entered: make(chan struct{}, 1), payload: "x"}
	cb := NewCachedBusiness(inner, cache.NewBeanCache(64))
	d := cachedUnit()

	const K = 16
	var wg sync.WaitGroup
	beans := make([]*UnitBean, K)
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			beans[i], errs[i] = cb.ComputeUnit(context.Background(), d, map[string]Value{"oid": int64(1)})
		}(i)
	}
	<-inner.entered // the leader reached the database
	// Give the other K-1 goroutines time to miss and join the flight.
	time.Sleep(20 * time.Millisecond)
	close(inner.gate)
	wg.Wait()

	if n := inner.computes.Load(); n != 1 {
		t.Fatalf("inner computations = %d, want exactly 1", n)
	}
	for i := 0; i < K; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if beans[i] == nil || beans[i].Nodes[0].Values["v"] != "x" {
			t.Fatalf("goroutine %d got %+v", i, beans[i])
		}
	}
	// The coalesced result was cached: one more call is a pure hit.
	if _, err := cb.ComputeUnit(context.Background(), d, map[string]Value{"oid": int64(1)}); err != nil {
		t.Fatal(err)
	}
	if n := inner.computes.Load(); n != 1 {
		t.Fatalf("computations after cache hit = %d, want 1", n)
	}
}

// TestOperationForgetsInFlight pins the invalidation-awareness of the
// singleflight: an operation writing a tag while a computation of a
// dependent bean is in flight must prevent that computation's result from
// being cached, so the next request recomputes against post-write data.
func TestOperationForgetsInFlight(t *testing.T) {
	inner := &gatedBusiness{gate: make(chan struct{}), entered: make(chan struct{}, 1), payload: "pre-write"}
	cb := NewCachedBusiness(inner, cache.NewBeanCache(64))
	d := cachedUnit()

	done := make(chan *UnitBean, 1)
	go func() {
		b, err := cb.ComputeUnit(context.Background(), d, nil)
		if err != nil {
			t.Error(err)
		}
		done <- b
	}()
	<-inner.entered // leader is now inside the database call

	// The write lands while the read is still computing.
	if _, err := cb.ExecuteOperation(context.Background(), writeOp(), nil); err != nil {
		t.Fatal(err)
	}
	inner.setPayload("post-write")
	close(inner.gate)
	b := <-done
	// The overlapped reader may legitimately see pre-write data...
	if got := b.Nodes[0].Values["v"]; got != "pre-write" {
		t.Fatalf("overlapped reader got %v", got)
	}
	// ...but that result must NOT have been cached: a fresh request
	// recomputes and sees post-write data.
	inner.gate = nil
	inner.entered = nil
	b2, err := cb.ComputeUnit(context.Background(), d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := b2.Nodes[0].Values["v"]; got != "post-write" {
		t.Fatalf("post-write request got %v (stale bean cached)", got)
	}
	if n := inner.computes.Load(); n != 2 {
		t.Fatalf("computations = %d, want 2 (pre-write flight + fresh recompute)", n)
	}
}

// countingBusiness records which units computed and on which goroutine
// serialization order, without gating.
type countingBusiness struct {
	computes atomic.Int64
	delay    time.Duration
}

func (c *countingBusiness) ComputeUnit(ctx context.Context, d *descriptor.Unit, inputs map[string]Value) (*UnitBean, error) {
	c.computes.Add(1)
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	// Echo the inputs so parameter propagation is observable.
	vals := Row{"id": d.ID}
	for k, v := range inputs {
		vals[k] = v
	}
	return &UnitBean{UnitID: d.ID, Kind: d.Kind, Nodes: []Node{{Values: vals}}}, nil
}

func (c *countingBusiness) ExecuteOperation(ctx context.Context, d *descriptor.Unit, inputs map[string]Value) (*OpResult, error) {
	return &OpResult{OK: true}, nil
}

// fanPage builds a diamond page: root feeds n middle units which all feed
// one sink, exercising multi-unit levels and cross-level propagation.
func fanPage(repo *descriptor.Repository, n int) *descriptor.Page {
	pd := &descriptor.Page{ID: "fan"}
	pd.Units = append(pd.Units, descriptor.UnitRef{ID: "root"})
	repo.PutUnit(&descriptor.Unit{ID: "root", Kind: "data"})
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("mid%02d", i)
		pd.Units = append(pd.Units, descriptor.UnitRef{ID: id})
		repo.PutUnit(&descriptor.Unit{ID: id, Kind: "data"})
		pd.Edges = append(pd.Edges, descriptor.Edge{
			From: "root", To: id,
			Params: []descriptor.EdgeParam{{Source: "id", Target: "parent"}},
		})
		pd.Edges = append(pd.Edges, descriptor.Edge{
			From: id, To: "sink",
			Params: []descriptor.EdgeParam{{Source: "id", Target: "from-" + id}},
		})
	}
	pd.Units = append(pd.Units, descriptor.UnitRef{ID: "sink"})
	repo.PutUnit(&descriptor.Unit{ID: "sink", Kind: "data"})
	repo.PutPage(pd)
	return pd
}

// TestParallelPageComputeMatchesSequential checks the level-parallel
// scheduler produces byte-identical state to the sequential path.
func TestParallelPageComputeMatchesSequential(t *testing.T) {
	repo := descriptor.NewRepository()
	fanPage(repo, 8)
	seqSvc := &PageService{Repo: repo, Business: &countingBusiness{}}
	parSvc := &PageService{Repo: repo, Business: &countingBusiness{}, Workers: 4}

	req := map[string]Value{}
	seq, err := seqSvc.ComputePage(context.Background(), "fan", req, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := parSvc.ComputePage(context.Background(), "fan", req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Beans) != len(par.Beans) {
		t.Fatalf("bean counts differ: %d vs %d", len(seq.Beans), len(par.Beans))
	}
	for id, sb := range seq.Beans {
		pb := par.Beans[id]
		if pb == nil {
			t.Fatalf("parallel state missing bean %q", id)
		}
		if sb.Hash() != pb.Hash() {
			t.Fatalf("bean %q differs between sequential and parallel paths", id)
		}
	}
	// The sink saw every middle unit's propagated parameter.
	sink := par.Beans["sink"].Nodes[0].Values
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("from-mid%02d", i)
		if sink[key] == nil {
			t.Fatalf("sink missing propagated param %q: %v", key, sink)
		}
	}
}

// failingBusiness errors on one designated unit.
type failingBusiness struct {
	countingBusiness
	failUnit string
}

func (f *failingBusiness) ComputeUnit(ctx context.Context, d *descriptor.Unit, inputs map[string]Value) (*UnitBean, error) {
	if d.ID == f.failUnit {
		return nil, fmt.Errorf("boom in %s", d.ID)
	}
	return f.countingBusiness.ComputeUnit(context.Background(), d, inputs)
}

// TestParallelPageComputeFirstError checks deterministic error selection:
// whichever goroutine fails, the reported error is the earliest failing
// unit in level order.
func TestParallelPageComputeFirstError(t *testing.T) {
	repo := descriptor.NewRepository()
	fanPage(repo, 8)
	svc := &PageService{Repo: repo, Business: &failingBusiness{failUnit: "mid03"}, Workers: 4}
	for i := 0; i < 20; i++ {
		_, err := svc.ComputePage(context.Background(), "fan", nil, nil)
		if err == nil {
			t.Fatal("expected error")
		}
		if got := err.Error(); got != "boom in mid03" {
			t.Fatalf("error = %q, want the earliest failing unit's error", got)
		}
	}
}

// TestBeanKeyMatchesCacheKey pins the wire format: the pooled builder
// must produce byte-identical keys to cache.Key over formatted params,
// because integration tests and warm caches depend on it.
func TestBeanKeyMatchesCacheKey(t *testing.T) {
	inputs := map[string]Value{
		"oid":   int64(42),
		"name":  "vol",
		"ratio": 2.5,
		"live":  true,
		"when":  time.Date(2003, 1, 5, 12, 0, 0, 0, time.UTC),
		"gone":  nil,
	}
	strs := make(map[string]string, len(inputs))
	for k, v := range inputs {
		strs[k] = FormatParam(v)
	}
	want := cache.Key("issuesPapers", strs)
	if got := beanKey("issuesPapers", inputs); got != want {
		t.Fatalf("beanKey = %q, want %q", got, want)
	}
	if got := beanKey("solo", nil); got != "solo" {
		t.Fatalf("empty-input key = %q", got)
	}
}

// TestBeanKeyAllocations asserts the satellite's allocation reduction:
// the old implementation allocated an intermediate map plus one string
// per value; the pooled builder allocates only the final key (plus at
// most one pool miss).
func TestBeanKeyAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	inputs := map[string]Value{"oid": int64(7), "parent": int64(3), "q": "keyword"}
	// Warm the pool.
	beanKey("unit", inputs)
	avg := testing.AllocsPerRun(200, func() {
		beanKey("unit", inputs)
	})
	if avg > 2 {
		t.Fatalf("beanKey allocates %.1f objects/op, want <= 2", avg)
	}
}

func BenchmarkBeanKey(b *testing.B) {
	inputs := map[string]Value{"oid": int64(7), "parent": int64(3), "q": "keyword"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		beanKey("issuesPapers", inputs)
	}
}
