package mvc

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"webmlgo/internal/descriptor"
)

func newGetRequest(path string) *http.Request {
	return httptest.NewRequest(http.MethodGet, path, nil)
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	pd := &descriptor.Page{
		ID:    "p",
		Units: []descriptor.UnitRef{{ID: "c"}, {ID: "a"}, {ID: "b"}},
		Edges: []descriptor.Edge{{From: "a", To: "b"}, {From: "b", To: "c"}},
	}
	order, err := topoOrder(pd)
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
}

func TestTopoOrderStableWithoutEdges(t *testing.T) {
	pd := &descriptor.Page{
		ID:    "p",
		Units: []descriptor.UnitRef{{ID: "x"}, {ID: "y"}, {ID: "z"}},
	}
	order, err := topoOrder(pd)
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != "x" || order[1] != "y" || order[2] != "z" {
		t.Fatalf("order = %v", order)
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	pd := &descriptor.Page{
		ID:    "p",
		Units: []descriptor.UnitRef{{ID: "a"}, {ID: "b"}},
		Edges: []descriptor.Edge{{From: "a", To: "b"}, {From: "b", To: "a"}},
	}
	if _, err := topoOrder(pd); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestTopoOrderRejectsUnknownUnits(t *testing.T) {
	pd := &descriptor.Page{
		ID:    "p",
		Units: []descriptor.UnitRef{{ID: "a"}},
		Edges: []descriptor.Edge{{From: "a", To: "ghost"}},
	}
	if _, err := topoOrder(pd); err == nil {
		t.Fatal("unknown edge endpoint accepted")
	}
}

func TestConvertParam(t *testing.T) {
	if v := ConvertParam("42"); v != int64(42) {
		t.Fatalf("int: %v (%T)", v, v)
	}
	if v := ConvertParam("3.5"); v != 3.5 {
		t.Fatalf("float: %v", v)
	}
	if v := ConvertParam("abc"); v != "abc" {
		t.Fatalf("string: %v", v)
	}
	if v := ConvertParam(""); v != "" {
		t.Fatalf("empty: %v", v)
	}
}

func TestValidateFields(t *testing.T) {
	fields := []descriptor.FieldSpec{
		{Name: "title", Type: "TEXT", Required: true},
		{Name: "year", Type: "INTEGER"},
		{Name: "price", Type: "REAL"},
		{Name: "flag", Type: "BOOLEAN"},
	}
	errs := ValidateFields(fields, map[string]Value{
		"title": "x", "year": int64(2002), "price": 1.5, "flag": "true",
	})
	if len(errs) != 0 {
		t.Fatalf("errs = %v", errs)
	}
	errs = ValidateFields(fields, map[string]Value{
		"year": "not-a-number", "price": "nope", "flag": "maybe",
	})
	if errs["title"] != "required" {
		t.Fatalf("title err = %q", errs["title"])
	}
	if errs["year"] == "" || errs["price"] == "" || errs["flag"] == "" {
		t.Fatalf("errs = %v", errs)
	}
	// Optional empty fields are fine.
	errs = ValidateFields(fields, map[string]Value{"title": "x"})
	if len(errs) != 0 {
		t.Fatalf("errs = %v", errs)
	}
}

func TestForward(t *testing.T) {
	outputs := map[string]Value{"oid": int64(7)}
	params := map[string]Value{"a": int64(1), "b": "x"}
	// Explicit rules: outputs win over params.
	got := forward([]descriptor.ForwardParam{
		{Source: "oid", Target: "volume"},
		{Source: "b", Target: "bb"},
		{Source: "ghost", Target: "g"},
	}, outputs, params)
	if got["volume"] != int64(7) || got["bb"] != "x" {
		t.Fatalf("got %v", got)
	}
	if _, ok := got["g"]; ok {
		t.Fatal("ghost forwarded")
	}
	// No rules: pass-through with outputs overriding.
	got = forward(nil, map[string]Value{"a": int64(9)}, params)
	if got["a"] != int64(9) || got["b"] != "x" {
		t.Fatalf("got %v", got)
	}
}

func TestBeanHashSensitivity(t *testing.T) {
	b1 := &UnitBean{UnitID: "u", Kind: "data", Nodes: []Node{{Values: Row{"t": "x"}}}}
	b2 := &UnitBean{UnitID: "u", Kind: "data", Nodes: []Node{{Values: Row{"t": "x"}}}}
	if b1.Hash() != b2.Hash() {
		t.Fatal("equal beans hash differently")
	}
	b2.Nodes[0].Values["t"] = "y"
	if b1.Hash() == b2.Hash() {
		t.Fatal("different beans hash equal")
	}
	b3 := &UnitBean{UnitID: "u", Kind: "data", Nodes: []Node{{Values: Row{"t": "x"},
		Children: []Node{{Values: Row{"c": "1"}}}}}}
	if b3.Hash() == b1.Hash() {
		t.Fatal("children ignored by hash")
	}
}

func TestActionURL(t *testing.T) {
	if got := ActionURL("page/p1", nil); got != "/page/p1" {
		t.Fatal(got)
	}
	got := ActionURL("page/p1", map[string]string{"b": "2", "a": "1"})
	if got != "/page/p1?a=1&b=2" {
		t.Fatal(got)
	}
}

func TestSessionManager(t *testing.T) {
	m := NewSessionManager(0)
	s := m.Resolve(nil, newGetRequest("/"))
	s.Set("k", "v")
	if v, _ := s.Get("k"); v != "v" {
		t.Fatal("session storage broken")
	}
	s.Delete("k")
	if _, ok := s.Get("k"); ok {
		t.Fatal("delete broken")
	}
	if s.User() != "" {
		t.Fatal("anonymous session has user")
	}
	s.Set(sessionUserKey, "alice")
	if s.User() != "alice" {
		t.Fatal("user lost")
	}
	if m.Len() != 1 {
		t.Fatalf("sessions = %d", m.Len())
	}
}

func TestSessionSweep(t *testing.T) {
	m := NewSessionManager(time.Minute)
	base := time.Unix(1000, 0)
	m.now = func() time.Time { return base }
	s1 := m.Resolve(nil, newGetRequest("/"))
	_ = s1
	base = base.Add(30 * time.Second)
	m.Resolve(nil, newGetRequest("/")) // second session (no cookie carried)
	if m.Len() != 2 {
		t.Fatalf("sessions = %d", m.Len())
	}
	base = base.Add(45 * time.Second) // s1 now idle 75s, s2 idle 45s
	if n := m.Sweep(); n != 1 {
		t.Fatalf("swept %d", n)
	}
	if m.Len() != 1 {
		t.Fatalf("sessions after sweep = %d", m.Len())
	}
}

func TestSessionExpiryOnResolve(t *testing.T) {
	m := NewSessionManager(time.Minute)
	base := time.Unix(0, 0)
	m.now = func() time.Time { return base }
	rr := httptest.NewRecorder()
	s := m.Resolve(rr, newGetRequest("/"))
	cookie := rr.Result().Cookies()[0]
	// Within TTL the same session resolves.
	req := newGetRequest("/")
	req.AddCookie(cookie)
	base = base.Add(30 * time.Second)
	if got := m.Resolve(nil, req); got.ID != s.ID {
		t.Fatal("session not resumed")
	}
	// Past TTL a new session is issued.
	base = base.Add(2 * time.Minute)
	if got := m.Resolve(httptest.NewRecorder(), req); got.ID == s.ID {
		t.Fatal("expired session resumed")
	}
}
