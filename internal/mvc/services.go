package mvc

import (
	"context"
	"fmt"
	"strings"
	"time"

	"webmlgo/internal/descriptor"
	"webmlgo/internal/obs"
	"webmlgo/internal/rdb"
	"webmlgo/internal/webml"
)

// QueryLat times every descriptor-driven query execution, keyed by the
// unit whose descriptor carried the SQL. The series exist whether or not
// observability is enabled (observing is lock-free and allocation-free);
// app wiring registers the family with the /metrics registry. Together
// with the engine's plan-cache and access-path counters it shows which
// units hit indexes and which ones a data expert should hand-tune
// (Section 6's optimization workflow).
var QueryLat = obs.NewHistogramVec("webml_rdb_query_seconds",
	"Descriptor query execution time by unit.", "unit")

// timedQuery runs one descriptor query and records its latency under the
// unit's ID. It goes through QueryContext so a traced request carries
// its data-tier spans and slow executions reach the flight recorder.
func timedQuery(ctx context.Context, db *rdb.DB, unitID, sql string, args ...rdb.Value) (*rdb.Rows, error) {
	start := time.Now()
	rows, err := db.QueryContext(ctx, sql, args...)
	QueryLat.ObserveErr(unitID, time.Since(start), err != nil)
	return rows, err
}

// UnitService computes the content of one unit kind. One generic service
// exists per kind; the descriptor carries everything unit-specific
// (Figure 5: "a single generic service is designed, which factors out the
// commonalities of unit-specific services... parametric with respect to
// the SQL query to perform, the input parameters of such a query, and the
// properties of the output data bean").
type UnitService interface {
	Compute(ctx context.Context, db *rdb.DB, d *descriptor.Unit, inputs map[string]Value) (*UnitBean, error)
}

// OperationService executes one operation kind against the database.
type OperationService interface {
	Execute(ctx context.Context, db *rdb.DB, d *descriptor.Unit, inputs map[string]Value) (*OpResult, error)
}

// UnitServiceFunc adapts a function to UnitService.
type UnitServiceFunc func(ctx context.Context, db *rdb.DB, d *descriptor.Unit, inputs map[string]Value) (*UnitBean, error)

// Compute implements UnitService.
func (f UnitServiceFunc) Compute(ctx context.Context, db *rdb.DB, d *descriptor.Unit, inputs map[string]Value) (*UnitBean, error) {
	return f(ctx, db, d, inputs)
}

// OperationServiceFunc adapts a function to OperationService.
type OperationServiceFunc func(ctx context.Context, db *rdb.DB, d *descriptor.Unit, inputs map[string]Value) (*OpResult, error)

// Execute implements OperationService.
func (f OperationServiceFunc) Execute(ctx context.Context, db *rdb.DB, d *descriptor.Unit, inputs map[string]Value) (*OpResult, error) {
	return f(ctx, db, d, inputs)
}

// CoreUnitServices returns the generic content-unit services for the six
// core content kinds. This map plus CoreOperationServices is the entire
// business-tier code for any model — the paper's point that 3068 units
// need only 11 services.
func CoreUnitServices() map[string]UnitService {
	return map[string]UnitService{
		string(webml.DataUnit):        UnitServiceFunc(computeRowsUnit),
		string(webml.IndexUnit):       UnitServiceFunc(computeRowsUnit),
		string(webml.MultidataUnit):   UnitServiceFunc(computeRowsUnit),
		string(webml.MultichoiceUnit): UnitServiceFunc(computeRowsUnit),
		string(webml.ScrollerUnit):    UnitServiceFunc(computeScrollerUnit),
		string(webml.EntryUnit):       UnitServiceFunc(computeEntryUnit),
	}
}

// CoreOperationServices returns the generic operation services for the
// five core operation kinds.
func CoreOperationServices() map[string]OperationService {
	return map[string]OperationService{
		string(webml.CreateUnit):     OperationServiceFunc(executeWrite),
		string(webml.ModifyUnit):     OperationServiceFunc(executeWrite),
		string(webml.DeleteUnit):     OperationServiceFunc(executeWrite),
		string(webml.ConnectUnit):    OperationServiceFunc(executeWrite),
		string(webml.DisconnectUnit): OperationServiceFunc(executeWrite),
	}
}

// bindArgs resolves a descriptor's declared inputs against the supplied
// parameter map, applying wildcard wrapping. It reports ok=false when a
// parameter is absent (the unit then renders empty rather than erroring:
// a page reached without context shows no content, as in WebML).
func bindArgs(d *descriptor.Unit, params []descriptor.ParamDef, inputs map[string]Value) ([]rdb.Value, bool) {
	args := make([]rdb.Value, len(params))
	for i, p := range params {
		v, ok := inputs[p.Name]
		if !ok {
			return nil, false
		}
		if p.Wildcard {
			args[i] = "%" + FormatParam(v) + "%"
			continue
		}
		args[i] = v
	}
	return args, true
}

func outputsOf(d *descriptor.Unit) []fieldDef {
	out := make([]fieldDef, len(d.Outputs))
	for i, o := range d.Outputs {
		out[i] = fieldDef{name: o.Name, column: o.Column}
	}
	return out
}

// computeRowsUnit is the generic service for data, index, multidata and
// multichoice units: run the descriptor's query, package the rows, then
// expand hierarchical levels.
func computeRowsUnit(ctx context.Context, db *rdb.DB, d *descriptor.Unit, inputs map[string]Value) (*UnitBean, error) {
	bean := &UnitBean{UnitID: d.ID, Kind: d.Kind}
	fields := outputsOf(d)
	bean.Fields = fieldNames(fields)
	for _, lvl := range d.Levels {
		lf := make([]fieldDef, len(lvl.Outputs))
		for i, o := range lvl.Outputs {
			lf[i] = fieldDef{name: o.Name, column: o.Column}
		}
		bean.LevelFields = append(bean.LevelFields, fieldNames(lf))
	}
	args, ok := bindArgs(d, d.Inputs, inputs)
	if !ok {
		bean.Missing = true
		return bean, nil
	}
	rows, err := timedQuery(ctx, db, d.ID, d.Query, args...)
	if err != nil {
		return nil, fmt.Errorf("mvc: unit %s: %w", d.ID, err)
	}
	nodes, err := rowsToNodes(rows, fields)
	if err != nil {
		return nil, fmt.Errorf("mvc: unit %s: %w", d.ID, err)
	}
	bean.Nodes = nodes
	if len(d.Levels) > 0 {
		for i := range bean.Nodes {
			if err := expandLevels(ctx, db, d, d.Levels, &bean.Nodes[i]); err != nil {
				return nil, err
			}
		}
	}
	return bean, nil
}

// expandLevels fills node.Children by running the level query with the
// node's OID, recursively for deeper levels.
func expandLevels(ctx context.Context, db *rdb.DB, d *descriptor.Unit, levels []descriptor.Level, node *Node) error {
	if len(levels) == 0 {
		return nil
	}
	lvl := levels[0]
	oid, ok := node.Values["oid"]
	if !ok {
		return fmt.Errorf("mvc: unit %s: hierarchical level needs oid output", d.ID)
	}
	rows, err := timedQuery(ctx, db, d.ID, lvl.Query, oid)
	if err != nil {
		return fmt.Errorf("mvc: unit %s level %s: %w", d.ID, lvl.Entity, err)
	}
	lf := make([]fieldDef, len(lvl.Outputs))
	for i, o := range lvl.Outputs {
		lf[i] = fieldDef{name: o.Name, column: o.Column}
	}
	children, err := rowsToNodes(rows, lf)
	if err != nil {
		return fmt.Errorf("mvc: unit %s level %s: %w", d.ID, lvl.Entity, err)
	}
	node.Children = children
	for i := range node.Children {
		if err := expandLevels(ctx, db, d, levels[1:], &node.Children[i]); err != nil {
			return err
		}
	}
	return nil
}

// computeScrollerUnit runs the count query and one window of the result.
func computeScrollerUnit(ctx context.Context, db *rdb.DB, d *descriptor.Unit, inputs map[string]Value) (*UnitBean, error) {
	bean := &UnitBean{UnitID: d.ID, Kind: d.Kind, PageSize: d.PageSize}
	fields := outputsOf(d)
	bean.Fields = fieldNames(fields)

	// The trailing "offset" input defaults to 0 when absent.
	params := d.Inputs
	withDefault := make(map[string]Value, len(inputs)+1)
	for k, v := range inputs {
		withDefault[k] = v
	}
	if _, ok := withDefault["offset"]; !ok {
		withDefault["offset"] = int64(0)
	}
	args, ok := bindArgs(d, params, withDefault)
	if !ok {
		bean.Missing = true
		return bean, nil
	}
	if off, ok := withDefault["offset"].(int64); ok {
		bean.Offset = int(off)
	}

	// Count query consumes all inputs except the trailing offset.
	countArgs := args
	if n := len(params); n > 0 && params[n-1].Name == "offset" {
		countArgs = args[:n-1]
	}
	if d.CountQuery != "" {
		crows, err := timedQuery(ctx, db, d.ID, d.CountQuery, countArgs...)
		if err != nil {
			return nil, fmt.Errorf("mvc: scroller %s count: %w", d.ID, err)
		}
		if crows.Len() > 0 {
			if n, ok := crows.Data[0][0].(int64); ok {
				bean.Total = int(n)
			}
		}
	}
	rows, err := timedQuery(ctx, db, d.ID, d.Query, args...)
	if err != nil {
		return nil, fmt.Errorf("mvc: scroller %s: %w", d.ID, err)
	}
	nodes, err := rowsToNodes(rows, fields)
	if err != nil {
		return nil, fmt.Errorf("mvc: scroller %s: %w", d.ID, err)
	}
	bean.Nodes = nodes
	return bean, nil
}

// computeEntryUnit produces the form bean; sticky values and validation
// errors are injected from the session by the page service.
func computeEntryUnit(_ context.Context, _ *rdb.DB, d *descriptor.Unit, inputs map[string]Value) (*UnitBean, error) {
	bean := &UnitBean{UnitID: d.ID, Kind: d.Kind}
	for _, f := range d.Fields {
		ff := FormField{Name: f.Name, Type: f.Type, Required: f.Required}
		if v, ok := inputs[f.Name]; ok {
			ff.Value = FormatParam(v)
		}
		bean.FormFields = append(bean.FormFields, ff)
	}
	return bean, nil
}

// executeWrite is the generic operation service: it executes the
// descriptor's write statement inside a transaction; any error rolls back
// and reports KO.
func executeWrite(ctx context.Context, db *rdb.DB, d *descriptor.Unit, inputs map[string]Value) (*OpResult, error) {
	args, ok := bindArgs(d, d.Inputs, inputs)
	if !ok {
		missing := []string{}
		for _, p := range d.Inputs {
			if _, has := inputs[p.Name]; !has {
				missing = append(missing, p.Name)
			}
		}
		return &OpResult{OK: false, Err: fmt.Sprintf("missing parameters: %s", strings.Join(missing, ", "))}, nil
	}
	tx := db.Begin()
	res, err := tx.Exec(d.Query, args...)
	if err != nil {
		tx.Rollback() //nolint:errcheck // rollback of a live tx cannot fail
		return &OpResult{OK: false, Err: err.Error()}, nil
	}
	if err := tx.CommitContext(ctx); err != nil {
		return &OpResult{OK: false, Err: err.Error()}, nil
	}
	out := map[string]Value{"rows": int64(res.RowsAffected)}
	if res.LastInsertID != 0 {
		out["oid"] = res.LastInsertID
	}
	// Pass inputs through so OK-link parameters can forward them.
	for k, v := range inputs {
		if _, exists := out[k]; !exists {
			out[k] = v
		}
	}
	if res.RowsAffected == 0 && (d.Kind == string(webml.ModifyUnit) || d.Kind == string(webml.DeleteUnit)) {
		return &OpResult{OK: false, Err: "no matching object", Outputs: out}, nil
	}
	return &OpResult{OK: true, Outputs: out}, nil
}
