package mvc

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"webmlgo/internal/cache"
	"webmlgo/internal/descriptor"
)

// panickyBusiness panics on one designated unit — a stand-in for a
// user-supplied custom component running arbitrary code.
type panickyBusiness struct {
	countingBusiness
	panicUnit string
}

func (p *panickyBusiness) ComputeUnit(ctx context.Context, d *descriptor.Unit, inputs map[string]Value) (*UnitBean, error) {
	if d.ID == p.panicUnit {
		panic("kaboom in " + d.ID)
	}
	return p.countingBusiness.ComputeUnit(ctx, d, inputs)
}

// TestPageComputeRecoversPanickingUnit: a panicking unit service surfaces
// as that unit's error on both the sequential and the worker-pool path —
// an uncaught panic on a pool goroutine would kill the whole process.
func TestPageComputeRecoversPanickingUnit(t *testing.T) {
	repo := descriptor.NewRepository()
	fanPage(repo, 8)
	for _, workers := range []int{0, 4} {
		svc := &PageService{Repo: repo, Business: &panickyBusiness{panicUnit: "mid03"}, Workers: workers}
		_, err := svc.ComputePage(context.Background(), "fan", nil, nil)
		if err == nil {
			t.Fatalf("workers=%d: panic swallowed into a successful page", workers)
		}
		if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "mid03") {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
	}
}

// flakyBusiness fails every call while the switch is on.
type flakyBusiness struct {
	countingBusiness
	failing atomic.Bool
}

func (f *flakyBusiness) ComputeUnit(ctx context.Context, d *descriptor.Unit, inputs map[string]Value) (*UnitBean, error) {
	if f.failing.Load() {
		return nil, fmt.Errorf("business tier down")
	}
	return f.countingBusiness.ComputeUnit(ctx, d, inputs)
}

// TestDegradedServingBounds drives the degraded-mode contract: a
// TTL-expired bean is served in place of a business-tier failure while it
// is younger than MaxStaleness, refused beyond the bound, and an
// invalidated bean is never served at any age.
func TestDegradedServingBounds(t *testing.T) {
	inner := &flakyBusiness{}
	bc := cache.NewBeanCache(64)
	cb := NewCachedBusiness(inner, bc)
	cb.MaxStaleness = time.Hour
	d := cachedUnit()
	inputs := map[string]Value{"oid": int64(1)}
	key := beanKey(d.ID, inputs)

	stale := &UnitBean{UnitID: d.ID, Kind: d.Kind, Nodes: []Node{{Values: Row{"v": "from-before-the-outage"}}}}
	bc.Put(key, stale, d.Reads, 5*time.Millisecond)
	time.Sleep(10 * time.Millisecond) // the TTL lapses; the entry is retained
	inner.failing.Store(true)

	// Within the bound: the expired bean beats an error page.
	got, err := cb.ComputeUnit(context.Background(), d, inputs)
	if err != nil {
		t.Fatalf("degraded serving failed: %v", err)
	}
	if got.Nodes[0].Values["v"] != "from-before-the-outage" {
		t.Fatalf("degraded bean = %+v", got)
	}
	if bc.Stats().DegradedHits == 0 {
		t.Fatal("degraded hit not counted")
	}

	// Beyond the bound: the failure surfaces.
	cb.MaxStaleness = time.Nanosecond
	if _, err := cb.ComputeUnit(context.Background(), d, inputs); err == nil {
		t.Fatal("served a bean older than the staleness bound")
	}

	// Invalidated data never resurfaces, whatever the bound: operations
	// remove beans outright, so degraded mode cannot serve written-over
	// state.
	cb.MaxStaleness = time.Hour
	bc.Put(key, stale, d.Reads, 5*time.Millisecond)
	bc.Invalidate(d.Reads...)
	if _, err := cb.ComputeUnit(context.Background(), d, inputs); err == nil {
		t.Fatal("degraded mode served invalidated data")
	}
}

// nthTimeLucky fails unit reads until call number succeedOn.
type nthTimeLucky struct {
	calls     atomic.Int64
	ops       atomic.Int64
	succeedOn int64
}

func (n *nthTimeLucky) ComputeUnit(ctx context.Context, d *descriptor.Unit, inputs map[string]Value) (*UnitBean, error) {
	if c := n.calls.Add(1); c < n.succeedOn {
		return nil, fmt.Errorf("transient failure %d", c)
	}
	return &UnitBean{UnitID: d.ID, Kind: d.Kind}, nil
}

func (n *nthTimeLucky) ExecuteOperation(ctx context.Context, d *descriptor.Unit, inputs map[string]Value) (*OpResult, error) {
	n.ops.Add(1)
	return nil, fmt.Errorf("operation failed")
}

// TestResilientRetriesTransientFailure: transient unit-read failures are
// absorbed within the attempt budget and counted; persistent ones exhaust
// it.
func TestResilientRetriesTransientFailure(t *testing.T) {
	inner := &nthTimeLucky{succeedOn: 3}
	rb := NewResilientBusiness(inner, 42)
	bean, err := rb.ComputeUnit(context.Background(), cachedUnit(), nil)
	if err != nil {
		t.Fatalf("retries did not absorb transient failures: %v", err)
	}
	if bean == nil || bean.UnitID != "u1" {
		t.Fatalf("bean = %+v", bean)
	}
	if got := rb.Retries.Load(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}

	persistent := &nthTimeLucky{succeedOn: 10}
	rb2 := NewResilientBusiness(persistent, 42)
	if _, err := rb2.ComputeUnit(context.Background(), cachedUnit(), nil); err == nil {
		t.Fatal("persistent failure reported success")
	}
	if got := persistent.calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want the default budget of 3", got)
	}
}

// TestResilientNeverRetriesOperations pins the write-safety rule at the
// retry layer: one attempt, whatever the outcome.
func TestResilientNeverRetriesOperations(t *testing.T) {
	inner := &nthTimeLucky{succeedOn: 2}
	rb := NewResilientBusiness(inner, 1)
	if _, err := rb.ExecuteOperation(context.Background(), writeOp(), nil); err == nil {
		t.Fatal("operation error swallowed")
	}
	if got := inner.ops.Load(); got != 1 {
		t.Fatalf("operation attempted %d times, want exactly 1", got)
	}
}

// canceledBusiness reflects the context error back, like a remote stub
// whose call was cut off by the request deadline.
type canceledBusiness struct{ calls atomic.Int64 }

func (c *canceledBusiness) ComputeUnit(ctx context.Context, d *descriptor.Unit, inputs map[string]Value) (*UnitBean, error) {
	c.calls.Add(1)
	return nil, ctx.Err()
}

func (c *canceledBusiness) ExecuteOperation(ctx context.Context, d *descriptor.Unit, inputs map[string]Value) (*OpResult, error) {
	return nil, ctx.Err()
}

// TestResilientStopsOnContextErrors: once the request budget is gone,
// more attempts cannot help — the retry loop must not burn backoff time
// on a dead request.
func TestResilientStopsOnContextErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inner := &canceledBusiness{}
	rb := NewResilientBusiness(inner, 1)
	_, err := rb.ComputeUnit(ctx, cachedUnit(), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if got := inner.calls.Load(); got != 1 {
		t.Fatalf("retried a canceled request: %d attempts", got)
	}
}
