// Package mvc implements the MVC 2 runtime of Sections 3–4: the
// Controller servlet, page actions, the generic page service (topological
// unit ordering and parameter propagation), the generic unit services
// instantiated from XML descriptors, operation services with OK/KO flow,
// the validation service, and session state. It is the Model and
// Controller of Figure 4; the View lives in internal/render.
package mvc

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"webmlgo/internal/rdb"
)

// Value is a scalar carried in beans and parameters.
type Value = rdb.Value

// Row maps bean field names to values.
type Row map[string]Value

// Node is one displayed object, possibly with nested children (the
// hierarchical index of Figure 1).
type Node struct {
	Values   Row
	Children []Node
}

// UnitBean is the state object produced by a unit service: "JavaBeans
// storing the result of the data retrieval queries of the page units...
// available to the View" (Section 3).
type UnitBean struct {
	UnitID string
	Kind   string
	// Fields lists the top-level field names in display order.
	Fields []string
	// LevelFields lists field names per nesting level.
	LevelFields [][]string
	// Nodes are the displayed objects.
	Nodes []Node
	// Missing marks a unit whose mandatory input was absent: it renders
	// empty.
	Missing bool

	// Scroller state.
	Total    int
	Offset   int
	PageSize int

	// Entry state: field specs plus any validation errors to redisplay.
	FormFields []FormField
	Errors     map[string]string

	// Props carries plug-in configuration to plug-in renderers.
	Props map[string]string
}

// FormField is one entry-unit field as exposed to the View.
type FormField struct {
	Name     string
	Type     string
	Required bool
	// Value is the sticky value redisplayed after a validation failure.
	Value string
}

// Hash returns a fast content hash of the bean, used as the fragment
// cache variant key: identical bean content renders identical markup.
func (b *UnitBean) Hash() uint64 {
	h := fnv.New64a()
	io := func(s string) { h.Write([]byte(s)); h.Write([]byte{0}) }
	io(b.UnitID)
	io(b.Kind)
	if b.Missing {
		io("missing")
	}
	io(strconv.Itoa(b.Total))
	io(strconv.Itoa(b.Offset))
	var walk func(ns []Node)
	walk = func(ns []Node) {
		for _, n := range ns {
			names := make([]string, 0, len(n.Values))
			for k := range n.Values {
				names = append(names, k)
			}
			sort.Strings(names)
			for _, k := range names {
				io(k)
				io(rdb.FormatValue(n.Values[k]))
			}
			walk(n.Children)
			io("|")
		}
	}
	walk(b.Nodes)
	for _, f := range b.FormFields {
		io(f.Name)
		io(f.Value)
	}
	for k, v := range b.Errors {
		io(k)
		io(v)
	}
	return h.Sum64()
}

// OpResult reports an operation's outcome to the Controller, which
// "decides what to do next" (Section 2).
type OpResult struct {
	OK bool
	// Err describes the failure when !OK.
	Err string
	// Outputs are values produced by the operation (e.g. the OID of a
	// created object) available to OK/KO link parameters.
	Outputs map[string]Value
}

// ConvertParam turns an HTTP request parameter into a typed Value using
// the natural literal interpretation (integer, then float, then string).
func ConvertParam(s string) Value {
	if s == "" {
		return ""
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}

// FormatParam renders a Value back into its request-parameter form.
func FormatParam(v Value) string { return rdb.FormatValue(v) }

// rowsToNodes converts a query result into bean nodes using the output
// field definitions (field name <- column).
func rowsToNodes(rows *rdb.Rows, fields []fieldDef) ([]Node, error) {
	cols := make([]int, len(fields))
	for i, f := range fields {
		idx := rows.Col(f.column)
		if idx < 0 {
			return nil, fmt.Errorf("mvc: result set lacks column %q", f.column)
		}
		cols[i] = idx
	}
	nodes := make([]Node, len(rows.Data))
	for i, r := range rows.Data {
		values := make(Row, len(fields))
		for j, f := range fields {
			values[f.name] = r[cols[j]]
		}
		nodes[i] = Node{Values: values}
	}
	return nodes, nil
}

type fieldDef struct{ name, column string }

func fieldNames(fs []fieldDef) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.name
	}
	return out
}

func lowerEq(a, b string) bool { return strings.EqualFold(a, b) }
