package mvc_test

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"webmlgo/internal/descriptor"
)

// TestConcurrentReadsNeverSeeStaleBeans is the -race hammer of the issue:
// readers compute pages (with the bean cache and the level-parallel page
// scheduler on) while a writer streams createVolume operations through
// the controller. Model-driven invalidation must be exact — a reader that
// starts after operation k completed must see volume k on the page, never
// a stale cached bean. This is TestStaleReadNeverServed under concurrency.
func TestConcurrentReadsNeverSeeStaleBeans(t *testing.T) {
	ctl, _, beans := buildApp(t, true, false)
	ctl.SetPageWorkers(4)
	if beans == nil {
		t.Fatal("bean cache required")
	}
	// Cache the volume index too, so the page the readers watch is served
	// from the bean cache and staleness would be observable.
	vi := ctl.Repo.Unit("volIndex")
	if vi == nil {
		t.Fatal("volIndex descriptor missing")
	}
	clone := *vi
	clone.Cache = &descriptor.CachePolicy{Enabled: true}
	ctl.Repo.PutUnit(&clone)

	const writes = 25
	const readers = 8

	// committed holds the highest k whose createVolume response has been
	// received: its invalidation happened-before any read that loads it.
	var committed, reads atomic.Int64
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 1; k <= writes; k++ {
			rr, body := get(t, ctl, fmt.Sprintf("/op/createVolume?title=Race+Vol+%03d&year=%d", k, 2000+k), nil)
			if rr.Code >= 400 {
				t.Errorf("write %d failed: %d %s", k, rr.Code, body)
				return
			}
			committed.Store(int64(k))
			// Interleave with the readers: let a couple of page computations
			// land (and cache beans) before the next invalidating write.
			if k < writes {
				for target := reads.Load() + 2; reads.Load() < target; {
					runtime.Gosched()
				}
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := committed.Load() // snapshot BEFORE the request starts
				rr, body := get(t, ctl, "/page/volumesPage", nil)
				reads.Add(1)
				if rr.Code != 200 {
					t.Errorf("read failed: %d", rr.Code)
					return
				}
				if k >= 1 {
					want := fmt.Sprintf("Race Vol %03d", k)
					if !strings.Contains(body, want) {
						t.Errorf("stale bean served: volume %q committed before the read started but absent", want)
						return
					}
				}
				if k >= writes {
					return
				}
			}
		}()
	}
	wg.Wait()

	// Final sanity: the page reflects every write.
	_, body := get(t, ctl, "/page/volumesPage", nil)
	if !strings.Contains(body, fmt.Sprintf("Race Vol %03d", writes)) {
		t.Fatalf("final volume missing:\n%s", body)
	}
	if st := beans.Stats(); st.Hits == 0 || st.Invalidations == 0 {
		t.Fatalf("hammer exercised neither hits nor invalidations: %+v", st)
	}
}
