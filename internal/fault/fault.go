// Package fault is the chaos harness of the resilience layer: it wraps
// the business tier and the network boundary with deterministic,
// seeded fault injection — latency spikes, error bursts, panics,
// connection drops — so the failure containment the tier split promises
// (Section 4's application-server architecture only pays off when tier
// failures stop at the boundary) can be exercised and measured instead
// of waited for. The same seed always yields the same fault sequence,
// so failing runs reproduce.
package fault

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"webmlgo/internal/descriptor"
	"webmlgo/internal/mvc"
)

// Schedule describes a deterministic fault mix. Probabilities are per
// decision point (one business call, one connection accept, one I/O
// operation) in [0,1]; zero values inject nothing of that kind.
type Schedule struct {
	// Seed selects the deterministic random stream (0 = 1).
	Seed int64
	// LatencyProb is the chance a business call stalls for Latency.
	LatencyProb float64
	// Latency is the injected stall duration (default 5ms).
	Latency time.Duration
	// ErrorProb is the chance a business call fails with ErrInjected.
	ErrorProb float64
	// PanicProb is the chance a business call panics (exercising the
	// worker-pool and container recovery paths).
	PanicProb float64
	// DropProb is the chance a wrapped connection is severed on an I/O
	// operation (mid-stream connection loss).
	DropProb float64
}

// ErrInjected is the error returned by injected business-call failures.
var ErrInjected = fmt.Errorf("fault: injected error")

// Counts reports how many faults of each kind an Injector has fired.
type Counts struct {
	Latencies int64 `json:"latencies"`
	Errors    int64 `json:"errors"`
	Panics    int64 `json:"panics"`
	Drops     int64 `json:"drops"`
}

// Injector draws fault decisions from one seeded stream. All wrappers
// built from the same Injector share the stream, so a fixed seed fixes
// the full fault sequence across business calls and connections.
type Injector struct {
	sched Schedule

	mu  sync.Mutex
	rng *rand.Rand

	latencies atomic.Int64
	errors    atomic.Int64
	panics    atomic.Int64
	drops     atomic.Int64
}

// New returns an Injector for the schedule.
func New(sched Schedule) *Injector {
	seed := sched.Seed
	if seed == 0 {
		seed = 1
	}
	if sched.Latency <= 0 {
		sched.Latency = 5 * time.Millisecond
	}
	return &Injector{sched: sched, rng: rand.New(rand.NewSource(seed))}
}

// roll draws one uniform [0,1) decision from the shared stream.
func (in *Injector) roll() float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64()
}

// Counts snapshots the fired-fault counters.
func (in *Injector) Counts() Counts {
	return Counts{
		Latencies: in.latencies.Load(),
		Errors:    in.errors.Load(),
		Panics:    in.panics.Load(),
		Drops:     in.drops.Load(),
	}
}

// beforeCall fires at most one business-call fault: a latency stall
// (bounded by ctx), an injected error, or a panic.
func (in *Injector) beforeCall(ctx context.Context) error {
	s := in.sched
	if s.LatencyProb > 0 && in.roll() < s.LatencyProb {
		in.latencies.Add(1)
		t := time.NewTimer(s.Latency)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if s.ErrorProb > 0 && in.roll() < s.ErrorProb {
		in.errors.Add(1)
		return ErrInjected
	}
	if s.PanicProb > 0 && in.roll() < s.PanicProb {
		in.panics.Add(1)
		panic("fault: injected panic")
	}
	return nil
}

// Business wraps an mvc.Business with the injector's business-call
// faults. Both reads and writes are subjected: the resilience layer
// above decides which it may retry.
type Business struct {
	Inner mvc.Business
	In    *Injector
}

// WrapBusiness decorates inner with chaos from in.
func WrapBusiness(inner mvc.Business, in *Injector) *Business {
	return &Business{Inner: inner, In: in}
}

// ComputeUnit implements mvc.Business with fault injection.
func (b *Business) ComputeUnit(ctx context.Context, d *descriptor.Unit, inputs map[string]mvc.Value) (*mvc.UnitBean, error) {
	if err := b.In.beforeCall(ctx); err != nil {
		return nil, err
	}
	return b.Inner.ComputeUnit(ctx, d, inputs)
}

// ExecuteOperation implements mvc.Business with fault injection.
func (b *Business) ExecuteOperation(ctx context.Context, d *descriptor.Unit, inputs map[string]mvc.Value) (*mvc.OpResult, error) {
	if err := b.In.beforeCall(ctx); err != nil {
		return nil, err
	}
	return b.Inner.ExecuteOperation(ctx, d, inputs)
}

// SupportsUnitBatch implements mvc.BatchComputer by delegation, so the
// chaos layer never hides a batching transport below it.
func (b *Business) SupportsUnitBatch() bool { return mvc.SupportsUnitBatch(b.Inner) }

// ComputeUnits implements mvc.BatchComputer with per-item injection:
// each item of the level draws its own fault decision (one flaky item
// must not fail its whole batch), and an injected panic is contained to
// its item in the same error shape the page worker's recover produces.
func (b *Business) ComputeUnits(ctx context.Context, calls []mvc.UnitCall) []mvc.UnitResult {
	out := make([]mvc.UnitResult, len(calls))
	var pass []mvc.UnitCall
	var passIdx []int
	for i, c := range calls {
		if err := b.injectOne(ctx, c.D.ID); err != nil {
			out[i] = mvc.UnitResult{Err: err}
			continue
		}
		pass = append(pass, c)
		passIdx = append(passIdx, i)
	}
	if len(pass) > 0 {
		res := mvc.ComputeUnitsOf(ctx, b.Inner, pass)
		for j, r := range res {
			out[passIdx[j]] = r
		}
	}
	return out
}

// injectOne is beforeCall with the panic contained: batched items report
// an injected panic as that item's error, matching the containment shape
// of the per-unit paths.
func (b *Business) injectOne(ctx context.Context, unitID string) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("mvc: unit %s panicked: %v", unitID, r)
		}
	}()
	return b.In.beforeCall(ctx)
}

// Conn wraps a net.Conn, severing it (with probability DropProb per
// I/O) to simulate mid-stream connection loss between the servlet and
// EJB tiers.
type Conn struct {
	net.Conn
	in      *Injector
	dropped atomic.Bool
}

// maybeDrop decides whether this I/O severs the connection.
func (c *Conn) maybeDrop() bool {
	if c.dropped.Load() {
		return true
	}
	if c.in.sched.DropProb > 0 && c.in.roll() < c.in.sched.DropProb {
		c.in.drops.Add(1)
		c.dropped.Store(true)
		c.Conn.Close() //nolint:errcheck // the drop is the point
		return true
	}
	return false
}

func (c *Conn) Read(p []byte) (int, error) {
	if c.maybeDrop() {
		return 0, net.ErrClosed
	}
	return c.Conn.Read(p)
}

func (c *Conn) Write(p []byte) (int, error) {
	if c.maybeDrop() {
		return 0, net.ErrClosed
	}
	return c.Conn.Write(p)
}

// Listener wraps a net.Listener so every accepted connection carries
// the injector's drop schedule — the server-side half of connection
// chaos (a container whose links to the web tier keep failing).
type Listener struct {
	net.Listener
	In *Injector
}

// WrapListener decorates ln with connection drops from in.
func WrapListener(ln net.Listener, in *Injector) *Listener {
	return &Listener{Listener: ln, In: in}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &Conn{Conn: c, in: l.In}, nil
}
