package fault

import (
	"time"
)

// SurgePhase is one step of a Surge shape: from At onward (until the
// next phase) the offered load is multiplied by Multiplier.
type SurgePhase struct {
	At         time.Duration
	Multiplier float64
}

// Surge is a deterministic offered-load shape for the open-loop
// harness: a base multiplier, step phases (ramps, plateaus, cliffs),
// and optional seeded spikes — so the chaos harness can compose
// overload with container flap and a failing run replays exactly.
// Multipliers scale the generator's base arrival rate; Surge itself
// injects nothing.
type Surge struct {
	// Base is the multiplier before the first phase (0 selects 1).
	Base float64
	// Phases are the load steps, in any order (At sorts them).
	Phases []SurgePhase

	// Spikes: with probability SpikeProb per SpikeEvery bucket, the
	// multiplier is additionally multiplied by SpikeFactor for that
	// bucket. The decision is a pure hash of (Seed, bucket index), so
	// the same seed yields the same spike train regardless of how often
	// or in what order At is called.
	Seed        int64
	SpikeProb   float64
	SpikeFactor float64
	// SpikeEvery is the spike bucket width (0 selects 1s).
	SpikeEvery time.Duration
}

// Step appends a phase and returns the surge for chaining.
func (s *Surge) Step(at time.Duration, multiplier float64) *Surge {
	s.Phases = append(s.Phases, SurgePhase{At: at, Multiplier: multiplier})
	return s
}

// Ramp appends n evenly spaced steps interpolating the multiplier from
// `from` (at start) to `to` (reached at end), a staircase
// approximation of a linear traffic ramp.
func (s *Surge) Ramp(start, end time.Duration, from, to float64, n int) *Surge {
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n-1)
		if n == 1 {
			frac = 1
		}
		at := start + time.Duration(float64(end-start)*float64(i)/float64(n))
		s.Step(at, from+(to-from)*frac)
	}
	return s
}

// At returns the offered-load multiplier at elapsed time t. It is a
// pure function of (shape, t) and safe for concurrent use.
func (s *Surge) At(t time.Duration) float64 {
	m := s.Base
	if m == 0 {
		m = 1
	}
	// The phase in effect is the one with the largest At <= t; phases at
	// the same offset resolve to the later-declared one. Linear scan —
	// shapes are a handful of steps.
	best := time.Duration(-1)
	for _, p := range s.Phases {
		if t >= p.At && p.At >= best {
			best = p.At
			m = p.Multiplier
		}
	}
	if s.SpikeProb > 0 && s.SpikeFactor > 0 {
		every := s.SpikeEvery
		if every <= 0 {
			every = time.Second
		}
		bucket := uint64(t / every)
		if splitmix(uint64(s.Seed)^bucket*0x9e3779b97f4a7c15) < s.SpikeProb {
			m *= s.SpikeFactor
		}
	}
	return m
}

// splitmix maps a 64-bit value to a uniform [0,1) float — a stateless
// stand-in for a seeded rand stream, so spike decisions are a pure
// function of (seed, bucket).
func splitmix(x uint64) float64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
