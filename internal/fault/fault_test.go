package fault

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"webmlgo/internal/descriptor"
	"webmlgo/internal/mvc"
)

// okBusiness always succeeds, so every failure observed through a fault
// wrapper is an injected one.
type okBusiness struct{}

func (okBusiness) ComputeUnit(ctx context.Context, d *descriptor.Unit, inputs map[string]mvc.Value) (*mvc.UnitBean, error) {
	return &mvc.UnitBean{UnitID: d.ID, Kind: d.Kind}, nil
}

func (okBusiness) ExecuteOperation(ctx context.Context, d *descriptor.Unit, inputs map[string]mvc.Value) (*mvc.OpResult, error) {
	return &mvc.OpResult{OK: true}, nil
}

// TestDeterministicFaultSequence: the same seed yields the same fault
// sequence and counters — failing chaos runs must reproduce.
func TestDeterministicFaultSequence(t *testing.T) {
	run := func() (Counts, []bool) {
		in := New(Schedule{Seed: 7, ErrorProb: 0.3, LatencyProb: 0.2, Latency: time.Microsecond})
		b := WrapBusiness(okBusiness{}, in)
		d := &descriptor.Unit{ID: "u", Kind: "data"}
		outcomes := make([]bool, 0, 200)
		for i := 0; i < 200; i++ {
			_, err := b.ComputeUnit(context.Background(), d, nil)
			outcomes = append(outcomes, err == nil)
		}
		return in.Counts(), outcomes
	}
	c1, o1 := run()
	c2, o2 := run()
	if c1 != c2 {
		t.Fatalf("counts diverge across identical seeds: %+v vs %+v", c1, c2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("outcome %d diverges across identical seeds", i)
		}
	}
	if c1.Errors == 0 || c1.Latencies == 0 {
		t.Fatalf("schedule injected nothing: %+v", c1)
	}
}

// TestInjectedErrorIsTyped: injected failures are distinguishable from
// real ones.
func TestInjectedErrorIsTyped(t *testing.T) {
	in := New(Schedule{Seed: 1, ErrorProb: 1})
	b := WrapBusiness(okBusiness{}, in)
	_, err := b.ComputeUnit(context.Background(), &descriptor.Unit{ID: "u"}, nil)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if in.Counts().Errors != 1 {
		t.Fatalf("counts = %+v", in.Counts())
	}
}

// TestPanicInjection: PanicProb exercises the recovery paths for real.
func TestPanicInjection(t *testing.T) {
	in := New(Schedule{Seed: 1, PanicProb: 1})
	b := WrapBusiness(okBusiness{}, in)
	var recovered interface{}
	func() {
		defer func() { recovered = recover() }()
		b.ComputeUnit(context.Background(), &descriptor.Unit{ID: "u"}, nil) //nolint:errcheck // panics
	}()
	if recovered == nil {
		t.Fatal("no panic injected at probability 1")
	}
	if in.Counts().Panics != 1 {
		t.Fatalf("counts = %+v", in.Counts())
	}
}

// TestConnectionDrop: a wrapped listener severs connections mid-stream,
// and the drop is counted.
func TestConnectionDrop(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	in := New(Schedule{Seed: 1, DropProb: 1})
	fl := WrapListener(ln, in)
	go func() {
		for {
			c, err := fl.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c) //nolint:errcheck // echo until the drop
			}(c)
		}
	}()

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck // test bound
	buf := make([]byte, 4)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("dropped connection still echoed data")
	}
	if in.Counts().Drops == 0 {
		t.Fatal("drop not counted")
	}
}
