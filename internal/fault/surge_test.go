package fault

import (
	"testing"
	"time"
)

func TestSurgeSteps(t *testing.T) {
	s := (&Surge{Base: 1}).
		Step(2*time.Second, 3).
		Step(1*time.Second, 2). // out of order on purpose
		Step(4*time.Second, 0.5)
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 1},
		{999 * time.Millisecond, 1},
		{time.Second, 2},
		{1500 * time.Millisecond, 2},
		{2 * time.Second, 3},
		{3999 * time.Millisecond, 3},
		{4 * time.Second, 0.5},
		{time.Hour, 0.5},
	}
	for _, c := range cases {
		if got := s.At(c.at); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestSurgeZeroBaseDefaultsToOne(t *testing.T) {
	s := &Surge{}
	if got := s.At(0); got != 1 {
		t.Fatalf("empty surge At(0) = %v, want 1", got)
	}
}

func TestSurgeRamp(t *testing.T) {
	s := (&Surge{Base: 1}).Ramp(time.Second, 3*time.Second, 1, 10, 4)
	if got := s.At(0); got != 1 {
		t.Fatalf("before ramp: %v, want 1", got)
	}
	// The staircase is non-decreasing and reaches the target.
	prev := 0.0
	for at := time.Second; at <= 3*time.Second; at += 100 * time.Millisecond {
		got := s.At(at)
		if got < prev {
			t.Fatalf("ramp decreased at %v: %v < %v", at, got, prev)
		}
		prev = got
	}
	if got := s.At(4 * time.Second); got != 10 {
		t.Fatalf("after ramp: %v, want 10", got)
	}
}

func TestSurgeSpikesDeterministic(t *testing.T) {
	mk := func(seed int64) *Surge {
		return &Surge{Base: 1, Seed: seed, SpikeProb: 0.3, SpikeFactor: 5, SpikeEvery: 100 * time.Millisecond}
	}
	a, b := mk(42), mk(42)
	spikes := 0
	for i := 0; i < 200; i++ {
		at := time.Duration(i) * 100 * time.Millisecond
		va, vb := a.At(at), b.At(at)
		if va != vb {
			t.Fatalf("same seed diverged at %v: %v vs %v", at, va, vb)
		}
		if va == 5 {
			spikes++
		} else if va != 1 {
			t.Fatalf("unexpected multiplier %v at %v", va, at)
		}
	}
	if spikes == 0 || spikes == 200 {
		t.Fatalf("spike count %d/200 is degenerate for prob 0.3", spikes)
	}
	// A different seed yields a different spike train.
	c := mk(7)
	same := 0
	for i := 0; i < 200; i++ {
		at := time.Duration(i) * 100 * time.Millisecond
		if a.At(at) == c.At(at) {
			same++
		}
	}
	if same == 200 {
		t.Fatal("different seeds produced identical spike trains")
	}
	// Repeated and out-of-order queries are stable (pure function).
	if a.At(time.Second) != a.At(time.Second) {
		t.Fatal("At is not stable across calls")
	}
}

func BenchmarkSurgeAt(b *testing.B) {
	s := (&Surge{Base: 1, Seed: 1, SpikeProb: 0.1, SpikeFactor: 3}).
		Ramp(0, 10*time.Second, 1, 10, 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.At(time.Duration(i%10000) * time.Millisecond)
	}
}
