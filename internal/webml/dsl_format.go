package webml

import (
	"fmt"
	"strings"
	"time"

	"webmlgo/internal/er"
)

// FormatDSL renders a model in the textual WebML notation accepted by
// ParseDSL. FormatDSL(ParseDSL(x)) is stable, and ParseDSL(FormatDSL(m))
// reproduces m structurally.
func FormatDSL(m *Model) string {
	var b strings.Builder
	fmt.Fprintf(&b, "webml %q\n", m.Name)

	if m.Data != nil {
		for _, e := range m.Data.Entities {
			fmt.Fprintf(&b, "\nentity %s {\n", e.Name)
			for _, a := range e.Attributes {
				fmt.Fprintf(&b, "  %s: %s", a.Name, dslTypeName(a.Type))
				if a.Required {
					b.WriteString("!")
				}
				if a.Unique {
					b.WriteString(" unique")
				}
				b.WriteString("\n")
			}
			b.WriteString("}\n")
		}
		for _, r := range m.Data.Relationships {
			fmt.Fprintf(&b, "relationship %s from %s to %s %s roles %s/%s\n",
				r.Name, r.From, r.To, dslKindName(r), r.FromRole, r.ToRole)
		}
	}

	for _, sv := range m.SiteViews {
		fmt.Fprintf(&b, "\nsiteview %s %q", sv.ID, sv.Name)
		if sv.Protected {
			b.WriteString(" protected")
		}
		b.WriteString(" {\n")
		for _, p := range sv.Pages {
			formatPage(&b, p, "  ")
		}
		var walkArea func(a *Area, indent string)
		walkArea = func(a *Area, indent string) {
			fmt.Fprintf(&b, "%sarea %q {\n", indent, a.Name)
			for _, p := range a.Pages {
				formatPage(&b, p, indent+"  ")
			}
			for _, sub := range a.Areas {
				walkArea(sub, indent+"  ")
			}
			fmt.Fprintf(&b, "%s}\n", indent)
		}
		for _, a := range sv.Areas {
			walkArea(a, "  ")
		}
		if sv.Home != "" {
			fmt.Fprintf(&b, "  home %s\n", sv.Home)
		}
		b.WriteString("}\n")
	}

	for _, op := range m.Operations {
		verb := dslOpVerb(op.Kind)
		target := op.Entity
		if op.Kind == ConnectUnit || op.Kind == DisconnectUnit {
			target = op.Relationship
		}
		fmt.Fprintf(&b, "operation %s %s %s", op.ID, verb, target)
		if len(op.Set) > 0 {
			b.WriteString(" set ")
			first := true
			for _, attr := range sortedKeys(op.Set) {
				if !first {
					b.WriteString(", ")
				}
				first = false
				fmt.Fprintf(&b, "%s = $%s", attr, op.Set[attr])
			}
		}
		b.WriteString("\n")
	}

	for _, l := range m.Links {
		verb := map[LinkKind]string{
			NormalLink: "link", TransportLink: "transport",
			AutomaticLink: "automatic", OKLink: "ok", KOLink: "ko",
		}[l.Kind]
		fmt.Fprintf(&b, "%s %s -> %s", verb, l.From, l.To)
		if len(l.Params) > 0 {
			b.WriteString(" (")
			for i, pm := range l.Params {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%s -> %s", pm.Source, pm.Target)
			}
			b.WriteString(")")
		}
		if l.Label != "" {
			fmt.Fprintf(&b, " label %q", l.Label)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func formatPage(b *strings.Builder, p *Page, indent string) {
	fmt.Fprintf(b, "%spage %s %q", indent, p.ID, p.Name)
	if p.Landmark {
		b.WriteString(" landmark")
	}
	if p.Layout != "" {
		fmt.Fprintf(b, " layout %q", p.Layout)
	}
	b.WriteString(" {\n")
	for _, u := range p.Units {
		formatUnit(b, u, indent+"  ")
	}
	fmt.Fprintf(b, "%s}\n", indent)
}

func formatUnit(b *strings.Builder, u *Unit, indent string) {
	if u.Kind == EntryUnit {
		fmt.Fprintf(b, "%sentry %s", indent, u.ID)
		if u.Name != "" {
			fmt.Fprintf(b, " %q", u.Name)
		}
		b.WriteString(" {\n")
		for _, f := range u.Fields {
			fmt.Fprintf(b, "%s  %s: %s", indent, f.Name, dslTypeName(f.Type))
			if f.Required {
				b.WriteString("!")
			}
			b.WriteString("\n")
		}
		fmt.Fprintf(b, "%s}\n", indent)
		return
	}
	if _, isPlugin := LookupPlugin(u.Kind); isPlugin {
		fmt.Fprintf(b, "%splugin %s %s", indent, u.Kind, u.ID)
		if len(u.Props) > 0 {
			b.WriteString(" { ")
			first := true
			for _, k := range sortedKeys(u.Props) {
				if !first {
					b.WriteString(", ")
				}
				first = false
				fmt.Fprintf(b, "%s = %q", k, u.Props[k])
			}
			b.WriteString(" }")
		}
		b.WriteString("\n")
		return
	}
	fmt.Fprintf(b, "%s%s %s", indent, u.Kind, u.ID)
	if u.Name != "" {
		fmt.Fprintf(b, " %q", u.Name)
	}
	fmt.Fprintf(b, " of %s", u.Entity)
	if u.Relationship != "" {
		fmt.Fprintf(b, " via %s", u.Relationship)
	}
	if len(u.Display) > 0 {
		fmt.Fprintf(b, " show %s", strings.Join(u.Display, ", "))
	}
	for _, c := range u.Selector {
		fmt.Fprintf(b, " where %s %s %s", c.Attr, dslOpName(c.Op), dslCondValue(c))
	}
	if len(u.Order) > 0 {
		b.WriteString(" order ")
		for i, o := range u.Order {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Attr)
			if o.Desc {
				b.WriteString(" desc")
			}
		}
	}
	if u.Kind == ScrollerUnit && u.PageSize > 0 {
		fmt.Fprintf(b, " window %d", u.PageSize)
	}
	if u.Cache != nil && u.Cache.Enabled {
		b.WriteString(" cached")
		if u.Cache.TTLSeconds > 0 {
			fmt.Fprintf(b, " %d", u.Cache.TTLSeconds)
		}
	}
	for n := u.Nest; n != nil; n = n.Nest {
		fmt.Fprintf(b, " nest %s", n.Relationship)
		if len(n.Display) > 0 {
			fmt.Fprintf(b, " show %s", strings.Join(n.Display, ", "))
		}
		if len(n.Order) > 0 {
			b.WriteString(" order ")
			for i, o := range n.Order {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(o.Attr)
				if o.Desc {
					b.WriteString(" desc")
				}
			}
		}
	}
	b.WriteString("\n")
}

func dslTypeName(t er.AttrType) string { return attrTypeName(t) }

func dslKindName(r *er.Relationship) string {
	switch r.Kind() {
	case er.OneToOne:
		return "one-to-one"
	case er.OneToMany:
		return "one-to-many"
	case er.ManyToOne:
		return "many-to-one"
	default:
		return "many-to-many"
	}
}

func dslOpVerb(k UnitKind) string {
	switch k {
	case CreateUnit:
		return "create"
	case ModifyUnit:
		return "modify"
	case DeleteUnit:
		return "delete"
	case ConnectUnit:
		return "connect"
	case DisconnectUnit:
		return "disconnect"
	}
	return string(k)
}

func dslOpName(op string) string {
	if strings.EqualFold(op, "like") {
		return "like"
	}
	if op == "" {
		return "="
	}
	return op
}

func dslCondValue(c Condition) string {
	if c.Param != "" {
		return "$" + c.Param
	}
	switch v := c.Value.(type) {
	case nil:
		return "''"
	case string:
		return fmt.Sprintf("%q", v)
	case int64:
		return fmt.Sprintf("%d", v)
	case int:
		return fmt.Sprintf("%d", v)
	case float64:
		return fmt.Sprintf("%g", v)
	case bool:
		return fmt.Sprintf("%t", v)
	case time.Time:
		return fmt.Sprintf("%q", v.Format(time.RFC3339))
	}
	return fmt.Sprintf("%q", fmt.Sprintf("%v", c.Value))
}
