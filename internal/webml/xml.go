package webml

import (
	"encoding/xml"
	"fmt"
	"strings"
	"time"

	"webmlgo/internal/er"
)

// This file implements the XML document form of a WebML specification —
// the storage format of the paper's design environment. MarshalXML and
// UnmarshalModel round-trip a complete Model (data schema + site views +
// operations + links), so specifications can be versioned, diffed, and
// exchanged between the graphical editor and the code generator.

// xmlModel is the document root.
type xmlModel struct {
	XMLName    xml.Name      `xml:"webml"`
	Name       string        `xml:"name,attr"`
	Data       xmlSchema     `xml:"data"`
	SiteViews  []xmlSiteView `xml:"siteView"`
	Operations []xmlUnit     `xml:"operations>unit"`
	Links      []xmlLink     `xml:"links>link"`
}

type xmlSchema struct {
	Entities      []xmlEntity       `xml:"entity"`
	Relationships []xmlRelationship `xml:"relationship"`
}

type xmlEntity struct {
	Name       string         `xml:"name,attr"`
	Attributes []xmlAttribute `xml:"attribute"`
}

type xmlAttribute struct {
	Name     string `xml:"name,attr"`
	Type     string `xml:"type,attr"`
	Unique   bool   `xml:"unique,attr,omitempty"`
	Required bool   `xml:"required,attr,omitempty"`
}

type xmlRelationship struct {
	Name     string `xml:"name,attr"`
	From     string `xml:"from,attr"`
	To       string `xml:"to,attr"`
	FromRole string `xml:"fromRole,attr"`
	ToRole   string `xml:"toRole,attr"`
	FromCard string `xml:"fromCard,attr"` // "1" or "N"
	ToCard   string `xml:"toCard,attr"`
}

type xmlSiteView struct {
	ID        string    `xml:"id,attr"`
	Name      string    `xml:"name,attr"`
	Home      string    `xml:"home,attr,omitempty"`
	Protected bool      `xml:"protected,attr,omitempty"`
	Pages     []xmlPage `xml:"page"`
	Areas     []xmlArea `xml:"area"`
}

type xmlArea struct {
	ID    string    `xml:"id,attr"`
	Name  string    `xml:"name,attr"`
	Pages []xmlPage `xml:"page"`
	Areas []xmlArea `xml:"area"`
}

type xmlPage struct {
	ID       string    `xml:"id,attr"`
	Name     string    `xml:"name,attr"`
	Landmark bool      `xml:"landmark,attr,omitempty"`
	Layout   string    `xml:"layout,attr,omitempty"`
	Units    []xmlUnit `xml:"unit"`
}

type xmlUnit struct {
	ID           string         `xml:"id,attr"`
	Name         string         `xml:"name,attr,omitempty"`
	Kind         string         `xml:"kind,attr"`
	Entity       string         `xml:"entity,attr,omitempty"`
	Relationship string         `xml:"relationship,attr,omitempty"`
	PageSize     int            `xml:"pageSize,attr,omitempty"`
	Display      string         `xml:"display,attr,omitempty"` // comma-joined
	Selector     []xmlCondition `xml:"selector"`
	Order        []xmlOrderKey  `xml:"order"`
	Fields       []xmlField     `xml:"field"`
	Sets         []xmlSet       `xml:"set"`
	Nest         *xmlNesting    `xml:"nest"`
	Cache        *xmlCache      `xml:"cache"`
	Props        []xmlProp      `xml:"prop"`
}

type xmlCondition struct {
	Attr  string `xml:"attr,attr"`
	Op    string `xml:"op,attr"`
	Param string `xml:"param,attr,omitempty"`
	// Value is a literal with an explicit type tag so round trips are
	// lossless: "int:5", "float:1.5", "str:x", "bool:true", "time:RFC3339".
	Value string `xml:"value,attr,omitempty"`
}

type xmlOrderKey struct {
	Attr string `xml:"attr,attr"`
	Desc bool   `xml:"desc,attr,omitempty"`
}

type xmlField struct {
	Name     string `xml:"name,attr"`
	Type     string `xml:"type,attr"`
	Required bool   `xml:"required,attr,omitempty"`
}

type xmlSet struct {
	Attr  string `xml:"attr,attr"`
	Param string `xml:"param,attr"`
}

type xmlNesting struct {
	Relationship string        `xml:"relationship,attr"`
	Display      string        `xml:"display,attr,omitempty"`
	Order        []xmlOrderKey `xml:"order"`
	Nest         *xmlNesting   `xml:"nest"`
}

type xmlCache struct {
	Enabled bool `xml:"enabled,attr"`
	TTL     int  `xml:"ttl,attr,omitempty"`
}

type xmlProp struct {
	Name  string `xml:"name,attr"`
	Value string `xml:"value,attr"`
}

type xmlLink struct {
	ID     string         `xml:"id,attr"`
	Kind   string         `xml:"kind,attr"`
	From   string         `xml:"from,attr"`
	To     string         `xml:"to,attr"`
	Label  string         `xml:"label,attr,omitempty"`
	Params []xmlLinkParam `xml:"param"`
}

type xmlLinkParam struct {
	Source string `xml:"source,attr"`
	Target string `xml:"target,attr"`
}

// MarshalModel renders a model as its XML specification document.
func MarshalModel(m *Model) ([]byte, error) {
	doc := xmlModel{Name: m.Name}
	if m.Data != nil {
		for _, e := range m.Data.Entities {
			xe := xmlEntity{Name: e.Name}
			for _, a := range e.Attributes {
				xe.Attributes = append(xe.Attributes, xmlAttribute{
					Name: a.Name, Type: attrTypeName(a.Type), Unique: a.Unique, Required: a.Required,
				})
			}
			doc.Data.Entities = append(doc.Data.Entities, xe)
		}
		for _, r := range m.Data.Relationships {
			doc.Data.Relationships = append(doc.Data.Relationships, xmlRelationship{
				Name: r.Name, From: r.From, To: r.To,
				FromRole: r.FromRole, ToRole: r.ToRole,
				FromCard: cardName(r.FromCard), ToCard: cardName(r.ToCard),
			})
		}
	}
	for _, sv := range m.SiteViews {
		xsv := xmlSiteView{ID: sv.ID, Name: sv.Name, Home: sv.Home, Protected: sv.Protected}
		for _, p := range sv.Pages {
			xsv.Pages = append(xsv.Pages, marshalPage(p))
		}
		for _, a := range sv.Areas {
			xsv.Areas = append(xsv.Areas, marshalArea(a))
		}
		doc.SiteViews = append(doc.SiteViews, xsv)
	}
	for _, op := range m.Operations {
		doc.Operations = append(doc.Operations, marshalUnit(op))
	}
	for _, l := range m.Links {
		xl := xmlLink{ID: l.ID, Kind: l.Kind.String(), From: l.From, To: l.To, Label: l.Label}
		for _, p := range l.Params {
			xl.Params = append(xl.Params, xmlLinkParam{Source: p.Source, Target: p.Target})
		}
		doc.Links = append(doc.Links, xl)
	}
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("webml: marshal: %w", err)
	}
	return append([]byte(xml.Header), append(out, '\n')...), nil
}

func marshalArea(a *Area) xmlArea {
	xa := xmlArea{ID: a.ID, Name: a.Name}
	for _, p := range a.Pages {
		xa.Pages = append(xa.Pages, marshalPage(p))
	}
	for _, sub := range a.Areas {
		xa.Areas = append(xa.Areas, marshalArea(sub))
	}
	return xa
}

func marshalPage(p *Page) xmlPage {
	xp := xmlPage{ID: p.ID, Name: p.Name, Landmark: p.Landmark, Layout: p.Layout}
	for _, u := range p.Units {
		xp.Units = append(xp.Units, marshalUnit(u))
	}
	return xp
}

func marshalUnit(u *Unit) xmlUnit {
	xu := xmlUnit{
		ID: u.ID, Name: u.Name, Kind: string(u.Kind),
		Entity: u.Entity, Relationship: u.Relationship,
		PageSize: u.PageSize, Display: strings.Join(u.Display, ","),
	}
	for _, c := range u.Selector {
		xu.Selector = append(xu.Selector, xmlCondition{
			Attr: c.Attr, Op: c.Op, Param: c.Param, Value: encodeLiteral(c.Value),
		})
	}
	for _, o := range u.Order {
		xu.Order = append(xu.Order, xmlOrderKey{Attr: o.Attr, Desc: o.Desc})
	}
	for _, f := range u.Fields {
		xu.Fields = append(xu.Fields, xmlField{Name: f.Name, Type: attrTypeName(f.Type), Required: f.Required})
	}
	for _, attr := range sortedKeys(u.Set) {
		xu.Sets = append(xu.Sets, xmlSet{Attr: attr, Param: u.Set[attr]})
	}
	xu.Nest = marshalNesting(u.Nest)
	if u.Cache != nil {
		xu.Cache = &xmlCache{Enabled: u.Cache.Enabled, TTL: u.Cache.TTLSeconds}
	}
	for _, k := range sortedKeys(u.Props) {
		xu.Props = append(xu.Props, xmlProp{Name: k, Value: u.Props[k]})
	}
	return xu
}

func marshalNesting(n *Nesting) *xmlNesting {
	if n == nil {
		return nil
	}
	xn := &xmlNesting{Relationship: n.Relationship, Display: strings.Join(n.Display, ",")}
	for _, o := range n.Order {
		xn.Order = append(xn.Order, xmlOrderKey{Attr: o.Attr, Desc: o.Desc})
	}
	xn.Nest = marshalNesting(n.Nest)
	return xn
}

// UnmarshalModel parses an XML specification document and validates it.
func UnmarshalModel(data []byte) (*Model, error) {
	var doc xmlModel
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("webml: unmarshal: %w", err)
	}
	m := &Model{Name: doc.Name, Data: &er.Schema{}}
	for _, xe := range doc.Data.Entities {
		e := &er.Entity{Name: xe.Name}
		for _, xa := range xe.Attributes {
			t, err := parseAttrType(xa.Type)
			if err != nil {
				return nil, fmt.Errorf("webml: entity %s: %w", xe.Name, err)
			}
			e.Attributes = append(e.Attributes, er.Attribute{
				Name: xa.Name, Type: t, Unique: xa.Unique, Required: xa.Required,
			})
		}
		m.Data.Entities = append(m.Data.Entities, e)
	}
	for _, xr := range doc.Data.Relationships {
		fc, err := parseCard(xr.FromCard)
		if err != nil {
			return nil, fmt.Errorf("webml: relationship %s: %w", xr.Name, err)
		}
		tc, err := parseCard(xr.ToCard)
		if err != nil {
			return nil, fmt.Errorf("webml: relationship %s: %w", xr.Name, err)
		}
		m.Data.Relationships = append(m.Data.Relationships, &er.Relationship{
			Name: xr.Name, From: xr.From, To: xr.To,
			FromRole: xr.FromRole, ToRole: xr.ToRole,
			FromCard: fc, ToCard: tc,
		})
	}
	for _, xsv := range doc.SiteViews {
		sv := &SiteView{ID: xsv.ID, Name: xsv.Name, Home: xsv.Home, Protected: xsv.Protected}
		for _, xp := range xsv.Pages {
			p, err := unmarshalPage(xp)
			if err != nil {
				return nil, err
			}
			sv.Pages = append(sv.Pages, p)
		}
		for _, xa := range xsv.Areas {
			a, err := unmarshalArea(xa)
			if err != nil {
				return nil, err
			}
			sv.Areas = append(sv.Areas, a)
		}
		m.SiteViews = append(m.SiteViews, sv)
	}
	for _, xu := range doc.Operations {
		u, err := unmarshalUnit(xu)
		if err != nil {
			return nil, err
		}
		m.Operations = append(m.Operations, u)
	}
	for _, xl := range doc.Links {
		kind, err := parseLinkKind(xl.Kind)
		if err != nil {
			return nil, fmt.Errorf("webml: link %s: %w", xl.ID, err)
		}
		l := &Link{ID: xl.ID, Kind: kind, From: xl.From, To: xl.To, Label: xl.Label}
		for _, p := range xl.Params {
			l.Params = append(l.Params, LinkParam{Source: p.Source, Target: p.Target})
		}
		m.Links = append(m.Links, l)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

func unmarshalArea(xa xmlArea) (*Area, error) {
	a := &Area{ID: xa.ID, Name: xa.Name}
	for _, xp := range xa.Pages {
		p, err := unmarshalPage(xp)
		if err != nil {
			return nil, err
		}
		a.Pages = append(a.Pages, p)
	}
	for _, sub := range xa.Areas {
		s, err := unmarshalArea(sub)
		if err != nil {
			return nil, err
		}
		a.Areas = append(a.Areas, s)
	}
	return a, nil
}

func unmarshalPage(xp xmlPage) (*Page, error) {
	p := &Page{ID: xp.ID, Name: xp.Name, Landmark: xp.Landmark, Layout: xp.Layout}
	for _, xu := range xp.Units {
		u, err := unmarshalUnit(xu)
		if err != nil {
			return nil, err
		}
		p.Units = append(p.Units, u)
	}
	return p, nil
}

func unmarshalUnit(xu xmlUnit) (*Unit, error) {
	u := &Unit{
		ID: xu.ID, Name: xu.Name, Kind: UnitKind(xu.Kind),
		Entity: xu.Entity, Relationship: xu.Relationship,
		PageSize: xu.PageSize, Display: splitList(xu.Display),
	}
	for _, xc := range xu.Selector {
		v, err := decodeLiteral(xc.Value)
		if err != nil {
			return nil, fmt.Errorf("webml: unit %s selector: %w", xu.ID, err)
		}
		u.Selector = append(u.Selector, Condition{Attr: xc.Attr, Op: xc.Op, Param: xc.Param, Value: v})
	}
	for _, xo := range xu.Order {
		u.Order = append(u.Order, OrderKey{Attr: xo.Attr, Desc: xo.Desc})
	}
	for _, xf := range xu.Fields {
		t, err := parseAttrType(xf.Type)
		if err != nil {
			return nil, fmt.Errorf("webml: unit %s field %s: %w", xu.ID, xf.Name, err)
		}
		u.Fields = append(u.Fields, Field{Name: xf.Name, Type: t, Required: xf.Required})
	}
	if len(xu.Sets) > 0 {
		u.Set = make(map[string]string, len(xu.Sets))
		for _, s := range xu.Sets {
			u.Set[s.Attr] = s.Param
		}
	}
	u.Nest = unmarshalNesting(xu.Nest)
	if xu.Cache != nil {
		u.Cache = &CacheSpec{Enabled: xu.Cache.Enabled, TTLSeconds: xu.Cache.TTL}
	}
	if len(xu.Props) > 0 {
		u.Props = make(map[string]string, len(xu.Props))
		for _, p := range xu.Props {
			u.Props[p.Name] = p.Value
		}
	}
	return u, nil
}

func unmarshalNesting(xn *xmlNesting) *Nesting {
	if xn == nil {
		return nil
	}
	n := &Nesting{Relationship: xn.Relationship, Display: splitList(xn.Display)}
	for _, xo := range xn.Order {
		n.Order = append(n.Order, OrderKey{Attr: xo.Attr, Desc: xo.Desc})
	}
	n.Nest = unmarshalNesting(xn.Nest)
	return n
}

// --- scalar codecs ---

func attrTypeName(t er.AttrType) string {
	switch t {
	case er.String:
		return "string"
	case er.Int:
		return "int"
	case er.Float:
		return "float"
	case er.Bool:
		return "bool"
	case er.Time:
		return "time"
	}
	return "string"
}

func parseAttrType(s string) (er.AttrType, error) {
	switch strings.ToLower(s) {
	case "string", "text", "":
		return er.String, nil
	case "int", "integer":
		return er.Int, nil
	case "float", "real":
		return er.Float, nil
	case "bool", "boolean":
		return er.Bool, nil
	case "time", "timestamp", "date":
		return er.Time, nil
	}
	return 0, fmt.Errorf("unknown attribute type %q", s)
}

func cardName(c er.Cardinality) string {
	if c == er.Many {
		return "N"
	}
	return "1"
}

func parseCard(s string) (er.Cardinality, error) {
	switch s {
	case "1":
		return er.One, nil
	case "N", "n", "*":
		return er.Many, nil
	}
	return 0, fmt.Errorf("unknown cardinality %q", s)
}

func parseLinkKind(s string) (LinkKind, error) {
	switch s {
	case "normal":
		return NormalLink, nil
	case "transport":
		return TransportLink, nil
	case "automatic":
		return AutomaticLink, nil
	case "ok":
		return OKLink, nil
	case "ko":
		return KOLink, nil
	}
	return 0, fmt.Errorf("unknown link kind %q", s)
}

func encodeLiteral(v interface{}) string {
	switch x := v.(type) {
	case nil:
		return ""
	case string:
		return "str:" + x
	case int:
		return fmt.Sprintf("int:%d", x)
	case int64:
		return fmt.Sprintf("int:%d", x)
	case float64:
		return fmt.Sprintf("float:%g", x)
	case bool:
		return fmt.Sprintf("bool:%t", x)
	case time.Time:
		return "time:" + x.Format(time.RFC3339)
	}
	return "str:" + fmt.Sprintf("%v", v)
}

func decodeLiteral(s string) (interface{}, error) {
	if s == "" {
		return nil, nil
	}
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return nil, fmt.Errorf("bad literal %q", s)
	}
	tag, rest := s[:i], s[i+1:]
	switch tag {
	case "str":
		return rest, nil
	case "int":
		var n int64
		if _, err := fmt.Sscanf(rest, "%d", &n); err != nil {
			return nil, fmt.Errorf("bad int literal %q", s)
		}
		return n, nil
	case "float":
		var f float64
		if _, err := fmt.Sscanf(rest, "%g", &f); err != nil {
			return nil, fmt.Errorf("bad float literal %q", s)
		}
		return f, nil
	case "bool":
		switch rest {
		case "true":
			return true, nil
		case "false":
			return false, nil
		}
		return nil, fmt.Errorf("bad bool literal %q", s)
	case "time":
		t, err := time.Parse(time.RFC3339, rest)
		if err != nil {
			return nil, fmt.Errorf("bad time literal %q", s)
		}
		return t, nil
	}
	return nil, fmt.Errorf("unknown literal tag %q", tag)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// insertion sort (tiny maps)
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
