package webml

import (
	"fmt"
	"sort"
	"sync"
)

// PluginSpec declares a plug-in unit kind (Section 7: "new components,
// which can be easily plugged into the design and runtime environment, by
// providing their graphical icon, their unit service and rendition tags
// and the XSL rules for building their descriptors"). The model layer
// records the declaration; the runtime layers (mvc, render, style) attach
// the service, tag renderer and style rules by kind name.
type PluginSpec struct {
	// Kind is the unit kind name. It must not collide with a core kind.
	Kind UnitKind
	// Operation marks the plug-in as an operation unit; otherwise it is a
	// content unit.
	Operation bool
	// Description documents the plug-in in generated artifacts.
	Description string
	// RequiredProps lists Unit.Props keys that must be present for a unit
	// of this kind to validate.
	RequiredProps []string
}

var (
	pluginMu sync.RWMutex
	plugins  = map[UnitKind]PluginSpec{}
)

// RegisterPlugin adds a plug-in unit kind to the design environment.
// It returns an error if the kind collides with a core or already
// registered kind.
func RegisterPlugin(spec PluginSpec) error {
	if spec.Kind == "" {
		return fmt.Errorf("webml: plug-in kind must not be empty")
	}
	for _, c := range CoreUnitKinds {
		if c == spec.Kind {
			return fmt.Errorf("webml: plug-in kind %q collides with a core unit kind", spec.Kind)
		}
	}
	pluginMu.Lock()
	defer pluginMu.Unlock()
	if _, dup := plugins[spec.Kind]; dup {
		return fmt.Errorf("webml: plug-in kind %q already registered", spec.Kind)
	}
	plugins[spec.Kind] = spec
	return nil
}

// LookupPlugin returns the registered spec for a kind.
func LookupPlugin(kind UnitKind) (PluginSpec, bool) {
	pluginMu.RLock()
	defer pluginMu.RUnlock()
	sp, ok := plugins[kind]
	return sp, ok
}

// UnregisterPlugin removes a plug-in registration (used by tests).
func UnregisterPlugin(kind UnitKind) {
	pluginMu.Lock()
	defer pluginMu.Unlock()
	delete(plugins, kind)
}

// RegisteredPlugins returns the registered plug-in kinds, sorted.
func RegisteredPlugins() []PluginSpec {
	pluginMu.RLock()
	defer pluginMu.RUnlock()
	out := make([]PluginSpec, 0, len(plugins))
	for _, sp := range plugins {
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}
