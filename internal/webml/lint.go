package webml

import (
	"fmt"
	"sort"
	"strings"
)

// Lint reports design smells that Validate deliberately accepts: the
// model is implementable, but a designer probably wants to know. This is
// the advisory layer of a CASE environment — the graphical editor's
// warning pane, as text.
//
// Checks:
//   - pages unreachable from their site view's home page by navigation
//     (landmark pages are reachable by definition: they sit in the menu);
//   - entry units with no outgoing link (a form nobody submits);
//   - content units with a parameterized selector whose parameter is
//     never supplied by any link or intra-page edge (they always render
//     empty unless the raw URL is typed by hand);
//   - content units that display nothing beyond the OID;
//   - normal links carrying no parameters into a page whose units all
//     need parameters.
func Lint(m *Model) []string {
	m.buildIndex()
	var warnings []string
	warnf := func(format string, args ...interface{}) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}

	// Reachability per site view.
	for _, sv := range m.SiteViews {
		reached := map[string]bool{}
		var stack []string
		push := func(pageID string) {
			if pageID != "" && !reached[pageID] {
				reached[pageID] = true
				stack = append(stack, pageID)
			}
		}
		push(sv.Home)
		for _, p := range sv.AllPages() {
			if p.Landmark {
				push(p.ID)
			}
		}
		for len(stack) > 0 {
			pageID := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			p := m.PageByID(pageID)
			if p == nil {
				continue
			}
			// Follow links out of the page and its units, including
			// through operation OK/KO continuations.
			var frontier []string
			frontier = append(frontier, pageID)
			for _, u := range p.Units {
				frontier = append(frontier, u.ID)
			}
			seenOps := map[string]bool{}
			for len(frontier) > 0 {
				from := frontier[len(frontier)-1]
				frontier = frontier[:len(frontier)-1]
				for _, l := range m.LinksFrom(from) {
					switch t := m.Lookup(l.To).(type) {
					case *Page:
						push(t.ID)
					case *Unit:
						if t.Kind.IsOperation() {
							if !seenOps[t.ID] {
								seenOps[t.ID] = true
								frontier = append(frontier, t.ID)
							}
						} else if t.Page() != nil {
							push(t.Page().ID)
						}
					}
				}
			}
		}
		for _, p := range sv.AllPages() {
			if !reached[p.ID] {
				warnf("page %q is unreachable from site view %q (no navigation path from the home page or a landmark)", p.ID, sv.ID)
			}
		}
	}

	for _, p := range m.AllPages() {
		incomingParams := pageIncomingParams(m, p)
		edgesInto := map[string]map[string]bool{}
		inPage := map[string]bool{}
		for _, u := range p.Units {
			inPage[u.ID] = true
		}
		for _, l := range m.Links {
			if (l.Kind == TransportLink || l.Kind == AutomaticLink) && inPage[l.From] && inPage[l.To] {
				set := edgesInto[l.To]
				if set == nil {
					set = map[string]bool{}
					edgesInto[l.To] = set
				}
				for _, pm := range l.Params {
					set[pm.Target] = true
				}
			}
		}
		for _, u := range p.Units {
			if u.Kind == EntryUnit && len(m.LinksFrom(u.ID)) == 0 {
				warnf("entry unit %q has no outgoing link: the form submits nowhere", u.ID)
			}
			if u.Kind.IsContent() && u.Kind != EntryUnit {
				if _, plugin := LookupPlugin(u.Kind); !plugin {
					onlyOID := true
					for _, a := range u.Display {
						if !strings.EqualFold(a, "oid") {
							onlyOID = false
							break
						}
					}
					if len(u.Display) == 0 || onlyOID {
						warnf("unit %q displays no attributes", u.ID)
					}
				}
			}
			for _, c := range u.Selector {
				if c.Param == "" {
					continue
				}
				if edgesInto[u.ID][c.Param] || incomingParams[c.Param] {
					continue
				}
				warnf("unit %q selector parameter %q is never supplied by a link or edge", u.ID, c.Param)
			}
			if u.Relationship != "" && u.Kind.IsContent() {
				if !edgesInto[u.ID]["parent"] && !incomingParams["parent"] {
					warnf("unit %q is relationship-scoped but its %q input is never supplied", u.ID, "parent")
				}
			}
		}
	}

	sort.Strings(warnings)
	return warnings
}

// pageIncomingParams collects the parameter names any inbound link makes
// available to the page's units.
func pageIncomingParams(m *Model, p *Page) map[string]bool {
	out := map[string]bool{}
	targets := map[string]bool{p.ID: true}
	for _, u := range p.Units {
		targets[u.ID] = true
	}
	for _, l := range m.Links {
		if !targets[l.To] {
			continue
		}
		// Intra-page transports are edges, not page entries.
		if l.Kind == TransportLink || l.Kind == AutomaticLink {
			if fromUnit := m.UnitByID(l.From); fromUnit != nil && fromUnit.Page() == p {
				continue
			}
		}
		for _, pm := range l.Params {
			out[pm.Target] = true
		}
	}
	// Operation OK/KO continuations landing on this page forward their
	// parameters too (pass-through or explicit).
	for _, op := range m.Operations {
		for _, l := range m.LinksFrom(op.ID) {
			if l.To != p.ID {
				continue
			}
			if len(l.Params) == 0 {
				// Pass-through forwarding: anything the operation had.
				for _, in := range m.LinksTo(op.ID) {
					for _, pm := range in.Params {
						out[pm.Target] = true
					}
				}
				out["oid"] = true
				continue
			}
			for _, pm := range l.Params {
				out[pm.Target] = true
			}
		}
	}
	return out
}
