package webml

import (
	"strings"
	"testing"

	"webmlgo/internal/er"
)

const acmDSL = `
webml "acm-dl"

# The Figure 1 data model.
entity Volume {
  Title: string!
  Year: int
}
entity Issue {
  Number: int
}
entity Paper {
  Title: string!
  Abstract: string
}
relationship VolumeToIssue from Volume to Issue one-to-many roles VolumeToIssue/IssueToVolume
relationship IssueToPaper from Issue to Paper one-to-many roles IssueToPaper/PaperToIssue

siteview public "ACM Digital Library" {
  page volumesPage "Volumes" landmark layout "one-column" {
    index volIndex "All volumes" of Volume show Title, Year order Year desc
  }
  page volumePage "Volume Page" layout "two-column" {
    data volumeData of Volume show Title, Year where oid = $volume cached 60
    index issuesPapers of Issue via VolumeToIssue show Number order Number nest IssueToPaper show Title order Title
    entry enterKeyword { keyword: string! }
  }
  page paperPage "Paper Details" {
    data paperData of Paper show Title, Abstract where oid = $paper
  }
  page searchResults "Search Results" {
    scroller searchIndex of Paper show Title where Title like $kw order Title window 10
  }
}

siteview admin "Administration" protected {
  area "Volumes" {
    page managePage "Manage" {
      index manageIndex of Volume show Title
      entry volForm { title: string!, year: int }
    }
  }
}

operation createVolume create Volume set Title = $title, Year = $year
operation dropVolume delete Volume

link volIndex -> volumePage (oid -> volume) label "details"
transport volumeData -> issuesPapers (oid -> parent)
link issuesPapers -> paperPage (oid -> paper)
link enterKeyword -> searchResults (keyword -> kw)
link volForm -> createVolume (title -> title, year -> year)
link manageIndex -> dropVolume (oid -> oid)
ok createVolume -> managePage
ko createVolume -> managePage
ok dropVolume -> managePage
`

func TestParseDSL(t *testing.T) {
	m, err := ParseDSL(acmDSL)
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.SiteViews != 2 || st.Pages != 5 || st.Units != 8 || st.Operations != 2 {
		t.Fatalf("stats = %+v", st)
	}
	u := m.UnitByID("issuesPapers")
	if u.Relationship != "VolumeToIssue" || u.Nest == nil || u.Nest.Relationship != "IssueToPaper" {
		t.Fatalf("unit = %+v", u)
	}
	if u.Nest.Order[0].Attr != "Title" {
		t.Fatalf("nest order = %+v", u.Nest.Order)
	}
	d := m.UnitByID("volumeData")
	if d.Cache == nil || d.Cache.TTLSeconds != 60 {
		t.Fatalf("cache = %+v", d.Cache)
	}
	if d.Selector[0].Param != "volume" || d.Selector[0].Op != "=" {
		t.Fatalf("selector = %+v", d.Selector)
	}
	s := m.UnitByID("searchIndex")
	if s.Kind != ScrollerUnit || s.PageSize != 10 || s.Selector[0].Op != "LIKE" {
		t.Fatalf("scroller = %+v", s)
	}
	if !m.SiteViews[1].Protected {
		t.Fatal("protected flag lost")
	}
	if p := m.PageByID("managePage"); p.Area() == nil || p.Area().Name != "Volumes" {
		t.Fatal("area lost")
	}
	if m.UnitByID("volIndex").Name != "All volumes" {
		t.Fatal("unit title lost")
	}
	// Link details.
	found := false
	for _, l := range m.LinksFrom("volIndex") {
		if l.Label == "details" && l.Params[0].Target == "volume" {
			found = true
		}
	}
	if !found {
		t.Fatal("link label/params lost")
	}
	op := m.UnitByID("createVolume")
	if op.Set["Title"] != "title" || op.Set["Year"] != "year" {
		t.Fatalf("op set = %+v", op.Set)
	}
}

func TestDSLRoundTrip(t *testing.T) {
	m, err := ParseDSL(acmDSL)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatDSL(m)
	back, err := ParseDSL(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	if back.Stats() != m.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", back.Stats(), m.Stats())
	}
	// Format is a fixed point after one round.
	if FormatDSL(back) != text {
		t.Fatal("FormatDSL not stable")
	}
	// Deep spot checks.
	u := back.UnitByID("issuesPapers")
	if u == nil || u.Nest == nil || u.Nest.Display[0] != "Title" {
		t.Fatalf("nesting lost: %+v", u)
	}
	if back.UnitByID("volumeData").Cache.TTLSeconds != 60 {
		t.Fatal("cache TTL lost")
	}
}

func TestFormatDSLOfBuiltModel(t *testing.T) {
	// A model built programmatically formats and reparses.
	m := figure1Builder().MustBuild()
	text := FormatDSL(m)
	back, err := ParseDSL(text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if back.Stats() != m.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", back.Stats(), m.Stats())
	}
}

func TestParseDSLErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no header", `entity X { A: string }`, "must start with"},
		{"bad type", `webml "x"` + "\n" + `entity E { A: blob }`, "unknown attribute type"},
		{"bad relationship kind", `webml "x"
entity A { X: int }
entity B { Y: int }
relationship R from A to B sideways`, "unknown relationship kind"},
		{"bad unit kind", `webml "x"
entity A { X: int }
siteview sv { page p { gizmo g of A } }`, "unknown unit kind"},
		{"unterminated string", `webml "x`, "unterminated string"},
		{"missing of", `webml "x"
entity A { X: int }
siteview sv { page p { index i show X } }`, `expected "of`},
		{"semantic error surfaces", `webml "x"
entity A { X: int }
siteview sv { page p { index i of Ghost show X } }`, "unknown entity"},
		{"bad condition operand", `webml "x"
entity A { X: int }
siteview sv { page p { index i of A show X where X = maybe } }`, "expected $param or literal"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseDSL(c.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestDSLLiteralsAndComments(t *testing.T) {
	src := `webml "lits"
# leading comment
entity P {
  Name: string
  Price: float
  Active: bool
}
siteview sv {
  page home {
    index cheap of P show Name where Price <= 9.99  # trailing comment
    index actives of P show Name where Active = true
    index named of P show Name where Name = 'Fixed "Name"'
    index ranged of P show Name where Price > 1 where Price < 100
  }
}`
	m, err := ParseDSL(src)
	if err != nil {
		t.Fatal(err)
	}
	if c := m.UnitByID("cheap").Selector[0]; c.Op != "<=" || c.Value != 9.99 {
		t.Fatalf("float literal: %+v", c)
	}
	if c := m.UnitByID("actives").Selector[0]; c.Value != true {
		t.Fatalf("bool literal: %+v", c)
	}
	if c := m.UnitByID("named").Selector[0]; c.Value != `Fixed "Name"` {
		t.Fatalf("string literal: %+v", c)
	}
	if got := len(m.UnitByID("ranged").Selector); got != 2 {
		t.Fatalf("multiple conditions: %d", got)
	}
	// Round trip keeps literal types.
	back, err := ParseDSL(FormatDSL(m))
	if err != nil {
		t.Fatal(err)
	}
	if c := back.UnitByID("cheap").Selector[0]; c.Value != 9.99 {
		t.Fatalf("literal lost in round trip: %+v", c)
	}
}

func TestDSLPluginUnits(t *testing.T) {
	defer UnregisterPlugin("ticker")
	if err := RegisterPlugin(PluginSpec{Kind: "ticker", RequiredProps: []string{"symbol"}}); err != nil {
		t.Fatal(err)
	}
	src := `webml "p"
entity A { X: int }
siteview sv {
  page home {
    index i of A show X
    plugin ticker t1 { symbol = "ACME" }
  }
}`
	m, err := ParseDSL(src)
	if err != nil {
		t.Fatal(err)
	}
	u := m.UnitByID("t1")
	if u == nil || u.Kind != "ticker" || u.Props["symbol"] != "ACME" {
		t.Fatalf("plugin = %+v", u)
	}
	back, err := ParseDSL(FormatDSL(m))
	if err != nil {
		t.Fatal(err)
	}
	if back.UnitByID("t1").Props["symbol"] != "ACME" {
		t.Fatal("plugin props lost in round trip")
	}
}

func TestDSLConnectDisconnect(t *testing.T) {
	src := `webml "c"
entity A { X: int }
entity B { Y: int }
relationship AB from A to B many-to-many roles ab/ba
siteview sv {
  page home {
    multichoice mc of A show X
  }
}
operation wire connect AB
operation unwire disconnect AB
link mc -> wire (oid -> from)
link mc -> unwire (oid -> from)
ok wire -> home
ok unwire -> home`
	m, err := ParseDSL(src)
	if err != nil {
		t.Fatal(err)
	}
	if m.UnitByID("wire").Kind != ConnectUnit || m.UnitByID("wire").Relationship != "AB" {
		t.Fatalf("connect = %+v", m.UnitByID("wire"))
	}
	if m.Data.Relationship("AB").Kind() != er.ManyToMany {
		t.Fatal("relationship kind lost")
	}
	if _, err := ParseDSL(FormatDSL(m)); err != nil {
		t.Fatal(err)
	}
}

func TestDSLDefaultRoles(t *testing.T) {
	src := `webml "r"
entity A { X: int }
entity B { Y: int }
relationship AB from A to B one-to-many
siteview sv { page home { index i of A show X } }`
	m, err := ParseDSL(src)
	if err != nil {
		t.Fatal(err)
	}
	rel := m.Data.Relationship("AB")
	if rel.FromRole != "AB" || rel.ToRole != "ABInverse" {
		t.Fatalf("roles = %q/%q", rel.FromRole, rel.ToRole)
	}
}

// TestDSLScalesToAcerEuroShape: the notation round-trips a 556-page
// model (the full Acer-Euro shape) without loss.
func TestDSLScalesToFigureModel(t *testing.T) {
	// Use the in-package figure builder plus areas/operations; full-scale
	// round-trip runs in the workload package's tests via XML. Here the
	// DSL round-trips a model with every construct the notation covers.
	m := figure1Builder().MustBuild()
	for i := 0; i < 3; i++ {
		text := FormatDSL(m)
		back, err := ParseDSL(text)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if back.Stats() != m.Stats() {
			t.Fatalf("round %d: stats differ", i)
		}
		m = back
	}
}
