package webml

import (
	"fmt"

	"webmlgo/internal/er"
)

// Builder assembles a Model with generated-ID bookkeeping and back-pointer
// wiring. It is the programmatic equivalent of WebRatio's graphical model
// editor.
type Builder struct {
	model *Model
	seq   int
	errs  []error
}

// NewBuilder starts a model over the given data schema.
func NewBuilder(name string, data *er.Schema) *Builder {
	return &Builder{model: &Model{Name: name, Data: data}}
}

func (b *Builder) nextID(prefix string) string {
	b.seq++
	return fmt.Sprintf("%s%d", prefix, b.seq)
}

// SiteViewBuilder scopes page construction to one site view.
type SiteViewBuilder struct {
	b  *Builder
	sv *SiteView
}

// PageBuilder scopes unit construction to one page.
type PageBuilder struct {
	b *Builder
	p *Page
}

// SiteView adds a site view. An empty id is auto-generated.
func (b *Builder) SiteView(id, name string) *SiteViewBuilder {
	if id == "" {
		id = b.nextID("sv")
	}
	sv := &SiteView{ID: id, Name: name}
	b.model.SiteViews = append(b.model.SiteViews, sv)
	return &SiteViewBuilder{b: b, sv: sv}
}

// Protected marks the site view as requiring authentication.
func (svb *SiteViewBuilder) Protected() *SiteViewBuilder {
	svb.sv.Protected = true
	return svb
}

// Page adds a page to the site view. The first page becomes the home page
// unless Home is called.
func (svb *SiteViewBuilder) Page(id, name string) *PageBuilder {
	if id == "" {
		id = svb.b.nextID("page")
	}
	p := &Page{ID: id, Name: name, siteView: svb.sv}
	svb.sv.Pages = append(svb.sv.Pages, p)
	if svb.sv.Home == "" {
		svb.sv.Home = p.ID
	}
	return &PageBuilder{b: svb.b, p: p}
}

// AreaPage adds a page inside a named area (creating the area on first
// use).
func (svb *SiteViewBuilder) AreaPage(areaName, id, name string) *PageBuilder {
	var area *Area
	for _, a := range svb.sv.Areas {
		if a.Name == areaName {
			area = a
			break
		}
	}
	if area == nil {
		area = &Area{ID: svb.b.nextID("area"), Name: areaName}
		svb.sv.Areas = append(svb.sv.Areas, area)
	}
	if id == "" {
		id = svb.b.nextID("page")
	}
	p := &Page{ID: id, Name: name, siteView: svb.sv, area: area}
	area.Pages = append(area.Pages, p)
	if svb.sv.Home == "" {
		svb.sv.Home = p.ID
	}
	return &PageBuilder{b: svb.b, p: p}
}

// Home sets the site view's home page.
func (svb *SiteViewBuilder) Home(pageID string) *SiteViewBuilder {
	svb.sv.Home = pageID
	return svb
}

// View returns the underlying site view.
func (svb *SiteViewBuilder) View() *SiteView { return svb.sv }

// Ref returns the page's ID for use as a link endpoint.
func (pb *PageBuilder) Ref() string { return pb.p.ID }

// Page returns the underlying page.
func (pb *PageBuilder) Page() *Page { return pb.p }

// Landmark marks the page as globally reachable.
func (pb *PageBuilder) Landmark() *PageBuilder {
	pb.p.Landmark = true
	return pb
}

// Layout assigns the page's layout category for the style rules.
func (pb *PageBuilder) Layout(category string) *PageBuilder {
	pb.p.Layout = category
	return pb
}

func (pb *PageBuilder) addUnit(u *Unit) *Unit {
	if u.ID == "" {
		u.ID = pb.b.nextID("u")
	}
	u.page = pb.p
	pb.p.Units = append(pb.p.Units, u)
	return u
}

// Data adds a data unit displaying one object of entity.
func (pb *PageBuilder) Data(id, entity string, display ...string) *Unit {
	return pb.addUnit(&Unit{ID: id, Kind: DataUnit, Entity: entity, Display: display})
}

// Index adds an index unit listing objects of entity.
func (pb *PageBuilder) Index(id, entity string, display ...string) *Unit {
	return pb.addUnit(&Unit{ID: id, Kind: IndexUnit, Entity: entity, Display: display})
}

// Multidata adds a multidata unit showing full objects of entity.
func (pb *PageBuilder) Multidata(id, entity string, display ...string) *Unit {
	return pb.addUnit(&Unit{ID: id, Kind: MultidataUnit, Entity: entity, Display: display})
}

// Multichoice adds a multi-choice index over entity.
func (pb *PageBuilder) Multichoice(id, entity string, display ...string) *Unit {
	return pb.addUnit(&Unit{ID: id, Kind: MultichoiceUnit, Entity: entity, Display: display})
}

// Scroller adds a scroller unit windowing over entity.
func (pb *PageBuilder) Scroller(id, entity string, pageSize int, display ...string) *Unit {
	return pb.addUnit(&Unit{ID: id, Kind: ScrollerUnit, Entity: entity, PageSize: pageSize, Display: display})
}

// Entry adds an entry (form) unit with the given fields.
func (pb *PageBuilder) Entry(id string, fields ...Field) *Unit {
	return pb.addUnit(&Unit{ID: id, Kind: EntryUnit, Fields: fields})
}

// Plugin adds a plug-in content unit of the given registered kind.
func (pb *PageBuilder) Plugin(id string, kind UnitKind, props map[string]string) *Unit {
	return pb.addUnit(&Unit{ID: id, Kind: kind, Props: props})
}

// Operation adds an operation unit to the model (operations live outside
// pages).
func (b *Builder) Operation(id string, kind UnitKind, entity string) *Unit {
	if id == "" {
		id = b.nextID("op")
	}
	op := &Unit{ID: id, Kind: kind, Entity: entity}
	b.model.Operations = append(b.model.Operations, op)
	return op
}

// Connect adds a connect operation over a relationship.
func (b *Builder) Connect(id, relationship string) *Unit {
	op := b.Operation(id, ConnectUnit, "")
	op.Relationship = relationship
	return op
}

// Disconnect adds a disconnect operation over a relationship.
func (b *Builder) Disconnect(id, relationship string) *Unit {
	op := b.Operation(id, DisconnectUnit, "")
	op.Relationship = relationship
	return op
}

// P is shorthand for a link parameter binding.
func P(source, target string) LinkParam { return LinkParam{Source: source, Target: target} }

// Link adds a normal (navigable) link.
func (b *Builder) Link(fromID, toID string, params ...LinkParam) *Link {
	return b.addLink(NormalLink, fromID, toID, params)
}

// Transport adds a transport (parameter-only) link.
func (b *Builder) Transport(fromID, toID string, params ...LinkParam) *Link {
	return b.addLink(TransportLink, fromID, toID, params)
}

// Automatic adds an automatic link navigated on page entry.
func (b *Builder) Automatic(fromID, toID string, params ...LinkParam) *Link {
	return b.addLink(AutomaticLink, fromID, toID, params)
}

// OK adds the operation's success link.
func (b *Builder) OK(fromID, toID string, params ...LinkParam) *Link {
	return b.addLink(OKLink, fromID, toID, params)
}

// KO adds the operation's failure link.
func (b *Builder) KO(fromID, toID string, params ...LinkParam) *Link {
	return b.addLink(KOLink, fromID, toID, params)
}

func (b *Builder) addLink(kind LinkKind, fromID, toID string, params []LinkParam) *Link {
	l := &Link{ID: b.nextID("link"), Kind: kind, From: fromID, To: toID, Params: params}
	b.model.Links = append(b.model.Links, l)
	return l
}

// Build validates and returns the model.
func (b *Builder) Build() (*Model, error) {
	b.model.buildIndex()
	if err := b.model.Validate(); err != nil {
		return nil, err
	}
	return b.model, nil
}

// MustBuild is Build but panics on error, for tests and examples with
// statically known-good models.
func (b *Builder) MustBuild() *Model {
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	return m
}
