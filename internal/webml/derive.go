package webml

import (
	"strings"

	"webmlgo/internal/er"
)

// DeriveDefaultHypertext builds the canonical "default site" over a data
// schema: for every entity, a browse page (index of all instances) and a
// detail page (data unit plus one relationship-scoped index per
// relationship the entity participates in), fully linked. This is the
// CASE-tool bootstrap move — combined with er.Reverse it turns any
// conforming database into a browsable application in one step; the
// designer then reshapes the model rather than starting blank.
func DeriveDefaultHypertext(name string, schema *er.Schema) (*Model, error) {
	b := NewBuilder(name, schema)
	sv := b.SiteView("main", "Default Site")

	type pages struct{ browse, detail string }
	byEntity := map[string]pages{}

	// One browse + detail page per entity.
	for _, e := range schema.Entities {
		display := defaultDisplay(e)
		browseID := "browse" + ident(e.Name)
		detailID := "detail" + ident(e.Name)
		byEntity[strings.ToLower(e.Name)] = pages{browse: browseID, detail: detailID}

		browse := sv.Page(browseID, e.Name+" list").Landmark().Layout("one-column")
		browse.Index("idx"+ident(e.Name), e.Name, display...)

		detail := sv.Page(detailID, e.Name).Layout("two-column")
		data := detail.Data("data"+ident(e.Name), e.Name, allDisplay(e)...)
		data.Selector = []Condition{{Attr: "oid", Op: "=", Param: "id"}}
	}

	// Links: browse index -> detail page; detail data -> related indexes.
	for _, e := range schema.Entities {
		p := byEntity[strings.ToLower(e.Name)]
		b.Link("idx"+ident(e.Name), p.detail, P("oid", "id"))

		detailPage := b.model.PageByID(p.detail)
		_ = detailPage
		for _, rel := range schema.Relationships {
			var other string
			switch {
			case strings.EqualFold(rel.From, e.Name):
				other = rel.To
			case strings.EqualFold(rel.To, e.Name):
				other = rel.From
			default:
				continue
			}
			otherEnt := schema.Entity(other)
			if otherEnt == nil {
				continue
			}
			// A relationship-scoped index of the related entity inside
			// this entity's detail page, fed by a transport link.
			relIdxID := "rel" + ident(e.Name) + ident(rel.Name)
			pb := &PageBuilder{b: b, p: mustPage(b.model, p.detail)}
			relIdx := pb.Index(relIdxID, other, defaultDisplay(otherEnt)...)
			relIdx.Relationship = rel.Name
			b.Transport("data"+ident(e.Name), relIdxID, P("oid", "parent"))
			// Each related instance links to its own detail page.
			if op, ok := byEntity[strings.ToLower(other)]; ok {
				b.Link(relIdxID, op.detail, P("oid", "id"))
			}
		}
	}
	return b.Build()
}

func mustPage(m *Model, id string) *Page {
	// The builder maintains no index before Build; scan the site views.
	for _, sv := range m.SiteViews {
		for _, p := range sv.AllPages() {
			if p.ID == id {
				return p
			}
		}
	}
	panic("webml: derive: missing page " + id)
}

// defaultDisplay picks up to two leading attributes for list renditions.
func defaultDisplay(e *er.Entity) []string {
	var out []string
	for _, a := range e.Attributes {
		out = append(out, a.Name)
		if len(out) == 2 {
			break
		}
	}
	return out
}

func allDisplay(e *er.Entity) []string {
	out := make([]string, len(e.Attributes))
	for i, a := range e.Attributes {
		out[i] = a.Name
	}
	return out
}

func ident(s string) string {
	return strings.ReplaceAll(strings.Title(strings.ToLower(s)), " ", "") //nolint:staticcheck // ASCII entity names
}
