package webml

import (
	"fmt"
	"sort"
	"strings"

	"webmlgo/internal/er"
)

// ValidationError aggregates every problem found in a model.
type ValidationError struct {
	Problems []string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("webml: invalid model (%d problems): %s",
		len(e.Problems), strings.Join(e.Problems, "; "))
}

// Validate checks the whole model: the data schema, ID uniqueness, unit
// well-formedness against the schema, link endpoint compatibility, the
// operation OK/KO discipline, and acyclicity of each page's transport
// topology (required for the generic page service's topological unit
// ordering, Section 4).
func (m *Model) Validate() error {
	var problems []string
	addf := func(format string, args ...interface{}) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	if m.Data == nil {
		addf("model has no data schema")
	} else if err := m.Data.Validate(); err != nil {
		addf("data schema: %v", err)
	}

	// ID uniqueness.
	ids := map[string]string{}
	claim := func(id, what string) {
		if id == "" {
			addf("%s with empty ID", what)
			return
		}
		if prev, dup := ids[id]; dup {
			addf("duplicate ID %q (%s and %s)", id, prev, what)
			return
		}
		ids[id] = what
	}
	for _, sv := range m.SiteViews {
		claim(sv.ID, "site view")
		for _, p := range sv.AllPages() {
			claim(p.ID, "page")
			for _, u := range p.Units {
				claim(u.ID, "unit")
			}
		}
	}
	for _, op := range m.Operations {
		claim(op.ID, "operation")
	}
	for _, l := range m.Links {
		claim(l.ID, "link")
	}
	m.buildIndex()

	if len(m.SiteViews) == 0 {
		addf("model has no site views")
	}
	for _, sv := range m.SiteViews {
		pages := sv.AllPages()
		if len(pages) == 0 {
			addf("site view %q has no pages", sv.ID)
			continue
		}
		if sv.Home != "" {
			found := false
			for _, p := range pages {
				if p.ID == sv.Home {
					found = true
					break
				}
			}
			if !found {
				addf("site view %q declares home page %q which it does not contain", sv.ID, sv.Home)
			}
		}
		for _, p := range pages {
			if len(p.Units) == 0 {
				addf("page %q has no units", p.ID)
			}
			for _, u := range p.Units {
				if u.Kind.IsOperation() {
					addf("operation unit %q placed inside page %q", u.ID, p.ID)
					continue
				}
				m.validateContentUnit(u, addf)
			}
		}
	}
	for _, op := range m.Operations {
		m.validateOperation(op, addf)
	}
	m.validateLinks(addf)
	m.validateTransportTopology(addf)

	if len(problems) > 0 {
		sort.Strings(problems)
		return &ValidationError{Problems: problems}
	}
	return nil
}

func (m *Model) validateContentUnit(u *Unit, addf func(string, ...interface{})) {
	if !u.Kind.isKnown() {
		addf("unit %q has unknown kind %q", u.ID, u.Kind)
		return
	}
	if !u.Kind.IsContent() {
		addf("unit %q kind %q is not a content kind", u.ID, u.Kind)
		return
	}
	if sp, ok := LookupPlugin(u.Kind); ok {
		for _, k := range sp.RequiredProps {
			if _, has := u.Props[k]; !has {
				addf("plug-in unit %q (kind %q) is missing required prop %q", u.ID, u.Kind, k)
			}
		}
		return // plug-in content units define their own data contract
	}
	if u.Kind == EntryUnit {
		if len(u.Fields) == 0 {
			addf("entry unit %q has no fields", u.ID)
		}
		seen := map[string]bool{}
		for _, f := range u.Fields {
			if f.Name == "" {
				addf("entry unit %q has a field with empty name", u.ID)
			}
			if seen[strings.ToLower(f.Name)] {
				addf("entry unit %q has duplicate field %q", u.ID, f.Name)
			}
			seen[strings.ToLower(f.Name)] = true
		}
		return
	}
	ent := m.entity(u.Entity)
	if ent == nil {
		addf("unit %q references unknown entity %q", u.ID, u.Entity)
		return
	}
	for _, a := range u.Display {
		if !isOID(a) && ent.Attribute(a) == nil {
			addf("unit %q displays unknown attribute %q of entity %q", u.ID, a, u.Entity)
		}
	}
	m.validateSelector(u.ID, ent, u.Selector, addf)
	for _, o := range u.Order {
		if !isOID(o.Attr) && ent.Attribute(o.Attr) == nil {
			addf("unit %q orders by unknown attribute %q", u.ID, o.Attr)
		}
	}
	if u.Kind == ScrollerUnit && u.PageSize <= 0 {
		addf("scroller unit %q must have PageSize > 0", u.ID)
	}
	if u.Relationship != "" {
		rel := m.Data.Relationship(u.Relationship)
		if rel == nil {
			addf("unit %q references unknown relationship %q", u.ID, u.Relationship)
		} else if !equalFold(rel.From, u.Entity) && !equalFold(rel.To, u.Entity) {
			addf("unit %q entity %q is not an endpoint of relationship %q", u.ID, u.Entity, u.Relationship)
		}
	}
	// Hierarchical nesting: each level's relationship must start from the
	// previous level's entity.
	cur := ent
	for n := u.Nest; n != nil; n = n.Nest {
		rel := m.Data.Relationship(n.Relationship)
		if rel == nil {
			addf("unit %q nests over unknown relationship %q", u.ID, n.Relationship)
			break
		}
		var next *er.Entity
		switch {
		case equalFold(rel.From, cur.Name):
			next = m.entity(rel.To)
		case equalFold(rel.To, cur.Name):
			next = m.entity(rel.From)
		default:
			addf("unit %q nesting relationship %q does not involve entity %q", u.ID, n.Relationship, cur.Name)
		}
		if next == nil {
			break
		}
		for _, a := range n.Display {
			if !isOID(a) && next.Attribute(a) == nil {
				addf("unit %q nesting displays unknown attribute %q of %q", u.ID, a, next.Name)
			}
		}
		cur = next
	}
}

func (m *Model) validateOperation(op *Unit, addf func(string, ...interface{})) {
	if !op.Kind.isKnown() {
		addf("operation %q has unknown kind %q", op.ID, op.Kind)
		return
	}
	if !op.Kind.IsOperation() {
		addf("operation %q kind %q is not an operation kind", op.ID, op.Kind)
		return
	}
	if sp, ok := LookupPlugin(op.Kind); ok {
		for _, k := range sp.RequiredProps {
			if _, has := op.Props[k]; !has {
				addf("plug-in operation %q (kind %q) is missing required prop %q", op.ID, op.Kind, k)
			}
		}
		return
	}
	switch op.Kind {
	case CreateUnit, ModifyUnit, DeleteUnit:
		ent := m.entity(op.Entity)
		if ent == nil {
			addf("operation %q references unknown entity %q", op.ID, op.Entity)
			return
		}
		for attr := range op.Set {
			if ent.Attribute(attr) == nil {
				addf("operation %q sets unknown attribute %q of entity %q", op.ID, attr, op.Entity)
			}
		}
		m.validateSelector(op.ID, ent, op.Selector, addf)
	case ConnectUnit, DisconnectUnit:
		if m.Data.Relationship(op.Relationship) == nil {
			addf("operation %q references unknown relationship %q", op.ID, op.Relationship)
		}
	}
	// OK/KO discipline: exactly one OK link per operation.
	okCount, koCount := 0, 0
	for _, l := range m.LinksFrom(op.ID) {
		switch l.Kind {
		case OKLink:
			okCount++
		case KOLink:
			koCount++
		default:
			addf("operation %q has outgoing %s link %q; operations may only have OK/KO links", op.ID, l.Kind, l.ID)
		}
	}
	if okCount != 1 {
		addf("operation %q must have exactly one OK link, has %d", op.ID, okCount)
	}
	if koCount > 1 {
		addf("operation %q has %d KO links", op.ID, koCount)
	}
	if len(m.LinksTo(op.ID)) == 0 {
		addf("operation %q is unreachable (no incoming links)", op.ID)
	}
}

func (m *Model) validateSelector(ownerID string, ent *er.Entity, sel []Condition, addf func(string, ...interface{})) {
	for _, c := range sel {
		if !isOID(c.Attr) && ent.Attribute(c.Attr) == nil {
			addf("unit %q selector references unknown attribute %q of %q", ownerID, c.Attr, ent.Name)
		}
		switch c.Op {
		case "=", "<>", "<", "<=", ">", ">=", "LIKE", "like", "":
		default:
			addf("unit %q selector has unsupported operator %q", ownerID, c.Op)
		}
	}
}

func (m *Model) validateLinks(addf func(string, ...interface{})) {
	for _, l := range m.Links {
		from := m.Lookup(l.From)
		to := m.Lookup(l.To)
		if from == nil {
			addf("link %q has unknown source %q", l.ID, l.From)
		}
		if to == nil {
			addf("link %q has unknown destination %q", l.ID, l.To)
		}
		if from == nil || to == nil {
			continue
		}
		fromUnit, fromIsUnit := from.(*Unit)
		toUnit, toIsUnit := to.(*Unit)
		_, toIsPage := to.(*Page)
		switch l.Kind {
		case TransportLink:
			if !fromIsUnit || !toIsUnit {
				addf("transport link %q must connect two units", l.ID)
				continue
			}
			if fromUnit.Kind.IsOperation() || toUnit.Kind.IsOperation() {
				addf("transport link %q must connect two content units", l.ID)
				continue
			}
			if fromUnit.page != toUnit.page {
				addf("transport link %q crosses pages (%q -> %q)", l.ID, l.From, l.To)
			}
		case OKLink, KOLink:
			if !fromIsUnit || !fromUnit.Kind.IsOperation() {
				addf("%s link %q must originate from an operation", l.Kind, l.ID)
			}
			if !toIsPage && !(toIsUnit && toUnit.Kind.IsOperation()) {
				addf("%s link %q must target a page or a chained operation", l.Kind, l.ID)
			}
		case NormalLink, AutomaticLink:
			if fromIsUnit && fromUnit.Kind.IsOperation() {
				addf("%s link %q may not originate from an operation (use OK/KO)", l.Kind, l.ID)
			}
			if !toIsPage && !toIsUnit {
				addf("%s link %q must target a page, unit, or operation", l.Kind, l.ID)
			}
		}
		// Parameter well-formedness: sources must be resolvable outputs of
		// the source unit.
		if fromIsUnit {
			for _, p := range l.Params {
				if p.Target == "" {
					addf("link %q has a parameter with empty target", l.ID)
				}
				if p.Source == "" {
					addf("link %q has a parameter with empty source", l.ID)
					continue
				}
				if fromUnit.Kind == EntryUnit {
					if fromUnit.fieldByName(p.Source) == nil {
						addf("link %q parameter source %q is not a field of entry unit %q", l.ID, p.Source, fromUnit.ID)
					}
				} else if fromUnit.Kind.IsContent() {
					if _, isPlugin := LookupPlugin(fromUnit.Kind); isPlugin {
						continue // plug-ins define their own outputs
					}
					ent := m.entity(fromUnit.Entity)
					if ent != nil && !isOID(p.Source) && ent.Attribute(p.Source) == nil {
						addf("link %q parameter source %q is not an attribute of %q", l.ID, p.Source, fromUnit.Entity)
					}
				}
			}
		}
	}
}

// validateTransportTopology rejects transport-link cycles inside a page:
// the generic page service orders units topologically, so the intra-page
// parameter graph must be a DAG.
func (m *Model) validateTransportTopology(addf func(string, ...interface{})) {
	for _, p := range m.AllPages() {
		adj := map[string][]string{}
		inPage := map[string]bool{}
		for _, u := range p.Units {
			inPage[u.ID] = true
		}
		for _, l := range m.Links {
			if (l.Kind == TransportLink || l.Kind == AutomaticLink) && inPage[l.From] && inPage[l.To] {
				adj[l.From] = append(adj[l.From], l.To)
			}
		}
		const (
			white = 0
			gray  = 1
			black = 2
		)
		color := map[string]int{}
		var cycle bool
		var dfs func(string)
		dfs = func(id string) {
			color[id] = gray
			for _, next := range adj[id] {
				switch color[next] {
				case white:
					dfs(next)
				case gray:
					cycle = true
				}
			}
			color[id] = black
		}
		for _, u := range p.Units {
			if color[u.ID] == white {
				dfs(u.ID)
			}
		}
		if cycle {
			addf("page %q has a cycle in its transport-link topology", p.ID)
		}
	}
}

func (m *Model) entity(name string) *er.Entity {
	if m.Data == nil || name == "" {
		return nil
	}
	return m.Data.Entity(name)
}

func (u *Unit) fieldByName(name string) *Field {
	for i := range u.Fields {
		if equalFold(u.Fields[i].Name, name) {
			return &u.Fields[i]
		}
	}
	return nil
}

func isOID(attr string) bool { return strings.EqualFold(attr, "oid") }
