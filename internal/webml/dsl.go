package webml

import (
	"fmt"
	"strconv"
	"strings"

	"webmlgo/internal/er"
)

// This file implements the textual WebML notation: a compact,
// hand-writable equivalent of the XML specification documents, in the
// spirit of WebML's original textual syntax. ParseDSL and FormatDSL
// round-trip a complete model. The grammar, by example:
//
//	webml "acm-dl"
//
//	entity Volume {
//	  Title: string! unique
//	  Year: int
//	}
//	relationship VolumeToIssue from Volume to Issue one-to-many roles VolumeToIssue/IssueToVolume
//
//	siteview public "ACM Digital Library" {
//	  page volumesPage "Volumes" landmark layout "one-column" {
//	    index volIndex of Volume show Title, Year order Year desc
//	  }
//	  area "Archive" {
//	    page volumePage "Volume Page" layout "two-column" {
//	      data volumeData of Volume show Title where oid = $volume cached 60
//	      index issuesPapers of Issue via VolumeToIssue show Number nest IssueToPaper show Title
//	      entry enterKeyword { keyword: string! }
//	    }
//	  }
//	}
//
//	operation createVolume create Volume set Title = $title, Year = $year
//	link volIndex -> volumePage (oid -> volume) label "details"
//	transport volumeData -> issuesPapers (oid -> parent)
//	ok createVolume -> volumesPage
//	ko createVolume -> volumesPage
//
// Selectors compare an attribute with either a $parameter or a literal
// (int, float, 'string', true/false). The '!' suffix marks a required
// attribute or field.

// dslToken kinds.
type dslTokKind int

const (
	dtEOF dslTokKind = iota
	dtIdent
	dtString
	dtNumber
	dtPunct // { } ( ) , : ! = -> $ / < > <= >= <>
)

type dslToken struct {
	kind dslTokKind
	text string
	line int
}

type dslLexer struct {
	src  string
	pos  int
	line int
	toks []dslToken
}

func dslLex(src string) ([]dslToken, error) {
	l := &dslLexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isDSLIdentStart(c):
			start := l.pos
			for l.pos < len(l.src) && isDSLIdentPart(l.src[l.pos]) {
				l.pos++
			}
			l.emit(dtIdent, l.src[start:l.pos])
		case c >= '0' && c <= '9':
			start := l.pos
			for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
				l.pos++
			}
			l.emit(dtNumber, l.src[start:l.pos])
		case c == '"' || c == '\'':
			q := c
			l.pos++
			var b strings.Builder
			for l.pos < len(l.src) && l.src[l.pos] != q {
				if l.src[l.pos] == '\n' {
					return nil, fmt.Errorf("webml: line %d: unterminated string", l.line)
				}
				if l.src[l.pos] == '\\' && l.pos+1 < len(l.src) {
					l.pos++
				}
				b.WriteByte(l.src[l.pos])
				l.pos++
			}
			if l.pos >= len(l.src) {
				return nil, fmt.Errorf("webml: line %d: unterminated string", l.line)
			}
			l.pos++
			l.emit(dtString, b.String())
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '>':
			l.emit(dtPunct, "->")
			l.pos += 2
		case c == '<' || c == '>':
			tok := string(c)
			if l.pos+1 < len(l.src) && (l.src[l.pos+1] == '=' || (c == '<' && l.src[l.pos+1] == '>')) {
				tok += string(l.src[l.pos+1])
				l.pos++
			}
			l.emit(dtPunct, tok)
			l.pos++
		case strings.IndexByte("{}(),:!=$/-", c) >= 0:
			l.emit(dtPunct, string(c))
			l.pos++
		default:
			return nil, fmt.Errorf("webml: line %d: unexpected character %q", l.line, c)
		}
	}
	l.emit(dtEOF, "")
	return l.toks, nil
}

func (l *dslLexer) emit(k dslTokKind, text string) {
	l.toks = append(l.toks, dslToken{kind: k, text: text, line: l.line})
}

func isDSLIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isDSLIdentPart(c byte) bool {
	return isDSLIdentStart(c) || c >= '0' && c <= '9' || c == '.'
}

type dslParser struct {
	toks []dslToken
	pos  int
	b    *Builder
	m    *Model
}

func (p *dslParser) cur() dslToken { return p.toks[p.pos] }

func (p *dslParser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("webml: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *dslParser) atIdent(word string) bool {
	t := p.cur()
	return t.kind == dtIdent && (word == "" || t.text == word)
}

func (p *dslParser) acceptIdent(word string) bool {
	if p.atIdent(word) {
		p.pos++
		return true
	}
	return false
}

func (p *dslParser) acceptPunct(s string) bool {
	t := p.cur()
	if t.kind == dtPunct && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *dslParser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected %q, found %q", s, p.cur().text)
	}
	return nil
}

func (p *dslParser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != dtIdent {
		return "", p.errf("expected identifier, found %q", t.text)
	}
	p.pos++
	return t.text, nil
}

func (p *dslParser) expectString() (string, error) {
	t := p.cur()
	if t.kind != dtString {
		return "", p.errf("expected quoted string, found %q", t.text)
	}
	p.pos++
	return t.text, nil
}

// optionalString returns a string token if present, else def.
func (p *dslParser) optionalString(def string) string {
	if p.cur().kind == dtString {
		s := p.cur().text
		p.pos++
		return s
	}
	return def
}

// ParseDSL parses the textual WebML notation into a validated model.
func ParseDSL(src string) (*Model, error) {
	toks, err := dslLex(src)
	if err != nil {
		return nil, err
	}
	p := &dslParser{toks: toks}

	if !p.acceptIdent("webml") {
		return nil, p.errf(`document must start with: webml "<name>"`)
	}
	name, err := p.expectString()
	if err != nil {
		return nil, err
	}
	schema := &er.Schema{}
	p.b = NewBuilder(name, schema)

	for !p.atEOF() {
		switch {
		case p.acceptIdent("entity"):
			if err := p.parseEntity(schema); err != nil {
				return nil, err
			}
		case p.acceptIdent("relationship"):
			if err := p.parseRelationship(schema); err != nil {
				return nil, err
			}
		case p.acceptIdent("siteview"):
			if err := p.parseSiteView(); err != nil {
				return nil, err
			}
		case p.acceptIdent("operation"):
			if err := p.parseOperation(); err != nil {
				return nil, err
			}
		case p.atIdent("link") || p.atIdent("transport") || p.atIdent("automatic") || p.atIdent("ok") || p.atIdent("ko"):
			if err := p.parseLink(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("expected a declaration, found %q", p.cur().text)
		}
	}
	return p.b.Build()
}

func (p *dslParser) atEOF() bool { return p.cur().kind == dtEOF }

func (p *dslParser) parseEntity(schema *er.Schema) error {
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	e := &er.Entity{Name: name}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !p.acceptPunct("}") {
		attrName, err := p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expectPunct(":"); err != nil {
			return err
		}
		typeName, err := p.expectIdent()
		if err != nil {
			return err
		}
		typ, err := parseAttrType(typeName)
		if err != nil {
			return p.errf("%v", err)
		}
		a := er.Attribute{Name: attrName, Type: typ}
		a.Required = p.acceptPunct("!")
		for {
			switch {
			case p.acceptIdent("unique"):
				a.Unique = true
			case p.acceptIdent("required"):
				a.Required = true
			default:
				goto attrDone
			}
		}
	attrDone:
		e.Attributes = append(e.Attributes, a)
		p.acceptPunct(",")
	}
	schema.Entities = append(schema.Entities, e)
	return nil
}

var dslKinds = map[string][2]er.Cardinality{
	"one-to-one":   {er.One, er.One},
	"one-to-many":  {er.Many, er.One},
	"many-to-one":  {er.One, er.Many},
	"many-to-many": {er.Many, er.Many},
}

func (p *dslParser) parseRelationship(schema *er.Schema) error {
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if !p.acceptIdent("from") {
		return p.errf(`expected "from"`)
	}
	from, err := p.expectIdent()
	if err != nil {
		return err
	}
	if !p.acceptIdent("to") {
		return p.errf(`expected "to"`)
	}
	to, err := p.expectIdent()
	if err != nil {
		return err
	}
	// Relationship kinds are hyphenated ("one-to-many"); the lexer splits
	// on '-', so reassemble here.
	kindName, err := p.expectIdent()
	if err != nil {
		return err
	}
	for p.acceptPunct("-") {
		part, err := p.expectIdent()
		if err != nil {
			return err
		}
		kindName += "-" + part
	}
	cards, ok := dslKinds[kindName]
	if !ok {
		return p.errf("unknown relationship kind %q (one-to-one, one-to-many, many-to-one, many-to-many)", kindName)
	}
	rel := &er.Relationship{
		Name: name, From: from, To: to,
		FromCard: cards[0], ToCard: cards[1],
		FromRole: name, ToRole: name + "Inverse",
	}
	if p.acceptIdent("roles") {
		fr, err := p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expectPunct("/"); err != nil {
			return err
		}
		tr, err := p.expectIdent()
		if err != nil {
			return err
		}
		rel.FromRole, rel.ToRole = fr, tr
	}
	schema.Relationships = append(schema.Relationships, rel)
	return nil
}

func (p *dslParser) parseSiteView() error {
	id, err := p.expectIdent()
	if err != nil {
		return err
	}
	title := p.optionalString(id)
	svb := p.b.SiteView(id, title)
	if p.acceptIdent("protected") {
		svb.Protected()
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !p.acceptPunct("}") {
		switch {
		case p.acceptIdent("page"):
			if err := p.parsePage(svb, ""); err != nil {
				return err
			}
		case p.acceptIdent("area"):
			areaName, err := p.expectString()
			if err != nil {
				return err
			}
			if err := p.expectPunct("{"); err != nil {
				return err
			}
			for !p.acceptPunct("}") {
				if !p.acceptIdent("page") {
					return p.errf("expected page inside area")
				}
				if err := p.parsePage(svb, areaName); err != nil {
					return err
				}
			}
		case p.acceptIdent("home"):
			pageID, err := p.expectIdent()
			if err != nil {
				return err
			}
			svb.Home(pageID)
		default:
			return p.errf("expected page, area, or home, found %q", p.cur().text)
		}
	}
	return nil
}

func (p *dslParser) parsePage(svb *SiteViewBuilder, areaName string) error {
	id, err := p.expectIdent()
	if err != nil {
		return err
	}
	title := p.optionalString(id)
	var pb *PageBuilder
	if areaName != "" {
		pb = svb.AreaPage(areaName, id, title)
	} else {
		pb = svb.Page(id, title)
	}
	for {
		switch {
		case p.acceptIdent("landmark"):
			pb.Landmark()
		case p.acceptIdent("layout"):
			layout, err := p.expectString()
			if err != nil {
				return err
			}
			pb.Layout(layout)
		default:
			goto pageBody
		}
	}
pageBody:
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !p.acceptPunct("}") {
		if err := p.parseUnit(pb); err != nil {
			return err
		}
	}
	return nil
}

var dslContentKinds = map[string]UnitKind{
	"data": DataUnit, "index": IndexUnit, "multidata": MultidataUnit,
	"multichoice": MultichoiceUnit, "scroller": ScrollerUnit,
}

func (p *dslParser) parseUnit(pb *PageBuilder) error {
	kindWord, err := p.expectIdent()
	if err != nil {
		return err
	}
	if kindWord == "entry" {
		return p.parseEntry(pb)
	}
	if kindWord == "plugin" {
		return p.parsePlugin(pb)
	}
	kind, ok := dslContentKinds[kindWord]
	if !ok {
		return p.errf("unknown unit kind %q", kindWord)
	}
	id, err := p.expectIdent()
	if err != nil {
		return err
	}
	var u *Unit
	switch kind {
	case ScrollerUnit:
		u = pb.Scroller(id, "", 10)
	default:
		u = pb.addUnit(&Unit{ID: id, Kind: kind})
	}
	u.Name = p.optionalString("")
	if !p.acceptIdent("of") {
		return p.errf(`expected "of <Entity>"`)
	}
	if u.Entity, err = p.expectIdent(); err != nil {
		return err
	}
	for {
		switch {
		case p.acceptIdent("via"):
			if u.Relationship, err = p.expectIdent(); err != nil {
				return err
			}
		case p.acceptIdent("show"):
			if u.Display, err = p.parseIdentList(); err != nil {
				return err
			}
		case p.acceptIdent("where"):
			cond, err := p.parseCondition()
			if err != nil {
				return err
			}
			u.Selector = append(u.Selector, cond)
		case p.acceptIdent("order"):
			keys, err := p.parseOrderKeys()
			if err != nil {
				return err
			}
			u.Order = append(u.Order, keys...)
		case p.acceptIdent("window"):
			n, err := p.expectNumber()
			if err != nil {
				return err
			}
			u.PageSize = int(n)
		case p.acceptIdent("cached"):
			spec := &CacheSpec{Enabled: true}
			if p.cur().kind == dtNumber {
				n, _ := p.expectNumber()
				spec.TTLSeconds = int(n)
			}
			u.Cache = spec
		case p.acceptIdent("nest"):
			nest, err := p.parseNesting()
			if err != nil {
				return err
			}
			// Append at the deepest level.
			if u.Nest == nil {
				u.Nest = nest
			} else {
				deep := u.Nest
				for deep.Nest != nil {
					deep = deep.Nest
				}
				deep.Nest = nest
			}
		default:
			return nil
		}
	}
}

func (p *dslParser) parseNesting() (*Nesting, error) {
	rel, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	n := &Nesting{Relationship: rel}
	for {
		switch {
		case p.acceptIdent("show"):
			if n.Display, err = p.parseIdentList(); err != nil {
				return nil, err
			}
		case p.acceptIdent("order"):
			keys, err := p.parseOrderKeys()
			if err != nil {
				return nil, err
			}
			n.Order = append(n.Order, keys...)
		default:
			return n, nil
		}
	}
}

func (p *dslParser) parseEntry(pb *PageBuilder) error {
	id, err := p.expectIdent()
	if err != nil {
		return err
	}
	title := p.optionalString("")
	u := pb.Entry(id)
	u.Name = title
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !p.acceptPunct("}") {
		fieldName, err := p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expectPunct(":"); err != nil {
			return err
		}
		typeName, err := p.expectIdent()
		if err != nil {
			return err
		}
		typ, err := parseAttrType(typeName)
		if err != nil {
			return p.errf("%v", err)
		}
		f := Field{Name: fieldName, Type: typ}
		f.Required = p.acceptPunct("!")
		u.Fields = append(u.Fields, f)
		p.acceptPunct(",")
	}
	return nil
}

func (p *dslParser) parsePlugin(pb *PageBuilder) error {
	kind, err := p.expectIdent()
	if err != nil {
		return err
	}
	id, err := p.expectIdent()
	if err != nil {
		return err
	}
	props := map[string]string{}
	if p.acceptPunct("{") {
		for !p.acceptPunct("}") {
			k, err := p.expectIdent()
			if err != nil {
				return err
			}
			if err := p.expectPunct("="); err != nil {
				return err
			}
			v, err := p.expectString()
			if err != nil {
				return err
			}
			props[k] = v
			p.acceptPunct(",")
		}
	}
	pb.Plugin(id, UnitKind(kind), props)
	return nil
}

var dslOpKinds = map[string]UnitKind{
	"create": CreateUnit, "modify": ModifyUnit, "delete": DeleteUnit,
	"connect": ConnectUnit, "disconnect": DisconnectUnit,
}

func (p *dslParser) parseOperation() error {
	id, err := p.expectIdent()
	if err != nil {
		return err
	}
	verb, err := p.expectIdent()
	if err != nil {
		return err
	}
	kind, ok := dslOpKinds[verb]
	if !ok {
		return p.errf("unknown operation kind %q", verb)
	}
	target, err := p.expectIdent()
	if err != nil {
		return err
	}
	var op *Unit
	switch kind {
	case ConnectUnit:
		op = p.b.Connect(id, target)
	case DisconnectUnit:
		op = p.b.Disconnect(id, target)
	default:
		op = p.b.Operation(id, kind, target)
	}
	if p.acceptIdent("set") {
		op.Set = map[string]string{}
		for {
			attr, err := p.expectIdent()
			if err != nil {
				return err
			}
			if err := p.expectPunct("="); err != nil {
				return err
			}
			if err := p.expectPunct("$"); err != nil {
				return err
			}
			param, err := p.expectIdent()
			if err != nil {
				return err
			}
			op.Set[attr] = param
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	return nil
}

func (p *dslParser) parseLink() error {
	kindWord, _ := p.expectIdent()
	from, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("->"); err != nil {
		return err
	}
	to, err := p.expectIdent()
	if err != nil {
		return err
	}
	var params []LinkParam
	if p.acceptPunct("(") {
		for !p.acceptPunct(")") {
			src, err := p.expectIdent()
			if err != nil {
				return err
			}
			if err := p.expectPunct("->"); err != nil {
				return err
			}
			dst, err := p.expectIdent()
			if err != nil {
				return err
			}
			params = append(params, LinkParam{Source: src, Target: dst})
			p.acceptPunct(",")
		}
	}
	var l *Link
	switch kindWord {
	case "link":
		l = p.b.Link(from, to, params...)
	case "transport":
		l = p.b.Transport(from, to, params...)
	case "automatic":
		l = p.b.Automatic(from, to, params...)
	case "ok":
		l = p.b.OK(from, to, params...)
	case "ko":
		l = p.b.KO(from, to, params...)
	}
	if p.acceptIdent("label") {
		label, err := p.expectString()
		if err != nil {
			return err
		}
		l.Label = label
	}
	return nil
}

func (p *dslParser) parseIdentList() ([]string, error) {
	var out []string
	for {
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if !p.acceptPunct(",") {
			return out, nil
		}
	}
}

func (p *dslParser) parseOrderKeys() ([]OrderKey, error) {
	var out []OrderKey
	for {
		attr, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		key := OrderKey{Attr: attr}
		if p.acceptIdent("desc") {
			key.Desc = true
		} else {
			p.acceptIdent("asc")
		}
		out = append(out, key)
		if !p.acceptPunct(",") {
			return out, nil
		}
	}
}

func (p *dslParser) parseCondition() (Condition, error) {
	var c Condition
	attr, err := p.expectIdent()
	if err != nil {
		return c, err
	}
	c.Attr = attr
	t := p.cur()
	switch {
	case t.kind == dtPunct && (t.text == "=" || t.text == "<" || t.text == "<=" || t.text == ">" || t.text == ">=" || t.text == "<>"):
		c.Op = t.text
		p.pos++
	case t.kind == dtIdent && strings.EqualFold(t.text, "like"):
		c.Op = "LIKE"
		p.pos++
	default:
		return c, p.errf("expected comparison operator, found %q", t.text)
	}
	// $param or literal.
	if p.acceptPunct("$") {
		param, err := p.expectIdent()
		if err != nil {
			return c, err
		}
		c.Param = param
		return c, nil
	}
	switch v := p.cur(); v.kind {
	case dtNumber:
		p.pos++
		if strings.Contains(v.text, ".") {
			f, err := strconv.ParseFloat(v.text, 64)
			if err != nil {
				return c, p.errf("bad number %q", v.text)
			}
			c.Value = f
		} else {
			n, err := strconv.ParseInt(v.text, 10, 64)
			if err != nil {
				return c, p.errf("bad number %q", v.text)
			}
			c.Value = n
		}
	case dtString:
		p.pos++
		c.Value = v.text
	case dtIdent:
		switch v.text {
		case "true":
			p.pos++
			c.Value = true
		case "false":
			p.pos++
			c.Value = false
		default:
			return c, p.errf("expected $param or literal, found %q", v.text)
		}
	default:
		return c, p.errf("expected $param or literal, found %q", v.text)
	}
	return c, nil
}

func (p *dslParser) expectNumber() (int64, error) {
	t := p.cur()
	if t.kind != dtNumber {
		return 0, p.errf("expected number, found %q", t.text)
	}
	p.pos++
	n, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, p.errf("bad number %q", t.text)
	}
	return n, nil
}
