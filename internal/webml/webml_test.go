package webml

import (
	"strings"
	"testing"

	"webmlgo/internal/er"
)

func acmSchema() *er.Schema {
	return &er.Schema{
		Entities: []*er.Entity{
			{Name: "Volume", Attributes: []er.Attribute{
				{Name: "Title", Type: er.String, Required: true},
				{Name: "Year", Type: er.Int},
			}},
			{Name: "Issue", Attributes: []er.Attribute{{Name: "Number", Type: er.Int}}},
			{Name: "Paper", Attributes: []er.Attribute{
				{Name: "Title", Type: er.String},
				{Name: "Abstract", Type: er.String},
			}},
		},
		Relationships: []*er.Relationship{
			{Name: "VolumeToIssue", From: "Volume", To: "Issue",
				FromRole: "VolumeToIssue", ToRole: "IssueToVolume", FromCard: er.Many, ToCard: er.One},
			{Name: "IssueToPaper", From: "Issue", To: "Paper",
				FromRole: "IssueToPaper", ToRole: "PaperToIssue", FromCard: er.Many, ToCard: er.One},
		},
	}
}

// figure1Builder reconstructs the WebML model of Figure 1: the ACM DL
// volume page with a data unit, a hierarchical index, and an entry unit.
func figure1Builder() *Builder {
	b := NewBuilder("acm-dl", acmSchema())
	sv := b.SiteView("public", "ACM Digital Library")

	volumes := sv.Page("volumesPage", "Volumes")
	volIndex := volumes.Index("volIndex", "Volume", "Title", "Year")

	volume := sv.Page("volumePage", "Volume Page")
	volData := volume.Data("volumeData", "Volume", "Title", "Year")
	issuesPapers := volume.Index("issuesPapers", "Issue", "Number")
	issuesPapers.Nest = &Nesting{Relationship: "IssueToPaper", Display: []string{"Title"}}
	keyword := volume.Entry("enterKeyword", Field{Name: "keyword", Type: er.String, Required: true})

	paper := sv.Page("paperPage", "Paper Details")
	paperData := paper.Data("paperData", "Paper", "Title", "Abstract")

	search := sv.Page("searchResults", "Search Results")
	results := search.Index("searchIndex", "Paper", "Title")
	results.Selector = []Condition{{Attr: "Title", Op: "LIKE", Param: "kw"}}

	b.Link(volIndex.ID, volume.Ref(), P("oid", "volume"))
	volData.Selector = []Condition{{Attr: "oid", Op: "=", Param: "volume"}}
	b.Transport(volData.ID, issuesPapers.ID, P("oid", "volume"))
	issuesPapers.Selector = []Condition{{Attr: "oid", Op: ">", Value: int64(0)}}
	b.Link(issuesPapers.ID, paper.Ref(), P("oid", "paper"))
	paperData.Selector = []Condition{{Attr: "oid", Op: "=", Param: "paper"}}
	b.Link(keyword.ID, search.Ref(), P("keyword", "kw"))
	b.Link(results.ID, paper.Ref(), P("oid", "paper"))
	return b
}

func TestFigure1ModelValidates(t *testing.T) {
	m, err := figure1Builder().Build()
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.SiteViews != 1 || st.Pages != 4 || st.Units != 6 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLookupAndBackPointers(t *testing.T) {
	m := figure1Builder().MustBuild()
	u := m.UnitByID("volumeData")
	if u == nil || u.Page().ID != "volumePage" {
		t.Fatalf("unit lookup/back-pointer broken: %+v", u)
	}
	p := m.PageByID("volumePage")
	if p == nil || p.SiteView().ID != "public" {
		t.Fatalf("page lookup/back-pointer broken")
	}
}

func TestLinksFromTo(t *testing.T) {
	m := figure1Builder().MustBuild()
	if n := len(m.LinksFrom("issuesPapers")); n != 1 {
		t.Fatalf("links from index = %d", n)
	}
	if n := len(m.LinksTo("paperPage")); n != 2 {
		t.Fatalf("links to paper page = %d", n)
	}
}

func TestUnitKindsUsed(t *testing.T) {
	m := figure1Builder().MustBuild()
	kinds := m.UnitKindsUsed()
	want := map[UnitKind]bool{DataUnit: true, IndexUnit: true, EntryUnit: true}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for _, k := range kinds {
		if !want[k] {
			t.Fatalf("unexpected kind %q", k)
		}
	}
}

func TestOperationsWithOKKO(t *testing.T) {
	b := figure1Builder()
	sv := b.SiteView("admin", "Admin").Protected()
	edit := sv.Page("editVolume", "Edit Volume")
	form := edit.Entry("volForm",
		Field{Name: "title", Type: er.String, Required: true},
		Field{Name: "year", Type: er.Int})
	create := b.Operation("createVolume", CreateUnit, "Volume")
	create.Set = map[string]string{"Title": "title", "Year": "year"}
	b.Link(form.ID, create.ID, P("title", "title"), P("year", "year"))
	b.OK(create.ID, edit.Ref())
	b.KO(create.ID, edit.Ref())
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats().Operations != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

func TestValidationFailures(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Builder
		want  string
	}{
		{"unknown entity", func() *Builder {
			b := NewBuilder("m", acmSchema())
			b.SiteView("sv", "SV").Page("p", "P").Data("d", "Nowhere", "Title")
			return b
		}, "unknown entity"},
		{"unknown display attr", func() *Builder {
			b := NewBuilder("m", acmSchema())
			b.SiteView("sv", "SV").Page("p", "P").Data("d", "Volume", "Nope")
			return b
		}, "unknown attribute"},
		{"empty page", func() *Builder {
			b := NewBuilder("m", acmSchema())
			b.SiteView("sv", "SV").Page("p", "P")
			return b
		}, "no units"},
		{"no site views", func() *Builder {
			return NewBuilder("m", acmSchema())
		}, "no site views"},
		{"duplicate ids", func() *Builder {
			b := NewBuilder("m", acmSchema())
			sv := b.SiteView("sv", "SV")
			p := sv.Page("p", "P")
			p.Data("dup", "Volume", "Title")
			p.Data("dup", "Volume", "Title")
			return b
		}, "duplicate ID"},
		{"scroller page size", func() *Builder {
			b := NewBuilder("m", acmSchema())
			b.SiteView("sv", "SV").Page("p", "P").Scroller("s", "Volume", 0, "Title")
			return b
		}, "PageSize"},
		{"entry without fields", func() *Builder {
			b := NewBuilder("m", acmSchema())
			b.SiteView("sv", "SV").Page("p", "P").Entry("e")
			return b
		}, "no fields"},
		{"bad home", func() *Builder {
			b := NewBuilder("m", acmSchema())
			sv := b.SiteView("sv", "SV")
			sv.Page("p", "P").Data("d", "Volume", "Title")
			sv.Home("ghost")
			return b
		}, "home page"},
		{"operation in page", func() *Builder {
			b := NewBuilder("m", acmSchema())
			pb := b.SiteView("sv", "SV").Page("p", "P")
			pb.addUnit(&Unit{ID: "bad", Kind: CreateUnit, Entity: "Volume"})
			return b
		}, "operation unit"},
		{"operation without OK", func() *Builder {
			b := NewBuilder("m", acmSchema())
			pb := b.SiteView("sv", "SV").Page("p", "P")
			e := pb.Entry("e", Field{Name: "t", Type: er.String})
			op := b.Operation("op", CreateUnit, "Volume")
			b.Link(e.ID, op.ID)
			return b
		}, "exactly one OK link"},
		{"unreachable operation", func() *Builder {
			b := NewBuilder("m", acmSchema())
			pb := b.SiteView("sv", "SV").Page("p", "P")
			pb.Data("d", "Volume", "Title")
			op := b.Operation("op", DeleteUnit, "Volume")
			b.OK(op.ID, "p")
			return b
		}, "unreachable"},
		{"transport across pages", func() *Builder {
			b := NewBuilder("m", acmSchema())
			sv := b.SiteView("sv", "SV")
			d1 := sv.Page("p1", "P1").Data("d1", "Volume", "Title")
			d2 := sv.Page("p2", "P2").Data("d2", "Volume", "Title")
			b.Transport(d1.ID, d2.ID, P("oid", "volume"))
			return b
		}, "crosses pages"},
		{"transport cycle", func() *Builder {
			b := NewBuilder("m", acmSchema())
			pb := b.SiteView("sv", "SV").Page("p", "P")
			d1 := pb.Data("d1", "Volume", "Title")
			d2 := pb.Data("d2", "Volume", "Title")
			b.Transport(d1.ID, d2.ID, P("oid", "x"))
			b.Transport(d2.ID, d1.ID, P("oid", "y"))
			return b
		}, "cycle"},
		{"dangling link", func() *Builder {
			b := NewBuilder("m", acmSchema())
			pb := b.SiteView("sv", "SV").Page("p", "P")
			d := pb.Data("d", "Volume", "Title")
			b.Link(d.ID, "ghost")
			return b
		}, "unknown destination"},
		{"bad link param source", func() *Builder {
			b := NewBuilder("m", acmSchema())
			sv := b.SiteView("sv", "SV")
			d := sv.Page("p1", "P1").Data("d", "Volume", "Title")
			p2 := sv.Page("p2", "P2")
			p2.Data("d2", "Volume", "Title")
			b.Link(d.ID, "p2", P("nope", "x"))
			return b
		}, "not an attribute"},
		{"bad selector attr", func() *Builder {
			b := NewBuilder("m", acmSchema())
			pb := b.SiteView("sv", "SV").Page("p", "P")
			d := pb.Data("d", "Volume", "Title")
			d.Selector = []Condition{{Attr: "ghost", Op: "="}}
			return b
		}, "selector references unknown attribute"},
		{"bad selector op", func() *Builder {
			b := NewBuilder("m", acmSchema())
			pb := b.SiteView("sv", "SV").Page("p", "P")
			d := pb.Data("d", "Volume", "Title")
			d.Selector = []Condition{{Attr: "Title", Op: "~="}}
			return b
		}, "unsupported operator"},
		{"bad nesting relationship", func() *Builder {
			b := NewBuilder("m", acmSchema())
			pb := b.SiteView("sv", "SV").Page("p", "P")
			idx := pb.Index("i", "Volume", "Title")
			idx.Nest = &Nesting{Relationship: "IssueToPaper", Display: []string{"Title"}}
			return b
		}, "does not involve entity"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := c.build().Build()
			if err == nil {
				t.Fatal("expected validation error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestPluginRegistration(t *testing.T) {
	defer UnregisterPlugin("rss")
	if err := RegisterPlugin(PluginSpec{Kind: "rss", RequiredProps: []string{"feed"}}); err != nil {
		t.Fatal(err)
	}
	if err := RegisterPlugin(PluginSpec{Kind: "rss"}); err == nil {
		t.Fatal("duplicate plug-in accepted")
	}
	if err := RegisterPlugin(PluginSpec{Kind: DataUnit}); err == nil {
		t.Fatal("core-kind collision accepted")
	}
	if err := RegisterPlugin(PluginSpec{Kind: ""}); err == nil {
		t.Fatal("empty kind accepted")
	}

	// Plug-in unit with its required prop validates; without it fails.
	b := NewBuilder("m", acmSchema())
	b.SiteView("sv", "SV").Page("p", "P").Plugin("r", "rss", map[string]string{"feed": "http://x"})
	if _, err := b.Build(); err != nil {
		t.Fatalf("plug-in unit rejected: %v", err)
	}
	b2 := NewBuilder("m", acmSchema())
	b2.SiteView("sv", "SV").Page("p", "P").Plugin("r", "rss", nil)
	if _, err := b2.Build(); err == nil || !strings.Contains(err.Error(), "missing required prop") {
		t.Fatalf("err = %v", err)
	}
	if !UnitKind("rss").IsContent() || UnitKind("rss").IsOperation() {
		t.Fatal("plug-in content classification wrong")
	}
}

func TestPluginOperation(t *testing.T) {
	defer UnregisterPlugin("sendmail")
	if err := RegisterPlugin(PluginSpec{Kind: "sendmail", Operation: true}); err != nil {
		t.Fatal(err)
	}
	if !UnitKind("sendmail").IsOperation() {
		t.Fatal("plug-in operation classification wrong")
	}
	b := figure1Builder()
	mail := b.Operation("mailer", "sendmail", "")
	b.Link("enterKeyword", mail.ID, P("keyword", "subject"))
	b.OK(mail.ID, "volumePage")
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestAreasAndLandmarks(t *testing.T) {
	b := NewBuilder("m", acmSchema())
	sv := b.SiteView("sv", "SV")
	p1 := sv.AreaPage("Products", "pp1", "Catalog")
	p1.Landmark().Layout("two-column")
	p1.Index("i1", "Volume", "Title")
	p2 := sv.AreaPage("Products", "pp2", "Detail")
	p2.Data("d1", "Volume", "Title")
	sv.AreaPage("News", "np1", "News").Multidata("m1", "Volume", "Title")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(sv.View().Areas) != 2 {
		t.Fatalf("areas = %d", len(sv.View().Areas))
	}
	if got := len(m.AllPages()); got != 3 {
		t.Fatalf("pages = %d", got)
	}
	if !m.PageByID("pp1").Landmark || m.PageByID("pp1").Layout != "two-column" {
		t.Fatal("landmark/layout lost")
	}
	if m.PageByID("pp2").Area().Name != "Products" {
		t.Fatal("area back-pointer lost")
	}
}

func TestLinkKindStrings(t *testing.T) {
	want := map[LinkKind]string{NormalLink: "normal", TransportLink: "transport",
		AutomaticLink: "automatic", OKLink: "ok", KOLink: "ko"}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%v.String() = %q", k, k.String())
		}
	}
}

func TestMultichoiceAndConnect(t *testing.T) {
	schema := acmSchema()
	schema.Relationships = append(schema.Relationships, &er.Relationship{
		Name: "PaperAuthors", From: "Paper", To: "Volume", // contrived n:m for the test
		FromRole: "pa", ToRole: "ap", FromCard: er.Many, ToCard: er.Many,
	})
	b := NewBuilder("m", schema)
	sv := b.SiteView("sv", "SV")
	pb := sv.Page("p", "P")
	mc := pb.Multichoice("mc", "Volume", "Title")
	conn := b.Connect("conn", "PaperAuthors")
	b.Link(mc.ID, conn.ID, P("oid", "to"))
	b.OK(conn.ID, "p")
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	// Connect over unknown relationship fails.
	b2 := NewBuilder("m", acmSchema())
	pb2 := b2.SiteView("sv", "SV").Page("p", "P")
	mc2 := pb2.Multichoice("mc", "Volume", "Title")
	conn2 := b2.Connect("conn", "Ghost")
	b2.Link(mc2.ID, conn2.ID)
	b2.OK(conn2.ID, "p")
	if _, err := b2.Build(); err == nil || !strings.Contains(err.Error(), "unknown relationship") {
		t.Fatalf("err = %v", err)
	}
}
