// Package webml implements the Web Modelling Language metamodel
// (Sections 1 and 3 of the paper): site views, areas, pages, content
// units, operation units, and the links that carry parameters between
// them. A Model is the input of the code generator and the conceptual
// reference the runtime uses for cache invalidation.
package webml

import (
	"strings"

	"webmlgo/internal/er"
)

// UnitKind names a unit type. The 11 core kinds are the ones the paper
// reports for the Acer-Euro application ("data, index, multidata,
// multi-choice, scroller, entry, create, delete, modify, connect,
// disconnect"); additional kinds may be registered as plug-in units
// (Section 7).
type UnitKind string

// The 11 basic WebML unit kinds.
const (
	DataUnit        UnitKind = "data"
	IndexUnit       UnitKind = "index"
	MultidataUnit   UnitKind = "multidata"
	MultichoiceUnit UnitKind = "multichoice"
	ScrollerUnit    UnitKind = "scroller"
	EntryUnit       UnitKind = "entry"
	CreateUnit      UnitKind = "create"
	DeleteUnit      UnitKind = "delete"
	ModifyUnit      UnitKind = "modify"
	ConnectUnit     UnitKind = "connect"
	DisconnectUnit  UnitKind = "disconnect"
)

// CoreUnitKinds lists the 11 built-in kinds in the order the paper
// enumerates them.
var CoreUnitKinds = []UnitKind{
	DataUnit, IndexUnit, MultidataUnit, MultichoiceUnit, ScrollerUnit,
	EntryUnit, CreateUnit, DeleteUnit, ModifyUnit, ConnectUnit, DisconnectUnit,
}

// IsOperation reports whether the kind is an operation unit (executes a
// state change and is reached by links, contributing no markup).
func (k UnitKind) IsOperation() bool {
	switch k {
	case CreateUnit, DeleteUnit, ModifyUnit, ConnectUnit, DisconnectUnit:
		return true
	}
	if sp, ok := LookupPlugin(k); ok {
		return sp.Operation
	}
	return false
}

// IsContent reports whether the kind is a content unit displayed in pages.
func (k UnitKind) IsContent() bool {
	switch k {
	case DataUnit, IndexUnit, MultidataUnit, MultichoiceUnit, ScrollerUnit, EntryUnit:
		return true
	}
	if sp, ok := LookupPlugin(k); ok {
		return !sp.Operation
	}
	return false
}

// isKnown reports whether the kind is core or registered.
func (k UnitKind) isKnown() bool {
	for _, c := range CoreUnitKinds {
		if c == k {
			return true
		}
	}
	_, ok := LookupPlugin(k)
	return ok
}

// Condition is one selector conjunct restricting the objects a content
// unit displays: Attr Op (Value | input parameter Param).
type Condition struct {
	Attr string
	// Op is one of = <> < <= > >= LIKE.
	Op string
	// Param, when non-empty, binds the comparison value from the unit's
	// named input parameter at request time.
	Param string
	// Value is a literal comparison value, used when Param is empty.
	Value interface{}
}

// OrderKey is one ORDER BY term of a unit's selector.
type OrderKey struct {
	Attr string
	Desc bool
}

// Nesting describes one level of a hierarchical index unit (Figure 1's
// Issues&Papers unit nests Paper inside Issue via relationship roles).
type Nesting struct {
	// Relationship is the relationship (or role) name to traverse from the
	// parent level's entity.
	Relationship string
	// Display lists the attributes shown at this level.
	Display []string
	// Order sorts the level.
	Order []OrderKey
	// Nest is the next deeper level, or nil.
	Nest *Nesting
}

// Field is one input field of an entry unit.
type Field struct {
	Name     string
	Type     er.AttrType
	Required bool
}

// CacheSpec marks a content unit as cached in the business-tier bean
// cache (Section 6: "developers can tag any WebML content unit in the
// conceptual model of the application as cached").
type CacheSpec struct {
	Enabled bool
	// TTLSeconds bounds staleness; 0 means no time bound (invalidation
	// only through the model-derived dependency index).
	TTLSeconds int
}

// Unit is a WebML unit: either a content unit placed in a page or an
// operation unit placed between pages.
type Unit struct {
	ID   string
	Name string
	Kind UnitKind

	// Entity is the source/target entity (content units and
	// create/delete/modify operations).
	Entity string
	// Relationship is the relationship affected by connect/disconnect, or
	// traversed by a relationship-scoped index.
	Relationship string
	// Display lists the attributes a content unit renders.
	Display []string
	// Selector restricts the displayed/affected objects.
	Selector []Condition
	// Order sorts multi-row content units.
	Order []OrderKey
	// PageSize is the scroller unit's window size.
	PageSize int
	// Fields are the entry unit's form fields.
	Fields []Field
	// Set maps attribute -> input parameter name for create/modify units.
	Set map[string]string
	// Nest is the hierarchical structure of a hierarchical index unit.
	Nest *Nesting
	// Cache is the optional conceptual cache tag.
	Cache *CacheSpec
	// Props carries plug-in unit configuration.
	Props map[string]string

	page *Page // back-pointer, set by the builder/loader; nil for operations
}

// Page returns the page containing a content unit, or nil for operations.
func (u *Unit) Page() *Page { return u.page }

// LinkKind classifies links.
type LinkKind int

const (
	// NormalLink is a user-navigable anchor between units/pages.
	NormalLink LinkKind = iota
	// TransportLink carries parameters without user interaction (dashed
	// arrow in Figure 1).
	TransportLink
	// AutomaticLink is navigated by the system on page entry.
	AutomaticLink
	// OKLink is followed after an operation succeeds.
	OKLink
	// KOLink is followed after an operation fails.
	KOLink
)

// String names the link kind.
func (k LinkKind) String() string {
	switch k {
	case NormalLink:
		return "normal"
	case TransportLink:
		return "transport"
	case AutomaticLink:
		return "automatic"
	case OKLink:
		return "ok"
	case KOLink:
		return "ko"
	}
	return "unknown"
}

// LinkParam maps an output of the link source to an input parameter of
// the link target (the "parameter propagation" of Section 3).
type LinkParam struct {
	// Source is the source unit's output name: an attribute of the
	// current object ("oid", "title"), or an entry field name.
	Source string
	// Target is the destination unit's input parameter name.
	Target string
}

// Link connects pages, content units, and operations.
type Link struct {
	ID     string
	Kind   LinkKind
	From   string // unit or page ID
	To     string // unit, page, or operation ID
	Params []LinkParam
	// Label is the anchor text for normal links.
	Label string
}

// Page is one application page containing content units.
type Page struct {
	ID       string
	Name     string
	Units    []*Unit
	Landmark bool
	// Layout names the page's layout category for the presentation rules
	// of Section 5 ("multi-frame pages, two-columns pages, ...").
	Layout string

	siteView *SiteView
	area     *Area
}

// SiteView returns the owning site view.
func (p *Page) SiteView() *SiteView { return p.siteView }

// Area returns the owning area, or nil for top-level pages.
func (p *Page) Area() *Area { return p.area }

// Area groups pages hierarchically inside a site view.
type Area struct {
	ID    string
	Name  string
	Pages []*Page
	Areas []*Area
}

// SiteView is one hypertext targeted at a user group or access device.
type SiteView struct {
	ID    string
	Name  string
	Pages []*Page
	Areas []*Area
	// Home is the ID of the site view's home page.
	Home string
	// Protected marks site views requiring an authenticated session.
	Protected bool
}

// AllPages returns every page of the site view, including area pages.
func (sv *SiteView) AllPages() []*Page {
	var out []*Page
	out = append(out, sv.Pages...)
	var walk func(a *Area)
	walk = func(a *Area) {
		out = append(out, a.Pages...)
		for _, sub := range a.Areas {
			walk(sub)
		}
	}
	for _, a := range sv.Areas {
		walk(a)
	}
	return out
}

// Model is a complete WebML specification: the ER data model plus the
// hypertext (site views, operations, links).
type Model struct {
	Name       string
	Data       *er.Schema
	SiteViews  []*SiteView
	Operations []*Unit
	Links      []*Link

	index     map[string]interface{} // id -> *Page | *Unit | *SiteView | *Link
	linksFrom map[string][]*Link
	linksTo   map[string][]*Link
}

// buildIndex populates the ID lookup table; it is called by Validate and
// by the builder.
func (m *Model) buildIndex() {
	m.index = make(map[string]interface{})
	for _, sv := range m.SiteViews {
		m.index[sv.ID] = sv
		// Area back-pointers (pages loaded from XML lack them).
		var wireAreas func(a *Area)
		wireAreas = func(a *Area) {
			for _, p := range a.Pages {
				p.area = a
			}
			for _, sub := range a.Areas {
				wireAreas(sub)
			}
		}
		for _, a := range sv.Areas {
			wireAreas(a)
		}
		for _, p := range sv.AllPages() {
			m.index[p.ID] = p
			p.siteView = sv
			for _, u := range p.Units {
				m.index[u.ID] = u
				u.page = p
			}
		}
	}
	for _, op := range m.Operations {
		m.index[op.ID] = op
	}
	m.linksFrom = make(map[string][]*Link, len(m.Links))
	m.linksTo = make(map[string][]*Link, len(m.Links))
	for _, l := range m.Links {
		m.index[l.ID] = l
		m.linksFrom[l.From] = append(m.linksFrom[l.From], l)
		m.linksTo[l.To] = append(m.linksTo[l.To], l)
	}
}

// Lookup resolves any model element by ID.
func (m *Model) Lookup(id string) interface{} {
	if m.index == nil {
		m.buildIndex()
	}
	return m.index[id]
}

// PageByID returns the page with the given ID, or nil.
func (m *Model) PageByID(id string) *Page {
	p, _ := m.Lookup(id).(*Page)
	return p
}

// UnitByID returns the unit (content or operation) with the given ID.
func (m *Model) UnitByID(id string) *Unit {
	u, _ := m.Lookup(id).(*Unit)
	return u
}

// AllPages returns every page in every site view.
func (m *Model) AllPages() []*Page {
	var out []*Page
	for _, sv := range m.SiteViews {
		out = append(out, sv.AllPages()...)
	}
	return out
}

// AllContentUnits returns every content unit in every page.
func (m *Model) AllContentUnits() []*Unit {
	var out []*Unit
	for _, p := range m.AllPages() {
		out = append(out, p.Units...)
	}
	return out
}

// LinksFrom returns the links whose source is the given element ID.
func (m *Model) LinksFrom(id string) []*Link {
	if m.linksFrom == nil {
		m.buildIndex()
	}
	return m.linksFrom[id]
}

// LinksTo returns the links whose destination is the given element ID.
func (m *Model) LinksTo(id string) []*Link {
	if m.linksTo == nil {
		m.buildIndex()
	}
	return m.linksTo[id]
}

// UnitKindsUsed returns the distinct unit kinds appearing in the model,
// in first-use order. Its length is the number of generic unit services
// the runtime needs (11 for Acer-Euro).
func (m *Model) UnitKindsUsed() []UnitKind {
	seen := map[UnitKind]bool{}
	var out []UnitKind
	add := func(k UnitKind) {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for _, u := range m.AllContentUnits() {
		add(u.Kind)
	}
	for _, op := range m.Operations {
		add(op.Kind)
	}
	return out
}

// Stats summarizes the model's size the way Section 8 reports it.
type Stats struct {
	SiteViews  int
	Pages      int
	Units      int // content units
	Operations int
	Links      int
	UnitKinds  int
}

// Stats computes the model's size statistics.
func (m *Model) Stats() Stats {
	return Stats{
		SiteViews:  len(m.SiteViews),
		Pages:      len(m.AllPages()),
		Units:      len(m.AllContentUnits()),
		Operations: len(m.Operations),
		Links:      len(m.Links),
		UnitKinds:  len(m.UnitKindsUsed()),
	}
}

func equalFold(a, b string) bool { return strings.EqualFold(a, b) }
