package webml

import (
	"strings"
	"testing"
)

func TestModelXMLRoundTrip(t *testing.T) {
	orig := figure1Builder().MustBuild()
	data, err := MarshalModel(orig)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `<webml name="acm-dl">`) {
		t.Fatalf("document malformed:\n%s", data)
	}
	back, err := UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	// Structural equivalence.
	as, bs := orig.Stats(), back.Stats()
	if as != bs {
		t.Fatalf("stats differ: %+v vs %+v", as, bs)
	}
	// Deep checks on a representative unit.
	u := back.UnitByID("issuesPapers")
	if u == nil {
		t.Fatal("unit lost")
	}
	if u.Kind != IndexUnit || u.Entity != "Issue" {
		t.Fatalf("unit = %+v", u)
	}
	if u.Nest == nil || u.Nest.Relationship != "IssueToPaper" || u.Nest.Display[0] != "Title" {
		t.Fatalf("nesting lost: %+v", u.Nest)
	}
	if u.Selector[0].Op != ">" || u.Selector[0].Value != int64(0) {
		t.Fatalf("typed literal lost: %+v", u.Selector[0])
	}
	// Schema round trip.
	rel := back.Data.Relationship("VolumeToIssue")
	if rel == nil || rel.FromCard != 1 && rel.FromCard != rel.FromCard {
		t.Fatal("relationship lost")
	}
	// Links round trip with kinds and params.
	found := false
	for _, l := range back.Links {
		if l.Kind == TransportLink && l.From == "volumeData" {
			found = true
			if l.Params[0].Source != "oid" || l.Params[0].Target != "volume" {
				t.Fatalf("link params lost: %+v", l.Params)
			}
		}
	}
	if !found {
		t.Fatal("transport link lost")
	}
	// Marshal again: byte-for-byte stable (deterministic field order).
	data2, err := MarshalModel(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("marshal not deterministic")
	}
}

func TestModelXMLWithOperationsAndAreas(t *testing.T) {
	b := figure1Builder()
	sv := b.SiteView("admin", "Admin").Protected()
	page := sv.AreaPage("Ops", "opsPage", "Ops Page")
	form := page.Entry("opForm", Field{Name: "title", Type: 0, Required: true})
	create := b.Operation("mkVol", CreateUnit, "Volume")
	create.Set = map[string]string{"Title": "title"}
	create.Cache = nil
	b.Link(form.ID, create.ID, P("title", "title"))
	b.OK(create.ID, "opsPage")
	b.KO(create.ID, "opsPage")
	orig := b.MustBuild()

	data, err := MarshalModel(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats() != orig.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", back.Stats(), orig.Stats())
	}
	op := back.UnitByID("mkVol")
	if op == nil || op.Set["Title"] != "title" {
		t.Fatalf("operation lost: %+v", op)
	}
	p := back.PageByID("opsPage")
	if p == nil || p.Area() == nil || p.Area().Name != "Ops" {
		t.Fatal("area structure lost")
	}
	if !back.SiteViews[1].Protected {
		t.Fatal("protected flag lost")
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"garbage", "not xml"},
		{"bad card", `<webml name="x"><data>
			<entity name="E"><attribute name="A" type="string"/></entity>
			<relationship name="R" from="E" to="E" fromRole="a" toRole="b" fromCard="Q" toCard="1"/>
			</data></webml>`},
		{"bad type", `<webml name="x"><data>
			<entity name="E"><attribute name="A" type="blob"/></entity>
			</data></webml>`},
		{"bad link kind", `<webml name="x"><data>
			<entity name="E"><attribute name="A" type="string"/></entity></data>
			<siteView id="sv" name="SV" home="p">
			<page id="p" name="P"><unit id="u" kind="index" entity="E" display="A"/></page>
			</siteView>
			<links><link id="l" kind="weird" from="u" to="p"/></links></webml>`},
		{"semantically invalid", `<webml name="x"><data>
			<entity name="E"><attribute name="A" type="string"/></entity></data>
			<siteView id="sv" name="SV" home="p">
			<page id="p" name="P"><unit id="u" kind="index" entity="Ghost" display="A"/></page>
			</siteView></webml>`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := UnmarshalModel([]byte(c.doc)); err == nil {
				t.Fatal("invalid document accepted")
			}
		})
	}
}

func TestLiteralCodec(t *testing.T) {
	vals := []interface{}{int64(5), 1.5, "x:y", true, false, nil}
	for _, v := range vals {
		enc := encodeLiteral(v)
		back, err := decodeLiteral(enc)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if back != v {
			t.Fatalf("round trip %v -> %q -> %v", v, enc, back)
		}
	}
	if _, err := decodeLiteral("nope"); err == nil {
		t.Fatal("tagless literal accepted")
	}
	if _, err := decodeLiteral("bool:maybe"); err == nil {
		t.Fatal("bad bool accepted")
	}
}

func TestSplitList(t *testing.T) {
	if got := splitList(""); got != nil {
		t.Fatalf("empty list = %v", got)
	}
	got := splitList("a,b,c")
	if len(got) != 3 || got[1] != "b" {
		t.Fatalf("got %v", got)
	}
}
