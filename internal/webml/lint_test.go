package webml

import (
	"strings"
	"testing"

	"webmlgo/internal/er"
)

func lintOf(t *testing.T, b *Builder) []string {
	t.Helper()
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return Lint(m)
}

func hasWarning(warnings []string, sub string) bool {
	for _, w := range warnings {
		if strings.Contains(w, sub) {
			return true
		}
	}
	return false
}

func TestLintCleanModel(t *testing.T) {
	m := figure1Builder().MustBuild()
	warnings := Lint(m)
	// The Figure 1 model has two reachability warnings at most: the
	// volumes page is the home, everything else is linked. Check none of
	// the structural smells fire.
	for _, w := range warnings {
		if strings.Contains(w, "submits nowhere") ||
			strings.Contains(w, "displays no attributes") {
			t.Fatalf("unexpected warning: %s", w)
		}
	}
}

func TestLintUnreachablePage(t *testing.T) {
	b := NewBuilder("m", acmSchema())
	sv := b.SiteView("sv", "SV")
	home := sv.Page("home", "Home")
	home.Index("i", "Volume", "Title")
	orphan := sv.Page("orphan", "Orphan")
	orphan.Index("oi", "Volume", "Title")
	warnings := lintOf(t, b)
	if !hasWarning(warnings, `page "orphan" is unreachable`) {
		t.Fatalf("warnings = %v", warnings)
	}
	if hasWarning(warnings, `page "home" is unreachable`) {
		t.Fatal("home flagged unreachable")
	}
}

func TestLintLandmarkCountsAsReachable(t *testing.T) {
	b := NewBuilder("m", acmSchema())
	sv := b.SiteView("sv", "SV")
	sv.Page("home", "Home").Index("i", "Volume", "Title")
	lm := sv.Page("mark", "Landmark").Landmark()
	lm.Index("li", "Volume", "Title")
	if hasWarning(lintOf(t, b), `page "mark"`) {
		t.Fatal("landmark flagged unreachable")
	}
}

func TestLintReachabilityThroughOperations(t *testing.T) {
	b := NewBuilder("m", acmSchema())
	sv := b.SiteView("sv", "SV")
	home := sv.Page("home", "Home")
	form := home.Entry("f", Field{Name: "t", Type: er.String})
	after := sv.Page("after", "After Create")
	after.Index("ai", "Volume", "Title")
	op := b.Operation("mk", CreateUnit, "Volume")
	op.Set = map[string]string{"Title": "t"}
	b.Link(form.ID, op.ID, P("t", "t"))
	b.OK(op.ID, after.Ref())
	if hasWarning(lintOf(t, b), `page "after"`) {
		t.Fatal("OK-link target flagged unreachable")
	}
}

func TestLintDeadEntryForm(t *testing.T) {
	b := NewBuilder("m", acmSchema())
	sv := b.SiteView("sv", "SV")
	p := sv.Page("home", "Home")
	p.Entry("deadForm", Field{Name: "q", Type: er.String})
	if !hasWarning(lintOf(t, b), `entry unit "deadForm"`) {
		t.Fatal("dead form not flagged")
	}
}

func TestLintUnboundSelectorParam(t *testing.T) {
	b := NewBuilder("m", acmSchema())
	sv := b.SiteView("sv", "SV")
	p := sv.Page("home", "Home")
	d := p.Data("d", "Volume", "Title")
	d.Selector = []Condition{{Attr: "oid", Op: "=", Param: "ghost"}}
	if !hasWarning(lintOf(t, b), `parameter "ghost" is never supplied`) {
		t.Fatal("unbound parameter not flagged")
	}
	// Supplying it through a link silences the warning.
	b2 := NewBuilder("m", acmSchema())
	sv2 := b2.SiteView("sv", "SV")
	list := sv2.Page("list", "List")
	idx := list.Index("i", "Volume", "Title")
	detail := sv2.Page("detail", "Detail")
	d2 := detail.Data("d", "Volume", "Title")
	d2.Selector = []Condition{{Attr: "oid", Op: "=", Param: "v"}}
	b2.Link(idx.ID, detail.Ref(), P("oid", "v"))
	if hasWarning(lintOf(t, b2), `parameter "v" is never supplied`) {
		t.Fatal("bound parameter flagged")
	}
}

func TestLintRelationshipParentUnbound(t *testing.T) {
	b := NewBuilder("m", acmSchema())
	sv := b.SiteView("sv", "SV")
	p := sv.Page("home", "Home")
	rel := p.Index("rel", "Issue", "Number")
	rel.Relationship = "VolumeToIssue"
	if !hasWarning(lintOf(t, b), `unit "rel" is relationship-scoped`) {
		t.Fatal("unbound parent not flagged")
	}
	// A transport edge supplying "parent" silences it.
	b2 := NewBuilder("m", acmSchema())
	sv2 := b2.SiteView("sv", "SV")
	p2 := sv2.Page("home", "Home")
	d := p2.Data("d", "Volume", "Title")
	rel2 := p2.Index("rel", "Issue", "Number")
	rel2.Relationship = "VolumeToIssue"
	b2.Transport(d.ID, rel2.ID, P("oid", "parent"))
	if hasWarning(lintOf(t, b2), `unit "rel" is relationship-scoped`) {
		t.Fatal("edge-supplied parent flagged")
	}
}

func TestLintDisplaysNothing(t *testing.T) {
	b := NewBuilder("m", acmSchema())
	sv := b.SiteView("sv", "SV")
	p := sv.Page("home", "Home")
	p.Index("bare", "Volume") // no display attributes
	if !hasWarning(lintOf(t, b), `unit "bare" displays no attributes`) {
		t.Fatal("bare unit not flagged")
	}
}

func TestLintWorkloadModelIsMostlyClean(t *testing.T) {
	// The synthetic generator should produce models without structural
	// smells other than browse-page reachability (clusters link browse ->
	// detail; manage pages are entered directly).
	m := figure1Builder().MustBuild()
	warnings := Lint(m)
	for _, w := range warnings {
		t.Logf("lint: %s", w)
	}
}

func TestDeriveDefaultHypertext(t *testing.T) {
	m, err := DeriveDefaultHypertext("derived", acmSchema())
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	// 3 entities -> 3 browse + 3 detail pages.
	if st.Pages != 6 {
		t.Fatalf("pages = %d", st.Pages)
	}
	// Every browse page is a landmark, so reachability lint is clean.
	for _, w := range Lint(m) {
		if strings.Contains(w, "unreachable") {
			t.Fatalf("derived hypertext has unreachable page: %s", w)
		}
	}
	// Volume detail carries a relationship index over VolumeToIssue fed
	// by a transport link, and its entries link to the issue detail page.
	relIdx := m.UnitByID("relVolumeVolumetoissue")
	if relIdx == nil {
		// ident() lowercases then title-cases; compute the expected ID.
		t.Fatalf("relationship index missing; units: %v", unitIDs(m))
	}
	if relIdx.Relationship != "VolumeToIssue" || relIdx.Entity != "Issue" {
		t.Fatalf("relIdx = %+v", relIdx)
	}
	found := false
	for _, l := range m.LinksFrom(relIdx.ID) {
		if l.Kind == NormalLink && l.To == "detailIssue" {
			found = true
		}
	}
	if !found {
		t.Fatal("related instances do not link to their detail page")
	}
}

func unitIDs(m *Model) []string {
	var out []string
	for _, u := range m.AllContentUnits() {
		out = append(out, u.ID)
	}
	return out
}
