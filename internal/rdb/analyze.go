package rdb

import (
	"fmt"
	"strings"
	"time"
)

// This file adds runtime introspection to compiled plans: EXPLAIN
// ANALYZE executes the plan with a per-execution counter struct
// attached and renders the same operator tree as EXPLAIN annotated
// with actual row counts, index probes and inclusive operator time.
// The counters live entirely in execStats — the plan itself stays
// immutable and shareable — and the hot path pays only a nil check
// per operator when no analysis is active.

// opCounters are the actuals of one physical operator.
type opCounters struct {
	rowsIn  int64 // rows arriving from the operator above (joins)
	rowsOut int64 // rows the operator produced
	probes  int64 // index seeks performed
	elapsed time.Duration
}

// execStats collects one execution's per-operator actuals. elapsed is
// inclusive: an operator's time covers everything at or below it in
// the pipeline, matching how the operators nest as closures.
type execStats struct {
	base      opCounters
	joins     []opCounters
	filterIn  int64 // rows reaching the WHERE filter
	filterOut int64 // rows surviving it
	output    int64 // rows in the final result (after sort/limit)
	total     time.Duration
}

func newExecStats(p *SelectPlan) *execStats {
	return &execStats{joins: make([]opCounters, len(p.joins))}
}

// pathLabel names the access path compactly for span labels:
// scan | pk | unique | hash | range | ordered | composite.
func (a *accessPath) pathLabel() string {
	switch a.kind {
	case accessPK:
		return "pk"
	case accessUnique:
		return "unique"
	case accessHash:
		return "hash"
	case accessRange:
		if a.orderWalk {
			return "ordered"
		}
		return "range"
	case accessComposite:
		return "composite"
	case accessSnapPK:
		return "snap-pk"
	}
	return "scan"
}

// planCacheLine is the cache-provenance footer both EXPLAIN forms
// append: the /metrics plan-cache counters say how often plans hit,
// this says whether the plan just shown did.
func planCacheLine(hit bool) string {
	if hit {
		return "\nPLAN: cached"
	}
	return "\nPLAN: compiled"
}

func fmtOpTime(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

// renderPlan renders the operator tree of a compiled plan. With es ==
// nil the output is EXPLAIN's estimate-only form; with es set each
// operator line gains its actuals so estimates and reality sit side by
// side.
func renderPlan(p *SelectPlan, sel *SelectStmt, es *execStats) string {
	var b strings.Builder
	a := &p.access
	switch a.kind {
	case accessScan:
		fmt.Fprintf(&b, "SCAN %s (%d rows)", p.baseTable, p.base.alive)
		if es != nil {
			fmt.Fprintf(&b, " (actual %d rows, %s)", es.base.rowsOut, fmtOpTime(es.base.elapsed))
		}
	case accessRange:
		if a.orderWalk {
			fmt.Fprintf(&b, "ACCESS %s BY ORDERED INDEX ON %s (est %.0f rows)", p.baseTable, a.col, a.est)
		} else {
			fmt.Fprintf(&b, "ACCESS %s BY RANGE ON %s (est %.0f rows)", p.baseTable, a.col, a.est)
		}
		if es != nil {
			fmt.Fprintf(&b, " (actual %d rows, %d probes, %s)", es.base.rowsOut, es.base.probes, fmtOpTime(es.base.elapsed))
		}
	case accessComposite:
		fmt.Fprintf(&b, "ACCESS %s BY COMPOSITE INDEX %s (%s) eq prefix %d",
			p.baseTable, a.comp.name, strings.Join(a.comp.colNames, ", "), len(a.eq))
		if a.rangeCol != "" {
			fmt.Fprintf(&b, ", range on %s", a.rangeCol)
		}
		fmt.Fprintf(&b, " (est %.0f rows)", a.est)
		if es != nil {
			fmt.Fprintf(&b, " (actual %d rows, %d probes, %s)", es.base.rowsOut, es.base.probes, fmtOpTime(es.base.elapsed))
		}
	default:
		fmt.Fprintf(&b, "ACCESS %s BY %s ON %s (est %.0f rows)", p.baseTable, a.label, a.col, a.est)
		if es != nil {
			fmt.Fprintf(&b, " (actual %d rows, %d probes, %s)", es.base.rowsOut, es.base.probes, fmtOpTime(es.base.elapsed))
		}
	}
	for i := range p.joins {
		j := &p.joins[i]
		kind := "INNER"
		if j.left {
			kind = "LEFT"
		}
		if j.kind == jkLoop {
			fmt.Fprintf(&b, "\n%s JOIN %s BY NESTED LOOP (%d rows)", kind, j.displayTable, j.estRows)
			if es != nil {
				jc := &es.joins[i]
				fmt.Fprintf(&b, " (actual in %d, out %d, %s)", jc.rowsIn, jc.rowsOut, fmtOpTime(jc.elapsed))
			}
		} else {
			fmt.Fprintf(&b, "\n%s JOIN %s BY %s ON %s", kind, j.displayTable, j.label, j.col)
			if es != nil {
				jc := &es.joins[i]
				fmt.Fprintf(&b, " (actual in %d, out %d, %d probes, %s)", jc.rowsIn, jc.rowsOut, jc.probes, fmtOpTime(jc.elapsed))
			}
		}
	}
	if es != nil && p.where != nil {
		fmt.Fprintf(&b, "\nFILTER (actual in %d, out %d)", es.filterIn, es.filterOut)
	}
	if len(sel.GroupBy) > 0 {
		fmt.Fprintf(&b, "\nGROUP BY %d keys", len(sel.GroupBy))
	}
	if len(sel.OrderBy) > 0 {
		if p.sortElim {
			fmt.Fprintf(&b, "\nORDER BY INDEX (sort eliminated, %d keys)", len(sel.OrderBy))
		} else {
			fmt.Fprintf(&b, "\nSORT %d keys", len(sel.OrderBy))
		}
	}
	if sel.Limit != nil {
		b.WriteString("\nLIMIT")
	}
	if es != nil {
		fmt.Fprintf(&b, "\nOUTPUT %d rows in %s", es.output, fmtOpTime(es.total))
	}
	return b.String()
}

// ExplainAnalyze compiles (or fetches from the plan cache) and
// EXECUTES the SELECT with per-operator counters attached, then
// renders the plan tree annotated with actual row counts, index
// probes and operator time alongside the planner's estimates. The
// result rows are discarded; side effects are none (SELECT only).
func (db *DB) ExplainAnalyze(sql string, args ...Value) (string, error) {
	st, err := db.prepare(sql)
	if err != nil {
		return "", err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return "", fmt.Errorf("rdb: EXPLAIN ANALYZE supports only SELECT, got %T", st)
	}
	cargs, err := coerceArgs(st, args)
	if err != nil {
		return "", err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	p, hit, err := db.planForCached(sql, sel)
	if err != nil {
		return "", err
	}
	es := newExecStats(p)
	t0 := time.Now()
	rows, err := db.execPlan(p, cargs, es)
	if err != nil {
		return "", err
	}
	es.total = time.Since(t0)
	es.output = int64(rows.Len())
	db.stats.analyzedQueries.Add(1)
	return renderPlan(p, sel, es) + planCacheLine(hit), nil
}

// ExplainAnalyze on a snapshot executes the snapshot-compiled plan
// with counters attached and renders it with the same provenance
// footer as the live form: snapshot plans compile once per snapshot
// and SQL text, so a repeated text reports "cached". It takes no
// database lock.
func (s *Snapshot) ExplainAnalyze(sql string, args ...Value) (string, error) {
	if s.closed.Load() {
		return "", fmt.Errorf("rdb: query on closed snapshot")
	}
	st, err := s.db.prepare(sql)
	if err != nil {
		return "", err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return "", fmt.Errorf("rdb: EXPLAIN ANALYZE supports only SELECT, got %T", st)
	}
	cargs, err := coerceArgs(st, args)
	if err != nil {
		return "", err
	}
	p, hit, err := s.planFor(sql, sel)
	if err != nil {
		return "", err
	}
	es := newExecStats(p)
	t0 := time.Now()
	rows, err := s.db.execPlan(p, cargs, es)
	if err != nil {
		return "", err
	}
	es.total = time.Since(t0)
	es.output = int64(rows.Len())
	s.db.stats.analyzedQueries.Add(1)
	return renderPlan(p, sel, es) + planCacheLine(hit), nil
}
