package rdb

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestExplainAnalyzePointLookup(t *testing.T) {
	db := planDB(t)
	out, err := db.ExplainAnalyze(`SELECT name FROM product WHERE oid = 5`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "BY PRIMARY KEY ON oid") {
		t.Fatalf("point lookup not chosen: %q", out)
	}
	if !strings.Contains(out, "(actual 1 rows, 1 probes,") {
		t.Fatalf("missing point-lookup actuals: %q", out)
	}
	if !strings.Contains(out, "\nOUTPUT 1 rows in ") {
		t.Fatalf("missing output footer: %q", out)
	}
}

func TestExplainAnalyzeCompositeRange(t *testing.T) {
	db := planDB(t)
	sql := `SELECT code FROM product WHERE family = 'fam2' AND price > 10 AND price < 40`
	want, err := db.QueryInterpreted(sql)
	if err != nil {
		t.Fatal(err)
	}
	out, err := db.ExplainAnalyze(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "COMPOSITE INDEX ix_family_price") || !strings.Contains(out, "range on price") {
		t.Fatalf("composite range not chosen: %q", out)
	}
	if !strings.Contains(out, fmt.Sprintf("\nOUTPUT %d rows in ", want.Len())) {
		t.Fatalf("actual output %d rows not reported: %q", want.Len(), out)
	}
	if want.Len() == 0 {
		t.Fatal("expected matching rows in fixture")
	}
}

func TestExplainAnalyzeIndexedJoin(t *testing.T) {
	db := Open()
	for _, s := range []string{
		`CREATE TABLE a (oid INTEGER PRIMARY KEY AUTOINCREMENT, k INTEGER)`,
		`CREATE TABLE b (oid INTEGER PRIMARY KEY AUTOINCREMENT, k INTEGER, sub INTEGER)`,
		`CREATE INDEX ix_b ON b(k, sub)`,
		`INSERT INTO a (k) VALUES (1), (2)`,
		`INSERT INTO b (k, sub) VALUES (1, 10), (1, 11), (2, 20), (3, 30)`,
	} {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	sql := `SELECT a.k, b.sub FROM a JOIN b ON b.k = a.k ORDER BY a.k, b.sub`
	out, err := db.ExplainAnalyze(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "JOIN b BY COMPOSITE INDEX ix_b") {
		t.Fatalf("indexed join not chosen: %q", out)
	}
	// Two base rows enter the join, three survive it, one probe each.
	if !strings.Contains(out, "(actual in 2, out 3, 2 probes,") {
		t.Fatalf("join actuals wrong: %q", out)
	}
	if !strings.Contains(out, "\nOUTPUT 3 rows in ") {
		t.Fatalf("missing output footer: %q", out)
	}
}

func TestExplainAnalyzeOrderByElimination(t *testing.T) {
	db := planDB(t)
	out, err := db.ExplainAnalyze(`SELECT name FROM product ORDER BY name`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ORDER BY INDEX (sort eliminated") {
		t.Fatalf("sort not eliminated: %q", out)
	}
	if !strings.Contains(out, "(actual 40 rows") || !strings.Contains(out, "\nOUTPUT 40 rows in ") {
		t.Fatalf("ordered-walk actuals wrong: %q", out)
	}
}

func TestExplainAnalyzeFilterActuals(t *testing.T) {
	db := planDB(t)
	out, err := db.ExplainAnalyze(`SELECT name FROM product WHERE code != 'c05'`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "\nFILTER (actual in 40, out 39)") {
		t.Fatalf("filter actuals wrong: %q", out)
	}
}

// outputRows parses the "OUTPUT n rows" footer of an analyzed plan.
func outputRows(t *testing.T, out string) int {
	t.Helper()
	m := regexp.MustCompile(`OUTPUT (\d+) rows`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no OUTPUT footer in %q", out)
	}
	n, _ := strconv.Atoi(m[1])
	return n
}

// TestExplainAnalyzeMatchesInterpreter checks the acceptance shapes:
// the analyzed plan's actual output count equals what the reference
// interpreter returns for the same SQL.
func TestExplainAnalyzeMatchesInterpreter(t *testing.T) {
	db := planDB(t)
	for _, sql := range []string{
		`SELECT name FROM product WHERE oid = 7`,
		`SELECT code FROM product WHERE family = 'fam1' AND price > 5 AND price < 45`,
		`SELECT name FROM product ORDER BY name LIMIT 10`,
		`SELECT name FROM product WHERE price > 20`,
	} {
		want, err := db.QueryInterpreted(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		out, err := db.ExplainAnalyze(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if got := outputRows(t, out); got != want.Len() {
			t.Fatalf("%s: analyzed output %d rows != interpreter %d\n%s", sql, got, want.Len(), out)
		}
	}
}

func TestExplainAnalyzePlanCacheMarker(t *testing.T) {
	db := planDB(t)
	sql := `SELECT name FROM product WHERE oid = 9`
	out, err := db.ExplainAnalyze(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "\nPLAN: compiled") {
		t.Fatalf("first analyze should compile: %q", out)
	}
	out, err = db.ExplainAnalyze(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "\nPLAN: cached") {
		t.Fatalf("second analyze should hit the plan cache: %q", out)
	}
	// Plain EXPLAIN carries the same provenance marker.
	plan, err := db.Explain(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "\nPLAN: cached") {
		t.Fatalf("EXPLAIN should report the cached plan: %q", plan)
	}
	fresh := `SELECT code FROM product WHERE oid = 2`
	plan, err = db.Explain(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "\nPLAN: compiled") {
		t.Fatalf("EXPLAIN of a fresh statement should report a compile: %q", plan)
	}
}

func TestExplainAnalyzeRejectsNonSelect(t *testing.T) {
	db := planDB(t)
	if _, err := db.ExplainAnalyze(`INSERT INTO family (name) VALUES ('x')`); err == nil {
		t.Fatal("expected an error for non-SELECT")
	}
	// And it must not have executed: the insert above would be row 5.
	rows, err := db.Query(`SELECT COUNT(*) FROM family`)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rows.Data[0][0]) != "4" {
		t.Fatalf("non-SELECT was executed: %v", rows.Data)
	}
}

func TestExplainAnalyzeCountsInStats(t *testing.T) {
	db := planDB(t)
	before := db.Stats().AnalyzedQueries
	if _, err := db.ExplainAnalyze(`SELECT name FROM product WHERE oid = 1`); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().AnalyzedQueries; got != before+1 {
		t.Fatalf("AnalyzedQueries = %d, want %d", got, before+1)
	}
}
