package rdb

import (
	"sync"
	"sync/atomic"
	"time"
)

// The slow-query flight recorder: a fixed-size ring (modeled on the
// tracer's slow-exemplar ring) that captures queries whose execution
// crossed a threshold, together with the evidence needed to explain
// them after the fact — SQL text, bound parameters, the analyzed plan
// with per-operator actuals, and the owning trace ID. Capture happens
// on the query's own goroutine under one short mutex hold; queries
// below the threshold never touch the lock.

// QueryRecord is one captured slow query.
type QueryRecord struct {
	At       time.Time     `json:"at"`
	SQL      string        `json:"sql"`
	Params   []Value       `json:"params,omitempty"`
	TraceID  uint64        `json:"-"`
	CacheHit bool          `json:"plan_cached"`
	Rows     int64         `json:"rows"`
	Elapsed  time.Duration `json:"-"`
	Plan     string        `json:"plan"`
}

type queryRecorder struct {
	min      time.Duration
	captured atomic.Uint64

	mu   sync.Mutex
	ring []QueryRecord
	pos  int
}

func (r *queryRecorder) record(q QueryRecord) {
	r.captured.Add(1)
	r.mu.Lock()
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, q)
	} else {
		r.ring[r.pos] = q
		r.pos = (r.pos + 1) % cap(r.ring)
	}
	r.mu.Unlock()
}

// EnableQueryRecorder turns on the slow-query flight recorder:
// QueryContext executions taking at least min are captured into a ring
// of the given capacity (<=0 selects 128). min <= 0 records every
// query — the full-analysis mode. Enabling replaces any previous
// recorder (and its captured entries).
func (db *DB) EnableQueryRecorder(capacity int, min time.Duration) {
	if capacity <= 0 {
		capacity = 128
	}
	db.recorder.Store(&queryRecorder{min: min, ring: make([]QueryRecord, 0, capacity)})
}

// DisableQueryRecorder turns the flight recorder off and drops its
// captured entries.
func (db *DB) DisableQueryRecorder() {
	db.recorder.Store(nil)
}

// RecorderEnabled reports whether the flight recorder is on, and its
// capture threshold when it is.
func (db *DB) RecorderEnabled() (bool, time.Duration) {
	r := db.recorder.Load()
	if r == nil {
		return false, 0
	}
	return true, r.min
}

// QueryRecords returns captured queries, newest first, skipping those
// faster than min; limit bounds the count (<=0 selects 32).
func (db *DB) QueryRecords(min time.Duration, limit int) []QueryRecord {
	r := db.recorder.Load()
	if r == nil {
		return nil
	}
	if limit <= 0 {
		limit = 32
	}
	r.mu.Lock()
	snap := make([]QueryRecord, len(r.ring))
	// Unroll the ring into chronological order: oldest entry sits at
	// pos once the ring has wrapped.
	n := len(r.ring)
	for i := 0; i < n; i++ {
		snap[i] = r.ring[(r.pos+i)%n]
	}
	r.mu.Unlock()
	out := make([]QueryRecord, 0, limit)
	for i := n - 1; i >= 0; i-- {
		if snap[i].Elapsed < min {
			continue
		}
		out = append(out, snap[i])
		if len(out) >= limit {
			break
		}
	}
	return out
}
