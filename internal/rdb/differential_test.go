package rdb

import (
	"sort"
	"strings"
	"sync"
	"testing"
)

// The differential suite runs every corpus query through both the plan
// compiler (Query) and the retained AST interpreter (QueryInterpreted)
// and demands identical results: exact row sequence when the SQL has an
// ORDER BY, multiset equality otherwise. The interpreter is the
// executable specification; any divergence is a planner bug.

func diffFixture(t testing.TB) *DB {
	t.Helper()
	return diffSeed(t, Open())
}

func diffSeed(t testing.TB, db *DB) *DB {
	t.Helper()
	setup := []string{
		`CREATE TABLE dept (oid INTEGER PRIMARY KEY AUTOINCREMENT, name TEXT NOT NULL, budget INTEGER)`,
		`CREATE TABLE emp (oid INTEGER PRIMARY KEY AUTOINCREMENT, name TEXT NOT NULL, salary INTEGER, bonus INTEGER, dept_oid INTEGER)`,
		`CREATE INDEX ie ON emp(dept_oid)`,
		`CREATE INDEX ic ON emp(dept_oid, salary)`,
		`CREATE ORDERED INDEX io ON emp(name)`,
		`CREATE ORDERED INDEX ib ON emp(bonus)`,
		`INSERT INTO dept (name, budget) VALUES ('Eng', 100), ('Sales', 50), ('Empty', 10), ('Ops', NULL)`,
		`INSERT INTO emp (name, salary, bonus, dept_oid) VALUES
			('ann', 30, 5, 1), ('bob', 20, NULL, 1), ('cat', 25, 2, 2),
			('dan', 20, 1, NULL), ('eve', 20, 3, 2), ('fay', 45, NULL, 1),
			('gus', 25, 0, 3), ('hal', 30, 2, 1)`,
	}
	for _, s := range setup {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	return db
}

// diffCorpus covers every physical operator the planner can emit:
// point lookups on each key kind, composite prefixes with and without a
// trailing range, ordered walks in both directions, all join strategies,
// aggregation, DISTINCT, LIMIT pushdown, and the empty-result column
// quirks. It doubles as the fuzzer's seed corpus.
var diffCorpus = []struct {
	sql  string
	args []Value
}{
	{`SELECT name, salary FROM emp WHERE oid = 1`, nil},
	{`SELECT name FROM emp WHERE oid = 99`, nil},
	{`SELECT name FROM emp WHERE dept_oid = 1 ORDER BY name`, nil},
	{`SELECT name FROM emp WHERE dept_oid = ? AND salary = ?`, []Value{1, 20}},
	{`SELECT name FROM emp WHERE dept_oid = 1 AND salary > 18 AND salary < 40`, nil},
	{`SELECT name FROM emp WHERE dept_oid = 2 AND salary >= 20 AND salary <= 25 ORDER BY salary`, nil},
	{`SELECT salary FROM emp WHERE dept_oid = 1 ORDER BY salary`, nil},
	{`SELECT salary FROM emp WHERE dept_oid = 1 ORDER BY salary DESC`, nil},
	{`SELECT name FROM emp ORDER BY name`, nil},
	{`SELECT name FROM emp ORDER BY name DESC`, nil},
	{`SELECT name FROM emp WHERE name > 'c' ORDER BY name`, nil},
	{`SELECT name FROM emp WHERE name >= 'bob' AND name < 'f' ORDER BY name DESC`, nil},
	{`SELECT name FROM emp WHERE bonus > 1 ORDER BY bonus`, nil},
	{`SELECT name FROM emp WHERE bonus IS NULL ORDER BY name`, nil},
	{`SELECT name, bonus FROM emp ORDER BY bonus, name`, nil},
	{`SELECT * FROM emp WHERE FALSE`, nil},
	{`SELECT * FROM emp LIMIT 0`, nil},
	{`SELECT * FROM emp ORDER BY oid LIMIT 3`, nil},
	{`SELECT e.* FROM emp e WHERE e.salary = 999`, nil},
	{`SELECT name FROM emp LIMIT 3`, nil},
	{`SELECT name FROM emp LIMIT 3 OFFSET 2`, nil},
	{`SELECT name FROM emp ORDER BY salary DESC, name LIMIT 4 OFFSET 1`, nil},
	{`SELECT DISTINCT salary FROM emp ORDER BY salary`, nil},
	{`SELECT DISTINCT dept_oid FROM emp`, nil},
	{`SELECT DISTINCT salary FROM emp LIMIT 2`, nil},
	{`SELECT e.name, d.name FROM emp e JOIN dept d ON d.oid = e.dept_oid ORDER BY e.name`, nil},
	{`SELECT e.name, d.name FROM emp e LEFT JOIN dept d ON d.oid = e.dept_oid ORDER BY e.name`, nil},
	{`SELECT d.name, e.name FROM dept d LEFT JOIN emp e ON e.dept_oid = d.oid ORDER BY d.name, e.name`, nil},
	{`SELECT a.name, b.name FROM emp a JOIN emp b ON b.dept_oid = a.dept_oid WHERE a.oid < b.oid ORDER BY a.name, b.name`, nil},
	{`SELECT e.name, d.name, m.name FROM emp e JOIN dept d ON d.oid = e.dept_oid JOIN emp m ON m.oid = e.oid ORDER BY e.name`, nil},
	{`SELECT e.name FROM emp e JOIN dept d ON d.budget > e.salary ORDER BY e.name`, nil},
	{`SELECT d.name, COUNT(e.oid), SUM(e.salary) FROM dept d LEFT JOIN emp e ON e.dept_oid = d.oid GROUP BY d.name ORDER BY d.name`, nil},
	{`SELECT dept_oid, COUNT(*) AS n FROM emp WHERE dept_oid IS NOT NULL GROUP BY dept_oid ORDER BY n DESC, dept_oid`, nil},
	{`SELECT dept_oid, AVG(salary) FROM emp GROUP BY dept_oid HAVING COUNT(*) > 1 ORDER BY dept_oid`, nil},
	{`SELECT COUNT(*), COUNT(bonus), MIN(salary), MAX(salary), SUM(bonus) FROM emp`, nil},
	{`SELECT COUNT(*) FROM emp WHERE dept_oid = 1 AND salary = 30`, nil},
	{`SELECT name FROM emp WHERE salary IN (20, 25) ORDER BY name`, nil},
	{`SELECT name FROM emp WHERE salary NOT IN (?, ?) ORDER BY name`, []Value{20, 30}},
	{`SELECT name FROM emp WHERE salary BETWEEN 21 AND 29 ORDER BY name`, nil},
	{`SELECT name FROM emp WHERE name LIKE '%a%' ORDER BY name`, nil},
	{`SELECT name FROM emp WHERE NOT name LIKE '_a%' ORDER BY name`, nil},
	{`SELECT name FROM emp WHERE salary = 30 OR salary = 25 AND bonus = 2 ORDER BY name`, nil},
	{`SELECT salary + bonus * 2, name + '!' FROM emp ORDER BY oid`, nil},
	{`SELECT COALESCE(bonus, -1) FROM emp ORDER BY oid`, nil},
	{`SELECT UPPER(name) FROM emp WHERE LOWER(name) = 'ann'`, nil},
	{`SELECT salary * ? FROM emp WHERE oid = ?`, []Value{2, 1}},
	{`SELECT name AS n FROM emp ORDER BY n DESC LIMIT 2`, nil},
	{`SELECT ghost FROM emp`, nil},
	{`SELECT name FROM emp WHERE ghost = 1`, nil},
	{`SELECT e.name FROM emp e ORDER BY d.name`, nil},
}

func rowsExact(r *Rows) string {
	var b strings.Builder
	for _, row := range r.Data {
		for j, v := range row {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(FormatValue(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func rowsMultiset(r *Rows) string {
	lines := make([]string, 0, len(r.Data))
	for _, row := range r.Data {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = FormatValue(v)
		}
		lines = append(lines, strings.Join(cells, ","))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// compareEngines runs sql through both engines and reports any
// divergence. Both engines erroring counts as agreement (the texts must
// match too — compiled thunks reproduce interpreter errors verbatim).
func compareEngines(t testing.TB, db *DB, sql string, args []Value) {
	t.Helper()
	got, gotErr := db.Query(sql, args...)
	want, wantErr := db.QueryInterpreted(sql, args...)
	if (gotErr != nil) != (wantErr != nil) {
		t.Fatalf("%s:\ncompiled err:    %v\ninterpreted err: %v", sql, gotErr, wantErr)
	}
	if gotErr != nil {
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("%s:\ncompiled err:    %v\ninterpreted err: %v", sql, gotErr, wantErr)
		}
		return
	}
	if strings.Join(got.Columns, "\x00") != strings.Join(want.Columns, "\x00") {
		t.Fatalf("%s: columns differ:\ncompiled    %v\ninterpreted %v", sql, got.Columns, want.Columns)
	}
	if hasOrderBy(sql) {
		if rowsExact(got) != rowsExact(want) {
			t.Fatalf("%s: row sequence differs:\ncompiled:\n%s\ninterpreted:\n%s", sql, rowsExact(got), rowsExact(want))
		}
	} else if rowsMultiset(got) != rowsMultiset(want) {
		t.Fatalf("%s: row multiset differs:\ncompiled:\n%s\ninterpreted:\n%s", sql, rowsMultiset(got), rowsMultiset(want))
	}
}

func hasOrderBy(sql string) bool {
	return strings.Contains(strings.ToUpper(sql), "ORDER BY")
}

func TestDifferentialCompiledVsInterpreted(t *testing.T) {
	db := diffFixture(t)
	for _, c := range diffCorpus {
		c := c
		t.Run(c.sql, func(t *testing.T) {
			compareEngines(t, db, c.sql, c.args)
		})
	}
}

// compareDBs runs the same query on two databases built from the same
// statements and demands identical output (or identical errors) —
// exact sequence under ORDER BY, multiset equality otherwise.
func compareDBs(t testing.TB, label string, a, b *DB, sql string, args []Value) {
	t.Helper()
	got, gotErr := b.Query(sql, args...)
	want, wantErr := a.Query(sql, args...)
	if (gotErr != nil) != (wantErr != nil) {
		t.Fatalf("%s: %s:\n%s err: %v\nmemory err: %v", label, sql, label, gotErr, wantErr)
	}
	if gotErr != nil {
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("%s: %s:\n%s err: %v\nmemory err: %v", label, sql, label, gotErr, wantErr)
		}
		return
	}
	if strings.Join(got.Columns, "\x00") != strings.Join(want.Columns, "\x00") {
		t.Fatalf("%s: %s: columns differ: %v vs %v", label, sql, got.Columns, want.Columns)
	}
	if hasOrderBy(sql) {
		if rowsExact(got) != rowsExact(want) {
			t.Fatalf("%s: %s: row sequence differs:\n%s:\n%s\nmemory:\n%s", label, sql, label, rowsExact(got), rowsExact(want))
		}
	} else if rowsMultiset(got) != rowsMultiset(want) {
		t.Fatalf("%s: %s: row multiset differs:\n%s:\n%s\nmemory:\n%s", label, sql, label, rowsMultiset(got), rowsMultiset(want))
	}
}

// TestDifferentialDurableEngine runs the full corpus three ways on a
// durable-engine database: compiled vs interpreted on the durable DB,
// durable vs in-memory byte-for-byte, and both again after a
// close/reopen recovery cycle. Compiled plans must execute unchanged
// on either engine.
func TestDifferentialDurableEngine(t *testing.T) {
	mem := diffFixture(t)
	dir := t.TempDir()
	dur, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	diffSeed(t, dur)
	for _, c := range diffCorpus {
		compareEngines(t, dur, c.sql, c.args)
		compareDBs(t, "durable", mem, dur, c.sql, c.args)
	}
	dur = reopen(t, dur, dir)
	defer dur.Close()
	for _, c := range diffCorpus {
		compareEngines(t, dur, c.sql, c.args)
		compareDBs(t, "recovered", mem, dur, c.sql, c.args)
	}
}

// TestDifferentialUnderMutation interleaves writes with queries so plans
// built against one table state are revalidated and re-executed against
// another — the cache-staleness path the pure corpus never exercises.
func TestDifferentialUnderMutation(t *testing.T) {
	db := diffFixture(t)
	probes := []string{
		`SELECT name FROM emp WHERE dept_oid = 1 ORDER BY salary`,
		`SELECT name FROM emp ORDER BY name DESC`,
		`SELECT COUNT(*) FROM emp WHERE salary > 21`,
	}
	for round := 0; round < 6; round++ {
		for _, sql := range probes {
			compareEngines(t, db, sql, nil)
		}
		if _, err := db.Exec(`INSERT INTO emp (name, salary, bonus, dept_oid) VALUES (?, ?, ?, ?)`,
			"w"+string(rune('a'+round)), 18+round*3, round, int64(1+round%3)); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec(`UPDATE emp SET salary = salary + 1 WHERE oid = ?`, int64(round+1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec(`DELETE FROM emp WHERE bonus IS NULL`); err != nil {
		t.Fatal(err)
	}
	for _, sql := range probes {
		compareEngines(t, db, sql, nil)
	}
}

var (
	fuzzDBOnce sync.Once
	fuzzDB     *DB
)

// FuzzPlannerVsInterp feeds arbitrary SQL through both engines. Parse
// failures and non-SELECTs are skipped; data-dependent evaluation errors
// that only one engine hits (LIMIT pushdown stops before a bad row the
// interpreter still materializes) are tolerated, everything else must
// agree exactly.
func FuzzPlannerVsInterp(f *testing.F) {
	for _, c := range diffCorpus {
		f.Add(c.sql)
	}
	f.Add(`SELECT name FROM emp WHERE salary > 'x'`)
	f.Add(`SELECT 1 / (bonus - bonus) FROM emp LIMIT 1`)
	f.Fuzz(func(t *testing.T, sql string) {
		fuzzDBOnce.Do(func() { fuzzDB = diffFixture(t) })
		db := fuzzDB
		st, err := ParseStatement(sql)
		if err != nil {
			t.Skip()
		}
		sel, ok := st.(*SelectStmt)
		if !ok {
			t.Skip()
		}
		args := make([]Value, countParams(sel))
		for i := range args {
			args[i] = int64(i + 1)
		}
		got, gotErr := db.Query(sql, args...)
		want, wantErr := db.QueryInterpreted(sql, args...)
		if gotErr != nil && wantErr != nil {
			return
		}
		if (gotErr != nil) != (wantErr != nil) {
			err := gotErr
			if err == nil {
				err = wantErr
			}
			if tolerableDivergence(err) {
				t.Skip()
			}
			t.Fatalf("%q:\ncompiled err:    %v\ninterpreted err: %v", sql, gotErr, wantErr)
		}
		if strings.Join(got.Columns, "\x00") != strings.Join(want.Columns, "\x00") {
			t.Fatalf("%q: columns differ: %v vs %v", sql, got.Columns, want.Columns)
		}
		if hasOrderBy(sql) {
			if rowsExact(got) != rowsExact(want) {
				t.Fatalf("%q: row sequence differs:\ncompiled:\n%s\ninterpreted:\n%s", sql, rowsExact(got), rowsExact(want))
			}
		} else if rowsMultiset(got) != rowsMultiset(want) {
			t.Fatalf("%q: row multiset differs:\ncompiled:\n%s\ninterpreted:\n%s", sql, rowsMultiset(got), rowsMultiset(want))
		}
	})
}

// tolerableDivergence reports whether a one-sided error is an accepted
// artifact of LIMIT pushdown: the compiled plan stops at the limit while
// the interpreter materializes every row first, so a data-dependent
// evaluation error past the limit surfaces in only one engine.
func tolerableDivergence(err error) bool {
	s := err.Error()
	for _, sub := range []string{
		"cannot compare", "LIKE requires", "not numeric",
		"cannot negate", "division by zero",
	} {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}
