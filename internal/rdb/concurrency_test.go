package rdb

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentQueryExecTx hammers the engine from concurrent readers,
// writers and transactions under -race: the page service now computes
// units of one topological level in parallel, so SELECTs must be safe
// against each other and against concurrent Exec/Begin.
func TestConcurrentQueryExecTx(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE kv (oid INTEGER PRIMARY KEY, k TEXT, n INTEGER)`)
	for i := 0; i < 32; i++ {
		mustExec(t, db, `INSERT INTO kv (oid, k, n) VALUES (?, ?, ?)`, int64(i+1), fmt.Sprintf("k%02d", i), int64(i))
	}

	var wg sync.WaitGroup
	// Readers: point lookups and scans.
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				rows, err := db.Query(`SELECT k, n FROM kv WHERE k = ?`, fmt.Sprintf("k%02d", i%32))
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if rows.Len() > 1 {
					t.Errorf("duplicate key rows: %d", rows.Len())
					return
				}
				if _, err := db.Query(`SELECT COUNT(*) AS c FROM kv WHERE n >= 0`); err != nil {
					t.Errorf("scan: %v", err)
					return
				}
			}
		}(r)
	}
	// Writer: updates in place.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if _, err := db.Exec(`UPDATE kv SET n = ? WHERE k = ?`, int64(i), fmt.Sprintf("k%02d", i%32)); err != nil {
				t.Errorf("update: %v", err)
				return
			}
		}
	}()
	// Transactions: insert + rollback, insert + commit.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			tx := db.Begin()
			if _, err := tx.Exec(`INSERT INTO kv (oid, k, n) VALUES (?, ?, ?)`, int64(1000+i), fmt.Sprintf("tx%03d", i), int64(i)); err != nil {
				t.Errorf("tx insert: %v", err)
				tx.Rollback()
				return
			}
			if i%2 == 0 {
				tx.Rollback()
			} else if err := tx.Commit(); err != nil {
				t.Errorf("commit: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	res, err := db.Query(`SELECT COUNT(*) AS c FROM kv`)
	if err != nil {
		t.Fatal(err)
	}
	// 32 base rows + 25 committed tx rows.
	if got := res.Data[0][0]; got != int64(57) {
		t.Fatalf("row count = %v, want 57", got)
	}
}
