package rdb

import (
	"fmt"
	"strings"
)

// Explain describes the access plan of a SELECT statement without
// executing it: the access path of the base table (primary key, unique
// column, secondary index, or full scan) and the strategy of each join
// (indexed equi-join or nested loop). The data expert overriding a
// descriptor query (Section 6) uses it to check that the hand-tuned SQL
// actually hits an index.
func (db *DB) Explain(sql string) (string, error) {
	st, err := db.prepare(sql)
	if err != nil {
		return "", err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return "", fmt.Errorf("rdb: EXPLAIN supports only SELECT, got %T", st)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()

	base, ok := db.tables[strings.ToLower(sel.From.Table)]
	if !ok {
		return "", fmt.Errorf("rdb: no such table %q", sel.From.Table)
	}
	var b strings.Builder
	baseName := sel.From.name()
	if col, _, found := indexableEquality(sel.Where, base, baseName, len(sel.Joins) > 0); found {
		fmt.Fprintf(&b, "ACCESS %s BY %s ON %s", sel.From.Table, accessKind(base, col), col)
	} else if col, _, _, found := rangeConjuncts(sel.Where, base, baseName, len(sel.Joins) > 0, nil); found {
		fmt.Fprintf(&b, "ACCESS %s BY RANGE ON %s", sel.From.Table, col)
	} else {
		fmt.Fprintf(&b, "SCAN %s (%d rows)", sel.From.Table, base.alive)
	}
	for _, j := range sel.Joins {
		jt, ok := db.tables[strings.ToLower(j.Table.Table)]
		if !ok {
			return "", fmt.Errorf("rdb: no such table %q", j.Table.Table)
		}
		kind := "INNER"
		if j.Left {
			kind = "LEFT"
		}
		if col, _ := equiJoinKey(j.On, jt, j.Table.name()); col != "" {
			fmt.Fprintf(&b, "\n%s JOIN %s BY %s ON %s", kind, j.Table.Table, accessKind(jt, col), col)
		} else {
			fmt.Fprintf(&b, "\n%s JOIN %s BY NESTED LOOP (%d rows)", kind, j.Table.Table, jt.alive)
		}
	}
	if len(sel.GroupBy) > 0 {
		fmt.Fprintf(&b, "\nGROUP BY %d keys", len(sel.GroupBy))
	}
	if len(sel.OrderBy) > 0 {
		fmt.Fprintf(&b, "\nSORT %d keys", len(sel.OrderBy))
	}
	if sel.Limit != nil {
		b.WriteString("\nLIMIT")
	}
	return b.String(), nil
}

func accessKind(t *table, col string) string {
	lower := strings.ToLower(col)
	i, ok := t.colIdx[lower]
	if ok && i == t.pk {
		return "PRIMARY KEY"
	}
	if _, ok := t.uniques[lower]; ok {
		return "UNIQUE"
	}
	if _, ok := t.indexes[lower]; ok {
		return "INDEX"
	}
	return "SCAN"
}
