package rdb

import (
	"fmt"
	"strings"
)

// Explain renders the compiled physical plan of a SELECT statement
// without executing it: the chosen access path of the base table with
// its cost estimate, the strategy of each join, and whether ORDER BY is
// satisfied by index order or needs a sort. The data expert overriding
// a descriptor query (Section 6) uses it to check that the hand-tuned
// SQL actually hits an index. The output reflects the exact plan Query
// executes — both go through planFor — and the trailing PLAN: line
// says whether that plan was served from the plan cache or compiled by
// this call. ExplainAnalyze (analyze.go) is the executing variant with
// per-operator actuals.
func (db *DB) Explain(sql string) (string, error) {
	st, err := db.prepare(sql)
	if err != nil {
		return "", err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return "", fmt.Errorf("rdb: EXPLAIN supports only SELECT, got %T", st)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	p, hit, err := db.planForCached(sql, sel)
	if err != nil {
		return "", err
	}
	return renderPlan(p, sel, nil) + planCacheLine(hit), nil
}

// accessKind names the point access path available on a column, in
// display precedence: primary key, unique column, hash index, scan.
func accessKind(t *table, col string) string {
	lower := strings.ToLower(col)
	i, ok := t.colIdx[lower]
	if ok && i == t.pk {
		return "PRIMARY KEY"
	}
	if _, ok := t.uniques[lower]; ok {
		return "UNIQUE"
	}
	if _, ok := t.indexes[lower]; ok {
		return "INDEX"
	}
	return "SCAN"
}
