package rdb

import (
	"fmt"
	"strings"
)

// Explain renders the compiled physical plan of a SELECT statement
// without executing it: the chosen access path of the base table with
// its cost estimate, the strategy of each join, and whether ORDER BY is
// satisfied by index order or needs a sort. The data expert overriding
// a descriptor query (Section 6) uses it to check that the hand-tuned
// SQL actually hits an index. The output reflects the exact plan Query
// executes — both go through planFor.
func (db *DB) Explain(sql string) (string, error) {
	st, err := db.prepare(sql)
	if err != nil {
		return "", err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return "", fmt.Errorf("rdb: EXPLAIN supports only SELECT, got %T", st)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	p, err := db.planFor(sql, sel)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	a := &p.access
	switch a.kind {
	case accessScan:
		fmt.Fprintf(&b, "SCAN %s (%d rows)", p.baseTable, p.base.alive)
	case accessRange:
		if a.orderWalk {
			fmt.Fprintf(&b, "ACCESS %s BY ORDERED INDEX ON %s (est %.0f rows)", p.baseTable, a.col, a.est)
		} else {
			fmt.Fprintf(&b, "ACCESS %s BY RANGE ON %s (est %.0f rows)", p.baseTable, a.col, a.est)
		}
	case accessComposite:
		fmt.Fprintf(&b, "ACCESS %s BY COMPOSITE INDEX %s (%s) eq prefix %d",
			p.baseTable, a.comp.name, strings.Join(a.comp.colNames, ", "), len(a.eq))
		if a.rangeCol != "" {
			fmt.Fprintf(&b, ", range on %s", a.rangeCol)
		}
		fmt.Fprintf(&b, " (est %.0f rows)", a.est)
	default:
		fmt.Fprintf(&b, "ACCESS %s BY %s ON %s (est %.0f rows)", p.baseTable, a.label, a.col, a.est)
	}
	for i := range p.joins {
		j := &p.joins[i]
		kind := "INNER"
		if j.left {
			kind = "LEFT"
		}
		if j.kind == jkLoop {
			fmt.Fprintf(&b, "\n%s JOIN %s BY NESTED LOOP (%d rows)", kind, j.displayTable, j.estRows)
		} else {
			fmt.Fprintf(&b, "\n%s JOIN %s BY %s ON %s", kind, j.displayTable, j.label, j.col)
		}
	}
	if len(sel.GroupBy) > 0 {
		fmt.Fprintf(&b, "\nGROUP BY %d keys", len(sel.GroupBy))
	}
	if len(sel.OrderBy) > 0 {
		if p.sortElim {
			fmt.Fprintf(&b, "\nORDER BY INDEX (sort eliminated, %d keys)", len(sel.OrderBy))
		} else {
			fmt.Fprintf(&b, "\nSORT %d keys", len(sel.OrderBy))
		}
	}
	if sel.Limit != nil {
		b.WriteString("\nLIMIT")
	}
	return b.String(), nil
}

// accessKind names the point access path available on a column, in
// display precedence: primary key, unique column, hash index, scan.
func accessKind(t *table, col string) string {
	lower := strings.ToLower(col)
	i, ok := t.colIdx[lower]
	if ok && i == t.pk {
		return "PRIMARY KEY"
	}
	if _, ok := t.uniques[lower]; ok {
		return "UNIQUE"
	}
	if _, ok := t.indexes[lower]; ok {
		return "INDEX"
	}
	return "SCAN"
}
