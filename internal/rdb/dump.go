package rdb

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"time"
)

// This file implements whole-database snapshots: Dump serializes the
// schema, rows, auto-increment state and index definitions; Restore
// rebuilds an equivalent database. Snapshots give the embedded engine
// restart persistence (the paper's data tier is an external DBMS; an
// embedded engine needs its own durability story).

type dumpColumn struct {
	Name          string
	Type          ColType
	PrimaryKey    bool
	AutoIncrement bool
	NotNull       bool
	Unique        bool
}

type dumpComposite struct {
	Name string
	Cols []string
}

type dumpTable struct {
	Name    string
	Columns []dumpColumn
	FKs     []ForeignKeyDef
	Indexes []string // hash-indexed column names
	Ordered []string // ordered-indexed column names
	// Composite lists multi-column sorted indexes. The field is additive:
	// gob ignores it when absent, so snapshots from before it existed
	// still restore (and Version stays 1).
	Composite []dumpComposite
	AutoInc   int64
	Rows      []Row
}

type dumpFile struct {
	Version int
	Tables  []dumpTable
}

func init() {
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register(false)
	gob.Register(time.Time{})
}

// Dump writes a consistent snapshot of the database to w. It holds the
// read lock for the duration, so concurrent writers wait.
func (db *DB) Dump(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()

	names := make([]string, 0, len(db.tables))
	for name := range db.tables {
		names = append(names, name)
	}
	sort.Strings(names)

	f := dumpFile{Version: 1}
	for _, name := range names {
		t := db.tables[name]
		dt := dumpTable{Name: t.name, AutoInc: t.autoInc, FKs: t.fks}
		for _, c := range t.cols {
			dt.Columns = append(dt.Columns, dumpColumn{
				Name: c.def.Name, Type: c.def.Type,
				PrimaryKey: c.def.PrimaryKey, AutoIncrement: c.def.AutoIncrement,
				NotNull: c.def.NotNull, Unique: c.def.Unique,
			})
		}
		for col := range t.indexes {
			dt.Indexes = append(dt.Indexes, col)
		}
		sort.Strings(dt.Indexes)
		for col := range t.ordered {
			dt.Ordered = append(dt.Ordered, col)
		}
		sort.Strings(dt.Ordered)
		for _, ix := range t.composites {
			dt.Composite = append(dt.Composite, dumpComposite{
				Name: ix.name, Cols: append([]string(nil), ix.colNames...),
			})
		}
		for _, r := range t.rows {
			if r == nil {
				continue
			}
			row := make(Row, len(r))
			copy(row, r)
			dt.Rows = append(dt.Rows, row)
		}
		f.Tables = append(f.Tables, dt)
	}
	if err := gob.NewEncoder(w).Encode(&f); err != nil {
		return fmt.Errorf("rdb: dump: %w", err)
	}
	return nil
}

// Restore reads a snapshot produced by Dump into a fresh database.
func Restore(r io.Reader) (*DB, error) {
	var f dumpFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("rdb: restore: %w", err)
	}
	if f.Version != 1 {
		return nil, fmt.Errorf("rdb: restore: unsupported snapshot version %d", f.Version)
	}
	db := Open()
	// Two passes: create all tables without FK enforcement concerns by
	// building them directly, then load rows (FK targets may be restored
	// in any order, and the snapshot is internally consistent).
	for _, dt := range f.Tables {
		st := &CreateTableStmt{Name: dt.Name}
		for _, c := range dt.Columns {
			st.Columns = append(st.Columns, ColumnDef{
				Name: c.Name, Type: c.Type,
				PrimaryKey: c.PrimaryKey, AutoIncrement: c.AutoIncrement,
				NotNull: c.NotNull, Unique: c.Unique,
			})
		}
		st.ForeignKeys = dt.FKs
		t, err := newTable(st)
		if err != nil {
			return nil, fmt.Errorf("rdb: restore table %q: %w", dt.Name, err)
		}
		db.tables[lowerKey(dt.Name)] = t
	}
	for _, dt := range f.Tables {
		t := db.tables[lowerKey(dt.Name)]
		for _, idx := range dt.Indexes {
			if err := t.createIndex(idx); err != nil {
				return nil, fmt.Errorf("rdb: restore index on %s.%s: %w", dt.Name, idx, err)
			}
		}
		for _, idx := range dt.Ordered {
			if err := t.createOrderedIndex(idx); err != nil {
				return nil, fmt.Errorf("rdb: restore ordered index on %s.%s: %w", dt.Name, idx, err)
			}
		}
		for _, ci := range dt.Composite {
			if err := t.createCompositeIndex(ci.Name, ci.Cols); err != nil {
				return nil, fmt.Errorf("rdb: restore composite index %s on %s: %w", ci.Name, dt.Name, err)
			}
		}
		for _, row := range dt.Rows {
			if len(row) != len(t.cols) {
				return nil, fmt.Errorf("rdb: restore: row arity mismatch in %q", dt.Name)
			}
			if _, err := t.insert(row); err != nil {
				return nil, fmt.Errorf("rdb: restore row into %q: %w", dt.Name, err)
			}
		}
		t.autoInc = dt.AutoInc
	}
	return db, nil
}

func lowerKey(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
