package rdb

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// This file implements whole-database snapshots: Dump serializes the
// schema, rows, auto-increment state and index definitions; Restore
// rebuilds an equivalent database. Snapshots give the embedded engine
// restart persistence (the paper's data tier is an external DBMS; an
// embedded engine needs its own durability story).

type dumpColumn struct {
	Name          string
	Type          ColType
	PrimaryKey    bool
	AutoIncrement bool
	NotNull       bool
	Unique        bool
}

type dumpComposite struct {
	Name string
	Cols []string
}

type dumpTable struct {
	Name    string
	Columns []dumpColumn
	FKs     []ForeignKeyDef
	Indexes []string // hash-indexed column names
	Ordered []string // ordered-indexed column names
	// Composite lists multi-column sorted indexes. The field is additive:
	// gob ignores it when absent, so snapshots from before it existed
	// still restore (and Version stays 1).
	Composite []dumpComposite
	AutoInc   int64
	Rows      []Row
}

type dumpFile struct {
	Version int
	Tables  []dumpTable
}

// dumpChunk is one bounded batch of rows in a version-2 stream. A
// chunk with an empty Table name terminates the stream.
type dumpChunk struct {
	Table string
	Rows  []Row
}

// dumpChunkRows bounds how many rows travel in one chunk — and, under
// a paging engine, how many faulted rows are materialized at once on
// either side of the stream.
const dumpChunkRows = 256

func init() {
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register(false)
	gob.Register(time.Time{})
}

// Dump writes a consistent snapshot of the database to w. It holds the
// read lock for the duration, so concurrent writers wait. The stream
// is a version-2 header (schema, index definitions, auto-increment
// state, no rows) followed by bounded row chunks: evicted rows fault
// in through the storage engine one chunk at a time, so dumping a
// larger-than-RAM database never materializes a full table.
func (db *DB) Dump(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()

	names := make([]string, 0, len(db.tables))
	for name := range db.tables {
		names = append(names, name)
	}
	sort.Strings(names)

	f := dumpFile{Version: 2}
	for _, name := range names {
		t := db.tables[name]
		dt := dumpTable{Name: t.name, AutoInc: t.autoInc, FKs: t.fks}
		for _, c := range t.cols {
			dt.Columns = append(dt.Columns, dumpColumn{
				Name: c.def.Name, Type: c.def.Type,
				PrimaryKey: c.def.PrimaryKey, AutoIncrement: c.def.AutoIncrement,
				NotNull: c.def.NotNull, Unique: c.def.Unique,
			})
		}
		for col := range t.indexes {
			dt.Indexes = append(dt.Indexes, col)
		}
		sort.Strings(dt.Indexes)
		for col := range t.ordered {
			dt.Ordered = append(dt.Ordered, col)
		}
		sort.Strings(dt.Ordered)
		for _, ix := range t.composites {
			dt.Composite = append(dt.Composite, dumpComposite{
				Name: ix.name, Cols: append([]string(nil), ix.colNames...),
			})
		}
		f.Tables = append(f.Tables, dt)
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(&f); err != nil {
		return fmt.Errorf("rdb: dump: %w", err)
	}
	for _, name := range names {
		t := db.tables[name]
		chunk := dumpChunk{Table: t.name}
		for id := range t.rows {
			r := t.rowAt(id)
			if r == nil {
				continue
			}
			row := make(Row, len(r))
			copy(row, r)
			chunk.Rows = append(chunk.Rows, row)
			if len(chunk.Rows) == dumpChunkRows {
				if err := enc.Encode(&chunk); err != nil {
					return fmt.Errorf("rdb: dump: %w", err)
				}
				chunk.Rows = nil
			}
		}
		if len(chunk.Rows) > 0 {
			if err := enc.Encode(&chunk); err != nil {
				return fmt.Errorf("rdb: dump: %w", err)
			}
		}
	}
	if err := enc.Encode(&dumpChunk{}); err != nil {
		return fmt.Errorf("rdb: dump: %w", err)
	}
	return nil
}

// Restore reads a snapshot produced by Dump into a fresh in-memory
// database.
func Restore(r io.Reader) (*DB, error) {
	db := Open()
	if err := db.LoadDump(r); err != nil {
		return nil, err
	}
	return db, nil
}

// LoadDump replays a snapshot produced by Dump into db, which must be
// empty. Everything flows through the storage engine as committed
// change-sets: under a durable engine it lands in the WAL like any
// other commit and is crash-safe by the time LoadDump returns. A
// version-1 snapshot (rows inline) restores as a single change-set; a
// version-2 stream commits the schema first and then each bounded row
// chunk separately, so restoring a larger-than-RAM snapshot under a
// paging engine never holds the whole database in memory (the
// engine's eviction sweep runs between chunk commits). On error the
// database is in an undefined partial state and must be discarded.
func (db *DB) LoadDump(r io.Reader) error {
	dec := gob.NewDecoder(r)
	var f dumpFile
	if err := dec.Decode(&f); err != nil {
		return fmt.Errorf("rdb: restore: %w", err)
	}
	if f.Version != 1 && f.Version != 2 {
		return fmt.Errorf("rdb: restore: unsupported snapshot version %d", f.Version)
	}
	ordered, err := topoTables(f.Tables)
	if err != nil {
		return err
	}
	cs := &ChangeSet{}
	db.mu.Lock()
	if len(db.tables) != 0 {
		db.mu.Unlock()
		return fmt.Errorf("rdb: restore: database is not empty")
	}
	if err := db.loadDumpLocked(ordered, cs); err != nil {
		db.mu.Unlock()
		return err
	}
	wait, err := db.applyLocked(cs)
	db.mu.Unlock()
	if err != nil {
		return err
	}
	if wait != nil {
		if err := wait(); err != nil {
			return err
		}
	}
	if f.Version == 1 {
		return nil
	}
	for {
		var ch dumpChunk
		if err := dec.Decode(&ch); err != nil {
			return fmt.Errorf("rdb: restore: %w", err)
		}
		if ch.Table == "" {
			return nil
		}
		if err := db.loadChunk(&ch); err != nil {
			return err
		}
	}
}

// loadChunk commits one row chunk of a version-2 stream. Rows bypass
// execInsert: the snapshot is internally consistent, so per-row
// foreign-key checks would only forbid row orderings Dump is free to
// produce.
func (db *DB) loadChunk(ch *dumpChunk) error {
	cs := &ChangeSet{}
	key := lowerKey(ch.Table)
	db.mu.Lock()
	t := db.tables[key]
	if t == nil {
		db.mu.Unlock()
		return fmt.Errorf("rdb: restore: chunk for unknown table %q", ch.Table)
	}
	for _, row := range ch.Rows {
		if len(row) != len(t.cols) {
			db.mu.Unlock()
			return fmt.Errorf("rdb: restore: row arity mismatch in %q", ch.Table)
		}
		id, err := t.insert(row)
		if err != nil {
			db.mu.Unlock()
			return fmt.Errorf("rdb: restore row into %q: %w", ch.Table, err)
		}
		cs.add(ChangeOp{Kind: OpInsert, Table: key, RowID: id, Row: row})
	}
	wait, err := db.applyLocked(cs)
	db.mu.Unlock()
	if err != nil {
		return err
	}
	if wait != nil {
		return wait()
	}
	return nil
}

func (db *DB) loadDumpLocked(tables []dumpTable, cs *ChangeSet) error {
	exec := func(sql string) error {
		st, err := ParseStatement(sql)
		if err != nil {
			return fmt.Errorf("rdb: restore DDL %q: %w", sql, err)
		}
		if _, err := db.execLocked(sql, st, nil, nil, cs); err != nil {
			return fmt.Errorf("rdb: restore DDL %q: %w", sql, err)
		}
		return nil
	}
	for _, dt := range tables {
		cols := make([]ColumnDef, len(dt.Columns))
		for i, c := range dt.Columns {
			cols[i] = ColumnDef{
				Name: c.Name, Type: c.Type,
				PrimaryKey: c.PrimaryKey, AutoIncrement: c.AutoIncrement,
				NotNull: c.NotNull, Unique: c.Unique,
			}
		}
		if err := exec(renderCreateTableSQL(dt.Name, cols, dt.FKs)); err != nil {
			return err
		}
		key := lowerKey(dt.Name)
		for _, col := range dt.Indexes {
			if err := exec(fmt.Sprintf("CREATE INDEX ix_%s_%s ON %s (%s)", key, col, dt.Name, col)); err != nil {
				return err
			}
		}
		for _, col := range dt.Ordered {
			if err := exec(fmt.Sprintf("CREATE ORDERED INDEX ord_%s_%s ON %s (%s)", key, col, dt.Name, col)); err != nil {
				return err
			}
		}
		for _, ci := range dt.Composite {
			if err := exec(fmt.Sprintf("CREATE INDEX %s ON %s (%s)", ci.Name, dt.Name, strings.Join(ci.Cols, ", "))); err != nil {
				return err
			}
		}
		// Rows bypass execInsert: the snapshot is internally consistent,
		// so per-row foreign-key checks would only forbid row orderings
		// Dump is free to produce.
		t := db.tables[key]
		for _, row := range dt.Rows {
			if len(row) != len(t.cols) {
				return fmt.Errorf("rdb: restore: row arity mismatch in %q", dt.Name)
			}
			id, err := t.insert(row)
			if err != nil {
				return fmt.Errorf("rdb: restore row into %q: %w", dt.Name, err)
			}
			cs.add(ChangeOp{Kind: OpInsert, Table: key, RowID: id, Row: row})
		}
		t.autoInc = dt.AutoInc
		cs.add(ChangeOp{Kind: OpAutoInc, Table: key, AutoInc: dt.AutoInc})
	}
	return nil
}

// topoTables orders dumped tables so every foreign-key target is
// created before its referrer (Dump stores them alphabetically, which
// CREATE TABLE's reference check may reject). Self-references are
// fine; cross-table cycles cannot have been created through DDL.
func topoTables(tables []dumpTable) ([]dumpTable, error) {
	byName := make(map[string]int, len(tables))
	for i, dt := range tables {
		byName[lowerKey(dt.Name)] = i
	}
	deps := make([][]int, len(tables)) // deps[i] -> tables waiting on i
	indeg := make([]int, len(tables))
	for i, dt := range tables {
		seen := make(map[int]bool)
		for _, fk := range dt.FKs {
			j, ok := byName[lowerKey(fk.RefTable)]
			if !ok || j == i || seen[j] {
				continue
			}
			seen[j] = true
			deps[j] = append(deps[j], i)
			indeg[i]++
		}
	}
	queue := make([]int, 0, len(tables))
	for i := range tables {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	out := make([]dumpTable, 0, len(tables))
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		out = append(out, tables[i])
		for _, j := range deps[i] {
			if indeg[j]--; indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if len(out) != len(tables) {
		return nil, fmt.Errorf("rdb: restore: foreign-key cycle across tables")
	}
	return out, nil
}

func lowerKey(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
