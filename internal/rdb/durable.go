package rdb

import (
	"bytes"
	"container/list"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"webmlgo/internal/rdb/storage/pager"
	"webmlgo/internal/rdb/storage/wal"
)

// The durable engine pairs a write-ahead log with a page-backed B-tree
// (internal/rdb/storage). The executor still runs entirely against the
// in-memory tables — the engine shadows every committed change-set:
//
//	commit:  mutate tables  ->  Apply: append WAL frame + write through
//	         (under db.mu)       to the B-tree's buffer pool
//	         unlock          ->  wait(): group-commit fsync of the WAL
//
// Three mechanisms let the working set exceed RAM:
//
//   - Anti-caching: when a resident-row budget is set, Apply sweeps cold
//     rows out of their table slots, leaving one-word eviction markers.
//     Index structures stay fully resident; only tuple payloads page
//     out, faulting back through a small row cache and the buffer pool.
//   - Persisted index images: every secondary index also writes a
//     projected key image into the tree under its own id, so recovery
//     rebuilds index structures from the (small) images and registers
//     data records as markers — it never decodes full rows.
//   - Incremental checkpoints: dirty pages are flushed in place and the
//     meta page flips between two slots, so checkpoint cost follows the
//     write rate, not the database size.
//
// Rows are keyed by (tableID, recID): tables with an INTEGER primary
// key derive recID from the key itself (order-preserving sign flip),
// other tables draw from a per-table counter persisted in the catalog.
// Snapshot reads resolve evicted records against a version retention
// buffer: Apply pushes each overwritten image, keyed by the commit that
// replaced it, and drops entries once no open snapshot can need them.

// Filenames inside a durable database directory.
const (
	pagesFileName = "pages.db"
	walFileName   = "wal.log"
)

// defaultCheckpointBytes is the WAL size that triggers an automatic
// checkpoint during Apply.
const defaultCheckpointBytes = 8 << 20

// defaultRowCacheRows bounds the decoded-row cache when no resident-row
// budget is configured.
const defaultRowCacheRows = 4096

// DurableOptions tune OpenDurable. Zero values select defaults.
type DurableOptions struct {
	// CheckpointBytes is the WAL length that triggers an automatic
	// checkpoint (default 8 MiB).
	CheckpointBytes int64
	// PoolPages is the buffer-pool capacity in 4 KiB pages (default
	// 2048, i.e. 8 MiB).
	PoolPages int
	// ResidentRows, when positive, bounds the number of materialized
	// rows across all tables: each commit sweeps cold rows down to
	// eviction markers that fault back through the buffer pool on
	// access. Zero keeps every row resident (markers still appear
	// after recovery, which always starts paged-out).
	ResidentRows int
}

// catIndex is one persisted index image in the catalog: the tree id its
// projected keys live under and enough shape to rebuild the in-memory
// structure without touching data rows.
type catIndex struct {
	IdxID uint32
	Kind  string // "pk" | "unique" | "hash" | "ordered" | "composite"
	Name  string // composite index name; empty otherwise
	Cols  []string
}

// catTable is one table's entry in the persisted catalog. Schema is
// carried as replayable SQL so the catalog can never diverge from what
// the parser accepts.
type catTable struct {
	Name      string // lower-cased map key
	CreateSQL string
	IndexSQL  []string
	TableID   uint32
	IntPK     bool
	NextRec   uint64
	AutoInc   int64
	Indexes   []catIndex
}

// catalogFile is the blob stored in the page file at each checkpoint.
// Tables appear in creation order so foreign-key references replay
// cleanly. Version 2 added persisted index images; version-1 files
// (no Indexes) recover through the legacy full-scan path and upgrade
// at their next checkpoint.
type catalogFile struct {
	Version     int
	NextTableID uint32
	Tables      []catTable
}

func encodeCatalog(cf *catalogFile) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cf); err != nil {
		return nil, fmt.Errorf("rdb: encode catalog: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeCatalog(b []byte) (*catalogFile, error) {
	var cf catalogFile
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&cf); err != nil {
		return nil, fmt.Errorf("rdb: decode catalog: %w", err)
	}
	if cf.Version < 1 || cf.Version > 2 {
		return nil, fmt.Errorf("rdb: unsupported catalog version %d", cf.Version)
	}
	return &cf, nil
}

// engIndex is the engine's registration of one persisted index image.
type engIndex struct {
	id       uint32
	kind     string // "pk" | "unique" | "hash" | "ordered" | "composite"
	name     string // composite name; empty otherwise
	cols     []int  // column positions, parallel to colNames
	colNames []string
}

// engTable is the engine's per-table bookkeeping.
type engTable struct {
	id    uint32
	intPK bool
	pkCol int // column index of the INTEGER primary key, -1 otherwise
	// nextRec and recOf serve tables without an INTEGER primary key:
	// records get synthetic ids from the counter, and recOf remembers
	// the id behind each in-memory row slot for updates and deletes.
	nextRec uint64
	recOf   map[int]uint64
	// images are the persisted index projections written alongside
	// every data record.
	images []*engIndex
}

// pkRecID maps an int64 primary key onto the record-id space with its
// sign bit flipped, so unsigned key order equals signed value order.
func pkRecID(pk int64) uint64 { return uint64(pk) ^ (1 << 63) }

// recIDPK inverts pkRecID.
func recIDPK(rec uint64) int64 { return int64(rec ^ (1 << 63)) }

// cacheKey addresses one decoded row in the row cache.
type cacheKey struct {
	tid uint32
	rec uint64
}

type cacheEnt struct {
	k   cacheKey
	row Row
}

// rowCache is a small LRU of decoded rows in front of the page tree:
// faulting an evicted row costs a map hit instead of a tree descent
// plus decode when the row is hot. Only live fetches populate it (they
// run under at least db.mu.RLock, which excludes Apply's invalidation);
// snapshot fetches may read but never insert, so a stale pre-invalidate
// read can never be re-inserted after Apply cleared it.
type rowCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[cacheKey]*list.Element
}

func newRowCache(capacity int) *rowCache {
	if capacity <= 0 {
		capacity = defaultRowCacheRows
	}
	return &rowCache{cap: capacity, ll: list.New(), m: make(map[cacheKey]*list.Element)}
}

func (c *rowCache) get(tid uint32, rec uint64) (Row, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[cacheKey{tid, rec}]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEnt).row, true
}

func (c *rowCache) put(tid uint32, rec uint64, row Row) {
	k := cacheKey{tid, rec}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		el.Value.(*cacheEnt).row = row
		c.ll.MoveToFront(el)
		return
	}
	c.m[k] = c.ll.PushFront(&cacheEnt{k: k, row: row})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*cacheEnt).k)
	}
}

func (c *rowCache) invalidate(tid uint32, rec uint64) {
	k := cacheKey{tid, rec}
	c.mu.Lock()
	if el, ok := c.m[k]; ok {
		c.ll.Remove(el)
		delete(c.m, k)
	}
	c.mu.Unlock()
}

func (c *rowCache) dropTable(tid uint32) {
	c.mu.Lock()
	for k, el := range c.m {
		if k.tid == tid {
			c.ll.Remove(el)
			delete(c.m, k)
		}
	}
	c.mu.Unlock()
}

// retKey addresses one record's retained version chain.
type retKey struct {
	tid uint32
	rec uint64
}

// retEntry is one retained version: row was the record's image before
// the commit numbered until (nil row: the record did not exist). A
// chain is appended in ascending until order, so the first entry with
// until > snapSeq is the image a snapshot at snapSeq must see.
type retEntry struct {
	until uint64
	row   Row
}

// durableEngine implements Engine over a WAL and a page store. All
// methods except the wait functions returned by Apply, RegisterSnapshot
// and fetchRow run with db.mu held exclusively (Stats with at least the
// read lock). fetchRow may run with no database lock at all (snapshot
// reads), so tree access is guarded by treeMu and version visibility by
// the retention buffer.
type durableEngine struct {
	db    *DB
	dir   string
	pages string
	log   *wal.Log
	store *pager.Store

	// treeMu guards the page tree: Apply, checkpoints and DDL hold it
	// exclusively; lock-free snapshot faults hold it shared.
	treeMu sync.RWMutex
	cache  *rowCache

	// retMu guards the version retention buffer and the snapshot
	// registry.
	retMu sync.Mutex
	ret   map[retKey][]retEntry
	snaps map[uint64]int // registered snapshot sequence -> refcount

	tables      map[string]*engTable
	order       []string // creation order, for catalog replay
	nextTableID uint32
	lastSeq     atomic.Uint64

	residentRows int
	poolPages    int
	sweepCur     map[string]int // round-robin eviction cursor per table
	rowFaults    atomic.Uint64
	rowsEvicted  atomic.Uint64

	ckptBytes   int64
	checkpoints uint64
	recovered   uint64
	torn        int64

	err error // sticky: once durability is in doubt, every commit fails
}

func (e *durableEngine) Name() string { return "durable" }

func (e *durableEngine) fail(err error) error {
	if e.err == nil {
		e.err = err
	}
	return err
}

// retain pushes one overwritten image onto the retention chain. Pushes
// happen before the tree write they shadow, so a snapshot fault that
// reads the tree after the overwrite always finds the entry.
func (e *durableEngine) retain(tid uint32, rec, until uint64, row Row) {
	k := retKey{tid, rec}
	e.retMu.Lock()
	e.ret[k] = append(e.ret[k], retEntry{until: until, row: row})
	e.retMu.Unlock()
}

// retained resolves a record at snapshot sequence snapSeq against the
// retention buffer. hit=false means the live image is also the image at
// snapSeq; hit=true with a nil row means the record did not exist.
func (e *durableEngine) retained(tid uint32, rec, snapSeq uint64) (Row, bool) {
	k := retKey{tid, rec}
	e.retMu.Lock()
	defer e.retMu.Unlock()
	for _, ent := range e.ret[k] {
		if ent.until > snapSeq {
			return ent.row, true
		}
	}
	return nil, false
}

// gcRetention drops retained versions no open snapshot can need. The
// floor is the oldest registered snapshot sequence (or the current
// commit when none is open): a snapshot registered at R observes a head
// with seq >= R-1, so it only needs entries with until >= R — strictly
// older ones are garbage.
func (e *durableEngine) gcRetention(seq uint64) {
	e.retMu.Lock()
	floor := seq
	for r := range e.snaps {
		if r < floor {
			floor = r
		}
	}
	for k, ents := range e.ret {
		i := 0
		for i < len(ents) && ents[i].until < floor {
			i++
		}
		if i == len(ents) {
			delete(e.ret, k)
		} else if i > 0 {
			e.ret[k] = append([]retEntry(nil), ents[i:]...)
		}
	}
	e.retMu.Unlock()
}

// RegisterSnapshot pins row versions for a snapshot (mvcc.go). The
// sequence is read under retMu so registration cannot interleave with
// a concurrent gcRetention's floor computation.
func (e *durableEngine) RegisterSnapshot() (uint64, func()) {
	e.retMu.Lock()
	r := e.lastSeq.Load()
	e.snaps[r]++
	e.retMu.Unlock()
	var once sync.Once
	return r, func() {
		once.Do(func() {
			e.retMu.Lock()
			if n := e.snaps[r] - 1; n <= 0 {
				delete(e.snaps, r)
			} else {
				e.snaps[r] = n
			}
			e.retMu.Unlock()
		})
	}
}

// fetchRow materializes one record, serving live reads (snapSeq ==
// liveSeq) from the row cache or the tree and snapshot reads through
// the retention buffer. The retention check runs after the cache/tree
// read: Apply pushes the retained image before overwriting the tree,
// so whichever side of the overwrite this read lands on, the visible
// image at snapSeq is recovered.
func (e *durableEngine) fetchRow(et *engTable, rec, snapSeq uint64) (Row, bool) {
	live := snapSeq == liveSeq
	if row, ok := e.cache.get(et.id, rec); ok {
		if !live {
			if r, hit := e.retained(et.id, rec, snapSeq); hit {
				return r, r != nil
			}
		}
		return row, true
	}
	start := time.Now()
	e.treeMu.RLock()
	data, found, err := e.store.Tree().Get(pager.MakeKey(et.id, rec))
	e.treeMu.RUnlock()
	e.rowFaults.Add(1)
	e.db.observeFault(time.Since(start))
	if !live {
		if r, hit := e.retained(et.id, rec, snapSeq); hit {
			return r, r != nil
		}
	}
	if err != nil || !found {
		return nil, false
	}
	row, derr := decodeRow(data)
	if derr != nil {
		return nil, false
	}
	if live {
		e.cache.put(et.id, rec, row)
	}
	return row, true
}

// writeImages writes the projected key image of row under every index
// image id. Images are keyed by record id, so updates overwrite in
// place and deletes need no old values.
func (e *durableEngine) writeImages(tree *pager.BTree, et *engTable, rec uint64, row Row) error {
	for _, img := range et.images {
		vals := make(Row, len(img.cols))
		for i, c := range img.cols {
			vals[i] = row[c]
		}
		data, err := encodeRow(vals)
		if err != nil {
			return err
		}
		if err := tree.Put(pager.MakeKey(img.id, rec), data); err != nil {
			return err
		}
	}
	return nil
}

// putRecord writes one record and its index images through the tree
// and invalidates the row cache.
func (e *durableEngine) putRecord(tree *pager.BTree, et *engTable, rec uint64, data []byte, row Row) error {
	if err := tree.Put(pager.MakeKey(et.id, rec), data); err != nil {
		return err
	}
	if err := e.writeImages(tree, et, rec, row); err != nil {
		return err
	}
	e.cache.invalidate(et.id, rec)
	return nil
}

// delRecord removes one record and its index images.
func (e *durableEngine) delRecord(tree *pager.BTree, et *engTable, rec uint64) error {
	if _, err := tree.Delete(pager.MakeKey(et.id, rec)); err != nil {
		return err
	}
	for _, img := range et.images {
		if _, err := tree.Delete(pager.MakeKey(img.id, rec)); err != nil {
			return err
		}
	}
	e.cache.invalidate(et.id, rec)
	return nil
}

// Apply lowers the change-set to record-id operations, appends one WAL
// frame, writes the rows through to the B-tree, and returns a wait
// function that group-commits the frame to disk. Overwritten images are
// pushed into the retention buffer first so concurrent snapshot faults
// stay consistent, and a resident-row budget triggers an eviction sweep
// after the write-through.
func (e *durableEngine) Apply(cs *ChangeSet) (func() error, error) {
	if e.err != nil {
		return nil, e.err
	}
	rec := walRecord{seq: cs.Seq}
	e.treeMu.Lock()
	err := e.lowerOps(cs, &rec)
	e.treeMu.Unlock()
	if err != nil {
		return nil, e.fail(err)
	}
	appendStart := time.Now()
	lsn, err := e.log.Append(encodeWALRecord(&rec))
	cs.WALAppend = time.Since(appendStart)
	if err != nil {
		return nil, e.fail(err)
	}
	e.lastSeq.Store(cs.Seq)
	e.gcRetention(cs.Seq)
	e.sweep()
	// Two checkpoint triggers: WAL growth (bounds replay time) and
	// dirty-page pressure (dirty frames are unevictable no-steal, so
	// left unchecked they would crowd the pool past its budget).
	size, serr := e.log.FileSize()
	dirty := e.store.PoolStats().Dirty
	if (serr == nil && size > e.ckptBytes) || dirty > e.poolPages/2 {
		// The checkpoint absorbs this change-set (and flushes the WAL),
		// so the wait below returns immediately.
		ckptStart := time.Now()
		err := e.Checkpoint()
		cs.Checkpoint = time.Since(ckptStart)
		if err != nil {
			return nil, err
		}
	}
	log := e.log
	return func() error { return log.Sync(lsn) }, nil
}

// lowerOps translates ChangeOps to tree writes and WAL ops. The caller
// holds treeMu exclusively.
func (e *durableEngine) lowerOps(cs *ChangeSet, rec *walRecord) error {
	tree := e.store.Tree()
	for _, op := range cs.Ops {
		switch op.Kind {
		case OpDDL:
			if err := e.applyDDL(op.SQL, cs.Seq); err != nil {
				return err
			}
			rec.ops = append(rec.ops, walOp{kind: wopDDL, sql: op.SQL})
		case OpInsert, OpUpdate:
			et := e.tables[op.Table]
			if et == nil {
				return fmt.Errorf("rdb: durable: unknown table %q", op.Table)
			}
			var recID uint64
			if et.intPK {
				pk, ok := op.Row[et.pkCol].(int64)
				if !ok {
					return fmt.Errorf("rdb: durable: non-integer key in %q", op.Table)
				}
				recID = pkRecID(pk)
				switch {
				case op.Kind == OpInsert:
					e.retain(et.id, recID, cs.Seq, nil)
				default:
					oldPK, ok := op.OldRow[et.pkCol].(int64)
					if ok && oldPK != pk {
						// A key change moves the record: delete the old id.
						oldRec := pkRecID(oldPK)
						e.retain(et.id, oldRec, cs.Seq, op.OldRow)
						e.retain(et.id, recID, cs.Seq, nil)
						if err := e.delRecord(tree, et, oldRec); err != nil {
							return err
						}
						rec.ops = append(rec.ops, walOp{kind: wopDel, table: op.Table, recID: oldRec})
					} else {
						e.retain(et.id, recID, cs.Seq, op.OldRow)
					}
				}
			} else if op.Kind == OpInsert {
				recID = et.nextRec
				et.nextRec++
				et.recOf[op.RowID] = recID
				e.retain(et.id, recID, cs.Seq, nil)
			} else {
				var ok bool
				recID, ok = et.recOf[op.RowID]
				if !ok {
					return fmt.Errorf("rdb: durable: no record id for row %d of %q", op.RowID, op.Table)
				}
				e.retain(et.id, recID, cs.Seq, op.OldRow)
			}
			data, err := encodeRow(op.Row)
			if err != nil {
				return err
			}
			if err := e.putRecord(tree, et, recID, data, op.Row); err != nil {
				return err
			}
			rec.ops = append(rec.ops, walOp{kind: wopPut, table: op.Table, recID: recID, rowData: data})
		case OpDelete:
			et := e.tables[op.Table]
			if et == nil {
				return fmt.Errorf("rdb: durable: unknown table %q", op.Table)
			}
			var recID uint64
			if et.intPK {
				pk, ok := op.OldRow[et.pkCol].(int64)
				if !ok {
					return fmt.Errorf("rdb: durable: non-integer key in %q", op.Table)
				}
				recID = pkRecID(pk)
			} else {
				var ok bool
				recID, ok = et.recOf[op.RowID]
				if !ok {
					return fmt.Errorf("rdb: durable: no record id for row %d of %q", op.RowID, op.Table)
				}
				delete(et.recOf, op.RowID)
			}
			e.retain(et.id, recID, cs.Seq, op.OldRow)
			if err := e.delRecord(tree, et, recID); err != nil {
				return err
			}
			rec.ops = append(rec.ops, walOp{kind: wopDel, table: op.Table, recID: recID})
		case OpAutoInc:
			rec.ops = append(rec.ops, walOp{kind: wopAutoInc, table: op.Table, autoInc: op.AutoInc})
		}
	}
	return nil
}

// sweep enforces the resident-row budget: when materialized rows exceed
// it, cold slots collapse to eviction markers. Cursors advance
// round-robin per table so eviction pressure rotates instead of
// thrashing one region. Runs after the change-set's write-through, so
// every evicted row is faultable from the tree.
func (e *durableEngine) sweep() {
	if e.residentRows <= 0 {
		return
	}
	total := 0
	for _, key := range e.order {
		if t := e.db.tables[key]; t != nil {
			total += t.resident
		}
	}
	if total <= e.residentRows {
		return
	}
	for _, key := range e.order {
		if total <= e.residentRows {
			break
		}
		t := e.db.tables[key]
		et := e.tables[key]
		if t == nil || et == nil || t.resident == 0 {
			continue
		}
		cur := e.sweepCur[key]
		n := len(t.rows)
		for scanned := 0; scanned < n && total > e.residentRows && t.resident > 0; scanned++ {
			if cur >= n {
				cur = 0
			}
			id := cur
			cur++
			r := t.rows[id]
			if r == nil {
				continue
			}
			if _, evicted := evictedRec(r); evicted {
				continue
			}
			var rec uint64
			if et.intPK {
				pk, ok := r[et.pkCol].(int64)
				if !ok {
					continue
				}
				rec = pkRecID(pk)
			} else {
				var ok bool
				rec, ok = et.recOf[id]
				if !ok {
					continue
				}
			}
			t.evictSlot(id, rec)
			e.rowsEvicted.Add(1)
			total--
		}
		e.sweepCur[key] = cur
	}
}

// allocImage registers one index image for et, drawing its tree id from
// the shared table-id space.
func (e *durableEngine) allocImage(et *engTable, t *table, kind, name string, colNames []string) *engIndex {
	img := &engIndex{id: e.nextTableID, kind: kind, name: name, colNames: colNames}
	e.nextTableID++
	for _, cn := range colNames {
		img.cols = append(img.cols, t.colIdx[cn])
	}
	et.images = append(et.images, img)
	return img
}

// backfillImage writes img's projection of every existing record. The
// scan collects first and writes after: inserting into the tree while
// iterating it is not safe.
func (e *durableEngine) backfillImage(et *engTable, img *engIndex) error {
	tree := e.store.Tree()
	lo, hi := pager.TableBounds(et.id)
	type ent struct {
		rec  uint64
		data []byte
	}
	var ents []ent
	err := tree.Scan(lo, hi, func(k pager.Key, v []byte) error {
		row, err := decodeRow(v)
		if err != nil {
			return err
		}
		vals := make(Row, len(img.cols))
		for i, c := range img.cols {
			vals[i] = row[c]
		}
		data, err := encodeRow(vals)
		if err != nil {
			return err
		}
		ents = append(ents, ent{rec: k.RecID(), data: data})
		return nil
	})
	if err != nil {
		return err
	}
	for _, en := range ents {
		if err := tree.Put(pager.MakeKey(img.id, en.rec), en.data); err != nil {
			return err
		}
	}
	return nil
}

// applyDDL maintains the engine's table and image registries alongside
// a schema change that has already been applied to the in-memory
// tables. CREATE INDEX allocates and backfills a persisted image; DROP
// TABLE retains every dropped image for open snapshots before deleting
// the records.
func (e *durableEngine) applyDDL(sql string, seq uint64) error {
	st, err := ParseStatement(sql)
	if err != nil {
		return fmt.Errorf("rdb: durable: replay DDL: %w", err)
	}
	switch x := st.(type) {
	case *CreateTableStmt:
		key := lowerKey(x.Name)
		if _, dup := e.tables[key]; dup {
			return nil
		}
		et := &engTable{id: e.nextTableID, pkCol: -1, nextRec: 1}
		e.nextTableID++
		t := e.db.tables[key]
		if t != nil && t.pk >= 0 && t.cols[t.pk].def.Type == TInt {
			et.intPK = true
			et.pkCol = t.pk
		} else {
			et.recOf = make(map[int]uint64)
		}
		e.tables[key] = et
		e.order = append(e.order, key)
		if t != nil {
			// Wire the paging hook: evicted slots fault back through the
			// engine; frozen views inherit the closure with their own
			// snapshot sequence.
			t.fetch = func(rec, snapSeq uint64) (Row, bool) { return e.fetchRow(et, rec, snapSeq) }
			t.pkByRec = et.intPK
			t.snapSeq = liveSeq
			// Persist what marker-only recovery cannot rederive from
			// record ids: primary keys of synthetic-id tables and UNIQUE
			// column values.
			if t.pk >= 0 && !et.intPK {
				e.allocImage(et, t, "pk", "", []string{strings.ToLower(t.cols[t.pk].def.Name)})
			}
			uniq := make([]string, 0, len(t.uniques))
			for col := range t.uniques {
				uniq = append(uniq, col)
			}
			sort.Strings(uniq)
			for _, col := range uniq {
				e.allocImage(et, t, "unique", "", []string{col})
			}
		}
	case *DropTableStmt:
		key := lowerKey(x.Name)
		et := e.tables[key]
		if et == nil {
			return nil
		}
		tree := e.store.Tree()
		lo, hi := pager.TableBounds(et.id)
		type doomed struct {
			k   pager.Key
			row Row
		}
		var main []doomed
		if err := tree.Scan(lo, hi, func(k pager.Key, v []byte) error {
			row, err := decodeRow(v)
			if err != nil {
				return err
			}
			main = append(main, doomed{k: k, row: row})
			return nil
		}); err != nil {
			return err
		}
		for _, d := range main {
			e.retain(et.id, d.k.RecID(), seq, d.row)
			if _, err := tree.Delete(d.k); err != nil {
				return err
			}
		}
		for _, img := range et.images {
			ilo, ihi := pager.TableBounds(img.id)
			var keys []pager.Key
			if err := tree.ScanKeys(ilo, ihi, func(k pager.Key) error {
				keys = append(keys, k)
				return nil
			}); err != nil {
				return err
			}
			for _, k := range keys {
				if _, err := tree.Delete(k); err != nil {
					return err
				}
			}
		}
		e.cache.dropTable(et.id)
		delete(e.tables, key)
		delete(e.sweepCur, key)
		for i, name := range e.order {
			if name == key {
				e.order = append(e.order[:i], e.order[i+1:]...)
				break
			}
		}
	case *CreateIndexStmt:
		key := lowerKey(x.Table)
		et := e.tables[key]
		t := e.db.tables[key]
		if et == nil || t == nil {
			return nil
		}
		colNames := make([]string, len(x.Columns))
		for i, cn := range x.Columns {
			colNames[i] = strings.ToLower(cn)
		}
		kind, name := "hash", ""
		if len(colNames) > 1 {
			kind, name = "composite", x.Name
		} else if x.Ordered {
			kind = "ordered"
		}
		for _, img := range et.images {
			if img.kind == kind && sameColumnList(img.colNames, colNames) {
				return nil // recreate is a no-op, like the in-memory side
			}
		}
		img := e.allocImage(et, t, kind, name, colNames)
		return e.backfillImage(et, img)
	}
	return nil
}

// renderCatalog serializes the schema and per-table engine state for
// the next checkpoint. It reads db.tables, which is safe: Checkpoint
// runs with the exclusive lock held.
func (e *durableEngine) renderCatalog() ([]byte, error) {
	cf := catalogFile{Version: 2, NextTableID: e.nextTableID}
	for _, key := range e.order {
		et := e.tables[key]
		t := e.db.tables[key]
		if et == nil || t == nil {
			return nil, fmt.Errorf("rdb: durable: catalog missing table %q", key)
		}
		ct := catTable{
			Name:      key,
			CreateSQL: renderCreateTable(t),
			IndexSQL:  renderIndexSQLs(t),
			TableID:   et.id,
			IntPK:     et.intPK,
			NextRec:   et.nextRec,
			AutoInc:   t.autoInc,
		}
		for _, img := range et.images {
			ct.Indexes = append(ct.Indexes, catIndex{
				IdxID: img.id, Kind: img.kind, Name: img.name,
				Cols: append([]string(nil), img.colNames...),
			})
		}
		cf.Tables = append(cf.Tables, ct)
	}
	return encodeCatalog(&cf)
}

// Checkpoint flushes dirty pages in place and flips the page file's
// meta slot, then truncates the WAL — cost proportional to the pages
// written since the last checkpoint, not to database size. Pending
// Sync waiters are satisfied by the flush Reset performs first.
func (e *durableEngine) Checkpoint() error {
	if e.err != nil {
		return e.err
	}
	catalog, err := e.renderCatalog()
	if err != nil {
		return e.fail(err)
	}
	e.treeMu.Lock()
	err = e.store.IncrementalCheckpoint(e.lastSeq.Load(), catalog)
	e.treeMu.Unlock()
	if err != nil {
		return e.fail(fmt.Errorf("rdb: checkpoint: %w", err))
	}
	if err := e.log.Reset(); err != nil {
		return e.fail(err)
	}
	e.checkpoints++
	return nil
}

func (e *durableEngine) Stats() EngineStats {
	ws := e.log.Stats()
	ps := e.store.PoolStats()
	resident := 0
	for _, t := range e.db.tables {
		resident += t.resident
	}
	return EngineStats{
		WALAppends:       ws.Appends,
		WALFsyncs:        ws.Fsyncs,
		WALBatches:       ws.Batches,
		WALBatchedRecs:   ws.BatchedRecords,
		WALBytes:         ws.Bytes,
		WALSize:          ws.Size,
		PoolHits:         ps.Hits,
		PoolMisses:       ps.Misses,
		PoolEvictions:    ps.Evictions,
		PoolResident:     ps.Resident,
		PoolDirty:        ps.Dirty,
		PoolPinned:       ps.Pinned,
		RowFaults:        e.rowFaults.Load(),
		RowsEvicted:      e.rowsEvicted.Load(),
		RowsResident:     resident,
		Checkpoints:      e.checkpoints,
		RecoveredRecords: e.recovered,
		TornBytes:        e.torn,
	}
}

// Close checkpoints (making the WAL empty for the next open) and
// releases both files. The sticky-error path skips the checkpoint: a
// doubtful engine must not overwrite a good page file.
func (e *durableEngine) Close() error {
	if e.err == nil {
		if err := e.Checkpoint(); err != nil {
			return err
		}
	}
	cerr := e.log.Close()
	if err := e.store.Close(); err != nil && cerr == nil {
		cerr = err
	}
	e.fail(errors.New("rdb: durable engine closed"))
	return cerr
}

// OpenDurable opens (or creates) a durable database rooted at dir and
// recovers it to the last committed state: catalog DDL replays first,
// then every record registers as an evicted marker (no row decode),
// index structures rebuild from their persisted images, and finally
// every WAL frame newer than the checkpoint replays.
func OpenDurable(dir string) (*DB, error) {
	return OpenDurableOpts(dir, DurableOptions{})
}

// OpenDurableOpts is OpenDurable with explicit tuning.
func OpenDurableOpts(dir string, opts DurableOptions) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("rdb: open durable: %w", err)
	}
	pagesPath := filepath.Join(dir, pagesFileName)
	if _, err := os.Stat(pagesPath); errors.Is(err, os.ErrNotExist) {
		empty, err := encodeCatalog(&catalogFile{Version: 2})
		if err != nil {
			return nil, err
		}
		err = pager.WriteCheckpoint(pagesPath, 0, empty, func(func(pager.Key, []byte) error) error {
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("rdb: init durable: %w", err)
		}
	} else if err != nil {
		return nil, fmt.Errorf("rdb: open durable: %w", err)
	}
	store, err := pager.Open(pagesPath, opts.PoolPages)
	if err != nil {
		return nil, err
	}
	log, frames, torn, err := wal.Open(filepath.Join(dir, walFileName))
	if err != nil {
		store.Close()
		return nil, err
	}
	db := Open()
	e := &durableEngine{
		db:           db,
		dir:          dir,
		pages:        pagesPath,
		log:          log,
		store:        store,
		cache:        newRowCache(opts.ResidentRows),
		ret:          make(map[retKey][]retEntry),
		snaps:        make(map[uint64]int),
		tables:       make(map[string]*engTable),
		residentRows: opts.ResidentRows,
		poolPages:    opts.PoolPages,
		sweepCur:     make(map[string]int),
		ckptBytes:    opts.CheckpointBytes,
		torn:         torn,
	}
	if e.ckptBytes <= 0 {
		e.ckptBytes = defaultCheckpointBytes
	}
	if e.poolPages <= 0 {
		e.poolPages = 2048 // pager's own default capacity
	}
	if err := e.recover(frames); err != nil {
		log.Close()
		store.Close()
		return nil, err
	}
	db.engine = e
	db.publishHead()
	return db, nil
}

// recover rebuilds the in-memory database from the page file and the
// WAL tail. It runs before the engine is attached, so the memory-side
// replay cannot recurse into Apply. Version-2 catalogs recover without
// decoding a single data row: records become eviction markers and
// index structures load from their persisted images.
func (e *durableEngine) recover(frames []wal.Record) error {
	blob, err := e.store.Catalog()
	if err != nil {
		return err
	}
	cf, err := decodeCatalog(blob)
	if err != nil {
		return err
	}
	e.nextTableID = cf.NextTableID
	db := e.db
	ckptSeq := e.store.Meta().CheckpointSeq
	// recovery-only reverse maps: recID -> in-memory row slot, for
	// tables without an INTEGER primary key.
	rev := make(map[string]map[uint64]int)

	for _, ct := range cf.Tables {
		if cf.Version >= 2 {
			err = e.recoverTableV2(ct, rev)
		} else {
			err = e.recoverTableV1(ct, rev)
		}
		if err != nil {
			return err
		}
	}
	// applyDDL above advanced nextTableID past every registration; the
	// persisted value wins only if it is larger (ids of dropped tables
	// must never be reused while their keys might linger in the WAL).
	if cf.NextTableID > e.nextTableID {
		e.nextTableID = cf.NextTableID
	}
	db.seq = ckptSeq

	for _, fr := range frames {
		rec, err := decodeWALRecord(fr.Payload)
		if err != nil {
			return err
		}
		if rec.seq <= ckptSeq {
			continue
		}
		if err := e.replayRecord(rec, rev); err != nil {
			return err
		}
		db.seq = rec.seq
		e.recovered++
	}
	// WAL replay wrote its rows through to the tree and materialized
	// them in table slots; evict them so every open ends marker-only,
	// regardless of how the previous process stopped. Queries fault the
	// hot set back on demand.
	for name, t := range db.tables {
		et := e.tables[name]
		if et == nil || t.resident == 0 {
			continue
		}
		for id, r := range t.rows {
			if r == nil {
				continue
			}
			if _, evicted := evictedRec(r); evicted {
				continue
			}
			var rec uint64
			if et.intPK {
				pk, ok := r[et.pkCol].(int64)
				if !ok {
					continue
				}
				rec = pkRecID(pk)
			} else if got, ok := et.recOf[id]; ok {
				rec = got
			} else {
				continue
			}
			t.evictSlot(id, rec)
		}
	}
	e.lastSeq.Store(db.seq)
	return nil
}

// recoverTableV2 restores one table from a version-2 catalog entry:
// schema DDL replays, every record registers as an eviction marker
// (key scan only), and index structures rebuild from their persisted
// images — no data row is decoded.
func (e *durableEngine) recoverTableV2(ct catTable, rev map[string]map[uint64]int) error {
	if err := e.replaySQL(ct.CreateSQL); err != nil {
		return err
	}
	et := e.tables[ct.Name]
	t := e.db.tables[ct.Name]
	if et == nil || t == nil {
		return fmt.Errorf("rdb: recover: catalog table %q did not replay", ct.Name)
	}
	et.id = ct.TableID
	et.nextRec = ct.NextRec
	if et.intPK != ct.IntPK {
		return fmt.Errorf("rdb: recover: key mode mismatch for %q", ct.Name)
	}
	// The CREATE TABLE replay allocated fresh image ids; the persisted
	// registrations win.
	et.images = nil
	for _, ci := range ct.Indexes {
		img := &engIndex{id: ci.IdxID, kind: ci.Kind, name: ci.Name, colNames: ci.Cols}
		for _, cn := range ci.Cols {
			c, ok := t.colIdx[cn]
			if !ok {
				return fmt.Errorf("rdb: recover: %s image on unknown column %q in %q", ci.Kind, cn, ct.Name)
			}
			img.cols = append(img.cols, c)
		}
		et.images = append(et.images, img)
	}
	var rv map[uint64]int
	if !et.intPK {
		rv = make(map[uint64]int)
		rev[ct.Name] = rv
	}
	lo, hi := pager.TableBounds(et.id)
	err := e.store.Tree().ScanKeys(lo, hi, func(k pager.Key) error {
		rec := k.RecID()
		id := len(t.rows)
		t.rows = append(t.rows, evictedRowMark(rec))
		t.alive++
		if et.intPK {
			t.pkMap[Value(recIDPK(rec))] = id
		} else {
			et.recOf[id] = rec
			rv[rec] = id
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, img := range et.images {
		if err := e.recoverImage(t, et, img, rv); err != nil {
			return err
		}
	}
	t.autoInc = ct.AutoInc
	return nil
}

// recoverImage rebuilds one in-memory index structure from its
// persisted projection. Sorted structures collect then sort (the image
// scan yields record order, not key order), mirroring how the live
// side builds them.
func (e *durableEngine) recoverImage(t *table, et *engTable, img *engIndex, rv map[uint64]int) error {
	idOf := func(rec uint64) (int, bool) {
		if et.intPK {
			id, ok := t.pkMap[Value(recIDPK(rec))]
			return id, ok
		}
		id, ok := rv[rec]
		return id, ok
	}
	lo, hi := pager.TableBounds(img.id)
	scan := func(fn func(id int, vals Row) error) error {
		return e.store.Tree().Scan(lo, hi, func(k pager.Key, v []byte) error {
			id, ok := idOf(k.RecID())
			if !ok {
				return fmt.Errorf("rdb: recover: %s image of %q references missing record %d", img.kind, t.name, k.RecID())
			}
			vals, err := decodeRow(v)
			if err != nil {
				return err
			}
			if len(vals) != len(img.cols) {
				return fmt.Errorf("rdb: recover: %s image arity mismatch in %q", img.kind, t.name)
			}
			return fn(id, vals)
		})
	}
	switch img.kind {
	case "pk":
		return scan(func(id int, vals Row) error {
			if vals[0] != nil {
				t.pkMap[vals[0]] = id
			}
			return nil
		})
	case "unique":
		u := t.uniques[img.colNames[0]]
		if u == nil {
			u = make(map[Value]int)
			t.uniques[img.colNames[0]] = u
		}
		return scan(func(id int, vals Row) error {
			if vals[0] != nil {
				u[vals[0]] = id
			}
			return nil
		})
	case "hash":
		idx := make(map[Value][]int)
		if err := scan(func(id int, vals Row) error {
			if vals[0] != nil {
				idx[vals[0]] = append(idx[vals[0]], id)
			}
			return nil
		}); err != nil {
			return err
		}
		t.indexes[img.colNames[0]] = idx
		return nil
	case "ordered":
		var ents []ordEntry
		if err := scan(func(id int, vals Row) error {
			if vals[0] != nil {
				ents = append(ents, ordEntry{val: vals[0], id: id})
			}
			return nil
		}); err != nil {
			return err
		}
		sort.SliceStable(ents, func(a, b int) bool {
			c, err := compareValues(ents[a].val, ents[b].val)
			if err != nil {
				return false
			}
			if c != 0 {
				return c < 0
			}
			return ents[a].id < ents[b].id
		})
		t.ordered[img.colNames[0]] = &orderedIndex{entries: ents}
		return nil
	case "composite":
		var ents []compEntry
		if err := scan(func(id int, vals Row) error {
			ents = append(ents, compEntry{key: []Value(vals), id: id})
			return nil
		}); err != nil {
			return err
		}
		sort.SliceStable(ents, func(a, b int) bool {
			if c := compareTuplePrefix(ents[a].key, ents[b].key, len(img.cols)); c != 0 {
				return c < 0
			}
			return ents[a].id < ents[b].id
		})
		t.composites = append(t.composites, &compositeIndex{
			name: img.name, colNames: img.colNames, cols: img.cols, entries: ents,
		})
		return nil
	}
	return fmt.Errorf("rdb: recover: unknown image kind %q", img.kind)
}

// recoverTableV1 restores one table from a legacy version-1 catalog
// entry: full tree scan, decode and insert of every row. Images are
// allocated and backfilled on the way so the next checkpoint writes a
// version-2 catalog and subsequent opens use marker recovery.
func (e *durableEngine) recoverTableV1(ct catTable, rev map[string]map[uint64]int) error {
	if err := e.replaySQL(ct.CreateSQL); err != nil {
		return err
	}
	et := e.tables[ct.Name]
	t := e.db.tables[ct.Name]
	if et == nil || t == nil {
		return fmt.Errorf("rdb: recover: catalog table %q did not replay", ct.Name)
	}
	et.id = ct.TableID
	et.nextRec = ct.NextRec
	if et.intPK != ct.IntPK {
		return fmt.Errorf("rdb: recover: key mode mismatch for %q", ct.Name)
	}
	// The CREATE TABLE replay allocated pk/unique images against an
	// empty table; the records live under the persisted table id, so
	// backfill them now that et.id is correct.
	for _, img := range et.images {
		if err := e.backfillImage(et, img); err != nil {
			return err
		}
	}
	// Index DDL after the id fix: applyDDL backfills each image from
	// the records under the persisted id.
	for _, sql := range ct.IndexSQL {
		if err := e.replaySQL(sql); err != nil {
			return err
		}
	}
	if !et.intPK {
		rev[ct.Name] = make(map[uint64]int)
	}
	lo, hi := pager.TableBounds(et.id)
	err := e.store.Tree().Scan(lo, hi, func(k pager.Key, v []byte) error {
		row, err := decodeRow(v)
		if err != nil {
			return err
		}
		if len(row) != len(t.cols) {
			return fmt.Errorf("rdb: recover: row arity mismatch in %q", ct.Name)
		}
		id, err := t.insert(row)
		if err != nil {
			return fmt.Errorf("rdb: recover %q: %w", ct.Name, err)
		}
		if !et.intPK {
			et.recOf[id] = k.RecID()
			rev[ct.Name][k.RecID()] = id
		}
		return nil
	})
	if err != nil {
		return err
	}
	t.autoInc = ct.AutoInc
	return nil
}

// replaySQL runs one DDL statement against the in-memory tables and
// the engine registry.
func (e *durableEngine) replaySQL(sql string) error {
	st, err := ParseStatement(sql)
	if err != nil {
		return fmt.Errorf("rdb: recover DDL %q: %w", sql, err)
	}
	if _, err := e.db.execLocked(sql, st, nil, nil, nil); err != nil {
		return fmt.Errorf("rdb: recover DDL %q: %w", sql, err)
	}
	return e.applyDDL(sql, 0)
}

// replayRecord applies one WAL record to both the in-memory tables and
// the B-tree (whose page file predates the record). The memory side
// goes first: updateRow and deleteRow fault the record's prior image
// through the tree, so the tree must still hold the old value.
func (e *durableEngine) replayRecord(rec *walRecord, rev map[string]map[uint64]int) error {
	tree := e.store.Tree()
	for _, op := range rec.ops {
		switch op.kind {
		case wopDDL:
			// A replayed CREATE TABLE starts synthetic ids at 1; later
			// wopPut replays keep the counter ahead of every logged id.
			if err := e.replaySQL(op.sql); err != nil {
				return err
			}
		case wopPut:
			et := e.tables[op.table]
			t := e.db.tables[op.table]
			if et == nil || t == nil {
				return fmt.Errorf("rdb: recover: put into unknown table %q", op.table)
			}
			row, err := decodeRow(op.rowData)
			if err != nil {
				return err
			}
			if et.intPK {
				if id, ok := t.pkMap[Value(recIDPK(op.recID))]; ok {
					if err := t.updateRow(id, row); err != nil {
						return fmt.Errorf("rdb: recover %q: %w", op.table, err)
					}
				} else if _, err := t.insert(row); err != nil {
					return fmt.Errorf("rdb: recover %q: %w", op.table, err)
				}
			} else {
				rv := rev[op.table]
				if rv == nil {
					rv = make(map[uint64]int)
					rev[op.table] = rv
				}
				if id, ok := rv[op.recID]; ok {
					if err := t.updateRow(id, row); err != nil {
						return fmt.Errorf("rdb: recover %q: %w", op.table, err)
					}
				} else {
					id, err := t.insert(row)
					if err != nil {
						return fmt.Errorf("rdb: recover %q: %w", op.table, err)
					}
					et.recOf[id] = op.recID
					rv[op.recID] = id
				}
				if op.recID >= et.nextRec {
					et.nextRec = op.recID + 1
				}
			}
			if err := e.putRecord(tree, et, op.recID, op.rowData, row); err != nil {
				return err
			}
		case wopDel:
			et := e.tables[op.table]
			t := e.db.tables[op.table]
			if et == nil || t == nil {
				return fmt.Errorf("rdb: recover: delete from unknown table %q", op.table)
			}
			if et.intPK {
				if id, ok := t.pkMap[Value(recIDPK(op.recID))]; ok {
					t.deleteRow(id)
				}
			} else if rv := rev[op.table]; rv != nil {
				if id, ok := rv[op.recID]; ok {
					t.deleteRow(id)
					delete(et.recOf, id)
					delete(rv, op.recID)
				}
			}
			if err := e.delRecord(tree, et, op.recID); err != nil {
				return err
			}
		case wopAutoInc:
			if t := e.db.tables[op.table]; t != nil {
				t.autoInc = op.autoInc
			}
		}
	}
	return nil
}

// renderCreateTable reproduces a CREATE TABLE statement for the
// runtime schema.
func renderCreateTable(t *table) string {
	cols := make([]ColumnDef, len(t.cols))
	for i, c := range t.cols {
		cols[i] = c.def
	}
	return renderCreateTableSQL(t.name, cols, t.fks)
}

// renderCreateTableSQL builds a CREATE TABLE statement in the exact
// dialect the parser accepts (shared by the durable catalog and the
// snapshot restore path).
func renderCreateTableSQL(name string, cols []ColumnDef, fks []ForeignKeyDef) string {
	var b strings.Builder
	b.WriteString("CREATE TABLE ")
	b.WriteString(name)
	b.WriteString(" (")
	for i, c := range cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
		if c.PrimaryKey {
			b.WriteString(" PRIMARY KEY")
		}
		if c.AutoIncrement {
			b.WriteString(" AUTOINCREMENT")
		}
		if c.NotNull {
			b.WriteString(" NOT NULL")
		}
		if c.Unique {
			b.WriteString(" UNIQUE")
		}
	}
	for _, fk := range fks {
		b.WriteString(", FOREIGN KEY (")
		b.WriteString(fk.Column)
		b.WriteString(") REFERENCES ")
		b.WriteString(fk.RefTable)
		b.WriteString("(")
		b.WriteString(fk.RefColumn)
		b.WriteString(")")
	}
	b.WriteString(")")
	return b.String()
}

// renderIndexSQLs reproduces the CREATE INDEX statements for every
// secondary index on t, in deterministic order. Hash and ordered
// indexes store only their column, so names are generated.
func renderIndexSQLs(t *table) []string {
	var out []string
	key := lowerKey(t.name)
	cols := make([]string, 0, len(t.indexes))
	for col := range t.indexes {
		cols = append(cols, col)
	}
	sort.Strings(cols)
	for _, col := range cols {
		out = append(out, fmt.Sprintf("CREATE INDEX ix_%s_%s ON %s (%s)", key, col, t.name, col))
	}
	cols = cols[:0]
	for col := range t.ordered {
		cols = append(cols, col)
	}
	sort.Strings(cols)
	for _, col := range cols {
		out = append(out, fmt.Sprintf("CREATE ORDERED INDEX ord_%s_%s ON %s (%s)", key, col, t.name, col))
	}
	for _, ix := range t.composites {
		out = append(out, fmt.Sprintf("CREATE INDEX %s ON %s (%s)", ix.name, t.name, strings.Join(ix.colNames, ", ")))
	}
	return out
}
