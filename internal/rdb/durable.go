package rdb

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"webmlgo/internal/rdb/storage/pager"
	"webmlgo/internal/rdb/storage/wal"
)

// The durable engine pairs a write-ahead log with a page-backed B-tree
// (internal/rdb/storage). The executor still runs entirely against the
// in-memory tables — the engine shadows every committed change-set:
//
//	commit:  mutate tables  ->  Apply: append WAL frame + write through
//	         (under db.mu)       to the B-tree's buffer pool
//	         unlock          ->  wait(): group-commit fsync of the WAL
//
// The page file is rewritten only at checkpoints (compacted bulk load,
// atomic rename), so it never contains torn pages; crash recovery is
// "open page file, replay WAL frames newer than its checkpoint". Rows
// are keyed by (tableID, recID): tables with an INTEGER primary key
// derive recID from the key itself (order-preserving sign flip), other
// tables draw from a per-table counter persisted in the catalog.

// Filenames inside a durable database directory.
const (
	pagesFileName = "pages.db"
	walFileName   = "wal.log"
)

// defaultCheckpointBytes is the WAL size that triggers an automatic
// checkpoint during Apply.
const defaultCheckpointBytes = 8 << 20

// DurableOptions tune OpenDurable. Zero values select defaults.
type DurableOptions struct {
	// CheckpointBytes is the WAL length that triggers an automatic
	// checkpoint (default 8 MiB).
	CheckpointBytes int64
	// PoolPages is the buffer-pool capacity in 4 KiB pages (default
	// 2048, i.e. 8 MiB).
	PoolPages int
}

// catTable is one table's entry in the persisted catalog. Schema is
// carried as replayable SQL so the catalog can never diverge from what
// the parser accepts.
type catTable struct {
	Name      string // lower-cased map key
	CreateSQL string
	IndexSQL  []string
	TableID   uint32
	IntPK     bool
	NextRec   uint64
	AutoInc   int64
}

// catalogFile is the blob stored in the page file at each checkpoint.
// Tables appear in creation order so foreign-key references replay
// cleanly.
type catalogFile struct {
	Version     int
	NextTableID uint32
	Tables      []catTable
}

func encodeCatalog(cf *catalogFile) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cf); err != nil {
		return nil, fmt.Errorf("rdb: encode catalog: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeCatalog(b []byte) (*catalogFile, error) {
	var cf catalogFile
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&cf); err != nil {
		return nil, fmt.Errorf("rdb: decode catalog: %w", err)
	}
	if cf.Version != 1 {
		return nil, fmt.Errorf("rdb: unsupported catalog version %d", cf.Version)
	}
	return &cf, nil
}

// engTable is the engine's per-table bookkeeping.
type engTable struct {
	id    uint32
	intPK bool
	pkCol int // column index of the INTEGER primary key, -1 otherwise
	// nextRec and recOf serve tables without an INTEGER primary key:
	// records get synthetic ids from the counter, and recOf remembers
	// the id behind each in-memory row slot for updates and deletes.
	nextRec uint64
	recOf   map[int]uint64
}

// pkRecID maps an int64 primary key onto the record-id space with its
// sign bit flipped, so unsigned key order equals signed value order.
func pkRecID(pk int64) uint64 { return uint64(pk) ^ (1 << 63) }

// recIDPK inverts pkRecID.
func recIDPK(rec uint64) int64 { return int64(rec ^ (1 << 63)) }

// durableEngine implements Engine over a WAL and a page store. All
// methods except the wait functions returned by Apply run with db.mu
// held exclusively (Stats with at least the read lock).
type durableEngine struct {
	db    *DB
	dir   string
	pages string
	log   *wal.Log
	store *pager.Store

	tables      map[string]*engTable
	order       []string // creation order, for catalog replay
	nextTableID uint32
	lastSeq     uint64

	ckptBytes   int64
	checkpoints uint64
	recovered   uint64
	torn        int64

	err error // sticky: once durability is in doubt, every commit fails
}

func (e *durableEngine) Name() string { return "durable" }

func (e *durableEngine) fail(err error) error {
	if e.err == nil {
		e.err = err
	}
	return err
}

// Apply lowers the change-set to record-id operations, appends one WAL
// frame, writes the rows through to the B-tree, and returns a wait
// function that group-commits the frame to disk.
func (e *durableEngine) Apply(cs *ChangeSet) (func() error, error) {
	if e.err != nil {
		return nil, e.err
	}
	rec := walRecord{seq: cs.Seq}
	tree := e.store.Tree()
	for _, op := range cs.Ops {
		switch op.Kind {
		case OpDDL:
			if err := e.applyDDL(op.SQL); err != nil {
				return nil, e.fail(err)
			}
			rec.ops = append(rec.ops, walOp{kind: wopDDL, sql: op.SQL})
		case OpInsert, OpUpdate:
			et := e.tables[op.Table]
			if et == nil {
				return nil, e.fail(fmt.Errorf("rdb: durable: unknown table %q", op.Table))
			}
			var recID uint64
			if et.intPK {
				pk, ok := op.Row[et.pkCol].(int64)
				if !ok {
					return nil, e.fail(fmt.Errorf("rdb: durable: non-integer key in %q", op.Table))
				}
				recID = pkRecID(pk)
				if op.Kind == OpUpdate {
					// A key change moves the record: delete the old id.
					if oldPK, ok := op.OldRow[et.pkCol].(int64); ok && oldPK != pk {
						if _, err := tree.Delete(pager.MakeKey(et.id, pkRecID(oldPK))); err != nil {
							return nil, e.fail(err)
						}
						rec.ops = append(rec.ops, walOp{kind: wopDel, table: op.Table, recID: pkRecID(oldPK)})
					}
				}
			} else if op.Kind == OpInsert {
				recID = et.nextRec
				et.nextRec++
				et.recOf[op.RowID] = recID
			} else {
				var ok bool
				recID, ok = et.recOf[op.RowID]
				if !ok {
					return nil, e.fail(fmt.Errorf("rdb: durable: no record id for row %d of %q", op.RowID, op.Table))
				}
			}
			data, err := encodeRow(op.Row)
			if err != nil {
				return nil, e.fail(err)
			}
			if err := tree.Put(pager.MakeKey(et.id, recID), data); err != nil {
				return nil, e.fail(err)
			}
			rec.ops = append(rec.ops, walOp{kind: wopPut, table: op.Table, recID: recID, rowData: data})
		case OpDelete:
			et := e.tables[op.Table]
			if et == nil {
				return nil, e.fail(fmt.Errorf("rdb: durable: unknown table %q", op.Table))
			}
			var recID uint64
			if et.intPK {
				pk, ok := op.OldRow[et.pkCol].(int64)
				if !ok {
					return nil, e.fail(fmt.Errorf("rdb: durable: non-integer key in %q", op.Table))
				}
				recID = pkRecID(pk)
			} else {
				var ok bool
				recID, ok = et.recOf[op.RowID]
				if !ok {
					return nil, e.fail(fmt.Errorf("rdb: durable: no record id for row %d of %q", op.RowID, op.Table))
				}
				delete(et.recOf, op.RowID)
			}
			if _, err := tree.Delete(pager.MakeKey(et.id, recID)); err != nil {
				return nil, e.fail(err)
			}
			rec.ops = append(rec.ops, walOp{kind: wopDel, table: op.Table, recID: recID})
		case OpAutoInc:
			rec.ops = append(rec.ops, walOp{kind: wopAutoInc, table: op.Table, autoInc: op.AutoInc})
		}
	}
	appendStart := time.Now()
	lsn, err := e.log.Append(encodeWALRecord(&rec))
	cs.WALAppend = time.Since(appendStart)
	if err != nil {
		return nil, e.fail(err)
	}
	e.lastSeq = cs.Seq
	if size, serr := e.log.FileSize(); serr == nil && size > e.ckptBytes {
		// The checkpoint absorbs this change-set (and flushes the WAL),
		// so the wait below returns immediately.
		ckptStart := time.Now()
		err := e.Checkpoint()
		cs.Checkpoint = time.Since(ckptStart)
		if err != nil {
			return nil, err
		}
	}
	log := e.log
	return func() error { return log.Sync(lsn) }, nil
}

// applyDDL maintains the engine's table registry alongside a schema
// change that has already been applied to the in-memory tables. Index
// DDL needs no storage-side effect: secondary indexes rebuild from
// rows at open.
func (e *durableEngine) applyDDL(sql string) error {
	st, err := ParseStatement(sql)
	if err != nil {
		return fmt.Errorf("rdb: durable: replay DDL: %w", err)
	}
	switch x := st.(type) {
	case *CreateTableStmt:
		key := lowerKey(x.Name)
		if _, dup := e.tables[key]; dup {
			return nil
		}
		et := &engTable{id: e.nextTableID, pkCol: -1, nextRec: 1}
		e.nextTableID++
		if t := e.db.tables[key]; t != nil && t.pk >= 0 && t.cols[t.pk].def.Type == TInt {
			et.intPK = true
			et.pkCol = t.pk
		} else {
			et.recOf = make(map[int]uint64)
		}
		e.tables[key] = et
		e.order = append(e.order, key)
	case *DropTableStmt:
		key := lowerKey(x.Name)
		et := e.tables[key]
		if et == nil {
			return nil
		}
		lo, hi := pager.TableBounds(et.id)
		var keys []pager.Key
		tree := e.store.Tree()
		if err := tree.Scan(lo, hi, func(k pager.Key, _ []byte) error {
			keys = append(keys, k)
			return nil
		}); err != nil {
			return err
		}
		for _, k := range keys {
			if _, err := tree.Delete(k); err != nil {
				return err
			}
		}
		delete(e.tables, key)
		for i, name := range e.order {
			if name == key {
				e.order = append(e.order[:i], e.order[i+1:]...)
				break
			}
		}
	}
	return nil
}

// renderCatalog serializes the schema and per-table engine state for
// the next checkpoint. It reads db.tables, which is safe: Checkpoint
// runs with the exclusive lock held.
func (e *durableEngine) renderCatalog() ([]byte, error) {
	cf := catalogFile{Version: 1, NextTableID: e.nextTableID}
	for _, key := range e.order {
		et := e.tables[key]
		t := e.db.tables[key]
		if et == nil || t == nil {
			return nil, fmt.Errorf("rdb: durable: catalog missing table %q", key)
		}
		cf.Tables = append(cf.Tables, catTable{
			Name:      key,
			CreateSQL: renderCreateTable(t),
			IndexSQL:  renderIndexSQLs(t),
			TableID:   et.id,
			IntPK:     et.intPK,
			NextRec:   et.nextRec,
			AutoInc:   t.autoInc,
		})
	}
	return encodeCatalog(&cf)
}

// Checkpoint rewrites the page file from the live tree (compacted,
// atomically renamed over the old one) and truncates the WAL. Pending
// Sync waiters are satisfied by the flush Reset performs first.
func (e *durableEngine) Checkpoint() error {
	if e.err != nil {
		return e.err
	}
	catalog, err := e.renderCatalog()
	if err != nil {
		return e.fail(err)
	}
	old := e.store
	err = pager.WriteCheckpoint(e.pages, e.lastSeq, catalog, func(emit func(pager.Key, []byte) error) error {
		return old.Tree().Scan(pager.MinKey, pager.MaxKey, emit)
	})
	if err != nil {
		return e.fail(fmt.Errorf("rdb: checkpoint: %w", err))
	}
	fresh, err := pager.Open(e.pages, 0)
	if err != nil {
		return e.fail(fmt.Errorf("rdb: checkpoint reopen: %w", err))
	}
	old.Close()
	e.store = fresh
	if err := e.log.Reset(); err != nil {
		return e.fail(err)
	}
	e.checkpoints++
	return nil
}

func (e *durableEngine) Stats() EngineStats {
	ws := e.log.Stats()
	ps := e.store.PoolStats()
	return EngineStats{
		WALAppends:       ws.Appends,
		WALFsyncs:        ws.Fsyncs,
		WALBatches:       ws.Batches,
		WALBatchedRecs:   ws.BatchedRecords,
		WALBytes:         ws.Bytes,
		WALSize:          ws.Size,
		PoolHits:         ps.Hits,
		PoolMisses:       ps.Misses,
		PoolEvictions:    ps.Evictions,
		PoolResident:     ps.Resident,
		PoolDirty:        ps.Dirty,
		Checkpoints:      e.checkpoints,
		RecoveredRecords: e.recovered,
		TornBytes:        e.torn,
	}
}

// Close checkpoints (making the WAL empty for the next open) and
// releases both files. The sticky-error path skips the checkpoint: a
// doubtful engine must not overwrite a good page file.
func (e *durableEngine) Close() error {
	if e.err == nil {
		if err := e.Checkpoint(); err != nil {
			return err
		}
	}
	cerr := e.log.Close()
	if err := e.store.Close(); err != nil && cerr == nil {
		cerr = err
	}
	e.fail(errors.New("rdb: durable engine closed"))
	return cerr
}

// OpenDurable opens (or creates) a durable database rooted at dir and
// recovers it to the last committed state: catalog DDL replays first,
// then the checkpointed rows, then every WAL frame newer than the
// checkpoint.
func OpenDurable(dir string) (*DB, error) {
	return OpenDurableOpts(dir, DurableOptions{})
}

// OpenDurableOpts is OpenDurable with explicit tuning.
func OpenDurableOpts(dir string, opts DurableOptions) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("rdb: open durable: %w", err)
	}
	pagesPath := filepath.Join(dir, pagesFileName)
	if _, err := os.Stat(pagesPath); errors.Is(err, os.ErrNotExist) {
		empty, err := encodeCatalog(&catalogFile{Version: 1})
		if err != nil {
			return nil, err
		}
		err = pager.WriteCheckpoint(pagesPath, 0, empty, func(func(pager.Key, []byte) error) error {
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("rdb: init durable: %w", err)
		}
	} else if err != nil {
		return nil, fmt.Errorf("rdb: open durable: %w", err)
	}
	store, err := pager.Open(pagesPath, opts.PoolPages)
	if err != nil {
		return nil, err
	}
	log, frames, torn, err := wal.Open(filepath.Join(dir, walFileName))
	if err != nil {
		store.Close()
		return nil, err
	}
	db := Open()
	e := &durableEngine{
		db:        db,
		dir:       dir,
		pages:     pagesPath,
		log:       log,
		store:     store,
		tables:    make(map[string]*engTable),
		ckptBytes: opts.CheckpointBytes,
		torn:      torn,
	}
	if e.ckptBytes <= 0 {
		e.ckptBytes = defaultCheckpointBytes
	}
	if err := e.recover(frames); err != nil {
		log.Close()
		store.Close()
		return nil, err
	}
	db.engine = e
	db.publishHead()
	return db, nil
}

// recover rebuilds the in-memory database from the page file and the
// WAL tail. It runs before the engine is attached, so the memory-side
// replay cannot recurse into Apply.
func (e *durableEngine) recover(frames []wal.Record) error {
	blob, err := e.store.Catalog()
	if err != nil {
		return err
	}
	cf, err := decodeCatalog(blob)
	if err != nil {
		return err
	}
	e.nextTableID = cf.NextTableID
	db := e.db
	ckptSeq := e.store.Meta().CheckpointSeq
	// recovery-only reverse maps: recID -> in-memory row slot, for
	// tables without an INTEGER primary key.
	rev := make(map[string]map[uint64]int)

	for _, ct := range cf.Tables {
		if err := e.replaySQL(ct.CreateSQL); err != nil {
			return err
		}
		for _, sql := range ct.IndexSQL {
			if err := e.replaySQL(sql); err != nil {
				return err
			}
		}
		// replaySQL registered the table through applyDDL with fresh
		// counters; restore the persisted ones.
		et := e.tables[ct.Name]
		t := db.tables[ct.Name]
		if et == nil || t == nil {
			return fmt.Errorf("rdb: recover: catalog table %q did not replay", ct.Name)
		}
		et.id = ct.TableID
		et.nextRec = ct.NextRec
		if et.intPK != ct.IntPK {
			return fmt.Errorf("rdb: recover: key mode mismatch for %q", ct.Name)
		}
		if !et.intPK {
			rev[ct.Name] = make(map[uint64]int)
		}
		lo, hi := pager.TableBounds(et.id)
		err := e.store.Tree().Scan(lo, hi, func(k pager.Key, v []byte) error {
			row, err := decodeRow(v)
			if err != nil {
				return err
			}
			if len(row) != len(t.cols) {
				return fmt.Errorf("rdb: recover: row arity mismatch in %q", ct.Name)
			}
			id, err := t.insert(row)
			if err != nil {
				return fmt.Errorf("rdb: recover %q: %w", ct.Name, err)
			}
			if !et.intPK {
				et.recOf[id] = k.RecID()
				rev[ct.Name][k.RecID()] = id
			}
			return nil
		})
		if err != nil {
			return err
		}
		t.autoInc = ct.AutoInc
	}
	// applyDDL above advanced nextTableID past every registration; the
	// persisted value wins only if it is larger (ids of dropped tables
	// must never be reused while their keys might linger in the WAL).
	if cf.NextTableID > e.nextTableID {
		e.nextTableID = cf.NextTableID
	}
	db.seq = ckptSeq

	for _, fr := range frames {
		rec, err := decodeWALRecord(fr.Payload)
		if err != nil {
			return err
		}
		if rec.seq <= ckptSeq {
			continue
		}
		if err := e.replayRecord(rec, rev); err != nil {
			return err
		}
		db.seq = rec.seq
		e.recovered++
	}
	e.lastSeq = db.seq
	return nil
}

// replaySQL runs one DDL statement against the in-memory tables and
// the engine registry.
func (e *durableEngine) replaySQL(sql string) error {
	st, err := ParseStatement(sql)
	if err != nil {
		return fmt.Errorf("rdb: recover DDL %q: %w", sql, err)
	}
	if _, err := e.db.execLocked(sql, st, nil, nil, nil); err != nil {
		return fmt.Errorf("rdb: recover DDL %q: %w", sql, err)
	}
	return e.applyDDL(sql)
}

// replayRecord applies one WAL record to both the in-memory tables and
// the B-tree (whose page file predates the record).
func (e *durableEngine) replayRecord(rec *walRecord, rev map[string]map[uint64]int) error {
	tree := e.store.Tree()
	for _, op := range rec.ops {
		switch op.kind {
		case wopDDL:
			// A replayed CREATE TABLE starts synthetic ids at 1; later
			// wopPut replays keep the counter ahead of every logged id.
			if err := e.replaySQL(op.sql); err != nil {
				return err
			}
		case wopPut:
			et := e.tables[op.table]
			t := e.db.tables[op.table]
			if et == nil || t == nil {
				return fmt.Errorf("rdb: recover: put into unknown table %q", op.table)
			}
			row, err := decodeRow(op.rowData)
			if err != nil {
				return err
			}
			if err := tree.Put(pager.MakeKey(et.id, op.recID), op.rowData); err != nil {
				return err
			}
			if et.intPK {
				pk := recIDPK(op.recID)
				if id, ok := t.pkMap[Value(pk)]; ok {
					if err := t.updateRow(id, row); err != nil {
						return fmt.Errorf("rdb: recover %q: %w", op.table, err)
					}
				} else if _, err := t.insert(row); err != nil {
					return fmt.Errorf("rdb: recover %q: %w", op.table, err)
				}
			} else {
				rv := rev[op.table]
				if rv == nil {
					rv = make(map[uint64]int)
					rev[op.table] = rv
				}
				if id, ok := rv[op.recID]; ok {
					if err := t.updateRow(id, row); err != nil {
						return fmt.Errorf("rdb: recover %q: %w", op.table, err)
					}
				} else {
					id, err := t.insert(row)
					if err != nil {
						return fmt.Errorf("rdb: recover %q: %w", op.table, err)
					}
					et.recOf[id] = op.recID
					rv[op.recID] = id
				}
				if op.recID >= et.nextRec {
					et.nextRec = op.recID + 1
				}
			}
		case wopDel:
			et := e.tables[op.table]
			t := e.db.tables[op.table]
			if et == nil || t == nil {
				return fmt.Errorf("rdb: recover: delete from unknown table %q", op.table)
			}
			if _, err := tree.Delete(pager.MakeKey(et.id, op.recID)); err != nil {
				return err
			}
			if et.intPK {
				if id, ok := t.pkMap[Value(recIDPK(op.recID))]; ok {
					t.deleteRow(id)
				}
			} else if rv := rev[op.table]; rv != nil {
				if id, ok := rv[op.recID]; ok {
					t.deleteRow(id)
					delete(et.recOf, id)
					delete(rv, op.recID)
				}
			}
		case wopAutoInc:
			if t := e.db.tables[op.table]; t != nil {
				t.autoInc = op.autoInc
			}
		}
	}
	return nil
}

// renderCreateTable reproduces a CREATE TABLE statement for the
// runtime schema.
func renderCreateTable(t *table) string {
	cols := make([]ColumnDef, len(t.cols))
	for i, c := range t.cols {
		cols[i] = c.def
	}
	return renderCreateTableSQL(t.name, cols, t.fks)
}

// renderCreateTableSQL builds a CREATE TABLE statement in the exact
// dialect the parser accepts (shared by the durable catalog and the
// snapshot restore path).
func renderCreateTableSQL(name string, cols []ColumnDef, fks []ForeignKeyDef) string {
	var b strings.Builder
	b.WriteString("CREATE TABLE ")
	b.WriteString(name)
	b.WriteString(" (")
	for i, c := range cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
		if c.PrimaryKey {
			b.WriteString(" PRIMARY KEY")
		}
		if c.AutoIncrement {
			b.WriteString(" AUTOINCREMENT")
		}
		if c.NotNull {
			b.WriteString(" NOT NULL")
		}
		if c.Unique {
			b.WriteString(" UNIQUE")
		}
	}
	for _, fk := range fks {
		b.WriteString(", FOREIGN KEY (")
		b.WriteString(fk.Column)
		b.WriteString(") REFERENCES ")
		b.WriteString(fk.RefTable)
		b.WriteString("(")
		b.WriteString(fk.RefColumn)
		b.WriteString(")")
	}
	b.WriteString(")")
	return b.String()
}

// renderIndexSQLs reproduces the CREATE INDEX statements for every
// secondary index on t, in deterministic order. Hash and ordered
// indexes store only their column, so names are generated.
func renderIndexSQLs(t *table) []string {
	var out []string
	key := lowerKey(t.name)
	cols := make([]string, 0, len(t.indexes))
	for col := range t.indexes {
		cols = append(cols, col)
	}
	sort.Strings(cols)
	for _, col := range cols {
		out = append(out, fmt.Sprintf("CREATE INDEX ix_%s_%s ON %s (%s)", key, col, t.name, col))
	}
	cols = cols[:0]
	for col := range t.ordered {
		cols = append(cols, col)
	}
	sort.Strings(cols)
	for _, col := range cols {
		out = append(out, fmt.Sprintf("CREATE ORDERED INDEX ord_%s_%s ON %s (%s)", key, col, t.name, col))
	}
	for _, ix := range t.composites {
		out = append(out, fmt.Sprintf("CREATE INDEX %s ON %s (%s)", ix.name, t.name, strings.Join(ix.colNames, ", ")))
	}
	return out
}
