package rdb

import (
	"testing"
	"testing/quick"
)

func txDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	mustExec(t, db, `CREATE TABLE acct (oid INTEGER PRIMARY KEY AUTOINCREMENT, owner TEXT UNIQUE, balance INTEGER)`)
	mustExec(t, db, `INSERT INTO acct (owner, balance) VALUES ('a', 100), ('b', 50)`)
	return db
}

func TestTxCommit(t *testing.T) {
	db := txDB(t)
	tx := db.Begin()
	if _, err := tx.Exec(`UPDATE acct SET balance = balance - 10 WHERE owner = 'a'`); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE acct SET balance = balance + 10 WHERE owner = 'b'`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rows := mustQuery(t, db, `SELECT balance FROM acct ORDER BY owner`)
	if rows.Data[0][0] != int64(90) || rows.Data[1][0] != int64(60) {
		t.Fatalf("got %v", rows.Data)
	}
}

func TestTxRollbackUpdate(t *testing.T) {
	db := txDB(t)
	tx := db.Begin()
	if _, err := tx.Exec(`UPDATE acct SET balance = 0 WHERE owner = 'a'`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	m, _ := db.QueryRow(`SELECT balance FROM acct WHERE owner = 'a'`)
	if m["balance"] != int64(100) {
		t.Fatalf("balance = %v", m["balance"])
	}
}

func TestTxRollbackInsert(t *testing.T) {
	db := txDB(t)
	tx := db.Begin()
	if _, err := tx.Exec(`INSERT INTO acct (owner, balance) VALUES ('c', 1)`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	n, _ := db.RowCount("acct")
	if n != 2 {
		t.Fatalf("count = %d", n)
	}
	// The unique index entry must be gone too.
	mustExec(t, db, `INSERT INTO acct (owner, balance) VALUES ('c', 2)`)
}

func TestTxRollbackDelete(t *testing.T) {
	db := txDB(t)
	tx := db.Begin()
	if _, err := tx.Exec(`DELETE FROM acct WHERE owner = 'b'`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	m, _ := db.QueryRow(`SELECT balance FROM acct WHERE owner = 'b'`)
	if m == nil || m["balance"] != int64(50) {
		t.Fatalf("row = %v", m)
	}
}

func TestTxSeesOwnWrites(t *testing.T) {
	db := txDB(t)
	tx := db.Begin()
	if _, err := tx.Exec(`INSERT INTO acct (owner, balance) VALUES ('c', 7)`); err != nil {
		t.Fatal(err)
	}
	rows, err := tx.Query(`SELECT COUNT(*) FROM acct`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0] != int64(3) {
		t.Fatalf("count inside tx = %v", rows.Data[0][0])
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
}

func TestTxDoneErrors(t *testing.T) {
	db := txDB(t)
	tx := db.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`DELETE FROM acct`); err != ErrTxDone {
		t.Fatalf("err = %v", err)
	}
	if err := tx.Rollback(); err != ErrTxDone {
		t.Fatalf("err = %v", err)
	}
}

func TestTxRollbackMixedSequence(t *testing.T) {
	db := txDB(t)
	tx := db.Begin()
	ops := []string{
		`INSERT INTO acct (owner, balance) VALUES ('x', 1)`,
		`UPDATE acct SET balance = 999 WHERE owner = 'a'`,
		`DELETE FROM acct WHERE owner = 'b'`,
		`INSERT INTO acct (owner, balance) VALUES ('y', 2)`,
		`UPDATE acct SET balance = 0 WHERE owner = 'x'`,
	}
	for _, op := range ops {
		if _, err := tx.Exec(op); err != nil {
			t.Fatalf("%s: %v", op, err)
		}
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	rows := mustQuery(t, db, `SELECT owner, balance FROM acct ORDER BY owner`)
	if rows.Len() != 2 {
		t.Fatalf("rows = %v", rows.Data)
	}
	if rows.Data[0][1] != int64(100) || rows.Data[1][1] != int64(50) {
		t.Fatalf("balances = %v", rows.Data)
	}
}

// Property: a rolled-back transaction leaves total balance unchanged no
// matter what sequence of transfers it performed.
func TestTxRollbackInvariantProperty(t *testing.T) {
	f := func(transfers []int8) bool {
		db := Open()
		if _, err := db.Exec(`CREATE TABLE acct (oid INTEGER PRIMARY KEY AUTOINCREMENT, balance INTEGER)`); err != nil {
			return false
		}
		if _, err := db.Exec(`INSERT INTO acct (balance) VALUES (100), (100)`); err != nil {
			return false
		}
		tx := db.Begin()
		for _, d := range transfers {
			if _, err := tx.Exec(`UPDATE acct SET balance = balance - ? WHERE oid = 1`, int64(d)); err != nil {
				tx.Rollback()
				return false
			}
			if _, err := tx.Exec(`UPDATE acct SET balance = balance + ? WHERE oid = 2`, int64(d)); err != nil {
				tx.Rollback()
				return false
			}
		}
		if err := tx.Rollback(); err != nil {
			return false
		}
		rows, err := db.Query(`SELECT balance FROM acct ORDER BY oid`)
		if err != nil {
			return false
		}
		return rows.Data[0][0] == int64(100) && rows.Data[1][0] == int64(100)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
