package rdb

import (
	"fmt"
	"strings"
)

// The planner lowers a SelectStmt into a SelectPlan once per SQL text.
// Access-path choice is cost-based: candidate paths are enumerated from
// the WHERE conjuncts and the available indexes, estimated from table
// and index cardinality, and the cheapest wins. Ties keep the earlier
// candidate, and candidates are enumerated in the interpreter's
// precedence order (point lookups, then composite, then range, then
// scan), so on empty or tiny tables — where every estimate collapses
// toward zero — the plan still matches the seed's access-path labels.

// planCandidate pairs a possible access path with its estimated cost.
type planCandidate struct {
	path accessPath
	cost float64
	elim bool // reading the path in index order satisfies ORDER BY
}

// eqConjunct is one "col = constExpr" found in the WHERE top-level ANDs.
type eqConjunct struct {
	colLower string
	col      string // original spelling, for EXPLAIN
	val      Expr
}

// rangeConjunct accumulates the bound expressions on one column.
type rangeConjunct struct {
	colLower string
	col      string
	los      []astBound
	his      []astBound
}

type astBound struct {
	expr      Expr
	inclusive bool
}

// collectEq gathers base-table equality conjuncts in AND-walk order,
// applying eqSide's shape rules (qualification, const right side) but
// not its index requirement: composite prefixes may use columns that
// carry no single-column index.
func collectEq(where Expr, t *table, tableName string, requireQualified bool) []eqConjunct {
	var out []eqConjunct
	seen := map[string]bool{}
	add := func(colSide, valSide Expr) bool {
		ref, ok := colSide.(*ColRef)
		if !ok {
			return false
		}
		if ref.Table == "" && requireQualified {
			return false
		}
		if ref.Table != "" && !strings.EqualFold(ref.Table, tableName) {
			return false
		}
		lower := strings.ToLower(ref.Column)
		if _, ok := t.colIdx[lower]; !ok {
			return false
		}
		if !isConstExpr(valSide) {
			return false
		}
		if !seen[lower] { // the interpreter uses the first conjunct per column
			seen[lower] = true
			out = append(out, eqConjunct{colLower: lower, col: ref.Column, val: valSide})
		}
		return true
	}
	var walk func(e Expr)
	walk = func(e Expr) {
		be, ok := e.(*BinaryExpr)
		if !ok {
			return
		}
		switch be.Op {
		case "AND":
			walk(be.L)
			walk(be.R)
		case "=":
			if !add(be.L, be.R) {
				add(be.R, be.L)
			}
		}
	}
	if where != nil {
		walk(where)
	}
	return out
}

// collectRanges gathers range conjuncts per base column in AND-walk
// order. Bound values stay unevaluated: they are folded at bind time,
// when parameters are known.
func collectRanges(where Expr, t *table, tableName string, requireQualified bool) []*rangeConjunct {
	var out []*rangeConjunct
	byCol := map[string]*rangeConjunct{}
	flip := map[string]string{"<": ">", "<=": ">=", ">": "<", ">=": "<="}
	add := func(colSide, valSide Expr, op string) bool {
		ref, ok := colSide.(*ColRef)
		if !ok {
			return false
		}
		if ref.Table == "" && requireQualified {
			return false
		}
		if ref.Table != "" && !strings.EqualFold(ref.Table, tableName) {
			return false
		}
		lower := strings.ToLower(ref.Column)
		if _, ok := t.colIdx[lower]; !ok {
			return false
		}
		if !isConstExpr(valSide) {
			return false
		}
		rc := byCol[lower]
		if rc == nil {
			rc = &rangeConjunct{colLower: lower, col: ref.Column}
			byCol[lower] = rc
			out = append(out, rc)
		}
		b := astBound{expr: valSide, inclusive: op == ">=" || op == "<="}
		if op == ">" || op == ">=" {
			rc.los = append(rc.los, b)
		} else {
			rc.his = append(rc.his, b)
		}
		return true
	}
	var walk func(e Expr)
	walk = func(e Expr) {
		be, ok := e.(*BinaryExpr)
		if !ok {
			return
		}
		if be.Op == "AND" {
			walk(be.L)
			walk(be.R)
			return
		}
		op := be.Op
		if _, isRange := flip[op]; !isRange {
			return
		}
		if !add(be.L, be.R, op) {
			add(be.R, be.L, flip[op])
		}
	}
	if where != nil {
		walk(where)
	}
	return out
}

func compileBounds(bs []astBound) []boundCand {
	out := make([]boundCand, len(bs))
	for i, b := range bs {
		out[i] = boundCand{val: compileExpr(b.expr, nil), inclusive: b.inclusive}
	}
	return out
}

// buildPlan compiles one SELECT. The caller must hold at least a read
// lock on db.mu.
func (db *DB) buildPlan(sel *SelectStmt) (*SelectPlan, error) {
	return db.buildPlanTables(sel, db.tables, false)
}

// buildPlanTables compiles one SELECT against an explicit table map —
// the live catalog, or a snapshot's frozen view. In snapshot mode the
// planner is restricted to operators that work without the live
// in-memory index structures (frozen views carry none): a record-store
// point fetch on an int-keyed primary key, full scans, and nested-loop
// joins. Snapshot mode must not touch any mutable DB field (it runs
// without db.mu), so the DDL epoch is left at zero; snapshot plans are
// cached per snapshot and never revalidated.
func (db *DB) buildPlanTables(sel *SelectStmt, tables map[string]*table, snap bool) (*SelectPlan, error) {
	base, ok := tables[strings.ToLower(sel.From.Table)]
	if !ok {
		return nil, fmt.Errorf("rdb: no such table %q", sel.From.Table)
	}
	p := &SelectPlan{
		stmt:      sel,
		base:      base,
		baseTable: sel.From.Table,
		distinct:  sel.Distinct,
	}
	if !snap {
		p.epoch = db.ddlEpoch
	}
	p.frames = []planFrame{{name: strings.ToLower(sel.From.name()), tbl: base}}
	joinTables := make([]*table, len(sel.Joins))
	for i, j := range sel.Joins {
		jt, ok := tables[strings.ToLower(j.Table.Table)]
		if !ok {
			return nil, fmt.Errorf("rdb: no such table %q", j.Table.Table)
		}
		joinTables[i] = jt
		p.frames = append(p.frames, planFrame{name: strings.ToLower(j.Table.name()), tbl: jt})
	}

	p.aggregate = len(sel.GroupBy) > 0
	if !p.aggregate {
		for _, c := range sel.Columns {
			if c.Expr != nil && hasAggregate(c.Expr) {
				p.aggregate = true
				break
			}
		}
	}

	// ORDER BY eligibility for index-order elimination: single table, no
	// DISTINCT reshuffle, no grouping, every key a plain base-table
	// column, one direction throughout.
	var orderCols []string
	orderDesc := false
	orderEligible := false
	if len(sel.OrderBy) > 0 && len(sel.Joins) == 0 && !sel.Distinct && !p.aggregate {
		orderEligible = true
		orderDesc = sel.OrderBy[0].Desc
		for _, term := range sel.OrderBy {
			ref, ok := term.Expr.(*ColRef)
			if !ok || term.Desc != orderDesc {
				orderEligible = false
				break
			}
			if ref.Table != "" && !strings.EqualFold(ref.Table, sel.From.name()) {
				orderEligible = false
				break
			}
			lower := strings.ToLower(ref.Column)
			if _, ok := base.colIdx[lower]; !ok {
				orderEligible = false
				break
			}
			orderCols = append(orderCols, lower)
		}
		if !orderEligible {
			orderCols = nil
		}
	}

	requireQualified := len(sel.Joins) > 0
	eqs := collectEq(sel.Where, base, sel.From.name(), requireQualified)
	ranges := collectRanges(sel.Where, base, sel.From.name(), requireQualified)
	eqByCol := map[string]eqConjunct{}
	for _, eq := range eqs {
		eqByCol[eq.colLower] = eq
	}
	rangeByCol := map[string]*rangeConjunct{}
	for _, rc := range ranges {
		rangeByCol[rc.colLower] = rc
	}

	p.access = db.chooseAccess(p, base, eqs, ranges, eqByCol, rangeByCol, orderEligible, orderCols, orderDesc, len(sel.OrderBy) > 0, snap)

	// Joins: prefer the interpreter's indexed equi-join (probing the new
	// table's primary key, hash index or unique column), then a composite
	// index whose leading column matches, then a nested loop. Snapshot
	// frozen views carry no probe structures, so they always nest.
	for ji, j := range sel.Joins {
		jt := joinTables[ji]
		jp := joinPlan{left: j.Left, tbl: jt, displayTable: j.Table.Table, estRows: jt.alive}
		jp.on = compileExpr(j.On, p.frames[:ji+2])
		if snap {
			jp.kind = jkLoop
		} else if col, outerExpr := equiJoinKey(j.On, jt, j.Table.name()); col != "" {
			lower := strings.ToLower(col)
			i := jt.colIdx[lower]
			switch {
			case i == jt.pk:
				jp.kind = jkPK
			case jt.indexes[lower] != nil:
				jp.kind = jkHash
				jp.hashIdx = jt.indexes[lower]
			default:
				jp.kind = jkUnique
				jp.uniqMap = jt.uniques[lower]
			}
			jp.col = col
			jp.label = accessKind(jt, col)
			jp.outer = compileExpr(outerExpr, p.frames[:ji+1])
		} else if comp, outerExpr := compositeJoinKey(j.On, jt, j.Table.name()); comp != nil {
			jp.kind = jkComposite
			jp.comp = comp
			jp.col = comp.colNames[0]
			jp.label = "COMPOSITE INDEX " + comp.name
			jp.outer = compileExpr(outerExpr, p.frames[:ji+1])
		} else {
			jp.kind = jkLoop
		}
		p.joins = append(p.joins, jp)
	}

	if sel.Where != nil {
		p.where = compileExpr(sel.Where, p.frames)
	}

	if !p.aggregate {
		db.compileProjection(p, sel)
		if err := db.compileOrderLimits(p, sel, orderEligible); err != nil {
			return nil, err
		}
	}

	// Validity inputs: replan when DDL changes or any referenced table
	// crosses a size-class boundary (cost estimates go stale).
	seen := map[*table]bool{}
	for _, f := range p.frames {
		if !seen[f.tbl] {
			seen[f.tbl] = true
			p.sizes = append(p.sizes, tableSize{t: f.tbl, class: sizeClass(f.tbl.alive)})
		}
	}
	return p, nil
}

// chooseAccess enumerates candidate access paths for the base table and
// picks the cheapest. Estimates: a point lookup on a key column returns
// one row; a hash bucket returns alive/distinct rows; a composite
// prefix returns alive/distinctPrefixes rows (a further range predicate
// keeps about a third of the segment); a bare range keeps about a third
// of the table; a scan reads everything. When ORDER BY is present,
// paths that cannot produce index order pay a doubled cost for the sort.
func (db *DB) chooseAccess(p *SelectPlan, base *table, eqs []eqConjunct, ranges []*rangeConjunct,
	eqByCol map[string]eqConjunct, rangeByCol map[string]*rangeConjunct,
	orderEligible bool, orderCols []string, orderDesc bool, hasOrderBy bool, snap bool) accessPath {

	alive := float64(base.alive)
	// A point lookup costs one probe, but never more than the table
	// holds: on an empty table every estimate is zero and the tie is
	// broken by enumeration order, keeping the point-path labels.
	pointCost := 1.0
	if alive < 1 {
		pointCost = alive
	}
	var cands []planCandidate

	// Snapshot mode: the only point path is a record-store fetch keyed
	// by an int primary key; everything else scans the frozen row slice.
	if snap {
		for _, eq := range eqs {
			if base.snapPK >= 0 && base.fetch != nil && base.colIdx[eq.colLower] == base.snapPK {
				cands = append(cands, planCandidate{
					path: accessPath{kind: accessSnapPK, col: eq.col, label: "PRIMARY KEY",
						eq: []compiledExpr{compileExpr(eq.val, nil)}, est: pointCost},
					cost: pointCost,
				})
				break
			}
		}
		cands = append(cands, planCandidate{path: accessPath{kind: accessScan, est: alive}, cost: alive})
		best := cands[0]
		bestEff := effectiveCost(best, hasOrderBy)
		for _, c := range cands[1:] {
			if eff := effectiveCost(c, hasOrderBy); eff < bestEff {
				best, bestEff = c, eff
			}
		}
		return best.path
	}

	// Point lookups from equality conjuncts, in AND-walk order. The
	// per-column path follows table.lookup's precedence: primary key,
	// then hash index, then unique map. The hash estimate is floored at
	// three distinct values: below that, cardinality on a tiny table is
	// noise, and keeping the point path preserves the interpreter's row
	// order.
	for _, eq := range eqs {
		i := base.colIdx[eq.colLower]
		val := []compiledExpr{compileExpr(eq.val, nil)}
		switch {
		case i == base.pk:
			cands = append(cands, planCandidate{
				path: accessPath{kind: accessPK, col: eq.col, label: "PRIMARY KEY", eq: val, est: pointCost},
				cost: pointCost,
			})
		case base.indexes[eq.colLower] != nil:
			idx := base.indexes[eq.colLower]
			distinct := len(idx)
			if distinct < 3 {
				distinct = 3
			}
			cost := alive / float64(distinct)
			cands = append(cands, planCandidate{
				path: accessPath{kind: accessHash, col: eq.col, label: accessKind(base, eq.col), hashIdx: idx, eq: val, est: cost},
				cost: cost,
			})
		case base.uniques[eq.colLower] != nil:
			cands = append(cands, planCandidate{
				path: accessPath{kind: accessUnique, col: eq.col, label: "UNIQUE", uniqMap: base.uniques[eq.colLower], eq: val, est: pointCost},
				cost: pointCost,
			})
		}
	}

	// Composite indexes: consume the longest equality prefix, then an
	// optional range on the next column, then index-order output.
	for _, comp := range base.composites {
		k := 0
		var eqVals []compiledExpr
		for k < len(comp.cols) {
			eq, ok := eqByCol[comp.colNames[k]]
			if !ok {
				break
			}
			eqVals = append(eqVals, compileExpr(eq.val, nil))
			k++
		}
		var los, his []boundCand
		rangeCol := ""
		if k < len(comp.cols) {
			if rc, ok := rangeByCol[comp.colNames[k]]; ok {
				los = compileBounds(rc.los)
				his = compileBounds(rc.his)
				rangeCol = rc.col
			}
		}
		elim := orderEligible && sameColumnList(comp.colNames[k:], orderCols)
		if k == 0 && rangeCol == "" && !elim {
			continue
		}
		cost := alive
		if k > 0 {
			d := comp.distinctPrefixes(k)
			if d < 1 {
				d = 1
			}
			cost = alive / float64(d)
		}
		if rangeCol != "" {
			cost /= 3
		}
		cands = append(cands, planCandidate{
			path: accessPath{
				kind: accessComposite, comp: comp, eq: eqVals,
				los: los, his: his, rangeCol: rangeCol,
				reverse: elim && orderDesc, est: cost,
			},
			cost: cost,
			elim: elim,
		})
	}

	// Single-column ordered-index range scans.
	for _, rc := range ranges {
		ix, ok := base.ordered[rc.colLower]
		if !ok {
			continue
		}
		elim := orderEligible && len(orderCols) == 1 && orderCols[0] == rc.colLower
		cost := alive / 3
		cands = append(cands, planCandidate{
			path: accessPath{
				kind: accessRange, col: rc.col, ord: ix,
				los: compileBounds(rc.los), his: compileBounds(rc.his),
				reverse: elim && orderDesc, est: cost,
			},
			cost: cost,
			elim: elim,
		})
	}

	// A full ordered-index walk purely for ORDER BY. The single-column
	// orderedIndex skips NULLs, so the walk is a complete view only for
	// columns that cannot hold one.
	if orderEligible && len(orderCols) == 1 && rangeByCol[orderCols[0]] == nil {
		if ix, ok := base.ordered[orderCols[0]]; ok {
			i := base.colIdx[orderCols[0]]
			if base.cols[i].def.NotNull || i == base.pk {
				cands = append(cands, planCandidate{
					path: accessPath{kind: accessRange, col: orderCols[0], ord: ix, orderWalk: true, reverse: orderDesc, est: alive},
					cost: alive,
					elim: true,
				})
			}
		}
	}

	cands = append(cands, planCandidate{
		path: accessPath{kind: accessScan, est: alive},
		cost: alive,
	})

	best := cands[0]
	bestEff := effectiveCost(best, hasOrderBy)
	for _, c := range cands[1:] {
		if eff := effectiveCost(c, hasOrderBy); eff < bestEff {
			best, bestEff = c, eff
		}
	}
	if best.elim {
		p.sortElim = true
	}
	return best.path
}

func effectiveCost(c planCandidate, hasOrderBy bool) float64 {
	if hasOrderBy && !c.elim {
		return c.cost * 2
	}
	return c.cost
}

// compositeJoinKey finds an ON conjunct "newTable.col = <outer expr>"
// whose column leads a composite index of the new table.
func compositeJoinKey(on Expr, jt *table, jtName string) (*compositeIndex, Expr) {
	switch x := on.(type) {
	case *BinaryExpr:
		switch x.Op {
		case "AND":
			if c, e := compositeJoinKey(x.L, jt, jtName); c != nil {
				return c, e
			}
			return compositeJoinKey(x.R, jt, jtName)
		case "=":
			if c, e := compositeJoinSide(x.L, x.R, jt, jtName); c != nil {
				return c, e
			}
			return compositeJoinSide(x.R, x.L, jt, jtName)
		}
	}
	return nil, nil
}

func compositeJoinSide(colSide, otherSide Expr, jt *table, jtName string) (*compositeIndex, Expr) {
	ref, ok := colSide.(*ColRef)
	if !ok || !strings.EqualFold(ref.Table, jtName) {
		return nil, nil
	}
	lower := strings.ToLower(ref.Column)
	if refersTo(otherSide, jtName) {
		return nil, nil
	}
	for _, comp := range jt.composites {
		if comp.colNames[0] == lower {
			return comp, otherSide
		}
	}
	return nil, nil
}

// compileProjection precomputes the projection steps and both column
// headers the interpreter can produce: stars expand per frame when rows
// exist, but an empty result renders "*" literally and drops "alias.*".
func (db *DB) compileProjection(p *SelectPlan, sel *SelectStmt) {
	for _, c := range sel.Columns {
		switch {
		case c.Star == "*":
			p.hasStar = true
			step := projStep{}
			for fi, f := range p.frames {
				step.frames = append(step.frames, fi)
				p.cols = append(p.cols, f.tbl.columnNames()...)
			}
			p.colsEmpty = append(p.colsEmpty, "*")
			p.proj = append(p.proj, step)
		case c.Star != "":
			p.hasStar = true
			step := projStep{frames: []int{}}
			want := strings.ToLower(c.Star)
			for fi, f := range p.frames {
				if f.name == want {
					step.frames = append(step.frames, fi)
					p.cols = append(p.cols, f.tbl.columnNames()...)
				}
			}
			p.proj = append(p.proj, step)
		default:
			name := c.Alias
			if name == "" {
				name = exprName(c.Expr)
			}
			p.cols = append(p.cols, name)
			p.colsEmpty = append(p.colsEmpty, name)
			p.proj = append(p.proj, projStep{expr: compileExpr(c.Expr, p.frames)})
		}
	}
}

func (db *DB) compileOrderLimits(p *SelectPlan, sel *SelectStmt, orderEligible bool) error {
	for _, term := range sel.OrderBy {
		k := orderKey{expr: compileExpr(term.Expr, p.frames), desc: term.Desc, outCol: -1}
		if ref, ok := term.Expr.(*ColRef); ok {
			for i, c := range p.cols {
				if strings.EqualFold(c, ref.Column) {
					k.outCol = i
					break
				}
			}
			if k.outCol < 0 {
				k.errFallback = fmt.Errorf("rdb: ORDER BY references unknown output column %q", ref.Column)
			}
		} else {
			k.errFallback = fmt.Errorf("rdb: ORDER BY over aggregates must reference output columns")
		}
		p.orderBy = append(p.orderBy, k)
	}
	if sel.Limit != nil {
		p.limit = compileExpr(sel.Limit, nil)
	}
	if sel.Offset != nil {
		p.offset = compileExpr(sel.Offset, nil)
	}
	return nil
}
