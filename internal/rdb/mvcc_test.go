package rdb

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestSnapshotIsolationBasics(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE kv (id INTEGER PRIMARY KEY, val INTEGER NOT NULL)`)
	mustExec(t, db, `INSERT INTO kv (id, val) VALUES (1, 10), (2, 20)`)

	s := db.Snapshot()
	defer s.Close()
	mustExec(t, db, `UPDATE kv SET val = 11 WHERE id = 1`)
	mustExec(t, db, `DELETE FROM kv WHERE id = 2`)
	mustExec(t, db, `INSERT INTO kv (id, val) VALUES (3, 30)`)

	rows, err := s.Query(`SELECT id, val FROM kv ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if rowsExact(rows) != "1,10\n2,20\n" {
		t.Fatalf("snapshot drifted:\n%s", rowsExact(rows))
	}
	live, err := db.Query(`SELECT id, val FROM kv ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if rowsExact(live) != "1,11\n3,30\n" {
		t.Fatalf("live state wrong:\n%s", rowsExact(live))
	}
	s2 := db.Snapshot()
	defer s2.Close()
	if s2.Seq() <= s.Seq() {
		t.Fatalf("snapshot seq did not advance: %d then %d", s.Seq(), s2.Seq())
	}
	fresh, err := s2.Query(`SELECT id, val FROM kv ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if rowsExact(fresh) != rowsExact(live) {
		t.Fatalf("new snapshot lags live state:\n%s", rowsExact(fresh))
	}

	st := db.Stats()
	if st.SnapshotsTaken < 2 || st.ActiveSnapshots != 2 || st.HeadSeq == 0 {
		t.Fatalf("snapshot counters: %+v", st)
	}
	s2.Close() // double Close must not double-decrement
	s2.Close()
	if got := db.Stats().ActiveSnapshots; got != 1 {
		t.Fatalf("active snapshots = %d, want 1", got)
	}
}

// TestSnapshotMidTransaction pins the commit boundary: a snapshot taken
// while a write transaction is open sees none of its uncommitted rows
// (Snapshot takes no lock, so it does not block behind the writer).
func TestSnapshotMidTransaction(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE n (id INTEGER PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO n (id) VALUES (1)`)

	tx := db.Begin()
	if _, err := tx.Exec(`INSERT INTO n (id) VALUES (2)`); err != nil {
		t.Fatal(err)
	}
	s := db.Snapshot()
	rows, err := s.Query(`SELECT COUNT(*) FROM n`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0] != int64(1) {
		t.Fatalf("snapshot saw uncommitted write: %v", rows.Data[0][0])
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// The old snapshot stays frozen; a fresh one sees the commit.
	rows, _ = s.Query(`SELECT COUNT(*) FROM n`)
	if rows.Data[0][0] != int64(1) {
		t.Fatalf("snapshot moved after commit: %v", rows.Data[0][0])
	}
	s.Close()
	s2 := db.Snapshot()
	defer s2.Close()
	rows, _ = s2.Query(`SELECT COUNT(*) FROM n`)
	if rows.Data[0][0] != int64(2) {
		t.Fatalf("fresh snapshot missed commit: %v", rows.Data[0][0])
	}
}

// snapshotHammer races snapshot readers against committing writers.
// Writers insert row pairs atomically and bump counters in place (the
// copy-on-write path); readers demand every snapshot shows complete
// pairs only. Run with -race this doubles as the data-race proof for
// lock-free snapshot reads.
func snapshotHammer(t *testing.T, db *DB) {
	t.Helper()
	mustExec(t, db, `CREATE TABLE pairs (id INTEGER PRIMARY KEY AUTOINCREMENT, batch INTEGER NOT NULL, half INTEGER NOT NULL)`)
	mustExec(t, db, `CREATE TABLE kv (id INTEGER PRIMARY KEY, val INTEGER NOT NULL)`)
	for i := int64(1); i <= 8; i++ {
		mustExec(t, db, `INSERT INTO kv (id, val) VALUES (?, 0)`, i)
	}

	const writers, rounds = 4, 40
	var batch, committed atomic.Int64
	var stop atomic.Bool
	var readerErr atomic.Value

	var wwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for r := 0; r < rounds; r++ {
				b := batch.Add(1)
				tx := db.Begin()
				if _, err := tx.Exec(`INSERT INTO pairs (batch, half) VALUES (?, 0)`, b); err != nil {
					tx.Rollback()
					t.Error(err)
					return
				}
				if _, err := tx.Exec(`INSERT INTO pairs (batch, half) VALUES (?, 1)`, b); err != nil {
					tx.Rollback()
					t.Error(err)
					return
				}
				if _, err := tx.Exec(`UPDATE kv SET val = val + 1 WHERE id = ?`, int64(r%8+1)); err != nil {
					tx.Rollback()
					t.Error(err)
					return
				}
				if (r+w)%7 == 6 {
					if err := tx.Rollback(); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
				committed.Add(1)
			}
		}(w)
	}

	var rwg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for !stop.Load() {
				s := db.Snapshot()
				rows, err := s.Query(`SELECT batch, COUNT(*) AS n FROM pairs GROUP BY batch`)
				if err != nil {
					readerErr.Store(err)
					s.Close()
					return
				}
				for _, row := range rows.Data {
					if row[1] != int64(2) {
						readerErr.Store(errTornPair(row[0], row[1]))
						s.Close()
						return
					}
				}
				kv, err := s.Query(`SELECT COUNT(*) FROM kv`)
				if err != nil || kv.Data[0][0] != int64(8) {
					readerErr.Store(errTornPair("kv", kv))
					s.Close()
					return
				}
				s.Close()
			}
		}()
	}

	wwg.Wait()
	stop.Store(true)
	rwg.Wait()
	if e := readerErr.Load(); e != nil {
		t.Fatalf("snapshot reader: %v", e)
	}
	rows, err := db.Query(`SELECT COUNT(*) FROM pairs`)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * committed.Load(); rows.Data[0][0] != want {
		t.Fatalf("pairs = %v, want %d", rows.Data[0][0], want)
	}
}

type tornPairError struct {
	batch Value
	n     any
}

func errTornPair(batch Value, n any) error { return &tornPairError{batch, n} }

func (e *tornPairError) Error() string {
	return "incomplete pair in snapshot: batch " + FormatValue(e.batch)
}

func TestSnapshotHammerMemory(t *testing.T) {
	snapshotHammer(t, Open())
}

func TestSnapshotHammerDurable(t *testing.T) {
	db, err := OpenDurableOpts(t.TempDir(), DurableOptions{CheckpointBytes: 1 << 15})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	snapshotHammer(t, db)
}
