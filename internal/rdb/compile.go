package rdb

import (
	"fmt"
	"strings"
)

// This file lowers expressions into closures over an execution context.
// Column references are resolved to (frame, column) positions once at
// plan time, so per-row evaluation performs no name resolution, no map
// lookups and no environment allocation — the core of the "compile
// once, execute many" move the fixed descriptor SQL makes possible.
//
// Name-resolution failures compile into error thunks rather than plan
// errors: the interpreter only reports an unknown or ambiguous column
// when a row is actually evaluated, and the compiled path must diverge
// from it in nothing, including errors on empty results.

// execCtx is the per-query execution state a compiled plan runs
// against: one current row per plan frame (nil = LEFT JOIN miss) and
// the bind-time parameters. stats is nil on the hot path; EXPLAIN
// ANALYZE and the traced/recorded query paths attach one to collect
// per-operator actuals (analyze.go).
type execCtx struct {
	rows  []Row
	args  []Value
	stats *execStats
}

// planFrame binds one table alias to a frame slot at plan time.
type planFrame struct {
	name string // lower-cased alias
	tbl  *table
}

// compiledExpr evaluates one expression against the execution context.
type compiledExpr func(*execCtx) (Value, error)

func errExpr(err error) compiledExpr {
	return func(*execCtx) (Value, error) { return nil, err }
}

func compileExpr(e Expr, frames []planFrame) compiledExpr {
	switch x := e.(type) {
	case *Literal:
		v := x.Val
		return func(*execCtx) (Value, error) { return v, nil }
	case *Param:
		i := x.Index
		return func(c *execCtx) (Value, error) {
			if i < 0 || i >= len(c.args) {
				return nil, fmt.Errorf("rdb: parameter index %d out of range", i)
			}
			return c.args[i], nil
		}
	case *ColRef:
		return compileColRef(x, frames)
	case *UnaryExpr:
		return compileUnary(x, frames)
	case *IsNullExpr:
		sub := compileExpr(x.X, frames)
		not := x.Not
		return func(c *execCtx) (Value, error) {
			v, err := sub(c)
			if err != nil {
				return nil, err
			}
			return (v == nil) != not, nil
		}
	case *InExpr:
		return compileIn(x, frames)
	case *FuncExpr:
		return compileFunc(x, frames)
	case *BinaryExpr:
		return compileBinary(x, frames)
	}
	return errExpr(fmt.Errorf("rdb: cannot evaluate %T", e))
}

// compileColRef mirrors env.resolve, moving every lookup and error to
// compile time.
func compileColRef(ref *ColRef, frames []planFrame) compiledExpr {
	colAt := func(fi, ci int) compiledExpr {
		return func(c *execCtx) (Value, error) {
			r := c.rows[fi]
			if r == nil {
				return nil, nil
			}
			return r[ci], nil
		}
	}
	if ref.Table != "" {
		want := strings.ToLower(ref.Table)
		for fi, f := range frames {
			if f.name != want {
				continue
			}
			ci, ok := f.tbl.col(ref.Column)
			if !ok {
				return errExpr(fmt.Errorf("rdb: no column %q in %q", ref.Column, ref.Table))
			}
			return colAt(fi, ci)
		}
		return errExpr(fmt.Errorf("rdb: unknown table or alias %q", ref.Table))
	}
	foundFrame, foundCol := -1, -1
	for fi, f := range frames {
		if ci, ok := f.tbl.col(ref.Column); ok {
			if foundFrame >= 0 {
				return errExpr(fmt.Errorf("rdb: ambiguous column %q", ref.Column))
			}
			foundFrame, foundCol = fi, ci
		}
	}
	if foundFrame < 0 {
		return errExpr(fmt.Errorf("rdb: unknown column %q", ref.Column))
	}
	return colAt(foundFrame, foundCol)
}

func compileUnary(x *UnaryExpr, frames []planFrame) compiledExpr {
	sub := compileExpr(x.X, frames)
	switch x.Op {
	case "NOT":
		return func(c *execCtx) (Value, error) {
			v, err := sub(c)
			if err != nil {
				return nil, err
			}
			if v == nil {
				return nil, nil
			}
			return !truthy(v), nil
		}
	case "-":
		return func(c *execCtx) (Value, error) {
			v, err := sub(c)
			if err != nil {
				return nil, err
			}
			switch n := v.(type) {
			case int64:
				return -n, nil
			case float64:
				return -n, nil
			case nil:
				return nil, nil
			}
			return nil, fmt.Errorf("rdb: cannot negate %T", v)
		}
	}
	return errExpr(fmt.Errorf("rdb: unknown unary op %q", x.Op))
}

func compileIn(x *InExpr, frames []planFrame) compiledExpr {
	sub := compileExpr(x.X, frames)
	list := make([]compiledExpr, len(x.List))
	for i, le := range x.List {
		list[i] = compileExpr(le, frames)
	}
	not := x.Not
	return func(c *execCtx) (Value, error) {
		v, err := sub(c)
		if err != nil {
			return nil, err
		}
		if v == nil {
			return nil, nil
		}
		for _, le := range list {
			lv, err := le(c)
			if err != nil {
				return nil, err
			}
			if lv == nil {
				continue
			}
			if cv, err := compareValues(v, lv); err == nil && cv == 0 {
				return !not, nil
			}
		}
		return not, nil
	}
}

func compileFunc(x *FuncExpr, frames []planFrame) compiledExpr {
	if aggregateFuncs[x.Name] {
		return errExpr(fmt.Errorf("rdb: aggregate %s used outside aggregate query", x.Name))
	}
	cargs := make([]compiledExpr, len(x.Args))
	for i, a := range x.Args {
		cargs[i] = compileExpr(a, frames)
	}
	fn := x
	return func(c *execCtx) (Value, error) {
		vals := make([]Value, len(cargs))
		for i, ca := range cargs {
			v, err := ca(c)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		return applyScalarFunc(fn, vals)
	}
}

func compileBinary(x *BinaryExpr, frames []planFrame) compiledExpr {
	l := compileExpr(x.L, frames)
	r := compileExpr(x.R, frames)
	switch x.Op {
	case "AND":
		return func(c *execCtx) (Value, error) {
			lv, err := l(c)
			if err != nil {
				return nil, err
			}
			if lv != nil && !truthy(lv) {
				return false, nil
			}
			rv, err := r(c)
			if err != nil {
				return nil, err
			}
			if rv != nil && !truthy(rv) {
				return false, nil
			}
			if lv == nil || rv == nil {
				return nil, nil
			}
			return true, nil
		}
	case "OR":
		return func(c *execCtx) (Value, error) {
			lv, err := l(c)
			if err != nil {
				return nil, err
			}
			if lv != nil && truthy(lv) {
				return true, nil
			}
			rv, err := r(c)
			if err != nil {
				return nil, err
			}
			if rv != nil && truthy(rv) {
				return true, nil
			}
			if lv == nil || rv == nil {
				return nil, nil
			}
			return false, nil
		}
	case "=", "<>", "<", "<=", ">", ">=":
		op := x.Op
		return func(c *execCtx) (Value, error) {
			lv, err := l(c)
			if err != nil {
				return nil, err
			}
			rv, err := r(c)
			if err != nil {
				return nil, err
			}
			if lv == nil || rv == nil {
				return nil, nil
			}
			cv, err := compareValues(lv, rv)
			if err != nil {
				return nil, err
			}
			switch op {
			case "=":
				return cv == 0, nil
			case "<>":
				return cv != 0, nil
			case "<":
				return cv < 0, nil
			case "<=":
				return cv <= 0, nil
			case ">":
				return cv > 0, nil
			}
			return cv >= 0, nil
		}
	case "LIKE":
		return func(c *execCtx) (Value, error) {
			lv, err := l(c)
			if err != nil {
				return nil, err
			}
			rv, err := r(c)
			if err != nil {
				return nil, err
			}
			if lv == nil || rv == nil {
				return nil, nil
			}
			ls, ok1 := lv.(string)
			rs, ok2 := rv.(string)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("rdb: LIKE requires strings, got %T and %T", lv, rv)
			}
			return likeMatch(ls, rs), nil
		}
	case "+", "-", "*", "/":
		op := x.Op
		return func(c *execCtx) (Value, error) {
			lv, err := l(c)
			if err != nil {
				return nil, err
			}
			rv, err := r(c)
			if err != nil {
				return nil, err
			}
			if lv == nil || rv == nil {
				return nil, nil
			}
			return arith(op, lv, rv)
		}
	}
	return errExpr(fmt.Errorf("rdb: unknown operator %q", x.Op))
}
