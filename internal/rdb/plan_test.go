package rdb

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

func planDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	setup := []string{
		`CREATE TABLE product (oid INTEGER PRIMARY KEY AUTOINCREMENT, family TEXT, code TEXT, price INTEGER, name TEXT NOT NULL)`,
		`CREATE INDEX ix_family_price ON product(family, price)`,
		`CREATE ORDERED INDEX ord_name ON product(name)`,
		`CREATE TABLE family (oid INTEGER PRIMARY KEY AUTOINCREMENT, name TEXT)`,
	}
	for _, s := range setup {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	for i := 0; i < 40; i++ {
		fam := fmt.Sprintf("fam%d", i%4)
		if _, err := db.Exec(`INSERT INTO product (family, code, price, name) VALUES (?, ?, ?, ?)`,
			fam, fmt.Sprintf("c%02d", i), (i*7)%50, fmt.Sprintf("n%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := db.Exec(`INSERT INTO family (name) VALUES (?)`, fmt.Sprintf("fam%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestCompositeIndexAccess(t *testing.T) {
	db := planDB(t)
	plan, err := db.Explain(`SELECT name FROM product WHERE family = 'fam1' AND price = 7`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "COMPOSITE INDEX ix_family_price") || !strings.Contains(plan, "eq prefix 2") {
		t.Fatalf("composite index not chosen: %q", plan)
	}
	got, err := db.Query(`SELECT name FROM product WHERE family = 'fam1' AND price = 7`)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.QueryInterpreted(`SELECT name FROM product WHERE family = 'fam1' AND price = 7`)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Data) != fmt.Sprint(want.Data) {
		t.Fatalf("plan path %v != interpreter %v", got.Data, want.Data)
	}
	if got.Len() == 0 {
		t.Fatal("expected matching rows in fixture")
	}
}

func TestCompositeRangeAfterPrefix(t *testing.T) {
	db := planDB(t)
	sql := `SELECT code FROM product WHERE family = 'fam2' AND price > 10 AND price < 40`
	plan, err := db.Explain(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "COMPOSITE INDEX") || !strings.Contains(plan, "range on price") {
		t.Fatalf("composite range not chosen: %q", plan)
	}
	got, _ := db.Query(sql)
	want, _ := db.QueryInterpreted(sql)
	if rowsMultiset(got) != rowsMultiset(want) {
		t.Fatalf("plan path %v != interpreter %v", got.Data, want.Data)
	}
}

func TestSortEliminationOrderedWalk(t *testing.T) {
	db := planDB(t)
	for _, c := range []struct {
		sql  string
		want string
	}{
		{`SELECT name FROM product ORDER BY name`, "sort eliminated"},
		{`SELECT name FROM product ORDER BY name DESC`, "sort eliminated"},
		{`SELECT name FROM product WHERE name > 'n10' ORDER BY name`, "sort eliminated"},
		{`SELECT family, price FROM product WHERE family = 'fam1' ORDER BY price`, "sort eliminated"},
		{`SELECT family, price FROM product WHERE family = 'fam1' ORDER BY price DESC`, "sort eliminated"},
	} {
		plan, err := db.Explain(c.sql)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		if !strings.Contains(plan, c.want) {
			t.Fatalf("%s: expected %q in plan %q", c.sql, c.want, plan)
		}
		got, err := db.Query(c.sql)
		if err != nil {
			t.Fatal(err)
		}
		want, err := db.QueryInterpreted(c.sql)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got.Data) != fmt.Sprint(want.Data) {
			t.Fatalf("%s: order differs from interpreter:\n%v\n%v", c.sql, got.Data, want.Data)
		}
	}
	if db.Stats().SortsEliminated == 0 {
		t.Fatal("SortsEliminated counter did not move")
	}
}

func TestNoEliminationOnNullableWalk(t *testing.T) {
	db := planDB(t)
	// code is nullable and only hash-indexable; an ordered walk over a
	// nullable column would miss NULL rows, so the sort must stay.
	if _, err := db.Exec(`CREATE ORDERED INDEX ord_code ON product(code)`); err != nil {
		t.Fatal(err)
	}
	plan, err := db.Explain(`SELECT code FROM product ORDER BY code`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "SORT 1 keys") {
		t.Fatalf("nullable ordered walk must not eliminate the sort: %q", plan)
	}
}

func TestPlanCacheHitsAndDDLInvalidation(t *testing.T) {
	db := planDB(t)
	sql := `SELECT name FROM product WHERE code = 'c07'`
	before := db.Stats()
	for i := 0; i < 3; i++ {
		if _, err := db.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	mid := db.Stats()
	if mid.PlanCacheMisses-before.PlanCacheMisses != 1 {
		t.Fatalf("expected exactly one plan build, got %d misses", mid.PlanCacheMisses-before.PlanCacheMisses)
	}
	if mid.PlanCacheHits-before.PlanCacheHits != 2 {
		t.Fatalf("expected two plan cache hits, got %d", mid.PlanCacheHits-before.PlanCacheHits)
	}
	// The cached plan scans; creating an index must invalidate it.
	if !strings.Contains(mustExplain(t, db, sql), "SCAN product") {
		t.Fatalf("expected scan before index")
	}
	if _, err := db.Exec(`CREATE INDEX ix_code ON product(code)`); err != nil {
		t.Fatal(err)
	}
	plan := mustExplain(t, db, sql)
	if !strings.Contains(plan, "BY INDEX ON code") {
		t.Fatalf("CREATE INDEX did not take effect on cached plan: %q", plan)
	}
}

func TestPlanRevalidatedOnGrowth(t *testing.T) {
	db := Open()
	if _, err := db.Exec(`CREATE TABLE g (oid INTEGER PRIMARY KEY AUTOINCREMENT, v INTEGER)`); err != nil {
		t.Fatal(err)
	}
	sql := `SELECT v FROM g WHERE v = 1`
	if _, err := db.Query(sql); err != nil {
		t.Fatal(err)
	}
	m0 := db.Stats().PlanCacheMisses
	for i := 0; i < 100; i++ {
		if _, err := db.Exec(`INSERT INTO g (v) VALUES (?)`, i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Query(sql); err != nil {
		t.Fatal(err)
	}
	if db.Stats().PlanCacheMisses == m0 {
		t.Fatal("plan not rebuilt after table crossed size classes")
	}
}

func TestInvalidatePlan(t *testing.T) {
	db := planDB(t)
	sql := `SELECT name FROM product WHERE oid = 1`
	if _, err := db.Query(sql); err != nil {
		t.Fatal(err)
	}
	m0 := db.Stats().PlanCacheMisses
	db.InvalidatePlan(sql)
	if _, err := db.Query(sql); err != nil {
		t.Fatal(err)
	}
	if db.Stats().PlanCacheMisses != m0+1 {
		t.Fatal("InvalidatePlan did not drop the cached plan")
	}
}

func TestAccessPathCounters(t *testing.T) {
	db := planDB(t)
	if _, err := db.Query(`SELECT name FROM product WHERE oid = 3`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`SELECT name FROM product WHERE name > 'n30'`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`SELECT COUNT(*) FROM product`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`SELECT p.name, f.name FROM product p JOIN family f ON f.oid = p.oid`); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.PointLookups == 0 || s.RangeScans == 0 || s.FullScans == 0 || s.IndexedJoins == 0 {
		t.Fatalf("counters did not move: %+v", s)
	}
}

func TestCompositeJoin(t *testing.T) {
	db := Open()
	for _, s := range []string{
		`CREATE TABLE a (oid INTEGER PRIMARY KEY AUTOINCREMENT, k INTEGER)`,
		`CREATE TABLE b (oid INTEGER PRIMARY KEY AUTOINCREMENT, k INTEGER, sub INTEGER)`,
		`CREATE INDEX ix_b ON b(k, sub)`,
		`INSERT INTO a (k) VALUES (1), (2)`,
		`INSERT INTO b (k, sub) VALUES (1, 10), (1, 11), (2, 20), (3, 30)`,
	} {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	sql := `SELECT a.k, b.sub FROM a JOIN b ON b.k = a.k ORDER BY a.k, b.sub`
	plan := mustExplain(t, db, sql)
	if !strings.Contains(plan, "JOIN b BY COMPOSITE INDEX ix_b") {
		t.Fatalf("composite join not chosen: %q", plan)
	}
	got, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.QueryInterpreted(sql)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Data) != fmt.Sprint(want.Data) {
		t.Fatalf("composite join %v != interpreter %v", got.Data, want.Data)
	}
}

func TestCompositeDumpRestore(t *testing.T) {
	db := planDB(t)
	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	info, err := db2.Describe("product")
	if err != nil {
		t.Fatal(err)
	}
	if len(info.CompositeIndexes) != 1 || info.CompositeIndexes[0].Name != "ix_family_price" {
		t.Fatalf("composite index lost across dump/restore: %+v", info.CompositeIndexes)
	}
	plan, err := db2.Explain(`SELECT name FROM product WHERE family = 'fam0' AND price = 0`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "COMPOSITE INDEX ix_family_price") {
		t.Fatalf("restored composite not used: %q", plan)
	}
}

func TestStmtCacheLRUBound(t *testing.T) {
	db := Open()
	if _, err := db.Exec(`CREATE TABLE t (oid INTEGER PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	// Issue more distinct statements than the cache holds; the cache must
	// stay bounded and keep working.
	for i := 0; i < stmtCacheCap+50; i++ {
		if _, err := db.Query(fmt.Sprintf(`SELECT oid FROM t WHERE oid = %d`, i)); err != nil {
			t.Fatal(err)
		}
	}
	db.stmtMu.Lock()
	n := db.stmtCache.len()
	db.stmtMu.Unlock()
	if n > stmtCacheCap {
		t.Fatalf("statement cache unbounded: %d > %d", n, stmtCacheCap)
	}
	db.planMu.Lock()
	pn := db.planCache.len()
	db.planMu.Unlock()
	if pn > planCacheCap {
		t.Fatalf("plan cache unbounded: %d > %d", pn, planCacheCap)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	c.put("a", 1)
	c.put("b", 2)
	if _, ok := c.get("a"); !ok { // refresh a
		t.Fatal("a missing")
	}
	c.put("c", 3) // evicts b, the least recently used
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c should be present")
	}
	c.remove("a")
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
}

// TestLikePathologicalPattern pins the iterative matcher's worst-case
// behavior: the previous recursive implementation took exponential time
// on this input and would blow far past the timeout.
func TestLikePathologicalPattern(t *testing.T) {
	s := strings.Repeat("a", 3000) + "c"
	pattern := "%a%a%a%a%a%a%b"
	done := make(chan bool, 1)
	go func() {
		done <- likeMatch(s, pattern)
	}()
	select {
	case got := <-done:
		if got {
			t.Fatal("pattern must not match")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("likeMatch did not terminate in time on pathological pattern")
	}
	// And the matcher still agrees with LIKE semantics on normal inputs.
	for _, c := range []struct {
		s, p string
		want bool
	}{
		{"hello", "h%", true},
		{"hello", "%LLO", true},
		{"hello", "h_llo", true},
		{"hello", "h_l", false},
		{"", "%", true},
		{"", "", true},
		{"x", "", false},
		{"abc", "%%%", true},
		{"abc", "a%c", true},
		{"abc", "a%b", false},
		{strings.Repeat("ab", 500), "%ab%ab%ab", true},
	} {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Fatalf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func mustExplain(t *testing.T, db *DB, sql string) string {
	t.Helper()
	plan, err := db.Explain(sql)
	if err != nil {
		t.Fatalf("explain %s: %v", sql, err)
	}
	return plan
}
