package rdb

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"testing"
)

// Tests for the larger-than-RAM data tier: anti-caching row eviction,
// marker-based recovery from persisted index images, compiled-plan
// snapshot reads through the version retention buffer, and their
// interaction under concurrency.

// pagingOpts squeezes the engine hard: a 16-page pool, a resident-row
// budget far below the datasets the tests build, and a checkpoint
// threshold small enough that sweeps, faults and incremental
// checkpoints all fire constantly.
var pagingOpts = DurableOptions{
	CheckpointBytes: 1 << 16,
	PoolPages:       64,
	ResidentRows:    16,
}

func openPaging(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := OpenDurableOpts(dir, pagingOpts)
	if err != nil {
		t.Fatalf("open paging engine: %v", err)
	}
	return db
}

func reopenPaging(t *testing.T, db *DB, dir string) *DB {
	t.Helper()
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return openPaging(t, dir)
}

// TestDifferentialPagingEngine runs the full differential corpus on a
// paging engine whose resident-row budget (16) is far below the seeded
// dataset, so most slots are eviction markers and every query path
// exercises record faulting — then again after a close/reopen recovery
// cycle, which starts fully paged out.
func TestDifferentialPagingEngine(t *testing.T) {
	mem := diffFixture(t)
	dir := t.TempDir()
	dur := openPaging(t, dir)
	diffSeed(t, dur)
	// Force the budget's hand: bulk rows guarantee the seed tables
	// overflow 16 resident rows even before the corpus runs.
	if _, err := dur.Exec(`CREATE TABLE filler (oid INTEGER PRIMARY KEY, pad TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Exec(`CREATE TABLE filler (oid INTEGER PRIMARY KEY, pad TEXT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		for _, db := range []*DB{mem, dur} {
			if _, err := db.Exec(`INSERT INTO filler (oid, pad) VALUES (?, ?)`,
				int64(i), strings.Repeat("x", 64)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if ev := dur.EngineStats().RowsEvicted; ev == 0 {
		t.Fatal("no rows evicted despite resident budget of 16")
	}
	for _, c := range diffCorpus {
		compareEngines(t, dur, c.sql, c.args)
		compareDBs(t, "paging", mem, dur, c.sql, c.args)
	}
	dur = reopenPaging(t, dur, dir)
	defer dur.Close()
	for _, c := range diffCorpus {
		compareEngines(t, dur, c.sql, c.args)
		compareDBs(t, "paging-recovered", mem, dur, c.sql, c.args)
	}
}

// TestPagingRecoveryWithoutRebuild verifies that reopening a version-2
// page file decodes no data rows: every slot comes back as an eviction
// marker (RowsResident == 0, RowFaults == 0 right after open) while
// hash, ordered, composite, unique and synthetic-key primary indexes
// all answer correctly from their persisted images.
func TestPagingRecoveryWithoutRebuild(t *testing.T) {
	dir := t.TempDir()
	db := openPaging(t, dir)
	setup := []string{
		`CREATE TABLE items (id INTEGER PRIMARY KEY, cat INTEGER, score INTEGER, tag TEXT UNIQUE)`,
		`CREATE INDEX ix_cat ON items(cat)`,
		`CREATE ORDERED INDEX ord_score ON items(score)`,
		`CREATE INDEX comp ON items(cat, score)`,
		`CREATE TABLE named (name TEXT PRIMARY KEY, v INTEGER)`,
	}
	for _, s := range setup {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	for i := 0; i < 200; i++ {
		if _, err := db.Exec(`INSERT INTO items (id, cat, score, tag) VALUES (?, ?, ?, ?)`,
			int64(i), int64(i%7), int64(i*3%101), fmt.Sprintf("tag-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if _, err := db.Exec(`INSERT INTO named (name, v) VALUES (?, ?)`,
			fmt.Sprintf("key-%02d", i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}

	db = reopenPaging(t, db, dir)
	defer db.Close()
	st := db.EngineStats()
	if st.RowsResident != 0 {
		t.Fatalf("marker recovery left %d resident rows (full rebuild?)", st.RowsResident)
	}
	if st.RowFaults != 0 {
		t.Fatalf("recovery faulted %d rows before any query ran", st.RowFaults)
	}

	checks := []struct {
		sql  string
		args []Value
		want string
	}{
		{`SELECT score FROM items WHERE id = 42`, nil, "25\n"},
		{`SELECT COUNT(*) FROM items WHERE cat = 3`, nil, "29\n"},
		{`SELECT id FROM items WHERE tag = 'tag-123'`, nil, "123\n"},
		{`SELECT COUNT(*) FROM items WHERE score >= 90 AND score <= 100`, nil, "20\n"},
		{`SELECT COUNT(*) FROM items WHERE cat = 2 AND score > 50`, nil, "14\n"},
		{`SELECT v FROM named WHERE name = 'key-07'`, nil, "7\n"},
	}
	for _, c := range checks {
		rows, err := db.Query(c.sql, c.args...)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		if got := rowsExact(rows); got != c.want {
			t.Fatalf("%s:\ngot  %q\nwant %q", c.sql, got, c.want)
		}
	}
	if db.EngineStats().RowFaults == 0 {
		t.Fatal("queries over marker-only tables faulted zero rows")
	}

	// The recovered indexes must be consulted, not just correct: EXPLAIN
	// should pick them over scans.
	for _, probe := range []struct{ sql, want string }{
		{`SELECT id FROM items WHERE cat = 3`, "INDEX"},
		{`SELECT id FROM items WHERE score > 90`, "RANGE"},
		{`SELECT id FROM items WHERE cat = 2 AND score > 50`, "COMPOSITE"},
		{`SELECT id FROM items WHERE tag = 'tag-005'`, "UNIQUE"},
		{`SELECT v FROM named WHERE name = 'key-01'`, "PRIMARY KEY"},
	} {
		plan, err := db.Explain(probe.sql)
		if err != nil {
			t.Fatalf("EXPLAIN %s: %v", probe.sql, err)
		}
		if !strings.Contains(plan, probe.want) {
			t.Fatalf("EXPLAIN %s: expected %s access, got:\n%s", probe.sql, probe.want, plan)
		}
	}
}

// TestSnapshotPagingConsistency pins a snapshot, then mutates, evicts
// and even drops the underlying data. Every snapshot read must keep
// resolving to the pinned commit through the retention buffer, and the
// snapshot's ExplainAnalyze must carry the compiled-plan provenance
// footer.
func TestSnapshotPagingConsistency(t *testing.T) {
	dir := t.TempDir()
	db := openPaging(t, dir)
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := db.Exec(`INSERT INTO kv (k, v) VALUES (?, ?)`, int64(i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := db.Snapshot()
	defer snap.Close()

	// Overwrite, delete, and churn enough to trigger sweeps and
	// checkpoints after the capture.
	for i := 0; i < 100; i++ {
		if _, err := db.Exec(`UPDATE kv SET v = ? WHERE k = ?`, fmt.Sprintf("NEW%d", i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec(`DELETE FROM kv WHERE k >= 50`); err != nil {
		t.Fatal(err)
	}

	// Point reads go through the snap-pk access path; both the hits and
	// the deleted range must show the pinned state.
	for _, k := range []int64{0, 17, 50, 99} {
		row, err := snap.QueryRow(`SELECT v FROM kv WHERE k = ?`, k)
		if err != nil {
			t.Fatal(err)
		}
		if row == nil {
			t.Fatalf("snapshot lost k=%d", k)
		}
		if want := fmt.Sprintf("v%d", k); row["v"] != want {
			t.Fatalf("snapshot k=%d: got %v, want %q", k, row["v"], want)
		}
	}
	rows, err := snap.Query(`SELECT COUNT(*) FROM kv`)
	if err != nil {
		t.Fatal(err)
	}
	if got := rowsExact(rows); got != "100\n" {
		t.Fatalf("snapshot row count: got %q, want 100", got)
	}

	// Live reads see the new world.
	row, err := db.QueryRow(`SELECT v FROM kv WHERE k = ?`, int64(3))
	if err != nil {
		t.Fatal(err)
	}
	if row["v"] != "NEW3" {
		t.Fatalf("live read: got %v, want NEW3", row["v"])
	}

	// ExplainAnalyze on the snapshot: compiled on first use, cached on
	// the second, with the point fetch visible in the plan tree.
	plan1, err := snap.ExplainAnalyze(`SELECT v FROM kv WHERE k = ?`, int64(17))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan1, "PRIMARY KEY") {
		t.Fatalf("snapshot plan lacks point access:\n%s", plan1)
	}
	if !strings.Contains(plan1, "PLAN: ") {
		t.Fatalf("snapshot ExplainAnalyze lacks provenance footer:\n%s", plan1)
	}
	plan2, err := snap.ExplainAnalyze(`SELECT v FROM kv WHERE k = ?`, int64(17))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan2, "PLAN: cached") {
		t.Fatalf("second snapshot ExplainAnalyze not cached:\n%s", plan2)
	}

	// DROP TABLE retains every record for the open snapshot.
	if _, err := db.Exec(`DROP TABLE kv`); err != nil {
		t.Fatal(err)
	}
	row, err = snap.QueryRow(`SELECT v FROM kv WHERE k = ?`, int64(17))
	if err != nil {
		t.Fatal(err)
	}
	if row == nil || row["v"] != "v17" {
		t.Fatalf("snapshot read after DROP TABLE: got %v, want v17", row)
	}
}

// TestPagingEvictionHammer runs writers, live readers and snapshot
// readers against a 16-row budget under -race: commits sweep rows out
// while lock-free snapshot queries fault them back through the
// retention buffer.
func TestPagingEvictionHammer(t *testing.T) {
	dir := t.TempDir()
	db := openPaging(t, dir)
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER NOT NULL, note TEXT)`); err != nil {
		t.Fatal(err)
	}
	const nAccts = 128
	for i := 0; i < nAccts; i++ {
		if _, err := db.Exec(`INSERT INTO acct (id, bal, note) VALUES (?, 1000, ?)`,
			int64(i), fmt.Sprintf("acct-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	iters := 300
	if testing.Short() {
		iters = 60
	}

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	report := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}

	// Writer: balance transfers keep the invariant SUM(bal) constant.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < iters; i++ {
			from, to := int64(rng.Intn(nAccts)), int64(rng.Intn(nAccts))
			if from == to {
				continue
			}
			tx := db.Begin()
			if _, err := tx.Exec(`UPDATE acct SET bal = bal - 7 WHERE id = ?`, from); err != nil {
				report(err)
				tx.Rollback()
				return
			}
			if _, err := tx.Exec(`UPDATE acct SET bal = bal + 7 WHERE id = ?`, to); err != nil {
				report(err)
				tx.Rollback()
				return
			}
			if err := tx.Commit(); err != nil {
				report(err)
				return
			}
		}
	}()

	// Live readers: point lookups and scans under the shared lock.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				id := int64(rng.Intn(nAccts))
				row, err := db.QueryRow(`SELECT note FROM acct WHERE id = ?`, id)
				if err != nil {
					report(err)
					return
				}
				if row == nil || row["note"] != fmt.Sprintf("acct-%d", id) {
					report(fmt.Errorf("live read id=%d: got %v", id, row))
					return
				}
			}
		}(int64(r + 10))
	}

	// Snapshot readers: each snapshot must observe an exactly-balanced
	// total — a torn or version-skewed read breaks the invariant.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters/4; i++ {
				snap := db.Snapshot()
				rows, err := snap.Query(`SELECT SUM(bal) FROM acct`)
				if err != nil {
					snap.Close()
					report(err)
					return
				}
				if got := rowsExact(rows); got != fmt.Sprintf("%d\n", nAccts*1000) {
					snap.Close()
					report(fmt.Errorf("snapshot sum: got %q, want %d", got, nAccts*1000))
					return
				}
				snap.Close()
			}
		}()
	}

	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	st := db.EngineStats()
	if st.RowsEvicted == 0 {
		t.Fatal("hammer produced zero evictions")
	}
	if st.RowFaults == 0 {
		t.Fatal("hammer produced zero row faults")
	}
}

// TestPagingCheckpointIncremental verifies checkpoints stay cheap as
// the database grows: the page file is not rewritten wholesale, so the
// number of pages written per checkpoint tracks the write rate (the
// Checkpoints counter moving while WALSize resets is the observable
// here; E15 measures the wall-clock flatness).
func TestPagingCheckpointIncremental(t *testing.T) {
	dir := t.TempDir()
	db := openPaging(t, dir)
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE blob (id INTEGER PRIMARY KEY, pad TEXT)`); err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("p", 256)
	for i := 0; i < 500; i++ {
		if _, err := db.Exec(`INSERT INTO blob (id, pad) VALUES (?, ?)`, int64(i), pad); err != nil {
			t.Fatal(err)
		}
	}
	st := db.EngineStats()
	if st.Checkpoints == 0 {
		t.Fatal("no automatic checkpoint fired under a 64 KiB WAL threshold")
	}
	// Every record must remain reachable across an explicit checkpoint
	// plus reopen (incremental meta flip, not a rewrite).
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db = reopenPaging(t, db, dir)
	rows, err := db.Query(`SELECT COUNT(*) FROM blob`)
	if err != nil {
		t.Fatal(err)
	}
	if got := rowsExact(rows); got != "500\n" {
		t.Fatalf("after incremental checkpoints + reopen: got %q rows, want 500", got)
	}
}

// TestCrashPagingChildHelper is the crash child for the paging engine:
// a 16-row resident budget, a 64 KiB-class pool and four secondary
// index images, killed mid-storm by the parent. Columns derive from n
// so the parent can recompute what every index must answer.
func TestCrashPagingChildHelper(t *testing.T) {
	dir := os.Getenv("RDB_CRASH_PAGING_DIR")
	if dir == "" {
		t.Skip("not a crash child")
	}
	db, err := OpenDurableOpts(dir, DurableOptions{
		CheckpointBytes: 1 << 14,
		PoolPages:       64,
		ResidentRows:    16,
	})
	if err != nil {
		fmt.Printf("CHILD_ERR open: %v\n", err)
		os.Exit(3)
	}
	if len(db.TableNames()) == 0 {
		for _, sql := range []string{
			`CREATE TABLE ev (n INTEGER PRIMARY KEY, grp INTEGER, score INTEGER, tag TEXT UNIQUE, data TEXT)`,
			`CREATE INDEX ix_grp ON ev(grp)`,
			`CREATE ORDERED INDEX ord_sc ON ev(score)`,
			`CREATE INDEX cmp ON ev(grp, score)`,
		} {
			if _, err := db.Exec(sql); err != nil {
				fmt.Printf("CHILD_ERR ddl: %v\n", err)
				os.Exit(3)
			}
		}
	}
	start := int64(1)
	if row, err := db.QueryRow(`SELECT MAX(n) AS m FROM ev`); err == nil && row != nil && row["m"] != nil {
		start = row["m"].(int64) + 1
	}
	for n := start; ; n++ {
		if _, err := db.Exec(`INSERT INTO ev (n, grp, score, tag, data) VALUES (?, ?, ?, ?, ?)`,
			n, n%5, n%97, fmt.Sprintf("t%08d", n), fmt.Sprintf("payload-%d", n)); err != nil {
			fmt.Printf("CHILD_ERR insert: %v\n", err)
			os.Exit(3)
		}
		fmt.Printf("ACK %d\n", n)
	}
}

// TestCrashTorturePagingIndexes SIGKILLs the paging child across
// generations and verifies the persisted index images recover without
// a rebuild: zero resident rows right after open, no acknowledged
// commit lost, and hash/ordered/composite/unique/pk index paths all
// agreeing with recomputed ground truth.
func TestCrashTorturePagingIndexes(t *testing.T) {
	if testing.Short() {
		t.Skip("crash torture spawns child processes")
	}
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(0xFA111))
	var lastAck int64

	for gen := 0; gen < 3; gen++ {
		acked, err := runCrashChildNamed(t, dir, 5+rng.Intn(60), "TestCrashPagingChildHelper", "RDB_CRASH_PAGING_DIR")
		if err != nil {
			t.Fatalf("generation %d: %v", gen, err)
		}
		if acked > 0 {
			lastAck = acked
		}

		db := openPaging(t, dir)
		if st := db.EngineStats(); st.RowsResident != 0 {
			t.Fatalf("generation %d: recovery materialized %d rows (index rebuild?)", gen, st.RowsResident)
		}
		rows, err := db.Query(`SELECT n, grp, score, tag, data FROM ev ORDER BY n`)
		if err != nil {
			t.Fatalf("generation %d: %v", gen, err)
		}
		total := int64(rows.Len())
		if total < lastAck {
			t.Fatalf("generation %d: %d acked commits, only %d recovered", gen, lastAck, total)
		}
		grp3, score90, comp := 0, 0, 0
		for i, row := range rows.Data {
			n, ok := row[0].(int64)
			if !ok || n != int64(i+1) {
				t.Fatalf("generation %d: sequence hole at %d: %v", gen, i+1, row[0])
			}
			if row[1] != n%5 || row[2] != n%97 ||
				row[3] != fmt.Sprintf("t%08d", n) || row[4] != fmt.Sprintf("payload-%d", n) {
				t.Fatalf("generation %d: commit %d corrupted: %v", gen, n, row)
			}
			if n%5 == 3 {
				grp3++
			}
			if n%97 >= 90 {
				score90++
			}
			if n%5 == 2 && n%97 > 50 {
				comp++
			}
		}
		// Every index path must agree with the recomputed ground truth.
		for _, c := range []struct {
			sql  string
			args []Value
			want string
		}{
			{`SELECT COUNT(*) FROM ev WHERE grp = 3`, nil, fmt.Sprintf("%d\n", grp3)},
			{`SELECT COUNT(*) FROM ev WHERE score >= 90`, nil, fmt.Sprintf("%d\n", score90)},
			{`SELECT COUNT(*) FROM ev WHERE grp = 2 AND score > 50`, nil, fmt.Sprintf("%d\n", comp)},
			{`SELECT n FROM ev WHERE tag = ?`, []Value{fmt.Sprintf("t%08d", total)}, fmt.Sprintf("%d\n", total)},
			{`SELECT data FROM ev WHERE n = ?`, []Value{total}, fmt.Sprintf("payload-%d\n", total)},
		} {
			got, err := db.Query(c.sql, c.args...)
			if err != nil {
				t.Fatalf("generation %d: %s: %v", gen, c.sql, err)
			}
			if s := rowsExact(got); s != c.want {
				t.Fatalf("generation %d: %s: got %q, want %q", gen, c.sql, s, c.want)
			}
		}
		lastAck = total
		if err := db.Close(); err != nil {
			t.Fatalf("generation %d: close: %v", gen, err)
		}
	}
}

// TestPagingDumpRestoreStreams round-trips a mostly-evicted database
// through the chunked dump stream: Dump faults rows in bounded chunks
// rather than materializing tables, and restore into a second paging
// engine commits chunk by chunk, sweeping as it goes.
func TestPagingDumpRestoreStreams(t *testing.T) {
	dir := t.TempDir()
	db := openPaging(t, dir)
	defer db.Close()
	for _, sql := range []string{
		`CREATE TABLE dept (dno INTEGER PRIMARY KEY, dname TEXT UNIQUE)`,
		`CREATE TABLE emp (eno INTEGER PRIMARY KEY, dno INTEGER, name TEXT, FOREIGN KEY (dno) REFERENCES dept(dno))`,
		`CREATE INDEX ix_emp_dno ON emp(dno)`,
	} {
		if _, err := db.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	for d := 0; d < 4; d++ {
		if _, err := db.Exec(`INSERT INTO dept (dno, dname) VALUES (?, ?)`, int64(d), fmt.Sprintf("dept-%d", d)); err != nil {
			t.Fatal(err)
		}
	}
	const nEmp = 600 // >> dumpChunkRows and >> the 16-row budget
	for i := 0; i < nEmp; i++ {
		if _, err := db.Exec(`INSERT INTO emp (eno, dno, name) VALUES (?, ?, ?)`,
			int64(i), int64(i%4), fmt.Sprintf("emp-%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if db.EngineStats().RowsResident > pagingOpts.ResidentRows+1 {
		t.Fatalf("dataset not paged out before dump: %d resident", db.EngineStats().RowsResident)
	}

	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	// The source must stay paged out — a dump that materialized whole
	// tables would blow the budget past the row-cache wiggle room.
	if got := db.EngineStats().RowsResident; got > pagingOpts.ResidentRows+1 {
		t.Fatalf("dump materialized the database: %d rows resident", got)
	}

	dir2 := t.TempDir()
	db2 := openPaging(t, dir2)
	defer db2.Close()
	if err := db2.LoadDump(&buf); err != nil {
		t.Fatal(err)
	}
	if got := db2.EngineStats().RowsResident; got > pagingOpts.ResidentRows+dumpChunkRows {
		t.Fatalf("chunked restore held too many rows resident: %d", got)
	}
	for _, sql := range []string{
		`SELECT COUNT(*) FROM emp`,
		`SELECT COUNT(*) FROM emp WHERE dno = 2`,
		`SELECT name FROM emp WHERE eno = 123`,
		`SELECT dname FROM dept WHERE dno = 3`,
	} {
		a, err := db.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		b, err := db2.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		if rowsExact(a) != rowsExact(b) {
			t.Fatalf("%s: source %q, restored %q", sql, rowsExact(a), rowsExact(b))
		}
	}
}
