package rdb

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestQueryContextMatchesQuery(t *testing.T) {
	db := planDB(t)
	sql := `SELECT name FROM product WHERE family = 'fam1' AND price = 7`
	want, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	// Recorder on forces the instrumented path even without hooks.
	db.EnableQueryRecorder(8, 0)
	got, err := db.QueryContext(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Data) != fmt.Sprint(want.Data) {
		t.Fatalf("QueryContext %v != Query %v", got.Data, want.Data)
	}
}

func TestQueryRecorderCaptures(t *testing.T) {
	db := planDB(t)
	db.EnableQueryRecorder(8, 0) // min 0: capture everything
	ctx := context.Background()
	if _, err := db.QueryContext(ctx, `SELECT name FROM product WHERE oid = ?`, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QueryContext(ctx, `SELECT code FROM product WHERE price > 20`); err != nil {
		t.Fatal(err)
	}
	recs := db.QueryRecords(0, 0)
	if len(recs) != 2 {
		t.Fatalf("captured %d records, want 2", len(recs))
	}
	// Newest first.
	if !strings.Contains(recs[0].SQL, "price > 20") {
		t.Fatalf("records not newest-first: %q", recs[0].SQL)
	}
	r := recs[1]
	if len(r.Params) != 1 || fmt.Sprint(r.Params[0]) != "3" {
		t.Fatalf("bound params not captured: %v", r.Params)
	}
	if r.Rows != 1 {
		t.Fatalf("row count not captured: %d", r.Rows)
	}
	if !strings.Contains(r.Plan, "BY PRIMARY KEY ON oid") || !strings.Contains(r.Plan, "actual 1 rows") {
		t.Fatalf("analyzed plan not captured: %q", r.Plan)
	}
	if !strings.Contains(r.Plan, "\nPLAN: ") {
		t.Fatalf("plan provenance missing: %q", r.Plan)
	}
	if got := db.Stats().QueriesRecorded; got != 2 {
		t.Fatalf("QueriesRecorded = %d, want 2", got)
	}
}

func TestQueryRecorderThreshold(t *testing.T) {
	db := planDB(t)
	db.EnableQueryRecorder(8, time.Hour) // nothing is ever that slow
	if _, err := db.QueryContext(context.Background(), `SELECT name FROM product WHERE oid = 1`); err != nil {
		t.Fatal(err)
	}
	if recs := db.QueryRecords(0, 0); len(recs) != 0 {
		t.Fatalf("fast query captured despite threshold: %d records", len(recs))
	}
	// The min filter on read also applies.
	db.EnableQueryRecorder(8, 0)
	if _, err := db.QueryContext(context.Background(), `SELECT name FROM product WHERE oid = 1`); err != nil {
		t.Fatal(err)
	}
	if recs := db.QueryRecords(time.Hour, 0); len(recs) != 0 {
		t.Fatalf("read-side min filter not applied: %d records", len(recs))
	}
}

func TestQueryRecorderRingWraps(t *testing.T) {
	db := planDB(t)
	db.EnableQueryRecorder(2, 0)
	ctx := context.Background()
	for i := 1; i <= 3; i++ {
		if _, err := db.QueryContext(ctx, fmt.Sprintf(`SELECT name FROM product WHERE oid = %d`, i)); err != nil {
			t.Fatal(err)
		}
	}
	recs := db.QueryRecords(0, 0)
	if len(recs) != 2 {
		t.Fatalf("ring holds %d records, want 2", len(recs))
	}
	if !strings.Contains(recs[0].SQL, "oid = 3") || !strings.Contains(recs[1].SQL, "oid = 2") {
		t.Fatalf("ring kept wrong entries: %q, %q", recs[0].SQL, recs[1].SQL)
	}
}

func TestQueryRecorderDisable(t *testing.T) {
	db := planDB(t)
	db.EnableQueryRecorder(8, 0)
	if on, _ := db.RecorderEnabled(); !on {
		t.Fatal("recorder should be enabled")
	}
	if _, err := db.QueryContext(context.Background(), `SELECT name FROM product WHERE oid = 1`); err != nil {
		t.Fatal(err)
	}
	db.DisableQueryRecorder()
	if on, _ := db.RecorderEnabled(); on {
		t.Fatal("recorder should be disabled")
	}
	if recs := db.QueryRecords(0, 0); recs != nil {
		t.Fatalf("disabled recorder returned records: %v", recs)
	}
}

// spanLog is a test TraceHooks sink: it records every span the data
// tier opens, regardless of context.
type spanLog struct {
	mu    sync.Mutex
	spans []struct {
		name   string
		err    error
		labels []string
	}
}

func (l *spanLog) hooks(traceID uint64) *TraceHooks {
	return &TraceHooks{
		Span: func(_ context.Context, name string) SpanFinish {
			return func(err error, labels ...string) {
				l.mu.Lock()
				l.spans = append(l.spans, struct {
					name   string
					err    error
					labels []string
				}{name, err, labels})
				l.mu.Unlock()
			}
		},
		TraceID: func(context.Context) uint64 { return traceID },
	}
}

func (l *spanLog) label(i int, key string) string {
	l.mu.Lock()
	defer l.mu.Unlock()
	ls := l.spans[i].labels
	for j := 0; j+1 < len(ls); j += 2 {
		if ls[j] == key {
			return ls[j+1]
		}
	}
	return ""
}

func (l *spanLog) names() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, len(l.spans))
	for i, s := range l.spans {
		out[i] = s.name
	}
	return out
}

func TestTraceHooksQuerySpan(t *testing.T) {
	db := planDB(t)
	log := &spanLog{}
	db.SetTraceHooks(log.hooks(42))
	ctx := context.Background()
	sql := `SELECT name FROM product WHERE oid = 3`
	if _, err := db.QueryContext(ctx, sql); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QueryContext(ctx, sql); err != nil {
		t.Fatal(err)
	}
	names := log.names()
	if len(names) != 2 || names[0] != "rdb.query" {
		t.Fatalf("spans = %v, want two rdb.query", names)
	}
	if got := log.label(0, "access"); got != "pk" {
		t.Fatalf("access label = %q, want pk", got)
	}
	if got := log.label(0, "rows"); got != "1" {
		t.Fatalf("rows label = %q, want 1", got)
	}
	if log.label(0, "plan_cache") != "miss" || log.label(1, "plan_cache") != "hit" {
		t.Fatalf("plan_cache labels = %q, %q, want miss then hit",
			log.label(0, "plan_cache"), log.label(1, "plan_cache"))
	}
	if log.label(0, "sql") == "" {
		t.Fatal("sql label missing")
	}
}

func TestTraceHooksExecAndCommitSpans(t *testing.T) {
	db := planDB(t)
	log := &spanLog{}
	db.SetTraceHooks(log.hooks(7))
	ctx := context.Background()
	if _, err := db.ExecContext(ctx, `INSERT INTO family (name) VALUES ('traced')`); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if _, err := tx.Exec(`INSERT INTO family (name) VALUES ('tx-traced')`); err != nil {
		t.Fatal(err)
	}
	if err := tx.CommitContext(ctx); err != nil {
		t.Fatal(err)
	}
	names := log.names()
	var sawExec, sawCommit bool
	for _, n := range names {
		switch n {
		case "rdb.exec":
			sawExec = true
		case "rdb.commit":
			sawCommit = true
		}
	}
	if !sawExec || !sawCommit {
		t.Fatalf("spans = %v, want rdb.exec and rdb.commit", names)
	}
	if got := log.label(0, "ops"); got != "1" {
		t.Fatalf("ops label = %q, want 1", got)
	}
	if log.label(0, "wal_append") == "" {
		t.Fatal("wal_append label missing")
	}
}

func TestTraceHooksSnapshotSpan(t *testing.T) {
	db := planDB(t)
	log := &spanLog{}
	db.SetTraceHooks(log.hooks(9))
	snap := db.Snapshot()
	defer snap.Close()
	if _, err := snap.QueryContext(context.Background(), `SELECT name FROM product WHERE oid = 1`); err != nil {
		t.Fatal(err)
	}
	names := log.names()
	if len(names) != 1 || names[0] != "rdb.snapshot.query" {
		t.Fatalf("spans = %v, want one rdb.snapshot.query", names)
	}
	if log.label(0, "snapshot_seq") == "" {
		t.Fatal("snapshot_seq label missing")
	}
}

func TestQueryRecorderStampsTraceID(t *testing.T) {
	db := planDB(t)
	log := &spanLog{}
	db.SetTraceHooks(log.hooks(0xabcd))
	db.EnableQueryRecorder(4, 0)
	if _, err := db.QueryContext(context.Background(), `SELECT name FROM product WHERE oid = 2`); err != nil {
		t.Fatal(err)
	}
	recs := db.QueryRecords(0, 0)
	if len(recs) != 1 || recs[0].TraceID != 0xabcd {
		t.Fatalf("trace ID not stamped: %+v", recs)
	}
}
