package rdb

import (
	"context"
	"testing"
)

// Observability-overhead benchmarks: the acceptance bar is that with
// tracing merely *available* (hooks installed but the request
// untraced, recorder off) the hot path stays within noise of the
// uninstrumented Query, and full analysis stays affordable. CI
// archives these as BENCH_obsdeep.json.

// BenchmarkObsQueryPlain is the PR-6 baseline: db.Query, no
// observability anywhere.
func BenchmarkObsQueryPlain(b *testing.B) {
	db := benchDB(b, 100, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT name FROM item WHERE oid = ?`, int64(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsQueryContextDisabled measures the disabled path: no
// hooks, no recorder — one atomic load each, then straight delegation
// to Query.
func BenchmarkObsQueryContextDisabled(b *testing.B) {
	db := benchDB(b, 100, true)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.QueryContext(ctx, `SELECT name FROM item WHERE oid = ?`, int64(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsQueryContextUntraced measures hooks installed but the
// context untraced (the sampled-out production case): Span returns
// nil, so the DB skips instrumentation entirely.
func BenchmarkObsQueryContextUntraced(b *testing.B) {
	db := benchDB(b, 100, true)
	db.SetTraceHooks(&TraceHooks{
		Span:    func(context.Context, string) SpanFinish { return nil },
		TraceID: func(context.Context) uint64 { return 0 },
	})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.QueryContext(ctx, `SELECT name FROM item WHERE oid = ?`, int64(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsQueryContextAnalyzed measures full analysis: recorder on
// at threshold zero, so every execution collects operator counters,
// renders its analyzed plan and pushes a record into the ring.
func BenchmarkObsQueryContextAnalyzed(b *testing.B) {
	db := benchDB(b, 100, true)
	db.EnableQueryRecorder(128, 0)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.QueryContext(ctx, `SELECT name FROM item WHERE oid = ?`, int64(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsExplainAnalyze measures the EXPLAIN ANALYZE entry point
// itself (execute + render).
func BenchmarkObsExplainAnalyze(b *testing.B) {
	db := benchDB(b, 100, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.ExplainAnalyze(`SELECT name FROM item WHERE grp = ?`, int64(7)); err != nil {
			b.Fatal(err)
		}
	}
}
