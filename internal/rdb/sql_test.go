package rdb

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func testDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	stmts := []string{
		`CREATE TABLE volume (oid INTEGER PRIMARY KEY AUTOINCREMENT, title TEXT NOT NULL, year INTEGER)`,
		`CREATE TABLE issue (oid INTEGER PRIMARY KEY AUTOINCREMENT, number INTEGER, volume_oid INTEGER,
			FOREIGN KEY (volume_oid) REFERENCES volume(oid))`,
		`CREATE TABLE paper (oid INTEGER PRIMARY KEY AUTOINCREMENT, title TEXT, pages INTEGER, issue_oid INTEGER,
			FOREIGN KEY (issue_oid) REFERENCES issue(oid))`,
		`CREATE INDEX idx_issue_volume ON issue(volume_oid)`,
		`CREATE INDEX idx_paper_issue ON paper(issue_oid)`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("setup %q: %v", s, err)
		}
	}
	mustExec(t, db, `INSERT INTO volume (title, year) VALUES ('TODS 27', 2002), ('TODS 26', 2001)`)
	mustExec(t, db, `INSERT INTO issue (number, volume_oid) VALUES (1, 1), (2, 1), (1, 2)`)
	mustExec(t, db, `INSERT INTO paper (title, pages, issue_oid) VALUES
		('Query Optimization', 30, 1),
		('Web Modelling', 25, 1),
		('Caching Dynamic Content', 40, 2),
		('Views and Updates', 22, 3)`)
	return db
}

func mustExec(t *testing.T, db *DB, sql string, args ...Value) Result {
	t.Helper()
	res, err := db.Exec(sql, args...)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

func mustQuery(t *testing.T, db *DB, sql string, args ...Value) *Rows {
	t.Helper()
	rows, err := db.Query(sql, args...)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return rows
}

func TestSelectAll(t *testing.T) {
	db := testDB(t)
	rows := mustQuery(t, db, `SELECT * FROM volume`)
	if rows.Len() != 2 {
		t.Fatalf("rows = %d", rows.Len())
	}
	if got := len(rows.Columns); got != 3 {
		t.Fatalf("columns = %v", rows.Columns)
	}
}

func TestSelectWherePrimaryKey(t *testing.T) {
	db := testDB(t)
	rows := mustQuery(t, db, `SELECT title FROM volume WHERE oid = ?`, 1)
	if rows.Len() != 1 || rows.Data[0][0] != "TODS 27" {
		t.Fatalf("got %v", rows.Data)
	}
}

func TestSelectProjectionAndAlias(t *testing.T) {
	db := testDB(t)
	rows := mustQuery(t, db, `SELECT title AS t, year FROM volume WHERE year = 2002`)
	if rows.Columns[0] != "t" || rows.Columns[1] != "year" {
		t.Fatalf("columns = %v", rows.Columns)
	}
	if rows.Data[0][0] != "TODS 27" {
		t.Fatalf("data = %v", rows.Data)
	}
}

func TestSelectComparisons(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		where string
		want  int
	}{
		{"pages > 25", 2},
		{"pages >= 25", 3},
		{"pages < 25", 1},
		{"pages <> 30", 3},
		{"pages = 30", 1},
		{"pages BETWEEN 25 AND 35", 2},
		{"pages IN (22, 40)", 2},
		{"pages NOT IN (22, 40)", 2},
		{"NOT pages = 30", 3},
		{"pages > 20 AND pages < 28", 2},
		{"pages < 23 OR pages > 35", 2},
	}
	for _, c := range cases {
		rows := mustQuery(t, db, `SELECT oid FROM paper WHERE `+c.where)
		if rows.Len() != c.want {
			t.Errorf("WHERE %s: got %d rows, want %d", c.where, rows.Len(), c.want)
		}
	}
}

func TestSelectLike(t *testing.T) {
	db := testDB(t)
	rows := mustQuery(t, db, `SELECT title FROM paper WHERE title LIKE ?`, "%web%")
	if rows.Len() != 1 || rows.Data[0][0] != "Web Modelling" {
		t.Fatalf("got %v", rows.Data)
	}
	rows = mustQuery(t, db, `SELECT title FROM paper WHERE title LIKE 'Views and Update_'`)
	if rows.Len() != 1 {
		t.Fatalf("got %v", rows.Data)
	}
}

func TestSelectOrderLimitOffset(t *testing.T) {
	db := testDB(t)
	rows := mustQuery(t, db, `SELECT title FROM paper ORDER BY pages DESC LIMIT 2 OFFSET 1`)
	if rows.Len() != 2 {
		t.Fatalf("rows = %d", rows.Len())
	}
	if rows.Data[0][0] != "Query Optimization" || rows.Data[1][0] != "Web Modelling" {
		t.Fatalf("got %v", rows.Data)
	}
}

func TestSelectOrderMultipleKeys(t *testing.T) {
	db := testDB(t)
	rows := mustQuery(t, db, `SELECT number, volume_oid FROM issue ORDER BY number ASC, volume_oid DESC`)
	want := [][]Value{{int64(1), int64(2)}, {int64(1), int64(1)}, {int64(2), int64(1)}}
	for i, w := range want {
		if rows.Data[i][0] != w[0] || rows.Data[i][1] != w[1] {
			t.Fatalf("row %d = %v, want %v", i, rows.Data[i], w)
		}
	}
}

func TestSelectDistinct(t *testing.T) {
	db := testDB(t)
	rows := mustQuery(t, db, `SELECT DISTINCT number FROM issue`)
	if rows.Len() != 2 {
		t.Fatalf("rows = %v", rows.Data)
	}
}

func TestInnerJoin(t *testing.T) {
	db := testDB(t)
	rows := mustQuery(t, db, `
		SELECT v.title, i.number, p.title
		FROM volume v
		JOIN issue i ON i.volume_oid = v.oid
		JOIN paper p ON p.issue_oid = i.oid
		WHERE v.oid = ?
		ORDER BY p.pages`, 1)
	if rows.Len() != 3 {
		t.Fatalf("rows = %d: %v", rows.Len(), rows.Data)
	}
	for _, r := range rows.Data {
		if r[0] != "TODS 27" {
			t.Fatalf("wrong volume in %v", r)
		}
	}
}

func TestLeftJoin(t *testing.T) {
	db := testDB(t)
	// Issue 3 (volume 2, number 1) has one paper; add an empty issue.
	mustExec(t, db, `INSERT INTO issue (number, volume_oid) VALUES (9, 2)`)
	rows := mustQuery(t, db, `
		SELECT i.number, p.title FROM issue i
		LEFT JOIN paper p ON p.issue_oid = i.oid
		WHERE i.volume_oid = 2
		ORDER BY i.number`)
	if rows.Len() != 2 {
		t.Fatalf("rows = %v", rows.Data)
	}
	if rows.Data[1][1] != nil {
		t.Fatalf("expected NULL paper title for empty issue, got %v", rows.Data[1][1])
	}
}

func TestJoinWithoutIndexFallsBackToNestedLoop(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE a (x INTEGER)`)
	mustExec(t, db, `CREATE TABLE b (y INTEGER)`)
	mustExec(t, db, `INSERT INTO a (x) VALUES (1), (2)`)
	mustExec(t, db, `INSERT INTO b (y) VALUES (2), (3)`)
	rows := mustQuery(t, db, `SELECT a.x FROM a JOIN b ON a.x = b.y`)
	if rows.Len() != 1 || rows.Data[0][0] != int64(2) {
		t.Fatalf("got %v", rows.Data)
	}
}

func TestAggregates(t *testing.T) {
	db := testDB(t)
	rows := mustQuery(t, db, `SELECT COUNT(*), SUM(pages), MIN(pages), MAX(pages), AVG(pages) FROM paper`)
	r := rows.Data[0]
	if r[0] != int64(4) || r[1] != int64(117) || r[2] != int64(22) || r[3] != int64(40) {
		t.Fatalf("got %v", r)
	}
	if avg := r[4].(float64); avg < 29.2 || avg > 29.3 {
		t.Fatalf("avg = %v", avg)
	}
}

func TestGroupByHaving(t *testing.T) {
	db := testDB(t)
	rows := mustQuery(t, db, `
		SELECT issue_oid, COUNT(*) AS n FROM paper
		GROUP BY issue_oid HAVING COUNT(*) > 1`)
	if rows.Len() != 1 || rows.Data[0][0] != int64(1) || rows.Data[0][1] != int64(2) {
		t.Fatalf("got %v", rows.Data)
	}
}

func TestCountEmptyGroup(t *testing.T) {
	db := testDB(t)
	rows := mustQuery(t, db, `SELECT COUNT(*) FROM paper WHERE pages > 1000`)
	if rows.Data[0][0] != int64(0) {
		t.Fatalf("got %v", rows.Data)
	}
}

func TestScalarFunctions(t *testing.T) {
	db := testDB(t)
	rows := mustQuery(t, db, `SELECT LOWER(title), UPPER(title), LENGTH(title) FROM volume WHERE oid = 1`)
	r := rows.Data[0]
	if r[0] != "tods 27" || r[1] != "TODS 27" || r[2] != int64(7) {
		t.Fatalf("got %v", r)
	}
}

func TestInsertAutoIncrementAndLastID(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `INSERT INTO volume (title, year) VALUES (?, ?)`, "TODS 28", 2003)
	if res.LastInsertID != 3 || res.RowsAffected != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestUpdate(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `UPDATE paper SET pages = pages + 5 WHERE issue_oid = 1`)
	if res.RowsAffected != 2 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
	rows := mustQuery(t, db, `SELECT SUM(pages) FROM paper`)
	if rows.Data[0][0] != int64(127) {
		t.Fatalf("sum = %v", rows.Data[0][0])
	}
}

func TestDelete(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `DELETE FROM paper WHERE pages < 25`)
	if res.RowsAffected != 1 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
	n, _ := db.RowCount("paper")
	if n != 3 {
		t.Fatalf("count = %d", n)
	}
}

func TestDeleteThenReinsertKeepsIndexesConsistent(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `DELETE FROM paper WHERE issue_oid = 1`)
	mustExec(t, db, `INSERT INTO paper (title, pages, issue_oid) VALUES ('New One', 10, 1)`)
	rows := mustQuery(t, db, `SELECT title FROM paper WHERE issue_oid = ?`, 1)
	if rows.Len() != 1 || rows.Data[0][0] != "New One" {
		t.Fatalf("got %v", rows.Data)
	}
}

func TestPrimaryKeyDuplicateRejected(t *testing.T) {
	db := testDB(t)
	_, err := db.Exec(`INSERT INTO volume (oid, title) VALUES (1, 'dup')`)
	if err == nil || !strings.Contains(err.Error(), "duplicate primary key") {
		t.Fatalf("err = %v", err)
	}
}

func TestNotNullRejected(t *testing.T) {
	db := testDB(t)
	_, err := db.Exec(`INSERT INTO volume (title, year) VALUES (NULL, 2002)`)
	if err == nil || !strings.Contains(err.Error(), "NOT NULL") {
		t.Fatalf("err = %v", err)
	}
}

func TestUniqueConstraint(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE u (oid INTEGER PRIMARY KEY AUTOINCREMENT, email TEXT UNIQUE)`)
	mustExec(t, db, `INSERT INTO u (email) VALUES ('a@x')`)
	if _, err := db.Exec(`INSERT INTO u (email) VALUES ('a@x')`); err == nil {
		t.Fatal("duplicate unique value accepted")
	}
	// Unique lookups also serve as an index.
	rows := mustQuery(t, db, `SELECT oid FROM u WHERE email = 'a@x'`)
	if rows.Len() != 1 {
		t.Fatalf("got %v", rows.Data)
	}
}

func TestForeignKeyEnforced(t *testing.T) {
	db := testDB(t)
	_, err := db.Exec(`INSERT INTO issue (number, volume_oid) VALUES (1, 99)`)
	if err == nil || !strings.Contains(err.Error(), "foreign key violation") {
		t.Fatalf("err = %v", err)
	}
	// NULL foreign keys are allowed.
	mustExec(t, db, `INSERT INTO issue (number, volume_oid) VALUES (1, NULL)`)
}

func TestIsNull(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `INSERT INTO issue (number, volume_oid) VALUES (7, NULL)`)
	rows := mustQuery(t, db, `SELECT number FROM issue WHERE volume_oid IS NULL`)
	if rows.Len() != 1 || rows.Data[0][0] != int64(7) {
		t.Fatalf("got %v", rows.Data)
	}
	rows = mustQuery(t, db, `SELECT COUNT(*) FROM issue WHERE volume_oid IS NOT NULL`)
	if rows.Data[0][0] != int64(3) {
		t.Fatalf("got %v", rows.Data)
	}
}

func TestParamCountMismatch(t *testing.T) {
	db := testDB(t)
	if _, err := db.Query(`SELECT * FROM volume WHERE oid = ?`); err == nil {
		t.Fatal("missing parameter accepted")
	}
	if _, err := db.Query(`SELECT * FROM volume`, 1); err == nil {
		t.Fatal("extra parameter accepted")
	}
}

func TestSyntaxErrors(t *testing.T) {
	db := testDB(t)
	bad := []string{
		`SELEC * FROM volume`,
		`SELECT * FROM`,
		`SELECT * FROM volume WHERE`,
		`INSERT INTO volume (title) VALUES ('a', 'b')`,
		`CREATE TABLE t (x BLOBBY)`,
		`SELECT * FROM volume; SELECT 1 FROM volume`,
	}
	for _, s := range bad {
		if _, err := db.Query(s); err == nil {
			if _, err2 := db.Exec(s); err2 == nil {
				t.Errorf("statement %q accepted", s)
			}
		}
	}
}

func TestUnknownTableAndColumn(t *testing.T) {
	db := testDB(t)
	if _, err := db.Query(`SELECT * FROM nothere`); err == nil {
		t.Fatal("unknown table accepted")
	}
	if _, err := db.Query(`SELECT nope FROM volume`); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestDropTable(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `DROP TABLE paper`)
	if _, err := db.Query(`SELECT * FROM paper`); err == nil {
		t.Fatal("dropped table still queryable")
	}
	mustExec(t, db, `DROP TABLE IF EXISTS paper`)
	if _, err := db.Exec(`DROP TABLE paper`); err == nil {
		t.Fatal("double drop accepted")
	}
}

func TestCreateTableIfNotExists(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE IF NOT EXISTS volume (oid INTEGER PRIMARY KEY)`)
	if _, err := db.Exec(`CREATE TABLE volume (oid INTEGER PRIMARY KEY)`); err == nil {
		t.Fatal("duplicate table accepted")
	}
}

func TestStringEscapes(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `INSERT INTO volume (title) VALUES ('O''Reilly')`)
	rows := mustQuery(t, db, `SELECT title FROM volume WHERE title LIKE 'O''%'`)
	if rows.Len() != 1 || rows.Data[0][0] != "O'Reilly" {
		t.Fatalf("got %v", rows.Data)
	}
}

func TestArithmeticInProjection(t *testing.T) {
	db := testDB(t)
	rows := mustQuery(t, db, `SELECT pages * 2 + 1 FROM paper WHERE oid = 1`)
	if rows.Data[0][0] != int64(61) {
		t.Fatalf("got %v", rows.Data)
	}
	if _, err := db.Query(`SELECT pages / 0 FROM paper`); err == nil {
		t.Fatal("division by zero accepted")
	}
}

func TestQueryRow(t *testing.T) {
	db := testDB(t)
	m, err := db.QueryRow(`SELECT title, year FROM volume WHERE oid = ?`, 2)
	if err != nil || m == nil {
		t.Fatalf("m=%v err=%v", m, err)
	}
	if m["title"] != "TODS 26" {
		t.Fatalf("m = %v", m)
	}
	m, err = db.QueryRow(`SELECT title FROM volume WHERE oid = 99`)
	if err != nil || m != nil {
		t.Fatalf("expected nil map, got %v err %v", m, err)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	db := testDB(t)
	var wg sync.WaitGroup
	errs := make(chan error, 40)
	for i := 0; i < 20; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			if _, err := db.Query(`SELECT COUNT(*) FROM paper`); err != nil {
				errs <- err
			}
		}()
		go func(i int) {
			defer wg.Done()
			if _, err := db.Exec(`INSERT INTO volume (title, year) VALUES (?, ?)`, fmt.Sprintf("v%d", i), 2000+i); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	n, _ := db.RowCount("volume")
	if n != 22 {
		t.Fatalf("volume count = %d", n)
	}
}

// Property: LIKE with a pattern built only from literals and % behaves as
// substring containment when the pattern is %s%.
func TestLikeContainmentProperty(t *testing.T) {
	f := func(hay, needle string) bool {
		clean := func(s string) string {
			return strings.Map(func(r rune) rune {
				if r == '%' || r == '_' || r == '\'' {
					return 'x'
				}
				if r < 32 || r > 126 {
					return 'y'
				}
				return r
			}, s)
		}
		h, n := clean(hay), clean(needle)
		got := likeMatch(h, "%"+n+"%")
		want := strings.Contains(strings.ToLower(h), strings.ToLower(n))
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: for any set of inserted values, COUNT(*) equals the number of
// inserts minus deletes.
func TestCountInvariantProperty(t *testing.T) {
	f := func(vals []int16) bool {
		db := Open()
		if _, err := db.Exec(`CREATE TABLE t (oid INTEGER PRIMARY KEY AUTOINCREMENT, v INTEGER)`); err != nil {
			return false
		}
		for _, v := range vals {
			if _, err := db.Exec(`INSERT INTO t (v) VALUES (?)`, int64(v)); err != nil {
				return false
			}
		}
		res, err := db.Exec(`DELETE FROM t WHERE v < 0`)
		if err != nil {
			return false
		}
		rows, err := db.Query(`SELECT COUNT(*) FROM t`)
		if err != nil {
			return false
		}
		return rows.Data[0][0] == int64(len(vals)-res.RowsAffected)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: index-assisted equality lookups agree with full scans.
func TestIndexScanEquivalenceProperty(t *testing.T) {
	f := func(vals []uint8, probe uint8) bool {
		indexed := Open()
		plain := Open()
		for _, db := range []*DB{indexed, plain} {
			if _, err := db.Exec(`CREATE TABLE t (oid INTEGER PRIMARY KEY AUTOINCREMENT, v INTEGER)`); err != nil {
				return false
			}
		}
		if _, err := indexed.Exec(`CREATE INDEX it ON t(v)`); err != nil {
			return false
		}
		for _, v := range vals {
			for _, db := range []*DB{indexed, plain} {
				if _, err := db.Exec(`INSERT INTO t (v) VALUES (?)`, int64(v)); err != nil {
					return false
				}
			}
		}
		a, err1 := indexed.Query(`SELECT COUNT(*) FROM t WHERE v = ?`, int64(probe))
		b, err2 := plain.Query(`SELECT COUNT(*) FROM t WHERE v = ?`, int64(probe))
		if err1 != nil || err2 != nil {
			return false
		}
		return a.Data[0][0] == b.Data[0][0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestValueCoercions(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE t (i INTEGER, r REAL, s TEXT, b BOOLEAN)`)
	mustExec(t, db, `INSERT INTO t (i, r, s, b) VALUES (?, ?, ?, ?)`, 5, 1.5, "x", true)
	mustExec(t, db, `INSERT INTO t (i, r, s, b) VALUES (?, ?, ?, ?)`, int32(6), float32(2.5), []byte("y"), false)
	rows := mustQuery(t, db, `SELECT i, r, s, b FROM t ORDER BY i`)
	if rows.Data[0][0] != int64(5) || rows.Data[1][0] != int64(6) {
		t.Fatalf("ints: %v", rows.Data)
	}
	if rows.Data[1][2] != "y" {
		t.Fatalf("text: %v", rows.Data)
	}
	if rows.Data[0][3] != true || rows.Data[1][3] != false {
		t.Fatalf("bools: %v", rows.Data)
	}
}

func TestBoolAndIntComparisons(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE t (b BOOLEAN)`)
	mustExec(t, db, `INSERT INTO t (b) VALUES (TRUE), (FALSE), (TRUE)`)
	rows := mustQuery(t, db, `SELECT COUNT(*) FROM t WHERE b = TRUE`)
	if rows.Data[0][0] != int64(2) {
		t.Fatalf("got %v", rows.Data)
	}
}

func TestStarWithJoinProjectsAllFrames(t *testing.T) {
	db := testDB(t)
	rows := mustQuery(t, db, `SELECT * FROM issue i JOIN volume v ON v.oid = i.volume_oid WHERE i.oid = 1`)
	// issue has 3 columns, volume has 3.
	if len(rows.Columns) != 6 {
		t.Fatalf("columns = %v", rows.Columns)
	}
}

func TestQualifiedStar(t *testing.T) {
	db := testDB(t)
	rows := mustQuery(t, db, `SELECT v.* FROM issue i JOIN volume v ON v.oid = i.volume_oid WHERE i.oid = 1`)
	if len(rows.Columns) != 3 {
		t.Fatalf("columns = %v", rows.Columns)
	}
}

func TestAmbiguousColumnRejected(t *testing.T) {
	db := testDB(t)
	if _, err := db.Query(`SELECT oid FROM issue i JOIN volume v ON v.oid = i.volume_oid`); err == nil {
		t.Fatal("ambiguous column accepted")
	}
}

func TestCoalesceAndSubstr(t *testing.T) {
	db := testDB(t)
	rows := mustQuery(t, db, `SELECT COALESCE(NULL, 'fallback'), SUBSTR(title, 1, 4) FROM volume WHERE oid = 1`)
	if rows.Data[0][0] != "fallback" || rows.Data[0][1] != "TODS" {
		t.Fatalf("got %v", rows.Data)
	}
}
