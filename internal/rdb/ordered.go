package rdb

import "sort"

// orderedIndex is a sorted secondary index supporting range scans for
// inequality predicates (<, <=, >, >=, BETWEEN). Entries are kept sorted
// by (value, rowID); NULLs are not indexed.
type orderedIndex struct {
	entries []ordEntry
}

type ordEntry struct {
	val Value
	id  int
}

// search returns the position of the first entry >= (v, id).
func (ix *orderedIndex) search(v Value, id int) int {
	return sort.Search(len(ix.entries), func(i int) bool {
		c, err := compareValues(ix.entries[i].val, v)
		if err != nil {
			// Heterogeneous values cannot occur: column values are
			// coerced to the column type on insert.
			return true
		}
		if c != 0 {
			return c > 0
		}
		return ix.entries[i].id >= id
	})
}

func (ix *orderedIndex) insert(v Value, id int) {
	pos := ix.search(v, id)
	ix.entries = append(ix.entries, ordEntry{})
	copy(ix.entries[pos+1:], ix.entries[pos:])
	ix.entries[pos] = ordEntry{val: v, id: id}
}

func (ix *orderedIndex) remove(v Value, id int) {
	pos := ix.search(v, id)
	if pos < len(ix.entries) && ix.entries[pos].id == id {
		if c, err := compareValues(ix.entries[pos].val, v); err == nil && c == 0 {
			ix.entries = append(ix.entries[:pos], ix.entries[pos+1:]...)
		}
	}
}

// rangeBound is one side of a range scan.
type rangeBound struct {
	val       Value
	inclusive bool
	set       bool
}

// bounds returns the half-open entry range with lo <= val <= hi
// (subject to the bounds' inclusivity); unset bounds are open.
func (ix *orderedIndex) bounds(lo, hi rangeBound) (int, int) {
	start := 0
	if lo.set {
		start = sort.Search(len(ix.entries), func(i int) bool {
			c, err := compareValues(ix.entries[i].val, lo.val)
			if err != nil {
				return true
			}
			if lo.inclusive {
				return c >= 0
			}
			return c > 0
		})
	}
	end := len(ix.entries)
	if hi.set {
		end = sort.Search(len(ix.entries), func(i int) bool {
			c, err := compareValues(ix.entries[i].val, hi.val)
			if err != nil {
				return true
			}
			if hi.inclusive {
				return c > 0
			}
			return c >= 0
		})
	}
	if end < start {
		end = start
	}
	return start, end
}

// scan returns the row ids inside bounds(lo, hi).
func (ix *orderedIndex) scan(lo, hi rangeBound) []int {
	start, end := ix.bounds(lo, hi)
	if start >= end {
		return nil
	}
	ids := make([]int, 0, end-start)
	for _, e := range ix.entries[start:end] {
		ids = append(ids, e.id)
	}
	return ids
}

// createOrderedIndex builds a sorted index over one column.
func (t *table) createOrderedIndex(colName string) error {
	lower := lowerKey(colName)
	i, ok := t.colIdx[lower]
	if !ok {
		return errNoColumn(t.name, colName)
	}
	if _, exists := t.ordered[lower]; exists {
		return nil
	}
	ix := &orderedIndex{}
	for id := range t.rows {
		r := t.rowAt(id)
		if r == nil || r[i] == nil {
			continue
		}
		ix.insert(r[i], id)
	}
	t.ordered[lower] = ix
	return nil
}

// rangeLookup returns candidate row ids for a range predicate on col, or
// ok=false when the column has no ordered index.
func (t *table) rangeLookup(colName string, lo, hi rangeBound) ([]int, bool) {
	ix, ok := t.ordered[lowerKey(colName)]
	if !ok {
		return nil, false
	}
	return ix.scan(lo, hi), true
}
