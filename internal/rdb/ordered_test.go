package rdb

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func orderedDB(t *testing.T, vals []int64) *DB {
	t.Helper()
	db := Open()
	mustExec(t, db, `CREATE TABLE m (oid INTEGER PRIMARY KEY AUTOINCREMENT, v INTEGER, label TEXT)`)
	mustExec(t, db, `CREATE ORDERED INDEX om ON m(v)`)
	for i, v := range vals {
		mustExec(t, db, `INSERT INTO m (v, label) VALUES (?, ?)`, v, fmt.Sprintf("r%d", i))
	}
	return db
}

func TestOrderedIndexRangeQueries(t *testing.T) {
	db := orderedDB(t, []int64{5, 1, 9, 3, 7, 3, 8})
	cases := []struct {
		where string
		want  int64
	}{
		{"v > 3", 4},
		{"v >= 3", 6},
		{"v < 5", 3},
		{"v <= 5", 4},
		{"v BETWEEN 3 AND 7", 4},
		{"v > 2 AND v < 8", 4},
		{"v > 100", 0},
		{"v < 0", 0},
	}
	for _, c := range cases {
		rows := mustQuery(t, db, `SELECT COUNT(*) FROM m WHERE `+c.where)
		if rows.Data[0][0] != c.want {
			t.Errorf("WHERE %s: got %v, want %d", c.where, rows.Data[0][0], c.want)
		}
	}
}

func TestOrderedIndexPlanUsed(t *testing.T) {
	db := orderedDB(t, []int64{1, 2, 3})
	plan, err := db.Explain(`SELECT * FROM m WHERE v > 1 AND v < 3`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "ACCESS m BY RANGE ON v") {
		t.Fatalf("plan = %q", plan)
	}
	// Without the ordered index a range predicate scans.
	db2 := Open()
	mustExec(t, db2, `CREATE TABLE m (oid INTEGER PRIMARY KEY AUTOINCREMENT, v INTEGER)`)
	plan2, err := db2.Explain(`SELECT * FROM m WHERE v > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan2, "SCAN m") {
		t.Fatalf("plan = %q", plan2)
	}
}

func TestOrderedIndexWithParams(t *testing.T) {
	db := orderedDB(t, []int64{10, 20, 30, 40})
	rows := mustQuery(t, db, `SELECT COUNT(*) FROM m WHERE v >= ? AND v <= ?`, 15, 35)
	if rows.Data[0][0] != int64(2) {
		t.Fatalf("got %v", rows.Data[0][0])
	}
}

func TestOrderedIndexMaintainedOnWrite(t *testing.T) {
	db := orderedDB(t, []int64{1, 2, 3})
	mustExec(t, db, `UPDATE m SET v = 100 WHERE v = 2`)
	rows := mustQuery(t, db, `SELECT COUNT(*) FROM m WHERE v > 50`)
	if rows.Data[0][0] != int64(1) {
		t.Fatalf("after update: %v", rows.Data[0][0])
	}
	mustExec(t, db, `DELETE FROM m WHERE v = 100`)
	rows = mustQuery(t, db, `SELECT COUNT(*) FROM m WHERE v > 50`)
	if rows.Data[0][0] != int64(0) {
		t.Fatalf("after delete: %v", rows.Data[0][0])
	}
	// Rollback restores index entries.
	tx := db.Begin()
	if _, err := tx.Exec(`UPDATE m SET v = 500 WHERE v = 1`); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	rows = mustQuery(t, db, `SELECT COUNT(*) FROM m WHERE v >= 500`)
	if rows.Data[0][0] != int64(0) {
		t.Fatal("rollback left ghost index entry")
	}
	rows = mustQuery(t, db, `SELECT COUNT(*) FROM m WHERE v <= 1`)
	if rows.Data[0][0] != int64(1) {
		t.Fatal("rollback lost index entry")
	}
}

func TestOrderedIndexIgnoresNulls(t *testing.T) {
	db := orderedDB(t, nil)
	mustExec(t, db, `INSERT INTO m (v, label) VALUES (NULL, 'n'), (1, 'a')`)
	rows := mustQuery(t, db, `SELECT COUNT(*) FROM m WHERE v >= 0`)
	if rows.Data[0][0] != int64(1) {
		t.Fatalf("got %v", rows.Data[0][0])
	}
}

func TestOrderedIndexOnText(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE w (oid INTEGER PRIMARY KEY AUTOINCREMENT, s TEXT)`)
	mustExec(t, db, `CREATE ORDERED INDEX ow ON w(s)`)
	mustExec(t, db, `INSERT INTO w (s) VALUES ('banana'), ('apple'), ('cherry')`)
	rows := mustQuery(t, db, `SELECT s FROM w WHERE s >= 'b' AND s < 'c' ORDER BY s`)
	if rows.Len() != 1 || rows.Data[0][0] != "banana" {
		t.Fatalf("got %v", rows.Data)
	}
}

func TestOrderedIndexSurvivesDump(t *testing.T) {
	db := orderedDB(t, []int64{4, 2, 6})
	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := back.Explain(`SELECT * FROM m WHERE v > 3`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "RANGE") {
		t.Fatalf("ordered index lost in snapshot: %q", plan)
	}
}

func TestCreateOrderedIndexErrors(t *testing.T) {
	db := orderedDB(t, nil)
	if _, err := db.Exec(`CREATE ORDERED INDEX bad ON m(ghost)`); err == nil {
		t.Fatal("ordered index on missing column accepted")
	}
	// Idempotent re-creation.
	mustExec(t, db, `CREATE ORDERED INDEX om2 ON m(v)`)
}

// Property: range queries through the ordered index agree with full
// scans for arbitrary data and bounds.
func TestOrderedRangeEquivalenceProperty(t *testing.T) {
	f := func(vals []int16, loRaw, hiRaw int16) bool {
		indexed := Open()
		plain := Open()
		for _, db := range []*DB{indexed, plain} {
			if _, err := db.Exec(`CREATE TABLE t (oid INTEGER PRIMARY KEY AUTOINCREMENT, v INTEGER)`); err != nil {
				return false
			}
		}
		if _, err := indexed.Exec(`CREATE ORDERED INDEX it ON t(v)`); err != nil {
			return false
		}
		for _, v := range vals {
			for _, db := range []*DB{indexed, plain} {
				if _, err := db.Exec(`INSERT INTO t (v) VALUES (?)`, int64(v)); err != nil {
					return false
				}
			}
		}
		lo, hi := int64(loRaw), int64(hiRaw)
		for _, where := range []string{
			"v > ? AND v < ?", "v >= ? AND v <= ?", "v > ?  AND v <= ?",
		} {
			a, err1 := indexed.Query(`SELECT COUNT(*) FROM t WHERE `+where, lo, hi)
			b, err2 := plain.Query(`SELECT COUNT(*) FROM t WHERE `+where, lo, hi)
			if err1 != nil || err2 != nil || a.Data[0][0] != b.Data[0][0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRangedDeleteAndUpdateUseIndexPath(t *testing.T) {
	db := orderedDB(t, []int64{1, 2, 3, 4, 5, 6})
	res, err := db.Exec(`DELETE FROM m WHERE v > 4`)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 2 {
		t.Fatalf("deleted %d", res.RowsAffected)
	}
	res, err = db.Exec(`UPDATE m SET label = 'low' WHERE v <= 2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 2 {
		t.Fatalf("updated %d", res.RowsAffected)
	}
	rows := mustQuery(t, db, `SELECT COUNT(*) FROM m WHERE label = 'low'`)
	if rows.Data[0][0] != int64(2) {
		t.Fatalf("got %v", rows.Data)
	}
}
