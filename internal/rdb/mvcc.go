package rdb

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// MVCC-lite snapshot reads.
//
// Writers are serialized by the exclusive lock; what snapshots add is
// that read-only computations never wait behind them. After every
// commit the database publishes an immutable head: a map of frozen
// table views sharing the live row storage. Freezing is cheap because
// rows are immutable once stored (updates swap whole Row slices) and
// the rows slice itself is copy-on-write — publication marks it
// shared, and the next in-place slot write under the exclusive lock
// clones it first (appends are safe without cloning: a frozen view
// never reads past its own length). Snapshot queries therefore touch
// no lock but the statement cache and observe exactly the state at
// the commit they captured.
//
// Frozen views carry no index structures (index maps mutate in
// place), but they do carry the paging engine's versioned fetch hook,
// so snapshot queries run through compiled plans: full scans and
// nested loops over the frozen row slices, plus a record-store point
// fetch when an int-keyed primary key is available. Evicted slots and
// rows rewritten after the capture resolve through the engine's
// version retention buffer at the snapshot's sequence number.

// snapState is one published head: the commit it captured and the
// frozen views.
type snapState struct {
	seq    uint64
	tables map[string]*table
}

// frozenView builds the read-only clone of t shared with snapshots.
// pk is forced to -1 and no index structures are carried: lookup on a
// frozen view must report "no access path" so scans are the baseline
// (a nil pkMap with pk >= 0 would instead report "indexed, no
// match"). snapPK preserves the key position separately when the
// engine can serve point fetches by primary key.
func (t *table) frozenView(seq uint64) *table {
	ft := &table{
		name:    t.name,
		cols:    t.cols,
		colIdx:  t.colIdx,
		pk:      -1,
		snapPK:  -1,
		fks:     t.fks,
		rows:    t.rows[:len(t.rows):len(t.rows)],
		alive:   t.alive,
		fetch:   t.fetch,
		snapSeq: seq,
	}
	if t.pk >= 0 && t.pkByRec && t.fetch != nil {
		ft.snapPK = t.pk
	}
	return ft
}

// publishHead freezes the current state as the snapshot head. The
// caller must hold the exclusive lock.
func (db *DB) publishHead() {
	m := make(map[string]*table, len(db.tables))
	for k, t := range db.tables {
		m[k] = t.frozenView(db.seq)
		t.shared = true // next in-place row write must copy first
	}
	db.head.Store(&snapState{seq: db.seq, tables: m})
}

// snapshotRegistrar is implemented by engines that keep a version
// retention buffer for snapshot reads. Registration pins row versions
// at the engine's current sequence; the release function unpins them.
// Register-then-load ordering in DB.Snapshot guarantees the pin covers
// whatever head the snapshot ends up capturing.
type snapshotRegistrar interface {
	RegisterSnapshot() (seq uint64, release func())
}

// Snapshot captures the state as of the most recent commit without
// taking the database lock: it never blocks behind writers, and
// writers never block behind it. Close it when done so the active
// gauge stays meaningful.
type Snapshot struct {
	db      *DB
	st      *snapState
	closed  atomic.Bool
	release func() // unpins retained row versions; nil on memory engines

	// plans caches compiled plans per SQL text for this snapshot. The
	// frozen views are immutable, so cached plans never go stale.
	planMu sync.Mutex
	plans  map[string]*SelectPlan
}

// Snapshot returns a consistent point-in-time read view. A paging
// engine pins row versions for the snapshot until Close — leaking
// snapshots therefore retains old versions in memory.
func (db *DB) Snapshot() *Snapshot {
	var release func()
	if reg, ok := db.engine.(snapshotRegistrar); ok {
		// Register before loading the head: the pin covers the engine's
		// current sequence, which is >= whatever head we then capture.
		_, release = reg.RegisterSnapshot()
	}
	st := db.head.Load()
	db.stats.snapshotsTaken.Add(1)
	db.stats.activeSnapshots.Add(1)
	return &Snapshot{db: db, st: st, release: release}
}

// Seq returns the commit sequence number the snapshot captured.
func (s *Snapshot) Seq() uint64 { return s.st.seq }

// Close releases the snapshot (idempotent). The frozen state itself
// is garbage-collected once unreferenced; Close only maintains the
// active-snapshots gauge.
func (s *Snapshot) Close() {
	if !s.closed.Swap(true) {
		s.db.stats.activeSnapshots.Add(-1)
		if s.release != nil {
			s.release()
		}
	}
}

// planFor returns the snapshot-local compiled plan for sql, building
// it on first use. The bool reports a cache hit (EXPLAIN provenance).
func (s *Snapshot) planFor(sql string, sel *SelectStmt) (*SelectPlan, bool, error) {
	s.planMu.Lock()
	p, ok := s.plans[sql]
	s.planMu.Unlock()
	if ok {
		return p, true, nil
	}
	p, err := s.db.buildPlanTables(sel, s.st.tables, true)
	if err != nil {
		return nil, false, err
	}
	s.planMu.Lock()
	if s.plans == nil {
		s.plans = make(map[string]*SelectPlan)
	}
	s.plans[sql] = p
	s.planMu.Unlock()
	return p, false, nil
}

// Query runs a SELECT against the snapshot through a compiled plan.
// It takes no database lock; plans compile once per snapshot and SQL
// text, so repeated reads pay only plan execution.
func (s *Snapshot) Query(sql string, args ...Value) (*Rows, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("rdb: query on closed snapshot")
	}
	st, err := s.db.prepare(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("rdb: Snapshot.Query requires a SELECT statement, got %T", st)
	}
	cargs, err := coerceArgs(st, args)
	if err != nil {
		return nil, err
	}
	p, _, err := s.planFor(sql, sel)
	if err != nil {
		return nil, err
	}
	return s.db.execPlan(p, cargs, nil)
}

// QueryContext is Query plus tracing: when the database's trace hooks
// are installed and ctx carries a trace, the read is wrapped in an
// "rdb.snapshot.query" span labeled with the SQL and the snapshot's
// sequence number.
func (s *Snapshot) QueryContext(ctx context.Context, sql string, args ...Value) (*Rows, error) {
	h := s.db.hooks.Load()
	if h == nil || h.Span == nil {
		return s.Query(sql, args...)
	}
	fin := h.Span(ctx, "rdb.snapshot.query")
	if fin == nil {
		return s.Query(sql, args...)
	}
	rows, err := s.Query(sql, args...)
	var nrows int64
	if rows != nil {
		nrows = int64(rows.Len())
	}
	fin(err,
		"sql", truncateSQL(sql),
		"snapshot_seq", strconv.FormatUint(s.st.seq, 10),
		"rows", strconv.FormatInt(nrows, 10))
	return rows, err
}

// QueryRow runs a SELECT expected to return at most one row.
func (s *Snapshot) QueryRow(sql string, args ...Value) (map[string]Value, error) {
	rows, err := s.Query(sql, args...)
	if err != nil {
		return nil, err
	}
	if rows.Len() == 0 {
		return nil, nil
	}
	return rows.Maps()[0], nil
}

// TableNames lists the tables visible in the snapshot, sorted.
func (s *Snapshot) TableNames() []string {
	names := make([]string, 0, len(s.st.tables))
	for _, t := range s.st.tables {
		names = append(names, t.name)
	}
	sort.Strings(names)
	return names
}

// RowCount returns the number of live rows the snapshot sees in the
// named table.
func (s *Snapshot) RowCount(tableName string) (int, error) {
	t, ok := s.st.tables[lowerKey(tableName)]
	if !ok {
		return 0, fmt.Errorf("rdb: no such table %q", tableName)
	}
	return t.alive, nil
}
