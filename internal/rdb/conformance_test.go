package rdb

import (
	"strings"
	"testing"
)

// TestSQLConformance is a table-driven battery over the SQL subset: each
// case runs against a fixed dataset and compares the formatted result
// rows. It pins the engine's semantics (NULL handling, precedence,
// grouping, joins) against regressions.
var conformanceSetup = []string{
	`CREATE TABLE dept (oid INTEGER PRIMARY KEY AUTOINCREMENT, name TEXT, budget INTEGER)`,
	`CREATE TABLE emp (oid INTEGER PRIMARY KEY AUTOINCREMENT, name TEXT, salary INTEGER, bonus INTEGER, dept_oid INTEGER)`,
	`CREATE INDEX ie ON emp(dept_oid)`,
	`INSERT INTO dept (name, budget) VALUES ('Eng', 100), ('Sales', 50), ('Empty', 10)`,
	`INSERT INTO emp (name, salary, bonus, dept_oid) VALUES
		('ann', 30, 5, 1), ('bob', 20, NULL, 1), ('cat', 25, 2, 2), ('dan', 20, 1, NULL)`,
}

func conformanceDB(t testing.TB, db *DB) *DB {
	t.Helper()
	for _, s := range conformanceSetup {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	return db
}

func TestSQLConformance(t *testing.T) {
	runConformance(t, conformanceDB(t, Open()))
}

// TestSQLConformanceDurable runs the same battery on the durable
// engine — fresh, and again after a close/reopen recovery cycle — so
// recovered state is pinned to exactly the same semantics.
func TestSQLConformanceDurable(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	conformanceDB(t, db)
	runConformance(t, db)
	db = reopen(t, db, dir)
	defer db.Close()
	runConformance(t, db)
}

func runConformance(t *testing.T, db *DB) {
	cases := []struct {
		name string
		sql  string
		args []Value
		want string // rows as "a,b|c,d"
	}{
		{"projection order", `SELECT name, salary FROM emp WHERE oid = 1`, nil, "ann,30"},
		{"arith precedence", `SELECT salary + bonus * 2 FROM emp WHERE oid = 1`, nil, "40"},
		{"paren precedence", `SELECT (salary + bonus) * 2 FROM emp WHERE oid = 1`, nil, "70"},
		{"unary minus", `SELECT -salary FROM emp WHERE oid = 1`, nil, "-30"},
		{"string concat", `SELECT name + '!' FROM emp WHERE oid = 1`, nil, "ann!"},
		{"null arith propagates", `SELECT salary + bonus FROM emp WHERE oid = 2`, nil, "NULL"},
		{"null comparison filters", `SELECT name FROM emp WHERE bonus > 0 ORDER BY name`, nil, "ann|cat|dan"},
		{"is null", `SELECT name FROM emp WHERE bonus IS NULL`, nil, "bob"},
		{"is not null count", `SELECT COUNT(bonus) FROM emp`, nil, "3"},
		{"count star vs col", `SELECT COUNT(*), COUNT(bonus) FROM emp`, nil, "4,3"},
		{"sum ignores null", `SELECT SUM(bonus) FROM emp`, nil, "8"},
		{"avg over non-null", `SELECT AVG(bonus) FROM emp`, nil, "2.6666666666666665"},
		{"min max", `SELECT MIN(salary), MAX(salary) FROM emp`, nil, "20,30"},
		{"group by", `SELECT dept_oid, COUNT(*) FROM emp WHERE dept_oid IS NOT NULL GROUP BY dept_oid ORDER BY dept_oid`, nil, "1,2|2,1"},
		{"group by having", `SELECT dept_oid, SUM(salary) AS s FROM emp WHERE dept_oid IS NOT NULL GROUP BY dept_oid HAVING SUM(salary) > 30 ORDER BY dept_oid`, nil, "1,50"},
		{"aggregate arithmetic", `SELECT MAX(salary) - MIN(salary) FROM emp`, nil, "10"},
		{"inner join", `SELECT e.name, d.name FROM emp e JOIN dept d ON d.oid = e.dept_oid ORDER BY e.name`, nil, "ann,Eng|bob,Eng|cat,Sales"},
		{"left join keeps orphans", `SELECT e.name, d.name FROM emp e LEFT JOIN dept d ON d.oid = e.dept_oid ORDER BY e.name`, nil, "ann,Eng|bob,Eng|cat,Sales|dan,NULL"},
		{"left join miss is null", `SELECT d.name, e.name FROM dept d LEFT JOIN emp e ON e.dept_oid = d.oid WHERE d.name = 'Empty'`, nil, "Empty,NULL"},
		{"join with aggregate", `SELECT d.name, COUNT(e.oid) FROM dept d LEFT JOIN emp e ON e.dept_oid = d.oid GROUP BY d.name ORDER BY d.name`, nil, "Empty,0|Eng,2|Sales,1"},
		{"distinct", `SELECT DISTINCT salary FROM emp ORDER BY salary`, nil, "20|25|30"},
		{"in list", `SELECT name FROM emp WHERE salary IN (20, 25) ORDER BY name`, nil, "bob|cat|dan"},
		{"not in", `SELECT name FROM emp WHERE salary NOT IN (20) ORDER BY name`, nil, "ann|cat"},
		{"between", `SELECT name FROM emp WHERE salary BETWEEN 21 AND 29 ORDER BY name`, nil, "cat"},
		{"like prefix", `SELECT name FROM emp WHERE name LIKE 'a%'`, nil, "ann"},
		{"like underscore", `SELECT name FROM emp WHERE name LIKE '_ob'`, nil, "bob"},
		{"not like", `SELECT name FROM emp WHERE NOT name LIKE '%a%' ORDER BY name`, nil, "bob"},
		{"or precedence", `SELECT name FROM emp WHERE salary = 30 OR salary = 25 AND bonus = 2 ORDER BY name`, nil, "ann|cat"},
		{"limit offset", `SELECT name FROM emp ORDER BY name LIMIT 2 OFFSET 1`, nil, "bob|cat"},
		{"order desc", `SELECT name FROM emp ORDER BY salary DESC, name ASC LIMIT 2`, nil, "ann|cat"},
		{"params in projection", `SELECT salary * ? FROM emp WHERE oid = ?`, []Value{2, 1}, "60"},
		{"coalesce", `SELECT COALESCE(bonus, 0) FROM emp ORDER BY oid`, nil, "5|0|2|1"},
		{"scalar in where", `SELECT name FROM emp WHERE LOWER(name) = 'ann'`, nil, "ann"},
		{"alias order by output", `SELECT dept_oid AS d, COUNT(*) AS n FROM emp WHERE dept_oid IS NOT NULL GROUP BY dept_oid ORDER BY n DESC, d`, nil, "1,2|2,1"},
		{"true false literals", `SELECT COUNT(*) FROM emp WHERE TRUE`, nil, "4"},
		{"count empty", `SELECT COUNT(*) FROM emp WHERE FALSE`, nil, "0"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rows, err := db.Query(c.sql, c.args...)
			if err != nil {
				t.Fatalf("%s: %v", c.sql, err)
			}
			var parts []string
			for _, r := range rows.Data {
				var cells []string
				for _, v := range r {
					cells = append(cells, FormatValue(v))
				}
				parts = append(parts, strings.Join(cells, ","))
			}
			got := strings.Join(parts, "|")
			if got != c.want {
				t.Fatalf("%s:\ngot  %q\nwant %q", c.sql, got, c.want)
			}
		})
	}
}
