// Package rdb is an embedded, in-memory relational database engine with a
// SQL subset. It is the data tier of the reproduction: the paper's unit
// descriptors carry literal SQL text that the data expert may override, so
// the runtime needs a store that actually parses and executes SQL.
//
// Supported SQL: CREATE TABLE / CREATE INDEX / DROP TABLE, SELECT with
// INNER and LEFT joins, WHERE, GROUP BY + aggregates, ORDER BY, LIMIT and
// OFFSET, DISTINCT, INSERT, UPDATE, DELETE, and '?' positional parameters.
// The engine has hash indexes, an equality-lookup planner, and
// undo-log-based transactions. Statements are cached after first parse.
package rdb

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ColType enumerates column data types.
type ColType int

const (
	// TInt is a 64-bit signed integer column.
	TInt ColType = iota
	// TReal is a float64 column.
	TReal
	// TText is a string column.
	TText
	// TBool is a boolean column.
	TBool
	// TTime is a timestamp column.
	TTime
)

// String returns the SQL spelling of the type.
func (t ColType) String() string {
	switch t {
	case TInt:
		return "INTEGER"
	case TReal:
		return "REAL"
	case TText:
		return "TEXT"
	case TBool:
		return "BOOLEAN"
	case TTime:
		return "TIMESTAMP"
	}
	return fmt.Sprintf("ColType(%d)", int(t))
}

func parseColType(s string) (ColType, bool) {
	switch strings.ToUpper(s) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return TInt, true
	case "REAL", "FLOAT", "DOUBLE", "DECIMAL", "NUMERIC":
		return TReal, true
	case "TEXT", "VARCHAR", "CHAR", "STRING", "CLOB":
		return TText, true
	case "BOOL", "BOOLEAN":
		return TBool, true
	case "TIMESTAMP", "DATETIME", "DATE", "TIME":
		return TTime, true
	}
	return 0, false
}

// Value is a single SQL value: nil, int64, float64, string, bool, or
// time.Time. Inputs of other Go numeric types are normalized by coerce.
type Value interface{}

// coerce normalizes Go values supplied by callers into canonical Value
// representations.
func coerce(v Value) (Value, error) {
	switch x := v.(type) {
	case nil, int64, float64, string, bool, time.Time:
		return x, nil
	case int:
		return int64(x), nil
	case int32:
		return int64(x), nil
	case int16:
		return int64(x), nil
	case int8:
		return int64(x), nil
	case uint:
		return int64(x), nil
	case uint32:
		return int64(x), nil
	case float32:
		return float64(x), nil
	case []byte:
		return string(x), nil
	default:
		return nil, fmt.Errorf("rdb: unsupported value type %T", v)
	}
}

// coerceToCol converts v to the column type, or errors.
func coerceToCol(v Value, t ColType) (Value, error) {
	if v == nil {
		return nil, nil
	}
	switch t {
	case TInt:
		switch x := v.(type) {
		case int64:
			return x, nil
		case float64:
			return int64(x), nil
		case bool:
			if x {
				return int64(1), nil
			}
			return int64(0), nil
		}
	case TReal:
		switch x := v.(type) {
		case float64:
			return x, nil
		case int64:
			return float64(x), nil
		}
	case TText:
		if x, ok := v.(string); ok {
			return x, nil
		}
	case TBool:
		switch x := v.(type) {
		case bool:
			return x, nil
		case int64:
			return x != 0, nil
		}
	case TTime:
		switch x := v.(type) {
		case time.Time:
			return x, nil
		case string:
			for _, layout := range []string{time.RFC3339, "2006-01-02 15:04:05", "2006-01-02"} {
				if ts, err := time.Parse(layout, x); err == nil {
					return ts, nil
				}
			}
		}
	}
	return nil, fmt.Errorf("rdb: cannot store %T in %s column", v, t)
}

// compareValues orders two non-nil values. NULL ordering is handled by the
// caller. Mixed int/float comparisons are performed in float64.
func compareValues(a, b Value) (int, error) {
	switch x := a.(type) {
	case int64:
		switch y := b.(type) {
		case int64:
			return cmpInt(x, y), nil
		case float64:
			return cmpFloat(float64(x), y), nil
		}
	case float64:
		switch y := b.(type) {
		case float64:
			return cmpFloat(x, y), nil
		case int64:
			return cmpFloat(x, float64(y)), nil
		}
	case string:
		if y, ok := b.(string); ok {
			return strings.Compare(x, y), nil
		}
	case bool:
		if y, ok := b.(bool); ok {
			return cmpInt(boolToInt(x), boolToInt(y)), nil
		}
	case time.Time:
		if y, ok := b.(time.Time); ok {
			switch {
			case x.Before(y):
				return -1, nil
			case x.After(y):
				return 1, nil
			default:
				return 0, nil
			}
		}
	}
	return 0, fmt.Errorf("rdb: cannot compare %T with %T", a, b)
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// truthy reports whether v counts as true in a WHERE clause.
func truthy(v Value) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case int64:
		return x != 0
	case float64:
		return x != 0
	case string:
		return x != ""
	}
	return true
}

// FormatValue renders a value the way result dumps and tests expect.
func FormatValue(v Value) string {
	if x, ok := v.(string); ok {
		return x
	}
	return string(AppendValue(nil, v))
}

// AppendValue appends FormatValue's rendering of v to dst and returns the
// extended slice — the allocation-free building block for hot-path key
// construction.
func AppendValue(dst []byte, v Value) []byte {
	switch x := v.(type) {
	case nil:
		return append(dst, "NULL"...)
	case string:
		return append(dst, x...)
	case int64:
		return strconv.AppendInt(dst, x, 10)
	case float64:
		// Match fmt's %v rendering of float64 ('g', shortest).
		return strconv.AppendFloat(dst, x, 'g', -1, 64)
	case time.Time:
		return x.AppendFormat(dst, time.RFC3339)
	case bool:
		if x {
			return append(dst, "true"...)
		}
		return append(dst, "false"...)
	default:
		return fmt.Appendf(dst, "%v", x)
	}
}
