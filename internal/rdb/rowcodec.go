package rdb

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// This file is the wire codec between the executor's Values and the
// durable engine's byte payloads: row images stored in B-tree leaves
// and change-set records framed into the WAL. The format is tagged and
// little-endian; it never changes shape silently — unknown tags are a
// decode error, so a version bump is forced to be explicit.

// Value tags.
const (
	tagNil   = 0
	tagInt   = 1
	tagReal  = 2
	tagText  = 3
	tagFalse = 4
	tagTrue  = 5
	tagTime  = 6
)

// WAL operation kinds (the durable engine's lowered form of ChangeOps:
// rowIDs are translated to stable record ids before logging).
const (
	wopDDL     = 0
	wopPut     = 1
	wopDel     = 2
	wopAutoInc = 3
)

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(b, tmp[:binary.PutUvarint(tmp[:], v)]...)
}

func appendVarint(b []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(b, tmp[:binary.PutVarint(tmp[:], v)]...)
}

func appendBytes(b, p []byte) []byte {
	b = appendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendValue(b []byte, v Value) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(b, tagNil), nil
	case int64:
		return appendVarint(append(b, tagInt), x), nil
	case float64:
		b = append(b, tagReal)
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(x))
		return append(b, tmp[:]...), nil
	case string:
		return appendBytes(append(b, tagText), []byte(x)), nil
	case bool:
		if x {
			return append(b, tagTrue), nil
		}
		return append(b, tagFalse), nil
	case time.Time:
		p, err := x.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("rdb: encode time: %w", err)
		}
		return appendBytes(append(b, tagTime), p), nil
	}
	return nil, fmt.Errorf("rdb: cannot encode value of type %T", v)
}

// encodeRow serializes a row image: column count then tagged values.
func encodeRow(r Row) ([]byte, error) {
	b := appendUvarint(make([]byte, 0, 16+8*len(r)), uint64(len(r)))
	var err error
	for _, v := range r {
		if b, err = appendValue(b, v); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// decoder is a cursor over an encoded buffer. Every read method fails
// loudly on truncation; the durable engine treats any decode error as
// corruption and refuses to open.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("rdb: corrupt record: %s", msg)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.b) {
		d.fail("short buffer")
		return nil
	}
	p := d.b[:n]
	d.b = d.b[n:]
	return p
}

func (d *decoder) bytes() []byte { return d.take(int(d.uvarint())) }
func (d *decoder) str() string   { return string(d.bytes()) }

func (d *decoder) byte() byte {
	p := d.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (d *decoder) u64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (d *decoder) value() Value {
	switch d.byte() {
	case tagNil:
		return nil
	case tagInt:
		return d.varint()
	case tagReal:
		return math.Float64frombits(d.u64())
	case tagText:
		return d.str()
	case tagFalse:
		return false
	case tagTrue:
		return true
	case tagTime:
		var t time.Time
		if p := d.bytes(); d.err == nil {
			if err := t.UnmarshalBinary(p); err != nil {
				d.fail("bad time")
			}
		}
		return t
	default:
		d.fail("unknown value tag")
		return nil
	}
}

// decodeRow parses a row image produced by encodeRow.
func decodeRow(b []byte) (Row, error) {
	d := &decoder{b: b}
	n := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if n > uint64(len(b)) { // each value costs >= 1 byte
		return nil, fmt.Errorf("rdb: corrupt record: implausible column count %d", n)
	}
	r := make(Row, n)
	for i := range r {
		r[i] = d.value()
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("rdb: corrupt record: %d trailing bytes", len(d.b))
	}
	return r, nil
}

// walOp is one lowered operation inside a WAL record.
type walOp struct {
	kind    byte
	table   string // lower-cased (put, del, autoinc)
	sql     string // ddl
	recID   uint64 // put, del
	rowData []byte // put: encoded row image
	autoInc int64  // autoinc
}

// walRecord is the decoded payload of one WAL frame: the full effect
// of one committed change-set.
type walRecord struct {
	seq uint64
	ops []walOp
}

// encodeWALRecord serializes a record: seq, op count, then ops.
func encodeWALRecord(rec *walRecord) []byte {
	b := make([]byte, 8, 64)
	binary.LittleEndian.PutUint64(b, rec.seq)
	b = appendUvarint(b, uint64(len(rec.ops)))
	for _, op := range rec.ops {
		b = append(b, op.kind)
		switch op.kind {
		case wopDDL:
			b = appendBytes(b, []byte(op.sql))
		case wopPut:
			b = appendBytes(b, []byte(op.table))
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], op.recID)
			b = append(b, tmp[:]...)
			b = appendBytes(b, op.rowData)
		case wopDel:
			b = appendBytes(b, []byte(op.table))
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], op.recID)
			b = append(b, tmp[:]...)
		case wopAutoInc:
			b = appendBytes(b, []byte(op.table))
			b = appendVarint(b, op.autoInc)
		}
	}
	return b
}

// decodeWALRecord parses one frame payload.
func decodeWALRecord(b []byte) (*walRecord, error) {
	d := &decoder{b: b}
	rec := &walRecord{seq: d.u64()}
	n := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if n > uint64(len(b)) {
		return nil, fmt.Errorf("rdb: corrupt record: implausible op count %d", n)
	}
	rec.ops = make([]walOp, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		op := walOp{kind: d.byte()}
		switch op.kind {
		case wopDDL:
			op.sql = d.str()
		case wopPut:
			op.table = d.str()
			op.recID = d.u64()
			op.rowData = append([]byte(nil), d.bytes()...)
		case wopDel:
			op.table = d.str()
			op.recID = d.u64()
		case wopAutoInc:
			op.table = d.str()
			op.autoInc = d.varint()
		default:
			d.fail("unknown op kind")
		}
		rec.ops = append(rec.ops, op)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("rdb: corrupt record: %d trailing bytes", len(d.b))
	}
	return rec, nil
}
