package rdb

import (
	"fmt"
	"testing"
	"time"
)

// reopen closes db and opens the directory again, failing the test on
// any error.
func reopen(t *testing.T, db *DB, dir string) *DB {
	t.Helper()
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	db2, err := OpenDurable(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return db2
}

func TestDurableReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE users (id INTEGER PRIMARY KEY AUTOINCREMENT, name TEXT NOT NULL, email TEXT UNIQUE, score REAL, active BOOLEAN, joined TIMESTAMP)`)
	mustExec(t, db, `CREATE INDEX ix_users_name ON users (name)`)
	mustExec(t, db, `CREATE ORDERED INDEX ord_users_score ON users (score)`)
	joined := time.Date(2024, 5, 1, 9, 30, 0, 0, time.UTC)
	for i := 0; i < 50; i++ {
		mustExec(t, db, `INSERT INTO users (name, email, score, active, joined) VALUES (?, ?, ?, ?, ?)`,
			fmt.Sprintf("user%02d", i), fmt.Sprintf("u%02d@x", i), float64(i)/2, i%2 == 0, joined)
	}
	mustExec(t, db, `UPDATE users SET score = 99.5 WHERE id = 7`)
	mustExec(t, db, `DELETE FROM users WHERE id = 9`)

	db = reopen(t, db, dir)
	defer db.Close()
	if got := db.EngineName(); got != "durable" {
		t.Fatalf("engine = %q", got)
	}
	if n, err := db.RowCount("users"); err != nil || n != 49 {
		t.Fatalf("rows = %d, %v", n, err)
	}
	row, err := db.QueryRow(`SELECT name, score, active, joined FROM users WHERE id = 7`)
	if err != nil {
		t.Fatal(err)
	}
	if row["name"] != "user06" || row["score"] != 99.5 || row["active"] != true {
		t.Fatalf("row 7 = %#v", row)
	}
	if ts, ok := row["joined"].(time.Time); !ok || !ts.Equal(joined) {
		t.Fatalf("joined = %#v", row["joined"])
	}
	if row, _ := db.QueryRow(`SELECT id FROM users WHERE id = 9`); row != nil {
		t.Fatalf("deleted row survived: %#v", row)
	}
	// Auto-increment must continue where it left off.
	res, err := db.Exec(`INSERT INTO users (name) VALUES ('after')`)
	if err != nil {
		t.Fatal(err)
	}
	if res.LastInsertID != 51 {
		t.Fatalf("LastInsertID = %d, want 51", res.LastInsertID)
	}
	// Secondary indexes must have been rebuilt (the planner can use them).
	rows, err := db.Query(`SELECT email FROM users WHERE name = 'user11'`)
	if err != nil || rows.Len() != 1 || rows.Data[0][0] != "u11@x" {
		t.Fatalf("index query: %v %v", rows, err)
	}
}

func TestDurableNoIntPKAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	// Tiny checkpoint threshold: every few commits trigger a rewrite.
	db, err := OpenDurableOpts(dir, DurableOptions{CheckpointBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE tags (label TEXT NOT NULL, weight INTEGER)`)
	for i := 0; i < 100; i++ {
		mustExec(t, db, `INSERT INTO tags (label, weight) VALUES (?, ?)`, fmt.Sprintf("t%03d", i), int64(i))
	}
	mustExec(t, db, `DELETE FROM tags WHERE weight < 10`)
	mustExec(t, db, `UPDATE tags SET weight = weight + 1000 WHERE weight >= 90`)
	if st := db.EngineStats(); st.Checkpoints == 0 {
		t.Fatalf("expected automatic checkpoints, got %+v", st)
	}

	db = reopen(t, db, dir)
	defer db.Close()
	if n, _ := db.RowCount("tags"); n != 90 {
		t.Fatalf("rows = %d, want 90", n)
	}
	rows, err := db.Query(`SELECT label FROM tags WHERE weight = 1090`)
	if err != nil || rows.Len() != 1 || rows.Data[0][0] != "t090" {
		t.Fatalf("updated row: %v %v", rows, err)
	}
	// Synthetic record ids must not collide after reopen.
	for i := 0; i < 10; i++ {
		mustExec(t, db, `INSERT INTO tags (label, weight) VALUES (?, ?)`, fmt.Sprintf("n%d", i), int64(i))
	}
	db = reopen(t, db, dir)
	defer db.Close()
	if n, _ := db.RowCount("tags"); n != 100 {
		t.Fatalf("rows after second reopen = %d, want 100", n)
	}
}

func TestDurableDDLAndTx(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE a (id INTEGER PRIMARY KEY, v TEXT)`)
	mustExec(t, db, `CREATE TABLE b (id INTEGER PRIMARY KEY, aid INTEGER, FOREIGN KEY (aid) REFERENCES a(id))`)
	mustExec(t, db, `INSERT INTO a (id, v) VALUES (1, 'one'), (2, 'two')`)

	tx := db.Begin()
	if _, err := tx.Exec(`INSERT INTO b (id, aid) VALUES (10, 1)`); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE a SET v = 'ONE' WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx = db.Begin()
	if _, err := tx.Exec(`DELETE FROM a WHERE id = 2`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}

	mustExec(t, db, `DROP TABLE b`)
	db = reopen(t, db, dir)
	defer db.Close()

	if row, _ := db.QueryRow(`SELECT v FROM a WHERE id = 1`); row == nil || row["v"] != "ONE" {
		t.Fatalf("committed tx lost: %#v", row)
	}
	if row, _ := db.QueryRow(`SELECT v FROM a WHERE id = 2`); row == nil || row["v"] != "two" {
		t.Fatalf("rolled-back delete applied: %#v", row)
	}
	names := db.TableNames()
	if len(names) != 1 || names[0] != "a" {
		t.Fatalf("tables = %v", names)
	}
	// Stats surface WAL/pool counters (fresh instance: count a write).
	mustExec(t, db, `INSERT INTO a (id, v) VALUES (3, 'three')`)
	st := db.EngineStats()
	if st.WALAppends == 0 || st.WALFsyncs == 0 {
		t.Fatalf("no engine activity recorded: %+v", st)
	}
}
