package rdb

import (
	"context"
	"errors"
	"fmt"
	"strconv"
)

// ErrTxDone is returned when a finished transaction is used again.
var ErrTxDone = errors.New("rdb: transaction already committed or rolled back")

type undoOp int

const (
	undoInsert undoOp = iota // rollback: delete the inserted row
	undoUpdate               // rollback: restore oldRow
	undoDelete               // rollback: re-insert oldRow
)

type undoEntry struct {
	table  *table
	op     undoOp
	rowID  int
	oldRow Row
}

type undoLog struct {
	entries []undoEntry
}

func (u *undoLog) add(e undoEntry) { u.entries = append(u.entries, e) }

// Tx is a write transaction. It holds the database's exclusive lock for
// its whole lifetime (coarse two-phase locking): readers and other writers
// wait until Commit or Rollback. Rollback replays an undo log.
//
// The paper's operation units (create/modify/delete/connect/disconnect
// chains with KO links) need exactly this: a unit chain either completes
// or leaves no trace before the Controller follows the KO link.
type Tx struct {
	db   *DB
	undo undoLog
	cs   ChangeSet // row ops staged for the engine at Commit
	done bool
}

// Begin starts a write transaction, blocking until the exclusive lock is
// available.
func (db *DB) Begin() *Tx {
	db.mu.Lock()
	return &Tx{db: db}
}

// Exec runs a write statement inside the transaction.
func (tx *Tx) Exec(sql string, args ...Value) (Result, error) {
	if tx.done {
		return Result{}, ErrTxDone
	}
	st, err := tx.db.prepare(sql)
	if err != nil {
		return Result{}, err
	}
	if _, isSel := st.(*SelectStmt); isSel {
		return Result{}, fmt.Errorf("rdb: use Tx.Query for SELECT")
	}
	cargs, err := coerceArgs(st, args)
	if err != nil {
		return Result{}, err
	}
	// DDL is not covered by the undo log (a rollback leaves schema
	// changes in place, as before engines existed), so it cannot ride
	// in the transaction's change-set either: a later Rollback would
	// discard it and let durable state diverge from memory. Commit it
	// to the engine immediately instead, waiting for durability inline
	// — DDL mid-transaction is rare enough that holding the lock over
	// one fsync is fine.
	switch st.(type) {
	case *CreateTableStmt, *CreateIndexStmt, *DropTableStmt:
		cs := &ChangeSet{}
		res, err := tx.db.execLocked(sql, st, cargs, nil, cs)
		if err != nil {
			return res, err
		}
		wait, err := tx.db.applyDDLInTx(cs)
		if err != nil {
			return res, err
		}
		if wait != nil {
			if err := wait(); err != nil {
				return res, err
			}
		}
		return res, nil
	}
	return tx.db.execLocked(sql, st, cargs, &tx.undo, &tx.cs)
}

// Query runs a SELECT inside the transaction, observing its own writes.
func (tx *Tx) Query(sql string, args ...Value) (*Rows, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	st, err := tx.db.prepare(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("rdb: Tx.Query requires a SELECT statement")
	}
	cargs, err := coerceArgs(st, args)
	if err != nil {
		return nil, err
	}
	// The transaction already holds the exclusive lock, which planFor
	// and execPlan require only shared access under.
	p, err := tx.db.planFor(sql, sel)
	if err != nil {
		return nil, err
	}
	return tx.db.execPlan(p, cargs, nil)
}

// Commit makes the transaction's writes permanent and releases the
// lock. With a durable engine attached, Commit returns once the whole
// change-set is on stable storage; the fsync happens after the lock
// is released, so concurrent committers share flushes (group commit).
func (tx *Tx) Commit() error {
	return tx.commit(nil, nil)
}

// CommitContext is Commit plus data-tier spans: when trace hooks are
// installed and ctx carries a trace, the in-lock commit (engine apply,
// WAL append, any checkpoint) becomes an "rdb.commit" span and the
// post-lock durability wait an "rdb.wal.sync" span.
func (tx *Tx) CommitContext(ctx context.Context) error {
	h := tx.db.hooks.Load()
	if h == nil || h.Span == nil {
		return tx.Commit()
	}
	return tx.commit(ctx, h)
}

func (tx *Tx) commit(ctx context.Context, h *TraceHooks) error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	tx.undo.entries = nil
	var fin SpanFinish
	if h != nil {
		fin = h.Span(ctx, "rdb.commit")
	}
	nOps := len(tx.cs.Ops)
	wait, err := tx.db.applyLocked(&tx.cs)
	if nOps == 0 {
		// DDL-only (or empty) transaction: applyLocked was a no-op, but
		// mid-transaction DDL deferred its head publication to now.
		tx.db.publishHead()
	}
	tx.db.mu.Unlock()
	if fin != nil {
		fin(err,
			"ops", strconv.Itoa(nOps),
			"wal_append", tx.cs.WALAppend.String(),
			"checkpoint", tx.cs.Checkpoint.String())
	}
	if err != nil {
		return err
	}
	if wait != nil {
		var finSync SpanFinish
		if h != nil {
			finSync = h.Span(ctx, "rdb.wal.sync")
		}
		werr := wait()
		if finSync != nil {
			finSync(werr)
		}
		return werr
	}
	return nil
}

// Rollback undoes every write performed in the transaction, in reverse
// order, and releases the lock.
func (tx *Tx) Rollback() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	for i := len(tx.undo.entries) - 1; i >= 0; i-- {
		e := tx.undo.entries[i]
		switch e.op {
		case undoInsert:
			e.table.deleteRow(e.rowID)
		case undoUpdate:
			// updateRow re-checks constraints; restoring the old image is
			// always constraint-safe, but bypass checks to be robust.
			// rowAt faults the slot if a sweep evicted it mid-transaction.
			cur := e.table.rowAt(e.rowID)
			if cur != nil {
				e.table.unindexRow(e.rowID, cur)
			}
			if _, ok := evictedRec(e.table.rows[e.rowID]); ok {
				e.table.resident++
			}
			e.table.cowRows()
			e.table.rows[e.rowID] = e.oldRow
			e.table.indexRow(e.rowID, e.oldRow)
		case undoDelete:
			e.table.restoreRow(e.rowID, e.oldRow)
		}
	}
	tx.undo.entries = nil
	tx.cs.Ops = nil
	// Any DDL executed inside the transaction survives rollback (it was
	// applied to the engine immediately); republish the head so
	// snapshots see the schema change too.
	tx.db.publishHead()
	tx.db.mu.Unlock()
	return nil
}
