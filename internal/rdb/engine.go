package rdb

// This file defines the storage-engine seam. The executor — parser,
// planner, interpreter, index machinery — operates on in-memory table
// structs regardless of engine; an Engine is the durability layer
// behind them. Every committed change-set flows through Engine.Apply,
// so the in-memory engine (a no-op), the durable WAL+page engine
// (durable.go) and future backends (columnar, replica log shipping)
// are swappable without touching query execution.

import "time"

// OpKind classifies one operation inside a change-set.
type OpKind int

const (
	// OpDDL is a schema change carried as its SQL text.
	OpDDL OpKind = iota
	// OpInsert adds Row at RowID.
	OpInsert
	// OpUpdate replaces OldRow with Row at RowID.
	OpUpdate
	// OpDelete removes OldRow at RowID.
	OpDelete
	// OpAutoInc forces a table's auto-increment counter (restore paths,
	// where the counter may exceed the maximum stored key).
	OpAutoInc
)

// ChangeOp is one applied operation. RowID is the in-memory row slot —
// stable within a process run but not across restarts; engines that
// persist translate it to a stable record id. Row and OldRow reference
// the stored row slices, which are immutable once written.
type ChangeOp struct {
	Kind    OpKind
	Table   string // lower-cased table key (empty for DDL)
	SQL     string // OpDDL only
	RowID   int
	Row     Row   // new image (insert, update)
	OldRow  Row   // prior image (update, delete)
	AutoInc int64 // OpAutoInc only
}

// ChangeSet is the complete effect of one committed transaction (or
// one auto-commit statement). Seq is assigned at commit, monotonically.
// WALAppend and Checkpoint are filled by the engine during Apply with
// the time spent appending the change-set to the log and running any
// triggered checkpoint — the breakdown ExecContext/CommitContext put
// on commit spans (zero for the in-memory engine).
type ChangeSet struct {
	Seq uint64
	Ops []ChangeOp

	WALAppend  time.Duration
	Checkpoint time.Duration
}

func (cs *ChangeSet) add(op ChangeOp) { cs.Ops = append(cs.Ops, op) }

// EngineStats is a snapshot of an engine's durability counters. The
// in-memory engine reports zeros.
type EngineStats struct {
	// WAL counters.
	WALAppends     uint64 // committed change-sets logged
	WALFsyncs      uint64 // disk flushes (group commit amortizes these)
	WALBatches     uint64 // leader rounds covering >= 1 record
	WALBatchedRecs uint64 // records covered by those rounds
	WALBytes       uint64 // frame bytes appended since open
	WALSize        int64  // current physical log length
	// Buffer-pool counters.
	PoolHits      uint64
	PoolMisses    uint64
	PoolEvictions uint64
	PoolResident  int
	PoolDirty     int
	PoolPinned    int
	// Row-level paging counters (anti-caching sweep; zero when the
	// resident-row budget is unset).
	RowFaults    uint64 // evicted rows materialized back from the store
	RowsEvicted  uint64 // rows swept out since open
	RowsResident int    // rows currently materialized in table slots
	// Checkpoint / recovery counters.
	Checkpoints      uint64
	RecoveredRecords uint64 // WAL records replayed at the last open
	TornBytes        int64  // torn-tail bytes truncated at the last open
}

// Engine persists committed change-sets behind the in-memory executor.
//
// Apply is invoked with the database's exclusive lock held, after the
// in-memory tables have been mutated; it must stage the change-set
// (e.g. append it to a WAL buffer and write through to a page tree)
// and return a wait function, or nil if the change is already durable.
// The caller invokes the wait function after releasing the lock —
// that split is what lets concurrent committers share one fsync. An
// error from Apply or the wait function means the change-set's
// durability is unknown; engines are expected to fail stickily so the
// divergence cannot widen silently.
type Engine interface {
	// Name identifies the engine ("memory", "durable") for /metrics
	// and logs.
	Name() string
	// Apply stages cs; see the interface comment for the locking
	// contract.
	Apply(cs *ChangeSet) (wait func() error, err error)
	// Checkpoint compacts the engine's persistent state so recovery
	// does not depend on unbounded log replay. Called with the
	// exclusive lock held.
	Checkpoint() error
	// Stats reports durability counters for observability.
	Stats() EngineStats
	// Close flushes and releases the engine's resources. Called with
	// the exclusive lock held.
	Close() error
}

// memEngine is the default engine: the table structs the executor
// already mutated are the storage, so persistence is a no-op. It
// exists so the commit path is engine-agnostic.
type memEngine struct{}

func (memEngine) Name() string                           { return "memory" }
func (memEngine) Apply(*ChangeSet) (func() error, error) { return nil, nil }
func (memEngine) Checkpoint() error                      { return nil }
func (memEngine) Stats() EngineStats                     { return EngineStats{} }
func (memEngine) Close() error                           { return nil }
