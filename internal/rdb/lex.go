package rdb

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokParam  // ?
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokKind
	text string // keywords upper-cased; idents as written
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true,
	"SET": true, "DELETE": true, "CREATE": true, "TABLE": true, "INDEX": true,
	"DROP": true, "PRIMARY": true, "KEY": true, "AUTOINCREMENT": true,
	"NULL": true, "ORDER": true, "BY": true, "ASC": true, "DESC": true,
	"LIMIT": true, "OFFSET": true, "JOIN": true, "INNER": true, "LEFT": true,
	"OUTER": true, "ON": true, "AS": true, "DISTINCT": true, "GROUP": true,
	"HAVING": true, "LIKE": true, "IN": true, "IS": true, "BETWEEN": true,
	"FOREIGN": true, "REFERENCES": true, "UNIQUE": true, "TRUE": true,
	"FALSE": true, "ORDERED": true, "COUNT": true, "SUM": true, "AVG": true, "MIN": true,
	"MAX": true, "IF": true, "EXISTS": true, "DEFAULT": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// SQL line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isIdentStart(c):
			l.lexIdent()
		case c >= '0' && c <= '9':
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '?':
			l.emit(tokParam, "?")
			l.pos++
		case c == '<' || c == '>' || c == '!' || c == '=':
			l.lexOperator()
		case strings.IndexByte("(),.*+-/;", c) >= 0:
			l.emit(tokSymbol, string(c))
			l.pos++
		default:
			return nil, fmt.Errorf("rdb: unexpected character %q at %d", c, l.pos)
		}
	}
	l.emit(tokEOF, "")
	return l.toks, nil
}

func (l *lexer) emit(k tokKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: l.pos})
}

func isIdentStart(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	word := l.src[start:l.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: upper, pos: start})
		return
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: word, pos: start})
}

func (l *lexer) lexNumber() error {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("rdb: unterminated string literal at %d", start)
}

func (l *lexer) lexOperator() {
	start := l.pos
	c := l.src[l.pos]
	l.pos++
	if l.pos < len(l.src) {
		two := string(c) + string(l.src[l.pos])
		switch two {
		case "<=", ">=", "<>", "!=":
			l.pos++
			l.toks = append(l.toks, token{kind: tokSymbol, text: two, pos: start})
			return
		}
	}
	l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start})
}
