package rdb

import (
	"fmt"
	"testing"
)

// Paging-engine ablations for experiment E15: a dataset several times
// the configured memory budgets, read through eviction markers. Hot
// reads should ride the decoded-row cache; cold reads pay a page-tree
// fault; snapshot point reads go through snapshot-local compiled
// plans; incremental checkpoints pay for dirty pages, not database
// size (see the rdb-paging CI job, which archives BENCH_paging.json).

func benchPagedDB(b *testing.B, rows int, opts DurableOptions) *DB {
	b.Helper()
	db, err := OpenDurableOpts(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	seedBenchRows(b, db, rows)
	return db
}

// BenchmarkPagingHotRead reads a 512-key hot set out of 8k rows with a
// 1024-row residency budget: after warmup every read hits the decoded
// row cache, so this is the E15 "hot set stays near-resident speed"
// path.
func BenchmarkPagingHotRead(b *testing.B) {
	db := benchPagedDB(b, 8000, DurableOptions{PoolPages: 512, ResidentRows: 1024})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT name FROM item WHERE oid = ?`, int64(i%512+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPagingColdFault cycles uniformly through all 8k keys with a
// 1024-row cache, so nearly every read must fault the row back out of
// the page tree — the full anti-caching miss path.
func BenchmarkPagingColdFault(b *testing.B) {
	db := benchPagedDB(b, 8000, DurableOptions{PoolPages: 512, ResidentRows: 1024})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT name FROM item WHERE oid = ?`, int64(i%8000+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPagingSnapshotPoint measures point reads through a pinned
// MVCC snapshot's compiled plan on the paged engine (version reads go
// through the retention buffer or fault at the snapshot's sequence).
func BenchmarkPagingSnapshotPoint(b *testing.B) {
	db := benchPagedDB(b, 8000, DurableOptions{PoolPages: 512, ResidentRows: 1024})
	snap := db.Snapshot()
	defer snap.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snap.Query(`SELECT name FROM item WHERE oid = ?`, int64(i%512+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPagingCheckpoint updates a fixed 64-row batch and takes an
// incremental checkpoint each iteration: the cost scales with the
// dirty set, not the database, so ns/op should hold steady as the
// seeded row count grows (E15's flat-checkpoint gate).
func BenchmarkPagingCheckpoint(b *testing.B) {
	db := benchPagedDB(b, 8000, DurableOptions{
		CheckpointBytes: 1 << 30, PoolPages: 512, ResidentRows: 1024,
	})
	if err := db.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		for k := 0; k < 64; k++ {
			if _, err := tx.Exec(`UPDATE item SET name = ? WHERE oid = ?`,
				fmt.Sprintf("upd-%d-%d", i, k), int64(i%100+k*64+1)); err != nil {
				b.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
		if err := db.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}
