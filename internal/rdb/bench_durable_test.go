package rdb

import (
	"fmt"
	"testing"
)

// Durable-engine ablations for experiment E12: hot-set reads must stay
// within ~1.3x of the in-memory engine (they run against the same
// in-memory tables; the engine only shadows writes), while writes pay
// the WAL append + write-through + fsync.

func benchDurableDB(b *testing.B, rows int) *DB {
	b.Helper()
	db, err := OpenDurable(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	seedBenchRows(b, db, rows)
	return db
}

func seedBenchRows(b *testing.B, db *DB, rows int) {
	b.Helper()
	if _, err := db.Exec(`CREATE TABLE item (oid INTEGER PRIMARY KEY AUTOINCREMENT, grp INTEGER, name TEXT)`); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec(`CREATE INDEX idx_item_grp ON item(grp)`); err != nil {
		b.Fatal(err)
	}
	tx := db.Begin()
	for i := 0; i < rows; i++ {
		if _, err := tx.Exec(`INSERT INTO item (grp, name) VALUES (?, ?)`,
			int64(i%100), fmt.Sprintf("item-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
}

func benchHotReads(b *testing.B, db *DB) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT name FROM item WHERE oid = ?`, int64(i%1000+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHotReadMemory(b *testing.B) {
	db := Open()
	seedBenchRows(b, db, 1000)
	benchHotReads(b, db)
}

func BenchmarkHotReadDurable(b *testing.B) {
	benchHotReads(b, benchDurableDB(b, 1000))
}

func BenchmarkInsertDurable(b *testing.B) {
	db := benchDurableDB(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(`INSERT INTO item (grp, name) VALUES (?, ?)`,
			int64(i%100), "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInsertDurableGroupCommit measures the fsync amortization:
// many goroutines commit concurrently, so one WAL flush covers a batch
// of transactions instead of one apiece.
func BenchmarkInsertDurableGroupCommit(b *testing.B) {
	db := benchDurableDB(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := db.Exec(`INSERT INTO item (grp, name) VALUES (?, ?)`,
				int64(1), "bench"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	st := db.EngineStats()
	if st.WALAppends > 0 {
		b.ReportMetric(float64(st.WALAppends)/float64(st.WALFsyncs), "appends/fsync")
	}
}

func BenchmarkSnapshotReadDurable(b *testing.B) {
	db := benchDurableDB(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := db.Snapshot()
		if _, err := s.Query(`SELECT name FROM item WHERE oid = ?`, int64(i%1000+1)); err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}
