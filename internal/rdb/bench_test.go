package rdb

import (
	"fmt"
	"testing"
)

// Ablation benchmarks for the data-tier design choices DESIGN.md calls
// out: the statement cache (descriptors carry SQL text, so every unit
// computation re-submits the same string) and index-assisted access
// paths (the generator indexes every FK column).

func benchDB(b *testing.B, rows int, withIndex bool) *DB {
	b.Helper()
	db := Open()
	if _, err := db.Exec(`CREATE TABLE item (oid INTEGER PRIMARY KEY AUTOINCREMENT, grp INTEGER, name TEXT)`); err != nil {
		b.Fatal(err)
	}
	if withIndex {
		if _, err := db.Exec(`CREATE INDEX idx_item_grp ON item(grp)`); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < rows; i++ {
		if _, err := db.Exec(`INSERT INTO item (grp, name) VALUES (?, ?)`,
			int64(i%100), fmt.Sprintf("item-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func BenchmarkStatementCacheHit(b *testing.B) {
	db := benchDB(b, 100, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT name FROM item WHERE oid = ?`, int64(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStatementParseEveryTime(b *testing.B) {
	db := benchDB(b, 100, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A unique comment defeats the cache: full lex+parse per call.
		sql := fmt.Sprintf(`SELECT name FROM item WHERE oid = ? -- %d`, i)
		if _, err := db.Query(sql, int64(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEqualityViaIndex(b *testing.B) {
	db := benchDB(b, 10000, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT COUNT(*) FROM item WHERE grp = ?`, int64(i%100)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEqualityViaScan(b *testing.B) {
	db := benchDB(b, 10000, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT COUNT(*) FROM item WHERE grp = ?`, int64(i%100)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexedJoin(b *testing.B) {
	db := benchDB(b, 5000, true)
	if _, err := db.Exec(`CREATE TABLE grp (oid INTEGER PRIMARY KEY AUTOINCREMENT, label TEXT)`); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := db.Exec(`INSERT INTO grp (label) VALUES (?)`, fmt.Sprintf("g%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`
			SELECT i.name FROM grp g JOIN item i ON i.grp = g.oid WHERE g.oid = ?`,
			int64(i%100+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertWithIndexes(b *testing.B) {
	db := benchDB(b, 0, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(`INSERT INTO item (grp, name) VALUES (?, ?)`, int64(i%100), "x"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransactionCommit(b *testing.B) {
	db := benchDB(b, 100, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		if _, err := tx.Exec(`UPDATE item SET name = ? WHERE oid = ?`, "y", int64(i%100+1)); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
