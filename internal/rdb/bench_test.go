package rdb

import (
	"fmt"
	"testing"
)

// Ablation benchmarks for the data-tier design choices DESIGN.md calls
// out: the statement cache (descriptors carry SQL text, so every unit
// computation re-submits the same string) and index-assisted access
// paths (the generator indexes every FK column).

func benchDB(b *testing.B, rows int, withIndex bool) *DB {
	b.Helper()
	db := Open()
	if _, err := db.Exec(`CREATE TABLE item (oid INTEGER PRIMARY KEY AUTOINCREMENT, grp INTEGER, name TEXT)`); err != nil {
		b.Fatal(err)
	}
	if withIndex {
		if _, err := db.Exec(`CREATE INDEX idx_item_grp ON item(grp)`); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < rows; i++ {
		if _, err := db.Exec(`INSERT INTO item (grp, name) VALUES (?, ?)`,
			int64(i%100), fmt.Sprintf("item-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func BenchmarkStatementCacheHit(b *testing.B) {
	db := benchDB(b, 100, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT name FROM item WHERE oid = ?`, int64(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStatementParseEveryTime(b *testing.B) {
	db := benchDB(b, 100, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A unique comment defeats the cache: full lex+parse per call.
		sql := fmt.Sprintf(`SELECT name FROM item WHERE oid = ? -- %d`, i)
		if _, err := db.Query(sql, int64(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEqualityViaIndex(b *testing.B) {
	db := benchDB(b, 10000, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT COUNT(*) FROM item WHERE grp = ?`, int64(i%100)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEqualityViaScan(b *testing.B) {
	db := benchDB(b, 10000, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT COUNT(*) FROM item WHERE grp = ?`, int64(i%100)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexedJoin(b *testing.B) {
	db := benchDB(b, 5000, true)
	if _, err := db.Exec(`CREATE TABLE grp (oid INTEGER PRIMARY KEY AUTOINCREMENT, label TEXT)`); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := db.Exec(`INSERT INTO grp (label) VALUES (?)`, fmt.Sprintf("g%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`
			SELECT i.name FROM grp g JOIN item i ON i.grp = g.oid WHERE g.oid = ?`,
			int64(i%100+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// planBenchDB is the fixture for the compiled-vs-interpreted pairs: a
// 10k-row table with a composite (grp, price) index and an ordered name
// index, so every planner access path has a benchmark.
func planBenchDB(b *testing.B) *DB {
	b.Helper()
	db := Open()
	for _, s := range []string{
		`CREATE TABLE prod (oid INTEGER PRIMARY KEY AUTOINCREMENT, grp INTEGER, price INTEGER, name TEXT NOT NULL)`,
		`CREATE INDEX ix_prod ON prod(grp, price)`,
		`CREATE ORDERED INDEX ord_prod_name ON prod(name)`,
	} {
		if _, err := db.Exec(s); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 10000; i++ {
		if _, err := db.Exec(`INSERT INTO prod (grp, price, name) VALUES (?, ?, ?)`,
			int64(i%100), int64(i%500), fmt.Sprintf("p%06d", i)); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// runQueryBench runs one SQL through either engine; the Compiled/
// Interpreted pairs below share it so the ratio isolates the planner.
func runQueryBench(b *testing.B, interpreted bool, sql string, args ...Value) {
	db := planBenchDB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if interpreted {
			_, err = db.QueryInterpreted(sql, args...)
		} else {
			_, err = db.Query(sql, args...)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectiveLookupCompiled(b *testing.B) {
	runQueryBench(b, false, `SELECT name FROM prod WHERE grp = ? AND price = ?`, int64(7), int64(107))
}

func BenchmarkSelectiveLookupInterpreted(b *testing.B) {
	runQueryBench(b, true, `SELECT name FROM prod WHERE grp = ? AND price = ?`, int64(7), int64(107))
}

func BenchmarkCompositeRangeCompiled(b *testing.B) {
	runQueryBench(b, false, `SELECT name FROM prod WHERE grp = ? AND price > ? AND price < ?`, int64(7), int64(100), int64(200))
}

func BenchmarkCompositeRangeInterpreted(b *testing.B) {
	runQueryBench(b, true, `SELECT name FROM prod WHERE grp = ? AND price > ? AND price < ?`, int64(7), int64(100), int64(200))
}

func BenchmarkOrderByLimitCompiled(b *testing.B) {
	runQueryBench(b, false, `SELECT name FROM prod ORDER BY name LIMIT 20`)
}

func BenchmarkOrderByLimitInterpreted(b *testing.B) {
	runQueryBench(b, true, `SELECT name FROM prod ORDER BY name LIMIT 20`)
}

func BenchmarkInsertWithIndexes(b *testing.B) {
	db := benchDB(b, 0, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(`INSERT INTO item (grp, name) VALUES (?, ?)`, int64(i%100), "x"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransactionCommit(b *testing.B) {
	db := benchDB(b, 100, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		if _, err := tx.Exec(`UPDATE item SET name = ? WHERE oid = ?`, "y", int64(i%100+1)); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
