package rdb

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"
)

// The crash-torture suite SIGKILLs a child process mid-write-storm and
// verifies, generation after generation over the same directory, that
// every commit the child acknowledged survives recovery and that no
// partial transaction is ever visible. The child writes each commit to
// two tables atomically, so a torn transaction would show up as a row
// present in one table and missing from the other.

// TestCrashChildHelper is the child body; it only runs when the parent
// re-executes the test binary with RDB_CRASH_DIR set. It commits pairs
// forever, acknowledging each durable commit on stdout, until killed.
func TestCrashChildHelper(t *testing.T) {
	dir := os.Getenv("RDB_CRASH_DIR")
	if dir == "" {
		t.Skip("not a crash child")
	}
	// Tiny checkpoint threshold: the kill lands around page-file
	// rewrites and WAL resets, not just plain appends.
	db, err := OpenDurableOpts(dir, DurableOptions{CheckpointBytes: 1 << 14})
	if err != nil {
		fmt.Printf("CHILD_ERR open: %v\n", err)
		os.Exit(3)
	}
	if len(db.TableNames()) == 0 {
		for _, sql := range []string{
			`CREATE TABLE log_a (n INTEGER PRIMARY KEY, data TEXT NOT NULL)`,
			`CREATE TABLE log_b (n INTEGER PRIMARY KEY, data TEXT NOT NULL)`,
		} {
			if _, err := db.Exec(sql); err != nil {
				fmt.Printf("CHILD_ERR ddl: %v\n", err)
				os.Exit(3)
			}
		}
	}
	start := int64(1)
	if row, err := db.QueryRow(`SELECT MAX(n) AS m FROM log_a`); err == nil && row != nil && row["m"] != nil {
		start = row["m"].(int64) + 1
	}
	for n := start; ; n++ {
		tx := db.Begin()
		data := fmt.Sprintf("payload-%d", n)
		if _, err := tx.Exec(`INSERT INTO log_a (n, data) VALUES (?, ?)`, n, data); err != nil {
			fmt.Printf("CHILD_ERR insert a: %v\n", err)
			os.Exit(3)
		}
		if _, err := tx.Exec(`INSERT INTO log_b (n, data) VALUES (?, ?)`, n, data); err != nil {
			fmt.Printf("CHILD_ERR insert b: %v\n", err)
			os.Exit(3)
		}
		if err := tx.Commit(); err != nil {
			fmt.Printf("CHILD_ERR commit: %v\n", err)
			os.Exit(3)
		}
		// Commit returned: the pair is on stable storage. Acknowledge.
		fmt.Printf("ACK %d\n", n)
	}
}

func TestCrashTortureSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("crash torture spawns child processes")
	}
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(0x5EED))
	var lastAck int64

	for gen := 0; gen < 3; gen++ {
		acked, err := runCrashChild(t, dir, 5+rng.Intn(60))
		if err != nil {
			t.Fatalf("generation %d: %v", gen, err)
		}
		if acked > 0 {
			lastAck = acked
		}

		db, err := OpenDurable(dir)
		if err != nil {
			t.Fatalf("generation %d: reopen after kill: %v", gen, err)
		}
		a, err := db.Query(`SELECT n, data FROM log_a ORDER BY n`)
		if err != nil {
			t.Fatalf("generation %d: %v", gen, err)
		}
		b, err := db.Query(`SELECT n, data FROM log_b ORDER BY n`)
		if err != nil {
			t.Fatalf("generation %d: %v", gen, err)
		}
		// Atomicity: the two tables must hold the identical commit set.
		if rowsExact(a) != rowsExact(b) {
			t.Fatalf("generation %d: torn transactions:\nlog_a:\n%s\nlog_b:\n%s", gen, rowsExact(a), rowsExact(b))
		}
		// Durability: every acknowledged commit is present, contiguous
		// from 1, with its exact payload. Commits beyond the last ack
		// are allowed (durable but killed before the ack line flushed).
		if int64(a.Len()) < lastAck {
			t.Fatalf("generation %d: %d acked commits, only %d recovered", gen, lastAck, a.Len())
		}
		for i, row := range a.Data {
			n, ok := row[0].(int64)
			if !ok || n != int64(i+1) {
				t.Fatalf("generation %d: commit sequence has a hole at %d: %v", gen, i+1, row[0])
			}
			if row[1] != fmt.Sprintf("payload-%d", n) {
				t.Fatalf("generation %d: commit %d corrupted: %q", gen, n, row[1])
			}
		}
		lastAck = int64(a.Len())
		if err := db.Close(); err != nil {
			t.Fatalf("generation %d: close: %v", gen, err)
		}
	}
}

// runCrashChild re-executes the test binary as a crash child against
// dir, SIGKILLs it after killAfter acknowledgements, and returns the
// highest commit the child acknowledged before dying.
func runCrashChild(t *testing.T, dir string, killAfter int) (int64, error) {
	t.Helper()
	return runCrashChildNamed(t, dir, killAfter, "TestCrashChildHelper", "RDB_CRASH_DIR")
}

// runCrashChildNamed is the generic child runner: helper selects the
// child test body, envKey the directory variable it watches for.
func runCrashChildNamed(t *testing.T, dir string, killAfter int, helper, envKey string) (int64, error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run="+helper+"$", "-test.v")
	cmd.Env = append(os.Environ(), envKey+"="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		return 0, err
	}
	cmd.Stderr = nil
	if err := cmd.Start(); err != nil {
		return 0, err
	}
	// Watchdog: a hung child must not hang the suite.
	watchdog := time.AfterFunc(30*time.Second, func() { cmd.Process.Kill() })
	defer watchdog.Stop()

	var acked int64
	acks := 0
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "CHILD_ERR") {
			cmd.Process.Kill()
			cmd.Wait()
			return acked, fmt.Errorf("child failed: %s", line)
		}
		if rest, ok := strings.CutPrefix(line, "ACK "); ok {
			n, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				continue
			}
			acked = n
			if acks++; acks >= killAfter {
				// Kill mid-storm: the child is already inside its next
				// commit by the time the signal lands.
				cmd.Process.Kill()
				break
			}
		}
	}
	for sc.Scan() { // drain until the pipe closes
	}
	cmd.Wait()
	return acked, nil
}
