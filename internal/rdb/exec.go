package rdb

import (
	"fmt"
	"sort"
	"strings"
)

// frame binds one table alias to a row during evaluation.
type frame struct {
	name string // alias (lower-cased)
	tbl  *table
	row  Row // nil row means "all NULLs" (LEFT JOIN miss)
}

type env struct {
	frames []frame
}

func singleEnv(t *table, name string, r Row) *env {
	return &env{frames: []frame{{name: strings.ToLower(name), tbl: t, row: r}}}
}

// resolve finds the value of a column reference in the environment.
func (e *env) resolve(ref *ColRef) (Value, error) {
	if ref.Table != "" {
		want := strings.ToLower(ref.Table)
		for _, f := range e.frames {
			if f.name != want {
				continue
			}
			i, ok := f.tbl.col(ref.Column)
			if !ok {
				return nil, fmt.Errorf("rdb: no column %q in %q", ref.Column, ref.Table)
			}
			if f.row == nil {
				return nil, nil
			}
			return f.row[i], nil
		}
		return nil, fmt.Errorf("rdb: unknown table or alias %q", ref.Table)
	}
	var found *frame
	var idx int
	for fi := range e.frames {
		f := &e.frames[fi]
		if i, ok := f.tbl.col(ref.Column); ok {
			if found != nil {
				return nil, fmt.Errorf("rdb: ambiguous column %q", ref.Column)
			}
			found = f
			idx = i
		}
	}
	if found == nil {
		return nil, fmt.Errorf("rdb: unknown column %q", ref.Column)
	}
	if found.row == nil {
		return nil, nil
	}
	return found.row[idx], nil
}

// evalConst evaluates an expression with no column references (INSERT
// values, LIMIT).
func evalConst(e Expr, args []Value) (Value, error) {
	return evalExpr(e, &env{}, args)
}

func evalExpr(e Expr, en *env, args []Value) (Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *Param:
		if x.Index < 0 || x.Index >= len(args) {
			return nil, fmt.Errorf("rdb: parameter index %d out of range", x.Index)
		}
		return args[x.Index], nil
	case *ColRef:
		return en.resolve(x)
	case *UnaryExpr:
		v, err := evalExpr(x.X, en, args)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "NOT":
			if v == nil {
				return nil, nil
			}
			return !truthy(v), nil
		case "-":
			switch n := v.(type) {
			case int64:
				return -n, nil
			case float64:
				return -n, nil
			case nil:
				return nil, nil
			}
			return nil, fmt.Errorf("rdb: cannot negate %T", v)
		}
		return nil, fmt.Errorf("rdb: unknown unary op %q", x.Op)
	case *IsNullExpr:
		v, err := evalExpr(x.X, en, args)
		if err != nil {
			return nil, err
		}
		return (v == nil) != x.Not, nil
	case *InExpr:
		v, err := evalExpr(x.X, en, args)
		if err != nil {
			return nil, err
		}
		if v == nil {
			return nil, nil
		}
		for _, le := range x.List {
			lv, err := evalExpr(le, en, args)
			if err != nil {
				return nil, err
			}
			if lv == nil {
				continue
			}
			if c, err := compareValues(v, lv); err == nil && c == 0 {
				return !x.Not, nil
			}
		}
		return x.Not, nil
	case *FuncExpr:
		return evalScalarFunc(x, en, args)
	case *BinaryExpr:
		return evalBinary(x, en, args)
	}
	return nil, fmt.Errorf("rdb: cannot evaluate %T", e)
}

func evalBinary(x *BinaryExpr, en *env, args []Value) (Value, error) {
	// AND/OR get SQL three-valued-ish short-circuit treatment.
	switch x.Op {
	case "AND":
		l, err := evalExpr(x.L, en, args)
		if err != nil {
			return nil, err
		}
		if l != nil && !truthy(l) {
			return false, nil
		}
		r, err := evalExpr(x.R, en, args)
		if err != nil {
			return nil, err
		}
		if r != nil && !truthy(r) {
			return false, nil
		}
		if l == nil || r == nil {
			return nil, nil
		}
		return true, nil
	case "OR":
		l, err := evalExpr(x.L, en, args)
		if err != nil {
			return nil, err
		}
		if l != nil && truthy(l) {
			return true, nil
		}
		r, err := evalExpr(x.R, en, args)
		if err != nil {
			return nil, err
		}
		if r != nil && truthy(r) {
			return true, nil
		}
		if l == nil || r == nil {
			return nil, nil
		}
		return false, nil
	}
	l, err := evalExpr(x.L, en, args)
	if err != nil {
		return nil, err
	}
	r, err := evalExpr(x.R, en, args)
	if err != nil {
		return nil, err
	}
	if l == nil || r == nil {
		return nil, nil // NULL propagates through comparisons and arithmetic
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		c, err := compareValues(l, r)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "=":
			return c == 0, nil
		case "<>":
			return c != 0, nil
		case "<":
			return c < 0, nil
		case "<=":
			return c <= 0, nil
		case ">":
			return c > 0, nil
		case ">=":
			return c >= 0, nil
		}
	case "LIKE":
		ls, ok1 := l.(string)
		rs, ok2 := r.(string)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("rdb: LIKE requires strings, got %T and %T", l, r)
		}
		return likeMatch(ls, rs), nil
	case "+", "-", "*", "/":
		return arith(x.Op, l, r)
	}
	return nil, fmt.Errorf("rdb: unknown operator %q", x.Op)
}

func arith(op string, l, r Value) (Value, error) {
	// String concatenation with +.
	if op == "+" {
		if ls, ok := l.(string); ok {
			if rs, ok := r.(string); ok {
				return ls + rs, nil
			}
		}
	}
	li, lInt := l.(int64)
	ri, rInt := r.(int64)
	if lInt && rInt {
		switch op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		case "*":
			return li * ri, nil
		case "/":
			if ri == 0 {
				return nil, fmt.Errorf("rdb: division by zero")
			}
			return li / ri, nil
		}
	}
	lf, err := toFloat(l)
	if err != nil {
		return nil, err
	}
	rf, err := toFloat(r)
	if err != nil {
		return nil, err
	}
	switch op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	case "/":
		if rf == 0 {
			return nil, fmt.Errorf("rdb: division by zero")
		}
		return lf / rf, nil
	}
	return nil, fmt.Errorf("rdb: unknown arithmetic op %q", op)
}

func toFloat(v Value) (float64, error) {
	switch x := v.(type) {
	case int64:
		return float64(x), nil
	case float64:
		return x, nil
	}
	return 0, fmt.Errorf("rdb: %T is not numeric", v)
}

// likeMatch implements SQL LIKE with % and _ wildcards using an
// iterative two-pointer scan. On a mismatch past a %, the pattern
// rewinds to just after the most recent % and the text restarts one
// byte later — each position is retried at most once per %, so matching
// is O(len(s) * len(pattern)) where the naive recursive formulation is
// exponential on patterns like "%a%a%a%b" against a long run of 'a's.
func likeMatch(s, pattern string) bool {
	var si, pi int
	star, match := -1, 0 // position after the last %, text position it matched at
	for si < len(s) {
		switch {
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi + 1
			match = si
			pi++
		case pi < len(pattern) && (pattern[pi] == '_' || equalFoldByte(pattern[pi], s[si])):
			si++
			pi++
		case star >= 0:
			match++
			si = match
			pi = star
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

func equalFoldByte(a, b byte) bool {
	if a == b {
		return true
	}
	if a >= 'A' && a <= 'Z' {
		a += 'a' - 'A'
	}
	if b >= 'A' && b <= 'Z' {
		b += 'a' - 'A'
	}
	return a == b
}

func evalScalarFunc(x *FuncExpr, en *env, args []Value) (Value, error) {
	if aggregateFuncs[x.Name] {
		return nil, fmt.Errorf("rdb: aggregate %s used outside aggregate query", x.Name)
	}
	vals := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := evalExpr(a, en, args)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return applyScalarFunc(x, vals)
}

// applyScalarFunc applies a scalar function to already-evaluated
// arguments — shared between the AST interpreter and compiled plans so
// both paths have identical semantics.
func applyScalarFunc(x *FuncExpr, vals []Value) (Value, error) {
	switch x.Name {
	case "LOWER":
		if len(vals) != 1 {
			return nil, fmt.Errorf("rdb: LOWER takes 1 argument")
		}
		if vals[0] == nil {
			return nil, nil
		}
		s, ok := vals[0].(string)
		if !ok {
			return nil, fmt.Errorf("rdb: LOWER requires a string")
		}
		return strings.ToLower(s), nil
	case "UPPER":
		if len(vals) != 1 {
			return nil, fmt.Errorf("rdb: UPPER takes 1 argument")
		}
		if vals[0] == nil {
			return nil, nil
		}
		s, ok := vals[0].(string)
		if !ok {
			return nil, fmt.Errorf("rdb: UPPER requires a string")
		}
		return strings.ToUpper(s), nil
	case "LENGTH":
		if len(vals) != 1 {
			return nil, fmt.Errorf("rdb: LENGTH takes 1 argument")
		}
		if vals[0] == nil {
			return nil, nil
		}
		s, ok := vals[0].(string)
		if !ok {
			return nil, fmt.Errorf("rdb: LENGTH requires a string")
		}
		return int64(len(s)), nil
	case "ABS":
		if len(vals) != 1 {
			return nil, fmt.Errorf("rdb: ABS takes 1 argument")
		}
		switch n := vals[0].(type) {
		case nil:
			return nil, nil
		case int64:
			if n < 0 {
				return -n, nil
			}
			return n, nil
		case float64:
			if n < 0 {
				return -n, nil
			}
			return n, nil
		}
		return nil, fmt.Errorf("rdb: ABS requires a number")
	case "COALESCE":
		for _, v := range vals {
			if v != nil {
				return v, nil
			}
		}
		return nil, nil
	case "SUBSTR":
		if len(vals) != 3 {
			return nil, fmt.Errorf("rdb: SUBSTR takes 3 arguments")
		}
		if vals[0] == nil {
			return nil, nil
		}
		s, ok := vals[0].(string)
		start, ok2 := vals[1].(int64)
		length, ok3 := vals[2].(int64)
		if !ok || !ok2 || !ok3 {
			return nil, fmt.Errorf("rdb: SUBSTR(string, int, int)")
		}
		// SQL SUBSTR is 1-based.
		i := int(start) - 1
		if i < 0 {
			i = 0
		}
		if i > len(s) {
			return "", nil
		}
		j := i + int(length)
		if j > len(s) {
			j = len(s)
		}
		return s[i:j], nil
	}
	return nil, fmt.Errorf("rdb: unknown function %s", x.Name)
}

// candidateIDs chooses an access path for a single-table statement. It
// scans unless WHERE contains a top-level equality conjunct over an
// indexed column (primary key, secondary index, or unique column).
func candidateIDs(t *table, tableName string, where Expr, args []Value) ([]int, error) {
	return candidateIDsQualified(t, tableName, where, args, false)
}

// candidateIDsQualified is candidateIDs with control over whether the
// matched equality conjunct must use a table-qualified column reference.
// Qualification is required when the query has joins: an unqualified
// column in WHERE may belong to a different table.
func candidateIDsQualified(t *table, tableName string, where Expr, args []Value, requireQualified bool) ([]int, error) {
	if where != nil {
		if col, valExpr, ok := indexableEquality(where, t, tableName, requireQualified); ok {
			v, err := evalConst(valExpr, args)
			if err == nil {
				ids, usable := t.lookup(col, v)
				if usable {
					return ids, nil
				}
			}
		}
		// Range predicates over an ordered index.
		if col, lo, hi, ok := rangeConjuncts(where, t, tableName, requireQualified, args); ok {
			if ids, usable := t.rangeLookup(col, lo, hi); usable {
				return ids, nil
			}
		}
	}
	ids := make([]int, 0, t.alive)
	for id, r := range t.rows {
		if r != nil {
			ids = append(ids, id)
		}
	}
	return ids, nil
}

// indexableEquality searches the top-level AND conjuncts of where for
// "col = constExpr" (or the symmetric form) where col belongs to t and is
// indexed, and constExpr contains no column references.
func indexableEquality(where Expr, t *table, tableName string, requireQualified bool) (string, Expr, bool) {
	switch x := where.(type) {
	case *BinaryExpr:
		switch x.Op {
		case "AND":
			if c, v, ok := indexableEquality(x.L, t, tableName, requireQualified); ok {
				return c, v, true
			}
			return indexableEquality(x.R, t, tableName, requireQualified)
		case "=":
			if c, v, ok := eqSide(x.L, x.R, t, tableName, requireQualified); ok {
				return c, v, true
			}
			return eqSide(x.R, x.L, t, tableName, requireQualified)
		}
	}
	return "", nil, false
}

func eqSide(colSide, valSide Expr, t *table, tableName string, requireQualified bool) (string, Expr, bool) {
	ref, ok := colSide.(*ColRef)
	if !ok {
		return "", nil, false
	}
	if ref.Table == "" && requireQualified {
		return "", nil, false
	}
	if ref.Table != "" && !strings.EqualFold(ref.Table, tableName) {
		return "", nil, false
	}
	lower := strings.ToLower(ref.Column)
	i, ok := t.colIdx[lower]
	if !ok {
		return "", nil, false
	}
	indexed := i == t.pk
	if _, has := t.indexes[lower]; has {
		indexed = true
	}
	if _, has := t.uniques[lower]; has {
		indexed = true
	}
	if !indexed {
		return "", nil, false
	}
	if !isConstExpr(valSide) {
		return "", nil, false
	}
	return ref.Column, valSide, true
}

// rangeConjuncts collects the tightest lower/upper bounds imposed on one
// ordered-indexed column by the top-level AND conjuncts of where. It
// returns ok=false when no ordered-indexed column is range-constrained.
func rangeConjuncts(where Expr, t *table, tableName string, requireQualified bool, args []Value) (string, rangeBound, rangeBound, bool) {
	bounds := map[string]*[2]rangeBound{} // lower(col) -> [lo, hi]
	var walk func(e Expr)
	walk = func(e Expr) {
		be, ok := e.(*BinaryExpr)
		if !ok {
			return
		}
		if be.Op == "AND" {
			walk(be.L)
			walk(be.R)
			return
		}
		col, val, op := rangeSide(be, t, tableName, requireQualified, args)
		if col == "" {
			return
		}
		lower := lowerKey(col)
		if _, indexed := t.ordered[lower]; !indexed {
			return
		}
		b, ok := bounds[lower]
		if !ok {
			b = &[2]rangeBound{}
			bounds[lower] = b
		}
		switch op {
		case ">":
			tightenLo(&b[0], val, false)
		case ">=":
			tightenLo(&b[0], val, true)
		case "<":
			tightenHi(&b[1], val, false)
		case "<=":
			tightenHi(&b[1], val, true)
		}
	}
	walk(where)
	for col, b := range bounds {
		if b[0].set || b[1].set {
			return col, b[0], b[1], true
		}
	}
	return "", rangeBound{}, rangeBound{}, false
}

// rangeSide normalizes "col op const" / "const op col" into (col,
// value, op-with-col-on-the-left).
func rangeSide(be *BinaryExpr, t *table, tableName string, requireQualified bool, args []Value) (string, Value, string) {
	flip := map[string]string{"<": ">", "<=": ">=", ">": "<", ">=": "<="}
	op := be.Op
	if _, isRange := flip[op]; !isRange {
		return "", nil, ""
	}
	try := func(colSide, valSide Expr, op string) (string, Value, string) {
		ref, ok := colSide.(*ColRef)
		if !ok {
			return "", nil, ""
		}
		if ref.Table == "" && requireQualified {
			return "", nil, ""
		}
		if ref.Table != "" && !strings.EqualFold(ref.Table, tableName) {
			return "", nil, ""
		}
		if !isConstExpr(valSide) {
			return "", nil, ""
		}
		v, err := evalConst(valSide, args)
		if err != nil || v == nil {
			return "", nil, ""
		}
		return ref.Column, v, op
	}
	if col, v, o := try(be.L, be.R, op); col != "" {
		return col, v, o
	}
	return try(be.R, be.L, flip[op])
}

func tightenLo(b *rangeBound, v Value, inclusive bool) {
	if !b.set {
		*b = rangeBound{val: v, inclusive: inclusive, set: true}
		return
	}
	if c, err := compareValues(v, b.val); err == nil && (c > 0 || (c == 0 && !inclusive)) {
		*b = rangeBound{val: v, inclusive: inclusive, set: true}
	}
}

func tightenHi(b *rangeBound, v Value, inclusive bool) {
	if !b.set {
		*b = rangeBound{val: v, inclusive: inclusive, set: true}
		return
	}
	if c, err := compareValues(v, b.val); err == nil && (c < 0 || (c == 0 && !inclusive)) {
		*b = rangeBound{val: v, inclusive: inclusive, set: true}
	}
}

func isConstExpr(e Expr) bool {
	switch x := e.(type) {
	case *Literal, *Param:
		return true
	case *UnaryExpr:
		return x.Op == "-" && isConstExpr(x.X)
	case *BinaryExpr:
		switch x.Op {
		case "+", "-", "*", "/":
			return isConstExpr(x.L) && isConstExpr(x.R)
		}
	}
	return false
}

// execSelect runs a SELECT over the live tables. The caller must hold
// at least a read lock.
func (db *DB) execSelect(st *SelectStmt, args []Value) (*Rows, error) {
	return execSelectTables(db.tables, st, args)
}

// execSelectTables runs a SELECT against an explicit table map: the
// live tables under the read lock, or a frozen MVCC snapshot with no
// lock at all (the interpreter reads nothing else from DB).
func execSelectTables(tables map[string]*table, st *SelectStmt, args []Value) (*Rows, error) {
	base, ok := tables[strings.ToLower(st.From.Table)]
	if !ok {
		return nil, fmt.Errorf("rdb: no such table %q", st.From.Table)
	}
	joinTables := make([]*table, len(st.Joins))
	for i, j := range st.Joins {
		jt, ok := tables[strings.ToLower(j.Table.Table)]
		if !ok {
			return nil, fmt.Errorf("rdb: no such table %q", j.Table.Table)
		}
		joinTables[i] = jt
	}

	// Produce joined environments.
	envs, err := joinRows(st, base, joinTables, args)
	if err != nil {
		return nil, err
	}

	// Apply WHERE.
	if st.Where != nil {
		kept := envs[:0]
		for _, en := range envs {
			v, err := evalExpr(st.Where, en, args)
			if err != nil {
				return nil, err
			}
			if truthy(v) {
				kept = append(kept, en)
			}
		}
		envs = kept
	}

	aggregate := len(st.GroupBy) > 0
	if !aggregate {
		for _, c := range st.Columns {
			if c.Expr != nil && hasAggregate(c.Expr) {
				aggregate = true
				break
			}
		}
	}

	var out *Rows
	if aggregate {
		out, err = evalAggregateSelect(st, envs, args)
	} else {
		out, err = evalPlainSelect(st, envs, args)
	}
	if err != nil {
		return nil, err
	}

	if st.Distinct {
		out = distinctRows(out)
	}
	if len(st.OrderBy) > 0 {
		if err := orderRows(st, out, envs, aggregate, args); err != nil {
			return nil, err
		}
	}
	if err := applyLimitOffset(st, out, args); err != nil {
		return nil, err
	}
	return out, nil
}

// joinRows builds the cross-product environments restricted by the join
// conditions, using index lookups for equi-joins when possible.
func joinRows(st *SelectStmt, base *table, joinTables []*table, args []Value) ([]*env, error) {
	baseName := strings.ToLower(st.From.name())

	// Seed with the base table rows, using a WHERE-derived index path.
	// With joins in play, only a table-qualified equality may prune the
	// base scan; an unqualified column could belong to a joined table.
	candidates, err := candidateIDsQualified(base, st.From.name(), st.Where, args, len(st.Joins) > 0)
	if err != nil {
		return nil, err
	}
	envs := make([]*env, 0, len(candidates))
	for _, id := range candidates {
		r := base.rowAt(id)
		if r == nil {
			continue
		}
		envs = append(envs, &env{frames: []frame{{name: baseName, tbl: base, row: r}}})
	}

	for ji, j := range st.Joins {
		jt := joinTables[ji]
		jname := strings.ToLower(j.Table.name())
		var next []*env
		// Try an equi-join driven by an index on the new table.
		joinCol, outerExpr := equiJoinKey(j.On, jt, j.Table.name())
		for _, en := range envs {
			matched := false
			if joinCol != "" {
				outerVal, err := evalExpr(outerExpr, en, args)
				if err != nil {
					return nil, err
				}
				if ids, usable := jt.lookup(joinCol, outerVal); usable {
					for _, id := range ids {
						r := jt.rowAt(id)
						if r == nil {
							continue
						}
						cand := &env{frames: append(append([]frame{}, en.frames...), frame{name: jname, tbl: jt, row: r})}
						v, err := evalExpr(j.On, cand, args)
						if err != nil {
							return nil, err
						}
						if truthy(v) {
							next = append(next, cand)
							matched = true
						}
					}
					if !matched && j.Left {
						next = append(next, &env{frames: append(append([]frame{}, en.frames...), frame{name: jname, tbl: jt, row: nil})})
					}
					continue
				}
			}
			// Nested loop fallback.
			for id := range jt.rows {
				r := jt.rowAt(id)
				if r == nil {
					continue
				}
				cand := &env{frames: append(append([]frame{}, en.frames...), frame{name: jname, tbl: jt, row: r})}
				v, err := evalExpr(j.On, cand, args)
				if err != nil {
					return nil, err
				}
				if truthy(v) {
					next = append(next, cand)
					matched = true
				}
			}
			if !matched && j.Left {
				next = append(next, &env{frames: append(append([]frame{}, en.frames...), frame{name: jname, tbl: jt, row: nil})})
			}
		}
		envs = next
	}
	return envs, nil
}

// equiJoinKey inspects an ON expression for a top-level conjunct of the
// form "newTable.col = <expr over earlier tables>". It returns the column
// of the new table and the outer expression, or "" if none is found.
func equiJoinKey(on Expr, jt *table, jtName string) (string, Expr) {
	switch x := on.(type) {
	case *BinaryExpr:
		switch x.Op {
		case "AND":
			if c, e := equiJoinKey(x.L, jt, jtName); c != "" {
				return c, e
			}
			return equiJoinKey(x.R, jt, jtName)
		case "=":
			if c, e := joinSide(x.L, x.R, jt, jtName); c != "" {
				return c, e
			}
			return joinSide(x.R, x.L, jt, jtName)
		}
	}
	return "", nil
}

func joinSide(colSide, otherSide Expr, jt *table, jtName string) (string, Expr) {
	ref, ok := colSide.(*ColRef)
	if !ok || !strings.EqualFold(ref.Table, jtName) {
		return "", nil
	}
	lower := strings.ToLower(ref.Column)
	i, ok := jt.colIdx[lower]
	if !ok {
		return "", nil
	}
	indexed := i == jt.pk
	if _, has := jt.indexes[lower]; has {
		indexed = true
	}
	if _, has := jt.uniques[lower]; has {
		indexed = true
	}
	if !indexed {
		return "", nil
	}
	// The other side must not reference the new table (it must be
	// evaluable in the outer environment).
	if refersTo(otherSide, jtName) {
		return "", nil
	}
	return ref.Column, otherSide
}

func refersTo(e Expr, tableName string) bool {
	switch x := e.(type) {
	case *ColRef:
		return x.Table == "" || strings.EqualFold(x.Table, tableName)
	case *BinaryExpr:
		return refersTo(x.L, tableName) || refersTo(x.R, tableName)
	case *UnaryExpr:
		return refersTo(x.X, tableName)
	case *IsNullExpr:
		return refersTo(x.X, tableName)
	case *InExpr:
		if refersTo(x.X, tableName) {
			return true
		}
		for _, le := range x.List {
			if refersTo(le, tableName) {
				return true
			}
		}
	case *FuncExpr:
		for _, a := range x.Args {
			if refersTo(a, tableName) {
				return true
			}
		}
	}
	return false
}

// outputColumns expands the projection list into column names.
func outputColumns(st *SelectStmt, envs []*env) ([]string, error) {
	var cols []string
	for _, c := range st.Columns {
		switch {
		case c.Star == "*":
			if len(envs) > 0 {
				for _, f := range envs[0].frames {
					cols = append(cols, f.tbl.columnNames()...)
				}
			} else {
				cols = append(cols, "*")
			}
		case c.Star != "":
			if len(envs) > 0 {
				for _, f := range envs[0].frames {
					if f.name == strings.ToLower(c.Star) {
						cols = append(cols, f.tbl.columnNames()...)
					}
				}
			}
		case c.Alias != "":
			cols = append(cols, c.Alias)
		default:
			cols = append(cols, exprName(c.Expr))
		}
	}
	return cols, nil
}

func exprName(e Expr) string {
	switch x := e.(type) {
	case *ColRef:
		return x.Column
	case *FuncExpr:
		if x.Star {
			return x.Name + "(*)"
		}
		return x.Name
	}
	return "expr"
}

func evalPlainSelect(st *SelectStmt, envs []*env, args []Value) (*Rows, error) {
	cols, err := outputColumns(st, envs)
	if err != nil {
		return nil, err
	}
	out := &Rows{Columns: cols}
	for _, en := range envs {
		var row []Value
		for _, c := range st.Columns {
			switch {
			case c.Star == "*":
				for _, f := range en.frames {
					row = append(row, frameValues(f)...)
				}
			case c.Star != "":
				for _, f := range en.frames {
					if f.name == strings.ToLower(c.Star) {
						row = append(row, frameValues(f)...)
					}
				}
			default:
				v, err := evalExpr(c.Expr, en, args)
				if err != nil {
					return nil, err
				}
				row = append(row, v)
			}
		}
		out.Data = append(out.Data, row)
	}
	return out, nil
}

func frameValues(f frame) []Value {
	n := len(f.tbl.cols)
	vals := make([]Value, n)
	if f.row != nil {
		copy(vals, f.row)
	}
	return vals
}

func evalAggregateSelect(st *SelectStmt, envs []*env, args []Value) (*Rows, error) {
	cols, err := outputColumns(st, envs)
	if err != nil {
		return nil, err
	}
	out := &Rows{Columns: cols}

	// Group environments by GROUP BY key.
	type group struct {
		key  string
		envs []*env
	}
	var groups []*group
	if len(st.GroupBy) == 0 {
		groups = []*group{{key: "", envs: envs}}
	} else {
		byKey := make(map[string]*group)
		for _, en := range envs {
			var kb strings.Builder
			for _, ge := range st.GroupBy {
				v, err := evalExpr(ge, en, args)
				if err != nil {
					return nil, err
				}
				kb.WriteString(FormatValue(v))
				kb.WriteByte('\x1f')
			}
			k := kb.String()
			g, ok := byKey[k]
			if !ok {
				g = &group{key: k}
				byKey[k] = g
				groups = append(groups, g)
			}
			g.envs = append(g.envs, en)
		}
	}

	for _, g := range groups {
		if len(g.envs) == 0 && len(st.GroupBy) > 0 {
			continue
		}
		if st.Having != nil {
			v, err := evalAggExpr(st.Having, g.envs, args)
			if err != nil {
				return nil, err
			}
			if !truthy(v) {
				continue
			}
		}
		var row []Value
		for _, c := range st.Columns {
			if c.Star != "" {
				return nil, fmt.Errorf("rdb: '*' projection is not allowed in aggregate queries")
			}
			v, err := evalAggExpr(c.Expr, g.envs, args)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		out.Data = append(out.Data, row)
	}
	return out, nil
}

// evalAggExpr evaluates an expression over a group: aggregate calls reduce
// over the group's rows; everything else is evaluated on the first row.
func evalAggExpr(e Expr, group []*env, args []Value) (Value, error) {
	switch x := e.(type) {
	case *FuncExpr:
		if !aggregateFuncs[x.Name] {
			break
		}
		return evalAggregate(x, group, args)
	case *BinaryExpr:
		if hasAggregate(x.L) || hasAggregate(x.R) {
			l, err := evalAggExpr(x.L, group, args)
			if err != nil {
				return nil, err
			}
			r, err := evalAggExpr(x.R, group, args)
			if err != nil {
				return nil, err
			}
			return evalBinary(&BinaryExpr{Op: x.Op, L: &Literal{Val: l}, R: &Literal{Val: r}}, &env{}, args)
		}
	}
	if len(group) == 0 {
		return nil, nil
	}
	return evalExpr(e, group[0], args)
}

func evalAggregate(x *FuncExpr, group []*env, args []Value) (Value, error) {
	if x.Name == "COUNT" && x.Star {
		return int64(len(group)), nil
	}
	if len(x.Args) != 1 {
		return nil, fmt.Errorf("rdb: %s takes exactly 1 argument", x.Name)
	}
	var vals []Value
	for _, en := range group {
		v, err := evalExpr(x.Args[0], en, args)
		if err != nil {
			return nil, err
		}
		if v != nil {
			vals = append(vals, v)
		}
	}
	switch x.Name {
	case "COUNT":
		return int64(len(vals)), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return nil, nil
		}
		allInt := true
		var fsum float64
		var isum int64
		for _, v := range vals {
			switch n := v.(type) {
			case int64:
				isum += n
				fsum += float64(n)
			case float64:
				allInt = false
				fsum += n
			default:
				return nil, fmt.Errorf("rdb: %s over non-numeric value %T", x.Name, v)
			}
		}
		if x.Name == "AVG" {
			return fsum / float64(len(vals)), nil
		}
		if allInt {
			return isum, nil
		}
		return fsum, nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return nil, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, err := compareValues(v, best)
			if err != nil {
				return nil, err
			}
			if (x.Name == "MIN" && c < 0) || (x.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return nil, fmt.Errorf("rdb: unknown aggregate %s", x.Name)
}

func distinctRows(in *Rows) *Rows {
	seen := make(map[string]bool, len(in.Data))
	out := &Rows{Columns: in.Columns}
	for _, row := range in.Data {
		var kb strings.Builder
		for _, v := range row {
			kb.WriteString(FormatValue(v))
			kb.WriteByte('\x1f')
		}
		k := kb.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Data = append(out.Data, row)
	}
	return out
}

// orderRows sorts out.Data. For plain selects the ORDER BY expressions are
// evaluated against the source environments (parallel to out.Data); for
// aggregate queries they must name output columns.
func orderRows(st *SelectStmt, out *Rows, envs []*env, aggregate bool, args []Value) error {
	n := len(out.Data)
	keys := make([][]Value, n)
	for i := 0; i < n; i++ {
		keys[i] = make([]Value, len(st.OrderBy))
		for k, term := range st.OrderBy {
			var v Value
			var err error
			if !aggregate && !st.Distinct && i < len(envs) {
				v, err = evalExpr(term.Expr, envs[i], args)
				if err != nil {
					// The term may name an output alias instead.
					v, err = orderByOutput(term.Expr, out, i)
				}
			} else {
				v, err = orderByOutput(term.Expr, out, i)
			}
			if err != nil {
				return err
			}
			keys[i][k] = v
		}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var sortErr error
	sort.SliceStable(idx, func(a, b int) bool {
		for k, term := range st.OrderBy {
			va, vb := keys[idx[a]][k], keys[idx[b]][k]
			if va == nil && vb == nil {
				continue
			}
			if va == nil {
				return !term.Desc // NULLs first ascending
			}
			if vb == nil {
				return term.Desc
			}
			c, err := compareValues(va, vb)
			if err != nil {
				sortErr = err
				return false
			}
			if c == 0 {
				continue
			}
			if term.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	sorted := make([][]Value, n)
	for i, j := range idx {
		sorted[i] = out.Data[j]
	}
	out.Data = sorted
	return nil
}

func orderByOutput(e Expr, out *Rows, rowIdx int) (Value, error) {
	ref, ok := e.(*ColRef)
	if !ok {
		return nil, fmt.Errorf("rdb: ORDER BY over aggregates must reference output columns")
	}
	ci := out.Col(ref.Column)
	if ci < 0 {
		return nil, fmt.Errorf("rdb: ORDER BY references unknown output column %q", ref.Column)
	}
	return out.Data[rowIdx][ci], nil
}

func applyLimitOffset(st *SelectStmt, out *Rows, args []Value) error {
	offset := 0
	if st.Offset != nil {
		v, err := evalConst(st.Offset, args)
		if err != nil {
			return err
		}
		n, ok := v.(int64)
		if !ok || n < 0 {
			return fmt.Errorf("rdb: OFFSET must be a non-negative integer")
		}
		offset = int(n)
	}
	if offset > len(out.Data) {
		offset = len(out.Data)
	}
	out.Data = out.Data[offset:]
	if st.Limit != nil {
		v, err := evalConst(st.Limit, args)
		if err != nil {
			return err
		}
		n, ok := v.(int64)
		if !ok || n < 0 {
			return fmt.Errorf("rdb: LIMIT must be a non-negative integer")
		}
		if int(n) < len(out.Data) {
			out.Data = out.Data[:n]
		}
	}
	return nil
}
