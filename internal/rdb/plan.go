package rdb

import (
	"errors"
	"math/bits"
	"sort"
	"time"
)

// This file holds the physical plan representation and its executor.
// A SELECT is compiled once (planner.go) into a SelectPlan — access
// path, join strategies, filter, projection, sort keys and limits all
// resolved to closures and index pointers — and executed many times
// with only the '?' parameters changing. The AST interpreter in
// exec.go is retained verbatim as the reference implementation
// (QueryInterpreted) for differential testing.

// accessOp enumerates the base-table access operators.
type accessOp int

const (
	accessScan      accessOp = iota // full table scan
	accessPK                        // primary-key point lookup
	accessUnique                    // unique-column point lookup
	accessHash                      // hash-index bucket lookup
	accessRange                     // ordered-index range scan (single column)
	accessComposite                 // composite-index prefix/range scan
	accessSnapPK                    // record-store point fetch at a snapshot sequence
)

// boundCand is one not-yet-evaluated range bound; the tightest bound is
// selected at bind time, when parameter values are known.
type boundCand struct {
	val       compiledExpr
	inclusive bool
}

// accessPath is the chosen base-table operator with its bind-time
// inputs resolved to closures and its index structures resolved to
// pointers (valid until the next DDL epoch bump).
type accessPath struct {
	kind      accessOp
	col       string // display column for point/range paths (original case)
	label     string // display label for point paths: PRIMARY KEY / UNIQUE / INDEX
	hashIdx   map[Value][]int
	uniqMap   map[Value]int
	ord       *orderedIndex
	comp      *compositeIndex
	eq        []compiledExpr // point value, or composite equality prefix
	los       []boundCand
	his       []boundCand
	rangeCol  string // display: bounded column of a composite range
	orderWalk bool   // full index walk chosen purely for ORDER BY
	reverse   bool   // DESC index-order scan (sort elimination)
	est       float64
}

type joinKind int

const (
	jkLoop joinKind = iota
	jkPK
	jkUnique
	jkHash
	jkComposite
)

// joinPlan is one join operator: an indexed equi-join probing the new
// table by a key computed from the outer frames, or a nested loop.
type joinPlan struct {
	left         bool
	tbl          *table
	displayTable string
	kind         joinKind
	col          string // display: probed column (original case)
	label        string // display: PRIMARY KEY / UNIQUE / INDEX / COMPOSITE INDEX
	hashIdx      map[Value][]int
	uniqMap      map[Value]int
	comp         *compositeIndex
	outer        compiledExpr // evaluated over the outer frames
	on           compiledExpr // full ON condition over outer + new frame
	estRows      int          // plan-time row count, for EXPLAIN
}

// projStep is one projection item: a compiled expression, or a star
// expansion over the listed frame indexes (expr == nil).
type projStep struct {
	expr   compiledExpr
	frames []int
}

// orderKey is one compiled ORDER BY term with the interpreter's
// output-column fallback resolved at plan time.
type orderKey struct {
	expr        compiledExpr
	desc        bool
	outCol      int   // output column fallback; -1 when none
	errFallback error // returned when expr fails and no fallback exists
}

type tableSize struct {
	t     *table
	class int
}

// sizeClass buckets a row count by powers of two: plans are revalidated
// when a referenced table's class changes, so cost choices track growth
// without replanning on every write.
func sizeClass(n int) int { return bits.Len(uint(n)) }

// SelectPlan is a fully compiled SELECT. It is immutable after
// construction and safe for concurrent execution; all mutable state
// lives in the per-execution execCtx.
type SelectPlan struct {
	stmt      *SelectStmt
	epoch     uint64
	sizes     []tableSize
	frames    []planFrame
	base      *table
	baseTable string // display name (From.Table)
	access    accessPath
	joins     []joinPlan
	where     compiledExpr // nil when no WHERE
	aggregate bool
	distinct  bool

	// Non-aggregate projection and ordering:
	cols      []string // output columns when rows survive the WHERE
	colsEmpty []string // interpreter's star quirk on empty results
	hasStar   bool
	proj      []projStep
	orderBy   []orderKey
	sortElim  bool
	limit     compiledExpr // nil if absent
	offset    compiledExpr // nil if absent
}

// valid reports whether the plan may still be executed: same DDL epoch
// and unchanged size classes for every referenced table.
func (p *SelectPlan) valid(db *DB) bool {
	if p.epoch != db.ddlEpoch {
		return false
	}
	for _, s := range p.sizes {
		if sizeClass(s.t.alive) != s.class {
			return false
		}
	}
	return true
}

// errStopIteration aborts row production once LIMIT is satisfied.
var errStopIteration = errors.New("rdb: stop iteration")

// execPlan runs a compiled plan. The caller must hold at least a read
// lock on db.mu. es collects per-operator actuals when non-nil
// (EXPLAIN ANALYZE, traced queries, the flight recorder); the hot path
// passes nil and pays only nil checks.
func (db *DB) execPlan(p *SelectPlan, args []Value, es *execStats) (*Rows, error) {
	if p.aggregate {
		return db.execPlanAggregate(p, args, es)
	}
	c := &execCtx{rows: make([]Row, len(p.frames)), args: args, stats: es}
	limit, offset, hasLimit, err := p.evalLimits(c)
	if err != nil {
		return nil, err
	}
	db.countJoinStats(p)
	needSort := len(p.orderBy) > 0 && !p.sortElim
	var keys [][]Value
	// LIMIT pushdown: stop producing once offset+limit rows exist, valid
	// when no sort (or an index-order scan) and no DISTINCT reshuffle.
	// A star projection still needs one row to expand column names.
	stopAt := int64(-1)
	if hasLimit && !p.distinct && !needSort {
		stopAt = offset + limit
		if p.hasStar && stopAt == 0 {
			stopAt = 1
		}
	}
	out := &Rows{}
	emit := func() error {
		if p.where != nil {
			if c.stats != nil {
				c.stats.filterIn++
			}
			v, err := p.where(c)
			if err != nil {
				return err
			}
			if !truthy(v) {
				return nil
			}
			if c.stats != nil {
				c.stats.filterOut++
			}
		}
		row, err := p.project(c)
		if err != nil {
			return err
		}
		if needSort && !p.distinct {
			kv := make([]Value, len(p.orderBy))
			for k := range p.orderBy {
				ok := &p.orderBy[k]
				v, err := ok.expr(c)
				if err != nil {
					if ok.outCol < 0 {
						return ok.errFallback
					}
					v = row[ok.outCol]
				}
				kv[k] = v
			}
			keys = append(keys, kv)
		}
		out.Data = append(out.Data, row)
		if stopAt >= 0 && int64(len(out.Data)) >= stopAt {
			return errStopIteration
		}
		return nil
	}
	baseEach := func(r Row) error {
		c.rows[0] = r
		return db.joinStep(p, c, 0, emit)
	}
	if c.stats != nil {
		inner := baseEach
		baseEach = func(r Row) error {
			c.stats.base.rowsOut++
			return inner(r)
		}
		t0 := time.Now()
		err = db.runBase(p, c, baseEach)
		c.stats.base.elapsed = time.Since(t0)
	} else {
		err = db.runBase(p, c, baseEach)
	}
	if err != nil && err != errStopIteration {
		return nil, err
	}
	if len(out.Data) == 0 {
		out.Columns = p.colsEmpty
	} else {
		out.Columns = p.cols
	}
	if p.distinct {
		out = distinctRows(out)
	}
	if needSort {
		if err := sortCompiled(p, out, keys); err != nil {
			return nil, err
		}
	}
	if p.sortElim {
		db.stats.sortsEliminated.Add(1)
	}
	if offset > int64(len(out.Data)) {
		offset = int64(len(out.Data))
	}
	out.Data = out.Data[offset:]
	if hasLimit && limit < int64(len(out.Data)) {
		out.Data = out.Data[:limit]
	}
	return out, nil
}

// execPlanAggregate runs an aggregate plan: the compiled access path,
// joins and filter produce environments, and the aggregate tail
// (grouping, HAVING, output-column ordering) is shared verbatim with
// the interpreter.
func (db *DB) execPlanAggregate(p *SelectPlan, args []Value, es *execStats) (*Rows, error) {
	c := &execCtx{rows: make([]Row, len(p.frames)), args: args, stats: es}
	db.countJoinStats(p)
	var envs []*env
	emit := func() error {
		if p.where != nil {
			if c.stats != nil {
				c.stats.filterIn++
			}
			v, err := p.where(c)
			if err != nil {
				return err
			}
			if !truthy(v) {
				return nil
			}
			if c.stats != nil {
				c.stats.filterOut++
			}
		}
		fs := make([]frame, len(p.frames))
		for i, pf := range p.frames {
			fs[i] = frame{name: pf.name, tbl: pf.tbl, row: c.rows[i]}
		}
		envs = append(envs, &env{frames: fs})
		return nil
	}
	baseEach := func(r Row) error {
		c.rows[0] = r
		return db.joinStep(p, c, 0, emit)
	}
	var err error
	if c.stats != nil {
		inner := baseEach
		baseEach = func(r Row) error {
			c.stats.base.rowsOut++
			return inner(r)
		}
		t0 := time.Now()
		err = db.runBase(p, c, baseEach)
		c.stats.base.elapsed = time.Since(t0)
	} else {
		err = db.runBase(p, c, baseEach)
	}
	if err != nil {
		return nil, err
	}
	out, err := evalAggregateSelect(p.stmt, envs, args)
	if err != nil {
		return nil, err
	}
	if p.stmt.Distinct {
		out = distinctRows(out)
	}
	if len(p.stmt.OrderBy) > 0 {
		if err := orderRows(p.stmt, out, envs, true, args); err != nil {
			return nil, err
		}
	}
	if err := applyLimitOffset(p.stmt, out, args); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *SelectPlan) evalLimits(c *execCtx) (limit, offset int64, hasLimit bool, err error) {
	if p.offset != nil {
		v, err := p.offset(c)
		if err != nil {
			return 0, 0, false, err
		}
		n, ok := v.(int64)
		if !ok || n < 0 {
			return 0, 0, false, errors.New("rdb: OFFSET must be a non-negative integer")
		}
		offset = n
	}
	if p.limit != nil {
		v, err := p.limit(c)
		if err != nil {
			return 0, 0, false, err
		}
		n, ok := v.(int64)
		if !ok || n < 0 {
			return 0, 0, false, errors.New("rdb: LIMIT must be a non-negative integer")
		}
		limit = n
		hasLimit = true
	}
	return limit, offset, hasLimit, nil
}

func (db *DB) countJoinStats(p *SelectPlan) {
	for i := range p.joins {
		if p.joins[i].kind == jkLoop {
			db.stats.loopJoins.Add(1)
		} else {
			db.stats.indexedJoins.Add(1)
		}
	}
}

// foldBounds evaluates the bound candidates and keeps the tightest lower
// and upper bound. Bounds that fail to evaluate or evaluate to NULL are
// skipped — exactly what the interpreter's rangeSide does — leaving a
// wider candidate set for the residual WHERE to filter.
func foldBounds(c *execCtx, los, his []boundCand) (rangeBound, rangeBound) {
	var lo, hi rangeBound
	for _, b := range los {
		v, err := b.val(c)
		if err != nil || v == nil {
			continue
		}
		tightenLo(&lo, v, b.inclusive)
	}
	for _, b := range his {
		v, err := b.val(c)
		if err != nil || v == nil {
			continue
		}
		tightenHi(&hi, v, b.inclusive)
	}
	return lo, hi
}

// scanAll feeds every live row to each, in row-id order.
func (db *DB) scanAll(t *table, each func(Row) error) error {
	db.stats.fullScans.Add(1)
	for id := range t.rows {
		r := t.rowAt(id)
		if r == nil {
			continue
		}
		if err := each(r); err != nil {
			return err
		}
	}
	return nil
}

// runBase drives the plan's base access path. When a bind-time value
// fails to evaluate, it degrades to a full scan so the residual WHERE
// reproduces the interpreter's behavior (including its errors).
func (db *DB) runBase(p *SelectPlan, c *execCtx, each func(Row) error) error {
	a := &p.access
	t := p.base
	switch a.kind {
	case accessPK:
		v, err := a.eq[0](c)
		if err != nil {
			return db.scanAll(t, each)
		}
		db.stats.pointLookups.Add(1)
		if c.stats != nil {
			c.stats.base.probes++
		}
		if id, ok := t.pkMap[v]; ok {
			if r := t.rowAt(id); r != nil {
				return each(r)
			}
		}
		return nil
	case accessUnique:
		v, err := a.eq[0](c)
		if err != nil {
			return db.scanAll(t, each)
		}
		db.stats.pointLookups.Add(1)
		if c.stats != nil {
			c.stats.base.probes++
		}
		if id, ok := a.uniqMap[v]; ok {
			if r := t.rowAt(id); r != nil {
				return each(r)
			}
		}
		return nil
	case accessHash:
		v, err := a.eq[0](c)
		if err != nil {
			return db.scanAll(t, each)
		}
		db.stats.pointLookups.Add(1)
		if c.stats != nil {
			c.stats.base.probes++
		}
		for _, id := range a.hashIdx[v] {
			if r := t.rowAt(id); r != nil {
				if err := each(r); err != nil {
					return err
				}
			}
		}
		return nil
	case accessRange:
		lo, hi := foldBounds(c, a.los, a.his)
		if !lo.set && !hi.set && !a.orderWalk {
			// Every bound evaluated to NULL: the interpreter scans here.
			return db.scanAll(t, each)
		}
		db.stats.rangeScans.Add(1)
		if c.stats != nil {
			c.stats.base.probes++
		}
		start, end := a.ord.bounds(lo, hi)
		if a.reverse {
			return iterOrderedReverse(a.ord.entries, start, end, t, each)
		}
		for _, e := range a.ord.entries[start:end] {
			if r := t.rowAt(e.id); r != nil {
				if err := each(r); err != nil {
					return err
				}
			}
		}
		return nil
	case accessComposite:
		prefix := make([]Value, len(a.eq))
		for i, e := range a.eq {
			v, err := e(c)
			if err != nil {
				return db.scanAll(t, each)
			}
			prefix[i] = v
		}
		var start, end int
		if len(a.los)+len(a.his) > 0 {
			lo, hi := foldBounds(c, a.los, a.his)
			if lo.set || hi.set {
				start, end = a.comp.rangeSegment(prefix, lo, hi)
			} else {
				start, end = a.comp.eqRange(prefix)
			}
		} else {
			start, end = a.comp.eqRange(prefix)
		}
		if len(a.eq) == len(a.comp.cols) {
			db.stats.pointLookups.Add(1)
		} else {
			db.stats.rangeScans.Add(1)
		}
		if c.stats != nil {
			c.stats.base.probes++
		}
		if a.reverse {
			return iterCompositeReverse(a.comp, start, end, t, each)
		}
		for _, e := range a.comp.entries[start:end] {
			if r := t.rowAt(e.id); r != nil {
				if err := each(r); err != nil {
					return err
				}
			}
		}
		return nil
	case accessSnapPK:
		// Snapshot point read: the frozen view carries no pkMap, but an
		// int-keyed table addresses its record store directly by primary
		// key, so one versioned fetch replaces the interpreter's scan.
		v, err := a.eq[0](c)
		if err != nil {
			return db.scanAll(t, each)
		}
		db.stats.pointLookups.Add(1)
		if c.stats != nil {
			c.stats.base.probes++
		}
		iv, ok := v.(int64)
		if !ok || t.fetch == nil {
			return nil
		}
		if r, ok := t.fetch(pkRecID(iv), t.snapSeq); ok {
			return each(r)
		}
		return nil
	}
	return db.scanAll(t, each)
}

// iterOrderedReverse walks entries[start:end] back to front by
// equal-value group, emitting each group in forward (ascending row-id)
// order — the exact row order a stable descending sort produces.
func iterOrderedReverse(entries []ordEntry, start, end int, t *table, each func(Row) error) error {
	i := end
	for i > start {
		j := i
		for j > start && compareNullable(entries[j-1].val, entries[i-1].val) == 0 {
			j--
		}
		for k := j; k < i; k++ {
			if r := t.rowAt(entries[k].id); r != nil {
				if err := each(r); err != nil {
					return err
				}
			}
		}
		i = j
	}
	return nil
}

func iterCompositeReverse(ix *compositeIndex, start, end int, t *table, each func(Row) error) error {
	n := len(ix.cols)
	i := end
	for i > start {
		j := i
		for j > start && compareTuplePrefix(ix.entries[j-1].key, ix.entries[i-1].key, n) == 0 {
			j--
		}
		for k := j; k < i; k++ {
			if r := t.rowAt(ix.entries[k].id); r != nil {
				if err := each(r); err != nil {
					return err
				}
			}
		}
		i = j
	}
	return nil
}

// joinStep recursively extends the current row combination with join
// ji's matches and calls emit at full depth. Production order matches
// the interpreter's breadth-wise join loops exactly (lexicographic in
// join order). When analysis is active it books rows-in and inclusive
// time for the operator before delegating to joinStepRun.
func (db *DB) joinStep(p *SelectPlan, c *execCtx, ji int, emit func() error) error {
	if c.stats == nil {
		return db.joinStepRun(p, c, ji, emit)
	}
	if ji == len(p.joins) {
		return emit()
	}
	jc := &c.stats.joins[ji]
	jc.rowsIn++
	t0 := time.Now()
	err := db.joinStepRun(p, c, ji, emit)
	jc.elapsed += time.Since(t0)
	return err
}

func (db *DB) joinStepRun(p *SelectPlan, c *execCtx, ji int, emit func() error) error {
	if ji == len(p.joins) {
		return emit()
	}
	j := &p.joins[ji]
	fi := ji + 1
	matched := false
	try := func(r Row) error {
		c.rows[fi] = r
		v, err := j.on(c)
		if err != nil {
			return err
		}
		if !truthy(v) {
			return nil
		}
		matched = true
		if c.stats != nil {
			c.stats.joins[ji].rowsOut++
		}
		return db.joinStep(p, c, ji+1, emit)
	}
	if j.kind != jkLoop {
		ov, err := j.outer(c)
		if err != nil {
			return err
		}
		if c.stats != nil {
			c.stats.joins[ji].probes++
		}
		switch j.kind {
		case jkPK:
			if id, ok := j.tbl.pkMap[ov]; ok {
				if r := j.tbl.rowAt(id); r != nil {
					if err := try(r); err != nil {
						return err
					}
				}
			}
		case jkUnique:
			if id, ok := j.uniqMap[ov]; ok {
				if r := j.tbl.rowAt(id); r != nil {
					if err := try(r); err != nil {
						return err
					}
				}
			}
		case jkHash:
			for _, id := range j.hashIdx[ov] {
				if r := j.tbl.rowAt(id); r != nil {
					if err := try(r); err != nil {
						return err
					}
				}
			}
		case jkComposite:
			start, end := j.comp.eqRange([]Value{ov})
			for _, e := range j.comp.entries[start:end] {
				if r := j.tbl.rowAt(e.id); r != nil {
					if err := try(r); err != nil {
						return err
					}
				}
			}
		}
	} else {
		for id := range j.tbl.rows {
			r := j.tbl.rowAt(id)
			if r == nil {
				continue
			}
			if err := try(r); err != nil {
				return err
			}
		}
	}
	if !matched && j.left {
		c.rows[fi] = nil
		if c.stats != nil {
			c.stats.joins[ji].rowsOut++ // null-extended LEFT JOIN row
		}
		if err := db.joinStep(p, c, ji+1, emit); err != nil {
			return err
		}
	}
	c.rows[fi] = nil
	return nil
}

// project builds one output row from the current row combination.
func (p *SelectPlan) project(c *execCtx) ([]Value, error) {
	var row []Value
	for i := range p.proj {
		ps := &p.proj[i]
		if ps.expr != nil {
			v, err := ps.expr(c)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			continue
		}
		for _, fi := range ps.frames {
			tbl := p.frames[fi].tbl
			r := c.rows[fi]
			if r == nil {
				for range tbl.cols {
					row = append(row, nil)
				}
			} else {
				row = append(row, r...)
			}
		}
	}
	return row, nil
}

// sortCompiled stable-sorts the output by the compiled ORDER BY keys,
// with the interpreter's NULL rules (NULLs first ascending). keys is
// parallel to out.Data; for DISTINCT queries it is nil and keys are
// taken from the output columns, as the interpreter does.
func sortCompiled(p *SelectPlan, out *Rows, keys [][]Value) error {
	n := len(out.Data)
	if keys == nil {
		keys = make([][]Value, n)
		for i := 0; i < n; i++ {
			kv := make([]Value, len(p.orderBy))
			for k := range p.orderBy {
				ok := &p.orderBy[k]
				if ok.outCol < 0 {
					return ok.errFallback
				}
				kv[k] = out.Data[i][ok.outCol]
			}
			keys[i] = kv
		}
	}
	return stableSortByKeys(out, keys, p.orderBy)
}

func stableSortByKeys(out *Rows, keys [][]Value, terms []orderKey) error {
	n := len(out.Data)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var sortErr error
	sort.SliceStable(idx, func(x, y int) bool {
		a, b := idx[x], idx[y]
		for k := range terms {
			va, vb := keys[a][k], keys[b][k]
			if va == nil && vb == nil {
				continue
			}
			if va == nil {
				return !terms[k].desc
			}
			if vb == nil {
				return terms[k].desc
			}
			c, err := compareValues(va, vb)
			if err != nil {
				sortErr = err
				return false
			}
			if c == 0 {
				continue
			}
			if terms[k].desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	sorted := make([][]Value, n)
	for i, j := range idx {
		sorted[i] = out.Data[j]
	}
	out.Data = sorted
	return nil
}
