package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openT(t *testing.T, path string) (*Log, []Record, int64) {
	t.Helper()
	l, recs, torn, err := Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	return l, recs, torn
}

func appendSync(t *testing.T, l *Log, payload []byte) {
	t.Helper()
	lsn, err := l.Append(payload)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Sync(lsn); err != nil {
		t.Fatalf("sync: %v", err)
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, recs, torn := openT(t, path)
	if len(recs) != 0 || torn != 0 {
		t.Fatalf("fresh log: recs=%d torn=%d", len(recs), torn)
	}
	want := [][]byte{[]byte("alpha"), []byte(""), bytes.Repeat([]byte{0xAB}, 5000), []byte("omega")}
	for _, p := range want {
		appendSync(t, l, p)
	}
	st := l.Stats()
	if st.Appends != uint64(len(want)) {
		t.Fatalf("appends=%d want %d", st.Appends, len(want))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, recs, torn := openT(t, path)
	defer l2.Close()
	if torn != 0 {
		t.Fatalf("unexpected torn bytes: %d", torn)
	}
	if len(recs) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if !bytes.Equal(r.Payload, want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _, _ := openT(t, path)
	appendSync(t, l, []byte("first"))
	appendSync(t, l, []byte("second"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: tack an incomplete frame on the end.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0x00, 0x00, 0x00, 0x12}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, recs, torn := openT(t, path)
	if torn != 5 {
		t.Fatalf("torn=%d want 5", torn)
	}
	if len(recs) != 2 || string(recs[0].Payload) != "first" || string(recs[1].Payload) != "second" {
		t.Fatalf("bad recovery: %v", recs)
	}
	// The tail must be physically gone: a third append then reopen
	// yields exactly three records.
	appendSync(t, l2, []byte("third"))
	l2.Close()
	l3, recs, torn := openT(t, path)
	defer l3.Close()
	if torn != 0 || len(recs) != 3 || string(recs[2].Payload) != "third" {
		t.Fatalf("after re-append: torn=%d recs=%d", torn, len(recs))
	}
}

func TestWALCorruptFrameStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _, _ := openT(t, path)
	appendSync(t, l, []byte("good"))
	appendSync(t, l, []byte("flipped"))
	appendSync(t, l, []byte("unreachable"))
	l.Close()

	// Flip one payload byte inside the second frame.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := frameHeader + len("good") + frameHeader // first byte of "flipped"
	data[off] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, recs, torn := openT(t, path)
	defer l2.Close()
	if len(recs) != 1 || string(recs[0].Payload) != "good" {
		t.Fatalf("replay should stop before the corrupt frame, got %d records", len(recs))
	}
	if torn == 0 {
		t.Fatal("corrupt tail should have been truncated")
	}
}

func TestWALGroupCommitBatches(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _, _ := openT(t, path)
	defer l.Close()

	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, err := l.Append([]byte(fmt.Sprintf("tx-%03d", i)))
			if err != nil {
				errs <- err
				return
			}
			errs <- l.Sync(lsn)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("commit: %v", err)
		}
	}
	st := l.Stats()
	if st.Appends != n {
		t.Fatalf("appends=%d want %d", st.Appends, n)
	}
	if st.Fsyncs > st.Appends {
		t.Fatalf("fsyncs=%d exceeds commits=%d — group commit not batching", st.Fsyncs, st.Appends)
	}
	// All must be durable and recoverable.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, torn, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 || len(recs) != n {
		t.Fatalf("recovered %d/%d (torn=%d)", len(recs), n, torn)
	}
	seen := map[string]bool{}
	for _, r := range recs {
		seen[string(r.Payload)] = true
	}
	if len(seen) != n {
		t.Fatalf("duplicate or missing payloads: %d distinct", len(seen))
	}
}

func TestWALResetKeepsLSNsMonotonic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _, _ := openT(t, path)
	appendSync(t, l, []byte("before-checkpoint"))
	sizeBefore := l.Size()
	if err := l.Reset(); err != nil {
		t.Fatalf("reset: %v", err)
	}
	fs, err := l.FileSize()
	if err != nil || fs != 0 {
		t.Fatalf("file size after reset = %d (%v), want 0", fs, err)
	}
	lsn, err := l.Append([]byte("after-checkpoint"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn <= sizeBefore {
		t.Fatalf("LSN went backwards across reset: %d <= %d", lsn, sizeBefore)
	}
	if err := l.Sync(lsn); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, recs, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Payload) != "after-checkpoint" {
		t.Fatalf("post-reset log should hold only the new record, got %d", len(recs))
	}
}

func TestWALClosedErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _, _ := openT(t, path)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("x")); err == nil {
		t.Fatal("append after close should fail")
	}
	if err := l.Sync(1 << 40); err == nil {
		t.Fatal("sync past end after close should fail")
	}
}
