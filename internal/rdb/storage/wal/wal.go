// Package wal implements the write-ahead log of the durable storage
// engine: an append-only file of CRC-framed records with group commit.
//
// Framing. Each record is [length u32][crc32c u32][payload]; length and
// CRC are little-endian and the CRC covers the payload only. A record
// is committed exactly when its full frame is on stable storage, so a
// crash mid-append leaves a torn tail that recovery detects (short
// frame or CRC mismatch) and truncates. Callers put one transaction
// per record, which makes transaction atomicity a framing property: no
// separate begin/commit markers exist to get out of sync.
//
// Group commit. Append buffers a frame in memory and returns its LSN
// (the logical end offset); Sync(lsn) blocks until that LSN is on
// disk. The first syncer becomes the leader: it writes the whole
// buffer and issues one fsync while later committers queue behind the
// condition variable, so n concurrent commits cost one disk flush, not
// n. Appends are ordered by the caller (the database's write lock),
// which keeps the on-disk record order equal to commit order — replay
// depends on that.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

const frameHeader = 8 // u32 length + u32 crc

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	// Appends is the number of records appended (committed transactions).
	Appends uint64
	// Fsyncs counts disk flushes; Appends/Fsyncs is the group-commit
	// batching factor.
	Fsyncs uint64
	// Batches counts leader write rounds (== fsyncs that covered at
	// least one record).
	Batches uint64
	// BatchedRecords sums the records covered per leader round, so
	// BatchedRecords/Batches is the mean group size.
	BatchedRecords uint64
	// Bytes is the total frame bytes appended since open.
	Bytes uint64
	// Size is the current byte length of the log (buffered + durable).
	Size int64
}

// Log is an append-only record log with group commit. Append must be
// externally serialized (the database write lock); Sync is safe for
// any number of concurrent callers.
type Log struct {
	mu      sync.Mutex
	cond    *sync.Cond
	f       *os.File
	buf     []byte // frames appended but not yet written
	bufRecs uint64 // records in buf
	end     int64  // LSN after the last appended frame
	durable int64  // LSN known to be on stable storage
	syncing bool   // a leader is writing/flushing
	err     error  // sticky failure (fsync error, closed)

	appends, fsyncs, batches, batchedRecs, bytes atomic.Uint64
}

// Record is one recovered payload with the sequence position it held.
type Record struct {
	Payload []byte
}

// Open opens (creating if absent) the log at path and scans it,
// returning the valid records and a Log positioned to append after
// them. A torn tail — a short frame or one whose CRC does not match —
// ends the scan and is truncated away. The number of truncated tail
// bytes is returned for observability.
func Open(path string) (*Log, []Record, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	recs, valid, err := scan(f)
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	torn := fi.Size() - valid
	if torn > 0 {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	l := &Log{f: f, end: valid, durable: valid}
	l.cond = sync.NewCond(&l.mu)
	return l, recs, torn, nil
}

// scan reads frames from the start of f, stopping at the first frame
// that is short or fails its checksum. It returns the records and the
// byte offset of the end of the last valid frame.
func scan(f *os.File) ([]Record, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	var recs []Record
	var off int64
	hdr := make([]byte, frameHeader)
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			return recs, off, nil // clean EOF or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if n > 1<<30 { // implausible length: treat as torn
			return recs, off, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return recs, off, nil // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return recs, off, nil // corrupt or torn frame
		}
		recs = append(recs, Record{Payload: payload})
		off += int64(frameHeader) + int64(n)
	}
}

// Append buffers one record and returns the LSN to pass to Sync. The
// caller must serialize Append calls in commit order.
func (l *Log) Append(payload []byte) (int64, error) {
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeader:], payload)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	l.buf = append(l.buf, frame...)
	l.bufRecs++
	l.end += int64(len(frame))
	l.appends.Add(1)
	l.bytes.Add(uint64(len(frame)))
	return l.end, nil
}

// Sync blocks until every record at or below lsn is on stable storage.
// Concurrent callers share flushes: one becomes the leader and writes
// the whole buffer with a single fsync while the rest wait.
func (l *Log) Sync(lsn int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.err != nil {
			return l.err
		}
		if l.durable >= lsn {
			return nil
		}
		if l.syncing {
			l.cond.Wait()
			continue
		}
		// Become the leader: take the buffer, write and flush it with
		// the lock released, then publish the new durable LSN.
		l.syncing = true
		buf, recs, end := l.buf, l.bufRecs, l.end
		l.buf, l.bufRecs = nil, 0
		l.mu.Unlock()

		err := l.writeAndFlush(buf)

		l.mu.Lock()
		l.syncing = false
		if err != nil {
			l.err = err // a lost write makes every later commit unsafe
		} else {
			l.durable = end
			l.fsyncs.Add(1)
			if recs > 0 {
				l.batches.Add(1)
				l.batchedRecs.Add(recs)
			}
		}
		l.cond.Broadcast()
	}
}

func (l *Log) writeAndFlush(buf []byte) error {
	if len(buf) > 0 {
		if _, err := l.f.Write(buf); err != nil {
			return fmt.Errorf("wal: append: %w", err)
		}
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}

// Size returns the current logical length of the log in bytes,
// including buffered-but-unflushed frames.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.end
}

// Reset truncates the log to empty after a checkpoint has made its
// records redundant. Buffered frames are flushed first so no pending
// Sync waiter is left referencing discarded bytes; LSNs keep growing
// monotonically across the reset so outstanding Sync(lsn) calls with
// lsn at or below the reset point return immediately.
func (l *Log) Reset() error {
	// Flush everything buffered (self-sync if no leader is active).
	l.mu.Lock()
	end := l.end
	l.mu.Unlock()
	if err := l.Sync(end); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: reset fsync: %w", err)
	}
	// Keep the LSN space monotonic: durable tracks end, the file is
	// simply shorter than the logical offset from here on. Size-based
	// checkpoint policies use FileSize below.
	l.durable = l.end
	return nil
}

// FileSize returns the physical byte length of the log file — the
// growth signal for checkpoint policies (LSNs are monotonic across
// Reset, so Size keeps growing while FileSize returns to zero).
func (l *Log) FileSize() (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	fi, err := l.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size() + int64(len(l.buf)), nil
}

// Stats returns the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	size := l.end
	l.mu.Unlock()
	return Stats{
		Appends:        l.appends.Load(),
		Fsyncs:         l.fsyncs.Load(),
		Batches:        l.batches.Load(),
		BatchedRecords: l.batchedRecs.Load(),
		Bytes:          l.bytes.Load(),
		Size:           size,
	}
}

// Close flushes buffered records and closes the file.
func (l *Log) Close() error {
	l.mu.Lock()
	end := l.end
	closed := l.err != nil
	l.mu.Unlock()
	if !closed {
		if err := l.Sync(end); err != nil {
			l.f.Close()
			return err
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err == nil {
		l.err = ErrClosed
		l.cond.Broadcast()
	}
	return l.f.Close()
}
