package pager

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// freshStore checkpoints an empty image and opens it.
func freshStore(t *testing.T, poolPages int) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pages.db")
	if err := WriteCheckpoint(path, 0, nil, func(emit func(Key, []byte) error) error { return nil }); err != nil {
		t.Fatalf("create: %v", err)
	}
	s, err := Open(path, poolPages)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, path
}

func val(i int, size int) []byte {
	b := bytes.Repeat([]byte{byte(i), byte(i >> 8)}, (size+1)/2)
	return append(b[:size:size], []byte(fmt.Sprintf("|rec=%d", i))...)
}

func TestBTreePutGetScan(t *testing.T) {
	s, _ := freshStore(t, 0)
	tree := s.Tree()

	const n = 5000
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(n)
	want := make(map[uint64][]byte, n)
	for _, i := range perm {
		size := 1 + (i*37)%200
		if i%101 == 0 {
			size = maxInline + 1 + i // force overflow chains
		}
		v := val(i, size)
		want[uint64(i)] = v
		if err := tree.Put(MakeKey(3, uint64(i)), v); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// Point lookups, including across table boundaries.
	for i := 0; i < n; i += 97 {
		v, ok, err := tree.Get(MakeKey(3, uint64(i)))
		if err != nil || !ok {
			t.Fatalf("get %d: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(v, want[uint64(i)]) {
			t.Fatalf("get %d: value mismatch (%d vs %d bytes)", i, len(v), len(want[uint64(i)]))
		}
	}
	if _, ok, _ := tree.Get(MakeKey(2, 5)); ok {
		t.Fatal("lookup in absent table should miss")
	}
	if _, ok, _ := tree.Get(MakeKey(3, n+1)); ok {
		t.Fatal("absent record should miss")
	}
	// Ordered scan covers everything exactly once, ascending.
	lo, hi := TableBounds(3)
	got := 0
	last := int64(-1)
	err := tree.Scan(lo, hi, func(k Key, v []byte) error {
		if int64(k.RecID()) <= last {
			return fmt.Errorf("scan out of order at %d", k.RecID())
		}
		last = int64(k.RecID())
		if !bytes.Equal(v, want[k.RecID()]) {
			return fmt.Errorf("scan value mismatch at %d", k.RecID())
		}
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("scan saw %d records, want %d", got, n)
	}
}

func TestBTreeUpdateAndDelete(t *testing.T) {
	s, _ := freshStore(t, 0)
	tree := s.Tree()
	const n = 1200
	for i := 0; i < n; i++ {
		if err := tree.Put(MakeKey(1, uint64(i)), val(i, 50)); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite every third with a larger value (some spill to overflow).
	for i := 0; i < n; i += 3 {
		if err := tree.Put(MakeKey(1, uint64(i)), val(i, 900+i)); err != nil {
			t.Fatal(err)
		}
	}
	// Delete every fifth.
	for i := 0; i < n; i += 5 {
		ok, err := tree.Delete(MakeKey(1, uint64(i)))
		if err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", i, ok, err)
		}
	}
	if ok, _ := tree.Delete(MakeKey(1, 5)); ok {
		t.Fatal("double delete should report absent")
	}
	for i := 0; i < n; i++ {
		v, ok, err := tree.Get(MakeKey(1, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case i%5 == 0:
			if ok {
				t.Fatalf("deleted %d still present", i)
			}
		case i%3 == 0:
			if !ok || len(v) < 900 {
				t.Fatalf("updated %d: ok=%v len=%d", i, ok, len(v))
			}
		default:
			if !ok || !bytes.Equal(v, val(i, 50)) {
				t.Fatalf("record %d: ok=%v", i, ok)
			}
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	s, path := freshStore(t, 0)
	tree := s.Tree()
	const n = 3000
	for i := 0; i < n; i++ {
		size := 40 + i%300
		if i%77 == 0 {
			size = maxInline * 3
		}
		if err := tree.Put(MakeKey(9, uint64(i)), val(i, size)); err != nil {
			t.Fatal(err)
		}
	}
	catalog := []byte("schema-blob-" + string(bytes.Repeat([]byte{'x'}, 9000)))
	err := WriteCheckpoint(path, 42, catalog, func(emit func(Key, []byte) error) error {
		return tree.Scan(MinKey, MaxKey, emit)
	})
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	s.Close()

	s2, err := Open(path, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if s2.Meta().CheckpointSeq != 42 {
		t.Fatalf("seq=%d want 42", s2.Meta().CheckpointSeq)
	}
	cat, err := s2.Catalog()
	if err != nil || !bytes.Equal(cat, catalog) {
		t.Fatalf("catalog round trip failed: %v (%d vs %d bytes)", err, len(cat), len(catalog))
	}
	got := 0
	err = s2.Tree().Scan(MinKey, MaxKey, func(k Key, v []byte) error {
		want := val(int(k.RecID()), 40+int(k.RecID())%300)
		if k.RecID()%77 == 0 {
			want = val(int(k.RecID()), maxInline*3)
		}
		if !bytes.Equal(v, want) {
			return fmt.Errorf("record %d mismatch after checkpoint", k.RecID())
		}
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("checkpoint image holds %d records, want %d", got, n)
	}
	// The rewritten image must also accept further mutation.
	if err := s2.Tree().Put(MakeKey(9, n+1), []byte("post-checkpoint")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s2.Tree().Get(MakeKey(9, n+1))
	if err != nil || !ok || string(v) != "post-checkpoint" {
		t.Fatalf("post-checkpoint insert: %q ok=%v err=%v", v, ok, err)
	}
}

func TestCheckpointAtomicReplace(t *testing.T) {
	s, path := freshStore(t, 0)
	tree := s.Tree()
	for i := 0; i < 100; i++ {
		if err := tree.Put(MakeKey(1, uint64(i)), val(i, 60)); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteCheckpoint(path, 7, []byte("cat"), func(emit func(Key, []byte) error) error {
		return tree.Scan(MinKey, MaxKey, emit)
	}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp file left behind: %v", err)
	}
	s2, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	count := 0
	s2.Tree().Scan(MinKey, MaxKey, func(Key, []byte) error { count++; return nil })
	if count != 100 {
		t.Fatalf("replaced image has %d records", count)
	}
}

func TestPoolEvictionAndStats(t *testing.T) {
	s, path := freshStore(t, 0)
	tree := s.Tree()
	const n = 20000 // enough pages to exceed a tiny pool
	for i := 0; i < n; i++ {
		if err := tree.Put(MakeKey(1, uint64(i)), val(i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteCheckpoint(path, 1, nil, func(emit func(Key, []byte) error) error {
		return tree.Scan(MinKey, MaxKey, emit)
	}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(path, 16) // 16-page pool vs ~600 leaf pages
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 0; i < n; i += 500 {
		if _, ok, err := s2.Tree().Get(MakeKey(1, uint64(i))); !ok || err != nil {
			t.Fatalf("get %d through small pool: ok=%v err=%v", i, ok, err)
		}
	}
	st := s2.PoolStats()
	if st.Evictions == 0 {
		t.Fatalf("expected evictions with a 16-page pool: %+v", st)
	}
	if st.Resident > 16+4 { // pinned/dirty slack
		t.Fatalf("pool grew past cap: %+v", st)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected both hits and misses: %+v", st)
	}
	// Repeated hot lookups should now be mostly hits.
	before := s2.PoolStats()
	for i := 0; i < 50; i++ {
		s2.Tree().Get(MakeKey(1, 42))
	}
	after := s2.PoolStats()
	if after.Hits-before.Hits < 50 {
		t.Fatalf("hot lookup not served from pool: %+v -> %+v", before, after)
	}
}

func TestMetaCorruptionDetected(t *testing.T) {
	_, path := freshStore(t, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xFF // inside checkpointSeq, covered by the meta CRC
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, 0); err == nil {
		t.Fatal("corrupt meta page should fail to open")
	}
}

func TestKeyOrdering(t *testing.T) {
	ks := []Key{
		MakeKey(0, 0), MakeKey(0, 1), MakeKey(0, ^uint64(0)),
		MakeKey(1, 0), MakeKey(1, 5), MakeKey(2, 0),
	}
	for i := 1; i < len(ks); i++ {
		if !ks[i-1].Less(ks[i]) {
			t.Fatalf("key %d not less than key %d", i-1, i)
		}
	}
	k := MakeKey(7, 1234567890123)
	if k.TableID() != 7 || k.RecID() != 1234567890123 {
		t.Fatalf("round trip: table=%d rec=%d", k.TableID(), k.RecID())
	}
}
