package pager

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// B-tree page formats.
//
// Leaf (slotted page):
//	[0]    type = pageLeaf
//	[2:4]  nslots u16
//	[4:6]  cellTop u16 — lowest byte offset occupied by a cell
//	[6:8]  frag u16 — bytes freed by deletes, reclaimable by compaction
//	[8:]   slot directory, u16 cell offsets sorted by key
//	cells grow downward from the end of the page
//
// Leaf cell: key[12] ++ flag u8, then either
//	flag 0 (inline):   vlen u16 ++ value
//	flag 1 (overflow): total u32 ++ head PageID u32
//
// Interior (fixed arrays — fanout is capped so both fit):
//	[0]    type = pageInterior
//	[2:4]  nkeys u16
//	[8:]                children, u32 × (maxFanout+1)
//	[8+4(maxFanout+1):] separator keys, 12 B × maxFanout
//
// Child i holds keys in [key(i-1), key(i)): a separator is the first
// key of the subtree to its right.
//
// Overflow: [0] type ++ [2:4] len u16 ++ [4:8] next PageID ++ data.

const (
	keySize   = 12
	leafHdr   = 8
	maxInline = 1024
	maxFanout = 200
	intChild0 = 8
	intKey0   = intChild0 + 4*(maxFanout+1)
	ovfHdr    = 8
	ovfCap    = PageSize - ovfHdr
)

// Key is the fixed B-tree key: tableID ++ recID, both big-endian so
// byte order equals (table, record) order.
type Key [keySize]byte

// MakeKey builds the key for record rec of table t.
func MakeKey(t uint32, rec uint64) Key {
	var k Key
	binary.BigEndian.PutUint32(k[0:4], t)
	binary.BigEndian.PutUint64(k[4:12], rec)
	return k
}

// TableID extracts the table component.
func (k Key) TableID() uint32 { return binary.BigEndian.Uint32(k[0:4]) }

// RecID extracts the record component.
func (k Key) RecID() uint64 { return binary.BigEndian.Uint64(k[4:12]) }

// Less orders keys bytewise, i.e. by (table, record).
func (k Key) Less(o Key) bool { return bytes.Compare(k[:], o[:]) < 0 }

// MinKey and MaxKey bound the whole key space for full scans.
var (
	MinKey = Key{}
	MaxKey = Key{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
)

// TableBounds returns the inclusive key range holding every record of
// table t.
func TableBounds(t uint32) (Key, Key) {
	return MakeKey(t, 0), MakeKey(t, ^uint64(0))
}

// BTree is a disk-backed B-tree mounted on a buffer pool. Mutating
// methods must be externally serialized with every other method (the
// database write lock). Mutations mark the whole descent path dirty,
// preserving the checkpoint invariant that any page pointing at a
// dirty page is itself dirty.
type BTree struct {
	pool *Pool
	root PageID
	// free, when set, retires a dead page slot (freed overflow chains)
	// through the store's free list; otherwise the frame is dropped.
	free func(PageID)
}

// Root returns the current root page (it migrates as the tree splits).
func (t *BTree) Root() PageID { return t.root }

// --- leaf accessors ----------------------------------------------------

func leafN(d []byte) int       { return int(binary.LittleEndian.Uint16(d[2:4])) }
func setLeafN(d []byte, n int) { binary.LittleEndian.PutUint16(d[2:4], uint16(n)) }
func cellTop(d []byte) int     { return int(binary.LittleEndian.Uint16(d[4:6])) }
func setCellTop(d []byte, v int) {
	binary.LittleEndian.PutUint16(d[4:6], uint16(v))
}
func leafFrag(d []byte) int { return int(binary.LittleEndian.Uint16(d[6:8])) }
func setLeafFrag(d []byte, v int) {
	binary.LittleEndian.PutUint16(d[6:8], uint16(v))
}
func slotOff(d []byte, i int) int { return int(binary.LittleEndian.Uint16(d[leafHdr+2*i:])) }
func setSlotOff(d []byte, i, off int) {
	binary.LittleEndian.PutUint16(d[leafHdr+2*i:], uint16(off))
}

func cellKey(d []byte, off int) Key {
	var k Key
	copy(k[:], d[off:off+keySize])
	return k
}

func cellSize(d []byte, off int) int {
	if d[off+keySize] == 0 {
		return keySize + 3 + int(binary.LittleEndian.Uint16(d[off+keySize+1:]))
	}
	return keySize + 9
}

func leafFree(d []byte) int { return cellTop(d) - (leafHdr + 2*leafN(d)) }

// leafSearch binary-searches the slot directory; returns the slot
// index holding key (found=true) or the insertion position.
func leafSearch(d []byte, k Key) (int, bool) {
	lo, hi := 0, leafN(d)
	for lo < hi {
		mid := (lo + hi) / 2
		c := bytes.Compare(d[slotOff(d, mid):slotOff(d, mid)+keySize], k[:])
		switch {
		case c == 0:
			return mid, true
		case c < 0:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return lo, false
}

// packLeaf rewrites d as a fully compacted leaf holding cells (already
// in key order).
func packLeaf(d []byte, cells [][]byte) {
	for i := range d[:leafHdr] {
		d[i] = 0
	}
	d[0] = pageLeaf
	setLeafN(d, len(cells))
	off := PageSize
	for i := len(cells) - 1; i >= 0; i-- {
		off -= len(cells[i])
		copy(d[off:], cells[i])
		setSlotOff(d, i, off)
	}
	setCellTop(d, off)
	setLeafFrag(d, 0)
}

// gatherCells copies every cell out of d in slot order.
func gatherCells(d []byte) [][]byte {
	n := leafN(d)
	cells := make([][]byte, n)
	for i := 0; i < n; i++ {
		off := slotOff(d, i)
		sz := cellSize(d, off)
		cells[i] = append([]byte(nil), d[off:off+sz]...)
	}
	return cells
}

// insertLeafCell places cell at slot idx; the caller has verified
// leafFree(d) >= len(cell)+2.
func insertLeafCell(d []byte, idx int, cell []byte) {
	n := leafN(d)
	top := cellTop(d) - len(cell)
	copy(d[top:], cell)
	copy(d[leafHdr+2*(idx+1):leafHdr+2*(n+1)], d[leafHdr+2*idx:leafHdr+2*n])
	setSlotOff(d, idx, top)
	setLeafN(d, n+1)
	setCellTop(d, top)
}

// removeLeafCell drops slot idx, leaving the cell bytes as
// fragmentation to reclaim on the next compaction.
func removeLeafCell(d []byte, idx int) {
	n := leafN(d)
	off := slotOff(d, idx)
	setLeafFrag(d, leafFrag(d)+cellSize(d, off))
	copy(d[leafHdr+2*idx:leafHdr+2*(n-1)], d[leafHdr+2*(idx+1):leafHdr+2*n])
	setLeafN(d, n-1)
}

// --- interior accessors ------------------------------------------------

func intN(d []byte) int       { return int(binary.LittleEndian.Uint16(d[2:4])) }
func setIntN(d []byte, n int) { binary.LittleEndian.PutUint16(d[2:4], uint16(n)) }
func getChild(d []byte, i int) PageID {
	return PageID(binary.LittleEndian.Uint32(d[intChild0+4*i:]))
}
func setChild(d []byte, i int, id PageID) {
	binary.LittleEndian.PutUint32(d[intChild0+4*i:], uint32(id))
}
func getIntKey(d []byte, i int) Key {
	var k Key
	copy(k[:], d[intKey0+keySize*i:])
	return k
}
func setIntKey(d []byte, i int, k Key) { copy(d[intKey0+keySize*i:], k[:]) }

// intSearch returns the child index to descend into for key k: the
// first separator greater than k.
func intSearch(d []byte, k Key) int {
	lo, hi := 0, intN(d)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(d[intKey0+keySize*mid:intKey0+keySize*mid+keySize], k[:]) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// --- tree operations ---------------------------------------------------

type splitRes struct {
	split bool
	key   Key
	right PageID
}

// Put inserts or replaces the value for k.
func (t *BTree) Put(k Key, v []byte) error {
	sp, err := t.put(t.root, k, v)
	if err != nil {
		return err
	}
	if sp.split {
		pg := t.pool.Alloc()
		d := pg.Data()
		d[0] = pageInterior
		setIntN(d, 1)
		setChild(d, 0, t.root)
		setChild(d, 1, sp.right)
		setIntKey(d, 0, sp.key)
		t.root = pg.ID()
		pg.Release()
	}
	return nil
}

func (t *BTree) put(id PageID, k Key, v []byte) (splitRes, error) {
	pg, err := t.pool.Get(id)
	if err != nil {
		return splitRes{}, err
	}
	defer pg.Release()
	d := pg.Data()
	switch d[0] {
	case pageLeaf:
		return t.leafPut(pg, k, v)
	case pageInterior:
		i := intSearch(d, k)
		sp, err := t.put(getChild(d, i), k, v)
		if err != nil {
			return splitRes{}, err
		}
		// Dirty-path marking: the subtree below changed, so this page
		// must be rewritten by the next checkpoint even when no
		// separator moves (its child pointer may be relocated).
		pg.MarkDirty()
		if !sp.split {
			return splitRes{}, nil
		}
		n := intN(d)
		copy(d[intKey0+keySize*(i+1):intKey0+keySize*(n+1)], d[intKey0+keySize*i:intKey0+keySize*n])
		copy(d[intChild0+4*(i+2):intChild0+4*(n+2)], d[intChild0+4*(i+1):intChild0+4*(n+1)])
		setIntKey(d, i, sp.key)
		setChild(d, i+1, sp.right)
		n++
		setIntN(d, n)
		pg.MarkDirty()
		if n < maxFanout {
			return splitRes{}, nil
		}
		// Split: push the median separator up; its two neighbouring
		// child runs become the split halves.
		mid := n / 2
		sep := getIntKey(d, mid)
		rp := t.pool.Alloc()
		rd := rp.Data()
		rd[0] = pageInterior
		rn := n - mid - 1
		setIntN(rd, rn)
		for j := 0; j < rn; j++ {
			setIntKey(rd, j, getIntKey(d, mid+1+j))
		}
		for j := 0; j <= rn; j++ {
			setChild(rd, j, getChild(d, mid+1+j))
		}
		setIntN(d, mid)
		rightID := rp.ID()
		rp.Release()
		return splitRes{split: true, key: sep, right: rightID}, nil
	default:
		return splitRes{}, fmt.Errorf("pager: page %d: unexpected type %d in tree descent", id, d[0])
	}
}

func (t *BTree) leafPut(pg *Page, k Key, v []byte) (splitRes, error) {
	d := pg.Data()
	idx, found := leafSearch(d, k)
	if found {
		t.freeOverflow(d, slotOff(d, idx))
		removeLeafCell(d, idx)
	}
	cell, err := t.makeCell(k, v)
	if err != nil {
		return splitRes{}, err
	}
	need := len(cell) + 2
	if leafFree(d) < need && leafFree(d)+leafFrag(d) >= need {
		packLeaf(d, gatherCells(d)) // in-place compaction reclaims frag
	}
	if leafFree(d) >= need {
		insertLeafCell(d, idx, cell)
		pg.MarkDirty()
		return splitRes{}, nil
	}
	// Split: redistribute all cells (plus the new one) by bytes.
	cells := gatherCells(d)
	cells = append(cells, nil)
	copy(cells[idx+1:], cells[idx:])
	cells[idx] = cell
	total := 0
	for _, c := range cells {
		total += len(c) + 2
	}
	m, acc := 0, 0
	for acc < total/2 && m < len(cells)-1 {
		acc += len(cells[m]) + 2
		m++
	}
	if m == 0 {
		m = 1
	}
	packLeaf(d, cells[:m])
	pg.MarkDirty()
	rp := t.pool.Alloc()
	packLeaf(rp.Data(), cells[m:])
	var sep Key
	copy(sep[:], cells[m][:keySize])
	rightID := rp.ID()
	rp.Release()
	return splitRes{split: true, key: sep, right: rightID}, nil
}

// makeCell encodes k/v as a leaf cell, spilling big values into a
// freshly allocated overflow chain.
func (t *BTree) makeCell(k Key, v []byte) ([]byte, error) {
	if len(v) <= maxInline {
		cell := make([]byte, keySize+3+len(v))
		copy(cell, k[:])
		cell[keySize] = 0
		binary.LittleEndian.PutUint16(cell[keySize+1:], uint16(len(v)))
		copy(cell[keySize+3:], v)
		return cell, nil
	}
	// Allocate the chain first so each page can point at the next.
	nchunks := (len(v) + ovfCap - 1) / ovfCap
	pages := make([]*Page, nchunks)
	for i := range pages {
		pages[i] = t.pool.Alloc()
	}
	for i, off := 0, 0; i < nchunks; i++ {
		n := len(v) - off
		if n > ovfCap {
			n = ovfCap
		}
		d := pages[i].Data()
		d[0] = pageOverflow
		binary.LittleEndian.PutUint16(d[2:4], uint16(n))
		if i+1 < nchunks {
			binary.LittleEndian.PutUint32(d[4:8], uint32(pages[i+1].ID()))
		}
		copy(d[ovfHdr:], v[off:off+n])
		off += n
	}
	head := pages[0].ID()
	for _, p := range pages {
		p.Release()
	}
	cell := make([]byte, keySize+9)
	copy(cell, k[:])
	cell[keySize] = 1
	binary.LittleEndian.PutUint32(cell[keySize+1:], uint32(len(v)))
	binary.LittleEndian.PutUint32(cell[keySize+5:], uint32(head))
	return cell, nil
}

// freeOverflow retires the overflow chain of the cell at off, if any,
// returning each chain page to the store's free list.
func (t *BTree) freeOverflow(d []byte, off int) {
	if d[off+keySize] != 1 {
		return
	}
	id := PageID(binary.LittleEndian.Uint32(d[off+keySize+5:]))
	for id != 0 {
		pg, err := t.pool.Get(id)
		if err != nil {
			return // unreadable chain page; leaks until compaction
		}
		next := PageID(binary.LittleEndian.Uint32(pg.Data()[4:8]))
		pg.Release()
		if t.free != nil {
			t.free(id)
		} else {
			t.pool.Forget(id)
		}
		id = next
	}
}

// cellValue materializes the value of the cell at off, following the
// overflow chain when present. The returned slice is a copy.
func (t *BTree) cellValue(d []byte, off int) ([]byte, error) {
	if d[off+keySize] == 0 {
		n := int(binary.LittleEndian.Uint16(d[off+keySize+1:]))
		return append([]byte(nil), d[off+keySize+3:off+keySize+3+n]...), nil
	}
	head := PageID(binary.LittleEndian.Uint32(d[off+keySize+5:]))
	return readChain(t.pool, head)
}

// Get returns the value stored under k.
func (t *BTree) Get(k Key) ([]byte, bool, error) {
	id := t.root
	for {
		pg, err := t.pool.Get(id)
		if err != nil {
			return nil, false, err
		}
		d := pg.Data()
		switch d[0] {
		case pageInterior:
			id = getChild(d, intSearch(d, k))
			pg.Release()
		case pageLeaf:
			idx, found := leafSearch(d, k)
			if !found {
				pg.Release()
				return nil, false, nil
			}
			v, err := t.cellValue(d, slotOff(d, idx))
			pg.Release()
			return v, true, err
		default:
			pg.Release()
			return nil, false, fmt.Errorf("pager: page %d: unexpected type %d", id, d[0])
		}
	}
}

// Delete removes k, reporting whether it was present. Underfull
// leaves are left in place; checkpoints rewrite only dirty pages. The
// whole descent path is pinned so that, on a hit, every page above
// the mutated leaf can be marked dirty (dirty-path invariant).
func (t *BTree) Delete(k Key) (bool, error) {
	var path []*Page
	release := func() {
		for _, p := range path {
			p.Release()
		}
	}
	id := t.root
	for {
		pg, err := t.pool.Get(id)
		if err != nil {
			release()
			return false, err
		}
		path = append(path, pg)
		d := pg.Data()
		switch d[0] {
		case pageInterior:
			id = getChild(d, intSearch(d, k))
		case pageLeaf:
			idx, found := leafSearch(d, k)
			if found {
				t.freeOverflow(d, slotOff(d, idx))
				removeLeafCell(d, idx)
				for _, p := range path {
					p.MarkDirty()
				}
			}
			release()
			return found, nil
		default:
			release()
			return false, fmt.Errorf("pager: page %d: unexpected type %d", id, d[0])
		}
	}
}

// Scan calls fn for every key in [lo, hi] in ascending order. The
// value slice passed to fn is only valid during the call.
func (t *BTree) Scan(lo, hi Key, fn func(k Key, v []byte) error) error {
	return t.scan(t.root, lo, hi, fn)
}

func (t *BTree) scan(id PageID, lo, hi Key, fn func(k Key, v []byte) error) error {
	pg, err := t.pool.Get(id)
	if err != nil {
		return err
	}
	defer pg.Release()
	d := pg.Data()
	switch d[0] {
	case pageLeaf:
		n := leafN(d)
		for i := 0; i < n; i++ {
			off := slotOff(d, i)
			k := cellKey(d, off)
			if k.Less(lo) {
				continue
			}
			if hi.Less(k) {
				return nil
			}
			v, err := t.cellValue(d, off)
			if err != nil {
				return err
			}
			if err := fn(k, v); err != nil {
				return err
			}
		}
		return nil
	case pageInterior:
		n := intN(d)
		for i := 0; i <= n; i++ {
			if i > 0 && hi.Less(getIntKey(d, i-1)) {
				return nil // child i's keys are all > hi
			}
			if i < n {
				// child i holds keys < key(i); skip it when they are
				// all below lo
				ki := getIntKey(d, i)
				if ki.Less(lo) || ki == lo {
					continue
				}
			}
			if err := t.scan(getChild(d, i), lo, hi, fn); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("pager: page %d: unexpected type %d", id, d[0])
	}
}

// ScanKeys calls fn for every key in [lo, hi] in ascending order
// without materializing values — overflow chains are never touched,
// so a key sweep over a large table stays proportional to the leaf
// count, not the data volume.
func (t *BTree) ScanKeys(lo, hi Key, fn func(k Key) error) error {
	return t.scanKeys(t.root, lo, hi, fn)
}

func (t *BTree) scanKeys(id PageID, lo, hi Key, fn func(k Key) error) error {
	pg, err := t.pool.Get(id)
	if err != nil {
		return err
	}
	defer pg.Release()
	d := pg.Data()
	switch d[0] {
	case pageLeaf:
		n := leafN(d)
		for i := 0; i < n; i++ {
			k := cellKey(d, slotOff(d, i))
			if k.Less(lo) {
				continue
			}
			if hi.Less(k) {
				return nil
			}
			if err := fn(k); err != nil {
				return err
			}
		}
		return nil
	case pageInterior:
		n := intN(d)
		for i := 0; i <= n; i++ {
			if i > 0 && hi.Less(getIntKey(d, i-1)) {
				return nil
			}
			if i < n {
				ki := getIntKey(d, i)
				if ki.Less(lo) || ki == lo {
					continue
				}
			}
			if err := t.scanKeys(getChild(d, i), lo, hi, fn); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("pager: page %d: unexpected type %d", id, d[0])
	}
}

// remapPage rewrites every outgoing page reference of d (interior
// child pointers, leaf overflow heads, overflow next links) through
// remap. Used by incremental checkpoints after relocating dirty pages.
func remapPage(d []byte, remap map[PageID]PageID) {
	if len(remap) == 0 {
		return
	}
	switch d[0] {
	case pageInterior:
		n := intN(d)
		for i := 0; i <= n; i++ {
			if next, ok := remap[getChild(d, i)]; ok {
				setChild(d, i, next)
			}
		}
	case pageLeaf:
		n := leafN(d)
		for i := 0; i < n; i++ {
			off := slotOff(d, i)
			if d[off+keySize] != 1 {
				continue
			}
			head := PageID(binary.LittleEndian.Uint32(d[off+keySize+5:]))
			if next, ok := remap[head]; ok {
				binary.LittleEndian.PutUint32(d[off+keySize+5:], uint32(next))
			}
		}
	case pageOverflow:
		next := PageID(binary.LittleEndian.Uint32(d[4:8]))
		if nn, ok := remap[next]; ok {
			binary.LittleEndian.PutUint32(d[4:8], uint32(nn))
		}
	}
}
