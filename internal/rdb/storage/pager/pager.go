// Package pager implements the page store of the durable engine: a
// single file of fixed 4 KiB pages holding a B-tree keyed by
// (tableID, recID), fronted by an LRU buffer pool.
//
// Durability model (no-steal, incremental copy-on-write checkpoints).
// Mutations dirty pages in the buffer pool only; dirty frames are
// never evicted or written back between checkpoints, so the on-disk
// image always is a complete, internally consistent checkpoint and
// everything since it replays from the WAL. A checkpoint relocates the
// dirty pages to free or fresh page slots (never overwriting a page
// the committed image references), rewrites intra-tree pointers to the
// relocated copies, fsyncs, and then publishes the new root/catalog/
// sequence by writing the inactive one of two alternating meta slots
// (pages 0 and 1) — the slot with the highest valid generation wins at
// open, so a torn meta write simply falls back to the previous
// checkpoint. Checkpoint I/O is proportional to the dirty set, not the
// database size. Page slots vacated by a checkpoint become allocatable
// one checkpoint later (their content backs the previous image until
// the next meta flip makes it unreachable); the free list is held in
// memory only, so a reopen temporarily forgets the holes and the file
// stays at its high-water mark until later checkpoints re-punch them.
package pager

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// PageSize is the fixed page length. Every offset in the file is a
// multiple of it; PageID n lives at byte n*PageSize.
const PageSize = 4096

const (
	fileMagic   = 0x574D4C50 // "WMLP"
	fileVersion = 2

	pageLeaf     = 1
	pageInterior = 2
	pageOverflow = 3
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// PageID identifies a page by position; 0 and 1 are the meta slots.
type PageID uint32

// Meta is a decoded meta slot: the recovery anchor for the file.
type Meta struct {
	// Gen increases by one per checkpoint; of the two slots, the valid
	// one with the higher generation is authoritative.
	Gen uint64
	// CheckpointSeq is the commit sequence number this image captures;
	// WAL records at or below it are redundant and skipped on replay.
	CheckpointSeq uint64
	// Root is the B-tree root page.
	Root PageID
	// NPages is the allocation high-water mark (file length / PageSize).
	NPages uint32
	// CatalogHead is the first page of the schema-catalog chain (0 = empty).
	CatalogHead PageID
}

func encodeMeta(m Meta) []byte {
	d := make([]byte, PageSize)
	binary.LittleEndian.PutUint32(d[0:4], fileMagic)
	binary.LittleEndian.PutUint32(d[4:8], fileVersion)
	binary.LittleEndian.PutUint64(d[8:16], m.CheckpointSeq)
	binary.LittleEndian.PutUint32(d[16:20], uint32(m.Root))
	binary.LittleEndian.PutUint32(d[20:24], m.NPages)
	binary.LittleEndian.PutUint32(d[24:28], uint32(m.CatalogHead))
	binary.LittleEndian.PutUint64(d[28:36], m.Gen)
	binary.LittleEndian.PutUint32(d[36:40], crc32.Checksum(d[0:36], castagnoli))
	return d
}

func decodeMeta(d []byte) (Meta, error) {
	if len(d) < 40 {
		return Meta{}, errors.New("pager: short meta page")
	}
	if binary.LittleEndian.Uint32(d[0:4]) != fileMagic {
		return Meta{}, errors.New("pager: bad magic")
	}
	if v := binary.LittleEndian.Uint32(d[4:8]); v != fileVersion {
		return Meta{}, fmt.Errorf("pager: unsupported version %d", v)
	}
	if crc32.Checksum(d[0:36], castagnoli) != binary.LittleEndian.Uint32(d[36:40]) {
		return Meta{}, errors.New("pager: meta checksum mismatch")
	}
	return Meta{
		CheckpointSeq: binary.LittleEndian.Uint64(d[8:16]),
		Root:          PageID(binary.LittleEndian.Uint32(d[16:20])),
		NPages:        binary.LittleEndian.Uint32(d[20:24]),
		CatalogHead:   PageID(binary.LittleEndian.Uint32(d[24:28])),
		Gen:           binary.LittleEndian.Uint64(d[28:36]),
	}, nil
}

// PoolStats is a snapshot of buffer-pool counters.
type PoolStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Resident  int // frames currently cached
	Dirty     int // of those, dirtied since the last checkpoint
	Pinned    int // frames with at least one active pin
}

// Pool is the buffer pool: an LRU cache of page frames over the file.
// Only clean, unpinned frames are evicted; dirty frames are pinned in
// memory until the next checkpoint relocates them (no-steal).
type Pool struct {
	mu     sync.Mutex
	f      *os.File
	cap    int
	frames map[PageID]*frame
	lru    *list.List // of *frame; front = most recently used
	npages uint32
	// alloc, when set, may supply a recycled page slot before the file
	// is extended. Called with mu held; must not reenter the pool.
	alloc func() (PageID, bool)

	hits, misses, evictions atomic.Uint64
}

type frame struct {
	id    PageID
	data  []byte
	dirty bool
	// fresh marks a frame allocated since the last checkpoint: its slot
	// is not referenced by the committed image, so the checkpoint may
	// write it in place instead of relocating it.
	fresh bool
	pins  int
	elem  *list.Element
}

// Page is a pinned view of one page. Release it when done; the Data
// slice must not be used after Release if the page was not dirtied.
type Page struct {
	fr   *frame
	pool *Pool
}

func (p *Page) ID() PageID   { return p.fr.id }
func (p *Page) Data() []byte { return p.fr.data }

// MarkDirty pins the frame's contents into the pool until the next
// checkpoint: dirty frames are never evicted or written back.
func (p *Page) MarkDirty() {
	p.pool.mu.Lock()
	p.fr.dirty = true
	p.pool.mu.Unlock()
}

// Release drops the pin taken by Get/Alloc.
func (p *Page) Release() {
	p.pool.mu.Lock()
	p.fr.pins--
	p.pool.mu.Unlock()
}

func newPool(f *os.File, capPages int, npages uint32) *Pool {
	if capPages <= 0 {
		capPages = 2048 // 8 MiB default
	}
	return &Pool{f: f, cap: capPages, frames: make(map[PageID]*frame), lru: list.New(), npages: npages}
}

// Get pins page id, reading it from the file on a miss.
func (p *Pool) Get(id PageID) (*Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fr, ok := p.frames[id]; ok {
		fr.pins++
		p.lru.MoveToFront(fr.elem)
		p.hits.Add(1)
		return &Page{fr: fr, pool: p}, nil
	}
	p.misses.Add(1)
	if id < 2 || id >= PageID(p.npages) {
		return nil, fmt.Errorf("pager: page %d out of range [2,%d)", id, p.npages)
	}
	data := make([]byte, PageSize)
	if _, err := p.f.ReadAt(data, int64(id)*PageSize); err != nil {
		return nil, fmt.Errorf("pager: read page %d: %w", id, err)
	}
	fr := &frame{id: id, data: data, pins: 1}
	fr.elem = p.lru.PushFront(fr)
	p.frames[id] = fr
	p.evictLocked()
	return &Page{fr: fr, pool: p}, nil
}

// Alloc creates a fresh page, reusing a recycled slot when the
// allocator hook offers one. It exists only in the pool (dirty) until
// a checkpoint persists its contents.
func (p *Pool) Alloc() *Page {
	p.mu.Lock()
	defer p.mu.Unlock()
	var id PageID
	if p.alloc != nil {
		if got, ok := p.alloc(); ok {
			id = got
		}
	}
	if id == 0 {
		id = PageID(p.npages)
		p.npages++
	}
	p.dropLocked(id) // a recycled slot may still have a stale resident frame
	fr := &frame{id: id, data: make([]byte, PageSize), dirty: true, fresh: true, pins: 1}
	fr.elem = p.lru.PushFront(fr)
	p.frames[id] = fr
	return &Page{fr: fr, pool: p}
}

// forget drops a frame whose contents are dead (freed overflow
// chains). Reports whether the slot was fresh (allocated since the
// last checkpoint, so not referenced by the committed image).
func (p *Pool) forget(id PageID) (fresh bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fr, ok := p.frames[id]; ok {
		fresh = fr.fresh
		if fr.pins == 0 {
			p.lru.Remove(fr.elem)
			delete(p.frames, id)
		}
	}
	return fresh
}

// Forget drops a frame whose contents are dead. No-op if pinned or
// absent.
func (p *Pool) Forget(id PageID) { p.forget(id) }

// drop removes any resident frame for id unconditionally — used when a
// recycled slot is about to receive new content, so a stale frame must
// not shadow it. Holders of an outstanding pin keep their reference;
// the pool just forgets the mapping.
func (p *Pool) drop(id PageID) {
	p.mu.Lock()
	p.dropLocked(id)
	p.mu.Unlock()
}

func (p *Pool) dropLocked(id PageID) {
	if fr, ok := p.frames[id]; ok {
		p.lru.Remove(fr.elem)
		delete(p.frames, id)
	}
}

func (p *Pool) evictLocked() {
	for len(p.frames) > p.cap {
		evicted := false
		for e := p.lru.Back(); e != nil; e = e.Prev() {
			fr := e.Value.(*frame)
			if fr.dirty || fr.pins > 0 {
				continue // no-steal: dirty stays; pinned is in use
			}
			p.lru.Remove(e)
			delete(p.frames, fr.id)
			p.evictions.Add(1)
			evicted = true
			break
		}
		if !evicted {
			return // everything dirty or pinned: grow past cap
		}
	}
}

// dirtyFrames returns the frames dirtied since the last checkpoint.
// The caller must serialize against all tree mutation.
func (p *Pool) dirtyFrames() []*frame {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*frame
	for _, fr := range p.frames {
		if fr.dirty {
			out = append(out, fr)
		}
	}
	return out
}

// rekey moves the relocated frames to their checkpoint slots, clears
// every dirty/fresh flag and adopts the new allocation high-water
// mark. The caller must serialize against all tree access.
func (p *Pool) rekey(remap map[PageID]PageID, npages uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for old, next := range remap {
		fr, ok := p.frames[old]
		if !ok {
			continue
		}
		delete(p.frames, old)
		fr.id = next
		p.frames[next] = fr
	}
	for _, fr := range p.frames {
		fr.dirty = false
		fr.fresh = false
	}
	p.npages = npages
	p.evictLocked()
}

// Stats returns the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	resident := len(p.frames)
	dirty, pinned := 0, 0
	for _, fr := range p.frames {
		if fr.dirty {
			dirty++
		}
		if fr.pins > 0 {
			pinned++
		}
	}
	p.mu.Unlock()
	return PoolStats{
		Hits:      p.hits.Load(),
		Misses:    p.misses.Load(),
		Evictions: p.evictions.Load(),
		Resident:  resident,
		Dirty:     dirty,
		Pinned:    pinned,
	}
}

// Store is an open page file: meta, pool and the mounted B-tree.
type Store struct {
	path string
	f    *os.File
	pool *Pool
	meta Meta
	slot int // meta slot (page 0 or 1) the current meta came from
	tree *BTree

	// free holds page slots allocatable right now (referenced by no
	// valid meta slot); pending holds slots vacated by the latest
	// checkpoint, which stay quarantined until the next one commits.
	free    []PageID
	pending []PageID
}

// Open opens an existing page file (use WriteCheckpoint to create
// one). poolPages bounds the buffer pool; <=0 selects the default.
func Open(path string, poolPages int) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	var meta Meta
	slot := -1
	hdr := make([]byte, PageSize)
	for i := 0; i < 2; i++ {
		if _, err := f.ReadAt(hdr, int64(i)*PageSize); err != nil {
			continue // slot 1 may be missing from a short file
		}
		m, err := decodeMeta(hdr)
		if err != nil {
			continue
		}
		if slot < 0 || m.Gen > meta.Gen {
			meta, slot = m, i
		}
	}
	if slot < 0 {
		f.Close()
		return nil, errors.New("pager: no valid meta slot")
	}
	pool := newPool(f, poolPages, meta.NPages)
	s := &Store{path: path, f: f, pool: pool, meta: meta, slot: slot}
	s.tree = &BTree{pool: pool, root: meta.Root, free: s.freePage}
	pool.alloc = s.popFree
	return s, nil
}

// popFree hands an allocatable recycled slot to the pool, if any.
// Runs on the externally serialized write path.
func (s *Store) popFree() (PageID, bool) {
	if n := len(s.free); n > 0 {
		id := s.free[n-1]
		s.free = s.free[:n-1]
		return id, true
	}
	return 0, false
}

// freePage retires a dead page slot. Slots never persisted (fresh
// since the last checkpoint) recycle immediately; slots the committed
// image may reference quarantine until the next checkpoint commits.
func (s *Store) freePage(id PageID) {
	if s.pool.forget(id) {
		s.free = append(s.free, id)
	} else {
		s.pending = append(s.pending, id)
	}
}

// Meta returns the current committed meta.
func (s *Store) Meta() Meta { return s.meta }

// Tree returns the mounted B-tree. Its root migrates in memory as the
// tree splits; the on-disk root is only rewritten by checkpoints.
func (s *Store) Tree() *BTree { return s.tree }

// PoolStats exposes the buffer-pool counters.
func (s *Store) PoolStats() PoolStats { return s.pool.Stats() }

// Catalog reads the schema-catalog blob from its page chain.
func (s *Store) Catalog() ([]byte, error) {
	return readChain(s.pool, s.meta.CatalogHead)
}

// Close closes the underlying file. Dirty pool frames are discarded —
// persistence is the checkpoint's job, not Close's.
func (s *Store) Close() error { return s.f.Close() }

func readChain(pool *Pool, head PageID) ([]byte, error) {
	var out []byte
	for id := head; id != 0; {
		pg, err := pool.Get(id)
		if err != nil {
			return nil, err
		}
		d := pg.Data()
		if d[0] != pageOverflow {
			pg.Release()
			return nil, fmt.Errorf("pager: page %d: expected chain page, got type %d", id, d[0])
		}
		n := binary.LittleEndian.Uint16(d[2:4])
		next := PageID(binary.LittleEndian.Uint32(d[4:8]))
		out = append(out, d[ovfHdr:ovfHdr+int(n)]...)
		pg.Release()
		id = next
	}
	return out, nil
}

// chainIDs lists the pages of an overflow/catalog chain.
func chainIDs(pool *Pool, head PageID) ([]PageID, error) {
	var ids []PageID
	for id := head; id != 0; {
		pg, err := pool.Get(id)
		if err != nil {
			return ids, err
		}
		ids = append(ids, id)
		id = PageID(binary.LittleEndian.Uint32(pg.Data()[4:8]))
		pg.Release()
	}
	return ids, nil
}

// IncrementalCheckpoint durably publishes the current tree state and
// catalog at commit sequence seq. Cost is proportional to the pages
// dirtied since the last checkpoint: each dirty page is written to a
// slot the committed image does not reference (relocating pages the
// image does hold, writing fresh ones in place), pointers into the
// relocated pages are rewritten in the copies, and the new
// root/catalog/seq commit atomically via the inactive meta slot. The
// caller must serialize against all tree access.
func (s *Store) IncrementalCheckpoint(seq uint64, catalog []byte) error {
	oldCat, err := chainIDs(s.pool, s.meta.CatalogHead)
	if err != nil {
		return fmt.Errorf("pager: checkpoint: read old catalog chain: %w", err)
	}

	dirty := s.pool.dirtyFrames()
	npages := s.pool.npages
	var vacated []PageID
	alloc := func() PageID {
		id, ok := s.popFree()
		if !ok {
			id = PageID(npages)
			npages++
		}
		// Recycled slots may linger in the pool as clean frames (e.g. a
		// previous catalog chain read through it); evict the stale view
		// before the slot's content changes underneath it.
		s.pool.drop(id)
		return id
	}

	// Assign target slots: fresh frames stay put (their slot is already
	// outside the committed image); persisted frames relocate. Dirty
	// path marking in the B-tree guarantees that every page pointing at
	// a dirty page is itself dirty, so rewriting the dirty set alone
	// repairs every pointer into the relocated copies.
	remap := make(map[PageID]PageID)
	targets := make([]PageID, len(dirty))
	for i, fr := range dirty {
		if fr.fresh {
			targets[i] = fr.id
			continue
		}
		targets[i] = alloc()
		remap[fr.id] = targets[i]
		vacated = append(vacated, fr.id)
	}

	// Catalog chain: freshly allocated every checkpoint.
	catHead := PageID(0)
	var catPages []PageID
	var catData [][]byte
	for off := 0; off < len(catalog); {
		n := len(catalog) - off
		if n > ovfCap {
			n = ovfCap
		}
		d := make([]byte, PageSize)
		d[0] = pageOverflow
		binary.LittleEndian.PutUint16(d[2:4], uint16(n))
		copy(d[ovfHdr:], catalog[off:off+n])
		catPages = append(catPages, alloc())
		catData = append(catData, d)
		off += n
	}
	for i := range catPages {
		if i+1 < len(catPages) {
			binary.LittleEndian.PutUint32(catData[i][4:8], uint32(catPages[i+1]))
		}
	}
	if len(catPages) > 0 {
		catHead = catPages[0]
	}

	// Write the relocated/in-place dirty pages with pointers remapped,
	// then the catalog chain, then fsync the data before the meta flip.
	// The remap is applied to the pooled frames themselves, not a copy:
	// the resident frames must follow the relocated ids after the commit,
	// and by the dirty-path invariant every pointer into a relocated page
	// lives in a dirty frame, so rewriting the dirty set covers them all.
	// (On a write error the store is left for the engine's sticky-fail
	// path; the committed on-disk image is untouched either way.)
	for i, fr := range dirty {
		remapPage(fr.data, remap)
		if _, err := s.f.WriteAt(fr.data, int64(targets[i])*PageSize); err != nil {
			return fmt.Errorf("pager: checkpoint write page %d: %w", targets[i], err)
		}
	}
	for i, d := range catData {
		if _, err := s.f.WriteAt(d, int64(catPages[i])*PageSize); err != nil {
			return fmt.Errorf("pager: checkpoint write catalog page %d: %w", catPages[i], err)
		}
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("pager: checkpoint data fsync: %w", err)
	}

	root := s.tree.root
	if next, ok := remap[root]; ok {
		root = next
	}
	meta := Meta{
		Gen:           s.meta.Gen + 1,
		CheckpointSeq: seq,
		Root:          root,
		NPages:        npages,
		CatalogHead:   catHead,
	}
	slot := 1 - s.slot
	if _, err := s.f.WriteAt(encodeMeta(meta), int64(slot)*PageSize); err != nil {
		return fmt.Errorf("pager: checkpoint meta write: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("pager: checkpoint meta fsync: %w", err)
	}

	// Committed: adopt the new meta, move relocated frames to their
	// slots, and promote the previous checkpoint's quarantine to the
	// allocatable free list (the meta flip made it unreachable).
	s.meta, s.slot = meta, slot
	s.tree.root = root
	s.pool.rekey(remap, npages)
	s.free = append(s.free, s.pending...)
	s.pending = append(vacated, oldCat...)
	return nil
}

// --- checkpoint writer -------------------------------------------------

// WriteCheckpoint bulk-loads a compacted B-tree image into path,
// atomically replacing any previous file. scan must emit keys in
// strictly ascending order (iterate a live tree, or nothing for a
// fresh file); catalog is the schema blob stored alongside. The new
// image, catalog and seq become visible in a single rename.
func WriteCheckpoint(path string, seq uint64, catalog []byte, scan func(emit func(Key, []byte) error) error) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) // no-op after the rename succeeds

	b := &builder{f: f, next: 2} // pages 0 and 1 are the meta slots
	catalogHead := PageID(0)
	if len(catalog) > 0 {
		catalogHead = b.writeChain(catalog)
	}
	root := b.buildTree(scan)
	if b.err != nil {
		f.Close()
		return b.err
	}
	meta := encodeMeta(Meta{Gen: 1, CheckpointSeq: seq, Root: root, NPages: uint32(b.next), CatalogHead: catalogHead})
	if _, err := f.WriteAt(meta, 0); err != nil {
		f.Close()
		return err
	}
	// Slot 1 starts invalid (all zeroes); the first incremental
	// checkpoint writes it.
	if _, err := f.WriteAt(make([]byte, PageSize), PageSize); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("pager: checkpoint fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return fsyncDir(filepath.Dir(path))
}

type builder struct {
	f    *os.File
	next PageID
	err  error
}

func (b *builder) emit(data []byte) PageID {
	id := b.next
	b.next++
	if b.err == nil {
		if _, err := b.f.WriteAt(data, int64(id)*PageSize); err != nil {
			b.err = fmt.Errorf("pager: checkpoint write page %d: %w", id, err)
		}
	}
	return id
}

// writeChain stores blob as a linked chain of overflow-format pages
// and returns the head. Pages are emitted in order, so each page's
// next pointer is simply the following allocation.
func (b *builder) writeChain(blob []byte) PageID {
	head := b.next
	for off := 0; off < len(blob); {
		n := len(blob) - off
		if n > ovfCap {
			n = ovfCap
		}
		d := make([]byte, PageSize)
		d[0] = pageOverflow
		binary.LittleEndian.PutUint16(d[2:4], uint16(n))
		if off+n < len(blob) {
			binary.LittleEndian.PutUint32(d[4:8], uint32(b.next+1))
		}
		copy(d[ovfHdr:], blob[off:off+n])
		b.emit(d)
		off += n
	}
	return head
}

type levelEntry struct {
	first Key
	id    PageID
}

// buildTree packs the scanned key/value stream into full leaves, then
// builds interior levels bottom-up. Returns the root page.
func (b *builder) buildTree(scan func(emit func(Key, []byte) error) error) PageID {
	var leaves []levelEntry
	var cells [][]byte
	var used int // header + slots + cells
	var prev Key
	var have bool

	flush := func() {
		if len(cells) == 0 {
			return
		}
		d := make([]byte, PageSize)
		packLeaf(d, cells)
		var first Key
		copy(first[:], cells[0][:keySize])
		leaves = append(leaves, levelEntry{first: first, id: b.emit(d)})
		cells = cells[:0]
		used = leafHdr
	}
	used = leafHdr

	err := scan(func(k Key, v []byte) error {
		if have && !prev.Less(k) {
			return fmt.Errorf("pager: checkpoint scan out of order at %x", k[:])
		}
		prev, have = k, true
		cell := b.buildCell(k, v)
		if used+len(cell)+2 > PageSize {
			flush()
		}
		cells = append(cells, cell)
		used += len(cell) + 2
		return nil
	})
	if err != nil && b.err == nil {
		b.err = err
	}
	flush()

	if len(leaves) == 0 {
		d := make([]byte, PageSize)
		packLeaf(d, nil)
		return b.emit(d)
	}
	level := leaves
	for len(level) > 1 {
		var up []levelEntry
		for lo := 0; lo < len(level); lo += maxFanout {
			hi := lo + maxFanout
			if hi > len(level) {
				hi = len(level)
			}
			group := level[lo:hi]
			d := make([]byte, PageSize)
			d[0] = pageInterior
			setIntN(d, len(group)-1)
			for i, e := range group {
				setChild(d, i, e.id)
				if i > 0 {
					setIntKey(d, i-1, e.first)
				}
			}
			up = append(up, levelEntry{first: group[0].first, id: b.emit(d)})
		}
		level = up
	}
	return level[0].id
}

// buildCell encodes one key/value as a leaf cell, spilling large
// values into an overflow chain emitted before the cell's leaf.
func (b *builder) buildCell(k Key, v []byte) []byte {
	if len(v) <= maxInline {
		cell := make([]byte, keySize+3+len(v))
		copy(cell, k[:])
		cell[keySize] = 0
		binary.LittleEndian.PutUint16(cell[keySize+1:], uint16(len(v)))
		copy(cell[keySize+3:], v)
		return cell
	}
	head := b.writeChain(v)
	cell := make([]byte, keySize+9)
	copy(cell, k[:])
	cell[keySize] = 1
	binary.LittleEndian.PutUint32(cell[keySize+1:], uint32(len(v)))
	binary.LittleEndian.PutUint32(cell[keySize+5:], uint32(head))
	return cell
}

func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
