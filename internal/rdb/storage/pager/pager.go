// Package pager implements the page store of the durable engine: a
// single file of fixed 4 KiB pages holding a B-tree keyed by
// (tableID, recID), fronted by an LRU buffer pool.
//
// Durability model (no-steal, full-rewrite checkpoints). The page file
// is immutable between checkpoints: mutations dirty pages in the
// buffer pool only, and dirty frames are never evicted or written
// back. Recovery therefore never sees a torn page — the file on disk
// is always a complete, internally consistent checkpoint image, and
// everything since it is replayed from the WAL. A checkpoint rewrites
// the whole tree, bulk-loaded and compacted, into a temporary file
// that is fsynced and atomically renamed over the old one; the
// checkpoint sequence number, B-tree root and catalog blob live inside
// the same file (page 0 and a page chain), so the data, schema and
// recovery horizon become durable in one rename.
package pager

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// PageSize is the fixed page length. Every offset in the file is a
// multiple of it; PageID n lives at byte n*PageSize.
const PageSize = 4096

const (
	fileMagic   = 0x574D4C50 // "WMLP"
	fileVersion = 1

	pageLeaf     = 1
	pageInterior = 2
	pageOverflow = 3
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// PageID identifies a page by position; 0 is the meta page.
type PageID uint32

// Meta is the decoded meta page: the recovery anchor for the file.
type Meta struct {
	// CheckpointSeq is the commit sequence number this image captures;
	// WAL records at or below it are redundant and skipped on replay.
	CheckpointSeq uint64
	// Root is the B-tree root page.
	Root PageID
	// NPages is the allocation high-water mark (file length / PageSize).
	NPages uint32
	// CatalogHead is the first page of the schema-catalog chain (0 = empty).
	CatalogHead PageID
}

func encodeMeta(m Meta) []byte {
	d := make([]byte, PageSize)
	binary.LittleEndian.PutUint32(d[0:4], fileMagic)
	binary.LittleEndian.PutUint32(d[4:8], fileVersion)
	binary.LittleEndian.PutUint64(d[8:16], m.CheckpointSeq)
	binary.LittleEndian.PutUint32(d[16:20], uint32(m.Root))
	binary.LittleEndian.PutUint32(d[20:24], m.NPages)
	binary.LittleEndian.PutUint32(d[24:28], uint32(m.CatalogHead))
	binary.LittleEndian.PutUint32(d[28:32], crc32.Checksum(d[0:28], castagnoli))
	return d
}

func decodeMeta(d []byte) (Meta, error) {
	if len(d) < 32 {
		return Meta{}, errors.New("pager: short meta page")
	}
	if binary.LittleEndian.Uint32(d[0:4]) != fileMagic {
		return Meta{}, errors.New("pager: bad magic")
	}
	if v := binary.LittleEndian.Uint32(d[4:8]); v != fileVersion {
		return Meta{}, fmt.Errorf("pager: unsupported version %d", v)
	}
	if crc32.Checksum(d[0:28], castagnoli) != binary.LittleEndian.Uint32(d[28:32]) {
		return Meta{}, errors.New("pager: meta checksum mismatch")
	}
	return Meta{
		CheckpointSeq: binary.LittleEndian.Uint64(d[8:16]),
		Root:          PageID(binary.LittleEndian.Uint32(d[16:20])),
		NPages:        binary.LittleEndian.Uint32(d[20:24]),
		CatalogHead:   PageID(binary.LittleEndian.Uint32(d[24:28])),
	}, nil
}

// PoolStats is a snapshot of buffer-pool counters.
type PoolStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Resident  int // frames currently cached
	Dirty     int // of those, dirtied since the last checkpoint
}

// Pool is the buffer pool: an LRU cache of page frames over the file.
// Only clean, unpinned frames are evicted; dirty frames are pinned in
// memory until the next checkpoint discards them (no-steal).
type Pool struct {
	mu     sync.Mutex
	f      *os.File
	cap    int
	frames map[PageID]*frame
	lru    *list.List // of *frame; front = most recently used
	npages uint32

	hits, misses, evictions atomic.Uint64
}

type frame struct {
	id    PageID
	data  []byte
	dirty bool
	pins  int
	elem  *list.Element
}

// Page is a pinned view of one page. Release it when done; the Data
// slice must not be used after Release if the page was not dirtied.
type Page struct {
	fr   *frame
	pool *Pool
}

func (p *Page) ID() PageID   { return p.fr.id }
func (p *Page) Data() []byte { return p.fr.data }

// MarkDirty pins the frame's contents into the pool until the next
// checkpoint: dirty frames are never evicted or written back.
func (p *Page) MarkDirty() {
	p.pool.mu.Lock()
	p.fr.dirty = true
	p.pool.mu.Unlock()
}

// Release drops the pin taken by Get/Alloc.
func (p *Page) Release() {
	p.pool.mu.Lock()
	p.fr.pins--
	p.pool.mu.Unlock()
}

func newPool(f *os.File, capPages int, npages uint32) *Pool {
	if capPages <= 0 {
		capPages = 2048 // 8 MiB default
	}
	return &Pool{f: f, cap: capPages, frames: make(map[PageID]*frame), lru: list.New(), npages: npages}
}

// Get pins page id, reading it from the file on a miss.
func (p *Pool) Get(id PageID) (*Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fr, ok := p.frames[id]; ok {
		fr.pins++
		p.lru.MoveToFront(fr.elem)
		p.hits.Add(1)
		return &Page{fr: fr, pool: p}, nil
	}
	p.misses.Add(1)
	if id == 0 || id >= PageID(p.npages) {
		return nil, fmt.Errorf("pager: page %d out of range [1,%d)", id, p.npages)
	}
	data := make([]byte, PageSize)
	if _, err := p.f.ReadAt(data, int64(id)*PageSize); err != nil {
		return nil, fmt.Errorf("pager: read page %d: %w", id, err)
	}
	fr := &frame{id: id, data: data, pins: 1}
	fr.elem = p.lru.PushFront(fr)
	p.frames[id] = fr
	p.evictLocked()
	return &Page{fr: fr, pool: p}, nil
}

// Alloc creates a fresh page. It exists only in the pool (dirty) until
// a checkpoint persists its contents in rewritten form.
func (p *Pool) Alloc() *Page {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := PageID(p.npages)
	p.npages++
	fr := &frame{id: id, data: make([]byte, PageSize), dirty: true, pins: 1}
	fr.elem = p.lru.PushFront(fr)
	p.frames[id] = fr
	return &Page{fr: fr, pool: p}
}

// Forget drops a frame whose contents are dead (freed overflow
// chains), capping pool memory between checkpoints. No-op if pinned
// or absent; any bytes still on disk leak until the next checkpoint
// compacts them away.
func (p *Pool) Forget(id PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fr, ok := p.frames[id]; ok && fr.pins == 0 {
		p.lru.Remove(fr.elem)
		delete(p.frames, id)
	}
}

func (p *Pool) evictLocked() {
	for len(p.frames) > p.cap {
		evicted := false
		for e := p.lru.Back(); e != nil; e = e.Prev() {
			fr := e.Value.(*frame)
			if fr.dirty || fr.pins > 0 {
				continue // no-steal: dirty stays; pinned is in use
			}
			p.lru.Remove(e)
			delete(p.frames, fr.id)
			p.evictions.Add(1)
			evicted = true
			break
		}
		if !evicted {
			return // everything dirty or pinned: grow past cap
		}
	}
}

// Stats returns the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	resident := len(p.frames)
	dirty := 0
	for _, fr := range p.frames {
		if fr.dirty {
			dirty++
		}
	}
	p.mu.Unlock()
	return PoolStats{
		Hits:      p.hits.Load(),
		Misses:    p.misses.Load(),
		Evictions: p.evictions.Load(),
		Resident:  resident,
		Dirty:     dirty,
	}
}

// Store is an open page file: meta, pool and the mounted B-tree.
type Store struct {
	path string
	f    *os.File
	pool *Pool
	meta Meta
	tree *BTree
}

// Open opens an existing page file (use WriteCheckpoint to create
// one). poolPages bounds the buffer pool; <=0 selects the default.
func Open(path string, poolPages int) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, PageSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: read meta: %w", err)
	}
	meta, err := decodeMeta(hdr)
	if err != nil {
		f.Close()
		return nil, err
	}
	pool := newPool(f, poolPages, meta.NPages)
	s := &Store{path: path, f: f, pool: pool, meta: meta}
	s.tree = &BTree{pool: pool, root: meta.Root}
	return s, nil
}

// Meta returns the meta page read at open.
func (s *Store) Meta() Meta { return s.meta }

// Tree returns the mounted B-tree. Its root migrates in memory as the
// tree splits; the on-disk root is only rewritten by checkpoints.
func (s *Store) Tree() *BTree { return s.tree }

// PoolStats exposes the buffer-pool counters.
func (s *Store) PoolStats() PoolStats { return s.pool.Stats() }

// Catalog reads the schema-catalog blob from its page chain.
func (s *Store) Catalog() ([]byte, error) {
	return readChain(s.pool, s.meta.CatalogHead)
}

// Close closes the underlying file. Dirty pool frames are discarded —
// persistence is the checkpoint's job, not Close's.
func (s *Store) Close() error { return s.f.Close() }

func readChain(pool *Pool, head PageID) ([]byte, error) {
	var out []byte
	for id := head; id != 0; {
		pg, err := pool.Get(id)
		if err != nil {
			return nil, err
		}
		d := pg.Data()
		if d[0] != pageOverflow {
			pg.Release()
			return nil, fmt.Errorf("pager: page %d: expected chain page, got type %d", id, d[0])
		}
		n := binary.LittleEndian.Uint16(d[2:4])
		next := PageID(binary.LittleEndian.Uint32(d[4:8]))
		out = append(out, d[ovfHdr:ovfHdr+int(n)]...)
		pg.Release()
		id = next
	}
	return out, nil
}

// --- checkpoint writer -------------------------------------------------

// WriteCheckpoint bulk-loads a compacted B-tree image into path,
// atomically replacing any previous file. scan must emit keys in
// strictly ascending order (iterate a live tree, or nothing for a
// fresh file); catalog is the schema blob stored alongside. The new
// image, catalog and seq become visible in a single rename.
func WriteCheckpoint(path string, seq uint64, catalog []byte, scan func(emit func(Key, []byte) error) error) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) // no-op after the rename succeeds

	b := &builder{f: f, next: 1}
	catalogHead := PageID(0)
	if len(catalog) > 0 {
		catalogHead = b.writeChain(catalog)
	}
	root := b.buildTree(scan)
	if b.err != nil {
		f.Close()
		return b.err
	}
	meta := encodeMeta(Meta{CheckpointSeq: seq, Root: root, NPages: uint32(b.next), CatalogHead: catalogHead})
	if _, err := f.WriteAt(meta, 0); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("pager: checkpoint fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return fsyncDir(filepath.Dir(path))
}

type builder struct {
	f    *os.File
	next PageID
	err  error
}

func (b *builder) emit(data []byte) PageID {
	id := b.next
	b.next++
	if b.err == nil {
		if _, err := b.f.WriteAt(data, int64(id)*PageSize); err != nil {
			b.err = fmt.Errorf("pager: checkpoint write page %d: %w", id, err)
		}
	}
	return id
}

// writeChain stores blob as a linked chain of overflow-format pages
// and returns the head. Pages are emitted in order, so each page's
// next pointer is simply the following allocation.
func (b *builder) writeChain(blob []byte) PageID {
	head := b.next
	for off := 0; off < len(blob); {
		n := len(blob) - off
		if n > ovfCap {
			n = ovfCap
		}
		d := make([]byte, PageSize)
		d[0] = pageOverflow
		binary.LittleEndian.PutUint16(d[2:4], uint16(n))
		if off+n < len(blob) {
			binary.LittleEndian.PutUint32(d[4:8], uint32(b.next+1))
		}
		copy(d[ovfHdr:], blob[off:off+n])
		b.emit(d)
		off += n
	}
	return head
}

type levelEntry struct {
	first Key
	id    PageID
}

// buildTree packs the scanned key/value stream into full leaves, then
// builds interior levels bottom-up. Returns the root page.
func (b *builder) buildTree(scan func(emit func(Key, []byte) error) error) PageID {
	var leaves []levelEntry
	var cells [][]byte
	var used int // header + slots + cells
	var prev Key
	var have bool

	flush := func() {
		if len(cells) == 0 {
			return
		}
		d := make([]byte, PageSize)
		packLeaf(d, cells)
		var first Key
		copy(first[:], cells[0][:keySize])
		leaves = append(leaves, levelEntry{first: first, id: b.emit(d)})
		cells = cells[:0]
		used = leafHdr
	}
	used = leafHdr

	err := scan(func(k Key, v []byte) error {
		if have && !prev.Less(k) {
			return fmt.Errorf("pager: checkpoint scan out of order at %x", k[:])
		}
		prev, have = k, true
		cell := b.buildCell(k, v)
		if used+len(cell)+2 > PageSize {
			flush()
		}
		cells = append(cells, cell)
		used += len(cell) + 2
		return nil
	})
	if err != nil && b.err == nil {
		b.err = err
	}
	flush()

	if len(leaves) == 0 {
		d := make([]byte, PageSize)
		packLeaf(d, nil)
		return b.emit(d)
	}
	level := leaves
	for len(level) > 1 {
		var up []levelEntry
		for lo := 0; lo < len(level); lo += maxFanout {
			hi := lo + maxFanout
			if hi > len(level) {
				hi = len(level)
			}
			group := level[lo:hi]
			d := make([]byte, PageSize)
			d[0] = pageInterior
			setIntN(d, len(group)-1)
			for i, e := range group {
				setChild(d, i, e.id)
				if i > 0 {
					setIntKey(d, i-1, e.first)
				}
			}
			up = append(up, levelEntry{first: group[0].first, id: b.emit(d)})
		}
		level = up
	}
	return level[0].id
}

// buildCell encodes one key/value as a leaf cell, spilling large
// values into an overflow chain emitted before the cell's leaf.
func (b *builder) buildCell(k Key, v []byte) []byte {
	if len(v) <= maxInline {
		cell := make([]byte, keySize+3+len(v))
		copy(cell, k[:])
		cell[keySize] = 0
		binary.LittleEndian.PutUint16(cell[keySize+1:], uint16(len(v)))
		copy(cell[keySize+3:], v)
		return cell
	}
	head := b.writeChain(v)
	cell := make([]byte, keySize+9)
	copy(cell, k[:])
	cell[keySize] = 1
	binary.LittleEndian.PutUint32(cell[keySize+1:], uint32(len(v)))
	binary.LittleEndian.PutUint32(cell[keySize+5:], uint32(head))
	return cell
}

func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
