package pager

// Regression coverage for incremental checkpoints under a pool far
// smaller than the tree: relocated frames must keep working in memory
// after the commit (pointer remap applies to the resident frames, not
// just the on-disk copies), and recycled slots must not be shadowed by
// stale resident frames.

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"testing"
)

func TestIncrementalCheckpointSmallPool(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pages.db")
	if err := WriteCheckpoint(path, 0, []byte("cat"), func(emit func(Key, []byte) error) error { return nil }); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 280)
	n := 0
	seq := uint64(0)
	for i := 0; i < 500; i++ {
		binary.LittleEndian.PutUint64(val, uint64(i))
		if err := s.Tree().Put(MakeKey(5, uint64(i)), val); err != nil {
			t.Fatal(err)
		}
		n++
		if n%37 == 0 {
			seq++
			if err := s.IncrementalCheckpoint(seq, []byte("cat")); err != nil {
				t.Fatal(err)
			}
		}
		// count keys live
		cnt := 0
		var prev Key
		var have bool
		err := s.Tree().ScanKeys(MinKey, MaxKey, func(k Key) error {
			if have && !prev.Less(k) {
				return fmt.Errorf("out of order/dup at i=%d key %x", i, k)
			}
			prev, have = k, true
			cnt++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if cnt != n {
			t.Fatalf("after %d puts (live): scan saw %d keys", n, cnt)
		}
	}
	seq++
	if err := s.IncrementalCheckpoint(seq, []byte("cat")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	cnt := 0
	var prev Key
	var have bool
	err = s2.Tree().ScanKeys(MinKey, MaxKey, func(k Key) error {
		if have && !prev.Less(k) {
			t.Logf("DUP/out-of-order key table=%d rec=%d", k.TableID(), k.RecID())
		}
		prev, have = k, true
		cnt++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if cnt != n {
		t.Fatalf("after reopen: scan saw %d keys, want %d", cnt, n)
	}
}
