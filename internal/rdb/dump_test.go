package rdb

import (
	"bytes"
	"strings"
	"testing"
)

func TestDumpRestoreRoundTrip(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `DELETE FROM paper WHERE oid = 2`) // leave a tombstone
	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Same table set.
	if got, want := strings.Join(back.TableNames(), ","), strings.Join(db.TableNames(), ","); got != want {
		t.Fatalf("tables = %q, want %q", got, want)
	}
	// Same row counts.
	for _, name := range db.TableNames() {
		a, _ := db.RowCount(name)
		b, _ := back.RowCount(name)
		if a != b {
			t.Fatalf("%s: %d != %d", name, a, b)
		}
	}
	// Data intact, queries work (joins through indexes rebuilt).
	rows := mustQuery(t, back, `
		SELECT p.title FROM paper p
		JOIN issue i ON i.oid = p.issue_oid
		WHERE i.volume_oid = ? ORDER BY p.title`, 1)
	if rows.Len() != 2 || rows.Data[0][0] != "Caching Dynamic Content" || rows.Data[1][0] != "Query Optimization" {
		t.Fatalf("got %v", rows.Data)
	}
	// Auto-increment continues past the snapshot.
	res := mustExec(t, back, `INSERT INTO paper (title, pages, issue_oid) VALUES ('New', 1, 1)`)
	if res.LastInsertID != 5 {
		t.Fatalf("auto-increment = %d", res.LastInsertID)
	}
	// Constraints survive.
	if _, err := back.Exec(`INSERT INTO volume (oid, title) VALUES (1, 'dup')`); err == nil {
		t.Fatal("pk constraint lost after restore")
	}
	if _, err := back.Exec(`INSERT INTO issue (number, volume_oid) VALUES (1, 99)`); err == nil {
		t.Fatal("fk constraint lost after restore")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := Restore(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestDumpIsDeterministic(t *testing.T) {
	db := testDB(t)
	var a, b bytes.Buffer
	if err := db.Dump(&a); err != nil {
		t.Fatal(err)
	}
	if err := db.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("dump not deterministic")
	}
}

func TestExplainAccessPaths(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		sql  string
		want []string
	}{
		{`SELECT * FROM volume WHERE oid = 1`,
			[]string{"ACCESS volume BY PRIMARY KEY ON oid"}},
		{`SELECT * FROM issue WHERE volume_oid = 1`,
			[]string{"ACCESS issue BY INDEX ON volume_oid"}},
		{`SELECT * FROM volume WHERE title = 'x'`,
			[]string{"SCAN volume"}},
		{`SELECT * FROM volume v JOIN issue i ON i.volume_oid = v.oid WHERE v.oid = 1`,
			[]string{"ACCESS volume BY PRIMARY KEY", "INNER JOIN issue BY INDEX ON volume_oid"}},
		{`SELECT * FROM volume v LEFT JOIN issue i ON i.number = v.year`,
			[]string{"SCAN volume", "LEFT JOIN issue BY NESTED LOOP"}},
		{`SELECT COUNT(*) FROM paper GROUP BY issue_oid ORDER BY issue_oid LIMIT 5`,
			[]string{"SCAN paper", "GROUP BY 1 keys", "SORT 1 keys", "LIMIT"}},
	}
	for _, c := range cases {
		plan, err := db.Explain(c.sql)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		for _, w := range c.want {
			if !strings.Contains(plan, w) {
				t.Errorf("%s:\nplan %q\nmissing %q", c.sql, plan, w)
			}
		}
	}
	if _, err := db.Explain(`DELETE FROM paper`); err == nil {
		t.Fatal("EXPLAIN of non-SELECT accepted")
	}
	if _, err := db.Explain(`SELECT * FROM ghost`); err == nil {
		t.Fatal("EXPLAIN of unknown table accepted")
	}
}

func TestExplainUniqueAccess(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE u (oid INTEGER PRIMARY KEY, email TEXT UNIQUE)`)
	plan, err := db.Explain(`SELECT * FROM u WHERE email = 'a@x'`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "BY UNIQUE ON email") {
		t.Fatalf("plan = %q", plan)
	}
}
