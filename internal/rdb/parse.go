package rdb

import (
	"fmt"
	"strconv"
	"strings"
)

// SyntaxError reports a SQL parse failure with the offending statement.
type SyntaxError struct {
	SQL string
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("rdb: syntax error at %d in %q: %s", e.Pos, e.SQL, e.Msg)
}

// ParseStatement parses a single SQL statement (an optional trailing ';'
// is accepted).
func ParseStatement(sql string) (Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{sql: sql, toks: toks}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("unexpected trailing input %q", p.cur().text)
	}
	// Number the positional parameters left to right.
	n := 0
	numberParams(st, &n)
	return st, nil
}

type sqlParser struct {
	sql  string
	toks []token
	pos  int
}

func (p *sqlParser) cur() token { return p.toks[p.pos] }

func (p *sqlParser) errf(format string, args ...interface{}) error {
	return &SyntaxError{SQL: p.sql, Pos: p.cur().pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *sqlParser) at(k tokKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *sqlParser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) expect(k tokKind, text string) (token, error) {
	if p.at(k, text) {
		t := p.cur()
		p.pos++
		return t, nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", k)
	}
	return token{}, p.errf("expected %s, found %q", want, p.cur().text)
}

func (p *sqlParser) expectIdent() (string, error) {
	if p.at(tokIdent, "") {
		t := p.cur()
		p.pos++
		return t.text, nil
	}
	// Non-reserved keyword usable as identifier in some positions.
	return "", p.errf("expected identifier, found %q", p.cur().text)
}

func (p *sqlParser) parseStatement() (Statement, error) {
	switch {
	case p.at(tokKeyword, "SELECT"):
		return p.parseSelect()
	case p.at(tokKeyword, "INSERT"):
		return p.parseInsert()
	case p.at(tokKeyword, "UPDATE"):
		return p.parseUpdate()
	case p.at(tokKeyword, "DELETE"):
		return p.parseDelete()
	case p.at(tokKeyword, "CREATE"):
		return p.parseCreate()
	case p.at(tokKeyword, "DROP"):
		return p.parseDrop()
	}
	return nil, p.errf("expected statement, found %q", p.cur().text)
}

func (p *sqlParser) parseCreate() (Statement, error) {
	p.pos++ // CREATE
	if p.accept(tokKeyword, "TABLE") {
		return p.parseCreateTable()
	}
	p.accept(tokKeyword, "UNIQUE") // tolerated; indexes are not unique-enforcing
	ordered := p.accept(tokKeyword, "ORDERED")
	if p.accept(tokKeyword, "INDEX") {
		st, err := p.parseCreateIndex()
		if err != nil {
			return nil, err
		}
		st.(*CreateIndexStmt).Ordered = ordered
		return st, nil
	}
	return nil, p.errf("expected TABLE or INDEX after CREATE")
}

func (p *sqlParser) parseCreateTable() (Statement, error) {
	st := &CreateTableStmt{}
	if p.accept(tokKeyword, "IF") {
		if _, err := p.expect(tokKeyword, "NOT"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "EXISTS"); err != nil {
			return nil, err
		}
		st.IfNotExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	for {
		if p.accept(tokKeyword, "FOREIGN") {
			fk, err := p.parseForeignKey()
			if err != nil {
				return nil, err
			}
			st.ForeignKeys = append(st.ForeignKeys, fk)
		} else {
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
		}
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *sqlParser) parseColumnDef() (ColumnDef, error) {
	var col ColumnDef
	name, err := p.expectIdent()
	if err != nil {
		return col, err
	}
	col.Name = name
	typTok := p.cur()
	if typTok.kind != tokIdent && typTok.kind != tokKeyword {
		return col, p.errf("expected column type for %s", name)
	}
	p.pos++
	typ, ok := parseColType(typTok.text)
	if !ok {
		return col, p.errf("unknown column type %q", typTok.text)
	}
	col.Type = typ
	// Optional (n) size, ignored.
	if p.accept(tokSymbol, "(") {
		if _, err := p.expect(tokNumber, ""); err != nil {
			return col, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return col, err
		}
	}
	for {
		switch {
		case p.accept(tokKeyword, "PRIMARY"):
			if _, err := p.expect(tokKeyword, "KEY"); err != nil {
				return col, err
			}
			col.PrimaryKey = true
		case p.accept(tokKeyword, "AUTOINCREMENT"):
			col.AutoIncrement = true
		case p.accept(tokKeyword, "NOT"):
			if _, err := p.expect(tokKeyword, "NULL"); err != nil {
				return col, err
			}
			col.NotNull = true
		case p.accept(tokKeyword, "UNIQUE"):
			col.Unique = true
		default:
			return col, nil
		}
	}
}

func (p *sqlParser) parseForeignKey() (ForeignKeyDef, error) {
	var fk ForeignKeyDef
	if _, err := p.expect(tokKeyword, "KEY"); err != nil {
		return fk, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return fk, err
	}
	col, err := p.expectIdent()
	if err != nil {
		return fk, err
	}
	fk.Column = col
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return fk, err
	}
	if _, err := p.expect(tokKeyword, "REFERENCES"); err != nil {
		return fk, err
	}
	tbl, err := p.expectIdent()
	if err != nil {
		return fk, err
	}
	fk.RefTable = tbl
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return fk, err
	}
	ref, err := p.expectIdent()
	if err != nil {
		return fk, err
	}
	fk.RefColumn = ref
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return fk, err
	}
	return fk, nil
}

func (p *sqlParser) parseCreateIndex() (Statement, error) {
	st := &CreateIndexStmt{}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if _, err := p.expect(tokKeyword, "ON"); err != nil {
		return nil, err
	}
	tbl, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Table = tbl
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Columns = append(st.Columns, col)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *sqlParser) parseDrop() (Statement, error) {
	p.pos++ // DROP
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	st := &DropTableStmt{}
	if p.accept(tokKeyword, "IF") {
		if _, err := p.expect(tokKeyword, "EXISTS"); err != nil {
			return nil, err
		}
		st.IfExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Name = name
	return st, nil
}

func (p *sqlParser) parseSelect() (*SelectStmt, error) {
	p.pos++ // SELECT
	st := &SelectStmt{}
	st.Distinct = p.accept(tokKeyword, "DISTINCT")
	for {
		se, err := p.parseSelectExpr()
		if err != nil {
			return nil, err
		}
		st.Columns = append(st.Columns, se)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	st.From = from
	for {
		var left bool
		switch {
		case p.accept(tokKeyword, "JOIN"):
		case p.accept(tokKeyword, "INNER"):
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
		case p.accept(tokKeyword, "LEFT"):
			p.accept(tokKeyword, "OUTER")
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			left = true
		default:
			goto afterJoins
		}
		{
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Joins = append(st.Joins, JoinClause{Left: left, Table: tr, On: on})
		}
	}
afterJoins:
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Having = h
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			term := OrderTerm{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				term.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			st.OrderBy = append(st.OrderBy, term)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		st.Limit = e
	}
	if p.accept(tokKeyword, "OFFSET") {
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		st.Offset = e
	}
	return st, nil
}

func (p *sqlParser) parseSelectExpr() (SelectExpr, error) {
	var se SelectExpr
	if p.accept(tokSymbol, "*") {
		se.Star = "*"
		return se, nil
	}
	// alias.* form
	if p.at(tokIdent, "") && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "." &&
		p.toks[p.pos+2].kind == tokSymbol && p.toks[p.pos+2].text == "*" {
		se.Star = p.cur().text
		p.pos += 3
		return se, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return se, err
	}
	se.Expr = e
	if p.accept(tokKeyword, "AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return se, err
		}
		se.Alias = alias
	} else if p.at(tokIdent, "") {
		se.Alias = p.cur().text
		p.pos++
	}
	return se, nil
}

func (p *sqlParser) parseTableRef() (TableRef, error) {
	var tr TableRef
	name, err := p.expectIdent()
	if err != nil {
		return tr, err
	}
	tr.Table = name
	if p.accept(tokKeyword, "AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return tr, err
		}
		tr.Alias = alias
	} else if p.at(tokIdent, "") {
		tr.Alias = p.cur().text
		p.pos++
	}
	return tr, nil
}

func (p *sqlParser) parseInsert() (Statement, error) {
	p.pos++ // INSERT
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	st := &InsertStmt{}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Columns = append(st.Columns, col)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		if len(row) != len(st.Columns) {
			return nil, p.errf("INSERT row has %d values for %d columns", len(row), len(st.Columns))
		}
		st.Rows = append(st.Rows, row)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	return st, nil
}

func (p *sqlParser) parseUpdate() (Statement, error) {
	p.pos++ // UPDATE
	st := &UpdateStmt{}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, SetClause{Column: col, Value: e})
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *sqlParser) parseDelete() (Statement, error) {
	p.pos++ // DELETE
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	st := &DeleteStmt{}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

// Expression grammar (precedence climbing):
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | cmpExpr
//	cmpExpr := addExpr ((=|<>|!=|<|<=|>|>=|LIKE) addExpr
//	          | IS [NOT] NULL | [NOT] IN (list) | BETWEEN addExpr AND addExpr)?
//	addExpr := mulExpr ((+|-) mulExpr)*
//	mulExpr := primary ((*|/) primary)*
func (p *sqlParser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *sqlParser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *sqlParser) parseComparison() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "<>", "!=", "<=", ">=", "<", ">"} {
		if p.accept(tokSymbol, op) {
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	if p.accept(tokKeyword, "LIKE") {
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: "LIKE", L: l, R: r}, nil
	}
	if p.accept(tokKeyword, "IS") {
		not := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{X: l, Not: not}, nil
	}
	notIn := false
	if p.at(tokKeyword, "NOT") && p.pos+1 < len(p.toks) && p.toks[p.pos+1].text == "IN" {
		p.pos++
		notIn = true
	}
	if p.accept(tokKeyword, "IN") {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		in := &InExpr{X: l, Not: notIn}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			in.List = append(in.List, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return in, nil
	}
	if p.accept(tokKeyword, "BETWEEN") {
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{
			Op: "AND",
			L:  &BinaryExpr{Op: ">=", L: l, R: lo},
			R:  &BinaryExpr{Op: "<=", L: l, R: hi},
		}, nil
	}
	return l, nil
}

func (p *sqlParser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokSymbol, "+"):
			op = "+"
		case p.accept(tokSymbol, "-"):
			op = "-"
		default:
			return l, nil
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *sqlParser) parseMul() (Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokSymbol, "*"):
			op = "*"
		case p.accept(tokSymbol, "/"):
			op = "/"
		default:
			return l, nil
		}
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *sqlParser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &Literal{Val: f}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &Literal{Val: n}, nil
	case t.kind == tokString:
		p.pos++
		return &Literal{Val: t.text}, nil
	case t.kind == tokParam:
		p.pos++
		return &Param{Index: -1}, nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.pos++
		return &Literal{Val: nil}, nil
	case t.kind == tokKeyword && t.text == "TRUE":
		p.pos++
		return &Literal{Val: true}, nil
	case t.kind == tokKeyword && t.text == "FALSE":
		p.pos++
		return &Literal{Val: false}, nil
	case t.kind == tokSymbol && t.text == "-":
		p.pos++
		x, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	case t.kind == tokSymbol && t.text == "(":
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokKeyword && aggregateFuncs[t.text]:
		return p.parseFuncCall(t.text)
	case t.kind == tokIdent:
		// Function call or column reference.
		if p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
			return p.parseFuncCall(strings.ToUpper(t.text))
		}
		p.pos++
		if p.accept(tokSymbol, ".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: t.text, Column: col}, nil
		}
		return &ColRef{Column: t.text}, nil
	}
	return nil, p.errf("unexpected token %q", t.text)
}

var scalarFuncs = map[string]bool{
	"LOWER": true, "UPPER": true, "LENGTH": true, "ABS": true,
	"COALESCE": true, "SUBSTR": true,
}

func (p *sqlParser) parseFuncCall(name string) (Expr, error) {
	p.pos++ // function name
	if !aggregateFuncs[name] && !scalarFuncs[name] {
		return nil, p.errf("unknown function %s", name)
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	fe := &FuncExpr{Name: name}
	if name == "COUNT" && p.accept(tokSymbol, "*") {
		fe.Star = true
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return fe, nil
	}
	if !p.at(tokSymbol, ")") {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fe.Args = append(fe.Args, a)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return fe, nil
}

// numberParams assigns positional indexes to Param nodes in statement
// source order (the order the lexer produced them, which matches the
// recursive-descent parse order for every clause in this grammar except
// that SELECT parses projections before FROM/WHERE — matching '?'
// placement order in the SQL text for all statements this engine accepts).
func numberParams(node interface{}, n *int) {
	switch x := node.(type) {
	case *SelectStmt:
		for _, c := range x.Columns {
			numberParams(c.Expr, n)
		}
		for _, j := range x.Joins {
			numberParams(j.On, n)
		}
		numberParams(x.Where, n)
		for _, g := range x.GroupBy {
			numberParams(g, n)
		}
		numberParams(x.Having, n)
		for _, o := range x.OrderBy {
			numberParams(o.Expr, n)
		}
		numberParams(x.Limit, n)
		numberParams(x.Offset, n)
	case *InsertStmt:
		for _, row := range x.Rows {
			for _, e := range row {
				numberParams(e, n)
			}
		}
	case *UpdateStmt:
		for _, s := range x.Sets {
			numberParams(s.Value, n)
		}
		numberParams(x.Where, n)
	case *DeleteStmt:
		numberParams(x.Where, n)
	case *Param:
		x.Index = *n
		*n++
	case *BinaryExpr:
		numberParams(x.L, n)
		numberParams(x.R, n)
	case *UnaryExpr:
		numberParams(x.X, n)
	case *IsNullExpr:
		numberParams(x.X, n)
	case *InExpr:
		numberParams(x.X, n)
		for _, e := range x.List {
			numberParams(e, n)
		}
	case *FuncExpr:
		for _, a := range x.Args {
			numberParams(a, n)
		}
	case Expr, Statement:
		// Literals, ColRefs, DDL statements: no parameters.
	case nil:
	}
}

// countParams returns the number of '?' placeholders in the statement.
func countParams(st Statement) int {
	n := 0
	var walk func(node interface{})
	walk = func(node interface{}) {
		switch x := node.(type) {
		case *SelectStmt:
			for _, c := range x.Columns {
				walk(c.Expr)
			}
			for _, j := range x.Joins {
				walk(j.On)
			}
			walk(x.Where)
			for _, g := range x.GroupBy {
				walk(g)
			}
			walk(x.Having)
			for _, o := range x.OrderBy {
				walk(o.Expr)
			}
			walk(x.Limit)
			walk(x.Offset)
		case *InsertStmt:
			for _, row := range x.Rows {
				for _, e := range row {
					walk(e)
				}
			}
		case *UpdateStmt:
			for _, s := range x.Sets {
				walk(s.Value)
			}
			walk(x.Where)
		case *DeleteStmt:
			walk(x.Where)
		case *Param:
			n++
		case *BinaryExpr:
			walk(x.L)
			walk(x.R)
		case *UnaryExpr:
			walk(x.X)
		case *IsNullExpr:
			walk(x.X)
		case *InExpr:
			walk(x.X)
			for _, e := range x.List {
				walk(e)
			}
		case *FuncExpr:
			for _, a := range x.Args {
				walk(a)
			}
		}
	}
	walk(st)
	return n
}
