package rdb

import (
	"context"
	"fmt"
	"strconv"
	"time"
)

// This file is the data tier's zero-dependency tracing seam. The rdb
// package knows nothing about the obs package; the application wires a
// TraceHooks whose Span function bridges into whatever tracing system
// owns the request context. Context-taking variants of Query/Exec/
// Commit consult the hooks once (one atomic load) and fall back to the
// plain hot path when no hook or recorder is active, so the disabled
// path stays within noise of Query itself.

// SpanFinish completes a span opened by TraceHooks.Span, attaching
// flat key/value label pairs and the outcome error (nil = success).
type SpanFinish func(err error, labels ...string)

// TraceHooks bridges data-tier execution into an external tracer.
type TraceHooks struct {
	// Span opens a span named name under ctx's active trace and returns
	// its completion function — or nil when ctx carries no trace, which
	// tells the DB to skip instrumentation entirely for this call.
	Span func(ctx context.Context, name string) SpanFinish
	// TraceID reports ctx's owning trace ID (0 when untraced); the
	// flight recorder stamps it on captured queries so /debug/queries
	// rows join against /debug/traces.
	TraceID func(ctx context.Context) uint64
}

// SetTraceHooks installs (or, with nil, removes) the data-tier trace
// hooks. Safe to call concurrently with queries.
func (db *DB) SetTraceHooks(h *TraceHooks) {
	db.hooks.Store(h)
}

// maxSQLLabel bounds the SQL text copied onto span labels.
const maxSQLLabel = 200

func truncateSQL(sql string) string {
	if len(sql) <= maxSQLLabel {
		return sql
	}
	return sql[:maxSQLLabel] + "…"
}

// QueryContext is Query plus data-tier observability: when trace hooks
// are installed and ctx carries a trace, the execution is wrapped in an
// "rdb.query" span labeled with the SQL, the chosen access path, the
// plan-cache outcome and the row count; when the flight recorder is
// enabled, executions at or above its threshold are captured with
// their analyzed plan. With neither active it delegates to Query.
func (db *DB) QueryContext(ctx context.Context, sql string, args ...Value) (*Rows, error) {
	h := db.hooks.Load()
	rec := db.recorder.Load()
	var fin SpanFinish
	if h != nil && h.Span != nil {
		fin = h.Span(ctx, "rdb.query")
	}
	if fin == nil && rec == nil {
		return db.Query(sql, args...)
	}
	st, err := db.prepare(sql)
	if err != nil {
		if fin != nil {
			fin(err)
		}
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		err := fmt.Errorf("rdb: Query requires a SELECT statement, got %T", st)
		if fin != nil {
			fin(err)
		}
		return nil, err
	}
	cargs, err := coerceArgs(st, args)
	if err != nil {
		if fin != nil {
			fin(err)
		}
		return nil, err
	}
	db.mu.RLock()
	p, hit, err := db.planForCached(sql, sel)
	if err != nil {
		db.mu.RUnlock()
		if fin != nil {
			fin(err)
		}
		return nil, err
	}
	es := newExecStats(p)
	t0 := time.Now()
	rows, err := db.execPlan(p, cargs, es)
	elapsed := time.Since(t0)
	var planText string
	if err == nil && rec != nil && elapsed >= rec.min {
		es.total = elapsed
		es.output = int64(rows.Len())
		planText = renderPlan(p, sel, es) + planCacheLine(hit)
	}
	access := p.access.pathLabel()
	db.mu.RUnlock()
	db.stats.analyzedQueries.Add(1)
	var nrows int64
	if rows != nil {
		nrows = int64(rows.Len())
	}
	if fin != nil {
		cache := "miss"
		if hit {
			cache = "hit"
		}
		fin(err,
			"sql", truncateSQL(sql),
			"access", access,
			"plan_cache", cache,
			"rows", strconv.FormatInt(nrows, 10))
	}
	if planText != "" {
		var traceID uint64
		if h != nil && h.TraceID != nil {
			traceID = h.TraceID(ctx)
		}
		rec.record(QueryRecord{
			At:       time.Now(),
			SQL:      sql,
			Params:   append([]Value(nil), cargs...),
			TraceID:  traceID,
			CacheHit: hit,
			Rows:     nrows,
			Elapsed:  elapsed,
			Plan:     planText,
		})
		db.stats.queriesRecorded.Add(1)
	}
	return rows, err
}

// ExecContext is Exec plus data-tier observability: the in-lock commit
// (statement execution, WAL append, any checkpoint) becomes an
// "rdb.exec" span labeled with the op count and the engine's append/
// checkpoint timings, and the post-lock durability wait (group-commit
// fsync) becomes an "rdb.wal.sync" span. Untraced calls delegate to
// Exec.
func (db *DB) ExecContext(ctx context.Context, sql string, args ...Value) (Result, error) {
	h := db.hooks.Load()
	var fin SpanFinish
	if h != nil && h.Span != nil {
		fin = h.Span(ctx, "rdb.exec")
	}
	if fin == nil {
		return db.Exec(sql, args...)
	}
	st, err := db.prepare(sql)
	if err != nil {
		fin(err)
		return Result{}, err
	}
	cargs, err := coerceArgs(st, args)
	if err != nil {
		fin(err)
		return Result{}, err
	}
	cs := &ChangeSet{}
	db.mu.Lock()
	res, execErr := db.execLocked(sql, st, cargs, nil, cs)
	wait, applyErr := db.applyLocked(cs)
	db.mu.Unlock()
	spanErr := execErr
	if spanErr == nil {
		spanErr = applyErr
	}
	fin(spanErr,
		"sql", truncateSQL(sql),
		"ops", strconv.Itoa(len(cs.Ops)),
		"wal_append", cs.WALAppend.String(),
		"checkpoint", cs.Checkpoint.String())
	var waitErr error
	if wait != nil {
		finSync := h.Span(ctx, "rdb.wal.sync")
		waitErr = wait()
		if finSync != nil {
			finSync(waitErr)
		}
	}
	if execErr != nil {
		return res, execErr
	}
	if applyErr != nil {
		return res, applyErr
	}
	return res, waitErr
}
