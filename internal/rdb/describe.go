package rdb

import (
	"fmt"
	"sort"
	"strings"
)

// ColumnInfo describes one column for catalog introspection.
type ColumnInfo struct {
	Name    string
	Type    ColType
	NotNull bool
	Unique  bool
	AutoInc bool
}

// TableInfo is the catalog entry of one table.
type TableInfo struct {
	Name string
	// PrimaryKey is the primary-key column name ("" if none).
	PrimaryKey  string
	Columns     []ColumnInfo
	ForeignKeys []ForeignKeyDef
	// Indexes lists hash-indexed columns; OrderedIndexes the sorted ones.
	Indexes        []string
	OrderedIndexes []string
	// CompositeIndexes maps index name -> ordered column list.
	CompositeIndexes []CompositeIndexInfo
	Rows             int
}

// CompositeIndexInfo describes one multi-column sorted index.
type CompositeIndexInfo struct {
	Name    string
	Columns []string
}

// Describe returns the catalog entry of a table — the introspection
// surface schema reverse-engineering and tooling build on.
func (db *DB) Describe(tableName string) (*TableInfo, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(tableName)]
	if !ok {
		return nil, fmt.Errorf("rdb: no such table %q", tableName)
	}
	info := &TableInfo{Name: t.name, ForeignKeys: append([]ForeignKeyDef(nil), t.fks...), Rows: t.alive}
	for i, c := range t.cols {
		info.Columns = append(info.Columns, ColumnInfo{
			Name: strings.ToLower(c.def.Name), Type: c.def.Type,
			NotNull: c.def.NotNull, Unique: c.def.Unique, AutoInc: c.def.AutoIncrement,
		})
		if i == t.pk {
			info.PrimaryKey = strings.ToLower(c.def.Name)
		}
	}
	for col := range t.indexes {
		info.Indexes = append(info.Indexes, col)
	}
	sort.Strings(info.Indexes)
	for col := range t.ordered {
		info.OrderedIndexes = append(info.OrderedIndexes, col)
	}
	sort.Strings(info.OrderedIndexes)
	for _, ix := range t.composites {
		info.CompositeIndexes = append(info.CompositeIndexes, CompositeIndexInfo{
			Name: ix.name, Columns: append([]string(nil), ix.colNames...),
		})
	}
	// Normalize FK column/table casing for callers.
	for i := range info.ForeignKeys {
		info.ForeignKeys[i].Column = strings.ToLower(info.ForeignKeys[i].Column)
		info.ForeignKeys[i].RefTable = strings.ToLower(info.ForeignKeys[i].RefTable)
		info.ForeignKeys[i].RefColumn = strings.ToLower(info.ForeignKeys[i].RefColumn)
	}
	return info, nil
}
