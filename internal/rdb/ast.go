package rdb

// Statement is a parsed SQL statement.
type Statement interface{ stmt() }

// CreateTableStmt is CREATE TABLE [IF NOT EXISTS] name (...).
type CreateTableStmt struct {
	Name        string
	IfNotExists bool
	Columns     []ColumnDef
	ForeignKeys []ForeignKeyDef
}

// ColumnDef is a column declaration inside CREATE TABLE.
type ColumnDef struct {
	Name          string
	Type          ColType
	PrimaryKey    bool
	AutoIncrement bool
	NotNull       bool
	Unique        bool
}

// ForeignKeyDef is FOREIGN KEY (col) REFERENCES table(col).
type ForeignKeyDef struct {
	Column    string
	RefTable  string
	RefColumn string
}

// CreateIndexStmt is CREATE [ORDERED] INDEX name ON table(col).
type CreateIndexStmt struct {
	Name    string
	Table   string
	Columns []string
	// Ordered selects a sorted index supporting range scans instead of
	// the default hash index.
	Ordered bool
}

// DropTableStmt is DROP TABLE [IF EXISTS] name.
type DropTableStmt struct {
	Name     string
	IfExists bool
}

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Columns  []SelectExpr // empty means "*"
	From     TableRef
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderTerm
	Limit    Expr // nil if absent
	Offset   Expr // nil if absent
}

// SelectExpr is one projected column, optionally aliased. Star marks "*"
// or "alias.*".
type SelectExpr struct {
	Expr  Expr
	Alias string
	Star  string // "" no star; "*" all; otherwise a table alias
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

func (t TableRef) name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// JoinClause is INNER or LEFT JOIN ... ON expr.
type JoinClause struct {
	Left  bool // LEFT [OUTER] JOIN if true; INNER otherwise
	Table TableRef
	On    Expr
}

// OrderTerm is one ORDER BY key.
type OrderTerm struct {
	Expr Expr
	Desc bool
}

// InsertStmt is INSERT INTO t (cols) VALUES (...), (...).
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

// UpdateStmt is UPDATE t SET col = expr, ... [WHERE expr].
type UpdateStmt struct {
	Table string
	Sets  []SetClause
	Where Expr
}

// SetClause assigns an expression to a column.
type SetClause struct {
	Column string
	Value  Expr
}

// DeleteStmt is DELETE FROM t [WHERE expr].
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*CreateTableStmt) stmt() {}
func (*CreateIndexStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*SelectStmt) stmt()      {}
func (*InsertStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}

// Expr is an expression node.
type Expr interface{ expr() }

// Literal is a constant value.
type Literal struct{ Val Value }

// Param is a '?' placeholder, resolved positionally at execution time.
type Param struct{ Index int }

// ColRef is a possibly-qualified column reference.
type ColRef struct {
	Table  string // alias or table name; "" if unqualified
	Column string
}

// BinaryExpr applies Op to two operands. Ops: = <> < <= > >= + - * /
// AND OR LIKE.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr applies Op ("NOT" or "-") to one operand.
type UnaryExpr struct {
	Op string
	X  Expr
}

// IsNullExpr is "x IS [NOT] NULL".
type IsNullExpr struct {
	X   Expr
	Not bool
}

// InExpr is "x [NOT] IN (e1, e2, ...)".
type InExpr struct {
	X    Expr
	Not  bool
	List []Expr
}

// FuncExpr is an aggregate or scalar function call. Star marks COUNT(*).
type FuncExpr struct {
	Name string // upper-cased
	Args []Expr
	Star bool
}

func (*Literal) expr()    {}
func (*Param) expr()      {}
func (*ColRef) expr()     {}
func (*BinaryExpr) expr() {}
func (*UnaryExpr) expr()  {}
func (*IsNullExpr) expr() {}
func (*InExpr) expr()     {}
func (*FuncExpr) expr()   {}

var aggregateFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// hasAggregate reports whether the expression tree contains an aggregate
// function call.
func hasAggregate(e Expr) bool {
	switch x := e.(type) {
	case *FuncExpr:
		if aggregateFuncs[x.Name] {
			return true
		}
		for _, a := range x.Args {
			if hasAggregate(a) {
				return true
			}
		}
	case *BinaryExpr:
		return hasAggregate(x.L) || hasAggregate(x.R)
	case *UnaryExpr:
		return hasAggregate(x.X)
	case *IsNullExpr:
		return hasAggregate(x.X)
	case *InExpr:
		if hasAggregate(x.X) {
			return true
		}
		for _, a := range x.List {
			if hasAggregate(a) {
				return true
			}
		}
	}
	return false
}
