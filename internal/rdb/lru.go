package rdb

import "container/list"

// lruCache is a small bounded least-recently-used cache backing the
// statement and plan caches. Descriptor-driven workloads present a
// closed set of query shapes, so in steady state everything hits; the
// bound exists so ad-hoc or fuzzed SQL cannot grow memory without
// limit. Callers provide their own locking.
type lruCache struct {
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type lruItem struct {
	key string
	val any
}

func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		cap: capacity,
		ll:  list.New(),
		m:   make(map[string]*list.Element, capacity),
	}
}

func (c *lruCache) get(key string) (any, bool) {
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruItem).val, true
}

func (c *lruCache) put(key string, val any) {
	if el, ok := c.m[key]; ok {
		el.Value.(*lruItem).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&lruItem{key: key, val: val})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*lruItem).key)
	}
}

func (c *lruCache) remove(key string) {
	if el, ok := c.m[key]; ok {
		c.ll.Remove(el)
		delete(c.m, key)
	}
}

func (c *lruCache) len() int { return c.ll.Len() }
