package rdb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Cache capacities. A WebML application's statement population is the
// closed set of descriptor queries, far below both bounds; the bounds
// exist so ad-hoc SQL (consoles, tests, fuzzing) cannot grow the caches
// without limit.
const (
	stmtCacheCap = 1024
	planCacheCap = 512
)

// DB is an embedded relational database. A DB is safe for concurrent
// use: reads take a shared lock, writes an exclusive lock, and
// Snapshot reads take no lock at all (mvcc.go). Storage is pluggable:
// the default engine keeps everything in memory; OpenDurable attaches
// a WAL + page-file engine that persists every commit (durable.go).
type DB struct {
	mu     sync.RWMutex
	tables map[string]*table // lower(name) -> table
	// ddlEpoch increments on every schema change (CREATE TABLE, CREATE
	// INDEX, DROP TABLE); compiled plans pin the epoch they were built
	// under and are discarded when it moves. Guarded by mu.
	ddlEpoch uint64
	// seq numbers commits; assigned under mu, carried by change-sets
	// into the engine and by published heads into snapshots.
	seq uint64
	// engine persists committed change-sets; never nil (memEngine by
	// default). Guarded by mu for Apply/Checkpoint/Close.
	engine Engine
	// head is the published MVCC snapshot state (mvcc.go).
	head atomic.Pointer[snapState]

	stmtMu    sync.Mutex
	stmtCache *lruCache // sql -> Statement

	planMu    sync.Mutex
	planCache *lruCache // sql -> *SelectPlan

	// hooks, when set, bridge query/commit execution into an external
	// tracing system (context.go); recorder, when set, captures slow
	// queries with their analyzed plans (recorder.go). Both are atomic
	// pointers so the hot path pays one load to find them absent.
	hooks    atomic.Pointer[TraceHooks]
	recorder atomic.Pointer[queryRecorder]

	// faultObs, when set, observes the latency of every row fault the
	// paging engine serves from the page tree (metrics wiring). Atomic:
	// snapshot faults run with no database lock held.
	faultObs atomic.Pointer[func(time.Duration)]

	stats dbStats
}

// SetFaultObserver installs fn to be called with the latency of each
// row fault (an evicted or uncached record materialized from the page
// store). Pass nil behavior by never setting it; installation is
// one-way and safe to call at any time.
func (db *DB) SetFaultObserver(fn func(time.Duration)) {
	db.faultObs.Store(&fn)
}

// observeFault reports one row-fault latency to the installed observer,
// if any. Called by the durable engine on the fault path.
func (db *DB) observeFault(d time.Duration) {
	if f := db.faultObs.Load(); f != nil && *f != nil {
		(*f)(d)
	}
}

// dbStats are monotonic counters kept atomic so queries under the
// shared read lock can update them.
type dbStats struct {
	stmtHits, stmtMisses                atomic.Uint64
	planHits, planMisses                atomic.Uint64
	pointLookups, rangeScans, fullScans atomic.Uint64
	indexedJoins, loopJoins             atomic.Uint64
	sortsEliminated                     atomic.Uint64
	snapshotsTaken                      atomic.Uint64
	activeSnapshots                     atomic.Int64
	analyzedQueries                     atomic.Uint64
	queriesRecorded                     atomic.Uint64
}

// DBStats is a point-in-time snapshot of the database's internal
// counters, exported for the observability registry.
type DBStats struct {
	StmtCacheHits, StmtCacheMisses uint64
	PlanCacheHits, PlanCacheMisses uint64
	PointLookups                   uint64
	RangeScans                     uint64
	FullScans                      uint64
	IndexedJoins, LoopJoins        uint64
	SortsEliminated                uint64
	SnapshotsTaken                 uint64
	ActiveSnapshots                int64
	HeadSeq                        uint64
	// AnalyzedQueries counts executions that collected per-operator
	// actuals (EXPLAIN ANALYZE, traced queries, recorder candidates);
	// QueriesRecorded counts entries pushed into the flight recorder.
	AnalyzedQueries uint64
	QueriesRecorded uint64
}

// Stats returns a snapshot of the query-engine counters.
func (db *DB) Stats() DBStats {
	return DBStats{
		StmtCacheHits:   db.stats.stmtHits.Load(),
		StmtCacheMisses: db.stats.stmtMisses.Load(),
		PlanCacheHits:   db.stats.planHits.Load(),
		PlanCacheMisses: db.stats.planMisses.Load(),
		PointLookups:    db.stats.pointLookups.Load(),
		RangeScans:      db.stats.rangeScans.Load(),
		FullScans:       db.stats.fullScans.Load(),
		IndexedJoins:    db.stats.indexedJoins.Load(),
		LoopJoins:       db.stats.loopJoins.Load(),
		SortsEliminated: db.stats.sortsEliminated.Load(),
		SnapshotsTaken:  db.stats.snapshotsTaken.Load(),
		ActiveSnapshots: db.stats.activeSnapshots.Load(),
		HeadSeq:         db.head.Load().seq,
		AnalyzedQueries: db.stats.analyzedQueries.Load(),
		QueriesRecorded: db.stats.queriesRecorded.Load(),
	}
}

// EngineName identifies the attached storage engine.
func (db *DB) EngineName() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.engine.Name()
}

// EngineStats reports the storage engine's durability counters (zeros
// for the in-memory engine).
func (db *DB) EngineStats() EngineStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.engine.Stats()
}

// Checkpoint forces the engine to compact its persistent state (a
// no-op for the in-memory engine). Writers wait while it runs.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.engine.Checkpoint()
}

// Close flushes and detaches the storage engine. The database remains
// queryable in memory, but further writes will fail on a durable
// engine's closed files.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.engine.Close()
}

// Open returns an empty database on the in-memory engine.
func Open() *DB {
	db := &DB{
		tables:    make(map[string]*table),
		engine:    memEngine{},
		stmtCache: newLRU(stmtCacheCap),
		planCache: newLRU(planCacheCap),
	}
	db.publishHead()
	return db
}

// Result reports the outcome of a write statement.
type Result struct {
	RowsAffected int
	LastInsertID int64
}

// Rows is a fully materialized query result.
type Rows struct {
	Columns []string
	Data    [][]Value
}

// Len returns the number of result rows.
func (r *Rows) Len() int { return len(r.Data) }

// Col returns the index of the named column (case-insensitive), or -1.
func (r *Rows) Col(name string) int {
	for i, c := range r.Columns {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// Maps converts the result into one map per row keyed by column name.
func (r *Rows) Maps() []map[string]Value {
	out := make([]map[string]Value, len(r.Data))
	for i, row := range r.Data {
		m := make(map[string]Value, len(r.Columns))
		for j, c := range r.Columns {
			m[c] = row[j]
		}
		out[i] = m
	}
	return out
}

// prepare parses sql, consulting the statement cache first.
func (db *DB) prepare(sql string) (Statement, error) {
	db.stmtMu.Lock()
	v, ok := db.stmtCache.get(sql)
	db.stmtMu.Unlock()
	if ok {
		db.stats.stmtHits.Add(1)
		return v.(Statement), nil
	}
	db.stats.stmtMisses.Add(1)
	st, err := ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	db.stmtMu.Lock()
	db.stmtCache.put(sql, st)
	db.stmtMu.Unlock()
	return st, nil
}

// planFor returns the compiled plan for sql, building and caching it on
// first use. A cached plan is revalidated against the current DDL epoch
// and table size classes and rebuilt when stale, so CREATE INDEX or
// substantial data growth take effect on the next query. The caller
// must hold at least a read lock on db.mu.
func (db *DB) planFor(sql string, sel *SelectStmt) (*SelectPlan, error) {
	p, _, err := db.planForCached(sql, sel)
	return p, err
}

// planForCached is planFor plus cache provenance: hit reports whether
// the returned plan came from the plan cache (true) or was compiled by
// this call (false) — the marker EXPLAIN surfaces.
func (db *DB) planForCached(sql string, sel *SelectStmt) (p *SelectPlan, hit bool, err error) {
	db.planMu.Lock()
	if v, ok := db.planCache.get(sql); ok {
		p := v.(*SelectPlan)
		if p.valid(db) {
			db.planMu.Unlock()
			db.stats.planHits.Add(1)
			return p, true, nil
		}
		db.planCache.remove(sql)
	}
	db.planMu.Unlock()
	db.stats.planMisses.Add(1)
	p, err = db.buildPlan(sel)
	if err != nil {
		return nil, false, err
	}
	db.planMu.Lock()
	db.planCache.put(sql, p)
	db.planMu.Unlock()
	return p, false, nil
}

// InvalidatePlan drops the compiled plan cached for the given SQL text,
// if any. Descriptor hot-swaps (OverrideQuery) call it so a replaced
// query cannot be served from a stale compilation.
func (db *DB) InvalidatePlan(sql string) {
	db.planMu.Lock()
	db.planCache.remove(sql)
	db.planMu.Unlock()
}

// Exec runs a write or DDL statement. SELECT is rejected; use Query.
// The call returns once the change is durable under the attached
// engine (immediately, for the in-memory engine).
func (db *DB) Exec(sql string, args ...Value) (Result, error) {
	st, err := db.prepare(sql)
	if err != nil {
		return Result{}, err
	}
	cargs, err := coerceArgs(st, args)
	if err != nil {
		return Result{}, err
	}
	cs := &ChangeSet{}
	db.mu.Lock()
	res, execErr := db.execLocked(sql, st, cargs, nil, cs)
	// A failed statement may still have applied some operations (a
	// multi-row INSERT rejecting its second row keeps the first, with
	// no undo log in auto-commit mode); those must reach the engine so
	// memory and durable state stay identical.
	wait, applyErr := db.applyLocked(cs)
	db.mu.Unlock()
	var waitErr error
	if wait != nil {
		waitErr = wait()
	}
	if execErr != nil {
		return res, execErr
	}
	if applyErr != nil {
		return res, applyErr
	}
	return res, waitErr
}

// applyLocked commits a collected change-set: assigns its sequence
// number, hands it to the engine and publishes the new MVCC head. It
// returns the engine's durability wait function, to be called after
// the exclusive lock is released (that ordering is what lets the
// engine batch fsyncs across concurrent committers). The caller must
// hold the exclusive lock. Empty change-sets are a no-op.
func (db *DB) applyLocked(cs *ChangeSet) (func() error, error) {
	if len(cs.Ops) == 0 {
		return nil, nil
	}
	db.seq++
	cs.Seq = db.seq
	wait, err := db.engine.Apply(cs)
	// The in-memory mutation already happened: publish it even when the
	// engine rejects the change-set, so readers and snapshots stay
	// consistent with memory. Engines fail stickily, so the divergence
	// surfaces on this and every later commit rather than silently.
	db.publishHead()
	if err != nil {
		return nil, err
	}
	return wait, nil
}

// applyDDLInTx commits a DDL-only change-set to the engine from inside
// an open transaction WITHOUT publishing a new head: the transaction's
// row writes are uncommitted and snapshots must not see them. The head
// catches up at Commit or Rollback. The caller must hold the exclusive
// lock.
func (db *DB) applyDDLInTx(cs *ChangeSet) (func() error, error) {
	if len(cs.Ops) == 0 {
		return nil, nil
	}
	db.seq++
	cs.Seq = db.seq
	return db.engine.Apply(cs)
}

// Query runs a SELECT through its compiled plan and returns the
// materialized result. The plan is compiled once per SQL text and
// reused across calls with different parameters.
func (db *DB) Query(sql string, args ...Value) (*Rows, error) {
	st, err := db.prepare(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("rdb: Query requires a SELECT statement, got %T", st)
	}
	cargs, err := coerceArgs(st, args)
	if err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	p, err := db.planFor(sql, sel)
	if err != nil {
		return nil, err
	}
	return db.execPlan(p, cargs, nil)
}

// QueryInterpreted runs a SELECT through the retained AST interpreter,
// bypassing the plan compiler. It exists as the reference
// implementation for differential tests and benchmarks; results must be
// identical to Query's.
func (db *DB) QueryInterpreted(sql string, args ...Value) (*Rows, error) {
	st, err := db.prepare(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("rdb: Query requires a SELECT statement, got %T", st)
	}
	cargs, err := coerceArgs(st, args)
	if err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.execSelect(sel, cargs)
}

// QueryRow runs a SELECT expected to return at most one row. It returns
// nil when the result is empty.
func (db *DB) QueryRow(sql string, args ...Value) (map[string]Value, error) {
	rows, err := db.Query(sql, args...)
	if err != nil {
		return nil, err
	}
	if rows.Len() == 0 {
		return nil, nil
	}
	return rows.Maps()[0], nil
}

// TableNames returns the names of all tables, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		names = append(names, t.name)
	}
	sort.Strings(names)
	return names
}

// RowCount returns the number of live rows in the named table.
func (db *DB) RowCount(tableName string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(tableName)]
	if !ok {
		return 0, fmt.Errorf("rdb: no such table %q", tableName)
	}
	return t.alive, nil
}

func coerceArgs(st Statement, args []Value) ([]Value, error) {
	want := countParams(st)
	if len(args) != want {
		return nil, fmt.Errorf("rdb: statement needs %d parameters, got %d", want, len(args))
	}
	out := make([]Value, len(args))
	for i, a := range args {
		v, err := coerce(a)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// execLocked dispatches a non-SELECT statement. The caller must hold
// the write lock. If undo is non-nil, inverse operations are appended
// to it. If cs is non-nil, applied operations are recorded for the
// storage engine: row ops per affected row, DDL as its SQL text (only
// when it actually changed the schema — IF [NOT] EXISTS no-ops log
// nothing).
func (db *DB) execLocked(sql string, st Statement, args []Value, undo *undoLog, cs *ChangeSet) (Result, error) {
	switch x := st.(type) {
	case *CreateTableStmt, *CreateIndexStmt, *DropTableStmt:
		epochBefore := db.ddlEpoch
		var res Result
		var err error
		switch d := x.(type) {
		case *CreateTableStmt:
			res, err = db.execCreateTable(d)
		case *CreateIndexStmt:
			res, err = db.execCreateIndex(d)
		case *DropTableStmt:
			res, err = db.execDropTable(d)
		}
		if err == nil && cs != nil && db.ddlEpoch != epochBefore {
			cs.add(ChangeOp{Kind: OpDDL, SQL: sql})
		}
		return res, err
	case *InsertStmt:
		return db.execInsert(x, args, undo, cs)
	case *UpdateStmt:
		return db.execUpdate(x, args, undo, cs)
	case *DeleteStmt:
		return db.execDelete(x, args, undo, cs)
	case *SelectStmt:
		return Result{}, fmt.Errorf("rdb: use Query for SELECT")
	}
	return Result{}, fmt.Errorf("rdb: unsupported statement %T", st)
}

func (db *DB) execCreateTable(st *CreateTableStmt) (Result, error) {
	key := strings.ToLower(st.Name)
	if _, exists := db.tables[key]; exists {
		if st.IfNotExists {
			return Result{}, nil
		}
		return Result{}, fmt.Errorf("rdb: table %q already exists", st.Name)
	}
	for _, fk := range st.ForeignKeys {
		if _, ok := db.tables[strings.ToLower(fk.RefTable)]; !ok && !strings.EqualFold(fk.RefTable, st.Name) {
			return Result{}, fmt.Errorf("rdb: foreign key references unknown table %q", fk.RefTable)
		}
	}
	t, err := newTable(st)
	if err != nil {
		return Result{}, err
	}
	db.tables[key] = t
	db.ddlEpoch++
	return Result{}, nil
}

func (db *DB) execCreateIndex(st *CreateIndexStmt) (Result, error) {
	t, ok := db.tables[strings.ToLower(st.Table)]
	if !ok {
		return Result{}, fmt.Errorf("rdb: no such table %q", st.Table)
	}
	// A multi-column index is one composite sorted index over the column
	// list; a single-column one keeps the seed's hash / ordered forms.
	if len(st.Columns) > 1 {
		name := st.Name
		if name == "" {
			name = strings.ToLower(st.Table) + "_" + strings.Join(st.Columns, "_")
		}
		if err := t.createCompositeIndex(name, st.Columns); err != nil {
			return Result{}, err
		}
		db.ddlEpoch++
		return Result{}, nil
	}
	for _, col := range st.Columns {
		var err error
		if st.Ordered {
			err = t.createOrderedIndex(col)
		} else {
			err = t.createIndex(col)
		}
		if err != nil {
			return Result{}, err
		}
	}
	db.ddlEpoch++
	return Result{}, nil
}

func (db *DB) execDropTable(st *DropTableStmt) (Result, error) {
	key := strings.ToLower(st.Name)
	if _, ok := db.tables[key]; !ok {
		if st.IfExists {
			return Result{}, nil
		}
		return Result{}, fmt.Errorf("rdb: no such table %q", st.Name)
	}
	delete(db.tables, key)
	db.ddlEpoch++
	return Result{}, nil
}

func (db *DB) execInsert(st *InsertStmt, args []Value, undo *undoLog, cs *ChangeSet) (Result, error) {
	t, ok := db.tables[strings.ToLower(st.Table)]
	if !ok {
		return Result{}, fmt.Errorf("rdb: no such table %q", st.Table)
	}
	colPos := make([]int, len(st.Columns))
	for i, c := range st.Columns {
		pos, ok := t.col(c)
		if !ok {
			return Result{}, fmt.Errorf("rdb: no column %q in table %q", c, st.Table)
		}
		colPos[i] = pos
	}
	res := Result{}
	for _, exprRow := range st.Rows {
		row := make(Row, len(t.cols))
		for i, e := range exprRow {
			v, err := evalConst(e, args)
			if err != nil {
				return res, err
			}
			cv, err := coerceToCol(v, t.cols[colPos[i]].def.Type)
			if err != nil {
				return res, fmt.Errorf("%w (column %s)", err, st.Columns[i])
			}
			row[colPos[i]] = cv
		}
		if err := db.checkForeignKeys(t, row); err != nil {
			return res, err
		}
		id, err := t.insert(row)
		if err != nil {
			return res, err
		}
		if undo != nil {
			undo.add(undoEntry{table: t, op: undoInsert, rowID: id})
		}
		if cs != nil {
			// row now carries any assigned auto-increment key.
			cs.add(ChangeOp{Kind: OpInsert, Table: lowerKey(st.Table), RowID: id, Row: row})
		}
		res.RowsAffected++
		if t.pk >= 0 {
			if iv, ok := row[t.pk].(int64); ok {
				res.LastInsertID = iv
			}
		}
	}
	return res, nil
}

func (db *DB) checkForeignKeys(t *table, row Row) error {
	for _, fk := range t.fks {
		i, _ := t.col(fk.Column)
		v := row[i]
		if v == nil {
			continue
		}
		ref, ok := db.tables[strings.ToLower(fk.RefTable)]
		if !ok {
			return fmt.Errorf("rdb: foreign key references missing table %q", fk.RefTable)
		}
		ids, indexed := ref.lookup(fk.RefColumn, v)
		if indexed {
			if len(ids) == 0 {
				return fmt.Errorf("rdb: foreign key violation: %s.%s = %v not in %s.%s",
					t.name, fk.Column, v, fk.RefTable, fk.RefColumn)
			}
			continue
		}
		// Unindexed referenced column: scan.
		ri, ok := ref.col(fk.RefColumn)
		if !ok {
			return fmt.Errorf("rdb: foreign key references missing column %s.%s", fk.RefTable, fk.RefColumn)
		}
		found := false
		for id := range ref.rows {
			if r := ref.rowAt(id); r != nil && r[ri] == v {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("rdb: foreign key violation: %s.%s = %v not in %s.%s",
				t.name, fk.Column, v, fk.RefTable, fk.RefColumn)
		}
	}
	return nil
}

func (db *DB) execUpdate(st *UpdateStmt, args []Value, undo *undoLog, cs *ChangeSet) (Result, error) {
	t, ok := db.tables[strings.ToLower(st.Table)]
	if !ok {
		return Result{}, fmt.Errorf("rdb: no such table %q", st.Table)
	}
	setPos := make([]int, len(st.Sets))
	for i, s := range st.Sets {
		pos, ok := t.col(s.Column)
		if !ok {
			return Result{}, fmt.Errorf("rdb: no column %q in table %q", s.Column, st.Table)
		}
		setPos[i] = pos
	}
	ids, err := db.matchRows(t, st.Table, st.Where, args)
	if err != nil {
		return Result{}, err
	}
	res := Result{}
	for _, id := range ids {
		old := t.rowAt(id)
		newRow := make(Row, len(old))
		copy(newRow, old)
		env := singleEnv(t, st.Table, old)
		for i, s := range st.Sets {
			v, err := evalExpr(s.Value, env, args)
			if err != nil {
				return res, err
			}
			cv, err := coerceToCol(v, t.cols[setPos[i]].def.Type)
			if err != nil {
				return res, fmt.Errorf("%w (column %s)", err, s.Column)
			}
			newRow[setPos[i]] = cv
		}
		if err := db.checkForeignKeys(t, newRow); err != nil {
			return res, err
		}
		if err := t.updateRow(id, newRow); err != nil {
			return res, err
		}
		if undo != nil {
			oldCopy := make(Row, len(old))
			copy(oldCopy, old)
			undo.add(undoEntry{table: t, op: undoUpdate, rowID: id, oldRow: oldCopy})
		}
		if cs != nil {
			cs.add(ChangeOp{Kind: OpUpdate, Table: lowerKey(st.Table), RowID: id, Row: newRow, OldRow: old})
		}
		res.RowsAffected++
	}
	return res, nil
}

func (db *DB) execDelete(st *DeleteStmt, args []Value, undo *undoLog, cs *ChangeSet) (Result, error) {
	t, ok := db.tables[strings.ToLower(st.Table)]
	if !ok {
		return Result{}, fmt.Errorf("rdb: no such table %q", st.Table)
	}
	ids, err := db.matchRows(t, st.Table, st.Where, args)
	if err != nil {
		return Result{}, err
	}
	res := Result{}
	for _, id := range ids {
		old := t.deleteRow(id)
		if old == nil {
			continue
		}
		if undo != nil {
			undo.add(undoEntry{table: t, op: undoDelete, rowID: id, oldRow: old})
		}
		if cs != nil {
			cs.add(ChangeOp{Kind: OpDelete, Table: lowerKey(st.Table), RowID: id, OldRow: old})
		}
		res.RowsAffected++
	}
	return res, nil
}

// matchRows returns the ids of rows in t matching the WHERE expression,
// using an index lookup when an equality conjunct permits.
func (db *DB) matchRows(t *table, tableName string, where Expr, args []Value) ([]int, error) {
	candidates, err := candidateIDs(t, tableName, where, args)
	if err != nil {
		return nil, err
	}
	var ids []int
	for _, id := range candidates {
		r := t.rowAt(id)
		if r == nil {
			continue
		}
		if where != nil {
			env := singleEnv(t, tableName, r)
			v, err := evalExpr(where, env, args)
			if err != nil {
				return nil, err
			}
			if !truthy(v) {
				continue
			}
		}
		ids = append(ids, id)
	}
	return ids, nil
}
