package rdb

import (
	"fmt"
	"strings"
)

// Row is one stored tuple. Its layout matches the table's column order.
type Row []Value

// column is the runtime schema of one column.
type column struct {
	def ColumnDef
}

// table is the runtime representation of a relation: schema, row storage,
// the primary-key map, and secondary hash indexes.
type table struct {
	name    string
	cols    []column
	colIdx  map[string]int // lower(name) -> position
	pk      int            // primary key column position, -1 if none
	autoInc int64
	fks     []ForeignKeyDef

	rows  []Row // nil entries are deleted rows
	alive int   // count of live rows
	// resident counts slots holding materialized rows (alive minus
	// eviction markers); the paging engine uses it to drive sweeps.
	resident int
	// shared marks rows as referenced by a published MVCC snapshot
	// (mvcc.go): in-place slot writes must clone the slice first.
	// Appends are exempt — a frozen view never reads past its length.
	shared bool
	// fetch, when a paging engine backs the table, materializes an
	// evicted record: it resolves rec against the version retention
	// buffer for snapshot reads (snapSeq < liveSeq) and the row cache /
	// page store otherwise. Nil on purely in-memory tables.
	fetch func(rec uint64, snapSeq uint64) (Row, bool)
	// snapSeq is the visibility horizon fetch resolves against:
	// liveSeq on live tables, the captured commit on frozen views.
	snapSeq uint64
	// pkByRec marks int-keyed engine tables whose record ids are the
	// primary-key values themselves (recID = pkRecID(pk)); the snapshot
	// planner needs it to justify a point fetch by key.
	pkByRec bool
	// snapPK is meaningful only on frozen snapshot views: the primary-key
	// column position when a record-store point fetch is possible, else
	// -1. Live tables never consult it.
	snapPK int
	pkMap  map[Value]int
	// indexes maps lower(column name) -> value -> row ids. The primary key
	// is indexed through pkMap instead.
	indexes map[string]map[Value][]int
	uniques map[string]map[Value]int
	// ordered maps lower(column name) -> sorted index (range scans).
	ordered map[string]*orderedIndex
	// composites are multi-column sorted indexes (see index.go).
	composites []*compositeIndex
}

func errNoColumn(table, col string) error {
	return fmt.Errorf("rdb: no column %q in table %q", col, table)
}

// liveSeq is the visibility horizon of live (non-snapshot) tables:
// fetch resolves to the current committed record.
const liveSeq = ^uint64(0)

// evictedRef is the single Value of an eviction marker: a row slot
// whose data was paged out, holding only the storage-engine record id
// needed to fault it back in. Index structures keep the slot's row id,
// so markers are invisible to access-path selection.
type evictedRef struct{ rec uint64 }

func evictedRowMark(rec uint64) Row { return Row{Value(evictedRef{rec})} }

// evictedRec reports whether r is an eviction marker and, if so, the
// record id it points at.
func evictedRec(r Row) (uint64, bool) {
	if len(r) == 1 {
		if ev, ok := r[0].(evictedRef); ok {
			return ev.rec, true
		}
	}
	return 0, false
}

// rowAt materializes the row in slot id, faulting evicted rows in
// through the storage engine. Deleted slots return nil. The result
// must be treated as immutable; the slot itself is not repopulated
// (readers hold only the shared lock).
func (t *table) rowAt(id int) Row {
	r := t.rows[id]
	if r == nil {
		return nil
	}
	if rec, ok := evictedRec(r); ok {
		if t.fetch == nil {
			return nil
		}
		row, ok := t.fetch(rec, t.snapSeq)
		if !ok {
			return nil
		}
		return row
	}
	return r
}

// evictSlot replaces a resident row with an eviction marker pointing
// at its engine record. The caller holds the exclusive lock and has
// made the record durably readable through t.fetch.
func (t *table) evictSlot(id int, rec uint64) {
	r := t.rows[id]
	if r == nil {
		return
	}
	if _, ok := evictedRec(r); ok {
		return
	}
	t.cowRows()
	t.rows[id] = evictedRowMark(rec)
	t.resident--
}

func newTable(st *CreateTableStmt) (*table, error) {
	t := &table{
		name:    st.Name,
		pk:      -1,
		colIdx:  make(map[string]int, len(st.Columns)),
		pkMap:   make(map[Value]int),
		indexes: make(map[string]map[Value][]int),
		uniques: make(map[string]map[Value]int),
		ordered: make(map[string]*orderedIndex),
		fks:     st.ForeignKeys,
	}
	for i, cd := range st.Columns {
		lower := strings.ToLower(cd.Name)
		if _, dup := t.colIdx[lower]; dup {
			return nil, fmt.Errorf("rdb: duplicate column %q in table %q", cd.Name, st.Name)
		}
		t.colIdx[lower] = i
		t.cols = append(t.cols, column{def: cd})
		if cd.PrimaryKey {
			if t.pk >= 0 {
				return nil, fmt.Errorf("rdb: table %q has multiple primary keys", st.Name)
			}
			t.pk = i
		}
		if cd.Unique {
			t.uniques[lower] = make(map[Value]int)
		}
	}
	for _, fk := range st.ForeignKeys {
		if _, ok := t.colIdx[strings.ToLower(fk.Column)]; !ok {
			return nil, fmt.Errorf("rdb: foreign key on unknown column %q in %q", fk.Column, st.Name)
		}
	}
	return t, nil
}

func (t *table) columnNames() []string {
	names := make([]string, len(t.cols))
	for i, c := range t.cols {
		names[i] = c.def.Name
	}
	return names
}

func (t *table) col(name string) (int, bool) {
	i, ok := t.colIdx[strings.ToLower(name)]
	return i, ok
}

// insert stores a new row (already coerced to column types) and maintains
// the primary key and secondary indexes. It returns the row id.
func (t *table) insert(r Row) (int, error) {
	if t.pk >= 0 {
		pkv := r[t.pk]
		if pkv == nil {
			if !t.cols[t.pk].def.AutoIncrement {
				return 0, fmt.Errorf("rdb: NULL primary key in table %q", t.name)
			}
			t.autoInc++
			pkv = t.autoInc
			r[t.pk] = pkv
		} else if iv, ok := pkv.(int64); ok && iv > t.autoInc {
			t.autoInc = iv
		}
		if _, exists := t.pkMap[pkv]; exists {
			return 0, fmt.Errorf("rdb: duplicate primary key %v in table %q", pkv, t.name)
		}
	}
	for colName, u := range t.uniques {
		i := t.colIdx[colName]
		if r[i] == nil {
			continue
		}
		if _, exists := u[r[i]]; exists {
			return 0, fmt.Errorf("rdb: unique constraint violated on %s.%s", t.name, colName)
		}
	}
	for i, c := range t.cols {
		if c.def.NotNull && r[i] == nil && !(i == t.pk && c.def.AutoIncrement) {
			return 0, fmt.Errorf("rdb: NULL in NOT NULL column %s.%s", t.name, c.def.Name)
		}
	}
	id := len(t.rows)
	t.rows = append(t.rows, r)
	t.alive++
	t.resident++
	t.indexRow(id, r)
	return id, nil
}

func (t *table) indexRow(id int, r Row) {
	if t.pk >= 0 && r[t.pk] != nil {
		t.pkMap[r[t.pk]] = id
	}
	for colName, idx := range t.indexes {
		i := t.colIdx[colName]
		if r[i] != nil {
			idx[r[i]] = append(idx[r[i]], id)
		}
	}
	for colName, u := range t.uniques {
		i := t.colIdx[colName]
		if r[i] != nil {
			u[r[i]] = id
		}
	}
	for colName, ix := range t.ordered {
		i := t.colIdx[colName]
		if r[i] != nil {
			ix.insert(r[i], id)
		}
	}
	for _, ix := range t.composites {
		ix.insert(r, id)
	}
}

func (t *table) unindexRow(id int, r Row) {
	if t.pk >= 0 && r[t.pk] != nil {
		delete(t.pkMap, r[t.pk])
	}
	for colName, idx := range t.indexes {
		i := t.colIdx[colName]
		if r[i] == nil {
			continue
		}
		ids := idx[r[i]]
		for j, rid := range ids {
			if rid == id {
				idx[r[i]] = append(ids[:j], ids[j+1:]...)
				break
			}
		}
		if len(idx[r[i]]) == 0 {
			delete(idx, r[i])
		}
	}
	for colName, u := range t.uniques {
		i := t.colIdx[colName]
		if r[i] != nil {
			delete(u, r[i])
		}
	}
	for colName, ix := range t.ordered {
		i := t.colIdx[colName]
		if r[i] != nil {
			ix.remove(r[i], id)
		}
	}
	for _, ix := range t.composites {
		ix.remove(r, id)
	}
}

// cowRows makes t.rows safe for in-place slot writes, cloning the
// slice when a published snapshot still shares its backing array.
func (t *table) cowRows() {
	if t.shared {
		t.rows = append(make([]Row, 0, len(t.rows)+8), t.rows...)
		t.shared = false
	}
}

// deleteRow tombstones the row and fixes indexes. It returns the old
// row, faulting it in first when the slot was evicted (indexes are
// unwound against real column values).
func (t *table) deleteRow(id int) Row {
	r := t.rows[id]
	if r == nil {
		return nil
	}
	wasResident := true
	if _, ok := evictedRec(r); ok {
		wasResident = false
		if r = t.rowAt(id); r == nil {
			return nil
		}
	}
	t.unindexRow(id, r)
	t.cowRows()
	t.rows[id] = nil
	t.alive--
	if wasResident {
		t.resident--
	}
	return r
}

// restoreRow undoes a delete (transaction rollback support).
func (t *table) restoreRow(id int, r Row) {
	t.cowRows()
	t.rows[id] = r
	t.alive++
	t.resident++
	t.indexRow(id, r)
}

// updateRow replaces the row in place, maintaining indexes, after checking
// uniqueness constraints for the new image.
func (t *table) updateRow(id int, newRow Row) error {
	wasResident := true
	if _, ok := evictedRec(t.rows[id]); ok {
		wasResident = false
	}
	old := t.rowAt(id)
	if t.pk >= 0 && newRow[t.pk] != old[t.pk] {
		if newRow[t.pk] == nil {
			return fmt.Errorf("rdb: NULL primary key in table %q", t.name)
		}
		if other, exists := t.pkMap[newRow[t.pk]]; exists && other != id {
			return fmt.Errorf("rdb: duplicate primary key %v in table %q", newRow[t.pk], t.name)
		}
	}
	for colName, u := range t.uniques {
		i := t.colIdx[colName]
		if newRow[i] == nil || newRow[i] == old[i] {
			continue
		}
		if other, exists := u[newRow[i]]; exists && other != id {
			return fmt.Errorf("rdb: unique constraint violated on %s.%s", t.name, colName)
		}
	}
	for i, c := range t.cols {
		if c.def.NotNull && newRow[i] == nil {
			return fmt.Errorf("rdb: NULL in NOT NULL column %s.%s", t.name, c.def.Name)
		}
	}
	t.unindexRow(id, old)
	t.cowRows()
	t.rows[id] = newRow
	if !wasResident {
		t.resident++
	}
	t.indexRow(id, newRow)
	return nil
}

// createIndex builds a hash index over one column.
func (t *table) createIndex(colName string) error {
	lower := strings.ToLower(colName)
	i, ok := t.colIdx[lower]
	if !ok {
		return fmt.Errorf("rdb: no column %q in table %q", colName, t.name)
	}
	if _, exists := t.indexes[lower]; exists {
		return nil
	}
	idx := make(map[Value][]int)
	for id := range t.rows {
		r := t.rowAt(id)
		if r == nil || r[i] == nil {
			continue
		}
		idx[r[i]] = append(idx[r[i]], id)
	}
	t.indexes[lower] = idx
	return nil
}

// lookup returns candidate row ids for col = v via the best access path:
// primary key map, secondary index, or full scan.
func (t *table) lookup(colName string, v Value) ([]int, bool) {
	lower := strings.ToLower(colName)
	i, ok := t.colIdx[lower]
	if !ok {
		return nil, false
	}
	if i == t.pk {
		if id, ok := t.pkMap[v]; ok {
			return []int{id}, true
		}
		return nil, true
	}
	if idx, ok := t.indexes[lower]; ok {
		return idx[v], true
	}
	if u, ok := t.uniques[lower]; ok {
		if id, ok := u[v]; ok {
			return []int{id}, true
		}
		return nil, true
	}
	return nil, false
}
