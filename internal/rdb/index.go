package rdb

import "sort"

// compositeIndex is a multi-column sorted secondary index. Entries are
// kept ordered by the column tuple — NULLs first, mirroring ORDER BY
// ASC semantics — then by row id, so an equality prefix becomes a
// binary search, a range predicate on the column after the prefix
// narrows the same segment, and ORDER BY over the key columns can read
// rows in index order with no sort. Unlike the single-column
// orderedIndex, rows with NULL key values are indexed, which makes a
// full index walk a complete ordered view of the table.
type compositeIndex struct {
	name     string
	colNames []string // lower-cased, in key order
	cols     []int    // column positions, parallel to colNames
	entries  []compEntry
}

type compEntry struct {
	key []Value
	id  int
}

// compareNullable orders two values with SQL ORDER BY ASC semantics:
// NULL sorts before everything. Heterogeneous non-nil values cannot
// occur inside one column (values are coerced to the column type on
// insert), so the compareValues error branch is unreachable in keys.
func compareNullable(a, b Value) int {
	if a == nil {
		if b == nil {
			return 0
		}
		return -1
	}
	if b == nil {
		return 1
	}
	c, err := compareValues(a, b)
	if err != nil {
		return 0
	}
	return c
}

// compareTuplePrefix lexicographically compares the first n columns of
// two keys.
func compareTuplePrefix(a, b []Value, n int) int {
	for i := 0; i < n; i++ {
		if c := compareNullable(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}

func (ix *compositeIndex) keyOf(r Row) []Value {
	key := make([]Value, len(ix.cols))
	for i, c := range ix.cols {
		key[i] = r[c]
	}
	return key
}

// search returns the position of the first entry >= (key, id).
func (ix *compositeIndex) search(key []Value, id int) int {
	return sort.Search(len(ix.entries), func(i int) bool {
		e := &ix.entries[i]
		if c := compareTuplePrefix(e.key, key, len(key)); c != 0 {
			return c > 0
		}
		return e.id >= id
	})
}

func (ix *compositeIndex) insert(r Row, id int) {
	key := ix.keyOf(r)
	pos := ix.search(key, id)
	ix.entries = append(ix.entries, compEntry{})
	copy(ix.entries[pos+1:], ix.entries[pos:])
	ix.entries[pos] = compEntry{key: key, id: id}
}

func (ix *compositeIndex) remove(r Row, id int) {
	key := ix.keyOf(r)
	pos := ix.search(key, id)
	if pos < len(ix.entries) && ix.entries[pos].id == id &&
		compareTuplePrefix(ix.entries[pos].key, key, len(key)) == 0 {
		ix.entries = append(ix.entries[:pos], ix.entries[pos+1:]...)
	}
}

// eqRange returns the half-open entry range whose keys start with the
// given prefix values.
func (ix *compositeIndex) eqRange(prefix []Value) (int, int) {
	n := len(prefix)
	start := sort.Search(len(ix.entries), func(i int) bool {
		return compareTuplePrefix(ix.entries[i].key, prefix, n) >= 0
	})
	end := sort.Search(len(ix.entries), func(i int) bool {
		return compareTuplePrefix(ix.entries[i].key, prefix, n) > 0
	})
	return start, end
}

// rangeSegment narrows the prefix segment with lo/hi bounds on the
// column right after the prefix. Entries whose bounded column is NULL
// sort first; a set lower bound therefore excludes them, while a
// hi-only range keeps them (the residual WHERE filters them out).
func (ix *compositeIndex) rangeSegment(prefix []Value, lo, hi rangeBound) (int, int) {
	start, end := ix.eqRange(prefix)
	k := len(prefix)
	seg := ix.entries[start:end]
	if lo.set {
		off := sort.Search(len(seg), func(i int) bool {
			c := compareNullable(seg[i].key[k], lo.val)
			if lo.inclusive {
				return c >= 0
			}
			return c > 0
		})
		start += off
		seg = ix.entries[start:end]
	}
	if hi.set {
		off := sort.Search(len(seg), func(i int) bool {
			c := compareNullable(seg[i].key[k], hi.val)
			if hi.inclusive {
				return c > 0
			}
			return c >= 0
		})
		end = start + off
	}
	return start, end
}

// distinctPrefixes counts the distinct values of the first n key
// columns — the cardinality input of the cost model.
func (ix *compositeIndex) distinctPrefixes(n int) int {
	count := 0
	for i := range ix.entries {
		if i == 0 || compareTuplePrefix(ix.entries[i].key, ix.entries[i-1].key, n) != 0 {
			count++
		}
	}
	return count
}

// createCompositeIndex builds one sorted multi-column index. Recreating
// an index over the same column list is a no-op.
func (t *table) createCompositeIndex(name string, colNames []string) error {
	lows := make([]string, len(colNames))
	cols := make([]int, len(colNames))
	for i, cn := range colNames {
		lower := lowerKey(cn)
		pos, ok := t.colIdx[lower]
		if !ok {
			return errNoColumn(t.name, cn)
		}
		lows[i] = lower
		cols[i] = pos
	}
	for _, ex := range t.composites {
		if sameColumnList(ex.colNames, lows) {
			return nil
		}
	}
	ix := &compositeIndex{name: name, colNames: lows, cols: cols}
	for id := range t.rows {
		r := t.rowAt(id)
		if r == nil {
			continue
		}
		ix.entries = append(ix.entries, compEntry{key: ix.keyOf(r), id: id})
	}
	sort.SliceStable(ix.entries, func(a, b int) bool {
		ea, eb := &ix.entries[a], &ix.entries[b]
		if c := compareTuplePrefix(ea.key, eb.key, len(cols)); c != 0 {
			return c < 0
		}
		return ea.id < eb.id
	})
	t.composites = append(t.composites, ix)
	return nil
}

func sameColumnList(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
