// Package cache implements the two-level cache architecture of Section 6:
//
//   - a business-tier bean cache holding the unit beans produced by data
//     retrieval queries, keyed by unit + input parameters, invalidated
//     through the model-derived dependency index (the entities and
//     relationships each unit reads and each operation writes);
//   - a template-fragment cache (ESI-style) holding rendered markup
//     fragments with per-fragment TTL policies.
//
// Both levels share one LRU + TTL + dependency-index core.
package cache

import (
	"container/list"
	"sync"
	"time"
)

// Stats counts cache activity.
type Stats struct {
	Hits          int64
	Misses        int64
	Puts          int64
	Evictions     int64
	Invalidations int64 // entries removed by dependency invalidation
	Expirations   int64
}

// HitRatio returns hits / (hits + misses), or 0 for an unused cache.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type entry struct {
	key     string
	val     interface{}
	deps    []string
	expires time.Time // zero = no TTL
	elem    *list.Element
}

// store is the shared LRU/TTL/dependency-index machinery.
type store struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*entry
	lru     *list.List // front = most recent; values are *entry
	byDep   map[string]map[string]struct{}
	stats   Stats
	now     func() time.Time
}

func newStore(capacity int) *store {
	if capacity <= 0 {
		capacity = 4096
	}
	return &store{
		cap:     capacity,
		entries: make(map[string]*entry),
		lru:     list.New(),
		byDep:   make(map[string]map[string]struct{}),
		now:     time.Now,
	}
}

func (s *store) get(key string) (interface{}, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	if !e.expires.IsZero() && s.now().After(e.expires) {
		s.removeLocked(e)
		s.stats.Expirations++
		s.stats.Misses++
		return nil, false
	}
	s.lru.MoveToFront(e.elem)
	s.stats.Hits++
	return e.val, true
}

func (s *store) put(key string, val interface{}, deps []string, ttl time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[key]; ok {
		s.removeLocked(old)
	}
	e := &entry{key: key, val: val, deps: deps}
	if ttl > 0 {
		e.expires = s.now().Add(ttl)
	}
	e.elem = s.lru.PushFront(e)
	s.entries[key] = e
	for _, d := range deps {
		set, ok := s.byDep[d]
		if !ok {
			set = make(map[string]struct{})
			s.byDep[d] = set
		}
		set[key] = struct{}{}
	}
	s.stats.Puts++
	for len(s.entries) > s.cap {
		back := s.lru.Back()
		if back == nil {
			break
		}
		s.removeLocked(back.Value.(*entry))
		s.stats.Evictions++
	}
}

// invalidate drops every entry depending on any of the given tags and
// returns how many entries were removed.
func (s *store) invalidate(deps ...string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for _, d := range deps {
		for key := range s.byDep[d] {
			if e, ok := s.entries[key]; ok {
				s.removeLocked(e)
				removed++
			}
		}
	}
	s.stats.Invalidations += int64(removed)
	return removed
}

func (s *store) removeLocked(e *entry) {
	delete(s.entries, e.key)
	s.lru.Remove(e.elem)
	for _, d := range e.deps {
		if set, ok := s.byDep[d]; ok {
			delete(set, e.key)
			if len(set) == 0 {
				delete(s.byDep, d)
			}
		}
	}
}

func (s *store) flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = make(map[string]*entry)
	s.lru.Init()
	s.byDep = make(map[string]map[string]struct{})
}

func (s *store) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

func (s *store) statsCopy() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
