// Package cache implements the two-level cache architecture of Section 6:
//
//   - a business-tier bean cache holding the unit beans produced by data
//     retrieval queries, keyed by unit + input parameters, invalidated
//     through the model-derived dependency index (the entities and
//     relationships each unit reads and each operation writes);
//   - a template-fragment cache (ESI-style) holding rendered markup
//     fragments with per-fragment TTL policies.
//
// Both levels share one LRU + TTL + dependency-index core. Under heavy
// traffic the core is sharded: keys are FNV-hashed onto a power-of-two
// number of independent shards, each with its own lock, LRU list, TTL
// bookkeeping and dependency index, so concurrent requests do not
// serialize on a single mutex. Aggregate operations (Stats, Len,
// Invalidate, Flush) combine all shards exactly.
package cache

import (
	"container/list"
	"sync"
	"time"
)

// Stats counts cache activity.
type Stats struct {
	Hits          int64
	Misses        int64
	Puts          int64
	Evictions     int64
	Invalidations int64 // entries removed by dependency invalidation
	Expirations   int64
	// DegradedHits counts expired entries served through GetStale while
	// the origin was unavailable (Section 6's cache acting as the last
	// line of defence when the business tier is down).
	DegradedHits int64
}

// HitRatio returns hits / (hits + misses), or 0 for an unused cache.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type entry struct {
	key     string
	val     interface{}
	deps    []string
	stored  time.Time // when the value was put (staleness bound)
	expires time.Time // zero = no TTL
	expired bool      // TTL lapse already counted in stats
	elem    *list.Element
}

// maxShards bounds the shard count; more shards than this stop paying
// off (and small caches stay single-shard so the LRU order is global).
const maxShards = 64

// minEntriesPerShard is the capacity below which sharding is not worth
// the loss of strict global LRU ordering.
const minEntriesPerShard = 256

// store is the sharded LRU/TTL/dependency-index machinery shared by the
// bean, fragment and page caches.
type store struct {
	shards []*shard
	mask   uint32
	// now is the clock hook shared by every shard (tests override it).
	now func() time.Time
	// keepStale retains TTL-expired entries (demoted to the LRU tail)
	// instead of dropping them on lookup, so getStale can serve them in
	// degraded mode. Invalidated entries are always removed outright —
	// degraded mode never resurrects written-over data.
	keepStale bool
}

// shard is one independent slice of the keyspace.
type shard struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*entry
	lru     *list.List // front = most recent; values are *entry
	byDep   map[string]map[string]struct{}
	stats   Stats
}

// shardCount picks the power-of-two shard count for a capacity: 1 for
// small caches (strict global LRU), scaling up to maxShards so that each
// shard keeps at least minEntriesPerShard entries.
func shardCount(capacity int) int {
	n := 1
	for n < maxShards && capacity/(n*2) >= minEntriesPerShard {
		n *= 2
	}
	return n
}

func newStore(capacity int) *store {
	if capacity <= 0 {
		capacity = 4096
	}
	n := shardCount(capacity)
	s := &store{
		shards: make([]*shard, n),
		mask:   uint32(n - 1),
		now:    time.Now,
	}
	for i := range s.shards {
		// Distribute the capacity exactly: the first capacity%n shards
		// take one extra entry, so per-shard caps sum to capacity.
		cap := capacity / n
		if i < capacity%n {
			cap++
		}
		s.shards[i] = &shard{
			cap:     cap,
			entries: make(map[string]*entry),
			lru:     list.New(),
			byDep:   make(map[string]map[string]struct{}),
		}
	}
	return s
}

// shardFor hashes key onto its shard (FNV-1a).
func (s *store) shardFor(key string) *shard {
	if s.mask == 0 {
		return s.shards[0]
	}
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return s.shards[h&s.mask]
}

func (s *store) get(key string) (interface{}, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if !ok {
		sh.stats.Misses++
		return nil, false
	}
	if !e.expires.IsZero() && s.now().After(e.expires) {
		if s.keepStale {
			// Keep the zombie for degraded-mode serving, but demote it
			// so capacity pressure reclaims it first.
			if !e.expired {
				e.expired = true
				sh.stats.Expirations++
			}
			sh.lru.MoveToBack(e.elem)
		} else {
			sh.removeLocked(e)
			sh.stats.Expirations++
		}
		sh.stats.Misses++
		return nil, false
	}
	sh.lru.MoveToFront(e.elem)
	sh.stats.Hits++
	return e.val, true
}

// getStale returns the entry for key regardless of TTL expiry, as long
// as it was stored no more than maxStale ago. It is the degraded-mode
// read path: Invalidate removes entries outright, so anything getStale
// finds was never written over — only aged past its freshness TTL.
func (s *store) getStale(key string, maxStale time.Duration) (interface{}, time.Duration, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if !ok {
		return nil, 0, false
	}
	age := s.now().Sub(e.stored)
	if age > maxStale {
		return nil, 0, false
	}
	sh.stats.DegradedHits++
	return e.val, age, true
}

func (s *store) put(key string, val interface{}, deps []string, ttl time.Duration) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if old, ok := sh.entries[key]; ok {
		sh.removeLocked(old)
	}
	// Make room before inserting, so the shard never holds more than its
	// capacity — not even transiently (a capacity-1 cache holds 1 entry,
	// never 2, and eviction counts stay exact under sharding).
	for len(sh.entries) >= sh.cap {
		back := sh.lru.Back()
		if back == nil {
			break
		}
		sh.removeLocked(back.Value.(*entry))
		sh.stats.Evictions++
	}
	e := &entry{key: key, val: val, deps: deps, stored: s.now()}
	if ttl > 0 {
		e.expires = s.now().Add(ttl)
	}
	e.elem = sh.lru.PushFront(e)
	sh.entries[key] = e
	for _, d := range deps {
		set, ok := sh.byDep[d]
		if !ok {
			set = make(map[string]struct{})
			sh.byDep[d] = set
		}
		set[key] = struct{}{}
	}
	sh.stats.Puts++
}

// invalidate drops every entry depending on any of the given tags and
// returns how many entries were removed, across all shards.
func (s *store) invalidate(deps ...string) int {
	removed := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n := 0
		for _, d := range deps {
			for key := range sh.byDep[d] {
				if e, ok := sh.entries[key]; ok {
					sh.removeLocked(e)
					n++
				}
			}
		}
		sh.stats.Invalidations += int64(n)
		removed += n
		sh.mu.Unlock()
	}
	return removed
}

func (sh *shard) removeLocked(e *entry) {
	delete(sh.entries, e.key)
	sh.lru.Remove(e.elem)
	for _, d := range e.deps {
		if set, ok := sh.byDep[d]; ok {
			delete(set, e.key)
			if len(set) == 0 {
				delete(sh.byDep, d)
			}
		}
	}
}

func (s *store) flush() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.entries = make(map[string]*entry)
		sh.lru.Init()
		sh.byDep = make(map[string]map[string]struct{})
		sh.mu.Unlock()
	}
}

func (s *store) len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

func (s *store) statsCopy() Stats {
	var out Stats
	for _, sh := range s.shards {
		sh.mu.Lock()
		out.Hits += sh.stats.Hits
		out.Misses += sh.stats.Misses
		out.Puts += sh.stats.Puts
		out.Evictions += sh.stats.Evictions
		out.Invalidations += sh.stats.Invalidations
		out.Expirations += sh.stats.Expirations
		out.DegradedHits += sh.stats.DegradedHits
		sh.mu.Unlock()
	}
	return out
}

// shardCountOf reports how many shards back this store (for tests and
// stats endpoints).
func (s *store) shardCountOf() int { return len(s.shards) }
