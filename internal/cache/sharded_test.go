package cache

import (
	"fmt"
	"sync"
	"testing"
)

// TestCapacityOneNeverOverfills pins the put-order fix: eviction happens
// before insertion, so a capacity-1 cache holds one entry at every
// instant — never two, not even transiently — and eviction counts are
// exact.
func TestCapacityOneNeverOverfills(t *testing.T) {
	c := NewBeanCache(1)
	c.Put("a", 1, nil, 0)
	if n := c.Len(); n != 1 {
		t.Fatalf("len after first put = %d", n)
	}
	c.Put("b", 2, nil, 0)
	if n := c.Len(); n != 1 {
		t.Fatalf("len after second put = %d, want 1", n)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("evicted entry still present")
	}
	if v, ok := c.Get("b"); !ok || v != 2 {
		t.Fatal("newest entry lost")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want exactly 1", st.Evictions)
	}
	if st.Puts != 2 {
		t.Fatalf("puts = %d", st.Puts)
	}
}

// TestShardCountPolicy pins the sharding policy: small caches stay
// single-shard (strict global LRU), large ones shard up to the cap with
// at least minEntriesPerShard entries each.
func TestShardCountPolicy(t *testing.T) {
	cases := []struct{ capacity, want int }{
		{1, 1},
		{3, 1},
		{256, 1},
		{511, 1},
		{512, 2},
		{1024, 4},
		{4096, 16},
		{16384, 64},
		{1 << 20, 64}, // capped at maxShards
	}
	for _, tc := range cases {
		if got := shardCount(tc.capacity); got != tc.want {
			t.Errorf("shardCount(%d) = %d, want %d", tc.capacity, got, tc.want)
		}
	}
	if got := NewBeanCache(4096).Shards(); got != 16 {
		t.Errorf("BeanCache(4096) shards = %d", got)
	}
	if got := NewBeanCache(16).Shards(); got != 1 {
		t.Errorf("BeanCache(16) shards = %d", got)
	}
}

// TestShardedCapacitySumsExact checks per-shard capacities sum to the
// requested capacity even when it does not divide evenly.
func TestShardedCapacitySumsExact(t *testing.T) {
	for _, capacity := range []int{512, 513, 1000, 4096, 4100} {
		s := newStore(capacity)
		sum := 0
		for _, sh := range s.shards {
			sum += sh.cap
		}
		if sum != capacity {
			t.Fatalf("capacity %d distributed as %d", capacity, sum)
		}
	}
}

// TestShardedInvalidateCrossesShards fills a sharded cache with entries
// sharing one dependency tag and checks Invalidate drops them all, with
// exact aggregate counts.
func TestShardedInvalidateCrossesShards(t *testing.T) {
	c := NewBeanCache(2048)
	if c.Shards() < 2 {
		t.Fatal("test needs a sharded cache")
	}
	const n = 500
	for i := 0; i < n; i++ {
		c.Put(fmt.Sprintf("k%04d", i), i, []string{"entity:volume"}, 0)
	}
	if c.Len() != n {
		t.Fatalf("len = %d", c.Len())
	}
	if dropped := c.Invalidate("entity:volume"); dropped != n {
		t.Fatalf("invalidated %d, want %d", dropped, n)
	}
	if c.Len() != 0 {
		t.Fatalf("len after invalidate = %d", c.Len())
	}
	if st := c.Stats(); st.Invalidations != n || st.Puts != n {
		t.Fatalf("stats = %+v", st)
	}
}

// TestPutIfFreshRefusesStale pins the version scheme closing the
// compute/invalidate race: a put computed before an invalidation of its
// read deps must be refused.
func TestPutIfFreshRefusesStale(t *testing.T) {
	c := NewBeanCache(64)
	deps := []string{"entity:volume"}

	v := c.Version(deps)
	// An invalidation lands between Version and PutIfFresh (the write
	// committed while the bean was being computed).
	c.Invalidate(deps...)
	if c.PutIfFresh("k", "stale", deps, 0, v) {
		t.Fatal("stale put accepted")
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("stale bean cached")
	}

	// Without an intervening invalidation the put lands.
	v = c.Version(deps)
	if !c.PutIfFresh("k", "fresh", deps, 0, v) {
		t.Fatal("fresh put refused")
	}
	if got, ok := c.Get("k"); !ok || got != "fresh" {
		t.Fatal("fresh bean lost")
	}

	// Invalidating an unrelated tag does not refuse the put.
	v = c.Version(deps)
	c.Invalidate("entity:paper")
	if !c.PutIfFresh("k2", "ok", deps, 0, v) {
		t.Fatal("put refused by unrelated invalidation")
	}
}

// TestShardedConcurrentMixedOps hammers a sharded cache from many
// goroutines under -race.
func TestShardedConcurrentMixedOps(t *testing.T) {
	c := NewBeanCache(4096)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dep := fmt.Sprintf("entity:e%d", g%4)
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i%64)
				switch i % 5 {
				case 0:
					c.Put(key, i, []string{dep}, 0)
				case 1, 2, 3:
					c.Get(key)
				case 4:
					c.Invalidate(dep)
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Puts == 0 || st.Hits+st.Misses == 0 {
		t.Fatalf("stats = %+v", st)
	}
}
