package cache

import (
	"slices"
	"sync"
	"time"
)

// BeanCache is the business-tier cache of Section 6: it stores "the data
// beans produced by the action invocations, which typically include the
// result of data access queries, and makes them reusable by multiple
// requests". Invalidation is model-driven: entries are tagged with the
// dependency tags of the entities/relationships their query reads, and
// operations invalidate by the tags they write — "sparing the developer
// the need of managing a business-tier cache in his application code".
//
// Because computation and invalidation race under concurrent traffic, the
// cache also tracks a per-tag invalidation version: a caller snapshots
// Version(deps) before computing a bean and stores it with PutIfFresh,
// which refuses the value if any of its read dependencies was invalidated
// in the meantime — a stale bean computed against a pre-write database
// state can never overwrite an invalidation.
type BeanCache struct {
	s *store

	genMu sync.RWMutex
	gens  map[string]uint64 // dep tag -> version at last invalidation
	clock uint64
}

// NewBeanCache returns a bean cache bounded to capacity entries
// (<=0 selects the default, 4096). TTL-expired beans are retained
// (demoted in the LRU) so GetStale can serve them in degraded mode;
// invalidated beans are removed outright and never resurface.
func NewBeanCache(capacity int) *BeanCache {
	s := newStore(capacity)
	s.keepStale = true
	return &BeanCache{s: s, gens: make(map[string]uint64)}
}

// keyBuilder assembles canonical cache keys without intermediate maps or
// throwaway slices; instances are pooled.
type keyBuilder struct {
	names []string
	buf   []byte
}

var keyPool = sync.Pool{New: func() interface{} { return new(keyBuilder) }}

// Key builds the canonical cache key of a unit computation: the unit ID
// plus its input parameters in sorted order.
func Key(unitID string, inputs map[string]string) string {
	if len(inputs) == 0 {
		return unitID
	}
	kb := keyPool.Get().(*keyBuilder)
	kb.names = kb.names[:0]
	for n := range inputs {
		kb.names = append(kb.names, n)
	}
	slices.Sort(kb.names)
	kb.buf = append(kb.buf[:0], unitID...)
	for _, n := range kb.names {
		kb.buf = append(kb.buf, '|')
		kb.buf = append(kb.buf, n...)
		kb.buf = append(kb.buf, '=')
		kb.buf = append(kb.buf, inputs[n]...)
	}
	key := string(kb.buf)
	keyPool.Put(kb)
	return key
}

// Get returns the cached bean for key, if present and fresh.
func (c *BeanCache) Get(key string) (interface{}, bool) { return c.s.get(key) }

// GetStale returns the bean for key even if its TTL has lapsed, as long
// as it was stored no more than maxStale ago, together with its age. It
// is the degraded-mode read path used when the business tier is
// unreachable; hits are counted separately as Stats.DegradedHits.
// Invalidate removes beans outright, so GetStale can never return data
// an operation has written over.
func (c *BeanCache) GetStale(key string, maxStale time.Duration) (interface{}, time.Duration, bool) {
	return c.s.getStale(key, maxStale)
}

// Put stores a bean under key, tagged with its dependency tags and an
// optional TTL (0 disables time-based expiry).
func (c *BeanCache) Put(key string, bean interface{}, deps []string, ttl time.Duration) {
	c.s.put(key, bean, deps, ttl)
}

// Version returns the invalidation version of a dependency set: the
// highest version at which any of the tags was last invalidated. Snapshot
// it before computing a value destined for PutIfFresh.
func (c *BeanCache) Version(deps []string) uint64 {
	c.genMu.RLock()
	defer c.genMu.RUnlock()
	var v uint64
	for _, d := range deps {
		if g := c.gens[d]; g > v {
			v = g
		}
	}
	return v
}

// PutIfFresh stores a bean only if none of its dependency tags has been
// invalidated since the caller observed Version(deps) == v; it reports
// whether the value was stored. The check and the store are atomic with
// respect to Invalidate, closing the compute/invalidate race.
func (c *BeanCache) PutIfFresh(key string, bean interface{}, deps []string, ttl time.Duration, v uint64) bool {
	c.genMu.RLock()
	defer c.genMu.RUnlock()
	for _, d := range deps {
		if c.gens[d] > v {
			return false
		}
	}
	c.s.put(key, bean, deps, ttl)
	return true
}

// Invalidate removes every bean depending on any of the given tags and
// reports how many entries were dropped. It also advances the tags'
// invalidation versions, so in-flight PutIfFresh calls with older
// snapshots are refused.
func (c *BeanCache) Invalidate(deps ...string) int {
	c.genMu.Lock()
	defer c.genMu.Unlock()
	c.clock++
	for _, d := range deps {
		c.gens[d] = c.clock
	}
	return c.s.invalidate(deps...)
}

// Flush empties the cache.
func (c *BeanCache) Flush() { c.s.flush() }

// Len returns the number of cached beans.
func (c *BeanCache) Len() int { return c.s.len() }

// Stats returns a snapshot of the cache counters.
func (c *BeanCache) Stats() Stats { return c.s.statsCopy() }

// Shards reports how many shards back the cache.
func (c *BeanCache) Shards() int { return c.s.shardCountOf() }

// FragmentCache is the template-fragment cache: last-generation Web
// caching "based on the capability of marking fragments of the page
// template, which can be cached individually and with different
// policies" (the ESI initiative referenced in Section 6). Fragment keys
// are content-addressed (they embed the bean hash), so fragments never
// go stale relative to their beans and need no version bookkeeping.
type FragmentCache struct {
	s          *store
	defaultTTL time.Duration
}

// NewFragmentCache returns a fragment cache bounded to capacity entries
// with the given default TTL per fragment.
func NewFragmentCache(capacity int, defaultTTL time.Duration) *FragmentCache {
	return &FragmentCache{s: newStore(capacity), defaultTTL: defaultTTL}
}

// Get returns the cached markup for a fragment key.
func (c *FragmentCache) Get(key string) ([]byte, bool) {
	v, ok := c.s.get(key)
	if !ok {
		return nil, false
	}
	return v.([]byte), true
}

// Put stores fragment markup under key with the cache's default TTL.
func (c *FragmentCache) Put(key string, markup []byte) {
	c.PutTTL(key, markup, c.defaultTTL)
}

// PutTTL stores fragment markup with an explicit per-fragment policy.
func (c *FragmentCache) PutTTL(key string, markup []byte, ttl time.Duration) {
	c.s.put(key, markup, nil, ttl)
}

// Flush empties the cache.
func (c *FragmentCache) Flush() { c.s.flush() }

// Len returns the number of cached fragments.
func (c *FragmentCache) Len() int { return c.s.len() }

// Stats returns a snapshot of the cache counters.
func (c *FragmentCache) Stats() Stats { return c.s.statsCopy() }

// Shards reports how many shards back the cache.
func (c *FragmentCache) Shards() int { return c.s.shardCountOf() }
