package cache

import (
	"sort"
	"strings"
	"time"
)

// BeanCache is the business-tier cache of Section 6: it stores "the data
// beans produced by the action invocations, which typically include the
// result of data access queries, and makes them reusable by multiple
// requests". Invalidation is model-driven: entries are tagged with the
// dependency tags of the entities/relationships their query reads, and
// operations invalidate by the tags they write — "sparing the developer
// the need of managing a business-tier cache in his application code".
type BeanCache struct {
	s *store
}

// NewBeanCache returns a bean cache bounded to capacity entries
// (<=0 selects the default, 4096).
func NewBeanCache(capacity int) *BeanCache {
	return &BeanCache{s: newStore(capacity)}
}

// Key builds the canonical cache key of a unit computation: the unit ID
// plus its input parameters in sorted order.
func Key(unitID string, inputs map[string]string) string {
	if len(inputs) == 0 {
		return unitID
	}
	names := make([]string, 0, len(inputs))
	for n := range inputs {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(unitID)
	for _, n := range names {
		b.WriteByte('|')
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(inputs[n])
	}
	return b.String()
}

// Get returns the cached bean for key, if present and fresh.
func (c *BeanCache) Get(key string) (interface{}, bool) { return c.s.get(key) }

// Put stores a bean under key, tagged with its dependency tags and an
// optional TTL (0 disables time-based expiry).
func (c *BeanCache) Put(key string, bean interface{}, deps []string, ttl time.Duration) {
	c.s.put(key, bean, deps, ttl)
}

// Invalidate removes every bean depending on any of the given tags and
// reports how many entries were dropped.
func (c *BeanCache) Invalidate(deps ...string) int { return c.s.invalidate(deps...) }

// Flush empties the cache.
func (c *BeanCache) Flush() { c.s.flush() }

// Len returns the number of cached beans.
func (c *BeanCache) Len() int { return c.s.len() }

// Stats returns a snapshot of the cache counters.
func (c *BeanCache) Stats() Stats { return c.s.statsCopy() }

// FragmentCache is the template-fragment cache: last-generation Web
// caching "based on the capability of marking fragments of the page
// template, which can be cached individually and with different
// policies" (the ESI initiative referenced in Section 6).
type FragmentCache struct {
	s          *store
	defaultTTL time.Duration
}

// NewFragmentCache returns a fragment cache bounded to capacity entries
// with the given default TTL per fragment.
func NewFragmentCache(capacity int, defaultTTL time.Duration) *FragmentCache {
	return &FragmentCache{s: newStore(capacity), defaultTTL: defaultTTL}
}

// Get returns the cached markup for a fragment key.
func (c *FragmentCache) Get(key string) ([]byte, bool) {
	v, ok := c.s.get(key)
	if !ok {
		return nil, false
	}
	return v.([]byte), true
}

// Put stores fragment markup under key with the cache's default TTL.
func (c *FragmentCache) Put(key string, markup []byte) {
	c.PutTTL(key, markup, c.defaultTTL)
}

// PutTTL stores fragment markup with an explicit per-fragment policy.
func (c *FragmentCache) PutTTL(key string, markup []byte, ttl time.Duration) {
	c.s.put(key, markup, nil, ttl)
}

// Flush empties the cache.
func (c *FragmentCache) Flush() { c.s.flush() }

// Len returns the number of cached fragments.
func (c *FragmentCache) Len() int { return c.s.len() }

// Stats returns a snapshot of the cache counters.
func (c *FragmentCache) Stats() Stats { return c.s.statsCopy() }
