package cache

import (
	"container/list"
	"fmt"
	"testing"
	"time"
)

// contentionStore builds a store with an explicit shard count so the
// sharded and single-shard cores can be compared at equal capacity.
func storeWithShards(capacity, shards int) *store {
	s := &store{
		shards: make([]*shard, shards),
		mask:   uint32(shards - 1),
		now:    time.Now,
	}
	for i := range s.shards {
		c := capacity / shards
		if i < capacity%shards {
			c++
		}
		s.shards[i] = &shard{
			cap:     c,
			entries: make(map[string]*entry),
			lru:     list.New(),
			byDep:   make(map[string]map[string]struct{}),
		}
	}
	return s
}

func benchStoreParallel(b *testing.B, s *store) {
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("unit|oid=%d", i)
		s.put(keys[i], i, []string{"entity:volume"}, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			key := keys[i&1023]
			if i%16 == 0 {
				s.put(key, i, []string{"entity:volume"}, 0)
			} else {
				s.get(key)
			}
			i++
		}
	})
}

// BenchmarkCacheShardedContention measures the sharded core under
// parallel mixed get/put traffic; compare with the SingleShard variant at
// the same capacity to see the lock-contention win.
func BenchmarkCacheShardedContention(b *testing.B) {
	benchStoreParallel(b, newStore(16384))
}

// BenchmarkCacheSingleShardContention is the seed-architecture
// comparator: the same capacity forced onto one mutex.
func BenchmarkCacheSingleShardContention(b *testing.B) {
	benchStoreParallel(b, storeWithShards(16384, 1))
}
