package cache

import (
	"bytes"
	"net/http"
	"strings"
	"time"
)

// PageCache is the first-generation caching solution Section 6 contrasts
// with ESI: it caches entire rendered pages keyed by URL, with a TTL.
// As the paper notes, such caches "were inadequate for complex
// interactive and personalized Web applications, with pages composed of
// different content elements with different caching requirements" — the
// tests demonstrate exactly that inadequacy (stale reads until TTL,
// cross-user leakage unless personalized traffic bypasses the cache),
// which is why WebRatio's two-level architecture replaced it.
type PageCache struct {
	s   *store
	ttl time.Duration
	// BypassCookie names a cookie whose presence marks personalized
	// traffic that must not be cached (e.g. the session cookie once a
	// user logs in).
	BypassCookie string
}

// NewPageCache returns a whole-page cache with the given capacity and
// TTL.
func NewPageCache(capacity int, ttl time.Duration) *PageCache {
	return &PageCache{s: newStore(capacity), ttl: ttl}
}

// Stats returns the cache counters.
func (pc *PageCache) Stats() Stats { return pc.s.statsCopy() }

// Flush drops all cached pages.
func (pc *PageCache) Flush() { pc.s.flush() }

type cachedPage struct {
	status int
	header http.Header
	body   []byte
}

// Wrap returns a handler serving GET responses from the cache.
func (pc *PageCache) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet || pc.bypass(r) {
			next.ServeHTTP(w, r)
			return
		}
		key := r.URL.RequestURI()
		if v, ok := pc.s.get(key); ok {
			cp := v.(*cachedPage)
			copyHeader(w.Header(), cp.header)
			w.Header().Set("X-Cache", "HIT")
			w.WriteHeader(cp.status)
			w.Write(cp.body) //nolint:errcheck
			return
		}
		rec := &recordingWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		// Only successful responses are cacheable. Set-Cookie headers
		// (session issuance for the first anonymous visitor) are stripped
		// from the stored copy: the cached page is the anonymous
		// rendition, and later visitors acquire their own session on
		// their first non-cached interaction.
		if rec.status == http.StatusOK {
			pc.s.put(key, &cachedPage{
				status: rec.status,
				header: cloneHeader(rec.Header()),
				body:   rec.buf.Bytes(),
			}, nil, pc.ttl)
		}
	})
}

func (pc *PageCache) bypass(r *http.Request) bool {
	if pc.BypassCookie == "" {
		return false
	}
	_, err := r.Cookie(pc.BypassCookie)
	return err == nil
}

type recordingWriter struct {
	http.ResponseWriter
	status int
	buf    bytes.Buffer
}

func (rw *recordingWriter) WriteHeader(code int) {
	rw.status = code
	rw.ResponseWriter.WriteHeader(code)
}

func (rw *recordingWriter) Write(p []byte) (int, error) {
	rw.buf.Write(p)
	return rw.ResponseWriter.Write(p)
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

func cloneHeader(h http.Header) http.Header {
	out := make(http.Header, len(h))
	for k, vs := range h {
		if strings.EqualFold(k, "Set-Cookie") {
			continue
		}
		out[k] = append([]string(nil), vs...)
	}
	return out
}
