package cache

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestBeanCacheGetPut(t *testing.T) {
	c := NewBeanCache(10)
	if _, ok := c.Get("k"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("k", "bean", []string{"entity:volume"}, 0)
	v, ok := c.Get("k")
	if !ok || v != "bean" {
		t.Fatalf("got %v %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRatio() != 0.5 {
		t.Fatalf("ratio = %v", st.HitRatio())
	}
}

func TestKeyCanonical(t *testing.T) {
	a := Key("u1", map[string]string{"b": "2", "a": "1"})
	b := Key("u1", map[string]string{"a": "1", "b": "2"})
	if a != b {
		t.Fatalf("%q != %q", a, b)
	}
	if Key("u1", nil) != "u1" {
		t.Fatal("empty inputs key")
	}
	if Key("u1", map[string]string{"a": "1"}) == Key("u1", map[string]string{"a": "2"}) {
		t.Fatal("different inputs collide")
	}
}

func TestInvalidateByDependency(t *testing.T) {
	c := NewBeanCache(100)
	c.Put("vol1", 1, []string{"entity:volume"}, 0)
	c.Put("vol2", 2, []string{"entity:volume", "rel:volumetoissue"}, 0)
	c.Put("paper", 3, []string{"entity:paper"}, 0)

	n := c.Invalidate("entity:volume")
	if n != 2 {
		t.Fatalf("invalidated %d", n)
	}
	if _, ok := c.Get("vol1"); ok {
		t.Fatal("vol1 survived invalidation")
	}
	if _, ok := c.Get("vol2"); ok {
		t.Fatal("vol2 survived invalidation")
	}
	if _, ok := c.Get("paper"); !ok {
		t.Fatal("paper over-invalidated")
	}
	// Idempotent.
	if n := c.Invalidate("entity:volume"); n != 0 {
		t.Fatalf("second invalidation removed %d", n)
	}
}

func TestInvalidateMultipleTags(t *testing.T) {
	c := NewBeanCache(100)
	c.Put("a", 1, []string{"entity:a"}, 0)
	c.Put("b", 2, []string{"entity:b"}, 0)
	if n := c.Invalidate("entity:a", "entity:b", "entity:ghost"); n != 2 {
		t.Fatalf("invalidated %d", n)
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewBeanCache(3)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, nil, 0)
	}
	c.Get("k0") // make k0 recent; k1 is now LRU
	c.Put("k3", 3, nil, 0)
	if _, ok := c.Get("k1"); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("recent entry evicted")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestTTLExpiry(t *testing.T) {
	c := NewBeanCache(10)
	now := time.Unix(1000, 0)
	c.s.now = func() time.Time { return now }
	c.Put("k", 1, nil, 5*time.Second)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("fresh entry missed")
	}
	now = now.Add(6 * time.Second)
	if _, ok := c.Get("k"); ok {
		t.Fatal("stale entry served")
	}
	if c.Stats().Expirations != 1 {
		t.Fatalf("expirations = %d", c.Stats().Expirations)
	}
}

func TestPutReplacesAndRetags(t *testing.T) {
	c := NewBeanCache(10)
	c.Put("k", 1, []string{"entity:a"}, 0)
	c.Put("k", 2, []string{"entity:b"}, 0)
	if v, _ := c.Get("k"); v != 2 {
		t.Fatalf("v = %v", v)
	}
	// Old tag must no longer invalidate the entry.
	if n := c.Invalidate("entity:a"); n != 0 {
		t.Fatalf("stale dep invalidated %d", n)
	}
	if n := c.Invalidate("entity:b"); n != 1 {
		t.Fatalf("new dep invalidated %d", n)
	}
}

func TestFlush(t *testing.T) {
	c := NewBeanCache(10)
	c.Put("a", 1, []string{"d"}, 0)
	c.Flush()
	if c.Len() != 0 {
		t.Fatal("flush left entries")
	}
	if n := c.Invalidate("d"); n != 0 {
		t.Fatal("flush left dependency index")
	}
}

func TestFragmentCache(t *testing.T) {
	c := NewFragmentCache(10, time.Minute)
	c.Put("page1|u1|h1", []byte("<div>x</div>"))
	got, ok := c.Get("page1|u1|h1")
	if !ok || string(got) != "<div>x</div>" {
		t.Fatalf("got %q %v", got, ok)
	}
	if _, ok := c.Get("other"); ok {
		t.Fatal("ghost hit")
	}
}

func TestFragmentTTLPolicy(t *testing.T) {
	c := NewFragmentCache(10, time.Minute)
	now := time.Unix(0, 0)
	c.s.now = func() time.Time { return now }
	c.Put("default", []byte("a"))
	c.PutTTL("short", []byte("b"), time.Second)
	now = now.Add(2 * time.Second)
	if _, ok := c.Get("short"); ok {
		t.Fatal("per-fragment TTL ignored")
	}
	if _, ok := c.Get("default"); !ok {
		t.Fatal("default TTL entry dropped early")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := NewBeanCache(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%32)
				c.Put(key, i, []string{fmt.Sprintf("d%d", i%4)}, 0)
				c.Get(key)
				if i%10 == 0 {
					c.Invalidate(fmt.Sprintf("d%d", i%4))
				}
			}
		}(g)
	}
	wg.Wait()
}

// Property: after invalidating tag T, no entry that was stored with tag T
// remains retrievable, and entries without T are untouched.
func TestInvalidationExactnessProperty(t *testing.T) {
	f := func(tagged, untagged []uint8) bool {
		c := NewBeanCache(10000)
		for i, v := range tagged {
			c.Put(fmt.Sprintf("t%d", i), v, []string{"T", fmt.Sprintf("x%d", v%3)}, 0)
		}
		for i, v := range untagged {
			c.Put(fmt.Sprintf("u%d", i), v, []string{fmt.Sprintf("x%d", v%3)}, 0)
		}
		c.Invalidate("T")
		for i := range tagged {
			if _, ok := c.Get(fmt.Sprintf("t%d", i)); ok {
				return false
			}
		}
		for i := range untagged {
			if _, ok := c.Get(fmt.Sprintf("u%d", i)); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Len never exceeds capacity.
func TestCapacityInvariantProperty(t *testing.T) {
	f := func(keys []uint16) bool {
		c := NewBeanCache(16)
		for _, k := range keys {
			c.Put(fmt.Sprintf("k%d", k), k, nil, 0)
			if c.Len() > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
