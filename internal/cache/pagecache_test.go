package cache

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// countingHandler serves a counter so staleness is observable.
type countingHandler struct {
	hits int
}

func (h *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.hits++
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintf(w, "generation %d", h.hits)
}

func doReq(h http.Handler, method, path string, cookie *http.Cookie) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, nil)
	if cookie != nil {
		req.AddCookie(cookie)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

func TestPageCacheServesRepeats(t *testing.T) {
	backend := &countingHandler{}
	pc := NewPageCache(100, time.Minute)
	h := pc.Wrap(backend)

	r1 := doReq(h, http.MethodGet, "/page/home", nil)
	r2 := doReq(h, http.MethodGet, "/page/home", nil)
	if backend.hits != 1 {
		t.Fatalf("backend hits = %d", backend.hits)
	}
	if r1.Body.String() != r2.Body.String() {
		t.Fatal("cached body differs")
	}
	if r2.Header().Get("X-Cache") != "HIT" {
		t.Fatal("hit marker missing")
	}
	if r2.Header().Get("Content-Type") != "text/plain" {
		t.Fatal("headers lost")
	}
	// Distinct URLs are distinct entries.
	doReq(h, http.MethodGet, "/page/home?x=1", nil)
	if backend.hits != 2 {
		t.Fatalf("backend hits = %d", backend.hits)
	}
}

// TestPageCacheStalenessInadequacy demonstrates the paper's point: a
// whole-page cache keeps serving the old page after the content changes,
// until the TTL expires. (The two-level architecture instead invalidates
// exactly the affected beans at write time.)
func TestPageCacheStalenessInadequacy(t *testing.T) {
	backend := &countingHandler{}
	pc := NewPageCache(100, time.Minute)
	now := time.Unix(0, 0)
	pc.s.now = func() time.Time { return now }
	h := pc.Wrap(backend)

	doReq(h, http.MethodGet, "/page/home", nil)
	// "Content changed" — but the cache still serves generation 1.
	r := doReq(h, http.MethodGet, "/page/home", nil)
	if r.Body.String() != "generation 1" {
		t.Fatal("expected the stale page (that is the point)")
	}
	// Only TTL expiry heals it.
	now = now.Add(2 * time.Minute)
	r = doReq(h, http.MethodGet, "/page/home", nil)
	if r.Body.String() != "generation 2" {
		t.Fatalf("TTL expiry broken: %s", r.Body.String())
	}
}

func TestPageCacheBypassesPersonalizedTraffic(t *testing.T) {
	backend := &countingHandler{}
	pc := NewPageCache(100, time.Minute)
	pc.BypassCookie = "WSESSION"
	h := pc.Wrap(backend)

	session := &http.Cookie{Name: "WSESSION", Value: "abc"}
	doReq(h, http.MethodGet, "/page/home", session)
	doReq(h, http.MethodGet, "/page/home", session)
	if backend.hits != 2 {
		t.Fatalf("personalized requests were cached: hits = %d", backend.hits)
	}
	// Anonymous traffic still caches.
	doReq(h, http.MethodGet, "/page/home", nil)
	doReq(h, http.MethodGet, "/page/home", nil)
	if backend.hits != 3 {
		t.Fatalf("anonymous requests not cached: hits = %d", backend.hits)
	}
}

func TestPageCacheSkipsNonGETAndErrorsAndCookieSetters(t *testing.T) {
	pc := NewPageCache(100, time.Minute)
	posts := 0
	h := pc.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/post":
			posts++
			fmt.Fprint(w, "posted")
		case "/missing":
			http.NotFound(w, r)
		case "/login":
			http.SetCookie(w, &http.Cookie{Name: "WSESSION", Value: "x"})
			fmt.Fprint(w, "ok")
		}
	}))
	doReq(h, http.MethodPost, "/post", nil)
	doReq(h, http.MethodPost, "/post", nil)
	if posts != 2 {
		t.Fatalf("POST cached: %d", posts)
	}
	// 404s are not cached.
	doReq(h, http.MethodGet, "/missing", nil)
	if pc.Stats().Puts != 0 {
		t.Fatal("error response cached")
	}
	// Cookie-setting responses are cached, but the Set-Cookie header is
	// stripped from the stored copy (no session leaks between visitors).
	doReq(h, http.MethodGet, "/login", nil)
	r := doReq(h, http.MethodGet, "/login", nil)
	if r.Header().Get("X-Cache") != "HIT" {
		t.Fatal("cookie-setting response not cached")
	}
	if len(r.Header().Values("Set-Cookie")) != 0 {
		t.Fatal("cached copy leaked another visitor's Set-Cookie")
	}
}
