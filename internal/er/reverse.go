package er

import (
	"fmt"
	"sort"
	"strings"

	"webmlgo/internal/rdb"
)

// Reverse derives an ER schema from a pre-existing database that follows
// the standard relational mapping — the second use the paper gives the
// standard schema: "as a reference for mapping to pre-existing data
// sources" (Section 1). Recognition rules, the inverse of Mapping:
//
//   - every table with an "oid" primary key becomes an entity (name
//     capitalized);
//   - tables named "rel_<name>" with from_oid/to_oid columns become N:M
//     relationships;
//   - "fk_<name>" columns become 1:N relationships toward the referenced
//     entity;
//   - remaining columns become attributes with types mapped back from
//     the column types.
//
// Tables that do not fit the convention are reported in the returned
// issues list and skipped; the schema covers what was recognized.
func Reverse(db *rdb.DB) (*Schema, []string, error) {
	schema := &Schema{}
	var issues []string

	type fkInfo struct {
		table, column, refTable string
	}
	var fks []fkInfo
	type bridgeInfo struct {
		table, fromTable, toTable string
	}
	var bridges []bridgeInfo

	for _, tableName := range db.TableNames() {
		info, err := db.Describe(tableName)
		if err != nil {
			return nil, nil, err
		}
		if strings.HasPrefix(tableName, "rel_") {
			var from, to string
			for _, fk := range info.ForeignKeys {
				switch fk.Column {
				case BridgeFrom:
					from = fk.RefTable
				case BridgeTo:
					to = fk.RefTable
				}
			}
			if from == "" || to == "" {
				issues = append(issues, fmt.Sprintf("table %q looks like a bridge but lacks from_oid/to_oid foreign keys", tableName))
				continue
			}
			bridges = append(bridges, bridgeInfo{table: tableName, fromTable: from, toTable: to})
			continue
		}
		if info.PrimaryKey != OIDColumn {
			issues = append(issues, fmt.Sprintf("table %q has no %q primary key; skipped", tableName, OIDColumn))
			continue
		}
		e := &Entity{Name: capitalize(tableName)}
		for _, col := range info.Columns {
			if col.Name == OIDColumn {
				continue
			}
			if strings.HasPrefix(col.Name, "fk_") {
				ref := ""
				for _, fk := range info.ForeignKeys {
					if fk.Column == col.Name {
						ref = fk.RefTable
						break
					}
				}
				if ref == "" {
					issues = append(issues, fmt.Sprintf("column %s.%s looks like a foreign key but has no constraint", tableName, col.Name))
					continue
				}
				fks = append(fks, fkInfo{table: tableName, column: col.Name, refTable: ref})
				continue
			}
			t, ok := attrTypeFromCol(col.Type)
			if !ok {
				issues = append(issues, fmt.Sprintf("column %s.%s has unmapped type; treated as string", tableName, col.Name))
				t = String
			}
			e.Attributes = append(e.Attributes, Attribute{
				Name: capitalize(col.Name), Type: t,
				Required: col.NotNull, Unique: col.Unique,
			})
		}
		if len(e.Attributes) == 0 {
			issues = append(issues, fmt.Sprintf("table %q has no plain attributes; skipped", tableName))
			continue
		}
		schema.Entities = append(schema.Entities, e)
	}

	// FK columns: the table holding the FK is the To side of a 1:N from
	// the referenced entity (matching Mapping.Storage for OneToMany).
	for _, fk := range fks {
		relName := strings.TrimPrefix(fk.column, "fk_")
		from := capitalize(fk.refTable)
		to := capitalize(fk.table)
		if schema.Entity(from) == nil || schema.Entity(to) == nil {
			issues = append(issues, fmt.Sprintf("foreign key %s.%s references unrecognized entities", fk.table, fk.column))
			continue
		}
		schema.Relationships = append(schema.Relationships, &Relationship{
			Name: capitalize(relName), From: from, To: to,
			FromRole: capitalize(relName), ToRole: capitalize(relName) + "Inverse",
			FromCard: Many, ToCard: One,
		})
	}
	for _, b := range bridges {
		relName := capitalize(strings.TrimPrefix(b.table, "rel_"))
		from := capitalize(b.fromTable)
		to := capitalize(b.toTable)
		if schema.Entity(from) == nil || schema.Entity(to) == nil {
			issues = append(issues, fmt.Sprintf("bridge %q references unrecognized entities", b.table))
			continue
		}
		schema.Relationships = append(schema.Relationships, &Relationship{
			Name: relName, From: from, To: to,
			FromRole: relName, ToRole: relName + "Inverse",
			FromCard: Many, ToCard: Many,
		})
	}
	sort.Slice(schema.Relationships, func(i, j int) bool {
		return schema.Relationships[i].Name < schema.Relationships[j].Name
	})
	sort.Strings(issues)
	if err := schema.Validate(); err != nil {
		return nil, issues, fmt.Errorf("er: reverse-engineered schema invalid: %w", err)
	}
	return schema, issues, nil
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

func attrTypeFromCol(t rdb.ColType) (AttrType, bool) {
	switch t {
	case rdb.TText:
		return String, true
	case rdb.TInt:
		return Int, true
	case rdb.TReal:
		return Float, true
	case rdb.TBool:
		return Bool, true
	case rdb.TTime:
		return Time, true
	}
	return String, false
}
