package er

import (
	"fmt"
	"sort"
	"strings"
)

// Mapping describes how an ER schema maps onto relational storage:
// one table per entity with a synthetic "oid" primary key, a foreign-key
// column on the to-one side of 1:1 and 1:N relationships, and a bridge
// table for N:M relationships. This is the "standard schema" of Section 1
// that WebRatio uses both for newly designed databases and as the
// reference for mapping to pre-existing data sources.
type Mapping struct {
	Schema *Schema
}

// NewMapping validates the schema and returns its relational mapping.
func NewMapping(s *Schema) (*Mapping, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &Mapping{Schema: s}, nil
}

// EntityTable returns the table name that stores an entity.
func (m *Mapping) EntityTable(entity string) string {
	return strings.ToLower(entity)
}

// AttrColumn returns the column name that stores an attribute.
func (m *Mapping) AttrColumn(attr string) string {
	return strings.ToLower(attr)
}

// OIDColumn is the synthetic primary key column of every entity table.
const OIDColumn = "oid"

// FKColumn returns the foreign-key column name materializing a to-one
// relationship side.
func FKColumn(rel *Relationship) string {
	return "fk_" + strings.ToLower(rel.Name)
}

// BridgeTable returns the bridge-table name of an N:M relationship.
func BridgeTable(rel *Relationship) string {
	return "rel_" + strings.ToLower(rel.Name)
}

// BridgeFrom and BridgeTo are the bridge-table column names.
const (
	BridgeFrom = "from_oid"
	BridgeTo   = "to_oid"
)

// RelStorage describes where a relationship's instances live.
type RelStorage struct {
	// Bridge is true for N:M relationships stored in their own table.
	Bridge bool
	// Table is the bridge table (Bridge) or the table holding the FK.
	Table string
	// FKCol is the foreign-key column ("" for bridge storage).
	FKCol string
	// FKSide is the entity whose table holds the FK ("" for bridge).
	FKSide string
	// RefEntity is the entity the FK points at ("" for bridge).
	RefEntity string
}

// Storage returns how rel is materialized.
func (m *Mapping) Storage(rel *Relationship) RelStorage {
	switch rel.Kind() {
	case ManyToMany:
		return RelStorage{Bridge: true, Table: BridgeTable(rel)}
	case OneToMany:
		// Each To-instance has one From-instance: FK on the To table.
		return RelStorage{Table: m.EntityTable(rel.To), FKCol: FKColumn(rel), FKSide: rel.To, RefEntity: rel.From}
	case ManyToOne, OneToOne:
		return RelStorage{Table: m.EntityTable(rel.From), FKCol: FKColumn(rel), FKSide: rel.From, RefEntity: rel.To}
	}
	panic("unreachable")
}

// DDL returns the CREATE TABLE and CREATE INDEX statements implementing
// the schema, ordered so every referenced table is created first. When
// foreign-key dependencies are cyclic the constraints that close the
// cycle are dropped (the tables are still created and indexed).
func (m *Mapping) DDL() []string {
	type tableDef struct {
		entity *Entity
		// fks: column -> referenced entity
		fks map[string]string
	}
	defs := make(map[string]*tableDef, len(m.Schema.Entities))
	var order []string
	for _, e := range m.Schema.Entities {
		name := m.EntityTable(e.Name)
		defs[name] = &tableDef{entity: e, fks: map[string]string{}}
		order = append(order, name)
	}
	var bridges []*Relationship
	for _, r := range m.Schema.Relationships {
		st := m.Storage(r)
		if st.Bridge {
			bridges = append(bridges, r)
			continue
		}
		defs[st.Table].fks[st.FKCol] = m.EntityTable(st.RefEntity)
	}

	// Topological order over FK dependencies (Kahn).
	depends := func(t string) []string {
		var out []string
		for _, ref := range defs[t].fks {
			if ref != t { // self-references never block creation in rdb
				out = append(out, ref)
			}
		}
		sort.Strings(out)
		return out
	}
	emitted := map[string]bool{}
	var sorted []string
	for len(sorted) < len(order) {
		progressed := false
		for _, t := range order {
			if emitted[t] {
				continue
			}
			ready := true
			for _, dep := range depends(t) {
				if !emitted[dep] {
					ready = false
					break
				}
			}
			if ready {
				emitted[t] = true
				sorted = append(sorted, t)
				progressed = true
			}
		}
		if !progressed {
			// Cycle: emit the remaining tables without the FK constraints
			// that reference not-yet-emitted tables.
			for _, t := range order {
				if !emitted[t] {
					for col, ref := range defs[t].fks {
						if !emitted[ref] && ref != t {
							delete(defs[t].fks, col)
						}
					}
					emitted[t] = true
					sorted = append(sorted, t)
				}
			}
		}
	}

	var ddl []string
	for _, t := range sorted {
		def := defs[t]
		var b strings.Builder
		fmt.Fprintf(&b, "CREATE TABLE %s (\n  %s INTEGER PRIMARY KEY AUTOINCREMENT", t, OIDColumn)
		for _, a := range def.entity.Attributes {
			fmt.Fprintf(&b, ",\n  %s %s", m.AttrColumn(a.Name), a.Type)
			if a.Required {
				b.WriteString(" NOT NULL")
			}
			if a.Unique {
				b.WriteString(" UNIQUE")
			}
		}
		fkCols := make([]string, 0, len(def.fks))
		for col := range def.fks {
			fkCols = append(fkCols, col)
		}
		sort.Strings(fkCols)
		for _, col := range fkCols {
			fmt.Fprintf(&b, ",\n  %s INTEGER", col)
		}
		for _, col := range fkCols {
			fmt.Fprintf(&b, ",\n  FOREIGN KEY (%s) REFERENCES %s(%s)", col, def.fks[col], OIDColumn)
		}
		b.WriteString("\n)")
		ddl = append(ddl, b.String())
		for _, col := range fkCols {
			ddl = append(ddl, fmt.Sprintf("CREATE INDEX idx_%s_%s ON %s(%s)", t, col, t, col))
		}
	}
	for _, r := range bridges {
		bt := BridgeTable(r)
		ddl = append(ddl, fmt.Sprintf(
			"CREATE TABLE %s (\n  %s INTEGER PRIMARY KEY AUTOINCREMENT,\n  %s INTEGER NOT NULL,\n  %s INTEGER NOT NULL,\n  FOREIGN KEY (%s) REFERENCES %s(%s),\n  FOREIGN KEY (%s) REFERENCES %s(%s)\n)",
			bt, OIDColumn, BridgeFrom, BridgeTo,
			BridgeFrom, m.EntityTable(r.From), OIDColumn,
			BridgeTo, m.EntityTable(r.To), OIDColumn))
		ddl = append(ddl, fmt.Sprintf("CREATE INDEX idx_%s_from ON %s(%s)", bt, bt, BridgeFrom))
		ddl = append(ddl, fmt.Sprintf("CREATE INDEX idx_%s_to ON %s(%s)", bt, bt, BridgeTo))
	}
	return ddl
}

// Navigation describes how to go from one entity's instance to its related
// instances of the other entity across a relationship.
type Navigation struct {
	// TargetEntity is the entity reached by the navigation.
	TargetEntity string
	// Join is a SQL fragment: for bridge relationships, the join through
	// the bridge table; for FK relationships, a WHERE-style equality. The
	// codegen package composes full queries from these pieces.
	Bridge bool
	// BridgeTable, BridgeNearCol, BridgeFarCol are set when Bridge.
	BridgeTable, BridgeNearCol, BridgeFarCol string
	// FKOnTarget is true when the target table holds the FK pointing back
	// at the source instance; false when the source table holds the FK
	// pointing at the target.
	FKOnTarget bool
	// FKCol is the FK column name (when not Bridge).
	FKCol string
}

// Navigate resolves how to traverse rel starting from entity "from".
// The from argument may be either endpoint of the relationship.
func (m *Mapping) Navigate(rel *Relationship, from string) (Navigation, error) {
	var target string
	switch {
	case strings.EqualFold(from, rel.From):
		target = rel.To
	case strings.EqualFold(from, rel.To):
		target = rel.From
	default:
		return Navigation{}, fmt.Errorf("er: entity %q is not an endpoint of relationship %q", from, rel.Name)
	}
	st := m.Storage(rel)
	if st.Bridge {
		nav := Navigation{TargetEntity: target, Bridge: true, BridgeTable: st.Table}
		if strings.EqualFold(from, rel.From) {
			nav.BridgeNearCol, nav.BridgeFarCol = BridgeFrom, BridgeTo
		} else {
			nav.BridgeNearCol, nav.BridgeFarCol = BridgeTo, BridgeFrom
		}
		return nav, nil
	}
	nav := Navigation{TargetEntity: target, FKCol: st.FKCol}
	nav.FKOnTarget = strings.EqualFold(st.FKSide, target)
	return nav, nil
}
