package er

import (
	"strings"
	"testing"

	"webmlgo/internal/rdb"
)

// acmSchema is the data model behind Figure 1: volumes, issues, papers.
func acmSchema() *Schema {
	return &Schema{
		Entities: []*Entity{
			{Name: "Volume", Attributes: []Attribute{
				{Name: "Title", Type: String, Required: true},
				{Name: "Year", Type: Int},
			}},
			{Name: "Issue", Attributes: []Attribute{
				{Name: "Number", Type: Int},
			}},
			{Name: "Paper", Attributes: []Attribute{
				{Name: "Title", Type: String},
				{Name: "Abstract", Type: String},
			}},
			{Name: "Keyword", Attributes: []Attribute{
				{Name: "Word", Type: String, Unique: true},
			}},
		},
		Relationships: []*Relationship{
			{Name: "VolumeToIssue", From: "Volume", To: "Issue",
				FromRole: "VolumeToIssue", ToRole: "IssueToVolume",
				FromCard: Many, ToCard: One},
			{Name: "IssueToPaper", From: "Issue", To: "Paper",
				FromRole: "IssueToPaper", ToRole: "PaperToIssue",
				FromCard: Many, ToCard: One},
			{Name: "PaperKeyword", From: "Paper", To: "Keyword",
				FromRole: "PaperToKeyword", ToRole: "KeywordToPaper",
				FromCard: Many, ToCard: Many},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := acmSchema().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	cases := []struct {
		name  string
		wreck func(*Schema)
		want  string
	}{
		{"duplicate entity", func(s *Schema) {
			s.Entities = append(s.Entities, &Entity{Name: "volume", Attributes: []Attribute{{Name: "X", Type: Int}}})
		}, "duplicate entity"},
		{"empty entity", func(s *Schema) {
			s.Entities = append(s.Entities, &Entity{Name: "Empty"})
		}, "no attributes"},
		{"duplicate attribute", func(s *Schema) {
			e := s.Entity("Volume")
			e.Attributes = append(e.Attributes, Attribute{Name: "title", Type: String})
		}, "duplicate attribute"},
		{"reserved oid", func(s *Schema) {
			e := s.Entity("Volume")
			e.Attributes = append(e.Attributes, Attribute{Name: "OID", Type: Int})
		}, "reserved attribute"},
		{"unknown endpoint", func(s *Schema) {
			s.Relationships = append(s.Relationships, &Relationship{
				Name: "Bad", From: "Volume", To: "Nowhere", FromRole: "a", ToRole: "b"})
		}, "unknown entity"},
		{"missing roles", func(s *Schema) {
			s.Relationships = append(s.Relationships, &Relationship{Name: "NoRoles", From: "Volume", To: "Issue"})
		}, "must name both roles"},
		{"duplicate relationship", func(s *Schema) {
			s.Relationships = append(s.Relationships, &Relationship{
				Name: "volumetoissue", From: "Volume", To: "Issue", FromRole: "x", ToRole: "y"})
		}, "duplicate relationship"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := acmSchema()
			c.wreck(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("expected validation error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestRelationshipKinds(t *testing.T) {
	s := acmSchema()
	if k := s.Relationship("VolumeToIssue").Kind(); k != OneToMany {
		t.Fatalf("kind = %v", k)
	}
	if k := s.Relationship("PaperKeyword").Kind(); k != ManyToMany {
		t.Fatalf("kind = %v", k)
	}
	r := &Relationship{FromCard: One, ToCard: One}
	if r.Kind() != OneToOne {
		t.Fatal("one-to-one kind")
	}
	r = &Relationship{FromCard: One, ToCard: Many}
	if r.Kind() != ManyToOne {
		t.Fatal("many-to-one kind")
	}
}

func TestRelationshipLookupByRole(t *testing.T) {
	s := acmSchema()
	if s.Relationship("IssueToVolume") == nil {
		t.Fatal("lookup by inverse role failed")
	}
	if s.Relationship("PaperToIssue") == nil {
		t.Fatal("lookup by role failed")
	}
}

func TestStorage(t *testing.T) {
	s := acmSchema()
	m, err := NewMapping(s)
	if err != nil {
		t.Fatal(err)
	}
	st := m.Storage(s.Relationship("VolumeToIssue"))
	if st.Bridge || st.Table != "issue" || st.FKCol != "fk_volumetoissue" || st.RefEntity != "Volume" {
		t.Fatalf("storage = %+v", st)
	}
	st = m.Storage(s.Relationship("PaperKeyword"))
	if !st.Bridge || st.Table != "rel_paperkeyword" {
		t.Fatalf("storage = %+v", st)
	}
}

func TestNavigate(t *testing.T) {
	s := acmSchema()
	m, _ := NewMapping(s)
	rel := s.Relationship("VolumeToIssue")

	nav, err := m.Navigate(rel, "Volume")
	if err != nil {
		t.Fatal(err)
	}
	if nav.TargetEntity != "Issue" || !nav.FKOnTarget || nav.FKCol != "fk_volumetoissue" {
		t.Fatalf("nav = %+v", nav)
	}

	nav, err = m.Navigate(rel, "Issue")
	if err != nil {
		t.Fatal(err)
	}
	if nav.TargetEntity != "Volume" || nav.FKOnTarget {
		t.Fatalf("nav = %+v", nav)
	}

	bridge := s.Relationship("PaperKeyword")
	nav, err = m.Navigate(bridge, "Keyword")
	if err != nil {
		t.Fatal(err)
	}
	if !nav.Bridge || nav.BridgeNearCol != BridgeTo || nav.BridgeFarCol != BridgeFrom {
		t.Fatalf("nav = %+v", nav)
	}

	if _, err := m.Navigate(rel, "Paper"); err == nil {
		t.Fatal("navigate from non-endpoint accepted")
	}
}

// TestDDLExecutesOnEngine is the integration contract: generated DDL must
// be accepted by the rdb engine and produce working foreign keys.
func TestDDLExecutesOnEngine(t *testing.T) {
	m, err := NewMapping(acmSchema())
	if err != nil {
		t.Fatal(err)
	}
	db := rdb.Open()
	for _, stmt := range m.DDL() {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatalf("DDL %q: %v", stmt, err)
		}
	}
	if _, err := db.Exec(`INSERT INTO volume (title, year) VALUES ('TODS 27', 2002)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO issue (number, fk_volumetoissue) VALUES (1, 1)`); err != nil {
		t.Fatal(err)
	}
	// Foreign keys must be live.
	if _, err := db.Exec(`INSERT INTO issue (number, fk_volumetoissue) VALUES (1, 99)`); err == nil {
		t.Fatal("dangling FK accepted")
	}
	// Bridge table exists with both FKs.
	if _, err := db.Exec(`INSERT INTO paper (title) VALUES ('P')`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO keyword (word) VALUES ('db')`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO rel_paperkeyword (from_oid, to_oid) VALUES (1, 1)`); err != nil {
		t.Fatal(err)
	}
}

func TestDDLOrdersDependencies(t *testing.T) {
	m, _ := NewMapping(acmSchema())
	ddl := m.DDL()
	pos := map[string]int{}
	for i, stmt := range ddl {
		if strings.HasPrefix(stmt, "CREATE TABLE ") {
			name := strings.Fields(stmt)[2]
			pos[name] = i
		}
	}
	if pos["volume"] > pos["issue"] {
		t.Fatal("issue created before volume")
	}
	if pos["issue"] > pos["paper"] {
		t.Fatal("paper created before issue")
	}
}

func TestDDLCycleDegradesGracefully(t *testing.T) {
	s := &Schema{
		Entities: []*Entity{
			{Name: "A", Attributes: []Attribute{{Name: "X", Type: Int}}},
			{Name: "B", Attributes: []Attribute{{Name: "Y", Type: Int}}},
		},
		Relationships: []*Relationship{
			{Name: "AB", From: "A", To: "B", FromRole: "ab", ToRole: "ba", FromCard: Many, ToCard: One},
			{Name: "BA", From: "B", To: "A", FromRole: "ba2", ToRole: "ab2", FromCard: Many, ToCard: One},
		},
	}
	m, err := NewMapping(s)
	if err != nil {
		t.Fatal(err)
	}
	db := rdb.Open()
	for _, stmt := range m.DDL() {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatalf("cyclic DDL rejected: %q: %v", stmt, err)
		}
	}
}

func TestEntityAttributeLookup(t *testing.T) {
	e := acmSchema().Entity("Volume")
	if e.Attribute("title") == nil {
		t.Fatal("case-insensitive attribute lookup failed")
	}
	if e.Attribute("nope") != nil {
		t.Fatal("ghost attribute found")
	}
}

func TestAttrTypeStrings(t *testing.T) {
	want := map[AttrType]string{String: "TEXT", Int: "INTEGER", Float: "REAL", Bool: "BOOLEAN", Time: "TIMESTAMP"}
	for typ, s := range want {
		if typ.String() != s {
			t.Fatalf("%v.String() = %q, want %q", typ, typ.String(), s)
		}
	}
}

// TestReverseRoundTrip: generating DDL from a schema and then
// reverse-engineering the database reproduces the schema's structure.
func TestReverseRoundTrip(t *testing.T) {
	m, err := NewMapping(acmSchema())
	if err != nil {
		t.Fatal(err)
	}
	db := rdb.Open()
	for _, stmt := range m.DDL() {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	back, issues, err := Reverse(db)
	if err != nil {
		t.Fatalf("%v (issues: %v)", err, issues)
	}
	if len(issues) != 0 {
		t.Fatalf("issues = %v", issues)
	}
	if len(back.Entities) != 4 {
		t.Fatalf("entities = %d", len(back.Entities))
	}
	vol := back.Entity("Volume")
	if vol == nil || vol.Attribute("Title") == nil || vol.Attribute("Year") == nil {
		t.Fatalf("volume = %+v", vol)
	}
	if !vol.Attribute("Title").Required {
		t.Fatal("required flag lost")
	}
	kw := back.Entity("Keyword")
	if kw == nil || !kw.Attribute("Word").Unique {
		t.Fatal("unique flag lost")
	}
	// 1:N via FK columns.
	v2i := back.Relationship("Volumetoissue")
	if v2i == nil || v2i.Kind() != OneToMany || !strings.EqualFold(v2i.From, "Volume") || !strings.EqualFold(v2i.To, "Issue") {
		t.Fatalf("v2i = %+v", v2i)
	}
	// N:M via bridge table.
	pk := back.Relationship("Paperkeyword")
	if pk == nil || pk.Kind() != ManyToMany {
		t.Fatalf("pk = %+v", pk)
	}
	// The reverse-engineered schema maps forward again.
	if _, err := NewMapping(back); err != nil {
		t.Fatal(err)
	}
}

func TestReverseReportsNonConformingTables(t *testing.T) {
	db := rdb.Open()
	stmts := []string{
		`CREATE TABLE legacy (code TEXT PRIMARY KEY, payload TEXT)`,
		`CREATE TABLE product (oid INTEGER PRIMARY KEY AUTOINCREMENT, name TEXT)`,
		`CREATE TABLE rel_broken (oid INTEGER PRIMARY KEY AUTOINCREMENT, x INTEGER)`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	schema, issues, err := Reverse(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(schema.Entities) != 1 || schema.Entities[0].Name != "Product" {
		t.Fatalf("entities = %+v", schema.Entities)
	}
	joined := strings.Join(issues, ";")
	if !strings.Contains(joined, `"legacy"`) || !strings.Contains(joined, `"rel_broken"`) {
		t.Fatalf("issues = %v", issues)
	}
}
