// Package er implements the Entity-Relationship data model of WebRatio
// (Section 1 of the paper): entities with typed attributes and binary
// relationships with cardinality constraints. As in the paper, the model
// is "quite conventional, with a few limitations that make the ER schema
// easier to map onto a standard relational schema": relationships are
// binary, attributes are atomic, and every entity gets a synthetic OID
// primary key. The relational mapping and DDL generation live here too.
package er

import (
	"fmt"
	"sort"
	"strings"
)

// AttrType enumerates attribute domains.
type AttrType int

const (
	// String is a text attribute.
	String AttrType = iota
	// Int is an integer attribute.
	Int
	// Float is a real-valued attribute.
	Float
	// Bool is a boolean attribute.
	Bool
	// Time is a timestamp attribute.
	Time
)

// String returns the DDL spelling of the attribute type.
func (t AttrType) String() string {
	switch t {
	case String:
		return "TEXT"
	case Int:
		return "INTEGER"
	case Float:
		return "REAL"
	case Bool:
		return "BOOLEAN"
	case Time:
		return "TIMESTAMP"
	}
	return fmt.Sprintf("AttrType(%d)", int(t))
}

// Attribute is one atomic property of an entity.
type Attribute struct {
	Name string
	Type AttrType
	// Unique marks a secondary key (e.g. an email address).
	Unique bool
	// Required forbids NULL values.
	Required bool
}

// Entity is a class of objects published and managed by the application.
type Entity struct {
	Name       string
	Attributes []Attribute
}

// Attribute returns the named attribute, or nil.
func (e *Entity) Attribute(name string) *Attribute {
	for i := range e.Attributes {
		if strings.EqualFold(e.Attributes[i].Name, name) {
			return &e.Attributes[i]
		}
	}
	return nil
}

// Cardinality is the maximum cardinality of one relationship role.
type Cardinality int

const (
	// One means at most one related instance.
	One Cardinality = iota
	// Many means unbounded related instances.
	Many
)

// Relationship is a binary relationship between two entities. Role names
// give the two navigation directions (e.g. VolumeToIssue / IssueToVolume).
type Relationship struct {
	Name string
	// From / To are entity names.
	From, To string
	// FromRole is the name used to navigate From -> To; ToRole the inverse.
	FromRole, ToRole string
	// FromCard is the maximum number of To-instances per From-instance;
	// ToCard the inverse. A one-to-many Volume–Issue relationship has
	// FromCard = Many (a volume has many issues) and ToCard = One.
	FromCard, ToCard Cardinality
}

// Kind classifies the relationship by its cardinality pair.
type Kind int

const (
	// OneToOne relates at most one instance on both sides.
	OneToOne Kind = iota
	// OneToMany relates one From-instance to many To-instances.
	OneToMany
	// ManyToOne relates many From-instances to one To-instance.
	ManyToOne
	// ManyToMany is unbounded on both sides and maps to a bridge table.
	ManyToMany
)

// Kind returns the relationship's cardinality class.
func (r *Relationship) Kind() Kind {
	switch {
	case r.FromCard == One && r.ToCard == One:
		return OneToOne
	case r.FromCard == Many && r.ToCard == One:
		return OneToMany
	case r.FromCard == One && r.ToCard == Many:
		return ManyToOne
	default:
		return ManyToMany
	}
}

// Schema is a complete ER data model.
type Schema struct {
	Entities      []*Entity
	Relationships []*Relationship
}

// Entity returns the named entity, or nil.
func (s *Schema) Entity(name string) *Entity {
	for _, e := range s.Entities {
		if strings.EqualFold(e.Name, name) {
			return e
		}
	}
	return nil
}

// Relationship returns the named relationship, or nil. Role names are
// accepted too, since WebML units reference relationships by role.
func (s *Schema) Relationship(name string) *Relationship {
	for _, r := range s.Relationships {
		if strings.EqualFold(r.Name, name) || strings.EqualFold(r.FromRole, name) || strings.EqualFold(r.ToRole, name) {
			return r
		}
	}
	return nil
}

// ValidationError aggregates every problem found in a schema.
type ValidationError struct {
	Problems []string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("er: invalid schema: %s", strings.Join(e.Problems, "; "))
}

// Validate checks structural well-formedness: unique names, non-empty
// entities, resolvable relationship endpoints, distinct role names.
func (s *Schema) Validate() error {
	var problems []string
	seenEntity := map[string]bool{}
	for _, e := range s.Entities {
		lower := strings.ToLower(e.Name)
		if e.Name == "" {
			problems = append(problems, "entity with empty name")
			continue
		}
		if seenEntity[lower] {
			problems = append(problems, fmt.Sprintf("duplicate entity %q", e.Name))
		}
		seenEntity[lower] = true
		if len(e.Attributes) == 0 {
			problems = append(problems, fmt.Sprintf("entity %q has no attributes", e.Name))
		}
		seenAttr := map[string]bool{}
		for _, a := range e.Attributes {
			la := strings.ToLower(a.Name)
			if a.Name == "" {
				problems = append(problems, fmt.Sprintf("entity %q has an attribute with empty name", e.Name))
				continue
			}
			if la == "oid" {
				problems = append(problems, fmt.Sprintf("entity %q declares reserved attribute name \"oid\"", e.Name))
			}
			if seenAttr[la] {
				problems = append(problems, fmt.Sprintf("entity %q has duplicate attribute %q", e.Name, a.Name))
			}
			seenAttr[la] = true
		}
	}
	seenRel := map[string]bool{}
	for _, r := range s.Relationships {
		if r.Name == "" {
			problems = append(problems, "relationship with empty name")
			continue
		}
		lower := strings.ToLower(r.Name)
		if seenRel[lower] {
			problems = append(problems, fmt.Sprintf("duplicate relationship %q", r.Name))
		}
		seenRel[lower] = true
		if !seenEntity[strings.ToLower(r.From)] {
			problems = append(problems, fmt.Sprintf("relationship %q references unknown entity %q", r.Name, r.From))
		}
		if !seenEntity[strings.ToLower(r.To)] {
			problems = append(problems, fmt.Sprintf("relationship %q references unknown entity %q", r.Name, r.To))
		}
		if r.FromRole == "" || r.ToRole == "" {
			problems = append(problems, fmt.Sprintf("relationship %q must name both roles", r.Name))
		}
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		return &ValidationError{Problems: problems}
	}
	return nil
}
