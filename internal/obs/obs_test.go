package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		ns   uint64
		want int
	}{
		{0, 0}, {1, 0}, {1024, 0}, {1025, 1}, {2048, 1}, {2049, 2},
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Huge values land in the overflow bucket.
	if got := bucketIndex(1 << 60); got != numBuckets-1 {
		t.Errorf("overflow bucket = %d, want %d", got, numBuckets-1)
	}
}

func TestHistogramQuantilesAndMinMax(t *testing.T) {
	var h Histogram
	// 100 observations: 1ms..100ms
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	p50 := s.Quantile(0.5)
	if p50 < 20*time.Millisecond || p50 > 80*time.Millisecond {
		t.Errorf("p50 = %v, want roughly 50ms (log buckets are coarse)", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 50*time.Millisecond || p99 > 100*time.Millisecond {
		t.Errorf("p99 = %v", p99)
	}
	if s.Quantile(1) != s.Max || s.Quantile(0) != s.Min {
		t.Errorf("quantile extremes not clamped to min/max")
	}
	if mean := s.Mean(); mean < 40*time.Millisecond || mean > 60*time.Millisecond {
		t.Errorf("mean = %v, want ~50.5ms", mean)
	}
}

func TestHistogramErrorRate(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.ObserveErr(time.Millisecond, i < 3)
	}
	s := h.Snapshot()
	if s.Errs != 3 {
		t.Fatalf("errs = %d", s.Errs)
	}
	if got := s.ErrorRate(); got != 0.3 {
		t.Fatalf("error rate = %v", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i+1) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
}

func TestHistogramVecExposition(t *testing.T) {
	v := NewHistogramVec("webml_unit_seconds", "Unit service latency.", "unit")
	v.Observe("u1", 5*time.Millisecond)
	v.Observe("u2", 50*time.Millisecond)
	v.ObserveErr("u2", 10*time.Millisecond, true)

	reg := NewRegistry()
	reg.RegisterVec(v)
	reg.Gauge("webml_cache_hits", "Cache hits.", map[string]string{"cache": "bean"}, func() float64 { return 42 })

	var b strings.Builder
	reg.Write(&b)
	out := b.String()

	for _, want := range []string{
		"# HELP webml_unit_seconds Unit service latency.",
		"# TYPE webml_unit_seconds histogram",
		`webml_unit_seconds_count{unit="u1"} 1`,
		`webml_unit_seconds_count{unit="u2"} 2`,
		`le="+Inf"`,
		`webml_unit_seconds_quantile{q="0.5",unit="u1"}`,
		`webml_unit_seconds_quantile{q="0.99",unit="u2"}`,
		`webml_unit_seconds_errors_total{unit="u2"} 1`,
		`webml_cache_hits{cache="bean"} 42`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// HELP must appear exactly once per family even with many series.
	if n := strings.Count(out, "# HELP webml_unit_seconds Unit"); n != 1 {
		t.Errorf("HELP emitted %d times", n)
	}
}

func TestLabelEscaping(t *testing.T) {
	var b strings.Builder
	e := &Exposition{families: map[string]*family{}}
	e.Gauge("g", "h", map[string]string{"k": "a\"b\\c\nd"}, 1)
	e.writeTo(&b)
	if !strings.Contains(b.String(), `k="a\"b\\c\nd"`) {
		t.Errorf("bad escaping: %s", b.String())
	}
}

func TestTraceSpansAndContext(t *testing.T) {
	tr := NewTracer(8, time.Hour)
	ctx, trace := tr.Start(context.Background(), "page:Home")
	if trace == nil {
		t.Fatal("expected traced request")
	}
	ctx2, sp := StartSpan(ctx, "page.compute")
	sp.Label("page", "Home")
	leaf := Leaf(ctx2, "cache.get").Label("outcome", "miss")
	leaf.End()
	sp.End()
	tr.Finish(trace, 200)

	spans := trace.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	root, ok := byName["request"]
	if !ok {
		t.Fatal("no root span")
	}
	if byName["page.compute"].Parent != root.ID {
		t.Errorf("page.compute parent = %d, want root %d", byName["page.compute"].Parent, root.ID)
	}
	if byName["cache.get"].Parent != byName["page.compute"].ID {
		t.Errorf("cache.get parent = %d, want %d", byName["cache.get"].Parent, byName["page.compute"].ID)
	}
}

func TestNilSpanHandleSafe(t *testing.T) {
	ctx := context.Background() // no trace installed
	ctx2, sp := StartSpan(ctx, "x")
	if ctx2 != ctx || sp != nil {
		t.Fatal("untraced StartSpan must return ctx unchanged and nil handle")
	}
	sp.Label("a", "b").End()
	sp.EndErr(nil)
	if id := sp.ID(); id != 0 {
		t.Fatal("nil handle ID must be 0")
	}
	if tid, sid := sp.Wire(); tid != 0 || sid != 0 {
		t.Fatal("nil handle Wire must be zeros")
	}
	sp.ImportRemote(nil)
	Leaf(ctx, "y").End()
}

func TestRemoteTraceStitching(t *testing.T) {
	tr := NewTracer(8, time.Hour)
	ctx, trace := tr.Start(context.Background(), "page:Home")
	_, call := StartSpan(ctx, "ejb.call")
	traceID, spanID := call.Wire()

	// Far side: container reconstructs, records, exports.
	remote := NewRemoteTrace(traceID, spanID)
	rctx := ContextWithTrace(context.Background(), remote, spanID)
	rsp := Leaf(rctx, "container.invoke").Label("kind", "unit")
	rsp.End()
	call.ImportRemote(remote.Export())
	call.End()
	tr.Finish(trace, 200)

	spans := trace.Spans()
	var callSpan, remoteSpan *Span
	for i := range spans {
		switch spans[i].Name {
		case "ejb.call":
			callSpan = &spans[i]
		case "container.invoke":
			remoteSpan = &spans[i]
		}
	}
	if callSpan == nil || remoteSpan == nil {
		t.Fatalf("missing spans: %+v", spans)
	}
	if remoteSpan.Parent != callSpan.ID {
		t.Errorf("remote parent = %d, want caller span %d", remoteSpan.Parent, callSpan.ID)
	}
	// IDs from the two sides must not collide.
	seen := map[uint64]bool{}
	for _, s := range spans {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestTracerRingAndSlowCapture(t *testing.T) {
	tr := NewTracer(4, 10*time.Millisecond)
	for i := 0; i < 6; i++ {
		_, tt := tr.Start(context.Background(), "fast")
		tr.Finish(tt, 200)
	}
	_, slow := tr.Start(context.Background(), "slow")
	slow.Start = slow.Start.Add(-50 * time.Millisecond) // simulate elapsed time
	tr.Finish(slow, 200)

	recent := tr.Traces(0, false, 0)
	if len(recent) != 4 {
		t.Fatalf("recent ring holds %d, want 4 (capacity)", len(recent))
	}
	slowTraces := tr.Traces(0, true, 0)
	if len(slowTraces) != 1 || slowTraces[0].Name != "slow" || !slowTraces[0].Slow {
		t.Fatalf("slow ring: %+v", slowTraces)
	}
	started, slowN := tr.Stats()
	if started != 7 || slowN != 1 {
		t.Fatalf("stats = %d/%d", started, slowN)
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(16, time.Hour)
	tr.SampleEvery = 4
	traced := 0
	for i := 0; i < 16; i++ {
		_, tt := tr.Start(context.Background(), "r")
		if tt != nil {
			traced++
			tr.Finish(tt, 200)
		}
	}
	if traced != 4 {
		t.Fatalf("traced %d of 16 with SampleEvery=4", traced)
	}
}

func TestTracesHandlerJSON(t *testing.T) {
	tr := NewTracer(8, time.Hour)
	ctx, trace := tr.Start(context.Background(), "page:Home")
	Leaf(ctx, "cache.get").Label("outcome", "hit").End()
	tr.Finish(trace, 200)

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?limit=5", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var body struct {
		Started int64       `json:"started"`
		Traces  []TraceView `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if body.Started != 1 || len(body.Traces) != 1 {
		t.Fatalf("body = %+v", body)
	}
	tv := body.Traces[0]
	if tv.Name != "page:Home" || tv.Status != 200 || len(tv.Spans) != 2 {
		t.Fatalf("trace view = %+v", tv)
	}
	foundLabel := false
	for _, s := range tv.Spans {
		if s.Labels["outcome"] == "hit" {
			foundLabel = true
		}
	}
	if !foundLabel {
		t.Error("label lost in view")
	}

	// Bad query params are rejected.
	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?min=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("bad min: status %d", rec.Code)
	}
}
