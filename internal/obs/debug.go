package obs

import (
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Shared query-parameter validation for the /debug/* endpoints. Debug
// handlers are operator-facing, so a malformed parameter answers 400
// with a usage hint instead of being silently coerced — a negative
// limit or an absurd duration is a typo worth catching, not a filter
// worth honoring.

// Bounds the debug endpoints enforce: a duration filter beyond a year
// or a limit beyond 10k cannot be meant seriously against rings of a
// few hundred entries.
const (
	maxDebugDuration = 365 * 24 * time.Hour
	maxDebugLimit    = 10000
)

// ParseDebugDuration parses a min-duration filter: empty selects zero;
// otherwise a non-negative Go duration no longer than a year.
func ParseDebugDuration(name, s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("%s: %q is not a duration (want a Go duration like 100ms or 2s)", name, s)
	}
	if d < 0 {
		return 0, fmt.Errorf("%s: must be non-negative, got %q", name, s)
	}
	if d > maxDebugDuration {
		return 0, fmt.Errorf("%s: %q exceeds the maximum of %s", name, s, maxDebugDuration)
	}
	return d, nil
}

// ParseDebugLimit parses a result-count bound: empty selects zero (the
// caller's default); otherwise a non-negative integer up to 10000.
func ParseDebugLimit(name, s string) (int, error) {
	if s == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("%s: %q is not an integer", name, s)
	}
	if n < 0 {
		return 0, fmt.Errorf("%s: must be non-negative, got %d", name, n)
	}
	if n > maxDebugLimit {
		return 0, fmt.Errorf("%s: %d exceeds the maximum of %d", name, n, maxDebugLimit)
	}
	return n, nil
}

// ParseDebugBool parses a flag parameter: only "", "0", "1", "true"
// and "false" are accepted.
func ParseDebugBool(name, s string) (bool, error) {
	switch s {
	case "", "0", "false":
		return false, nil
	case "1", "true":
		return true, nil
	}
	return false, fmt.Errorf("%s: %q is not a flag (want 0, 1, true or false)", name, s)
}

// DebugParamError answers a parameter error as 400 plus the endpoint's
// usage line.
func DebugParamError(w http.ResponseWriter, err error, usage string) {
	http.Error(w, "bad request: "+err.Error()+"\nusage: "+usage, http.StatusBadRequest)
}
