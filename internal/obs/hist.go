package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// numBuckets covers ~1µs to ~137s with power-of-two boundaries: bucket i
// holds observations <= 1<<(minExp+i) nanoseconds, the last bucket is
// +Inf. Fixed log-spaced boundaries mean the hot path is one bits.Len64
// plus an atomic add — no locks, no allocation.
const (
	numBuckets = 28
	minExp     = 10 // smallest boundary: 1<<10 ns ≈ 1µs
)

// bucketBound returns the upper bound of bucket i in nanoseconds, or
// +Inf for the overflow bucket.
func bucketBound(i int) float64 {
	if i >= numBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1) << (minExp + i))
}

// bucketIndex maps a duration in nanoseconds to its bucket.
func bucketIndex(ns uint64) int {
	if ns == 0 {
		return 0
	}
	// bits.Len64 gives the exponent of the next power of two >= ns.
	e := bits.Len64(ns - 1)
	if e <= minExp {
		return 0
	}
	i := e - minExp
	if i >= numBuckets {
		return numBuckets - 1
	}
	return i
}

// Histogram is a fixed-boundary latency histogram with atomic counters:
// zero locks and zero allocations on the observe path.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	errs    atomic.Uint64
	min     atomic.Uint64 // 0 = unset
	max     atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.observe(d, false) }

// ObserveErr records one duration and, when failed, counts it toward
// the series' error total.
func (h *Histogram) ObserveErr(d time.Duration, failed bool) { h.observe(d, failed) }

func (h *Histogram) observe(d time.Duration, failed bool) {
	ns := uint64(d.Nanoseconds())
	if ns == 0 {
		ns = 1 // keep 0 free as the "unset" sentinel for min
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	if failed {
		h.errs.Add(1)
	}
	for {
		cur := h.min.Load()
		if cur != 0 && cur <= ns {
			break
		}
		if h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= ns {
			break
		}
		if h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram, safe to quantile
// and expose without racing the hot path.
type HistSnapshot struct {
	Buckets [numBuckets]uint64
	Count   uint64
	Sum     time.Duration
	Errs    uint64
	Min     time.Duration
	Max     time.Duration
}

// Snapshot copies the counters. Counts are read bucket-by-bucket, so a
// snapshot taken under concurrent writes can be off by in-flight
// observations — fine for monitoring.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	s.Errs = h.errs.Load()
	s.Min = time.Duration(h.min.Load())
	s.Max = time.Duration(h.max.Load())
	return s
}

// Merge returns the element-wise sum of two snapshots — one histogram
// covering both series.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := s
	for i := range out.Buckets {
		out.Buckets[i] += o.Buckets[i]
	}
	out.Count += o.Count
	out.Sum += o.Sum
	out.Errs += o.Errs
	if s.Count == 0 || (o.Count > 0 && o.Min < s.Min) {
		out.Min = o.Min
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	return out
}

// Delta returns the observations recorded in s but not in prev — the
// window between two snapshots of the same histogram, for windowed
// quantiles (a supervisor watching recent p99 rather than
// since-startup p99). Min/Max carry over from s: the log buckets bound
// the quantile well enough for threshold decisions.
func (s HistSnapshot) Delta(prev HistSnapshot) HistSnapshot {
	out := s
	for i := range out.Buckets {
		if prev.Buckets[i] <= out.Buckets[i] {
			out.Buckets[i] -= prev.Buckets[i]
		} else {
			out.Buckets[i] = 0
		}
	}
	if prev.Count <= out.Count {
		out.Count -= prev.Count
	} else {
		out.Count = 0
	}
	if prev.Sum <= out.Sum {
		out.Sum -= prev.Sum
	} else {
		out.Sum = 0
	}
	if prev.Errs <= out.Errs {
		out.Errs -= prev.Errs
	} else {
		out.Errs = 0
	}
	return out
}

// Mean returns the average observation.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// ErrorRate returns the fraction of observations recorded as errors.
func (s HistSnapshot) ErrorRate() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Errs) / float64(s.Count)
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// within the bucket containing the rank, clamped to the observed
// min/max so coarse log buckets can't report impossible values.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		prev := cum
		cum += n
		if float64(cum) < rank {
			continue
		}
		lo := float64(0)
		if i > 0 {
			lo = bucketBound(i - 1)
		}
		hi := bucketBound(i)
		if math.IsInf(hi, 1) {
			hi = float64(s.Max)
		}
		frac := (rank - float64(prev)) / float64(n)
		est := time.Duration(lo + (hi-lo)*frac)
		if est < s.Min {
			est = s.Min
		}
		if s.Max > 0 && est > s.Max {
			est = s.Max
		}
		return est
	}
	return s.Max
}

// HistogramVec is a family of histograms keyed by one model-derived
// label (page ID, unit ID, entity...). Series are created on first
// observation; steady-state observes are one lock-free sync.Map load
// plus the atomic histogram update.
type HistogramVec struct {
	Name  string // metric family name, e.g. webml_page_compute_seconds
	Help  string
	Label string // label key, e.g. "page"

	m sync.Map // label value -> *Histogram
}

// NewHistogramVec names a histogram family keyed by the given label.
func NewHistogramVec(name, help, label string) *HistogramVec {
	return &HistogramVec{Name: name, Help: help, Label: label}
}

// Get returns the series for a label value, creating it on first use.
func (v *HistogramVec) Get(labelValue string) *Histogram {
	if h, ok := v.m.Load(labelValue); ok {
		return h.(*Histogram)
	}
	h, _ := v.m.LoadOrStore(labelValue, &Histogram{})
	return h.(*Histogram)
}

// Observe records one duration for a label value.
func (v *HistogramVec) Observe(labelValue string, d time.Duration) {
	v.Get(labelValue).Observe(d)
}

// ObserveErr records one duration for a label value with error status.
func (v *HistogramVec) ObserveErr(labelValue string, d time.Duration, failed bool) {
	v.Get(labelValue).ObserveErr(d, failed)
}

// SeriesSnapshot is one labeled series' snapshot.
type SeriesSnapshot struct {
	LabelValue string
	Hist       HistSnapshot
}

// Snapshot copies every series, sorted by label value for stable output.
func (v *HistogramVec) Snapshot() []SeriesSnapshot {
	var out []SeriesSnapshot
	v.m.Range(func(k, h any) bool {
		out = append(out, SeriesSnapshot{LabelValue: k.(string), Hist: h.(*Histogram).Snapshot()})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].LabelValue < out[j].LabelValue })
	return out
}
