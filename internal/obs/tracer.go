package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSlowThreshold marks traces as slow exemplars when no explicit
// threshold is configured.
const DefaultSlowThreshold = 250 * time.Millisecond

// Tracer allocates request traces and retains finished ones in two
// fixed-size ring buffers: every recent trace, plus a separate ring of
// slow exemplars that fast traffic cannot flush out — the auto-captured
// evidence for "where did this request's budget go".
type Tracer struct {
	// Slow is the exemplar threshold: traces at or above it are also
	// kept in the slow ring (<=0 selects DefaultSlowThreshold).
	Slow time.Duration
	// SampleEvery traces one request in N (<=1 traces all). Histograms
	// are unaffected — only span capture is sampled.
	SampleEvery int

	ids     atomic.Uint64
	reqs    atomic.Uint64
	started atomic.Int64
	slowN   atomic.Int64

	mu     sync.Mutex
	recent []*Trace
	pos    int
	slow   []*Trace
	slowP  int
}

// NewTracer returns a tracer retaining up to capacity recent traces
// (<=0 selects 256) with the given slow-exemplar threshold.
func NewTracer(capacity int, slow time.Duration) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	if slow <= 0 {
		slow = DefaultSlowThreshold
	}
	slowCap := capacity / 4
	if slowCap < 16 {
		slowCap = 16
	}
	return &Tracer{
		Slow:   slow,
		recent: make([]*Trace, 0, capacity),
		slow:   make([]*Trace, 0, slowCap),
	}
}

// Start begins a trace for one request named after its action and
// installs it into ctx with the root span as parent. A sampled-out
// request returns (ctx, nil) — callers skip Finish on nil.
func (tr *Tracer) Start(ctx context.Context, name string) (context.Context, *Trace) {
	if n := tr.SampleEvery; n > 1 {
		if tr.reqs.Add(1)%uint64(n) != 0 {
			return ctx, nil
		}
	}
	t := &Trace{ID: tr.ids.Add(1), Name: name, Start: time.Now()}
	t.rootID = t.newSpanID()
	tr.started.Add(1)
	return ContextWithTrace(ctx, t, t.rootID), t
}

// Finish completes a trace: the root span is materialized over the full
// request duration and the trace is retained in the recent ring (and the
// slow ring when it crossed the threshold).
func (tr *Tracer) Finish(t *Trace, status int) {
	if t == nil {
		return
	}
	t.End = time.Now()
	t.Status = status
	t.append(Span{
		ID:    t.rootID,
		Name:  "request",
		Start: t.Start.UnixNano(),
		End:   t.End.UnixNano(),
	})
	slow := t.End.Sub(t.Start) >= tr.slowThreshold()
	if slow {
		tr.slowN.Add(1)
	}
	tr.mu.Lock()
	tr.recent, tr.pos = ringPush(tr.recent, tr.pos, cap(tr.recent), t)
	if slow {
		tr.slow, tr.slowP = ringPush(tr.slow, tr.slowP, cap(tr.slow), t)
	}
	tr.mu.Unlock()
}

func (tr *Tracer) slowThreshold() time.Duration {
	if tr.Slow > 0 {
		return tr.Slow
	}
	return DefaultSlowThreshold
}

// ringPush appends into a fixed-capacity ring, overwriting the oldest
// entry once full.
func ringPush(ring []*Trace, pos, capacity int, t *Trace) ([]*Trace, int) {
	if len(ring) < capacity {
		return append(ring, t), pos
	}
	ring[pos] = t
	return ring, (pos + 1) % capacity
}

// Stats reports how many traces were started and how many crossed the
// slow threshold.
func (tr *Tracer) Stats() (started, slow int64) {
	return tr.started.Load(), tr.slowN.Load()
}

// SpanView is the JSON form of one span at /debug/traces: times become
// offsets from the trace start, labels become an object.
type SpanView struct {
	ID      uint64            `json:"id"`
	Parent  uint64            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Err     string            `json:"err,omitempty"`
}

// TraceView is the JSON form of one finished trace.
type TraceView struct {
	ID     string     `json:"id"`
	Name   string     `json:"name"`
	Start  time.Time  `json:"start"`
	DurMS  float64    `json:"dur_ms"`
	Status int        `json:"status,omitempty"`
	Slow   bool       `json:"slow,omitempty"`
	Spans  []SpanView `json:"spans"`
}

func (tr *Tracer) view(t *Trace) TraceView {
	base := t.Start.UnixNano()
	spans := t.Export()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].ID < spans[j].ID
	})
	v := TraceView{
		ID:     fmt.Sprintf("%016x", t.ID),
		Name:   t.Name,
		Start:  t.Start,
		DurMS:  float64(t.End.Sub(t.Start).Microseconds()) / 1000,
		Status: t.Status,
		Slow:   t.End.Sub(t.Start) >= tr.slowThreshold(),
		Spans:  make([]SpanView, 0, len(spans)),
	}
	for _, s := range spans {
		sv := SpanView{
			ID:      s.ID,
			Parent:  s.Parent,
			Name:    s.Name,
			StartUS: (s.Start - base) / 1000,
			DurUS:   (s.End - s.Start) / 1000,
			Err:     s.Err,
		}
		if len(s.Labels) >= 2 {
			sv.Labels = make(map[string]string, len(s.Labels)/2)
			for i := 0; i+1 < len(s.Labels); i += 2 {
				sv.Labels[s.Labels[i]] = s.Labels[i+1]
			}
		}
		v.Spans = append(v.Spans, sv)
	}
	return v
}

// Traces returns finished traces, newest first. min filters out traces
// shorter than it; slowOnly restricts to the slow-exemplar ring; limit
// bounds the result (<=0 selects 32).
func (tr *Tracer) Traces(min time.Duration, slowOnly bool, limit int) []TraceView {
	if limit <= 0 {
		limit = 32
	}
	tr.mu.Lock()
	var src []*Trace
	if slowOnly {
		src = append(src, tr.slow...)
	} else {
		src = append(src, tr.recent...)
	}
	tr.mu.Unlock()
	sort.Slice(src, func(i, j int) bool { return src[i].End.After(src[j].End) })
	out := make([]TraceView, 0, limit)
	for _, t := range src {
		if t.End.Sub(t.Start) < min {
			continue
		}
		out = append(out, tr.view(t))
		if len(out) >= limit {
			break
		}
	}
	return out
}

// Handler serves the trace ring as JSON:
//
//	GET /debug/traces            recent traces (newest first)
//	GET /debug/traces?slow=1     slow exemplars only
//	GET /debug/traces?min=100ms  traces at least this long
//	GET /debug/traces?limit=10   bound the count
func (tr *Tracer) Handler() http.Handler {
	const usage = "/debug/traces?min=<duration>&slow=<0|1>&limit=<n>"
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		min, err := ParseDebugDuration("min", q.Get("min"))
		if err != nil {
			DebugParamError(w, err, usage)
			return
		}
		limit, err := ParseDebugLimit("limit", q.Get("limit"))
		if err != nil {
			DebugParamError(w, err, usage)
			return
		}
		slowOnly, err := ParseDebugBool("slow", q.Get("slow"))
		if err != nil {
			DebugParamError(w, err, usage)
			return
		}
		started, slowN := tr.Stats()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]interface{}{ //nolint:errcheck // best-effort debug endpoint
			"started":       started,
			"slow":          slowN,
			"slowThreshold": tr.slowThreshold().String(),
			"traces":        tr.Traces(min, slowOnly, limit),
		})
	})
}
