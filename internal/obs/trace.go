// Package obs is the model-driven observability subsystem: request
// tracing across tiers, per-stage latency histograms, and a hand-rolled
// Prometheus-text-format exposition.
//
// The design mirrors the paper's central argument about caching: just as
// WebRatio derives cache invalidation automatically from the conceptual
// model (each unit's read tags, each operation's write tags), the runtime
// derives observability labels from the same model objects. Every span
// and every histogram series is keyed by the page, unit, entity or
// operation it serves — the developer never instruments anything by
// hand, the model already names every stage of the request.
//
// Tracing is propagated through context.Context inside a process and
// through two gob wire fields (trace ID + parent span ID) across the
// EJB tier boundary; the container ships its spans back in the response,
// so the servlet tier stitches one trace covering edge, controller, page
// workers, caches and remote containers. Finished traces land in a
// fixed-size ring buffer queryable at /debug/traces, with slow traces
// captured separately as exemplars.
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one completed stage of a request. Timestamps are absolute
// UnixNano so container-side spans (same machine or NTP-close) stitch
// into the caller's timeline; Labels is a flat k,v pair list to keep the
// record cheap to build on the hot path.
type Span struct {
	ID     uint64
	Parent uint64
	Name   string
	Labels []string // k1, v1, k2, v2, ...
	Start  int64    // UnixNano
	End    int64    // UnixNano
	Err    string
}

// Trace collects the spans of one request. Span appends take the trace
// mutex, but a trace is private to its request, so the only contention
// is between that request's own page workers — never across requests.
type Trace struct {
	ID     uint64
	Name   string
	Start  time.Time
	End    time.Time
	Status int

	// base offsets span IDs: 0 on the requesting tier; on a container,
	// the calling span's ID shifted high so IDs from both sides of the
	// wire can never collide within one stitched trace.
	base   uint64
	nextID atomic.Uint64
	rootID uint64

	mu    sync.Mutex
	spans []Span
}

func (t *Trace) newSpanID() uint64 { return t.base + t.nextID.Add(1) }

func (t *Trace) append(s Span) {
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Export snapshots the trace's completed spans — the container side of
// the wire protocol ships this back in the invocation response.
func (t *Trace) Export() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Import merges spans produced on the far side of a tier boundary
// (already offset by NewRemoteTrace, so IDs cannot collide).
func (t *Trace) Import(spans []Span) {
	if len(spans) == 0 {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, spans...)
	t.mu.Unlock()
}

// Spans returns a snapshot of the spans recorded so far.
func (t *Trace) Spans() []Span { return t.Export() }

// NewRemoteTrace creates the container-side collector of a propagated
// trace: same trace ID, span IDs offset by the calling span so the two
// sides of the wire allocate from disjoint ranges.
func NewRemoteTrace(traceID, callerSpan uint64) *Trace {
	return &Trace{ID: traceID, Start: time.Now(), base: callerSpan << 20}
}

// active is the context payload: the trace plus the span that new child
// spans parent to.
type active struct {
	t      *Trace
	parent uint64
}

type ctxKey struct{}

// ContextWithTrace installs a trace (and the parent span ID for children)
// into a context — used at request start and on the container side of
// the wire.
func ContextWithTrace(ctx context.Context, t *Trace, parent uint64) context.Context {
	return context.WithValue(ctx, ctxKey{}, active{t: t, parent: parent})
}

// FromContext returns the context's trace and current parent span ID,
// or (nil, 0) when the request is not traced. The nil fast path is a
// single map-free Value lookup, so untraced requests pay nothing else.
func FromContext(ctx context.Context) (*Trace, uint64) {
	if a, ok := ctx.Value(ctxKey{}).(active); ok {
		return a.t, a.parent
	}
	return nil, 0
}

// SpanHandle is an open span. A nil handle (untraced request) is valid:
// every method is a no-op, so call sites need no enabled-checks.
type SpanHandle struct {
	t      *Trace
	id     uint64
	parent uint64
	name   string
	labels []string
	start  int64
}

// StartSpan opens a span that will have children: the returned context
// carries it as the parent for spans opened below. When the request is
// untraced the context is returned unchanged and the handle is nil.
func StartSpan(ctx context.Context, name string) (context.Context, *SpanHandle) {
	t, parent := FromContext(ctx)
	if t == nil {
		return ctx, nil
	}
	sp := &SpanHandle{t: t, id: t.newSpanID(), parent: parent, name: name, start: time.Now().UnixNano()}
	return context.WithValue(ctx, ctxKey{}, active{t: t, parent: sp.id}), sp
}

// Leaf opens a childless span without deriving a new context — the
// cheap form for hot-path stages (a cache probe, one remote call).
func Leaf(ctx context.Context, name string) *SpanHandle {
	t, parent := FromContext(ctx)
	if t == nil {
		return nil
	}
	return &SpanHandle{t: t, id: t.newSpanID(), parent: parent, name: name, start: time.Now().UnixNano()}
}

// Label attaches one model-derived label (page, unit, entity, addr...).
// Chainable and nil-safe.
func (s *SpanHandle) Label(k, v string) *SpanHandle {
	if s != nil {
		s.labels = append(s.labels, k, v)
	}
	return s
}

// ID returns the span's ID (0 for a nil handle).
func (s *SpanHandle) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Wire returns the trace ID + span ID pair to propagate across a tier
// boundary (zeros for a nil handle = untraced).
func (s *SpanHandle) Wire() (traceID, spanID uint64) {
	if s == nil {
		return 0, 0
	}
	return s.t.ID, s.id
}

// ImportRemote stitches spans returned by the far side of a remote call
// into this span's trace.
func (s *SpanHandle) ImportRemote(spans []Span) {
	if s != nil {
		s.t.Import(spans)
	}
}

// TraceID returns the ID of the context's active trace, or 0 when the
// request is untraced — the join key between externally captured
// records (the rdb flight recorder) and /debug/traces.
func TraceID(ctx context.Context) uint64 {
	t, _ := FromContext(ctx)
	if t == nil {
		return 0
	}
	return t.ID
}

// RecordSpan appends an already-completed span with explicit start and
// end times to the context's trace — for stages measured before the
// trace existed (admission queue wait happens before the request span
// opens) or measured by code that cannot hold a SpanHandle. A no-op on
// untraced contexts.
func RecordSpan(ctx context.Context, name string, start, end time.Time, labels ...string) {
	t, parent := FromContext(ctx)
	if t == nil {
		return
	}
	t.append(Span{
		ID:     t.newSpanID(),
		Parent: parent,
		Name:   name,
		Labels: labels,
		Start:  start.UnixNano(),
		End:    end.UnixNano(),
	})
}

// End completes the span successfully.
func (s *SpanHandle) End() { s.EndErr(nil) }

// EndErr completes the span, recording the error (nil = success).
func (s *SpanHandle) EndErr(err error) {
	if s == nil {
		return
	}
	sp := Span{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Labels: s.labels,
		Start:  s.start,
		End:    time.Now().UnixNano(),
	}
	if err != nil {
		sp.Err = err.Error()
	}
	s.t.append(sp)
}
