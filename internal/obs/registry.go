package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Registry aggregates metric sources from every tier into one
// Prometheus-text-format exposition. Sources register a write callback;
// scrape time walks them in registration order. Families emitted by
// multiple sources are grouped so HELP/TYPE headers appear exactly once.
type Registry struct {
	mu      sync.Mutex
	sources []func(*Exposition)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a metric source invoked at every scrape.
func (r *Registry) Register(fn func(*Exposition)) {
	r.mu.Lock()
	r.sources = append(r.sources, fn)
	r.mu.Unlock()
}

// RegisterVec exposes a HistogramVec as a native Prometheus histogram
// family plus derived quantile gauges (<family>_quantile{q=...}).
func (r *Registry) RegisterVec(v *HistogramVec) {
	r.Register(func(e *Exposition) { e.Histogram(v) })
}

// Gauge registers a single-value gauge read at scrape time.
func (r *Registry) Gauge(name, help string, labels map[string]string, fn func() float64) {
	r.Register(func(e *Exposition) { e.Gauge(name, help, labels, fn()) })
}

// Counter registers a single-value counter read at scrape time.
func (r *Registry) Counter(name, help string, labels map[string]string, fn func() float64) {
	r.Register(func(e *Exposition) { e.Counter(name, help, labels, fn()) })
}

// ServeHTTP renders the exposition.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.Write(w)
}

// Write renders every registered source, grouped by family.
func (r *Registry) Write(w io.Writer) {
	r.mu.Lock()
	sources := make([]func(*Exposition), len(r.sources))
	copy(sources, r.sources)
	r.mu.Unlock()
	e := &Exposition{families: map[string]*family{}}
	for _, fn := range sources {
		fn(e)
	}
	e.writeTo(w)
}

// Handler returns the registry as an http.Handler.
func (r *Registry) Handler() http.Handler { return r }

type family struct {
	name  string
	help  string
	typ   string
	order int
	lines []string
}

// Exposition collects samples during one scrape. Sources call Gauge /
// Counter / Histogram; duplicate family names from different sources
// merge under one header.
type Exposition struct {
	families map[string]*family
	next     int
}

func (e *Exposition) fam(name, help, typ string) *family {
	f, ok := e.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, order: e.next}
		e.next++
		e.families[name] = f
	}
	return f
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// renderLabels formats a label set as {k="v",...} with sorted keys, or
// "" when empty.
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, escapeLabel(labels[k]))
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}

// Gauge emits one gauge sample.
func (e *Exposition) Gauge(name, help string, labels map[string]string, v float64) {
	f := e.fam(name, help, "gauge")
	f.lines = append(f.lines, fmt.Sprintf("%s%s %s", name, renderLabels(labels), formatValue(v)))
}

// Counter emits one counter sample.
func (e *Exposition) Counter(name, help string, labels map[string]string, v float64) {
	f := e.fam(name, help, "counter")
	f.lines = append(f.lines, fmt.Sprintf("%s%s %s", name, renderLabels(labels), formatValue(v)))
}

// Histogram emits a HistogramVec as a Prometheus histogram family
// (seconds) plus a companion <name>_quantile gauge family carrying the
// derived p50/p95/p99 — so dashboards get quantiles without needing
// histogram_quantile(), and scripts can grep them directly.
func (e *Exposition) Histogram(v *HistogramVec) {
	f := e.fam(v.Name, v.Help, "histogram")
	qf := e.fam(v.Name+"_quantile", v.Help+" (derived quantiles)", "gauge")
	ef := e.fam(v.Name+"_errors_total", v.Help+" (errored observations)", "counter")
	for _, s := range v.Snapshot() {
		base := map[string]string{v.Label: s.LabelValue}
		var cum uint64
		for i := 0; i < numBuckets; i++ {
			cum += s.Hist.Buckets[i]
			le := formatValue(bucketBound(i) / 1e9)
			f.lines = append(f.lines, fmt.Sprintf(`%s_bucket{%s="%s",le="%s"} %d`,
				v.Name, v.Label, escapeLabel(s.LabelValue), le, cum))
		}
		f.lines = append(f.lines, fmt.Sprintf("%s_sum%s %s", v.Name, renderLabels(base), formatValue(s.Hist.Sum.Seconds())))
		f.lines = append(f.lines, fmt.Sprintf("%s_count%s %d", v.Name, renderLabels(base), s.Hist.Count))
		for _, q := range []struct {
			q float64
			s string
		}{{0.5, "0.5"}, {0.95, "0.95"}, {0.99, "0.99"}} {
			labels := map[string]string{v.Label: s.LabelValue, "q": q.s}
			qf.lines = append(qf.lines, fmt.Sprintf("%s_quantile%s %s",
				v.Name, renderLabels(labels), formatValue(s.Hist.Quantile(q.q).Seconds())))
		}
		ef.lines = append(ef.lines, fmt.Sprintf("%s_errors_total%s %d", v.Name, renderLabels(base), s.Hist.Errs))
	}
}

func (e *Exposition) writeTo(w io.Writer) {
	fams := make([]*family, 0, len(e.families))
	for _, f := range e.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].order < fams[j].order })
	for _, f := range fams {
		if len(f.lines) == 0 {
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, ln := range f.lines {
			fmt.Fprintln(w, ln)
		}
	}
}
