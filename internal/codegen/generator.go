// Package codegen implements WebRatio's customisable code generators
// (Section 1): it transforms the ER specification into relational table
// definitions and the WebML specification into page template skeletons,
// unit and page descriptors, and the Controller's configuration file.
// Regeneration preserves descriptors marked optimized (Section 6).
package codegen

import (
	"fmt"
	"sort"
	"strings"

	"webmlgo/internal/descriptor"
	"webmlgo/internal/er"
	"webmlgo/internal/webml"
)

// Generator produces the runtime artifacts of one model.
type Generator struct {
	Model   *webml.Model
	Mapping *er.Mapping
}

// New validates the model and returns a generator for it.
func New(m *webml.Model) (*Generator, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	mapping, err := er.NewMapping(m.Data)
	if err != nil {
		return nil, err
	}
	return &Generator{Model: m, Mapping: mapping}, nil
}

// Artifacts is everything the generator emits.
type Artifacts struct {
	// DDL creates the relational schema.
	DDL []string
	// Repo holds unit/page descriptors, the controller config, and page
	// template skeletons (pre-styling).
	Repo *descriptor.Repository
	// Stats quantifies the generated artifacts.
	Stats Stats
}

// Stats reports artifact counts the way Section 8 of the paper does, for
// both the conventional (one class per page/unit) implementation and the
// generic-service implementation.
type Stats struct {
	SiteViews       int
	Pages           int
	ContentUnits    int
	Operations      int
	Queries         int // SQL statements carried by descriptors
	Templates       int
	Mappings        int
	UnitDescriptors int
	PageDescriptors int
	// ConventionalPageClasses / ConventionalUnitClasses are what a
	// hand-built MVC implementation would require (556 and 3068 for
	// Acer-Euro).
	ConventionalPageClasses int
	ConventionalUnitClasses int
	// GenericPageServices is always 1; GenericUnitServices is the number
	// of distinct unit kinds used (11 for Acer-Euro).
	GenericPageServices int
	GenericUnitServices int
}

// Generate produces all artifacts from scratch.
func (g *Generator) Generate() (*Artifacts, error) {
	return g.Regenerate(nil)
}

// Regenerate produces the artifacts, preserving from prev every unit
// descriptor whose Optimized flag is set — the paper's rule that the
// code generator must not clobber hand-tuned queries or services.
func (g *Generator) Regenerate(prev *descriptor.Repository) (*Artifacts, error) {
	repo := descriptor.NewRepository()
	art := &Artifacts{Repo: repo}

	art.DDL = g.Mapping.DDL()
	art.DDL = append(art.DDL, g.orderedIndexDDL()...)

	// Unit descriptors.
	for _, u := range g.Model.AllContentUnits() {
		if prev != nil {
			if old := prev.Unit(u.ID); old != nil && old.Optimized {
				repo.PutUnit(old)
				continue
			}
		}
		d, err := g.unitDescriptor(u)
		if err != nil {
			return nil, err
		}
		repo.PutUnit(d)
	}
	for _, op := range g.Model.Operations {
		if prev != nil {
			if old := prev.Unit(op.ID); old != nil && old.Optimized {
				repo.PutUnit(old)
				continue
			}
		}
		d, err := g.operationDescriptor(op)
		if err != nil {
			return nil, err
		}
		repo.PutUnit(d)
	}

	// Page descriptors + template skeletons. The landmark menu of a site
	// view is computed once and shared by all its pages.
	for _, sv := range g.Model.SiteViews {
		var menu []descriptor.MenuItem
		for _, lp := range sv.AllPages() {
			if lp.Landmark {
				menu = append(menu, descriptor.MenuItem{
					Action: PageAction(lp.ID), Label: lp.Name,
				})
			}
		}
		for _, p := range sv.AllPages() {
			pd := g.pageDescriptor(sv, p)
			pd.Menu = menu
			repo.PutPage(pd)
			repo.PutTemplate(pd.Template, g.Skeleton(p))
		}
	}

	// Controller configuration.
	cfg, err := g.controllerConfig()
	if err != nil {
		return nil, err
	}
	repo.SetConfig(cfg)

	art.Stats = g.stats(repo)
	return art, nil
}

// orderedIndexDDL emits one ordered (range-scan) index per (entity,
// attribute) pair that any unit sorts by or range-restricts, so the
// generated queries' ORDER BY and inequality selectors have an access
// path.
func (g *Generator) orderedIndexDDL() []string {
	type key struct{ table, col string }
	seen := map[key]bool{}
	add := func(entity, attr string) {
		if entity == "" || attr == "" || strings.EqualFold(attr, "oid") {
			return
		}
		k := key{g.Mapping.EntityTable(entity), strings.ToLower(attr)}
		seen[k] = true
	}
	collect := func(u *webml.Unit) {
		for _, o := range u.Order {
			add(u.Entity, o.Attr)
		}
		for _, c := range u.Selector {
			switch c.Op {
			case "<", "<=", ">", ">=":
				add(u.Entity, c.Attr)
			}
		}
		ent := u.Entity
		for n := u.Nest; n != nil; n = n.Nest {
			rel := g.Model.Data.Relationship(n.Relationship)
			if rel == nil {
				break
			}
			next := rel.To
			if strings.EqualFold(rel.To, ent) {
				next = rel.From
			}
			for _, o := range n.Order {
				add(next, o.Attr)
			}
			ent = next
		}
	}
	for _, u := range g.Model.AllContentUnits() {
		collect(u)
	}
	keys := make([]key, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].table != keys[j].table {
			return keys[i].table < keys[j].table
		}
		return keys[i].col < keys[j].col
	})
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("CREATE ORDERED INDEX ord_%s_%s ON %s(%s)", k.table, k.col, k.table, k.col))
	}
	return out
}

func (g *Generator) unitDescriptor(u *webml.Unit) (*descriptor.Unit, error) {
	d := &descriptor.Unit{ID: u.ID, Kind: string(u.Kind), Entity: u.Entity}
	if u.Cache != nil && u.Cache.Enabled {
		d.Cache = &descriptor.CachePolicy{Enabled: true, TTLSeconds: u.Cache.TTLSeconds}
	}
	for k, v := range u.Props {
		d.Props = append(d.Props, descriptor.Prop{Name: k, Value: v})
	}
	if _, isPlugin := webml.LookupPlugin(u.Kind); isPlugin {
		return d, nil
	}
	switch u.Kind {
	case webml.EntryUnit:
		for _, f := range u.Fields {
			d.Fields = append(d.Fields, descriptor.FieldSpec{
				Name: f.Name, Type: f.Type.String(), Required: f.Required,
			})
		}
		return d, nil
	default:
		if err := g.buildContentQuery(u, d); err != nil {
			return nil, err
		}
		return d, nil
	}
}

func (g *Generator) operationDescriptor(op *webml.Unit) (*descriptor.Unit, error) {
	d := &descriptor.Unit{ID: op.ID, Kind: string(op.Kind), Entity: op.Entity}
	for k, v := range op.Props {
		d.Props = append(d.Props, descriptor.Prop{Name: k, Value: v})
	}
	if _, isPlugin := webml.LookupPlugin(op.Kind); isPlugin {
		return d, nil
	}
	if err := g.buildOperationQuery(op, d); err != nil {
		return nil, err
	}
	return d, nil
}

func (g *Generator) pageDescriptor(sv *webml.SiteView, p *webml.Page) *descriptor.Page {
	pd := &descriptor.Page{
		ID: p.ID, Name: p.Name, SiteView: sv.ID,
		Layout: p.Layout, Template: p.ID, Protected: sv.Protected,
	}
	inPage := map[string]bool{}
	for _, u := range p.Units {
		pd.Units = append(pd.Units, descriptor.UnitRef{ID: u.ID})
		inPage[u.ID] = true
	}
	// Only links leaving this page's units matter; the model's link index
	// keeps this pass linear in the page's out-degree, not in the total
	// number of links (the quadratic trap at 556+ pages).
	for _, u := range p.Units {
		for _, l := range g.Model.LinksFrom(u.ID) {
			if (l.Kind == webml.TransportLink || l.Kind == webml.AutomaticLink) && inPage[l.To] {
				e := descriptor.Edge{From: l.From, To: l.To}
				for _, pm := range l.Params {
					e.Params = append(e.Params, descriptor.EdgeParam{Source: pm.Source, Target: pm.Target})
				}
				pd.Edges = append(pd.Edges, e)
				continue
			}
			// Normal links from this page's units become anchors the View
			// renders; their targets resolve to Controller actions.
			if l.Kind == webml.NormalLink {
				action, err := g.linkTargetAction(l)
				if err != nil {
					continue
				}
				a := descriptor.Anchor{FromUnit: l.From, Action: action, Label: l.Label}
				for _, pm := range l.Params {
					a.Params = append(a.Params, descriptor.EdgeParam{Source: pm.Source, Target: pm.Target})
				}
				pd.Anchors = append(pd.Anchors, a)
			}
		}
	}
	return pd
}

// PageAction and OperationAction build the controller action names.
func PageAction(pageID string) string { return "page/" + pageID }

// OperationAction builds the action name of an operation.
func OperationAction(opID string) string { return "op/" + opID }

func (g *Generator) controllerConfig() (*descriptor.Config, error) {
	cfg := &descriptor.Config{App: g.Model.Name}
	for _, sv := range g.Model.SiteViews {
		for _, p := range sv.AllPages() {
			cfg.Mappings = append(cfg.Mappings, descriptor.Mapping{
				Action: PageAction(p.ID), Type: "page", Page: p.ID, Template: p.ID,
			})
		}
	}
	for _, op := range g.Model.Operations {
		m := descriptor.Mapping{Action: OperationAction(op.ID), Type: "operation"}
		// When the operation is fed by an entry unit, the validation
		// service checks the submitted parameters against that unit's
		// field specifications before executing.
		for _, in := range g.Model.LinksTo(op.ID) {
			if src := g.Model.UnitByID(in.From); src != nil && src.Kind == webml.EntryUnit {
				m.Validate = src.ID
				break
			}
		}
		for _, l := range g.Model.LinksFrom(op.ID) {
			target, err := g.linkTargetAction(l)
			if err != nil {
				return nil, err
			}
			var fwd []descriptor.ForwardParam
			for _, pm := range l.Params {
				fwd = append(fwd, descriptor.ForwardParam{Source: pm.Source, Target: pm.Target})
			}
			switch l.Kind {
			case webml.OKLink:
				m.OK = target
				m.OKParams = fwd
			case webml.KOLink:
				m.KO = target
				m.KOParams = fwd
			}
		}
		if m.KO == "" {
			// The paper's default: on failure, return whence you came is a
			// designer choice; absent a KO link we fail back to the OK
			// target so the user is never stranded.
			m.KO = m.OK
		}
		cfg.Mappings = append(cfg.Mappings, m)
	}
	return cfg, nil
}

func (g *Generator) linkTargetAction(l *webml.Link) (string, error) {
	switch t := g.Model.Lookup(l.To).(type) {
	case *webml.Page:
		return PageAction(t.ID), nil
	case *webml.Unit:
		if t.Kind.IsOperation() {
			return OperationAction(t.ID), nil
		}
		if t.Page() != nil {
			return PageAction(t.Page().ID), nil
		}
		return "", fmt.Errorf("codegen: link %q targets unplaced unit %q", l.ID, l.To)
	}
	return "", fmt.Errorf("codegen: link %q has unresolvable target %q", l.ID, l.To)
}

func (g *Generator) stats(repo *descriptor.Repository) Stats {
	ms := g.Model.Stats()
	st := Stats{
		SiteViews:               ms.SiteViews,
		Pages:                   ms.Pages,
		ContentUnits:            ms.Units,
		Operations:              ms.Operations,
		Templates:               ms.Pages,
		ConventionalPageClasses: ms.Pages,
		ConventionalUnitClasses: ms.Units + ms.Operations,
		GenericPageServices:     1,
		GenericUnitServices:     ms.UnitKinds,
	}
	units, pages, _ := repo.Counts()
	st.UnitDescriptors = units
	st.PageDescriptors = pages
	st.Mappings = len(repo.Config().Mappings)
	for _, u := range repo.Units() {
		if u.Query != "" {
			st.Queries++
		}
		if u.CountQuery != "" {
			st.Queries++
		}
		st.Queries += len(u.Levels)
	}
	return st
}

// String renders the stats as the artifact table of Section 8.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "site views: %d, pages: %d, units: %d, operations: %d, SQL queries: %d\n",
		s.SiteViews, s.Pages, s.ContentUnits, s.Operations, s.Queries)
	fmt.Fprintf(&b, "conventional MVC: %d page classes + %d unit classes\n",
		s.ConventionalPageClasses, s.ConventionalUnitClasses)
	fmt.Fprintf(&b, "generic services: %d page service (+%d page descriptors) and %d unit services (+%d unit descriptors)",
		s.GenericPageServices, s.PageDescriptors, s.GenericUnitServices, s.UnitDescriptors)
	return b.String()
}
