package codegen

import (
	"strings"
	"testing"

	"webmlgo/internal/descriptor"
	"webmlgo/internal/fixture"
	"webmlgo/internal/rdb"
	"webmlgo/internal/webml"
)

func gen(t *testing.T) (*Generator, *Artifacts) {
	t.Helper()
	g, err := New(fixture.Figure1Model())
	if err != nil {
		t.Fatal(err)
	}
	art, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return g, art
}

// seededDB runs the generated DDL and loads the fixture content; the
// generated queries must then run against the engine.
func seededDB(t *testing.T, art *Artifacts) *rdb.DB {
	t.Helper()
	db := rdb.Open()
	for _, stmt := range art.DDL {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatalf("DDL %q: %v", stmt, err)
		}
	}
	if err := fixture.Seed(db); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestGenerateProducesAllArtifacts(t *testing.T) {
	_, art := gen(t)
	units, pages, templates := art.Repo.Counts()
	// 7 public units + 4 admin units + 3 operations.
	if units != 14 {
		t.Fatalf("unit descriptors = %d", units)
	}
	if pages != 6 || templates != 6 {
		t.Fatalf("pages = %d templates = %d", pages, templates)
	}
	if got := len(art.Repo.Config().Mappings); got != 6+3 {
		t.Fatalf("mappings = %d", got)
	}
}

func TestDataUnitQuery(t *testing.T) {
	_, art := gen(t)
	d := art.Repo.Unit("volumeData")
	if d == nil {
		t.Fatal("volumeData descriptor missing")
	}
	if d.Query != "SELECT t.oid, t.title, t.year FROM volume t WHERE t.oid = ?" {
		t.Fatalf("query = %q", d.Query)
	}
	if len(d.Inputs) != 1 || d.Inputs[0].Name != "volume" {
		t.Fatalf("inputs = %+v", d.Inputs)
	}
	if d.Cache == nil || !d.Cache.Enabled {
		t.Fatal("cache tag lost")
	}
	if len(d.Reads) == 0 || d.Reads[0] != "entity:volume" {
		t.Fatalf("reads = %v", d.Reads)
	}
}

func TestRelationshipScopedIndexQuery(t *testing.T) {
	_, art := gen(t)
	d := art.Repo.Unit("issuesPapers")
	if !strings.Contains(d.Query, "t.fk_volumetoissue = ?") {
		t.Fatalf("query = %q", d.Query)
	}
	if d.Inputs[0].Name != ParentParam {
		t.Fatalf("inputs = %+v", d.Inputs)
	}
	if !strings.Contains(d.Query, "ORDER BY t.number") {
		t.Fatalf("query = %q", d.Query)
	}
	// Hierarchical level over IssueToPaper.
	if len(d.Levels) != 1 || d.Levels[0].Entity != "Paper" {
		t.Fatalf("levels = %+v", d.Levels)
	}
	if !strings.Contains(d.Levels[0].Query, "t.fk_issuetopaper = ?") {
		t.Fatalf("level query = %q", d.Levels[0].Query)
	}
	wantReads := map[string]bool{
		"entity:issue": true, "rel:volumetoissue": true,
		"rel:issuetopaper": true, "entity:paper": true,
	}
	for _, r := range d.Reads {
		delete(wantReads, r)
	}
	if len(wantReads) != 0 {
		t.Fatalf("missing reads %v in %v", wantReads, d.Reads)
	}
}

func TestBridgeScopedIndexQuery(t *testing.T) {
	_, art := gen(t)
	d := art.Repo.Unit("paperKeywords")
	if !strings.Contains(d.Query, "JOIN rel_paperkeyword b ON b.to_oid = t.oid") ||
		!strings.Contains(d.Query, "b.from_oid = ?") {
		t.Fatalf("query = %q", d.Query)
	}
}

func TestScrollerQueries(t *testing.T) {
	_, art := gen(t)
	d := art.Repo.Unit("searchIndex")
	if !strings.Contains(d.Query, "LIMIT 10 OFFSET ?") {
		t.Fatalf("query = %q", d.Query)
	}
	if !strings.Contains(d.CountQuery, "SELECT COUNT(*) FROM paper t WHERE t.title LIKE ?") {
		t.Fatalf("count query = %q", d.CountQuery)
	}
	if d.PageSize != 10 {
		t.Fatalf("page size = %d", d.PageSize)
	}
	// Inputs: kw (wildcarded) then offset.
	if len(d.Inputs) != 2 || d.Inputs[0].Name != "kw" || !d.Inputs[0].Wildcard || d.Inputs[1].Name != "offset" {
		t.Fatalf("inputs = %+v", d.Inputs)
	}
}

func TestEntryDescriptor(t *testing.T) {
	_, art := gen(t)
	d := art.Repo.Unit("enterKeyword")
	if d.Query != "" || len(d.Fields) != 1 || d.Fields[0].Name != "keyword" || !d.Fields[0].Required {
		t.Fatalf("descriptor = %+v", d)
	}
}

func TestOperationQueries(t *testing.T) {
	_, art := gen(t)
	c := art.Repo.Unit("createVolume")
	if c.Query != "INSERT INTO volume (title, year) VALUES (?, ?)" {
		t.Fatalf("create query = %q", c.Query)
	}
	if len(c.Inputs) != 2 || c.Inputs[0].Name != "title" || c.Inputs[1].Name != "year" {
		t.Fatalf("create inputs = %+v", c.Inputs)
	}
	if len(c.Writes) != 1 || c.Writes[0] != "entity:volume" {
		t.Fatalf("create writes = %v", c.Writes)
	}

	del := art.Repo.Unit("deleteVolume")
	if del.Query != "DELETE FROM volume WHERE oid = ?" {
		t.Fatalf("delete query = %q", del.Query)
	}
	// Delete severs VolumeToIssue instances too.
	joined := strings.Join(del.Writes, ",")
	if !strings.Contains(joined, "entity:volume") || !strings.Contains(joined, "rel:volumetoissue") {
		t.Fatalf("delete writes = %v", del.Writes)
	}

	conn := art.Repo.Unit("tagPaper")
	if conn.Query != "INSERT INTO rel_paperkeyword (from_oid, to_oid) VALUES (?, ?)" {
		t.Fatalf("connect query = %q", conn.Query)
	}
	if len(conn.Inputs) != 2 || conn.Inputs[0].Name != "from" || conn.Inputs[1].Name != "to" {
		t.Fatalf("connect inputs = %+v", conn.Inputs)
	}
}

func TestConnectOverFKRelationship(t *testing.T) {
	m := fixture.Figure1Model()
	b := webml.NewBuilder("m2", fixture.ACMSchema())
	sv := b.SiteView("sv", "SV")
	page := sv.Page("p", "P")
	idx := page.Index("i", "Issue", "Number")
	move := b.Connect("moveIssue", "VolumeToIssue")
	b.Link(idx.ID, move.ID, webml.P("oid", "to"))
	b.OK(move.ID, page.Ref())
	m2 := b.MustBuild()
	_ = m

	g, err := New(m2)
	if err != nil {
		t.Fatal(err)
	}
	art, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	d := art.Repo.Unit("moveIssue")
	if d.Query != "UPDATE issue SET fk_volumetoissue = ? WHERE oid = ?" {
		t.Fatalf("query = %q", d.Query)
	}
	if len(d.Inputs) != 2 || d.Inputs[0].Name != "from" || d.Inputs[1].Name != "to" {
		t.Fatalf("inputs = %+v", d.Inputs)
	}
}

// TestGeneratedQueriesExecute is the end-to-end generation contract:
// every generated SQL statement must be accepted by the engine with the
// declared number of parameters.
func TestGeneratedQueriesExecute(t *testing.T) {
	_, art := gen(t)
	db := seededDB(t, art)
	for _, d := range art.Repo.Units() {
		run := func(query string, nArgs int) {
			if query == "" {
				return
			}
			args := make([]rdb.Value, nArgs)
			for i := range args {
				// Pick a type-plausible argument from the parameter name.
				if i < len(d.Inputs) && isTextualParam(d.Inputs[i]) {
					args[i] = "x"
				} else {
					args[i] = int64(1)
				}
			}
			if strings.HasPrefix(query, "SELECT") {
				if _, err := db.Query(query, args...); err != nil {
					t.Errorf("unit %s: query %q: %v", d.ID, query, err)
				}
				return
			}
			// Mutations: run inside a rolled-back transaction so the seed
			// data is untouched for the next descriptor.
			tx := db.Begin()
			if _, err := tx.Exec(query, args...); err != nil &&
				!strings.Contains(err.Error(), "foreign key") &&
				!strings.Contains(err.Error(), "duplicate") {
				t.Errorf("unit %s: exec %q: %v", d.ID, query, err)
			}
			tx.Rollback()
		}
		run(d.Query, len(d.Inputs))
		run(d.CountQuery, countInputs(d))
		for _, lvl := range d.Levels {
			run(lvl.Query, 1)
		}
	}
}

// isTextualParam guesses whether a generated parameter binds a text
// column, from its name and wildcard flag (test-only heuristic over the
// fixture's parameter vocabulary).
func isTextualParam(p descriptor.ParamDef) bool {
	if p.Wildcard {
		return true
	}
	switch p.Name {
	case "title", "keyword", "kw", "word", "month", "abstract":
		return true
	}
	return false
}

// countInputs returns the parameter count of the scroller count query
// (the windowed query's inputs minus the trailing offset).
func countInputs(d *descriptor.Unit) int {
	n := len(d.Inputs)
	if n > 0 && d.Inputs[n-1].Name == "offset" {
		return n - 1
	}
	return n
}

func TestPageDescriptorTopology(t *testing.T) {
	_, art := gen(t)
	pd := art.Repo.Page("volumePage")
	if pd == nil || len(pd.Units) != 3 {
		t.Fatalf("page descriptor = %+v", pd)
	}
	if len(pd.Edges) != 1 || pd.Edges[0].From != "volumeData" || pd.Edges[0].To != "issuesPapers" {
		t.Fatalf("edges = %+v", pd.Edges)
	}
	if pd.Edges[0].Params[0].Source != "oid" || pd.Edges[0].Params[0].Target != "parent" {
		t.Fatalf("edge params = %+v", pd.Edges[0].Params)
	}
	if pd.Layout != "two-column" || pd.Template != "volumePage" {
		t.Fatalf("page attrs = %+v", pd)
	}
}

func TestControllerConfig(t *testing.T) {
	_, art := gen(t)
	cfg := art.Repo.Config()
	pm := cfg.Mapping("page/volumePage")
	if pm == nil || pm.Type != "page" || pm.Template != "volumePage" {
		t.Fatalf("page mapping = %+v", pm)
	}
	om := cfg.Mapping("op/createVolume")
	if om == nil || om.Type != "operation" || om.OK != "page/managePage" || om.KO != "page/managePage" {
		t.Fatalf("op mapping = %+v", om)
	}
	// Operation without explicit KO falls back to its OK target.
	cm := cfg.Mapping("op/tagPaper")
	if cm == nil || cm.KO != cm.OK {
		t.Fatalf("connect mapping = %+v", cm)
	}
}

func TestSkeletonContainsUnitTags(t *testing.T) {
	g, _ := gen(t)
	p := g.Model.PageByID("volumePage")
	sk := g.Skeleton(p)
	for _, want := range []string{
		`<webml:dataUnit id="volumeData"`,
		`<webml:indexUnit id="issuesPapers"`,
		`<webml:entryUnit id="enterKeyword"`,
		`data-layout="two-column"`,
		`class="page-grid"`,
	} {
		if !strings.Contains(sk, want) {
			t.Fatalf("skeleton missing %q:\n%s", want, sk)
		}
	}
}

func TestTagKindRoundTrip(t *testing.T) {
	for _, k := range webml.CoreUnitKinds {
		tag := TagForKind(k)
		back, ok := KindForTag(tag)
		if !ok || back != k {
			t.Fatalf("round trip failed for %q: tag %q -> %q", k, tag, back)
		}
	}
	if _, ok := KindForTag("div"); ok {
		t.Fatal("div is not a unit tag")
	}
	if _, ok := KindForTag("webml:Unit"); ok {
		t.Fatal("empty kind accepted")
	}
}

// TestRegeneratePreservesOptimized verifies the Section 6 contract: the
// developer's hand-tuned descriptor survives model regeneration, while
// untouched descriptors are refreshed.
func TestRegeneratePreservesOptimized(t *testing.T) {
	g, art := gen(t)
	tuned := "SELECT t.oid, t.title, t.year FROM volume t WHERE t.oid = ? -- hand-tuned"
	if err := art.Repo.OverrideQuery("volumeData", tuned); err != nil {
		t.Fatal(err)
	}
	art2, err := g.Regenerate(art.Repo)
	if err != nil {
		t.Fatal(err)
	}
	if got := art2.Repo.Unit("volumeData").Query; got != tuned {
		t.Fatalf("optimized descriptor clobbered: %q", got)
	}
	if !art2.Repo.Unit("volumeData").Optimized {
		t.Fatal("optimized flag lost")
	}
	// A non-optimized descriptor is regenerated fresh.
	if art2.Repo.Unit("issuesPapers").Optimized {
		t.Fatal("unexpected optimized flag")
	}
}

func TestStats(t *testing.T) {
	_, art := gen(t)
	st := art.Stats
	if st.Pages != 6 || st.ContentUnits != 11 || st.Operations != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ConventionalPageClasses != 6 || st.ConventionalUnitClasses != 14 {
		t.Fatalf("conventional = %+v", st)
	}
	if st.GenericPageServices != 1 {
		t.Fatalf("generic page services = %d", st.GenericPageServices)
	}
	// Kinds used: data, index, entry, scroller, multichoice + create,
	// delete, connect = 8.
	if st.GenericUnitServices != 8 {
		t.Fatalf("generic unit services = %d", st.GenericUnitServices)
	}
	if st.Queries == 0 || st.Mappings != 9 {
		t.Fatalf("queries = %d mappings = %d", st.Queries, st.Mappings)
	}
	if !strings.Contains(st.String(), "generic services") {
		t.Fatal("stats string malformed")
	}
}

func TestPluginUnitDescriptor(t *testing.T) {
	defer webml.UnregisterPlugin("feed")
	if err := webml.RegisterPlugin(webml.PluginSpec{Kind: "feed", RequiredProps: []string{"url"}}); err != nil {
		t.Fatal(err)
	}
	b := webml.NewBuilder("m", fixture.ACMSchema())
	b.SiteView("sv", "SV").Page("p", "P").Plugin("f1", "feed", map[string]string{"url": "http://x"})
	g, err := New(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	art, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	d := art.Repo.Unit("f1")
	if d == nil || d.Kind != "feed" {
		t.Fatalf("descriptor = %+v", d)
	}
	if v, ok := d.Prop("url"); !ok || v != "http://x" {
		t.Fatalf("props = %+v", d.Props)
	}
	if d.Query != "" {
		t.Fatalf("plug-in descriptor should carry no generated SQL, got %q", d.Query)
	}
}

func TestLandmarkMenuGenerated(t *testing.T) {
	_, art := gen(t)
	// volumesPage is the public site view's landmark; every public page
	// descriptor carries it in its menu.
	pd := art.Repo.Page("paperPage")
	if len(pd.Menu) != 1 || pd.Menu[0].Action != "page/volumesPage" || pd.Menu[0].Label != "Volumes" {
		t.Fatalf("menu = %+v", pd.Menu)
	}
	// The admin site view's landmark is the tag page.
	if m := art.Repo.Page("managePage").Menu; len(m) != 1 || m[0].Action != "page/tagPage" {
		t.Fatalf("admin menu = %+v", m)
	}
}

func TestDiagramStructure(t *testing.T) {
	m := fixture.Figure1Model()
	dot := Diagram(m)
	for _, want := range []string{
		"digraph webml {",
		`label="ACM Digital Library"`,
		`label="Volume Administration (protected)"`,
		`label="Volumes *"`, // landmark marker
		"shape=hexagon",     // operations
		"style=dashed",      // transport link
		`label="OK"`, `label="KO"`,
		"nvolumeData", "nissuesPapers",
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("diagram missing %q:\n%s", want, dot)
		}
	}
	// Balanced braces (valid DOT nesting).
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Fatal("unbalanced braces in DOT output")
	}
}

func TestDiagramIdentSanitization(t *testing.T) {
	if got := ident("a-b.c:d"); got != "na_b_c_d" {
		t.Fatalf("ident = %q", got)
	}
}

func TestOrderedIndexDDLGenerated(t *testing.T) {
	_, art := gen(t)
	joined := strings.Join(art.DDL, "\n")
	// volIndex orders by Year; searchIndex orders by Title (paper table);
	// issuesPapers orders by Number and nests papers by Title.
	for _, want := range []string{
		"CREATE ORDERED INDEX ord_volume_year ON volume(year)",
		"CREATE ORDERED INDEX ord_paper_title ON paper(title)",
		"CREATE ORDERED INDEX ord_issue_number ON issue(number)",
	} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %q in DDL:\n%s", want, joined)
		}
	}
	// And the whole DDL still executes.
	db := seededDB(t, art)
	plan, err := db.Explain(`SELECT t.oid FROM paper t WHERE t.title > 'A'`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "RANGE") {
		t.Fatalf("ordered index not usable: %q", plan)
	}
}

// TestGenerationIsDeterministic: two runs over the same model produce
// byte-identical artifacts (required for meaningful diffs of generated
// code under version control).
func TestGenerationIsDeterministic(t *testing.T) {
	marshalAll := func() string {
		g, err := New(fixture.Figure1Model())
		if err != nil {
			t.Fatal(err)
		}
		art, err := g.Generate()
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, stmt := range art.DDL {
			b.WriteString(stmt)
			b.WriteString(";\n")
		}
		for _, u := range art.Repo.Units() {
			data, err := descriptor.Marshal(u)
			if err != nil {
				t.Fatal(err)
			}
			b.Write(data)
		}
		for _, p := range art.Repo.Pages() {
			data, err := descriptor.Marshal(p)
			if err != nil {
				t.Fatal(err)
			}
			b.Write(data)
		}
		for _, name := range art.Repo.TemplateNames() {
			tpl, _ := art.Repo.Template(name)
			b.WriteString(tpl)
		}
		cfg, err := descriptor.Marshal(art.Repo.Config())
		if err != nil {
			t.Fatal(err)
		}
		b.Write(cfg)
		return b.String()
	}
	if marshalAll() != marshalAll() {
		t.Fatal("generation not deterministic")
	}
}
