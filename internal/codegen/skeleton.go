package codegen

import (
	"strings"

	"webmlgo/internal/dom"
	"webmlgo/internal/webml"
)

// TagForKind returns the custom tag name rendering a unit kind in the
// View ("<webml:dataUnit>" and friends, Figure 7).
func TagForKind(kind webml.UnitKind) string {
	return "webml:" + string(kind) + "Unit"
}

// KindForTag is the inverse of TagForKind; ok is false for non-unit tags.
func KindForTag(tag string) (webml.UnitKind, bool) {
	if !strings.HasPrefix(tag, "webml:") || !strings.HasSuffix(tag, "Unit") {
		return "", false
	}
	k := strings.TrimSuffix(strings.TrimPrefix(tag, "webml:"), "Unit")
	if k == "" {
		return "", false
	}
	return webml.UnitKind(k), true
}

// Skeleton produces the page template skeleton of Figure 7: "all the
// custom tags corresponding to the units of the page, but only the
// minimal HTML mark-up needed to define the layout grid of the page and
// the position of the various units in such a grid". Presentation rules
// (internal/style) later transform it into the final template.
func (g *Generator) Skeleton(p *webml.Page) string {
	root := dom.NewElement("html")
	root.SetAttr("data-page", p.ID)
	if p.Layout != "" {
		root.SetAttr("data-layout", p.Layout)
	}
	head := dom.NewElement("head")
	title := dom.NewElement("title")
	title.AppendChild(dom.NewText(p.Name))
	head.AppendChild(title)
	root.AppendChild(head)

	body := dom.NewElement("body")
	grid := dom.NewElement("table")
	grid.SetAttr("class", "page-grid")
	for _, u := range p.Units {
		tr := dom.NewElement("tr")
		td := dom.NewElement("td")
		unitTag := dom.NewElement(TagForKind(u.Kind))
		unitTag.SetAttr("id", u.ID)
		if u.Name != "" {
			unitTag.SetAttr("data-name", u.Name)
		}
		td.AppendChild(unitTag)
		tr.AppendChild(td)
		grid.AppendChild(tr)
	}
	body.AppendChild(grid)
	root.AppendChild(body)
	return root.String()
}
